file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_random_data.dir/bench_table6_random_data.cpp.o"
  "CMakeFiles/bench_table6_random_data.dir/bench_table6_random_data.cpp.o.d"
  "bench_table6_random_data"
  "bench_table6_random_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_random_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
