// MVM: the mini instruction set that plays the role of x86 in this
// reproduction (see DESIGN.md, substitution table).
//
// Properties that matter for MPass:
//  * variable-length encoding      -> code bytes look like real ISA bytes to
//                                     byte-level detectors (MalConv et al.);
//  * rel32 branches/calls          -> the shuffle strategy must re-patch
//                                     relative addresses, as in the paper;
//  * syscalls with immediate ids   -> sensitive API invocations are visible
//                                     in the section bytes, which is exactly
//                                     the signal ML detectors learn.
//
// Encoding (little-endian immediates):
//   op:1 [reg:1]* [imm32/rel32:4 | imm16:2]
// Branch displacements are relative to the address of the *next* instruction.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/bytes.hpp"

namespace mpass::isa {

/// General-purpose registers r0..r7.
enum class Reg : std::uint8_t { r0, r1, r2, r3, r4, r5, r6, r7 };
inline constexpr int kNumRegs = 8;

enum class Op : std::uint8_t {
  Nop = 0x00,     // 1 byte
  Halt = 0x01,    // 1
  Movi = 0x02,    // 6: a, imm32
  Movr = 0x03,    // 3: a <- b
  Add = 0x04,     // 3: a += b
  Sub = 0x05,     // 3
  Xor = 0x06,     // 3
  And = 0x07,     // 3
  Or = 0x08,      // 3
  Mul = 0x09,     // 3
  Shl = 0x0A,     // 3 (by b & 31)
  Shr = 0x0B,     // 3
  Addi = 0x0C,    // 6: a += imm32
  Loadb = 0x0D,   // 3: a <- byte [b]
  Storeb = 0x0E,  // 3: byte [a] <- b
  Loadw = 0x0F,   // 3: a <- u32 [b]
  Storew = 0x10,  // 3: u32 [a] <- b
  Jmp = 0x11,     // 5: rel32
  Jz = 0x12,      // 6: a, rel32
  Jnz = 0x13,     // 6: a, rel32
  Jlt = 0x14,     // 7: a, b, rel32  (unsigned a < b)
  Call = 0x15,    // 5: rel32
  Ret = 0x16,     // 1
  Push = 0x17,    // 2: a
  Pop = 0x18,     // 2: a
  Sys = 0x19,     // 3: imm16 api id; args r0..r3, result r0
  Mod = 0x1A,     // 3: a %= b (b==0 -> 0)
  Div = 0x1B,     // 3: a /= b (b==0 -> 0)
};
inline constexpr std::uint8_t kMaxOpcode = 0x1B;

/// One decoded instruction.
struct Instr {
  Op op = Op::Nop;
  Reg a = Reg::r0;
  Reg b = Reg::r0;
  std::uint32_t imm = 0;  // Movi/Addi imm32, Sys imm16
  std::int32_t rel = 0;   // branch displacement (from next instruction)

  bool operator==(const Instr&) const = default;
};

/// Encoded length in bytes of an instruction with this opcode.
std::size_t instr_length(Op op);

/// True for Jmp/Jz/Jnz/Jlt/Call.
bool is_branch(Op op);

/// Whether the opcode byte is a defined MVM opcode.
bool valid_opcode(std::uint8_t byte);

/// Appends the encoding of in to w.
void encode(const Instr& in, util::ByteWriter& w);

/// Encodes a whole instruction list.
util::ByteBuf encode_all(std::span<const Instr> prog);

/// Decodes one instruction; throws util::ParseError on bad opcode/truncation.
Instr decode(util::ByteReader& r);

/// Decodes an entire buffer into instructions; offsets[i] is the byte offset
/// of instruction i. Throws on malformed streams.
std::vector<Instr> decode_all(std::span<const std::uint8_t> code,
                              std::vector<std::size_t>* offsets = nullptr);

/// Human-readable disassembly of one instruction.
std::string to_string(const Instr& in);

/// Multi-line disassembly with byte offsets.
std::string disassemble(std::span<const std::uint8_t> code);

// --------------------------------------------------------------------------
// Label-based assembler. Branch targets are symbolic labels resolved in
// finish(); this is the primitive both the program generator (corpus) and
// the MPass shuffle strategy build on -- re-assembly after reordering is how
// relative addresses get re-patched.
// --------------------------------------------------------------------------

class Assembler {
 public:
  using Label = std::size_t;

  /// Creates a fresh unbound label.
  Label make_label();

  /// Binds lbl to the current position (before the next emitted instruction).
  void bind(Label lbl);

  // Plain instructions.
  void nop() { emit({Op::Nop}); }
  void halt() { emit({Op::Halt}); }
  void movi(Reg r, std::uint32_t v) { emit({Op::Movi, r, Reg::r0, v, 0}); }
  void movr(Reg d, Reg s) { emit({Op::Movr, d, s}); }
  void add(Reg d, Reg s) { emit({Op::Add, d, s}); }
  void sub(Reg d, Reg s) { emit({Op::Sub, d, s}); }
  void xor_(Reg d, Reg s) { emit({Op::Xor, d, s}); }
  void and_(Reg d, Reg s) { emit({Op::And, d, s}); }
  void or_(Reg d, Reg s) { emit({Op::Or, d, s}); }
  void mul(Reg d, Reg s) { emit({Op::Mul, d, s}); }
  void shl(Reg d, Reg s) { emit({Op::Shl, d, s}); }
  void shr(Reg d, Reg s) { emit({Op::Shr, d, s}); }
  void addi(Reg r, std::uint32_t v) { emit({Op::Addi, r, Reg::r0, v, 0}); }
  void loadb(Reg d, Reg addr) { emit({Op::Loadb, d, addr}); }
  void storeb(Reg addr, Reg s) { emit({Op::Storeb, addr, s}); }
  void loadw(Reg d, Reg addr) { emit({Op::Loadw, d, addr}); }
  void storew(Reg addr, Reg s) { emit({Op::Storew, addr, s}); }
  void ret() { emit({Op::Ret}); }
  void push(Reg r) { emit({Op::Push, r}); }
  void pop(Reg r) { emit({Op::Pop, r}); }
  void sys(std::uint16_t api) { emit({Op::Sys, Reg::r0, Reg::r0, api, 0}); }
  void mod(Reg d, Reg s) { emit({Op::Mod, d, s}); }
  void div(Reg d, Reg s) { emit({Op::Div, d, s}); }

  // Branches to labels.
  void jmp(Label l) { emit_branch({Op::Jmp}, l); }
  void jz(Reg r, Label l) { emit_branch({Op::Jz, r}, l); }
  void jnz(Reg r, Label l) { emit_branch({Op::Jnz, r}, l); }
  void jlt(Reg a, Reg b, Label l) { emit_branch({Op::Jlt, a, b}, l); }
  void call(Label l) { emit_branch({Op::Call}, l); }

  /// Branch with an absolute displacement already known (e.g. jump to a
  /// virtual address outside this fragment). target_va is resolved against
  /// base_va passed to finish().
  void jmp_va(std::uint32_t target_va);

  /// Emits raw non-instruction bytes (never-executed gap/data content --
  /// the shuffle strategy's perturbation slots land here).
  void raw(util::ByteBuf bytes);

  /// Number of items (instructions + raw blocks) emitted so far.
  std::size_t size() const { return items_.size(); }

  /// Resolves labels and emits machine code as laid out from base_va.
  /// Throws std::logic_error on unbound labels referenced by branches.
  /// If item_offsets is non-null it receives the byte offset of every
  /// emitted item (same indexing as emission order).
  util::ByteBuf finish(std::uint32_t base_va = 0,
                       std::vector<std::size_t>* item_offsets = nullptr) const;

 private:
  struct Item {
    Instr instr;
    std::optional<Label> target;         // symbolic branch target
    std::optional<std::uint32_t> target_va;  // absolute branch target
    util::ByteBuf raw;                   // non-empty => raw data item
    bool is_raw = false;
  };

  void emit(Instr in) { items_.push_back({in, std::nullopt, std::nullopt, {}, false}); }
  void emit_branch(Instr in, Label l) {
    items_.push_back({in, l, std::nullopt, {}, false});
  }

  std::vector<Item> items_;
  // label -> instruction index it precedes (bound), or nullopt.
  std::vector<std::optional<std::size_t>> labels_;
};

/// Checks that every branch in code lands on an instruction boundary inside
/// [0, code.size()) (or exactly at end). Returns false on any violation or
/// decode error. Used by property tests for the shuffle strategy.
bool branches_well_formed(std::span<const std::uint8_t> code);

}  // namespace mpass::isa
