#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace mpass::util {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size()));
}

double median(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  const std::size_t mid = xs.size() / 2;
  std::nth_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid),
                   xs.end());
  double hi = xs[mid];
  if (xs.size() % 2 == 1) return hi;
  double lo = *std::max_element(
      xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lo + hi);
}

double Confusion::accuracy() const {
  const std::size_t total = tp + fp + tn + fn;
  return total == 0 ? 0.0 : static_cast<double>(tp + tn) / total;
}

double Confusion::tpr() const {
  return (tp + fn) == 0 ? 0.0 : static_cast<double>(tp) / (tp + fn);
}

double Confusion::fpr() const {
  return (fp + tn) == 0 ? 0.0 : static_cast<double>(fp) / (fp + tn);
}

double Confusion::precision() const {
  return (tp + fp) == 0 ? 0.0 : static_cast<double>(tp) / (tp + fp);
}

Confusion confusion_at(std::span<const double> scores,
                       std::span<const int> labels, double threshold) {
  Confusion c;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    const bool pred = scores[i] >= threshold;
    if (labels[i] != 0) {
      pred ? ++c.tp : ++c.fn;
    } else {
      pred ? ++c.fp : ++c.tn;
    }
  }
  return c;
}

double threshold_for_fpr(std::span<const double> scores,
                         std::span<const int> labels, double max_fpr) {
  std::vector<double> neg;
  for (std::size_t i = 0; i < scores.size(); ++i)
    if (labels[i] == 0) neg.push_back(scores[i]);
  if (neg.empty()) return 0.5;
  std::sort(neg.begin(), neg.end());
  // Allow floor(max_fpr * n) negatives at or above the threshold.
  const std::size_t allowed =
      static_cast<std::size_t>(max_fpr * static_cast<double>(neg.size()));
  if (allowed >= neg.size()) return neg.front();
  // Threshold strictly above the (n - allowed - 1)-th negative score.
  const double boundary = neg[neg.size() - allowed - 1];
  return std::nextafter(boundary, 2.0);
}

double auc(std::span<const double> scores, std::span<const int> labels) {
  // Rank-based (Mann-Whitney U); ties get half credit.
  std::vector<std::pair<double, int>> v;
  v.reserve(scores.size());
  for (std::size_t i = 0; i < scores.size(); ++i)
    v.emplace_back(scores[i], labels[i]);
  std::sort(v.begin(), v.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  double pos = 0, neg = 0, rank_sum = 0;
  std::size_t i = 0;
  double rank = 1;
  while (i < v.size()) {
    std::size_t j = i;
    while (j < v.size() && v[j].first == v[i].first) ++j;
    const double avg_rank = rank + static_cast<double>(j - i - 1) / 2.0;
    for (std::size_t k = i; k < j; ++k) {
      if (v[k].second != 0) {
        rank_sum += avg_rank;
        ++pos;
      } else {
        ++neg;
      }
    }
    rank += static_cast<double>(j - i);
    i = j;
  }
  if (pos == 0 || neg == 0) return 0.5;
  return (rank_sum - pos * (pos + 1) / 2.0) / (pos * neg);
}

}  // namespace mpass::util
