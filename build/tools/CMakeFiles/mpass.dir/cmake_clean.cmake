file(REMOVE_RECURSE
  "CMakeFiles/mpass.dir/mpass_cli.cpp.o"
  "CMakeFiles/mpass.dir/mpass_cli.cpp.o.d"
  "mpass"
  "mpass.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
