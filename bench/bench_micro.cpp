// Component micro-benchmarks (google-benchmark): PE parse/build, feature
// extraction, detector inference, emulator throughput, LZSS, Shapley.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

#include "corpus/generator.hpp"
#include "detectors/features.hpp"
#include "detectors/models.hpp"
#include "explain/shapley.hpp"
#include "pack/packer.hpp"
#include "pe/pe.hpp"
#include "util/compress.hpp"
#include "util/threadpool.hpp"
#include "vm/sandbox.hpp"

namespace {

using namespace mpass;

const util::ByteBuf& sample_malware() {
  static const util::ByteBuf bytes = corpus::make_malware(0xBE9C).bytes();
  return bytes;
}

void BM_PeParse(benchmark::State& state) {
  const auto& bytes = sample_malware();
  for (auto _ : state)
    benchmark::DoNotOptimize(pe::PeFile::parse(bytes));
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * bytes.size()));
}
BENCHMARK(BM_PeParse);

void BM_PeBuild(benchmark::State& state) {
  const pe::PeFile file = pe::PeFile::parse(sample_malware());
  for (auto _ : state) benchmark::DoNotOptimize(file.build());
}
BENCHMARK(BM_PeBuild);

void BM_FeatureExtract(benchmark::State& state) {
  const auto& bytes = sample_malware();
  for (auto _ : state)
    benchmark::DoNotOptimize(detect::extract_features(bytes));
}
BENCHMARK(BM_FeatureExtract);

void BM_MalConvForward(benchmark::State& state) {
  detect::ByteConvDetector det("bench", detect::malconv_config(), 11);
  const auto& bytes = sample_malware();
  for (auto _ : state) benchmark::DoNotOptimize(det.score(bytes));
}
BENCHMARK(BM_MalConvForward);

// Single-window-edit query cost (ISSUE 5): the inner loop of every
// query-based attack -- mutate one small window, re-score. Delta uses the
// incremental forward (diff vs cached activations), Full re-convolves the
// whole buffer each query. The attack grids are this, millions of times.
void BM_MalConvQueryDelta(benchmark::State& state) {
  detect::ByteConvDetector det("bench", detect::malconv_config(), 11);
  util::ByteBuf buf = sample_malware();
  if (buf.size() < 16384) buf.resize(16384, 0x90);
  det.score(buf);  // warm the cache
  std::size_t at = 0;
  std::uint8_t v = 1;
  for (auto _ : state) {
    for (std::size_t j = 0; j < 64; ++j) buf[at + j] = v;
    benchmark::DoNotOptimize(det.score(buf));
    at = (at + 512) % (buf.size() - 64);
    ++v;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MalConvQueryDelta);

void BM_MalConvQueryFull(benchmark::State& state) {
  detect::ByteConvDetector det("bench", detect::malconv_config(), 11);
  det.net().set_incremental(false);
  util::ByteBuf buf = sample_malware();
  if (buf.size() < 16384) buf.resize(16384, 0x90);
  det.score(buf);
  std::size_t at = 0;
  std::uint8_t v = 1;
  for (auto _ : state) {
    for (std::size_t j = 0; j < 64; ++j) buf[at + j] = v;
    benchmark::DoNotOptimize(det.score(buf));
    at = (at + 512) % (buf.size() - 64);
    ++v;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MalConvQueryFull);

void BM_VmExecute(benchmark::State& state) {
  const auto& bytes = sample_malware();
  std::uint64_t steps = 0;
  for (auto _ : state) {
    vm::Machine machine(bytes);
    const vm::RunResult r = machine.run();
    steps += r.steps;
    benchmark::DoNotOptimize(r.halted);
  }
  state.counters["steps/s"] = benchmark::Counter(
      static_cast<double>(steps), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_VmExecute);

void BM_LzssRoundtrip(benchmark::State& state) {
  const auto& bytes = sample_malware();
  for (auto _ : state) {
    auto packed = util::lzss_compress(bytes);
    benchmark::DoNotOptimize(util::lzss_decompress(packed));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * bytes.size()));
}
BENCHMARK(BM_LzssRoundtrip);

void BM_PackUpx(benchmark::State& state) {
  const auto& bytes = sample_malware();
  for (auto _ : state)
    benchmark::DoNotOptimize(pack::pack(pack::PackerKind::UpxLike, bytes));
}
BENCHMARK(BM_PackUpx);

void BM_ShapleyExact(benchmark::State& state) {
  const pe::PeFile file = pe::PeFile::parse(sample_malware());
  // Cheap surrogate scorer: file-size parity of nonzero content -- isolates
  // the Shapley enumeration cost from model inference cost.
  auto scorer = [](std::span<const std::uint8_t> b) {
    std::size_t nz = 0;
    for (std::uint8_t x : b) nz += (x != 0);
    return static_cast<double>(nz % 997) / 997.0;
  };
  for (auto _ : state)
    benchmark::DoNotOptimize(explain::shapley_values(file, scorer));
}
BENCHMARK(BM_ShapleyExact);

// Fan-out/join overhead of the harness thread pool: 64 small CPU-bound
// tasks per iteration, the shape of one run_cell at MPASS_N=64. Arg is the
// worker count.
void BM_ThreadPoolFanout(benchmark::State& state) {
  util::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    std::vector<std::future<std::uint64_t>> futs;
    futs.reserve(64);
    for (std::uint64_t i = 0; i < 64; ++i)
      futs.push_back(pool.submit([i] {
        std::uint64_t h = i;
        for (int k = 0; k < 2000; ++k)
          h = h * 6364136223846793005ULL + 1442695040888963407ULL;
        return h;
      }));
    std::uint64_t acc = 0;
    for (auto& f : futs) acc += pool.wait(std::move(f));
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_ThreadPoolFanout)->Arg(1)->Arg(4);

}  // namespace

// Expanded BENCHMARK_MAIN() so the process also emits BENCH_micro.json
// (and flushes any MPASS_PROFILE trace) after the benchmarks run.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  {
    mpass::bench::BenchReport report("micro");
    benchmark::RunSpecifiedBenchmarks();
  }
  benchmark::Shutdown();
  return 0;
}
