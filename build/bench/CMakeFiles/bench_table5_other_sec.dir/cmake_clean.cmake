file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_other_sec.dir/bench_table5_other_sec.cpp.o"
  "CMakeFiles/bench_table5_other_sec.dir/bench_table5_other_sec.cpp.o.d"
  "bench_table5_other_sec"
  "bench_table5_other_sec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_other_sec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
