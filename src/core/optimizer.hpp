// Ensemble perturbation optimization (paper §III-D, Eq. 2-3).
//
// The perturbable bytes delta are lifted into each known model's embedding
// space; one optimization step computes dLoss/dEmbedding for every known
// model (loss = sum of per-model BCE toward the benign label, the ensemble
// loss of Liu et al.), then greedily re-selects each perturbable byte to
// minimize the first-order ensemble loss -- including the contribution of
// its coupled key byte (the matrix-M constraint), so every step stays
// function-preserving.
#pragma once

#include <vector>

#include "core/modification.hpp"
#include "ml/byteconv.hpp"

namespace mpass::core {

class EnsembleOptimizer {
 public:
  /// known: the differentiable known models (never the black-box target).
  explicit EnsembleOptimizer(std::vector<ml::ByteConvNet*> known);

  /// One optimization step: computes the ensemble gradient, greedily
  /// re-selects bytes, and line-searches over update fractions, keeping
  /// the best-scoring prefix under the true (non-linearized) ensemble
  /// loss. When no prefix improves, a small exploratory prefix is kept
  /// anyway (so the next step's gradient escapes the tie), and the loss
  /// may then increase. Returns the mean ensemble BCE loss toward benign
  /// for the exact sample state left behind.
  ///
  /// The line search evaluates nested prefixes: each candidate differs
  /// from the previous one only in the updates applied in between, so
  /// with incremental scoring enabled (default) every evaluation is a
  /// forward_delta over those dirty windows instead of a full forward.
  float step(ModifiedSample& sample) const;

  /// Mean ensemble probability of `bytes` being malicious.
  float ensemble_score(std::span<const std::uint8_t> bytes) const;

  /// Mean ensemble BCE loss toward the benign label.
  float ensemble_loss(std::span<const std::uint8_t> bytes) const;

  /// ensemble_loss via each net's incremental forward: `dirty` must cover
  /// every byte that changed since the net last scored this sample.
  float ensemble_loss_delta(std::span<const std::uint8_t> bytes,
                            std::span<const ml::ByteRange> dirty) const;

  /// Disables/enables incremental line-search scoring (default: on unless
  /// MPASS_NO_INCREMENTAL=1). Results are bit-identical either way; the
  /// escape hatch exists for debugging and differential tests.
  void set_incremental(bool on) { incremental_ = on; }
  bool incremental() const { return incremental_; }

 private:
  std::vector<ml::ByteConvNet*> known_;
  bool incremental_;
};

}  // namespace mpass::core
