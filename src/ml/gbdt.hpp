// Histogram-based gradient-boosted decision trees with logistic loss --
// a from-scratch LightGBM equivalent for the EMBER-style detector
// (Anderson & Roth 2018 use LightGBM on static PE features; see DESIGN.md).
//
// Training uses quantile feature binning + per-node (gradient, hessian)
// histograms with the standard second-order split gain.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/rng.hpp"
#include "util/serialize.hpp"

namespace mpass::ml {

struct GbdtConfig {
  int trees = 80;
  int max_depth = 5;
  int bins = 64;
  float learning_rate = 0.1f;
  float lambda = 1.0f;        // L2 regularization on leaf values
  float min_child_hess = 1.0f;
  float feature_fraction = 1.0f;  // per-tree column subsampling
};

class Gbdt {
 public:
  explicit Gbdt(const GbdtConfig& cfg = {}) : cfg_(cfg) {}

  /// Trains on row-major features X (n x dim) with binary labels.
  void fit(const std::vector<std::vector<float>>& x,
           const std::vector<int>& y, std::uint64_t seed = 1);

  /// Probability of the positive (malicious) class.
  float predict(std::span<const float> x) const;

  /// Raw additive score (logit).
  float decision(std::span<const float> x) const;

  std::size_t num_trees() const { return trees_.size(); }
  const GbdtConfig& config() const { return cfg_; }

  /// Split-count feature importance: how often each feature is used as a
  /// split across the ensemble (normalized to sum to 1; empty before fit).
  std::vector<double> feature_importance(std::size_t dim) const;

  void save(util::Archive& ar) const;
  void load(util::Unarchive& ar);

 private:
  struct Node {
    int feature = -1;       // -1 = leaf
    float threshold = 0.0f; // go left if x[feature] <= threshold
    int left = -1, right = -1;
    float value = 0.0f;     // leaf value
  };
  using Tree = std::vector<Node>;

  float tree_score(const Tree& t, std::span<const float> x) const;

  GbdtConfig cfg_;
  float base_score_ = 0.0f;
  std::vector<Tree> trees_;
};

}  // namespace mpass::ml
