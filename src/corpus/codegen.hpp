// Compiles a ProgramSpec into a real PE32 file with MVM code.
//
// The compiler plans all data (strings, encoded payload blobs, scratch
// space), assembles the behavior code twice (first pass sizes the text
// section, second pass re-emits with final virtual addresses -- instruction
// lengths are VA-independent so the fixpoint is exact), and lays out the
// standard section set: .text / .rdata / .data / .idata [/ .rsrc / .reloc],
// plus an XOR-encoded overlay for overlay-dependent samples.
#pragma once

#include "corpus/spec.hpp"

namespace mpass::corpus {

/// Compiles spec to a PE file + metadata. Deterministic in spec.seed.
/// Throws std::logic_error on inconsistent specs (e.g. OverlayLoader with an
/// empty overlay_payload).
CompiledSample compile_program(const ProgramSpec& spec);

}  // namespace mpass::corpus
