// Reproduces Table IV: obfuscation/packing (UPX, PESpin, ASPack) vs MPass
// on the commercial ML-AV simulators.
#include "bench_common.hpp"

int main() {
  using namespace mpass;
  const auto cfg = harness::ExperimentConfig::from_env();
  bench::BenchReport report("table4_obfuscation");
  const auto cells = harness::obfuscation_grid(cfg);
  report.add_cells(cells);
  const std::vector<std::string> attacks = {"UPX", "PESpin", "ASPack",
                                            "MPass"};
  // Paper Table IV is transposed (rows = methods); match that layout.
  util::Table table(
      "Table IV: Comparison with obfuscation techniques, ASR (%) on AVs");
  table.header({"Method", "AV1", "AV2", "AV3", "AV4", "AV5"});
  for (const std::string& a : attacks) {
    std::vector<std::string> row = {a};
    for (const std::string& t : bench::av_targets())
      row.push_back(
          util::Table::num(bench::cell(cells, a, t).asr, 1));
    table.row(row);
  }
  std::cout << table.render();
  std::printf(
      "Paper Table IV:\n"
      "  UPX 17.1/19.8/11.5/14.8/7.6   PESpin 12.2/16.4/4.0/11.8/5.5\n"
      "  ASPack 17.6/4.2/9.6/12.6/9.3  MPass 42.3/35.8/61.2/58.8/29.2\n");
  bench::export_results_csv("obfuscation", cells);
  return 0;
}
