// GAMMA: genetic benign-section injection (Demetrio et al., IEEE TIFS 2021
// -- reference [16] of the paper), adapted to the hard-label setting.
//
// A genome selects which sections harvested from benign donor programs get
// injected (plus an overlay padding gene). A small population evolves by
// tournament selection, crossover and mutation; each evaluation costs one
// hard-label query. Fitness prefers evasion first, smaller payloads second
// -- which still leaves GAMMA with the by-far-largest APR of all attacks
// (Table III), since whole benign sections are injected.
#pragma once

#include "attack/attack.hpp"
#include "pe/pe.hpp"
#include "util/rng.hpp"

namespace mpass::attack {

struct GammaConfig {
  std::size_t library_sections = 24;  // harvested donor sections
  std::size_t population = 8;
  double mutation_rate = 0.15;
};

class Gamma : public Attack {
 public:
  Gamma(GammaConfig cfg, std::span<const util::ByteBuf> benign_pool);

  std::string_view name() const override { return "GAMMA"; }

  AttackResult run(std::span<const std::uint8_t> malware,
                   detect::HardLabelOracle& oracle,
                   std::uint64_t seed) override;

  /// Copies the harvested donor-section library.
  std::unique_ptr<Attack> clone() const override {
    return std::make_unique<Gamma>(*this);
  }

 private:
  struct Genome {
    std::vector<bool> use;      // which library sections to inject
    std::uint32_t overlay_pad;  // extra benign overlay bytes
  };

  /// Builds the genome's phenotype from the pre-parsed base PE (parsed once
  /// per run(); every genome evaluation used to re-parse the same malware,
  /// which dominated per-query cost once scoring went incremental).
  util::ByteBuf express(const pe::PeFile& base, const Genome& g) const;

  GammaConfig cfg_;
  struct LibSection {
    std::string name;
    util::ByteBuf data;
  };
  std::vector<LibSection> library_;
  util::ByteBuf pad_source_;
};

}  // namespace mpass::attack
