#include "detectors/avsim.hpp"

#include <algorithm>
#include <cstring>
#include <unordered_map>
#include <unordered_set>

#include "detectors/training.hpp"
#include "util/hashing.hpp"
#include "util/stats.hpp"

namespace mpass::detect {

using util::ByteBuf;

// ---- SignatureDb -----------------------------------------------------------

void SignatureDb::add(ByteBuf pattern) {
  patterns_.push_back(std::move(pattern));
}

bool SignatureDb::matches(std::span<const std::uint8_t> bytes) const {
  for (const ByteBuf& p : patterns_) {
    if (p.empty() || p.size() > bytes.size()) continue;
    const void* hit = memmem(bytes.data(), bytes.size(), p.data(), p.size());
    if (hit != nullptr) return true;
  }
  return false;
}

void SignatureDb::save(util::Archive& ar) const {
  ar.tag("sigdb");
  ar.u32(static_cast<std::uint32_t>(patterns_.size()));
  for (const ByteBuf& p : patterns_) ar.bytes(p);
}

void SignatureDb::load(util::Unarchive& ar) {
  ar.tag("sigdb");
  patterns_.assign(ar.u32(), {});
  for (ByteBuf& p : patterns_) p = ar.bytes();
}

// ---- signature mining -------------------------------------------------------

std::vector<ByteBuf> mine_signatures(std::span<const ByteBuf> malicious,
                                     std::span<const ByteBuf> benign,
                                     std::size_t ngram, std::size_t max_sigs,
                                     double min_doc_frac) {
  if (malicious.empty() || ngram == 0) return {};

  // Hash set of every benign n-gram (stride 1: the whitelist must be tight).
  std::unordered_set<std::uint64_t> benign_grams;
  for (const ByteBuf& doc : benign) {
    if (doc.size() < ngram) continue;
    for (std::size_t i = 0; i + ngram <= doc.size(); ++i)
      benign_grams.insert(util::fnv1a64({doc.data() + i, ngram}));
  }

  // Document frequency of malicious n-grams (stride 2 for speed; exemplar
  // bytes kept for the first occurrence).
  struct Entry {
    std::size_t docs = 0;
    const std::uint8_t* exemplar = nullptr;
  };
  std::unordered_map<std::uint64_t, Entry> freq;
  std::unordered_set<std::uint64_t> seen_in_doc;
  for (const ByteBuf& doc : malicious) {
    if (doc.size() < ngram) continue;
    seen_in_doc.clear();
    for (std::size_t i = 0; i + ngram <= doc.size(); i += 2) {
      const std::uint64_t h = util::fnv1a64({doc.data() + i, ngram});
      if (benign_grams.contains(h)) continue;
      if (!seen_in_doc.insert(h).second) continue;
      Entry& e = freq[h];
      ++e.docs;
      if (!e.exemplar) e.exemplar = doc.data() + i;
    }
  }

  const std::size_t min_docs = std::max<std::size_t>(
      1, static_cast<std::size_t>(min_doc_frac *
                                  static_cast<double>(malicious.size())));
  std::vector<std::pair<std::size_t, const std::uint8_t*>> ranked;
  for (const auto& [h, e] : freq)
    if (e.docs >= min_docs) ranked.emplace_back(e.docs, e.exemplar);
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });

  std::vector<ByteBuf> out;
  out.reserve(std::min(max_sigs, ranked.size()));
  for (const auto& [docs, ptr] : ranked) {
    if (out.size() >= max_sigs) break;
    out.emplace_back(ptr, ptr + ngram);
  }
  return out;
}

// ---- profiles ---------------------------------------------------------------

std::vector<AvProfile> default_av_profiles() {
  using Model = AvProfile::Model;
  std::vector<AvProfile> v;
  // AV1 "MAX": feature-space GBDT with vendor heuristics, mid signature DB.
  v.push_back({"AV1", Model::Gbdt, 0.015, 160, 0.05, 101, 250, 250});
  // AV2 "CrowdStrike": hybrid (byte net + heuristic GBDT), larger sig DB.
  v.push_back({"AV2", Model::Hybrid, 0.015, 220, 0.05, 202, 300, 300});
  // AV3 "Acronis": pure byte-level model, small signature DB (most
  // code/data focused -- the AV MPass evades best, Fig. 3).
  v.push_back({"AV3", Model::ByteConv, 0.02, 60, 0.10, 303, 200, 200});
  // AV4 "SentinelOne": channel-gated byte net, small-mid signature DB.
  v.push_back({"AV4", Model::ByteConvGcg, 0.015, 90, 0.08, 404, 250, 250});
  // AV5 "Cylance": hybrid ensemble + big signature DB + strict threshold
  // (hardest target).
  v.push_back({"AV5", Model::Hybrid, 0.03, 300, 0.04, 505, 350, 350});
  return v;
}

// ---- CommercialAv -------------------------------------------------------------

CommercialAv::CommercialAv(AvProfile profile, Untrained)
    : profile_(std::move(profile)) {
  using Model = AvProfile::Model;
  if (profile_.model == Model::Gbdt || profile_.model == Model::Hybrid) {
    ml::GbdtConfig cfg = lightgbm_config();
    cfg.trees = 120;
    gbdt_ = std::make_unique<GbdtDetector>(profile_.name + "-gbdt", cfg,
                                           /*vendor_features=*/true);
  }
  if (profile_.model != Model::Gbdt) {
    ml::ByteConvConfig cfg = profile_.model == Model::ByteConvGcg
                                 ? malgcg_config()
                                 : malconv_config();
    cfg.filters = 20;
    net_ = std::make_unique<ByteConvDetector>(profile_.name + "-net", cfg,
                                              profile_.seed);
  }
}

CommercialAv::CommercialAv(AvProfile profile,
                           const corpus::Dataset& shared_train)
    : profile_(std::move(profile)) {
  // Vendor corpus = shared feed + vendor-private telemetry.
  corpus::Dataset vendor = shared_train;
  const std::uint64_t base = util::fnv1a64(profile_.name) ^ profile_.seed;
  for (std::size_t i = 0; i < profile_.vendor_malware; ++i) {
    corpus::CompiledSample s =
        corpus::make_malware(util::hash_combine(base, 0xA0 + i));
    vendor.samples.push_back({s.bytes(), 1, std::move(s.meta)});
  }
  for (std::size_t i = 0; i < profile_.vendor_benign; ++i) {
    corpus::CompiledSample s =
        corpus::make_benign(util::hash_combine(base, 0xB0 + i));
    vendor.samples.push_back({s.bytes(), 0, std::move(s.meta)});
  }

  // Train the ML component.
  using Model = AvProfile::Model;
  if (profile_.model == Model::Gbdt || profile_.model == Model::Hybrid) {
    ml::GbdtConfig cfg = lightgbm_config();
    cfg.trees = 120;
    gbdt_ = std::make_unique<GbdtDetector>(profile_.name + "-gbdt", cfg,
                                           /*vendor_features=*/true);
    train_gbdt(*gbdt_, vendor, profile_.seed);
  }
  if (profile_.model != Model::Gbdt) {
    ml::ByteConvConfig cfg = profile_.model == Model::ByteConvGcg
                                 ? malgcg_config()
                                 : malconv_config();
    cfg.filters = 20;
    net_ = std::make_unique<ByteConvDetector>(profile_.name + "-net", cfg,
                                              profile_.seed);
    NetTrainConfig tc;
    tc.epochs = 2;
    tc.seed = profile_.seed;
    train_net(*net_, vendor, tc);
  }

  // Vendor benign whitelist + initial signatures from known malware.
  std::vector<ByteBuf> mal_docs, ben_docs;
  for (const corpus::Sample& s : vendor.samples)
    (s.label ? mal_docs : ben_docs).push_back(s.bytes);
  benign_ref_ = ben_docs;
  for (ByteBuf& sig :
       mine_signatures(mal_docs, ben_docs, 12, profile_.max_sigs,
                       profile_.min_doc_frac))
    sigs_.add(std::move(sig));

  // Calibrate the ML threshold on the vendor corpus.
  corpus::Dataset calib = vendor;
  std::vector<double> scores;
  std::vector<int> labels;
  for (const corpus::Sample& s : calib.samples) {
    scores.push_back(model_score(s.bytes));
    labels.push_back(s.label);
  }
  set_threshold(util::threshold_for_fpr(scores, labels, profile_.target_fpr));
}

double CommercialAv::model_score(std::span<const std::uint8_t> bytes) const {
  switch (profile_.model) {
    case AvProfile::Model::Gbdt:
      return gbdt_->score(bytes);
    case AvProfile::Model::ByteConv:
    case AvProfile::Model::ByteConvGcg:
      return net_->score(bytes);
    case AvProfile::Model::Hybrid:
      return std::max(gbdt_->score(bytes), net_->score(bytes));
  }
  return 0.0;
}

double CommercialAv::score(std::span<const std::uint8_t> bytes) const {
  if (sigs_.matches(bytes)) return 1.0;
  return model_score(bytes);
}

std::size_t CommercialAv::update(std::span<const ByteBuf> submissions) {
  ++updates_;
  if (submissions.empty()) return 0;
  std::vector<ByteBuf> fresh = mine_signatures(
      submissions, benign_ref_, 12,
      /*max_sigs=*/64, /*min_doc_frac=*/std::max(0.08, profile_.min_doc_frac));
  std::size_t added = 0;
  for (ByteBuf& sig : fresh) {
    sigs_.add(std::move(sig));
    ++added;
  }
  return added;
}

std::unique_ptr<Detector> CommercialAv::clone() const {
  auto copy = std::make_unique<CommercialAv>(profile_, Untrained{});
  util::Archive ar;
  save(ar);
  const ByteBuf blob = ar.take();
  util::Unarchive un(blob);
  copy->load(un);
  return copy;
}

void CommercialAv::save(util::Archive& ar) const {
  ar.tag("commercial-av");
  ar.str(profile_.name);
  ar.f64(threshold());
  ar.u32(static_cast<std::uint32_t>(profile_.model));
  if (gbdt_) gbdt_->save(ar);
  if (net_) net_->save(ar);
  sigs_.save(ar);
  ar.u32(static_cast<std::uint32_t>(benign_ref_.size()));
  for (const ByteBuf& b : benign_ref_) ar.bytes(b);
}

void CommercialAv::load(util::Unarchive& ar) {
  ar.tag("commercial-av");
  profile_.name = ar.str();
  set_threshold(ar.f64());
  const auto model = static_cast<AvProfile::Model>(ar.u32());
  if (model != profile_.model)
    throw util::ParseError("commercial-av: model kind mismatch");
  if (gbdt_) gbdt_->load(ar);
  if (net_) net_->load(ar);
  sigs_.load(ar);
  benign_ref_.assign(ar.u32(), {});
  for (ByteBuf& b : benign_ref_) b = ar.bytes();
}

}  // namespace mpass::detect
