file(REMOVE_RECURSE
  "CMakeFiles/attack_commercial_av.dir/attack_commercial_av.cpp.o"
  "CMakeFiles/attack_commercial_av.dir/attack_commercial_av.cpp.o.d"
  "attack_commercial_av"
  "attack_commercial_av.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attack_commercial_av.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
