// MalRNN: byte-level language-model append attack (Ebrahimi et al. 2020 --
// reference [14] of the paper).
//
// A GRU language model trained on benign programs generates benign-looking
// byte streams that are appended to the malware overlay in growing chunks;
// one hard-label query per append. Effective against byte-level detectors
// whose features the appended tail can dilute, largely ineffective against
// feature-space models (LightGBM row of Table I).
#pragma once

#include "attack/attack.hpp"
#include "ml/gru.hpp"

namespace mpass::attack {

struct MalRnnConfig {
  std::size_t initial_chunk = 2048;
  double growth = 1.5;             // chunk growth per miss
  std::size_t max_chunk = 8192;    // per-query generation cap
  std::size_t max_total = 1 << 16; // appended-bytes cap; then resample
  float temperature = 0.8f;
};

class MalRnn : public Attack {
 public:
  /// lm: the benign byte language model (ModelZoo::benign_lm()).
  MalRnn(MalRnnConfig cfg, ml::GruLm& lm) : cfg_(cfg), lm_(lm) {}

  std::string_view name() const override { return "MalRNN"; }

  AttackResult run(std::span<const std::uint8_t> malware,
                   detect::HardLabelOracle& oracle,
                   std::uint64_t seed) override;

  /// Clones share the language model: GruLm::generate() only reads the
  /// trained parameters (no lazy buffers), so concurrent sampling with
  /// per-clone Rng streams is race-free.
  std::unique_ptr<Attack> clone() const override {
    return std::make_unique<MalRnn>(*this);
  }

 private:
  MalRnnConfig cfg_;
  ml::GruLm& lm_;
};

}  // namespace mpass::attack
