// The shared manipulation action set used by the RL / bandit baselines --
// the functionality-safe transformations of gym-malware (Anderson et al.)
// plus RLA's risky overlay actions. All actions operate on whole PE files
// and return std::nullopt when inapplicable.
#pragma once

#include <optional>

#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace mpass::attack {

enum class Action {
  AppendOverlay,     // append benign bytes to the overlay tail
  AddBenignSection,  // inject a section of benign content
  RenameSections,    // randomize section names
  SetTimestamp,      // perturb the COFF timestamp
  AppendImports,     // add benign imports (within section slack)
  UpxPack,           // repack the binary (UPX-like)
  RemoveOverlay,     // strip the overlay -- RISKY: breaks self-reading
                     // malware (the source of RLA's broken AEs, §IV-A)
  kCount,
};
inline constexpr std::size_t kNumActions =
    static_cast<std::size_t>(Action::kCount);

std::string_view action_name(Action a);

/// True for actions that can break functionality (RLA uses them anyway).
bool is_risky(Action a);

/// Applies one action. `benign_pool` donates content where needed.
std::optional<util::ByteBuf> apply_action(
    Action action, std::span<const std::uint8_t> file,
    std::span<const util::ByteBuf> benign_pool, util::Rng& rng);

/// Coarse state fingerprint of a file for tabular RL (RLA).
std::uint64_t state_fingerprint(std::span<const std::uint8_t> file);

}  // namespace mpass::attack
