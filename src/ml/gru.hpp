// GRU byte-level language model: the generative substrate of the MalRNN
// baseline (Ebrahimi et al. 2020), trained on benign program bytes and
// sampled to produce benign-looking append payloads.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "ml/param.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace mpass::ml {

struct GruLmConfig {
  int embed = 16;
  int hidden = 48;
  int vocab = 257;  // 256 bytes + start-of-stream token
  int bptt = 96;    // training window length
};

class GruLm {
 public:
  GruLm(const GruLmConfig& cfg, std::uint64_t seed);

  /// One training pass over `windows` randomly sampled byte windows drawn
  /// from the corpus streams. Returns mean cross-entropy (nats/byte).
  float train_epoch(const std::vector<util::ByteBuf>& corpus,
                    std::size_t windows, float lr, util::Rng& rng);

  /// Samples n bytes autoregressively, optionally conditioned on a context
  /// prefix; temperature < 1 sharpens toward the learned benign statistics.
  util::ByteBuf generate(std::size_t n, util::Rng& rng,
                         std::span<const std::uint8_t> context = {},
                         float temperature = 0.8f);

  /// Mean cross-entropy of a byte sequence under the model (nats/byte).
  float evaluate(std::span<const std::uint8_t> bytes);

  const GruLmConfig& config() const { return cfg_; }

  void save(util::Archive& ar) const;
  void load(util::Unarchive& ar);

 private:
  struct StepCache;

  /// One GRU step; returns new hidden state, fills cache if given.
  void step(int token, std::vector<float>& h, StepCache* cache) const;

  /// Softmax over logits of hidden state h.
  std::vector<float> output_probs(const std::vector<float>& h) const;

  GruLmConfig cfg_;
  ParamSet params_;
  Param* emb_;                 // vocab x embed
  Param* wz_; Param* uz_; Param* bz_;
  Param* wr_; Param* ur_; Param* br_;
  Param* wn_; Param* un_; Param* bn_;
  Param* wo_; Param* bo_;      // vocab x hidden output head
  std::unique_ptr<Adam> opt_;
};

}  // namespace mpass::ml
