file(REMOVE_RECURSE
  "CMakeFiles/mpass_explain.dir/pem.cpp.o"
  "CMakeFiles/mpass_explain.dir/pem.cpp.o.d"
  "CMakeFiles/mpass_explain.dir/shapley.cpp.o"
  "CMakeFiles/mpass_explain.dir/shapley.cpp.o.d"
  "libmpass_explain.a"
  "libmpass_explain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpass_explain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
