#include "attack/mpass_attack.hpp"

namespace mpass::attack {

core::MpassConfig MpassAttack::default_config() { return {}; }

core::MpassConfig MpassAttack::other_sec_config() {
  core::MpassConfig cfg;
  cfg.modification.targets = core::TargetMode::OtherSec;
  return cfg;
}

core::MpassConfig MpassAttack::random_data_config() {
  core::MpassConfig cfg;
  cfg.random_content = true;
  cfg.optimize = false;
  return cfg;
}

core::MpassConfig MpassAttack::no_shuffle_config() {
  core::MpassConfig cfg;
  cfg.modification.stub.shuffle = false;
  return cfg;
}

}  // namespace mpass::attack
