file(REMOVE_RECURSE
  "CMakeFiles/mpass_vm.dir/api.cpp.o"
  "CMakeFiles/mpass_vm.dir/api.cpp.o.d"
  "CMakeFiles/mpass_vm.dir/machine.cpp.o"
  "CMakeFiles/mpass_vm.dir/machine.cpp.o.d"
  "CMakeFiles/mpass_vm.dir/sandbox.cpp.o"
  "CMakeFiles/mpass_vm.dir/sandbox.cpp.o.d"
  "CMakeFiles/mpass_vm.dir/trace_io.cpp.o"
  "CMakeFiles/mpass_vm.dir/trace_io.cpp.o.d"
  "libmpass_vm.a"
  "libmpass_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpass_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
