# Empty dependencies file for mpass_corpus.
# This may be replaced when dependencies are built.
