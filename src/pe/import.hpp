// Compact import table. The PE data-directory entry and section plumbing are
// standard; the in-section record format is simplified (see DESIGN.md):
//
//   u32 magic 'IMP1' | u32 count | count * { u16 api_id | u8 len | name }
//
// api_id matches the MVM SYS immediate for the imported API, so the import
// table is consistent with the code section -- static detectors featurize
// both, as EMBER does for real imports.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pe/pe.hpp"

namespace mpass::pe {

struct Import {
  std::uint16_t api_id = 0;
  std::string name;
  bool operator==(const Import&) const = default;
};

/// Serializes an import list to the in-section record format.
ByteBuf encode_imports(std::span<const Import> imports);

/// Parses the record format; throws util::ParseError on malformed data.
std::vector<Import> decode_imports(std::span<const std::uint8_t> data);

/// Adds an ".idata" section holding the imports and points the import data
/// directory at it. Returns the section index.
std::size_t attach_import_section(PeFile& file, std::span<const Import> imports);

/// Reads the import list via the import data directory; empty if the
/// directory is unset or malformed (tolerant: detectors must not crash on
/// adversarial files).
std::vector<Import> read_imports(const PeFile& file);

}  // namespace mpass::pe
