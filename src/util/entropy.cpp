#include "util/entropy.hpp"

#include <algorithm>
#include <cmath>

namespace mpass::util {

std::array<std::uint32_t, 256> byte_histogram(
    std::span<const std::uint8_t> data) {
  std::array<std::uint32_t, 256> hist{};
  for (std::uint8_t b : data) ++hist[b];
  return hist;
}

double shannon_entropy(std::span<const std::uint8_t> data) {
  if (data.empty()) return 0.0;
  const auto hist = byte_histogram(data);
  const double n = static_cast<double>(data.size());
  double h = 0.0;
  for (std::uint32_t c : hist) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / n;
    h -= p * std::log2(p);
  }
  return h;
}

std::vector<double> windowed_entropy(std::span<const std::uint8_t> data,
                                     std::size_t window) {
  std::vector<double> out;
  if (window == 0) return out;
  std::size_t pos = 0;
  while (pos < data.size()) {
    const std::size_t len = std::min(window, data.size() - pos);
    if (len < window / 2 && pos != 0) break;  // drop tiny trailing windows
    out.push_back(shannon_entropy(data.subspan(pos, len)));
    pos += len;
  }
  return out;
}

std::vector<float> byte_entropy_histogram(std::span<const std::uint8_t> data,
                                          std::size_t window) {
  std::vector<float> hist(256, 0.0f);
  if (data.empty() || window == 0) return hist;
  std::size_t total_windows = 0;
  std::size_t pos = 0;
  while (pos < data.size()) {
    const std::size_t len = std::min(window, data.size() - pos);
    auto chunk = data.subspan(pos, len);
    const double h = shannon_entropy(chunk);
    double mean = 0.0;
    for (std::uint8_t b : chunk) mean += b;
    mean /= static_cast<double>(len);
    // Quantize entropy [0,8] and mean byte [0,256) to 16 bins each.
    int eb = std::min(15, static_cast<int>(h * 2.0));
    int vb = std::min(15, static_cast<int>(mean / 16.0));
    hist[static_cast<std::size_t>(eb * 16 + vb)] += 1.0f;
    ++total_windows;
    pos += len;
  }
  if (total_windows > 0) {
    const float inv = 1.0f / static_cast<float>(total_windows);
    for (float& v : hist) v *= inv;
  }
  return hist;
}

double printable_ratio(std::span<const std::uint8_t> data) {
  if (data.empty()) return 0.0;
  std::size_t printable = 0;
  for (std::uint8_t b : data)
    if (b >= 0x20 && b <= 0x7e) ++printable;
  return static_cast<double>(printable) / static_cast<double>(data.size());
}

}  // namespace mpass::util
