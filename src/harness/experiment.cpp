#include "harness/experiment.hpp"

#include <bit>
#include <chrono>
#include <cmath>
#include <cstdlib>

#include "attack/gamma.hpp"
#include "attack/mab.hpp"
#include "attack/malrnn.hpp"
#include "attack/mpass_attack.hpp"
#include "attack/obfuscate.hpp"
#include "attack/rla.hpp"
#include "corpus/generator.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "util/hashing.hpp"
#include "util/serialize.hpp"

namespace mpass::harness {

using util::ByteBuf;

ExperimentConfig ExperimentConfig::from_env() {
  ExperimentConfig cfg;
  if (const char* v = std::getenv("MPASS_N"); v && *v)
    cfg.n_samples = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
  if (const char* v = std::getenv("MPASS_MAX_QUERIES"); v && *v)
    cfg.max_queries = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
  if (const char* v = std::getenv("MPASS_EXP_SEED"); v && *v)
    cfg.seed = std::strtoull(v, nullptr, 10);
  if (std::getenv("MPASS_NO_CACHE")) cfg.use_cache = false;
  return cfg;
}

std::uint64_t ExperimentConfig::digest() const {
  std::uint64_t h = 9;  // bump to invalidate cached results
  h = util::hash_combine(h, n_samples);
  h = util::hash_combine(h, max_queries);
  h = util::hash_combine(h, seed);
  // Config-only zoo digest: must not force model training.
  h = util::hash_combine(h, detect::ZooConfig::from_env().digest());
  return h;
}

std::vector<ByteBuf> make_attack_set(
    std::span<const detect::Detector* const> gate, std::size_t n,
    std::uint64_t seed) {
  std::vector<ByteBuf> out;
  std::size_t i = 0;
  while (out.size() < n && i < n * 40) {
    corpus::CompiledSample s =
        corpus::make_malware(util::hash_combine(seed, 0xA11ACC + i));
    ++i;
    ByteBuf bytes = s.bytes();
    bool detected_by_all = true;
    for (const detect::Detector* d : gate)
      if (!d->is_malicious(bytes)) detected_by_all = false;
    if (detected_by_all) out.push_back(std::move(bytes));
  }
  return out;
}

namespace {

/// Result of attacking one sample -- the unit of parallelism and of the
/// per-sample result cache.
struct SampleOutcome {
  bool success = false;
  ByteBuf adversarial;            // kept only for successful AEs
  std::uint64_t queries = 0;      // attack-reported (the paper's AVQ input)
  std::uint64_t total_queries = 0;  // oracle counter incl. failed runs
  double apr = 0.0;
  bool functional = false;
  double ms = 0.0;  // attack compute time; not cached -- hits cost ~0
  // True when loaded from the per-sample cache (never serialized). Cache
  // hits skip the attack entirely, so they produce no trace file; run_cell
  // reports the fresh-run count as "traced" in cells.jsonl so the trace
  // checker knows which cells can reconcile query totals.
  bool from_cache = false;
};

/// Shard directory for one (config digest, attack, target) cell; one file
/// per sample digest inside it.
std::filesystem::path sample_shard_dir(const ExperimentConfig& cfg,
                                       std::string_view attack,
                                       std::string_view target) {
  char shard[160];
  std::snprintf(shard, sizeof(shard), "%s-%s-%016llx",
                std::string(attack).c_str(), std::string(target).c_str(),
                static_cast<unsigned long long>(cfg.digest()));
  return util::cache_dir() / "results" / "samples" / shard;
}

std::filesystem::path sample_path(const std::filesystem::path& shard,
                                  std::uint64_t sample_digest) {
  char name[40];
  std::snprintf(name, sizeof(name), "%016llx.bin",
                static_cast<unsigned long long>(sample_digest));
  return shard / name;
}

void save_sample(const std::filesystem::path& path, const SampleOutcome& s) {
  util::Archive ar;
  ar.tag("sample");
  ar.u32(s.success ? 1 : 0);
  ar.bytes(s.adversarial);
  ar.u64(s.queries);
  ar.u64(s.total_queries);
  ar.f64(s.apr);
  ar.u32(s.functional ? 1 : 0);
  util::save_file(path, ar.take());
}

std::optional<SampleOutcome> load_sample(const std::filesystem::path& path) {
  const auto blob = util::load_file(path);
  if (!blob) return std::nullopt;
  try {
    util::Unarchive ar(*blob);
    SampleOutcome s;
    ar.tag("sample");
    s.success = ar.u32() != 0;
    s.adversarial = ar.bytes();
    s.queries = ar.u64();
    s.total_queries = ar.u64();
    s.apr = ar.f64();
    s.functional = ar.u32() != 0;
    return s;
  } catch (const util::ParseError&) {
    return std::nullopt;
  }
}

/// Attacks one sample; the RNG stream is derived from (seed, sample digest)
/// so the outcome is a pure function of (config, attack, target, sample).
SampleOutcome attack_one(attack::Attack& atk, const detect::Detector& target,
                         const vm::Sandbox& sandbox,
                         std::span<const std::uint8_t> sample,
                         const ByteBuf& orig, const ExperimentConfig& cfg,
                         std::uint64_t sample_digest) {
  const auto t0 = std::chrono::steady_clock::now();
  // One trace file per executed (attack, target, sample) run; the oracle
  // and the attack emit query/opt/action events into it while the scope is
  // open. Cache hits never reach this function, so never re-trace.
  obs::TraceScope trace(atk.name(), target.name(), sample_digest, cfg.seed,
                        cfg.max_queries);
  detect::HardLabelOracle oracle(target, cfg.max_queries);
  const attack::AttackResult r =
      atk.run(sample, oracle, util::hash_combine(cfg.seed, sample_digest));
  SampleOutcome out;
  out.total_queries = oracle.queries();
  if (r.success) {
    out.success = true;
    out.queries = r.queries;
    out.apr = r.apr;
    // Paper §IV-A: verify AEs still show the original runtime behavior.
    if (sandbox.functionality_preserved(orig, r.adversarial)) {
      out.functional = true;
      out.adversarial = r.adversarial;
    }
  }
  out.ms = std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
               .count();
  if (obs::tracing())
    obs::Event("end")
        .boolean("success", out.success)
        .uint("queries", out.total_queries)
        .num("apr", out.apr)
        .num("ms", out.ms)
        .boolean("functional", out.functional);
  return out;
}

}  // namespace

std::uint64_t CellStats::result_digest() const {
  std::uint64_t h = util::fnv1a64(attack);
  h = util::fnv1a64(target, h);
  h = util::hash_combine(h, n);
  h = util::hash_combine(h, successes);
  for (double v : {asr, avq, apr, functional})
    h = util::hash_combine(h, std::bit_cast<std::uint64_t>(v));
  h = util::hash_combine(h, aes.size());
  for (const ByteBuf& ae : aes) h = util::fnv1a64(ae, h);
  return h;
}

CellStats run_cell(attack::Attack& atk, const detect::Detector& target,
                   std::span<const ByteBuf> samples,
                   std::span<const ByteBuf> originals_for_sandbox,
                   const ExperimentConfig& cfg, util::ThreadPool* pool) {
  OBS_SCOPE("harness.run_cell");
  CellStats stats;
  stats.attack = std::string(atk.name());
  stats.target = std::string(target.name());
  stats.n = samples.size();

  std::vector<std::uint64_t> digests(samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i)
    digests[i] = util::fnv1a64(samples[i]);
  const auto original_of = [&](std::size_t i) -> const ByteBuf& {
    return originals_for_sandbox.empty() ? samples[i]
                                         : originals_for_sandbox[i];
  };

  // Probe the clone contract once; prototypes are discarded.
  const bool clonable = atk.clone() != nullptr && target.clone() != nullptr;

  std::vector<SampleOutcome> outcomes(samples.size());
  if (clonable) {
    // One task per sample. Each task owns a cloned attack + cloned target
    // (no shared forward caches) and consults the per-sample result cache
    // first, so interrupted runs resume where they stopped.
    const auto shard = sample_shard_dir(cfg, stats.attack, stats.target);
    util::ThreadPool& tp = pool ? *pool : util::ThreadPool::instance();
    std::vector<std::future<SampleOutcome>> futs;
    futs.reserve(samples.size());
    for (std::size_t i = 0; i < samples.size(); ++i) {
      futs.push_back(tp.submit([&, i]() -> SampleOutcome {
        const auto path = sample_path(shard, digests[i]);
        if (cfg.use_cache)
          if (auto hit = load_sample(path)) {
            hit->from_cache = true;
            return *hit;
          }
        const std::unique_ptr<attack::Attack> a = atk.clone();
        const std::unique_ptr<detect::Detector> t = target.clone();
        const vm::Sandbox sandbox;
        SampleOutcome out = attack_one(*a, *t, sandbox, samples[i],
                                       original_of(i), cfg, digests[i]);
        if (cfg.use_cache) save_sample(path, out);
        return out;
      }));
    }
    // Collect in sample order (tasks complete in any order; the aggregate
    // below is order-deterministic regardless).
    for (std::size_t i = 0; i < futs.size(); ++i)
      outcomes[i] = tp.wait(std::move(futs[i]));
  } else {
    const vm::Sandbox sandbox;
    for (std::size_t i = 0; i < samples.size(); ++i)
      outcomes[i] = attack_one(atk, target, sandbox, samples[i],
                               original_of(i), cfg, digests[i]);
  }

  double sum_q = 0.0, sum_apr = 0.0;
  std::size_t functional = 0, fresh = 0;
  for (SampleOutcome& out : outcomes) {
    stats.total_queries += out.total_queries;
    stats.wall_ms += out.ms;
    if (!out.from_cache) ++fresh;
    if (!out.success) continue;
    ++stats.successes;
    sum_q += static_cast<double>(out.queries);
    sum_apr += out.apr;
    if (out.functional) {
      ++functional;
      stats.aes.push_back(std::move(out.adversarial));
    }
  }
  if (stats.n > 0)
    stats.asr = 100.0 * static_cast<double>(stats.successes) /
                static_cast<double>(stats.n);
  if (stats.successes > 0) {
    stats.avq = sum_q / static_cast<double>(stats.successes);
    stats.apr = 100.0 * sum_apr / static_cast<double>(stats.successes);
    stats.functional = 100.0 * static_cast<double>(functional) /
                       static_cast<double>(stats.successes);
  }
  // Guard both the zero and the non-finite case: all-cache-hit cells have
  // wall_ms == 0 (or denormal sums), and qps must stay a finite number --
  // it is serialized and later printed with %.0f.
  stats.qps = std::isfinite(stats.wall_ms) && stats.wall_ms > 1e-9
                  ? static_cast<double>(stats.total_queries) /
                        (stats.wall_ms / 1000.0)
                  : 0.0;
  if (!std::isfinite(stats.qps)) stats.qps = 0.0;
  if (obs::trace_dir()) {
    // Reconciliation anchor for tools/mpass_trace --check: when traced == n
    // every sample left a fresh trace file and the sum of their end.queries
    // must equal total_queries; cells with cache hits cannot reconcile.
    obs::JsonLine line;
    line.str("ev", "cell")
        .str("attack", stats.attack)
        .str("target", stats.target)
        .uint("n", stats.n)
        .uint("traced", fresh)
        .uint("total_queries", stats.total_queries)
        .num("wall_ms", stats.wall_ms);
    obs::append_run_line("cells.jsonl", line.take());
  }
  stats.metrics = obs::Registry::instance().snapshot().flat();
  return stats;
}

std::unique_ptr<attack::Attack> make_attack(std::string_view name,
                                            detect::ModelZoo& zoo,
                                            std::string_view target_name) {
  // MPass variants clone the known models so concurrent grid cells never
  // share forward-pass caches.
  const attack::MpassAttack::CloneTag clone;
  if (name == "MPass") {
    const auto known = zoo.known_nets_excluding(target_name);
    return std::make_unique<attack::MpassAttack>(
        "MPass", attack::MpassAttack::default_config(), zoo.benign_pool(),
        known, clone);
  }
  if (name == "Other-sec") {
    const auto known = zoo.known_nets_excluding(target_name);
    return std::make_unique<attack::MpassAttack>(
        "Other-sec", attack::MpassAttack::other_sec_config(),
        zoo.benign_pool(), known, clone);
  }
  if (name == "Random-data")
    return std::make_unique<attack::MpassAttack>(
        "Random-data", attack::MpassAttack::random_data_config(),
        zoo.benign_pool(), std::vector<ml::ByteConvNet*>{});
  if (name == "MPass-noshuffle") {
    const auto known = zoo.known_nets_excluding(target_name);
    return std::make_unique<attack::MpassAttack>(
        "MPass-noshuffle", attack::MpassAttack::no_shuffle_config(),
        zoo.benign_pool(), known, clone);
  }
  if (name == "RLA")
    return std::make_unique<attack::Rla>(attack::RlaConfig{},
                                         zoo.benign_pool());
  if (name == "MAB")
    return std::make_unique<attack::Mab>(attack::MabConfig{},
                                         zoo.benign_pool());
  if (name == "GAMMA")
    return std::make_unique<attack::Gamma>(attack::GammaConfig{},
                                           zoo.benign_pool());
  if (name == "MalRNN")
    return std::make_unique<attack::MalRnn>(attack::MalRnnConfig{},
                                            zoo.benign_lm());
  if (name == "UPX")
    return std::make_unique<attack::ObfuscateAttack>(pack::PackerKind::UpxLike);
  if (name == "PESpin")
    return std::make_unique<attack::ObfuscateAttack>(
        pack::PackerKind::PespinLike);
  if (name == "ASPack")
    return std::make_unique<attack::ObfuscateAttack>(
        pack::PackerKind::AspackLike);
  throw std::invalid_argument("unknown attack: " + std::string(name));
}

// ---- cache ------------------------------------------------------------------

namespace {

std::filesystem::path cell_path(std::string_view key,
                                const ExperimentConfig& cfg) {
  char name[96];
  std::snprintf(name, sizeof(name), "exp-%s-%016llx.bin",
                std::string(key).c_str(),
                static_cast<unsigned long long>(cfg.digest()));
  return util::cache_dir() / "results" / name;
}

void save_cell(util::Archive& ar, const CellStats& c) {
  ar.tag("cell");
  ar.str(c.attack);
  ar.str(c.target);
  ar.u64(c.n);
  ar.u64(c.successes);
  ar.f64(c.asr);
  ar.f64(c.avq);
  ar.f64(c.apr);
  ar.f64(c.functional);
  ar.u32(static_cast<std::uint32_t>(c.aes.size()));
  for (const ByteBuf& ae : c.aes) ar.bytes(ae);
  ar.u64(c.total_queries);
  ar.f64(c.wall_ms);
  ar.f64(c.qps);
  ar.u32(static_cast<std::uint32_t>(c.metrics.size()));
  for (const auto& [name, value] : c.metrics) {
    ar.str(name);
    ar.f64(value);
  }
}

CellStats load_cell(util::Unarchive& ar) {
  CellStats c;
  ar.tag("cell");
  c.attack = ar.str();
  c.target = ar.str();
  c.n = ar.u64();
  c.successes = ar.u64();
  c.asr = ar.f64();
  c.avq = ar.f64();
  c.apr = ar.f64();
  c.functional = ar.f64();
  c.aes.assign(ar.u32(), {});
  for (ByteBuf& ae : c.aes) ae = ar.bytes();
  c.total_queries = ar.u64();
  c.wall_ms = ar.f64();
  c.qps = ar.f64();
  c.metrics.resize(ar.u32());
  for (auto& [name, value] : c.metrics) {
    name = ar.str();
    value = ar.f64();
  }
  return c;
}

}  // namespace

void save_cells(std::string_view key, const ExperimentConfig& cfg,
                const std::vector<CellStats>& cells) {
  util::Archive ar;
  ar.u32(static_cast<std::uint32_t>(cells.size()));
  for (const CellStats& c : cells) save_cell(ar, c);
  util::save_file(cell_path(key, cfg), ar.take());
}

std::optional<std::vector<CellStats>> load_cells(std::string_view key,
                                                 const ExperimentConfig& cfg) {
  if (!cfg.use_cache) return std::nullopt;
  auto blob = util::load_file(cell_path(key, cfg));
  if (!blob) return std::nullopt;
  try {
    util::Unarchive ar(*blob);
    std::vector<CellStats> cells(ar.u32());
    for (CellStats& c : cells) c = load_cell(ar);
    return cells;
  } catch (const util::ParseError&) {
    return std::nullopt;
  }
}

void export_csv(const std::filesystem::path& path,
                const std::vector<CellStats>& cells) {
  std::string csv = "attack,target,n,successes,asr,avq,apr,functional\n";
  char line[256];
  for (const CellStats& c : cells) {
    std::snprintf(line, sizeof(line), "%s,%s,%zu,%zu,%.2f,%.2f,%.2f,%.2f\n",
                  c.attack.c_str(), c.target.c_str(), c.n, c.successes, c.asr,
                  c.avq, c.apr, c.functional);
    csv += line;
  }
  util::save_file(path, util::to_bytes(csv));
}

// ---- canonical experiments -----------------------------------------------------

namespace {

std::vector<CellStats> run_grid(std::string_view key,
                                std::span<const std::string_view> attacks,
                                std::span<detect::Detector* const> targets,
                                bool gate_on_all_offline,
                                const ExperimentConfig& cfg) {
  if (auto cached = load_cells(key, cfg)) return *cached;
  detect::ModelZoo& zoo = detect::ModelZoo::instance();

  // Sample gate: paper requires initial detection by the target models.
  std::vector<const detect::Detector*> gate;
  if (gate_on_all_offline)
    for (detect::Detector* d : zoo.offline()) gate.push_back(d);
  else
    for (detect::Detector* d : targets) gate.push_back(d);
  const std::vector<ByteBuf> samples =
      make_attack_set(gate, cfg.n_samples, cfg.seed);

  // Attack prototypes are constructed up front on this thread -- cloning
  // reads the source nets' state, which must not race with tasks running
  // them. Each (target, attack) cell then becomes a pool task, and each
  // cell fans out one sub-task per sample (see run_cell); waiters help
  // drain the pool, so nesting cannot deadlock. The unit of parallelism is
  // (target, attack, sample) -- a 3-target grid no longer caps at 3 cores.
  std::vector<std::vector<std::unique_ptr<attack::Attack>>> attack_sets(
      targets.size());
  for (std::size_t t = 0; t < targets.size(); ++t)
    for (std::string_view atk_name : attacks)
      attack_sets[t].push_back(make_attack(atk_name, zoo, targets[t]->name()));

  util::ThreadPool& tp = util::ThreadPool::instance();
  std::vector<std::future<CellStats>> futs;
  futs.reserve(targets.size() * attacks.size());
  for (std::size_t t = 0; t < targets.size(); ++t)
    for (std::size_t a = 0; a < attacks.size(); ++a)
      futs.push_back(tp.submit([&, t, a] {
        return run_cell(*attack_sets[t][a], *targets[t], samples, samples,
                        cfg, &tp);
      }));

  std::vector<CellStats> cells;
  cells.reserve(futs.size());
  for (std::future<CellStats>& fut : futs) {
    cells.push_back(tp.wait(std::move(fut)));
    const CellStats& c = cells.back();
    obs::logf(obs::LogLevel::Info,
              "[%s] %s vs %s: ASR %.1f%% AVQ %.1f APR %.0f%% "
              "(%.0f ms, %.0f q/s)",
              std::string(key).c_str(), c.attack.c_str(), c.target.c_str(),
              c.asr, c.avq, c.apr, c.wall_ms, c.qps);
  }
  save_cells(key, cfg, cells);
  obs::write_metrics_snapshot();
  return cells;
}

constexpr std::string_view kMainAttacks[] = {"MPass", "RLA", "MAB", "GAMMA",
                                             "MalRNN"};

std::vector<detect::Detector*> av_targets() {
  std::vector<detect::Detector*> targets;
  for (const auto& av : detect::ModelZoo::instance().avs())
    targets.push_back(av.get());
  return targets;
}

}  // namespace

std::vector<CellStats> offline_grid(const ExperimentConfig& cfg) {
  auto targets = detect::ModelZoo::instance().offline();
  return run_grid("offline", kMainAttacks, targets, true, cfg);
}

std::vector<CellStats> av_grid(const ExperimentConfig& cfg) {
  auto targets = av_targets();
  return run_grid("avs", kMainAttacks, targets, false, cfg);
}

std::vector<CellStats> obfuscation_grid(const ExperimentConfig& cfg) {
  static constexpr std::string_view kAttacks[] = {"UPX", "PESpin", "ASPack",
                                                  "MPass"};
  auto targets = av_targets();
  return run_grid("obfuscation", kAttacks, targets, false, cfg);
}

std::vector<CellStats> other_sec_grid(const ExperimentConfig& cfg) {
  static constexpr std::string_view kAttacks[] = {"Other-sec", "MPass"};
  auto targets = av_targets();
  return run_grid("othersec", kAttacks, targets, false, cfg);
}

std::vector<CellStats> random_data_grid(const ExperimentConfig& cfg) {
  static constexpr std::string_view kAttacks[] = {"Random-data", "MPass"};
  auto targets = av_targets();
  return run_grid("randomdata", kAttacks, targets, false, cfg);
}

LearningTimeline av_learning_timeline(const ExperimentConfig& cfg) {
  detect::ModelZoo& zoo = detect::ModelZoo::instance();
  // Fig. 4 extends the Fig. 3 run, adding the no-shuffle MPass ablation so
  // the shuffle strategy's role in surviving AV learning is visible.
  std::vector<CellStats> cells = av_grid(cfg);
  {
    const std::string_view key = "avs-noshuffle";
    std::vector<CellStats> extra;
    if (auto cached = load_cells(key, cfg)) {
      extra = *cached;
    } else {
      std::vector<const detect::Detector*> gate;
      std::vector<ByteBuf> samples;
      for (const auto& av : zoo.avs()) {
        auto atk = make_attack("MPass-noshuffle", zoo, av->name());
        if (samples.empty()) {
          gate.assign(1, av.get());
          samples = make_attack_set(gate, cfg.n_samples, cfg.seed);
        }
        extra.push_back(run_cell(*atk, *av, samples, samples, cfg));
      }
      save_cells(key, cfg, extra);
    }
    cells.insert(cells.end(), extra.begin(), extra.end());
  }

  LearningTimeline tl;
  for (const auto& av : zoo.avs()) tl.avs.emplace_back(av->name());
  for (const CellStats& c : cells)
    if (std::find(tl.attacks.begin(), tl.attacks.end(), c.attack) ==
        tl.attacks.end())
      tl.attacks.push_back(c.attack);

  // Fresh AV copies so the learning simulation does not pollute the zoo.
  const auto profiles = detect::default_av_profiles();
  std::vector<std::unique_ptr<detect::CommercialAv>> avs;
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    auto av = std::make_unique<detect::CommercialAv>(
        profiles[i], detect::CommercialAv::Untrained{});
    // Clone trained state via the archive round-trip.
    util::Archive ar;
    zoo.avs()[i]->save(ar);
    const ByteBuf blob = ar.take();
    util::Unarchive un(blob);
    av->load(un);
    avs.push_back(std::move(av));
  }

  tl.bypass.assign(
      tl.attacks.size(),
      std::vector<std::vector<double>>(
          tl.avs.size(), std::vector<double>(tl.rounds, 0.0)));

  // Weekly rounds: round 0 is the initial 100% (successful AEs only).
  // Each following week the vendors mine signatures from that week's
  // submission batch (all attacks mixed, as uploaded to the scan service).
  for (std::size_t round = 0; round < tl.rounds; ++round) {
    if (round > 0) {
      for (std::size_t a = 0; a < tl.avs.size(); ++a) {
        std::vector<ByteBuf> batch;
        for (const CellStats& c : cells) {
          if (c.target != tl.avs[a]) continue;
          // Split each cell's AEs into (rounds-1) weekly slices.
          const std::size_t slices = tl.rounds - 1;
          for (std::size_t i = round - 1; i < c.aes.size(); i += slices)
            batch.push_back(c.aes[i]);
        }
        avs[a]->update(batch);
      }
    }
    for (const CellStats& c : cells) {
      const auto ai = static_cast<std::size_t>(
          std::find(tl.attacks.begin(), tl.attacks.end(), c.attack) -
          tl.attacks.begin());
      const auto vi = static_cast<std::size_t>(
          std::find(tl.avs.begin(), tl.avs.end(), c.target) - tl.avs.begin());
      if (vi >= tl.avs.size()) continue;
      if (c.aes.empty()) continue;
      std::size_t bypass = 0;
      for (const ByteBuf& ae : c.aes)
        if (!avs[vi]->is_malicious(ae)) ++bypass;
      tl.bypass[ai][vi][round] = 100.0 * static_cast<double>(bypass) /
                                 static_cast<double>(c.aes.size());
    }
  }
  return tl;
}

}  // namespace mpass::harness
