#!/usr/bin/env bash
# Runs every benchmark binary in a sensible order (cheap reports first, the
# shared-grid tables together) and tees the combined output.
#
# Usage: scripts/run_all_benches.sh [output-file]
# Knobs: MPASS_N / MPASS_N_OFFLINE / MPASS_N_AV (samples per cell),
#        MPASS_THREADS (attack-grid thread-pool size; default: all cores),
#        MPASS_CACHE_DIR, MPASS_SEED, ...
#
# The offline grid (Tables I-III + functionality) and the AV grids (Fig. 3/4,
# Tables IV-VI) use separate sample-count knobs so the cheap offline tables
# can run at a larger N than the costlier AV experiments.
#
# pipefail matters: the bench group is piped through tee, and without it a
# failing bench binary would be masked by tee's exit status -- CI relies on
# this script's exit code.
set -euo pipefail
OUT="${1:-bench_output.txt}"
BENCH_DIR="$(dirname "$0")/../build/bench"
N_OFFLINE="${MPASS_N_OFFLINE:-${MPASS_N:-40}}"
N_AV="${MPASS_N_AV:-${MPASS_N:-25}}"
MPASS_THREADS="${MPASS_THREADS:-$(nproc 2>/dev/null || echo 1)}"
export MPASS_THREADS

{
  echo "===== bench_detectors ====="
  "$BENCH_DIR/bench_detectors"
  echo
  echo "===== bench_pem_sections ====="
  "$BENCH_DIR/bench_pem_sections"
  echo
  for b in bench_table1_asr bench_table2_avq bench_table3_apr \
           bench_functionality; do
    echo "===== $b (N=$N_OFFLINE, threads=$MPASS_THREADS) ====="
    MPASS_N="$N_OFFLINE" "$BENCH_DIR/$b"
    echo
  done
  for b in bench_fig3_av_asr bench_table4_obfuscation \
           bench_fig4_av_learning bench_table5_other_sec \
           bench_table6_random_data; do
    echo "===== $b (N=$N_AV, threads=$MPASS_THREADS) ====="
    MPASS_N="$N_AV" "$BENCH_DIR/$b"
    echo
  done
  for b in bench_advtrain bench_ablation_ensemble bench_ablation_budget; do
    echo "===== $b ====="
    MPASS_N="$N_AV" "$BENCH_DIR/$b"
    echo
  done
  echo "===== bench_micro ====="
  "$BENCH_DIR/bench_micro"
} 2>&1 | tee "$OUT"
