#include "attack/actions.hpp"

#include "corpus/strings.hpp"
#include "pack/packer.hpp"
#include "pe/import.hpp"
#include "pe/pe.hpp"
#include "util/hashing.hpp"
#include "vm/api.hpp"

namespace mpass::attack {

using util::ByteBuf;

std::string_view action_name(Action a) {
  switch (a) {
    case Action::AppendOverlay: return "append_overlay";
    case Action::AddBenignSection: return "add_benign_section";
    case Action::RenameSections: return "rename_sections";
    case Action::SetTimestamp: return "set_timestamp";
    case Action::AppendImports: return "append_imports";
    case Action::UpxPack: return "upx_pack";
    case Action::RemoveOverlay: return "remove_overlay";
    case Action::kCount: break;
  }
  return "?";
}

bool is_risky(Action a) { return a == Action::RemoveOverlay; }

namespace {

/// Picks a content chunk from the attack's fixed benign-content library.
/// Like the real tools (gym-malware and MAB-malware ship a fixed folder of
/// benign sections/strings), the library is a small deterministic set of
/// slices -- the recurring artifact the Fig. 4 vendor learning latches onto.
ByteBuf donor_chunk(std::span<const ByteBuf> pool, std::size_t len,
                    util::Rng& rng) {
  ByteBuf out(len);
  if (pool.empty()) return out;
  constexpr std::size_t kLibrarySlots = 12;
  const std::size_t slot = rng.below(kLibrarySlots);
  const ByteBuf& donor = pool[slot % pool.size()];
  if (donor.empty()) return out;
  // Fixed per-slot start offset (deterministic library content).
  const std::size_t start =
      (util::hash_combine(0xB16B00B5, slot) % std::max<std::size_t>(
           donor.size(), 1));
  for (std::size_t i = 0; i < len; ++i)
    out[i] = donor[(start + i) % donor.size()];
  return out;
}

}  // namespace

std::optional<ByteBuf> apply_action(Action action,
                                    std::span<const std::uint8_t> file,
                                    std::span<const ByteBuf> benign_pool,
                                    util::Rng& rng) {
  pe::PeFile pe;
  try {
    pe = pe::PeFile::parse(file);
  } catch (const util::ParseError&) {
    return std::nullopt;
  }

  switch (action) {
    case Action::AppendOverlay: {
      const std::size_t n = static_cast<std::size_t>(rng.range(512, 4096));
      ByteBuf chunk = donor_chunk(benign_pool, n, rng);
      pe.overlay.insert(pe.overlay.end(), chunk.begin(), chunk.end());
      return pe.build();
    }

    case Action::AddBenignSection: {
      if (pe.sections.size() >= 24) return std::nullopt;
      const std::size_t n = static_cast<std::size_t>(rng.range(1024, 8192));
      const auto names = corpus::benign_section_names();
      pe.add_section(names[rng.below(names.size())],
                     donor_chunk(benign_pool, n, rng),
                     pe::kScnInitializedData | pe::kScnMemRead);
      return pe.build();
    }

    case Action::RenameSections: {
      const auto names = corpus::benign_section_names();
      for (pe::Section& s : pe.sections)
        if (rng.chance(0.5))
          s.name = std::string(names[rng.below(names.size())]);
      return pe.build();
    }

    case Action::SetTimestamp:
      pe.timestamp = static_cast<std::uint32_t>(rng.range(0x40000000,
                                                          0x65000000));
      return pe.build();

    case Action::AppendImports: {
      // Grow the import blob in place -- only if the section has VA slack.
      const pe::DataDirectory& dir = pe.dirs[pe::kDirImport];
      if (dir.rva == 0) return std::nullopt;
      const auto si = pe.section_by_rva(dir.rva);
      if (!si) return std::nullopt;
      pe::Section& sec = pe.sections[*si];
      std::vector<pe::Import> imports = pe::read_imports(pe);
      if (imports.empty()) return std::nullopt;
      const auto benign = vm::benign_apis();
      const int extra = static_cast<int>(rng.range(1, 4));
      for (int i = 0; i < extra; ++i) {
        const std::uint16_t id = benign[rng.below(benign.size())];
        imports.push_back({id, std::string(vm::api_name(id))});
      }
      ByteBuf blob = pe::encode_imports(imports);
      // The rebuilt blob must fit before the next section's RVA.
      std::uint32_t next_va = 0xFFFFFFFF;
      for (const pe::Section& s : pe.sections)
        if (s.vaddr > sec.vaddr) next_va = std::min(next_va, s.vaddr);
      const std::uint32_t off = dir.rva - sec.vaddr;
      if (sec.vaddr + off + blob.size() > next_va) return std::nullopt;
      if (off + blob.size() > sec.data.size())
        sec.data.resize(off + blob.size());
      std::copy(blob.begin(), blob.end(), sec.data.begin() + off);
      sec.vsize = std::max<std::uint32_t>(
          sec.vsize, off + static_cast<std::uint32_t>(blob.size()));
      pe.dirs[pe::kDirImport].size = static_cast<std::uint32_t>(blob.size());
      return pe.build();
    }

    case Action::UpxPack: {
      auto packed = pack::pack(pack::PackerKind::UpxLike, file, {rng()});
      if (!packed) return std::nullopt;
      return *packed;
    }

    case Action::RemoveOverlay: {
      if (pe.overlay.empty()) return std::nullopt;
      pe.overlay.clear();
      return pe.build();
    }

    case Action::kCount:
      break;
  }
  return std::nullopt;
}

std::uint64_t state_fingerprint(std::span<const std::uint8_t> file) {
  pe::PeFile pe;
  try {
    pe = pe::PeFile::parse(file);
  } catch (const util::ParseError&) {
    return 0;
  }
  std::uint64_t h = 0x5157;
  h = util::hash_combine(h, pe.sections.size());
  h = util::hash_combine(h, pe.overlay.empty() ? 0 : 1);
  h = util::hash_combine(h, file.size() / 8192);  // coarse size bucket
  h = util::hash_combine(h, pe::read_imports(pe).size() / 4);
  return h;
}

}  // namespace mpass::attack
