// Shared table-rendering helpers for the per-table bench binaries, plus the
// machine-readable BENCH_<name>.json report every bench emits (BenchReport).
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/table.hpp"
#include "util/threadpool.hpp"

namespace mpass::bench {

/// Finds a cell by (attack, target); aborts with a message if missing.
inline const harness::CellStats& cell(
    const std::vector<harness::CellStats>& cells, std::string_view attack,
    std::string_view target) {
  for (const harness::CellStats& c : cells)
    if (c.attack == attack && c.target == target) return c;
  std::fprintf(stderr, "missing cell %s x %s\n", std::string(attack).c_str(),
               std::string(target).c_str());
  std::abort();
}

/// Prints one paper-style table: rows = targets, columns = attacks,
/// metric picked by the selector.
template <typename Selector>
void print_grid(const std::string& title,
                const std::vector<harness::CellStats>& cells,
                const std::vector<std::string>& targets,
                const std::vector<std::string>& attacks, Selector metric,
                int decimals = 1) {
  util::Table table(title);
  std::vector<std::string> header = {"Models"};
  header.insert(header.end(), attacks.begin(), attacks.end());
  table.header(header);
  for (const std::string& t : targets) {
    std::vector<std::string> row = {t};
    for (const std::string& a : attacks)
      row.push_back(util::Table::num(metric(cell(cells, a, t)), decimals));
    table.row(row);
  }
  std::cout << table.render() << std::flush;
}

inline std::vector<std::string> offline_targets() {
  return {"MalConv", "NonNeg", "LightGBM", "MalGCG"};
}

inline std::vector<std::string> av_targets() {
  return {"AV1", "AV2", "AV3", "AV4", "AV5"};
}

inline std::vector<std::string> main_attacks() {
  return {"MPass", "RLA", "MAB", "GAMMA", "MalRNN"};
}

/// Prints the per-cell compute-time / query-throughput counters collected
/// by run_cell (all ~0 when the grid came straight from the result cache).
/// wall_ms sums sample-task durations, so cells are comparable even though
/// they interleave on the shared pool.
inline void print_cell_timings(const std::vector<harness::CellStats>& cells) {
  double total_ms = 0.0;
  std::size_t total_q = 0;
  for (const harness::CellStats& c : cells) {
    total_ms += c.wall_ms;
    total_q += c.total_queries;
  }
  std::printf("cell timing: %zu queries in %.0f ms cpu-cell time (threads=%zu)\n",
              total_q, total_ms, util::ThreadPool::instance().size());
  for (const harness::CellStats& c : cells)
    if (c.wall_ms > 0.0)
      std::printf("  %-12s vs %-10s %8.0f ms %8.0f q/s\n", c.attack.c_str(),
                  c.target.c_str(), c.wall_ms, c.qps);
}

/// Prints the top scoped-timer histograms ("time.*") from the metrics
/// registry, ranked by total time spent. Shows where the run's compute went
/// (all near-zero when the grid was served from the result cache).
inline void print_top_timers(std::size_t top_n = 8) {
  const obs::Snapshot snap = obs::Registry::instance().snapshot();
  struct Row {
    std::string name;
    std::uint64_t count;
    double sum_ms;
  };
  std::vector<Row> rows;
  for (const auto& [name, h] : snap.histograms)
    if (name.rfind("time.", 0) == 0 && h.count > 0)
      rows.push_back({name, h.count, h.sum});
  if (rows.empty()) return;
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.sum_ms > b.sum_ms; });
  std::printf("top timers (this process):\n");
  for (std::size_t i = 0; i < rows.size() && i < top_n; ++i)
    std::printf("  %-28s %10llu calls %12.1f ms total %9.3f ms/call\n",
                rows[i].name.c_str(),
                static_cast<unsigned long long>(rows[i].count),
                rows[i].sum_ms,
                rows[i].sum_ms / static_cast<double>(rows[i].count));
}

/// Machine-readable per-bench report. Construct at the top of main, feed it
/// the grids the bench computed, and on destruction it writes
/// BENCH_<name>.json (schema v1: wall_ms, per-cell CellStats, merged span
/// profile, build metadata) to $MPASS_BENCH_DIR (created if needed) or the
/// working directory, then flushes any MPASS_PROFILE trace. The schema is
/// documented in docs/OBSERVABILITY.md and consumed by tools/mpass_prof
/// (collect / compare) and scripts/run_all_benches.sh.
class BenchReport {
 public:
  explicit BenchReport(std::string name)
      : name_(std::move(name)), t0_(std::chrono::steady_clock::now()) {}

  BenchReport(const BenchReport&) = delete;
  BenchReport& operator=(const BenchReport&) = delete;

  void add_cells(const std::vector<harness::CellStats>& cells) {
    cells_.insert(cells_.end(), cells.begin(), cells.end());
  }

  ~BenchReport() {
    const double wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0_)
            .count();

    std::string out;
    out.reserve(1 << 14);
    out += "{\"schema_version\":1,\"bench\":\"";
    obs::json_escape(out, name_);
    out += "\",\"wall_ms\":";
    obs::json_number(out, wall_ms);

    out += ",\"build\":{\"compiler\":\"";
    obs::json_escape(out, __VERSION__);
    out += "\",\"build_type\":\"";
#ifdef NDEBUG
    out += "Release";
#else
    out += "Debug";
#endif
    out += "\",\"threads\":";
    obs::json_number(out,
                     static_cast<double>(util::ThreadPool::instance().size()));
    out += "}";

    out += ",\"env\":{";
    bool first_env = true;
    for (const char* var : {"MPASS_N", "MPASS_MAX_QUERIES", "MPASS_THREADS",
                            "MPASS_NO_CACHE", "MPASS_TRAIN_MAL"}) {
      const char* v = std::getenv(var);
      if (!v) continue;
      if (!first_env) out += ',';
      first_env = false;
      out += '"';
      obs::json_escape(out, var);
      out += "\":\"";
      obs::json_escape(out, v);
      out += '"';
    }
    out += "}";

    out += ",\"cells\":[";
    for (std::size_t i = 0; i < cells_.size(); ++i) {
      const harness::CellStats& c = cells_[i];
      if (i) out += ',';
      out += "{\"attack\":\"";
      obs::json_escape(out, c.attack);
      out += "\",\"target\":\"";
      obs::json_escape(out, c.target);
      out += "\",\"n\":";
      obs::json_number(out, static_cast<double>(c.n));
      out += ",\"asr\":";
      obs::json_number(out, c.asr);
      out += ",\"avq\":";
      obs::json_number(out, c.avq);
      out += ",\"apr\":";
      obs::json_number(out, c.apr);
      out += ",\"functional\":";
      obs::json_number(out, c.functional);
      out += ",\"successes\":";
      obs::json_number(out, static_cast<double>(c.successes));
      out += ",\"total_queries\":";
      obs::json_number(out, static_cast<double>(c.total_queries));
      out += ",\"wall_ms\":";
      obs::json_number(out, c.wall_ms);
      out += ",\"qps\":";
      obs::json_number(out, c.qps);
      out += '}';
    }
    out += "]";

    out += ",\"spans\":[";
    const std::vector<obs::SpanRow> rows = obs::span_snapshot();
    bool first_span = true;
    for (const obs::SpanRow& r : rows) {
      if (!first_span) out += ',';
      first_span = false;
      out += "{\"path\":\"";
      obs::json_escape(out, r.path);
      out += "\",\"count\":";
      obs::json_number(out, static_cast<double>(r.count));
      out += ",\"total_ms\":";
      obs::json_number(out, static_cast<double>(r.total_ns) / 1e6);
      out += ",\"self_ms\":";
      obs::json_number(out, static_cast<double>(r.self_ns()) / 1e6);
      out += ",\"child_ms\":";
      obs::json_number(out, static_cast<double>(r.child_ns) / 1e6);
      out += '}';
    }
    out += "]}";
    out += '\n';

    std::filesystem::path dir = ".";
    if (const char* d = std::getenv("MPASS_BENCH_DIR"); d && *d) dir = d;
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    const std::filesystem::path path = dir / ("BENCH_" + name_ + ".json");
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    if (f) {
      f.write(out.data(), static_cast<std::streamsize>(out.size()));
      std::fprintf(stderr, "[bench] wrote %s\n", path.string().c_str());
    } else {
      std::fprintf(stderr, "[bench] cannot write %s\n", path.string().c_str());
    }

    obs::flush_profile();
  }

 private:
  std::string name_;
  std::chrono::steady_clock::time_point t0_;
  std::vector<harness::CellStats> cells_;
};

/// Exports a grid to results/<key>.csv next to the cache dir.
inline void export_results_csv(std::string_view key,
                               const std::vector<harness::CellStats>& cells) {
  const auto path = util::cache_dir() / "results" /
                    (std::string(key) + ".csv");
  harness::export_csv(path, cells);
  std::fprintf(stderr, "[csv] wrote %s\n", path.string().c_str());
}

}  // namespace mpass::bench
