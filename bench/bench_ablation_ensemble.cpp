// Ablation bench (DESIGN.md adaptation #3): how much does MPass's ASR on a
// black-box target depend on the known-model ensemble's size/diversity?
// Compares: single known model, the two remaining SOTA models (the paper's
// literal setup), and SOTA + attacker-trained surrogates (this repo's
// default).
#include "bench_common.hpp"
#include "attack/mpass_attack.hpp"

int main() {
  using namespace mpass;
  auto cfg = harness::ExperimentConfig::from_env();
  bench::BenchReport report("ablation_ensemble");
  cfg.n_samples = std::min<std::size_t>(cfg.n_samples, 25);
  detect::ModelZoo& zoo = detect::ModelZoo::instance();
  const detect::Detector& target = zoo.offline_by_name("MalConv");
  std::vector<const detect::Detector*> gate = {&target};
  const auto samples = harness::make_attack_set(gate, cfg.n_samples, cfg.seed);

  // Ensemble variants (target MalConv is never included).
  const auto all = zoo.known_nets_excluding("MalConv");
  struct Variant {
    std::string name;
    std::vector<ml::ByteConvNet*> nets;
  };
  std::vector<Variant> variants;
  variants.push_back({"1 SOTA model", {all[0]}});
  variants.push_back({"2 SOTA models (paper setup)", {all[0], all[1]}});
  variants.push_back({"2 SOTA + 3 surrogates (default)", all});

  util::Table table("Ablation: known-model ensemble vs MPass ASR on MalConv");
  table.header({"Known ensemble", "ASR (%)", "AVQ", "functional (%)"});
  for (const Variant& v : variants) {
    attack::MpassAttack atk("MPass", attack::MpassAttack::default_config(),
                            zoo.benign_pool(), v.nets);
    const harness::CellStats stats =
        harness::run_cell(atk, target, samples, samples, cfg);
    report.add_cells({stats});
    table.row({v.name, util::Table::num(stats.asr),
               util::Table::num(stats.avq), util::Table::num(stats.functional)});
    std::fprintf(stderr, "[ensemble] %s done\n", v.name.c_str());
  }
  std::cout << table.render();
  std::printf("(n=%zu malware, budget %zu; richer ensembles transfer better)\n",
              samples.size(), cfg.max_queries);
  return 0;
}
