#include "core/optimizer.hpp"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <stdexcept>

#include "obs/span.hpp"

namespace mpass::core {

namespace {
bool incremental_default() {
  static const bool off = [] {
    const char* v = std::getenv("MPASS_NO_INCREMENTAL");
    return v != nullptr && *v != '\0' && *v != '0';
  }();
  return !off;
}
}  // namespace

EnsembleOptimizer::EnsembleOptimizer(std::vector<ml::ByteConvNet*> known)
    : known_(std::move(known)), incremental_(incremental_default()) {
  if (known_.empty())
    throw std::invalid_argument("optimizer: empty known-model ensemble");
}

float EnsembleOptimizer::ensemble_score(
    std::span<const std::uint8_t> bytes) const {
  float s = 0.0f;
  // forward_auto: between optimizer steps and oracle queries the sample is
  // unchanged or changed in a few windows, so the nets' cached activations
  // make these consensus checks (near-)free. Bitwise equal to forward().
  for (ml::ByteConvNet* net : known_) s += net->forward_auto(bytes);
  return s / static_cast<float>(known_.size());
}

float EnsembleOptimizer::ensemble_loss(
    std::span<const std::uint8_t> bytes) const {
  float s = 0.0f;
  for (ml::ByteConvNet* net : known_)
    s += ml::bce_loss(net->forward_auto(bytes), 0.0f);
  return s / static_cast<float>(known_.size());
}

float EnsembleOptimizer::ensemble_loss_delta(
    std::span<const std::uint8_t> bytes,
    std::span<const ml::ByteRange> dirty) const {
  float s = 0.0f;
  for (ml::ByteConvNet* net : known_)
    s += ml::bce_loss(net->forward_delta(bytes, dirty), 0.0f);
  return s / static_cast<float>(known_.size());
}

float EnsembleOptimizer::step(ModifiedSample& sample) const {
  OBS_SCOPE("core.opt_step");
  const std::size_t m = known_.size();

  // Forward + input gradients toward the benign label per known model.
  std::vector<std::vector<float>> grads(m);
  std::vector<std::size_t> consumed(m);
  float total_loss = 0.0f;
  for (std::size_t i = 0; i < m; ++i) {
    // forward_auto: after the previous step's rollback the cache already
    // matches the kept prefix, so this forward is a (often empty) delta;
    // the activation caches it leaves behind are bitwise identical to a
    // full forward's, which is what backward consumes.
    known_[i]->forward_auto(sample.bytes);
    total_loss += known_[i]->backward(/*target=*/0.0f, &grads[i],
                                      /*accumulate_params=*/false,
                                      /*soft_pool_tau=*/0.5f);
    consumed[i] = known_[i]->consumed();
  }

  // Candidate scoring dominates the step cost, so positions are first
  // ranked by ensemble gradient magnitude and only the top half get the
  // full 256-candidate scan this step (skipped positions get their turn on
  // later steps as the gradient landscape shifts).
  std::vector<std::pair<float, std::uint32_t>> by_magnitude;
  by_magnitude.reserve(sample.perturbable.size());
  for (std::uint32_t p : sample.perturbable) {
    float mag = 0.0f;
    for (std::size_t i = 0; i < m; ++i) {
      const int d = known_[i]->config().embed_dim;
      if (p < consumed[i]) {
        const float* g = grads[i].data() + static_cast<std::size_t>(p) * d;
        for (int k = 0; k < d; ++k) mag += g[k] * g[k];
      }
      const auto key_it = sample.key_of.find(p);
      if (key_it != sample.key_of.end() && key_it->second < consumed[i]) {
        const float* g =
            grads[i].data() + static_cast<std::size_t>(key_it->second) * d;
        for (int k = 0; k < d; ++k) mag += g[k] * g[k];
      }
    }
    if (mag > 0.0f) by_magnitude.emplace_back(mag, p);
  }
  const std::size_t scan_count =
      std::max<std::size_t>(256, by_magnitude.size() / 2);
  if (by_magnitude.size() > scan_count) {
    std::nth_element(
        by_magnitude.begin(),
        by_magnitude.begin() + static_cast<std::ptrdiff_t>(scan_count),
        by_magnitude.end(),
        [](const auto& a, const auto& b) { return a.first > b.first; });
    by_magnitude.resize(scan_count);
  }

  // Greedy byte re-selection under the first-order ensemble loss.
  // score(v) = sum_i <g_i[p], E_i[v]> (+ key-byte term through J).
  struct Update {
    std::uint32_t pos;
    std::uint8_t value;
    std::uint8_t old_value;
    float gain;  // predicted first-order loss decrease
  };
  std::vector<Update> updates;
  std::vector<float> cand(256);
  for (const auto& [mag, p] : by_magnitude) {
    const auto key_it = sample.key_of.find(p);
    const bool has_key = key_it != sample.key_of.end();
    const std::uint32_t kpos = has_key ? key_it->second : 0;

    bool visible = false;
    for (std::size_t i = 0; i < m; ++i)
      if (p < consumed[i] || (has_key && kpos < consumed[i])) visible = true;
    if (!visible) continue;

    const std::uint8_t cur = sample.bytes[p];
    const std::uint8_t cur_key = has_key ? sample.bytes[kpos] : 0;

    std::fill(cand.begin(), cand.end(), 0.0f);
    for (std::size_t i = 0; i < m; ++i) {
      const int d = known_[i]->config().embed_dim;
      if (p < consumed[i]) {
        const float* g = grads[i].data() + static_cast<std::size_t>(p) * d;
        for (int v = 0; v < 256; ++v) {
          const auto e = known_[i]->embedding_row(v);
          float s = 0.0f;
          for (int k = 0; k < d; ++k) s += g[k] * e[k];
          cand[static_cast<std::size_t>(v)] += s;
        }
      }
      if (has_key && kpos < consumed[i]) {
        const float* g = grads[i].data() + static_cast<std::size_t>(kpos) * d;
        for (int v = 0; v < 256; ++v) {
          // Choosing byte v at p forces key value cur_key + (v - cur).
          const std::uint8_t kv = static_cast<std::uint8_t>(
              cur_key + static_cast<std::uint8_t>(v - cur));
          const auto e = known_[i]->embedding_row(kv);
          float s = 0.0f;
          for (int k = 0; k < d; ++k) s += g[k] * e[k];
          cand[static_cast<std::size_t>(v)] += s;
        }
      }
    }

    int best = cur;
    float best_score = cand[cur];
    for (int v = 0; v < 256; ++v) {
      if (cand[static_cast<std::size_t>(v)] < best_score) {
        best_score = cand[static_cast<std::size_t>(v)];
        best = v;
      }
    }
    if (best != cur)
      updates.push_back(
          {p, static_cast<std::uint8_t>(best), cur, cand[cur] - best_score});
  }
  if (updates.empty()) return total_loss / static_cast<float>(m);

  // Line search over update fractions: the linearization overshoots when
  // too many coupled bytes move at once, so apply the highest-gain updates
  // first and keep the best-scoring prefix under the true ensemble loss.
  std::sort(updates.begin(), updates.end(),
            [](const Update& a, const Update& b) { return a.gain > b.gain; });
  const float base_loss = total_loss / static_cast<float>(m);

#ifndef NDEBUG
  // set_byte also rewrites the coupled key byte, so a rollback is only
  // exact if restoring old_value restores the key too. Snapshot both the
  // update position and its key before anything is applied; after the
  // rollback every update beyond the kept prefix must match.
  struct PreByte {
    std::uint32_t pos;
    std::uint8_t val;
    bool has_key;
    std::uint32_t key_pos;
    std::uint8_t key_val;
  };
  std::vector<PreByte> pre_step;
  pre_step.reserve(updates.size());
  for (const Update& u : updates) {
    PreByte pb{u.pos, sample.bytes[u.pos], false, 0, 0};
    const auto it = sample.key_of.find(u.pos);
    if (it != sample.key_of.end()) {
      pb.has_key = true;
      pb.key_pos = it->second;
      pb.key_val = sample.bytes[it->second];
    }
    pre_step.push_back(pb);
  }
#endif

  float best_loss = base_loss;
  std::size_t best_prefix = 0;
  std::size_t applied = 0;
  // Dirty windows accumulated since the nets last scored the sample: each
  // update touches its own byte plus (through set_byte) its coupled key.
  std::vector<ml::ByteRange> dirty;
  const auto mark_dirty = [&](std::uint32_t pos) {
    dirty.push_back({pos, pos + 1});
    const auto it = sample.key_of.find(pos);
    if (it != sample.key_of.end())
      dirty.push_back({it->second, it->second + 1});
  };
  for (double frac : {0.125, 0.25, 0.5, 1.0}) {
    const std::size_t want = std::max<std::size_t>(
        1, static_cast<std::size_t>(frac * static_cast<double>(updates.size())));
    while (applied < want && applied < updates.size()) {
      sample.set_byte(updates[applied].pos, updates[applied].value);
      if (incremental_) mark_dirty(updates[applied].pos);
      ++applied;
    }
    // The prefixes are nested, so each evaluation only needs to declare
    // the updates applied since the previous one.
    const float loss = incremental_ ? ensemble_loss_delta(sample.bytes, dirty)
                                    : ensemble_loss(sample.bytes);
    dirty.clear();
    if (loss < best_loss) {
      best_loss = loss;
      best_prefix = applied;
    }
  }
  // No prefix improved the true loss: keep a small exploratory prefix
  // anyway (the recomputed gradient escapes the tie next step) instead of
  // deadlocking on an identical rejected proposal.
  const bool exploratory = best_prefix == 0;
  if (exploratory) best_prefix = std::min<std::size_t>(updates.size(), 32);

  // Roll back to the best prefix (set_byte restores key coupling exactly).
  while (applied > best_prefix) {
    --applied;
    sample.set_byte(updates[applied].pos, updates[applied].old_value);
    if (incremental_) mark_dirty(updates[applied].pos);
  }

#ifndef NDEBUG
  for (std::size_t i = best_prefix; i < updates.size(); ++i) {
    assert(sample.bytes[pre_step[i].pos] == pre_step[i].val &&
           "rollback must restore the update byte exactly");
    assert((!pre_step[i].has_key ||
            sample.bytes[pre_step[i].key_pos] == pre_step[i].key_val) &&
           "rollback must restore the coupled key byte exactly");
  }
#endif

  if (incremental_) {
    // Re-sync the nets' caches with the kept prefix (free when nothing was
    // rolled back). For a normal step this re-derives exactly the loss the
    // line search measured -- a cheap end-to-end check of both the rollback
    // and the delta path -- and for an exploratory step it is the honest
    // loss of the state actually kept (which may exceed base_loss).
    const float kept_loss = ensemble_loss_delta(sample.bytes, dirty);
    assert((exploratory || kept_loss == best_loss) &&
           "incremental re-score must match the line-search loss");
    return exploratory ? kept_loss : best_loss;
  }
  // Non-incremental exploratory fallback: the stored best_loss is the
  // base loss of a state the sample is no longer in; recompute for the
  // prefix actually kept instead of reporting it stale.
  if (exploratory) return ensemble_loss(sample.bytes);
  return best_loss;
}

}  // namespace mpass::core
