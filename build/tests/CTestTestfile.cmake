# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_pe[1]_include.cmake")
include("/root/repo/build/tests/test_vm[1]_include.cmake")
include("/root/repo/build/tests/test_corpus[1]_include.cmake")
include("/root/repo/build/tests/test_pack[1]_include.cmake")
include("/root/repo/build/tests/test_ml[1]_include.cmake")
include("/root/repo/build/tests/test_detectors[1]_include.cmake")
include("/root/repo/build/tests/test_explain[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_attacks[1]_include.cmake")
include("/root/repo/build/tests/test_harness[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_advtrain[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_vm_apis[1]_include.cmake")
include("/root/repo/build/tests/test_invariants[1]_include.cmake")
add_test([=[cli_gen_run]=] "sh" "-c" "/root/repo/build/tools/mpass gen --malware --seed 5 --out cli_m.bin && /root/repo/build/tools/mpass run cli_m.bin && /root/repo/build/tools/mpass info cli_m.bin && /root/repo/build/tools/mpass disasm cli_m.bin")
set_tests_properties([=[cli_gen_run]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;30;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[cli_pack]=] "sh" "-c" "/root/repo/build/tools/mpass gen --benign --seed 6 --out cli_b.bin && /root/repo/build/tools/mpass pack cli_b.bin --packer aspack --out cli_b_packed.bin && /root/repo/build/tools/mpass run cli_b_packed.bin")
set_tests_properties([=[cli_pack]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;32;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[cli_usage]=] "/root/repo/build/tools/mpass")
set_tests_properties([=[cli_usage]=] PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;34;add_test;/root/repo/tests/CMakeLists.txt;0;")
