// Shapley-value attribution over PE sections: the computational core of the
// problem-space explainability method (PEM), paper §III-B Eq. 1.
//
// Players are the sections of a sample (plus the overlay as a pseudo
// section); the characteristic function is a model's score on the sample
// with only a subset of sections present (absent sections are zero-filled,
// which preserves layout so header features stay put). Exact enumeration is
// used up to a player budget, Monte-Carlo permutation sampling beyond it --
// the paper's "top-30 sections" speedup corresponds to the player cap.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "pe/pe.hpp"
#include "util/rng.hpp"

namespace mpass::explain {

/// Score function over raw bytes (a detector's score()).
using ScoreFn = std::function<double(std::span<const std::uint8_t>)>;

/// Name of the overlay pseudo-section player.
inline constexpr std::string_view kOverlayPlayer = "<overlay>";

/// The section players of a sample, in section-table order (+ overlay last
/// when present).
std::vector<std::string> section_players(const pe::PeFile& file);

/// Builds the sample variant that keeps only the players in `keep`
/// (by index into section_players order); all other section bodies and/or
/// the overlay are zero-filled.
util::ByteBuf ablate_to_subset(const pe::PeFile& file,
                               const std::vector<bool>& keep);

struct ShapleyOptions {
  std::size_t exact_max_players = 12;  // exact enumeration budget (2^n evals)
  std::size_t permutations = 64;       // MC permutations past the budget
  std::uint64_t seed = 1;
};

/// Shapley value of every player for score f on this sample.
/// Efficiency holds (exactly for exact mode, in expectation for MC):
///   sum_i phi_i = f(full) - f(empty).
std::vector<double> shapley_values(const pe::PeFile& file, const ScoreFn& f,
                                   const ShapleyOptions& opts = {});

}  // namespace mpass::explain
