#include "detectors/features.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "isa/isa.hpp"
#include "obs/span.hpp"
#include "pe/import.hpp"
#include "pe/pe.hpp"
#include "util/entropy.hpp"

namespace mpass::detect {

namespace {

constexpr std::string_view kParsedNames[] = {
    "parse_ok",
    "log_file_size",
    "num_sections",
    "entry_rva_log",
    "timestamp_scaled",
    "subsystem",
    "linker_major",
    "has_checksum",
    "dos_stub_len",
    "overlay_ratio",
    "overlay_entropy",
    "sec_mean_entropy",
    "sec_max_entropy",
    "exec_entropy",
    "data_entropy",
    "exec_size_ratio",
    "write_size_ratio",
    "std_name_fraction",
    "shady_name_count",
    "vsize_raw_mismatch",
    "has_rsrc",
    "has_reloc",
    "import_count",
    "import_sensitive",
    "import_hard",
    "import_parse_fail",
    "code_decode_cov",
    "code_sys_density",
    "code_sys_sensitive",
    "code_sys_hard",
    "code_branch_density",
    "code_imm_entropy",
    "str_printable_ratio",
    "str_run_count",
    "str_mean_len",
    "kw_url_count",
    "kw_registry_count",
    "kw_ransom_count",
    "kw_onion_count",
    "kw_benign_count",
    "high_entropy_blob_ratio",
    "header_entropy",
};
constexpr std::size_t kParsedDim = std::size(kParsedNames);

constexpr std::string_view kMalKeywordsUrl[] = {"http://", ".xyz", ".ru/",
                                                ".cc/", ".top"};
constexpr std::string_view kMalKeywordsReg[] = {"HKLM\\", "HKCU\\",
                                                "CurrentVersion\\Run"};
constexpr std::string_view kMalKeywordsRansom[] = {
    "ENCRYPTED", "BTC", "decryptor", "Pay within", "locked"};
constexpr std::string_view kMalKeywordsOnion[] = {".onion"};
constexpr std::string_view kBenignKeywords[] = {
    "Copyright", "Usage:", "help", "version", "settings", "document",
    "install"};

std::size_t count_keywords(const std::string& haystack,
                           std::span<const std::string_view> needles) {
  std::size_t count = 0;
  for (std::string_view n : needles) {
    std::size_t pos = 0;
    while ((pos = haystack.find(n, pos)) != std::string::npos) {
      ++count;
      pos += n.size();
    }
  }
  return count;
}

/// Linear-sweep decode statistics over an executable section.
struct CodeStats {
  double coverage = 0.0;     // decoded bytes / section bytes
  double sys_density = 0.0;  // SYS per instruction
  double sys_sensitive = 0.0;
  double sys_hard = 0.0;
  double branch_density = 0.0;
  double imm_entropy = 0.0;
};

CodeStats code_stats(std::span<const std::uint8_t> code) {
  CodeStats cs;
  if (code.empty()) return cs;
  util::ByteReader r(code);
  std::size_t instrs = 0, sys = 0, sens = 0, hard = 0, branches = 0;
  std::vector<std::uint8_t> imm_bytes;
  std::size_t decoded_bytes = 0;
  try {
    while (!r.eof()) {
      const isa::Instr in = isa::decode(r);
      ++instrs;
      decoded_bytes = r.pos();
      if (in.op == isa::Op::Sys) {
        ++sys;
        const auto id = static_cast<std::uint16_t>(in.imm);
        if (id >= 0x100) ++sens;
        // Hard-malicious ids (vm::is_hard_malicious without the dependency):
        // the feature extractor only needs the id range shape.
        if (id >= 0x106 && id <= 0x10F) ++hard;
      }
      if (isa::is_branch(in.op)) ++branches;
      if (in.op == isa::Op::Movi || in.op == isa::Op::Addi) {
        imm_bytes.push_back(static_cast<std::uint8_t>(in.imm));
        imm_bytes.push_back(static_cast<std::uint8_t>(in.imm >> 8));
      }
    }
  } catch (const util::ParseError&) {
    // keep partial stats; coverage reflects how far the sweep got
  }
  cs.coverage = static_cast<double>(decoded_bytes) / code.size();
  if (instrs > 0) {
    cs.sys_density = static_cast<double>(sys) / instrs;
    cs.sys_sensitive = static_cast<double>(sens) / instrs;
    cs.sys_hard = static_cast<double>(hard) / instrs;
    cs.branch_density = static_cast<double>(branches) / instrs;
  }
  cs.imm_entropy = util::shannon_entropy(imm_bytes);
  return cs;
}

/// Extracts printable-ASCII string runs (>= 5 chars) as one haystack.
void string_stats(std::span<const std::uint8_t> bytes, std::string* haystack,
                  std::size_t* run_count, double* mean_len) {
  std::size_t runs = 0, total_len = 0;
  std::string cur;
  auto flush = [&] {
    if (cur.size() >= 5) {
      ++runs;
      total_len += cur.size();
      haystack->append(cur);
      haystack->push_back('\n');
    }
    cur.clear();
  };
  for (std::uint8_t b : bytes) {
    if (b >= 0x20 && b <= 0x7e) {
      cur.push_back(static_cast<char>(b));
    } else {
      flush();
    }
  }
  flush();
  *run_count = runs;
  *mean_len = runs ? static_cast<double>(total_len) / runs : 0.0;
}

bool is_standard_name(const std::string& n) {
  static constexpr std::string_view kStd[] = {".text",  ".data", ".rdata",
                                              ".idata", ".rsrc", ".reloc",
                                              ".bss",   ".tls"};
  for (std::string_view s : kStd)
    if (n == s) return true;
  return false;
}

}  // namespace

std::size_t feature_dim() { return 256 + 256 + kParsedDim; }

std::span<const std::string_view> parsed_feature_names() {
  return kParsedNames;
}

std::vector<float> extract_features(std::span<const std::uint8_t> bytes) {
  OBS_SCOPE("detect.features");
  std::vector<float> out;
  out.reserve(feature_dim());

  // ---- raw byte groups.
  const auto hist = util::byte_histogram(bytes);
  const float inv_n =
      bytes.empty() ? 0.0f : 1.0f / static_cast<float>(bytes.size());
  for (std::uint32_t c : hist) out.push_back(static_cast<float>(c) * inv_n);
  const auto beh = util::byte_entropy_histogram(bytes);
  out.insert(out.end(), beh.begin(), beh.end());

  // ---- parsed features.
  std::array<float, kParsedDim> f{};
  auto set = [&f](std::string_view name, double v) {
    for (std::size_t i = 0; i < kParsedDim; ++i)
      if (kParsedNames[i] == name) {
        f[i] = static_cast<float>(v);
        return;
      }
  };
  set("log_file_size", std::log1p(static_cast<double>(bytes.size())));

  pe::PeFile file;
  bool parsed = false;
  try {
    file = pe::PeFile::parse(bytes);
    parsed = true;
  } catch (const util::ParseError&) {
  }
  set("parse_ok", parsed ? 1.0 : 0.0);

  if (parsed) {
    set("num_sections", static_cast<double>(file.sections.size()));
    set("entry_rva_log", std::log1p(static_cast<double>(file.entry_point)));
    set("timestamp_scaled", static_cast<double>(file.timestamp) / 4.0e9);
    set("subsystem", static_cast<double>(file.subsystem));
    set("linker_major", static_cast<double>(file.linker_major));
    set("has_checksum", file.checksum != 0 ? 1.0 : 0.0);
    set("dos_stub_len", static_cast<double>(file.dos_stub.size()) / 256.0);
    set("overlay_ratio", bytes.empty()
                             ? 0.0
                             : static_cast<double>(file.overlay.size()) /
                                   static_cast<double>(bytes.size()));
    set("overlay_entropy", util::shannon_entropy(file.overlay));

    double sum_ent = 0.0, max_ent = 0.0, exec_ent = 0.0, data_ent = 0.0;
    std::size_t exec_bytes = 0, write_bytes = 0, std_names = 0, shady = 0;
    std::size_t total_bytes = 0;
    double vsize_mismatch = 0.0;
    double blob_bytes = 0.0;
    for (const pe::Section& s : file.sections) {
      const double ent = util::shannon_entropy(s.data);
      sum_ent += ent;
      max_ent = std::max(max_ent, ent);
      total_bytes += s.data.size();
      if (s.executable()) {
        exec_bytes += s.data.size();
        exec_ent = std::max(exec_ent, ent);
      } else if (ent > data_ent) {
        data_ent = ent;
      }
      if (s.writable()) write_bytes += s.data.size();
      if (is_standard_name(s.name)) ++std_names;
      else ++shady;
      if (s.vsize > s.data.size() + 512) vsize_mismatch += 1.0;
      // High-entropy blob content inside data sections (packed payloads).
      if (!s.executable() && ent > 7.2)
        blob_bytes += static_cast<double>(s.data.size());
    }
    const double nsec = std::max<std::size_t>(file.sections.size(), 1);
    set("sec_mean_entropy", sum_ent / static_cast<double>(nsec));
    set("sec_max_entropy", max_ent);
    set("exec_entropy", exec_ent);
    set("data_entropy", data_ent);
    set("exec_size_ratio", total_bytes
                               ? static_cast<double>(exec_bytes) / total_bytes
                               : 0.0);
    set("write_size_ratio", total_bytes
                                ? static_cast<double>(write_bytes) / total_bytes
                                : 0.0);
    set("std_name_fraction",
        static_cast<double>(std_names) / static_cast<double>(nsec));
    set("shady_name_count", static_cast<double>(shady));
    set("vsize_raw_mismatch", vsize_mismatch);
    set("has_rsrc", file.find_section(".rsrc") ? 1.0 : 0.0);
    set("has_reloc", file.find_section(".reloc") ? 1.0 : 0.0);
    set("high_entropy_blob_ratio",
        total_bytes ? blob_bytes / static_cast<double>(total_bytes) : 0.0);

    // Imports.
    const auto imports = pe::read_imports(file);
    set("import_count", static_cast<double>(imports.size()));
    std::size_t sens = 0, hard = 0;
    for (const pe::Import& imp : imports) {
      if (imp.api_id >= 0x100) ++sens;
      if (imp.api_id >= 0x106 && imp.api_id <= 0x10F) ++hard;
    }
    set("import_sensitive", static_cast<double>(sens));
    set("import_hard", static_cast<double>(hard));
    set("import_parse_fail",
        (file.dirs[pe::kDirImport].rva != 0 && imports.empty()) ? 1.0 : 0.0);

    // Code statistics over the first executable section.
    for (const pe::Section& s : file.sections) {
      if (!s.executable()) continue;
      const CodeStats cs = code_stats(s.data);
      set("code_decode_cov", cs.coverage);
      set("code_sys_density", cs.sys_density);
      set("code_sys_sensitive", cs.sys_sensitive);
      set("code_sys_hard", cs.sys_hard);
      set("code_branch_density", cs.branch_density);
      set("code_imm_entropy", cs.imm_entropy);
      break;
    }

    // Header entropy (DOS stub + tables region ~ first 512 bytes).
    set("header_entropy",
        util::shannon_entropy(bytes.subspan(0, std::min<std::size_t>(
                                                   bytes.size(), 512))));
  }

  // String features over the whole file (works even unparsed).
  std::string haystack;
  std::size_t runs = 0;
  double mean_len = 0.0;
  string_stats(bytes, &haystack, &runs, &mean_len);
  set("str_printable_ratio", util::printable_ratio(bytes));
  set("str_run_count", std::log1p(static_cast<double>(runs)));
  set("str_mean_len", mean_len);
  set("kw_url_count", static_cast<double>(count_keywords(haystack, kMalKeywordsUrl)));
  set("kw_registry_count",
      static_cast<double>(count_keywords(haystack, kMalKeywordsReg)));
  set("kw_ransom_count",
      static_cast<double>(count_keywords(haystack, kMalKeywordsRansom)));
  set("kw_onion_count",
      static_cast<double>(count_keywords(haystack, kMalKeywordsOnion)));
  set("kw_benign_count",
      static_cast<double>(count_keywords(haystack, kBenignKeywords)));

  out.insert(out.end(), f.begin(), f.end());
  return out;
}

namespace {
constexpr std::string_view kVendorNames[] = {
    "entry_in_last_section",
    "entry_section_ratio",       // index of entry section / section count
    "entry_section_std_name",
    "entry_section_executable",
    "entry_offset_ratio",        // entry offset within its section
    "entry_section_entropy",
    "entry_code_decodes",        // >= 16 instructions decode at the EP
    "wx_section_present",
    "exec_section_count",
    "first_exec_is_entry",
};
constexpr std::size_t kVendorDim = std::size(kVendorNames);
}  // namespace

std::size_t vendor_feature_dim() { return feature_dim() + kVendorDim; }

std::span<const std::string_view> vendor_feature_names() {
  return kVendorNames;
}

std::vector<float> extract_vendor_features(
    std::span<const std::uint8_t> bytes) {
  std::vector<float> out = extract_features(bytes);
  std::array<float, kVendorDim> v{};
  auto set = [&v](std::string_view name, double value) {
    for (std::size_t i = 0; i < kVendorDim; ++i)
      if (kVendorNames[i] == name) {
        v[i] = static_cast<float>(value);
        return;
      }
  };

  pe::PeFile file;
  bool parsed = false;
  try {
    file = pe::PeFile::parse(bytes);
    parsed = true;
  } catch (const util::ParseError&) {
  }
  if (parsed && !file.sections.empty()) {
    const auto entry_idx = file.section_by_rva(file.entry_point);
    std::size_t exec_count = 0;
    std::optional<std::size_t> first_exec;
    bool wx = false;
    for (std::size_t i = 0; i < file.sections.size(); ++i) {
      const pe::Section& s = file.sections[i];
      if (s.executable()) {
        ++exec_count;
        if (!first_exec) first_exec = i;
        if (s.writable()) wx = true;
      }
    }
    set("wx_section_present", wx ? 1.0 : 0.0);
    set("exec_section_count", static_cast<double>(exec_count));
    if (entry_idx) {
      const pe::Section& es = file.sections[*entry_idx];
      set("entry_in_last_section",
          *entry_idx + 1 == file.sections.size() ? 1.0 : 0.0);
      set("entry_section_ratio",
          static_cast<double>(*entry_idx + 1) /
              static_cast<double>(file.sections.size()));
      set("entry_section_std_name",
          (es.name == ".text" || es.name == "CODE" || es.name == ".code")
              ? 1.0
              : 0.0);
      set("entry_section_executable", es.executable() ? 1.0 : 0.0);
      const std::uint32_t off = file.entry_point - es.vaddr;
      set("entry_offset_ratio",
          es.data.empty() ? 0.0
                          : static_cast<double>(off) /
                                static_cast<double>(es.data.size()));
      set("entry_section_entropy", util::shannon_entropy(es.data));
      set("first_exec_is_entry",
          (first_exec && *first_exec == *entry_idx) ? 1.0 : 0.0);
      // Does code at the entry point disassemble cleanly?
      if (off < es.data.size()) {
        util::ByteReader r({es.data.data() + off, es.data.size() - off});
        int decoded = 0;
        try {
          while (!r.eof() && decoded < 16) {
            isa::decode(r);
            ++decoded;
          }
        } catch (const util::ParseError&) {
        }
        set("entry_code_decodes", decoded >= 16 ? 1.0 : 0.0);
      }
    }
  }
  out.insert(out.end(), v.begin(), v.end());
  return out;
}

}  // namespace mpass::detect
