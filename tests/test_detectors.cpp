// Tests for feature extraction, detector training/calibration, the
// hard-label oracle, and the commercial-AV simulators (signature mining).
#include <gtest/gtest.h>

#include <cmath>

#include "corpus/generator.hpp"
#include "detectors/avsim.hpp"
#include "detectors/features.hpp"
#include "detectors/models.hpp"
#include "detectors/training.hpp"
#include "util/rng.hpp"

namespace mpass::detect {
namespace {

using util::ByteBuf;

corpus::Dataset tiny_dataset(std::uint64_t seed, std::size_t per_class) {
  return corpus::generate_dataset(seed, per_class, per_class);
}

TEST(Features, FixedDimensionAndFiniteValues) {
  const ByteBuf sample = corpus::make_malware(100).bytes();
  const std::vector<float> f = extract_features(sample);
  EXPECT_EQ(f.size(), feature_dim());
  for (float v : f) EXPECT_TRUE(std::isfinite(v));
}

TEST(Features, ToleratesGarbageAndEmptyInput) {
  util::Rng rng(1);
  const std::vector<float> f1 = extract_features(rng.bytes(2000));
  EXPECT_EQ(f1.size(), feature_dim());
  const std::vector<float> f2 = extract_features(ByteBuf{});
  EXPECT_EQ(f2.size(), feature_dim());
  // parse_ok flag must be 0 for garbage.
  const auto names = parsed_feature_names();
  const std::size_t base = 512;
  for (std::size_t i = 0; i < names.size(); ++i)
    if (names[i] == "parse_ok") {
      EXPECT_EQ(f1[base + i], 0.0f);
      EXPECT_EQ(f2[base + i], 0.0f);
    }
}

TEST(Features, SeparateClassesOnAverage) {
  // Mean hard-import count and code syscall stats should differ by class.
  const auto names = parsed_feature_names();
  auto idx_of = [&](std::string_view n) {
    for (std::size_t i = 0; i < names.size(); ++i)
      if (names[i] == n) return 512 + i;
    return std::size_t{0};
  };
  const std::size_t hard_idx = idx_of("code_sys_hard");
  double mal = 0, ben = 0;
  for (int i = 0; i < 10; ++i) {
    mal += extract_features(corpus::make_malware(200 + i).bytes())[hard_idx];
    ben += extract_features(corpus::make_benign(200 + i).bytes())[hard_idx];
  }
  EXPECT_GT(mal, ben);
}

TEST(Detectors, HardLabelOracleCountsQueries) {
  // A detector with a fixed verdict.
  class Fixed : public Detector {
   public:
    std::string_view name() const override { return "fixed"; }
    double score(std::span<const std::uint8_t>) const override { return 1.0; }
  };
  Fixed det;
  HardLabelOracle oracle(det, 3);
  const ByteBuf x(10, 0);
  EXPECT_TRUE(oracle.query(x));
  EXPECT_EQ(oracle.queries(), 1u);
  EXPECT_FALSE(oracle.exhausted());
  oracle.query(x);
  oracle.query(x);
  EXPECT_TRUE(oracle.exhausted());
}

TEST(Detectors, TinyNetTrainsAboveChance) {
  const corpus::Dataset data = tiny_dataset(50, 48);
  const auto [train, test] = data.split(0.75);
  ml::ByteConvConfig cfg;
  cfg.max_len = 8192;
  cfg.embed_dim = 4;
  cfg.filters = 8;
  cfg.width = 16;
  cfg.stride = 8;
  cfg.hidden = 8;
  ByteConvDetector det("tiny", cfg, 3);
  NetTrainConfig tc;
  tc.epochs = 10;
  tc.lr = 2e-3f;
  train_net(det, train, tc);
  calibrate_threshold(det, train, 0.05);
  const EvalReport r = evaluate(det, test);
  EXPECT_GT(r.auc, 0.75);
}

TEST(Detectors, GbdtTrainsAboveChance) {
  const corpus::Dataset data = tiny_dataset(60, 30);
  const auto [train, test] = data.split(0.7);
  GbdtDetector det("gbdt", {});
  train_gbdt(det, train);
  calibrate_threshold(det, train, 0.05);
  const EvalReport r = evaluate(det, test);
  EXPECT_GT(r.auc, 0.9);
  EXPECT_LE(r.fpr, 0.35);
}

TEST(Detectors, CalibrationRespectsFprOnTrain) {
  const corpus::Dataset data = tiny_dataset(70, 30);
  GbdtDetector det("gbdt", {});
  train_gbdt(det, data);
  calibrate_threshold(det, data, 0.1);
  const EvalReport r = evaluate(det, data);
  EXPECT_LE(r.fpr, 0.1 + 1e-9);
}

TEST(Detectors, SerializationRoundTrip) {
  const corpus::Dataset data = tiny_dataset(80, 16);
  GbdtDetector det("gbdt", {});
  train_gbdt(det, data);
  det.set_threshold(0.42);
  util::Archive ar;
  det.save(ar);
  const ByteBuf blob = ar.take();
  GbdtDetector other("placeholder", {});
  util::Unarchive un(blob);
  other.load(un);
  EXPECT_EQ(other.name(), "gbdt");
  EXPECT_DOUBLE_EQ(other.threshold(), 0.42);
  const ByteBuf probe = data.samples[0].bytes;
  EXPECT_DOUBLE_EQ(other.score(probe), det.score(probe));
}

TEST(Features, VendorHeuristicsFlagMovedEntryPoint) {
  // A normal sample: entry in .text, code decodes, no WX section.
  const corpus::CompiledSample s = corpus::make_malware(300);
  const auto names = detect::vendor_feature_names();
  const std::size_t base = detect::feature_dim();
  auto idx_of = [&](std::string_view n) {
    for (std::size_t i = 0; i < names.size(); ++i)
      if (names[i] == n) return base + i;
    ADD_FAILURE() << "unknown vendor feature " << n;
    return std::size_t{0};
  };
  const auto clean = detect::extract_vendor_features(s.bytes());
  EXPECT_EQ(clean.size(), detect::vendor_feature_dim());
  EXPECT_EQ(clean[idx_of("entry_section_executable")], 1.0f);
  EXPECT_EQ(clean[idx_of("entry_code_decodes")], 1.0f);
  EXPECT_EQ(clean[idx_of("first_exec_is_entry")], 1.0f);

  // Retarget the entry point at a new trailing section: the heuristics
  // that real AVs ship must fire.
  pe::PeFile f = s.pe;
  util::Rng rng(4);
  f.add_section("odd", rng.bytes(512),
                pe::kScnCode | pe::kScnMemRead | pe::kScnMemExecute |
                    pe::kScnMemWrite);
  f.entry_point = f.sections.back().vaddr;
  const auto moved = detect::extract_vendor_features(f.build());
  EXPECT_EQ(moved[idx_of("entry_in_last_section")], 1.0f);
  EXPECT_EQ(moved[idx_of("entry_section_std_name")], 0.0f);
  EXPECT_EQ(moved[idx_of("wx_section_present")], 1.0f);
  EXPECT_EQ(moved[idx_of("first_exec_is_entry")], 0.0f);
}

// ---- signature mining ---------------------------------------------------------

TEST(Signatures, MinesCommonMaliciousNgrams) {
  util::Rng rng(5);
  // Malicious docs share a 16-byte marker; benign docs do not contain it.
  const ByteBuf marker = util::to_bytes("EVIL_MARKER_BYTES");
  std::vector<ByteBuf> mal, ben;
  for (int i = 0; i < 10; ++i) {
    ByteBuf doc = rng.bytes(400);
    std::copy(marker.begin(), marker.end(), doc.begin() + 100 + i);
    mal.push_back(std::move(doc));
    ben.push_back(rng.bytes(400));
  }
  const auto sigs = mine_signatures(mal, ben, 12, 32, 0.5);
  ASSERT_FALSE(sigs.empty());
  SignatureDb db;
  for (const auto& s : sigs) db.add(s);
  // Every malicious doc matches; benign docs do not.
  for (const auto& d : mal) EXPECT_TRUE(db.matches(d));
  for (const auto& d : ben) EXPECT_FALSE(db.matches(d));
}

TEST(Signatures, NoSignaturesWhenNothingShared) {
  util::Rng rng(6);
  std::vector<ByteBuf> mal, ben;
  for (int i = 0; i < 8; ++i) {
    mal.push_back(rng.bytes(300));
    ben.push_back(rng.bytes(300));
  }
  const auto sigs = mine_signatures(mal, ben, 12, 32, 0.5);
  EXPECT_TRUE(sigs.empty());
}

TEST(Signatures, BenignWhitelistExcludesSharedContent) {
  util::Rng rng(7);
  const ByteBuf common = util::to_bytes("totally common library string!");
  std::vector<ByteBuf> mal, ben;
  for (int i = 0; i < 8; ++i) {
    ByteBuf m = rng.bytes(200);
    m.insert(m.end(), common.begin(), common.end());
    mal.push_back(std::move(m));
    ByteBuf b = rng.bytes(200);
    b.insert(b.end(), common.begin(), common.end());
    ben.push_back(std::move(b));
  }
  // The shared string exists in benign docs too -> must not become a sig.
  const auto sigs = mine_signatures(mal, ben, 12, 32, 0.5);
  SignatureDb db;
  for (const auto& s : sigs) db.add(s);
  for (const auto& d : ben) EXPECT_FALSE(db.matches(d));
}

TEST(Signatures, DbSerializationRoundTrip) {
  SignatureDb db;
  db.add(util::to_bytes("pattern-one!"));
  db.add(util::to_bytes("pattern-two!"));
  util::Archive ar;
  db.save(ar);
  const ByteBuf blob = ar.take();
  SignatureDb other;
  util::Unarchive un(blob);
  other.load(un);
  EXPECT_EQ(other.size(), 2u);
  EXPECT_TRUE(other.matches(util::to_bytes("xx pattern-two! yy")));
  EXPECT_FALSE(other.matches(util::to_bytes("pattern-three!")));
}

TEST(Signatures, AvProfilesAreFiveAndDistinct) {
  const auto profiles = default_av_profiles();
  ASSERT_EQ(profiles.size(), 5u);
  for (std::size_t i = 0; i < profiles.size(); ++i)
    for (std::size_t j = i + 1; j < profiles.size(); ++j)
      EXPECT_NE(profiles[i].name, profiles[j].name);
}

}  // namespace
}  // namespace mpass::detect
