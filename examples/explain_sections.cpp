// PEM walkthrough (paper §III-B): computes problem-space Shapley values of
// every PE section on the known detectors for a small malware corpus and
// prints the per-model ranking plus the common critical sections -- the
// positions MPass targets.
//
// Build & run:  ./build/examples/explain_sections
#include <cstdio>

#include "corpus/generator.hpp"
#include "detectors/zoo.hpp"
#include "explain/pem.hpp"

int main() {
  using namespace mpass;
  detect::ModelZoo& zoo = detect::ModelZoo::instance();

  std::vector<util::ByteBuf> malware;
  for (int i = 0; i < 12; ++i)
    malware.push_back(corpus::make_malware(555000 + i).bytes());

  std::vector<const detect::Detector*> known;
  for (detect::Detector* d : zoo.offline()) known.push_back(d);

  const explain::PemResult res = explain::run_pem(malware, known, {});

  std::printf("%zu malware samples, %zu known models\n\n", malware.size(),
              known.size());
  for (std::size_t m = 0; m < res.model_names.size(); ++m) {
    std::printf("%s\n", res.model_names[m].c_str());
    for (std::size_t i = 0; i < res.common_sections.size(); ++i)
      std::printf("  E[phi(%-9s)] = %+.4f\n", res.common_sections[i].c_str(),
                  res.avg_shapley[m][i]);
    std::printf("  top-3:");
    for (const std::string& s : res.per_model_topk[m])
      std::printf(" %s", s.c_str());
    std::printf("\n\n");
  }
  std::printf("common critical sections (per-model top-k intersection):");
  for (const std::string& s : res.critical) std::printf(" %s", s.c_str());
  std::printf("\n");
  return res.critical.empty() ? 1 : 0;
}
