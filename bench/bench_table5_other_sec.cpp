// Reproduces Table V: the Other-sec ablation -- modifying every section
// *except* code/data (with the same recovery/filler machinery) vs MPass on
// the commercial AV simulators.
#include "bench_common.hpp"

int main() {
  using namespace mpass;
  const auto cfg = harness::ExperimentConfig::from_env();
  bench::BenchReport report("table5_other_sec");
  const auto cells = harness::other_sec_grid(cfg);
  report.add_cells(cells);
  util::Table table(
      "Table V: Impact of changing modification positions, ASR (%) on AVs");
  table.header({"Method", "AV1", "AV2", "AV3", "AV4", "AV5"});
  for (const std::string& a : {std::string("Other-sec"), std::string("MPass")}) {
    std::vector<std::string> row = {a};
    for (const std::string& t : bench::av_targets())
      row.push_back(util::Table::num(bench::cell(cells, a, t).asr, 1));
    table.row(row);
  }
  std::cout << table.render();
  std::printf(
      "Paper Table V:\n"
      "  Other-sec 2.3/4.8/3.2/2.4/5.2  MPass 42.3/35.8/61.2/58.8/29.2\n");
  bench::export_results_csv("othersec", cells);
  return 0;
}
