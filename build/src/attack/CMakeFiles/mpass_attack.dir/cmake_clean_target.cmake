file(REMOVE_RECURSE
  "libmpass_attack.a"
)
