// Program specifications: the intermediate representation between "what a
// sample does" (behaviors) and the PE file the codegen compiles it into.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pe/pe.hpp"

namespace mpass::corpus {

/// A runtime behavior a program exhibits; compiled to MVM code by codegen.
enum class Behavior {
  // -- malicious --
  Persistence,    // registry autorun with shady value
  C2Beacon,       // connect + beacon loop to C2 URL
  Ransomware,     // ransom note + encrypt victim files + delete shadow copies
  Stealer,        // credential theft + exfiltration
  Keylogger,      // keylog start/dump + exfiltration
  Dropper,        // decode embedded payload, write exe, spawn it
  Injector,       // decode shellcode, inject into a process
  Wiper,          // destroy victim files + delete shadow copies
  OverlayLoader,  // locate own overlay via section table, decode, exfiltrate
  // -- benign --
  HelloReport,    // print help/usage text
  ConfigReader,   // read + checksum a config file
  Calculator,     // arithmetic loop, store + print
  TextProcessor,  // transform a string in memory, print
  FileWriter,     // write a log file
  UiGreeting,     // message box
  SelfCheck,      // read + checksum own header bytes
  Telemetry,      // benign network beacon (gray-area APIs, benign content)
  Updater,        // benign autorun registration (gray-area APIs)
};

/// True for behaviors only malware exhibits.
bool is_malicious_behavior(Behavior b);

/// MVM API ids a behavior's generated code invokes.
std::vector<std::uint16_t> behavior_apis(Behavior b);

/// Malware families / benign application archetypes (drives behavior mix).
enum class Family {
  Ransom,
  InfoStealer,
  Backdoor,
  DropperBot,
  KeylogSpy,
  WiperKit,
  BenignUtility,
  BenignEditor,
  BenignUpdater,
  BenignGame,
};

std::string_view family_name(Family f);
bool is_malicious_family(Family f);

/// Everything needed to deterministically compile one sample.
struct ProgramSpec {
  std::uint64_t seed = 0;  // drives all intra-sample randomness
  Family family = Family::BenignUtility;
  std::vector<Behavior> behaviors;
  std::vector<std::string> extra_strings;  // embedded in .rdata
  std::string text_name = ".text";  // section names (attackable header fields)
  std::string data_name = ".data";
  std::string rdata_name = ".rdata";
  std::size_t rsrc_size = 0;        // 0 = no .rsrc section
  bool has_reloc = false;
  bool hide_sensitive_imports = false;  // "dynamic API resolution" malware
  std::uint32_t timestamp = 0x5F000000;
  util::ByteBuf overlay_payload;    // plaintext; codegen encodes + appends
  util::ByteBuf inert_overlay;      // non-loaded overlay (installer payload)
  // Imported-but-unused APIs (benign programs import far more than they
  // call; this keeps import tables from being a trivially separable signal,
  // as in real PE corpora).
  std::vector<std::uint16_t> extra_imports;
};

/// Provenance of a compiled sample, carried through experiments.
struct SampleMeta {
  std::uint64_t seed = 0;
  Family family = Family::BenignUtility;
  bool malicious = false;
  bool overlay_dependent = false;
  std::vector<Behavior> behaviors;
};

/// Result of compiling a ProgramSpec.
struct CompiledSample {
  pe::PeFile pe;
  SampleMeta meta;

  util::ByteBuf bytes() const { return pe.build(); }
};

}  // namespace mpass::corpus
