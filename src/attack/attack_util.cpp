#include "attack/attack.hpp"

namespace mpass::attack {

double apr_of(std::size_t original_size, std::size_t adversarial_size) {
  if (original_size == 0) return 0.0;
  return (static_cast<double>(adversarial_size) -
          static_cast<double>(original_size)) /
         static_cast<double>(original_size);
}

}  // namespace mpass::attack
