file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_obfuscation.dir/bench_table4_obfuscation.cpp.o"
  "CMakeFiles/bench_table4_obfuscation.dir/bench_table4_obfuscation.cpp.o.d"
  "bench_table4_obfuscation"
  "bench_table4_obfuscation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_obfuscation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
