#include "core/modification.hpp"

#include <algorithm>

#include "obs/span.hpp"

namespace mpass::core {

using util::ByteBuf;

namespace {

/// True if section i is part of the code+data critical set: executable, or
/// initialized data that is not the import table, resources or relocations.
bool is_code_data(const pe::PeFile& file, std::size_t i) {
  const pe::Section& s = file.sections[i];
  if (s.data.empty()) return false;
  if (s.executable()) return true;
  if (!(s.characteristics & pe::kScnInitializedData)) return false;
  // Never touch the import table (paper §III-C footnote).
  const pe::DataDirectory& imp = file.dirs[pe::kDirImport];
  if (imp.rva >= s.vaddr && imp.rva < s.vaddr + std::max(s.vsize, 1u))
    return false;
  if (s.name == ".rsrc" || s.name == ".reloc") return false;
  return true;
}

std::vector<std::size_t> select_targets(const pe::PeFile& file,
                                        TargetMode mode) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < file.sections.size(); ++i) {
    if (file.sections[i].data.empty()) continue;
    const bool code_data = is_code_data(file, i);
    // The import table stays untouched in every mode.
    const pe::DataDirectory& imp = file.dirs[pe::kDirImport];
    const pe::Section& s = file.sections[i];
    const bool is_imports =
        imp.rva >= s.vaddr && imp.rva < s.vaddr + std::max(s.vsize, 1u);
    switch (mode) {
      case TargetMode::CodeData:
        if (code_data) out.push_back(i);
        break;
      case TargetMode::OtherSec:
        if (!code_data && !is_imports) out.push_back(i);
        break;
      case TargetMode::None:
        break;
    }
  }
  return out;
}

std::string random_section_name(util::Rng& rng) {
  static constexpr char kAlpha[] = "abcdefghijklmnopqrstuvwxyz0123456789";
  std::string name = rng.chance(0.5) ? "." : "";
  const std::size_t len = 3 + rng.below(4);
  for (std::size_t i = 0; i < len; ++i)
    name.push_back(kAlpha[rng.below(sizeof(kAlpha) - 1)]);
  return name;
}

}  // namespace

void ModifiedSample::set_byte(std::uint32_t p, std::uint8_t v) {
  const std::uint8_t old = bytes[p];
  if (old == v) return;
  bytes[p] = v;
  if (const auto it = key_of.find(p); it != key_of.end()) {
    // Keep x = b - k invariant: k += (b_new - b_old)  (mod 256).
    bytes[it->second] = static_cast<std::uint8_t>(
        bytes[it->second] + static_cast<std::uint8_t>(v - old));
  }
}

ModifiedSample apply_modification(std::span<const std::uint8_t> malware,
                                  std::span<const std::uint8_t> donor,
                                  const ModificationConfig& cfg,
                                  util::Rng& rng) {
  OBS_SCOPE("core.modification");
  pe::PeFile file = pe::PeFile::parse(malware);
  const std::uint32_t oep_va = file.image_base + file.entry_point;

  // ---- encode target sections -----------------------------------------------
  // Benign content is inserted *kind-aligned*: an encoded code section gets
  // the donor's code bytes, a data section gets donor data bytes. This is
  // the natural reading of the paper's "insert contexts from a randomly
  // selected benign program" -- the modified sample's sections then follow
  // true benign byte statistics rather than arbitrary donor slices.
  // Donor slices are taken from the donor's *raw file bytes* starting at a
  // matching-kind section's (file-alignment-rounded) offset, so the copied
  // byte stream sits on the same convolution grid byte-level detectors saw
  // it on during training. Cyclic wrap over the whole donor file preserves
  // that grid (file sizes are alignment-padded).
  pe::PeFile donor_pe;
  pe::Layout donor_layout;
  bool donor_parsed = false;
  try {
    donor_pe = pe::PeFile::parse(donor);
    donor_pe.build_with_layout(&donor_layout);
    donor_parsed = true;
  } catch (const util::ParseError&) {
  }
  auto donor_start = [&](bool executable) -> std::size_t {
    if (!donor_parsed) return 0;
    std::vector<std::size_t> candidates;
    for (std::size_t i = 0; i < donor_pe.sections.size(); ++i)
      if (donor_pe.sections[i].executable() == executable &&
          donor_pe.sections[i].data.size() >= 64 &&
          i < donor_layout.sections.size())
        candidates.push_back(i);
    if (candidates.empty()) return 0;
    const std::size_t pick = candidates[rng.below(candidates.size())];
    // Randomize the start within the section (16-byte grid so detectors
    // still see donor bytes on the donor's convolution grid): two AEs
    // drawing from the same donor then share no long byte runs at the same
    // alignment, which is what keeps MPass un-mineable in Fig. 4.
    const std::size_t raw = donor_pe.sections[pick].data.size();
    const std::size_t slack16 = raw > 512 ? (raw - 512) / 16 : 0;
    return donor_layout.sections[pick].file_offset +
           16 * (slack16 ? rng.below(slack16) : 0);
  };

  const std::vector<std::size_t> targets = select_targets(file, cfg.targets);
  std::vector<RegionPlan> regions;
  std::vector<ByteBuf> keys;
  std::size_t encoded_total = 0;
  for (std::size_t i : targets) {
    pe::Section& s = file.sections[i];
    RegionPlan plan;
    plan.va = file.image_base + s.vaddr;
    plan.len = static_cast<std::uint32_t>(s.data.size());
    plan.prot = s.executable() ? 3u : 1u;
    const std::size_t start = donor_start(s.executable());
    ByteBuf key(s.data.size());
    for (std::size_t j = 0; j < s.data.size(); ++j) {
      const std::uint8_t b =
          donor.empty() ? 0 : donor[(start + j) % donor.size()];
      key[j] = static_cast<std::uint8_t>(b - s.data[j]);  // k = b - x
      s.data[j] = b;                                      // benign content in
    }
    encoded_total += s.data.size();
    regions.push_back(plan);
    keys.push_back(std::move(key));
    // Encoded sections must stay mapped with their full content; recovery
    // restores them in place, so characteristics are unchanged (the stub
    // VProtects what it needs).
  }

  // ---- recovery section -------------------------------------------------------
  StubOptions stub_opts = cfg.stub;
  stub_opts.lead_filler = std::max<std::size_t>(
      cfg.min_tail,
      static_cast<std::size_t>(cfg.filler_ratio *
                               static_cast<double>(encoded_total)));
  if (cfg.push_keys_beyond > 0) {
    // The new section's raw data lands where the overlay currently starts;
    // size the lead filler so the stub and key blocks start past the
    // detectors' input windows.
    pe::Layout pre;
    file.build_with_layout(&pre);
    if (pre.overlay_offset < cfg.push_keys_beyond)
      stub_opts.lead_filler =
          std::max(stub_opts.lead_filler,
                   cfg.push_keys_beyond - pre.overlay_offset);
  }
  const std::uint32_t section_rva = file.next_free_rva();
  const std::uint32_t section_va = file.image_base + section_rva;
  // Filler content: a grid-aligned benign slice (the section's raw data
  // starts on a file-alignment boundary, so donor bytes keep their grid).
  ByteBuf filler_src;
  {
    const std::size_t start = donor_start(/*executable=*/false);
    const std::size_t want =
        std::max<std::size_t>(stub_opts.lead_filler + 1024, 4096);
    filler_src.resize(want);
    for (std::size_t j = 0; j < want; ++j)
      filler_src[j] = donor.empty() ? 0 : donor[(start + j) % donor.size()];
  }
  RecoverySection recovery = build_recovery_section(
      regions, keys, section_va, oep_va, filler_src, stub_opts, rng);

  const std::size_t new_index = file.add_section(
      random_section_name(rng), recovery.data,
      pe::kScnCode | pe::kScnMemRead | pe::kScnMemExecute);
  file.entry_point = section_rva + recovery.entry_offset;

  // Header-field perturbations (timestamp; new-section name already random).
  if (cfg.modify_headers)
    file.timestamp = static_cast<std::uint32_t>(rng.range(0x50000000,
                                                          0x65000000));

  // ---- build + position bookkeeping ------------------------------------------
  ModifiedSample out;
  pe::Layout layout;
  out.bytes = file.build_with_layout(&layout);
  out.apr =
      (static_cast<double>(out.bytes.size()) - static_cast<double>(malware.size())) /
      static_cast<double>(malware.size());
  out.recovery_section_off = layout.sections[new_index].file_offset;
  out.recovery_section_len =
      static_cast<std::uint32_t>(recovery.data.size());

  // Encoded section bytes (with key mapping into the new section).
  const std::uint32_t new_off = layout.sections[new_index].file_offset;
  for (std::size_t t = 0; t < targets.size(); ++t) {
    const std::uint32_t sec_off = layout.sections[targets[t]].file_offset;
    const std::uint32_t key_off = new_off + recovery.key_offsets[t];
    for (std::uint32_t j = 0; j < regions[t].len; ++j) {
      out.perturbable.push_back(sec_off + j);
      out.key_of.emplace(sec_off + j, key_off + j);
    }
  }
  // Shuffle gaps + tail filler.
  for (const auto& [off, len] : recovery.free_ranges)
    for (std::uint32_t j = 0; j < len; ++j)
      out.perturbable.push_back(new_off + off + j);

  // Header fields: timestamp + section name bytes.
  if (cfg.modify_headers) {
    const std::uint32_t lfanew =
        64 + static_cast<std::uint32_t>(file.dos_stub.size());
    for (std::uint32_t b = 0; b < 4; ++b)
      out.perturbable.push_back(lfanew + 8 + b);  // COFF TimeDateStamp
    const std::uint32_t table = lfanew + 4 + 20 + 224;
    for (std::size_t i = 0; i < file.sections.size(); ++i)
      for (std::uint32_t b = 0; b < 8; ++b)
        out.perturbable.push_back(table + static_cast<std::uint32_t>(i) * 40 +
                                  b);
  }

  std::sort(out.perturbable.begin(), out.perturbable.end());
  return out;
}

}  // namespace mpass::core
