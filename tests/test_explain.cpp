// Tests for Shapley attribution and PEM: the efficiency axiom, symmetry,
// Monte-Carlo agreement, ablation semantics, and Algorithm 1's pipeline.
#include <gtest/gtest.h>

#include "corpus/generator.hpp"
#include "explain/pem.hpp"
#include "explain/shapley.hpp"
#include "util/hashing.hpp"
#include "util/rng.hpp"

namespace mpass::explain {
namespace {

using util::ByteBuf;

pe::PeFile make_test_pe(int nsections, util::Rng& rng) {
  pe::PeFile f;
  for (int i = 0; i < nsections; ++i)
    f.add_section("s" + std::to_string(i), rng.bytes(128),
                  pe::kScnInitializedData | pe::kScnMemRead);
  f.entry_point = f.sections[0].vaddr;
  return f;
}

TEST(Shapley, AblationZeroesExactlyTheDroppedSections) {
  util::Rng rng(1);
  pe::PeFile f = make_test_pe(3, rng);
  f.overlay = rng.bytes(64);
  const auto players = section_players(f);
  ASSERT_EQ(players.size(), 4u);  // 3 sections + overlay
  std::vector<bool> keep = {true, false, true, false};
  const pe::PeFile g = pe::PeFile::parse(ablate_to_subset(f, keep));
  EXPECT_EQ(g.sections[0].data[0], f.sections[0].data[0]);
  for (std::uint8_t b : g.sections[1].data) EXPECT_EQ(b, 0);
  for (std::uint8_t b : g.overlay) EXPECT_EQ(b, 0);
  // Layout is preserved: same sizes and names.
  EXPECT_EQ(g.sections.size(), f.sections.size());
  EXPECT_EQ(g.overlay.size(), f.overlay.size());
}

TEST(Shapley, EfficiencyAxiomExact) {
  // f = weighted count of non-zeroed sections: phi_i must sum to
  // f(full) - f(empty) exactly.
  util::Rng rng(2);
  const pe::PeFile f = make_test_pe(4, rng);
  auto score = [&](std::span<const std::uint8_t> bytes) {
    const pe::PeFile g = pe::PeFile::parse(bytes);
    double s = 0;
    for (std::size_t i = 0; i < g.sections.size(); ++i) {
      bool nonzero = false;
      for (std::uint8_t b : g.sections[i].data)
        if (b) nonzero = true;
      if (nonzero) s += 0.1 * static_cast<double>(i + 1);
    }
    return s;
  };
  const std::vector<double> phi = shapley_values(f, score);
  double sum = 0;
  for (double p : phi) sum += p;
  std::vector<bool> none(4, false), all(4, true);
  const double expect =
      score(ablate_to_subset(f, all)) - score(ablate_to_subset(f, none));
  EXPECT_NEAR(sum, expect, 1e-9);
  // Additive game: phi_i equals each section's own weight.
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_NEAR(phi[i], 0.1 * static_cast<double>(i + 1), 1e-9);
}

TEST(Shapley, DummyPlayerGetsZero) {
  util::Rng rng(3);
  const pe::PeFile f = make_test_pe(3, rng);
  // Score ignores section 2 entirely.
  auto score = [&](std::span<const std::uint8_t> bytes) {
    const pe::PeFile g = pe::PeFile::parse(bytes);
    bool s0 = false;
    for (std::uint8_t b : g.sections[0].data)
      if (b) s0 = true;
    return s0 ? 1.0 : 0.0;
  };
  const std::vector<double> phi = shapley_values(f, score);
  EXPECT_NEAR(phi[1], 0.0, 1e-12);
  EXPECT_NEAR(phi[2], 0.0, 1e-12);
  EXPECT_NEAR(phi[0], 1.0, 1e-12);
}

TEST(Shapley, MonteCarloApproximatesExact) {
  util::Rng rng(4);
  const pe::PeFile f = make_test_pe(5, rng);
  auto score = [&](std::span<const std::uint8_t> bytes) {
    // Superadditive-ish game keyed on content hash parity per section.
    const pe::PeFile g = pe::PeFile::parse(bytes);
    double s = 0;
    for (std::size_t i = 0; i < g.sections.size(); ++i) {
      bool nz = false;
      for (std::uint8_t b : g.sections[i].data)
        if (b) nz = true;
      if (nz) s += static_cast<double>((i * 37 + 11) % 7) / 7.0;
    }
    return s;
  };
  ShapleyOptions exact_opts;
  const std::vector<double> exact = shapley_values(f, score, exact_opts);
  ShapleyOptions mc_opts;
  mc_opts.exact_max_players = 0;  // force sampling
  mc_opts.permutations = 200;
  const std::vector<double> approx = shapley_values(f, score, mc_opts);
  ASSERT_EQ(exact.size(), approx.size());
  for (std::size_t i = 0; i < exact.size(); ++i)
    EXPECT_NEAR(approx[i], exact[i], 0.05);
}

TEST(Pem, FindsThePlantedCriticalSection) {
  // Synthetic detectors that key on .data content only: PEM must rank
  // .data top-1 on every model, so the intersection is {.data}.
  class DataKeyed : public detect::Detector {
   public:
    explicit DataKeyed(std::string name) : name_(std::move(name)) {}
    std::string_view name() const override { return name_; }
    double score(std::span<const std::uint8_t> bytes) const override {
      try {
        const pe::PeFile f = pe::PeFile::parse(bytes);
        const auto idx = f.find_section(".data");
        if (!idx) return 0.0;
        double s = 0;
        for (std::uint8_t b : f.sections[*idx].data) s += b;
        return s > 0 ? 0.9 : 0.1;
      } catch (const util::ParseError&) {
        return 0.0;
      }
    }
   private:
    std::string name_;
  };

  std::vector<ByteBuf> malware;
  for (int i = 0; i < 6; ++i)
    malware.push_back(corpus::make_malware(4444 + i).bytes());
  DataKeyed m1("m1"), m2("m2");
  const detect::Detector* models[] = {&m1, &m2};
  PemConfig cfg;
  cfg.top_k = 2;
  const PemResult res = run_pem(malware, models, cfg);
  ASSERT_EQ(res.model_names.size(), 2u);
  ASSERT_FALSE(res.critical.empty());
  EXPECT_EQ(res.per_model_topk[0][0], ".data");
  EXPECT_NE(std::find(res.critical.begin(), res.critical.end(), ".data"),
            res.critical.end());
}

TEST(Pem, HandlesEmptyInputsGracefully) {
  const PemResult res = run_pem({}, {}, {});
  EXPECT_TRUE(res.critical.empty());
  EXPECT_TRUE(res.model_names.empty());
}

}  // namespace
}  // namespace mpass::explain
