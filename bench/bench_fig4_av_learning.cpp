// Reproduces Fig. 4: bypass rate (%) of each attack's successful AEs over
// five weekly commercial-AV learning updates. The paper's result: baselines
// decay as vendors mine their fixed artifacts; MPass stays at 100% thanks to
// the shuffle strategy + per-sample optimized perturbations. The
// MPass-noshuffle ablation shows the shuffle strategy is what prevents
// pattern learning.
#include "bench_common.hpp"

int main() {
  using namespace mpass;
  const auto cfg = harness::ExperimentConfig::from_env();
  bench::BenchReport report("fig4_av_learning");
  const auto tl = harness::av_learning_timeline(cfg);

  for (std::size_t v = 0; v < tl.avs.size(); ++v) {
    util::Table table("Fig. 4 (" + tl.avs[v] +
                      "): bypass rate (%) over weekly AV updates");
    std::vector<std::string> header = {"Attack"};
    for (std::size_t r = 0; r < tl.rounds; ++r)
      header.push_back("week " + std::to_string(r));
    table.header(header);
    for (std::size_t a = 0; a < tl.attacks.size(); ++a) {
      std::vector<std::string> row = {tl.attacks[a]};
      for (std::size_t r = 0; r < tl.rounds; ++r)
        row.push_back(util::Table::num(tl.bypass[a][v][r], 1));
      table.row(row);
    }
    std::cout << table.render();
  }
  std::printf(
      "Paper Fig. 4: all methods start at 100%% (successful AEs only);\n"
      "after 4 weekly updates every baseline's bypass rate drops sharply\n"
      "while MPass stays at 100%% on all five AVs.\n");
  return 0;
}
