# Empty dependencies file for test_advtrain.
# This may be replaced when dependencies are built.
