file(REMOVE_RECURSE
  "CMakeFiles/mpass_harness.dir/experiment.cpp.o"
  "CMakeFiles/mpass_harness.dir/experiment.cpp.o.d"
  "libmpass_harness.a"
  "libmpass_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpass_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
