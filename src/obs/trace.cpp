#include "obs/trace.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace mpass::obs {

namespace {

// A sample trace under construction: buffered lines + the destination file.
struct SampleBuffer {
  std::filesystem::path path;
  std::string lines;
};

thread_local SampleBuffer* tl_buffer = nullptr;

std::mutex& dir_mu() {
  static std::mutex mu;
  return mu;
}

// Guarded by dir_mu(): the resolved trace directory (empty => disabled).
std::filesystem::path& dir_slot() {
  static std::filesystem::path dir = [] {
    const char* v = std::getenv("MPASS_TRACE");
    return std::filesystem::path(v && *v ? v : "");
  }();
  return dir;
}

std::mutex& stream_mu() {
  static std::mutex mu;
  return mu;
}

std::string sanitize(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name)
    out += (std::isalnum(static_cast<unsigned char>(c)) || c == '-' ||
            c == '_' || c == '.')
               ? c
               : '_';
  return out;
}

}  // namespace

const std::filesystem::path* trace_dir() {
  std::lock_guard<std::mutex> lk(dir_mu());
  std::filesystem::path& dir = dir_slot();
  return dir.empty() ? nullptr : &dir;
}

void set_trace_dir(std::optional<std::filesystem::path> dir) {
  std::lock_guard<std::mutex> lk(dir_mu());
  if (!dir) {
    dir_slot().clear();
  } else if (dir->empty()) {
    const char* v = std::getenv("MPASS_TRACE");
    dir_slot() = std::filesystem::path(v && *v ? v : "");
  } else {
    dir_slot() = std::move(*dir);
  }
}

bool tracing() noexcept { return tl_buffer != nullptr; }

TraceScope::TraceScope(std::string_view attack, std::string_view target,
                       std::uint64_t sample_digest, std::uint64_t seed,
                       std::uint64_t query_budget) {
  const std::filesystem::path* dir = trace_dir();
  if (!dir) return;

  char digest[24];
  std::snprintf(digest, sizeof(digest), "%016llx",
                static_cast<unsigned long long>(sample_digest));
  auto* buf = new SampleBuffer;
  buf->path = *dir / (sanitize(attack) + "-" + sanitize(target) + "-" +
                      digest + ".jsonl");
  buf->lines = JsonLine()
                   .str("ev", "start")
                   .str("attack", attack)
                   .str("target", target)
                   .hex("sample", sample_digest)
                   .uint("seed", seed)
                   .uint("budget", query_budget)
                   .take();
  buf->lines += '\n';

  prev_ = tl_buffer;
  tl_buffer = buf;
  active_ = true;

  prev_tag_ = std::string(log_tag());
  std::string tag;
  tag.reserve(attack.size() + target.size() + 18);
  tag.append(attack).append("/").append(target).append("/").append(digest);
  set_log_tag(tag);
}

TraceScope::~TraceScope() {
  if (!active_) return;
  SampleBuffer* buf = tl_buffer;
  tl_buffer = static_cast<SampleBuffer*>(prev_);
  set_log_tag(prev_tag_);

  std::error_code ec;
  std::filesystem::create_directories(buf->path.parent_path(), ec);
  std::ofstream out(buf->path, std::ios::binary | std::ios::trunc);
  if (out) {
    out.write(buf->lines.data(),
              static_cast<std::streamsize>(buf->lines.size()));
  } else {
    logf(LogLevel::Warn, "trace: cannot write %s", buf->path.c_str());
  }
  delete buf;
}

Event::Event(std::string_view ev) {
  if (!tl_buffer) return;
  active_ = true;
  line_.str("ev", ev);
}

Event::~Event() {
  if (!active_) return;
  tl_buffer->lines += line_.take();
  tl_buffer->lines += '\n';
}

Event& Event::num(std::string_view key, double v) {
  if (active_) line_.num(key, v);
  return *this;
}

Event& Event::uint(std::string_view key, std::uint64_t v) {
  if (active_) line_.uint(key, v);
  return *this;
}

Event& Event::boolean(std::string_view key, bool v) {
  if (active_) line_.boolean(key, v);
  return *this;
}

Event& Event::str(std::string_view key, std::string_view v) {
  if (active_) line_.str(key, v);
  return *this;
}

Event& Event::strs(std::string_view key, std::span<const std::string> vs) {
  if (active_) line_.strs(key, vs);
  return *this;
}

void append_run_line(std::string_view file, std::string line) {
  const std::filesystem::path* dir = trace_dir();
  if (!dir) return;
  line += '\n';
  std::lock_guard<std::mutex> lk(stream_mu());
  std::error_code ec;
  std::filesystem::create_directories(*dir, ec);
  std::ofstream out(*dir / file, std::ios::binary | std::ios::app);
  if (out)
    out.write(line.data(), static_cast<std::streamsize>(line.size()));
}

void write_metrics_snapshot() {
  const std::filesystem::path* dir = trace_dir();
  if (!dir) return;
  std::error_code ec;
  std::filesystem::create_directories(*dir, ec);
  const std::string json = Registry::instance().snapshot().to_json();
  std::ofstream out(*dir / "metrics.json", std::ios::binary | std::ios::trunc);
  if (out) out.write(json.data(), static_cast<std::streamsize>(json.size()));
  // Call-path view of the same run, consumed by `mpass_prof top/tree/export`
  // and the `mpass_trace summary --spans` section.
  const std::string spans = spans_to_json(span_snapshot());
  std::ofstream sout(*dir / "spans.json", std::ios::binary | std::ios::trunc);
  if (sout)
    sout.write(spans.data(), static_cast<std::streamsize>(spans.size()));
}

}  // namespace mpass::obs
