// Shared table-rendering helpers for the per-table bench binaries.
#pragma once

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "obs/metrics.hpp"
#include "util/table.hpp"
#include "util/threadpool.hpp"

namespace mpass::bench {

/// Finds a cell by (attack, target); aborts with a message if missing.
inline const harness::CellStats& cell(
    const std::vector<harness::CellStats>& cells, std::string_view attack,
    std::string_view target) {
  for (const harness::CellStats& c : cells)
    if (c.attack == attack && c.target == target) return c;
  std::fprintf(stderr, "missing cell %s x %s\n", std::string(attack).c_str(),
               std::string(target).c_str());
  std::abort();
}

/// Prints one paper-style table: rows = targets, columns = attacks,
/// metric picked by the selector.
template <typename Selector>
void print_grid(const std::string& title,
                const std::vector<harness::CellStats>& cells,
                const std::vector<std::string>& targets,
                const std::vector<std::string>& attacks, Selector metric,
                int decimals = 1) {
  util::Table table(title);
  std::vector<std::string> header = {"Models"};
  header.insert(header.end(), attacks.begin(), attacks.end());
  table.header(header);
  for (const std::string& t : targets) {
    std::vector<std::string> row = {t};
    for (const std::string& a : attacks)
      row.push_back(util::Table::num(metric(cell(cells, a, t)), decimals));
    table.row(row);
  }
  std::cout << table.render() << std::flush;
}

inline std::vector<std::string> offline_targets() {
  return {"MalConv", "NonNeg", "LightGBM", "MalGCG"};
}

inline std::vector<std::string> av_targets() {
  return {"AV1", "AV2", "AV3", "AV4", "AV5"};
}

inline std::vector<std::string> main_attacks() {
  return {"MPass", "RLA", "MAB", "GAMMA", "MalRNN"};
}

/// Prints the per-cell compute-time / query-throughput counters collected
/// by run_cell (all ~0 when the grid came straight from the result cache).
/// wall_ms sums sample-task durations, so cells are comparable even though
/// they interleave on the shared pool.
inline void print_cell_timings(const std::vector<harness::CellStats>& cells) {
  double total_ms = 0.0;
  std::size_t total_q = 0;
  for (const harness::CellStats& c : cells) {
    total_ms += c.wall_ms;
    total_q += c.total_queries;
  }
  std::printf("cell timing: %zu queries in %.0f ms cpu-cell time (threads=%zu)\n",
              total_q, total_ms, util::ThreadPool::instance().size());
  for (const harness::CellStats& c : cells)
    if (c.wall_ms > 0.0)
      std::printf("  %-12s vs %-10s %8.0f ms %8.0f q/s\n", c.attack.c_str(),
                  c.target.c_str(), c.wall_ms, c.qps);
}

/// Prints the top scoped-timer histograms ("time.*") from the metrics
/// registry, ranked by total time spent. Shows where the run's compute went
/// (all near-zero when the grid was served from the result cache).
inline void print_top_timers(std::size_t top_n = 8) {
  const obs::Snapshot snap = obs::Registry::instance().snapshot();
  struct Row {
    std::string name;
    std::uint64_t count;
    double sum_ms;
  };
  std::vector<Row> rows;
  for (const auto& [name, h] : snap.histograms)
    if (name.rfind("time.", 0) == 0 && h.count > 0)
      rows.push_back({name, h.count, h.sum});
  if (rows.empty()) return;
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.sum_ms > b.sum_ms; });
  std::printf("top timers (this process):\n");
  for (std::size_t i = 0; i < rows.size() && i < top_n; ++i)
    std::printf("  %-28s %10llu calls %12.1f ms total %9.3f ms/call\n",
                rows[i].name.c_str(),
                static_cast<unsigned long long>(rows[i].count),
                rows[i].sum_ms,
                rows[i].sum_ms / static_cast<double>(rows[i].count));
}

/// Exports a grid to results/<key>.csv next to the cache dir.
inline void export_results_csv(std::string_view key,
                               const std::vector<harness::CellStats>& cells) {
  const auto path = util::cache_dir() / "results" /
                    (std::string(key) + ".csv");
  harness::export_csv(path, cells);
  std::fprintf(stderr, "[csv] wrote %s\n", path.string().c_str());
}

}  // namespace mpass::bench
