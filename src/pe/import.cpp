#include "pe/import.hpp"

#include "util/bytes.hpp"

namespace mpass::pe {

namespace {
constexpr std::uint32_t kImportMagic = 0x31504D49;  // 'IMP1'
}

ByteBuf encode_imports(std::span<const Import> imports) {
  util::ByteWriter w;
  w.u32(kImportMagic);
  w.u32(static_cast<std::uint32_t>(imports.size()));
  for (const Import& imp : imports) {
    w.u16(imp.api_id);
    w.u8(static_cast<std::uint8_t>(std::min<std::size_t>(imp.name.size(), 255)));
    w.block(util::as_bytes(std::string_view(imp.name).substr(0, 255)));
  }
  return w.take();
}

std::vector<Import> decode_imports(std::span<const std::uint8_t> data) {
  util::ByteReader r(data);
  if (r.u32() != kImportMagic) throw util::ParseError("imports: bad magic");
  const std::uint32_t count = r.u32();
  // Each entry is at least 3 bytes (api_id + name length), so a count larger
  // than that bound cannot be satisfied by the payload; reserving it blindly
  // would turn a hostile 32-bit count into a multi-GB allocation.
  if (count > r.remaining() / 3)
    throw util::ParseError("imports: count exceeds payload");
  std::vector<Import> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    Import imp;
    imp.api_id = r.u16();
    const std::uint8_t len = r.u8();
    imp.name = r.fixed_string(len);
    out.push_back(std::move(imp));
  }
  return out;
}

std::size_t attach_import_section(PeFile& file,
                                  std::span<const Import> imports) {
  ByteBuf blob = encode_imports(imports);
  const std::uint32_t size = static_cast<std::uint32_t>(blob.size());
  const std::size_t idx = file.add_section(
      ".idata", std::move(blob), kScnInitializedData | kScnMemRead);
  file.dirs[kDirImport].rva = file.sections[idx].vaddr;
  file.dirs[kDirImport].size = size;
  return idx;
}

std::vector<Import> read_imports(const PeFile& file) {
  const DataDirectory& dir = file.dirs[kDirImport];
  if (dir.rva == 0 || dir.size == 0) return {};
  const auto sec = file.section_by_rva(dir.rva);
  if (!sec) return {};
  const Section& s = file.sections[*sec];
  const std::uint32_t off = dir.rva - s.vaddr;
  if (off >= s.data.size()) return {};
  const std::size_t avail = s.data.size() - off;
  const std::size_t len = std::min<std::size_t>(dir.size, avail);
  try {
    return decode_imports({s.data.data() + off, len});
  } catch (const util::ParseError&) {
    return {};  // adversarially corrupted import tables yield no imports
  }
}

}  // namespace mpass::pe
