# Empty compiler generated dependencies file for mpass_pack.
# This may be replaced when dependencies are built.
