#include "vm/trace_io.hpp"

#include <cstdio>

namespace mpass::vm {

namespace {
std::string format_event(const Event& e) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%-14s digest=%016llx%s",
                std::string(api_name(e.api)).c_str(),
                static_cast<unsigned long long>(e.digest),
                is_hard_malicious(e.api) ? " [malicious]"
                : is_sensitive(e.api)   ? " [sensitive]"
                                        : "");
  return buf;
}
}  // namespace

std::string format_trace(const Trace& trace) {
  std::string out;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    char head[16];
    std::snprintf(head, sizeof(head), "%3zu  ", i);
    out += head;
    out += format_event(trace[i]);
    out += '\n';
  }
  return out;
}

std::string diff_traces(const Trace& before, const Trace& after) {
  std::string out;
  const std::size_t n = std::min(before.size(), after.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (before[i] == after[i]) continue;
    char head[64];
    std::snprintf(head, sizeof(head), "first divergence at event %zu:\n", i);
    out += head;
    out += "  - " + format_event(before[i]) + '\n';
    out += "  + " + format_event(after[i]) + '\n';
    return out;
  }
  if (before.size() != after.size()) {
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "length mismatch: %zu events before, %zu after\n",
                  before.size(), after.size());
    out += buf;
    const Trace& longer = before.size() > after.size() ? before : after;
    out += (before.size() > after.size() ? "  - " : "  + ") +
           format_event(longer[n]) + '\n';
  }
  return out;
}

std::string summarize_trace(const Trace& trace) {
  std::size_t sensitive = 0, malicious = 0;
  for (const Event& e : trace) {
    if (is_sensitive(e.api)) ++sensitive;
    if (is_hard_malicious(e.api)) ++malicious;
  }
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%zu events, %zu sensitive, %zu malicious",
                trace.size(), sensitive, malicious);
  return buf;
}

}  // namespace mpass::vm
