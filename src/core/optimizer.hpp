// Ensemble perturbation optimization (paper §III-D, Eq. 2-3).
//
// The perturbable bytes delta are lifted into each known model's embedding
// space; one optimization step computes dLoss/dEmbedding for every known
// model (loss = sum of per-model BCE toward the benign label, the ensemble
// loss of Liu et al.), then greedily re-selects each perturbable byte to
// minimize the first-order ensemble loss -- including the contribution of
// its coupled key byte (the matrix-M constraint), so every step stays
// function-preserving.
#pragma once

#include <vector>

#include "core/modification.hpp"
#include "ml/byteconv.hpp"

namespace mpass::core {

class EnsembleOptimizer {
 public:
  /// known: the differentiable known models (never the black-box target).
  explicit EnsembleOptimizer(std::vector<ml::ByteConvNet*> known);

  /// One optimization step: computes the ensemble gradient, greedily
  /// re-selects bytes, and line-searches over update fractions so the
  /// true (non-linearized) ensemble loss never increases.
  /// Returns the mean ensemble BCE loss toward benign *after* the update.
  float step(ModifiedSample& sample) const;

  /// Mean ensemble probability of `bytes` being malicious.
  float ensemble_score(std::span<const std::uint8_t> bytes) const;

  /// Mean ensemble BCE loss toward the benign label.
  float ensemble_loss(std::span<const std::uint8_t> bytes) const;

 private:
  std::vector<ml::ByteConvNet*> known_;
};

}  // namespace mpass::core
