// Training and calibration for the offline detectors.
//
// Thresholds are calibrated to a target false-positive rate on held-out
// benign samples, the way deployed ML AVs are tuned.
#pragma once

#include "corpus/generator.hpp"
#include "detectors/models.hpp"

namespace mpass::detect {

struct EvalReport {
  double accuracy = 0.0;
  double auc = 0.0;
  double tpr = 0.0;  // detection rate at the calibrated threshold
  double fpr = 0.0;
};

/// Scores a whole dataset and evaluates at the detector's threshold.
EvalReport evaluate(const Detector& detector, const corpus::Dataset& data);

/// Sets the threshold achieving fpr <= max_fpr on `data` (benign scores).
void calibrate_threshold(Detector& detector, const corpus::Dataset& data,
                         double max_fpr);

struct NetTrainConfig {
  int epochs = 3;
  float lr = 1e-3f;
  int batch = 4;
  std::uint64_t seed = 7;
};

/// Trains a ByteConvDetector with Adam + BCE; applies the non-negativity
/// clamp after each step when the architecture requires it.
/// Returns final-epoch mean training loss.
float train_net(ByteConvDetector& detector, const corpus::Dataset& train,
                const NetTrainConfig& cfg);

/// Fits the GBDT detector on extracted features.
void train_gbdt(GbdtDetector& detector, const corpus::Dataset& train,
                std::uint64_t seed = 7);

}  // namespace mpass::detect
