// Executable packers: the UPX / PESpin / ASPack stand-ins of Table IV.
//
// A packer rewrites a PE into [placeholder section][stub section]: the
// original sections are compressed (LZSS) or encrypted (rolling XOR) into a
// blob, and an MVM stub -- emitted by this module, including a full LZSS
// decompressor in MVM assembly -- restores them at their original RVAs at
// runtime and jumps to the original entry point. The overlay is preserved.
//
// Like their real counterparts, these packers hide code/data bytes but carry
// fixed artifacts (characteristic section names, a fixed stub, a tiny import
// table, high-entropy payload) that ML detectors learn -- which is the
// mechanism behind their low ASR in the paper's Table IV.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "util/bytes.hpp"

namespace mpass::pack {

enum class PackerKind { UpxLike, PespinLike, AspackLike };

std::string_view packer_name(PackerKind kind);

struct PackOptions {
  std::uint64_t seed = 1;  // stub decoration randomness (packers vary little)
};

/// Packs a PE file. Returns nullopt if the input cannot be parsed or has no
/// sections. The result is a runnable PE with identical behavior trace.
std::optional<util::ByteBuf> pack(PackerKind kind,
                                  std::span<const std::uint8_t> input,
                                  const PackOptions& opts = {});

}  // namespace mpass::pack
