// Byte-buffer primitives: little-endian scalar IO, hex formatting, and a
// cursor-based reader/writer used by the PE parser and the ISA codec.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace mpass::util {

using ByteBuf = std::vector<std::uint8_t>;

/// Thrown on malformed input (truncated PE, bad instruction encoding, ...).
class ParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// ---- little-endian scalar IO on raw memory -------------------------------

template <typename T>
T read_le(const std::uint8_t* p) {
  static_assert(std::is_trivially_copyable_v<T>);
  T v{};
  std::memcpy(&v, p, sizeof(T));
  return v;  // host assumed little-endian (x86/ARM64 linux)
}

template <typename T>
void write_le(std::uint8_t* p, T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  std::memcpy(p, &v, sizeof(T));
}

// ---- bounds-checked cursor reader ----------------------------------------

/// Reads scalars/blocks from a byte span, throwing ParseError past the end.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::size_t pos() const { return pos_; }
  std::size_t size() const { return data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }
  bool eof() const { return pos_ >= data_.size(); }

  void seek(std::size_t pos) {
    if (pos > data_.size()) throw ParseError("seek past end of buffer");
    pos_ = pos;
  }

  void skip(std::size_t n) { seek(pos_ + n); }

  template <typename T>
  T read() {
    require(sizeof(T));
    T v = read_le<T>(data_.data() + pos_);
    pos_ += sizeof(T);
    return v;
  }

  std::uint8_t u8() { return read<std::uint8_t>(); }
  std::uint16_t u16() { return read<std::uint16_t>(); }
  std::uint32_t u32() { return read<std::uint32_t>(); }
  std::uint64_t u64() { return read<std::uint64_t>(); }
  std::int32_t i32() { return read<std::int32_t>(); }

  /// Copies n bytes out.
  ByteBuf block(std::size_t n) {
    require(n);
    ByteBuf out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return out;
  }

  /// Zero-copy view of the next n bytes.
  std::span<const std::uint8_t> view(std::size_t n) {
    require(n);
    auto s = data_.subspan(pos_, n);
    pos_ += n;
    return s;
  }

  /// Fixed-width field interpreted as a NUL-padded ASCII string.
  std::string fixed_string(std::size_t n) {
    auto v = view(n);
    std::size_t len = 0;
    while (len < n && v[len] != 0) ++len;
    return std::string(reinterpret_cast<const char*>(v.data()), len);
  }

 private:
  void require(std::size_t n) const {
    if (pos_ + n > data_.size()) throw ParseError("read past end of buffer");
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

// ---- appending writer -----------------------------------------------------

/// Appends scalars/blocks to a growing byte buffer.
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(ByteBuf initial) : buf_(std::move(initial)) {}

  std::size_t size() const { return buf_.size(); }
  const ByteBuf& buffer() const { return buf_; }
  ByteBuf take() { return std::move(buf_); }

  template <typename T>
  void write(T v) {
    const std::size_t at = buf_.size();
    buf_.resize(at + sizeof(T));
    write_le<T>(buf_.data() + at, v);
  }

  void u8(std::uint8_t v) { write(v); }
  void u16(std::uint16_t v) { write(v); }
  void u32(std::uint32_t v) { write(v); }
  void u64(std::uint64_t v) { write(v); }
  void i32(std::int32_t v) { write(v); }

  void block(std::span<const std::uint8_t> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }

  void zeros(std::size_t n) { buf_.resize(buf_.size() + n, 0); }

  /// Writes s truncated/zero-padded to exactly n bytes.
  void fixed_string(std::string_view s, std::size_t n) {
    const std::size_t take_n = s.size() < n ? s.size() : n;
    block({reinterpret_cast<const std::uint8_t*>(s.data()), take_n});
    zeros(n - take_n);
  }

  /// Pads with zeros until size() is a multiple of align (align > 0).
  void align_to(std::size_t align) {
    const std::size_t rem = buf_.size() % align;
    if (rem != 0) zeros(align - rem);
  }

  /// Patches a previously written little-endian scalar at offset.
  template <typename T>
  void patch(std::size_t offset, T v) {
    if (offset + sizeof(T) > buf_.size())
      throw std::out_of_range("patch past end of buffer");
    write_le<T>(buf_.data() + offset, v);
  }

 private:
  ByteBuf buf_;
};

// ---- misc helpers ----------------------------------------------------------

/// Lowercase hex dump of a byte range.
std::string to_hex(std::span<const std::uint8_t> data);

/// Rounds v up to the next multiple of align (align > 0, power of two not
/// required).
constexpr std::uint32_t align_up(std::uint32_t v, std::uint32_t align) {
  return align == 0 ? v : ((v + align - 1) / align) * align;
}

/// Bytes of a string_view as a span.
inline std::span<const std::uint8_t> as_bytes(std::string_view s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

/// ByteBuf copy of a string.
ByteBuf to_bytes(std::string_view s);

}  // namespace mpass::util
