#!/usr/bin/env bash
# Runs every benchmark binary in a sensible order (cheap reports first, the
# shared-grid tables together) and tees the combined output. Each bench also
# writes a machine-readable BENCH_<name>.json (schema: docs/OBSERVABILITY.md)
# into MPASS_BENCH_DIR; afterwards `mpass_prof collect` merges them into one
# schema-versioned BENCH_SUMMARY.json, failing the script when any bench's
# output is missing or unparsable.
#
# Usage: scripts/run_all_benches.sh [output-file]
# Knobs: MPASS_N / MPASS_N_OFFLINE / MPASS_N_AV (samples per cell),
#        MPASS_THREADS (attack-grid thread-pool size; default: all cores),
#        MPASS_BENCH_DIR (per-bench JSON dir; default: bench_out),
#        MPASS_CACHE_DIR, MPASS_SEED, ...
#
# The offline grid (Tables I-III + functionality) and the AV grids (Fig. 3/4,
# Tables IV-VI) use separate sample-count knobs so the cheap offline tables
# can run at a larger N than the costlier AV experiments.
#
# pipefail matters: the bench group is piped through tee, and without it a
# failing bench binary would be masked by tee's exit status -- CI relies on
# this script's exit code.
set -euo pipefail
OUT="${1:-bench_output.txt}"
BENCH_DIR="$(dirname "$0")/../build/bench"
TOOLS_DIR="$(dirname "$0")/../build/tools"
N_OFFLINE="${MPASS_N_OFFLINE:-${MPASS_N:-40}}"
N_AV="${MPASS_N_AV:-${MPASS_N:-25}}"
MPASS_THREADS="${MPASS_THREADS:-$(nproc 2>/dev/null || echo 1)}"
export MPASS_THREADS
MPASS_BENCH_DIR="${MPASS_BENCH_DIR:-bench_out}"
export MPASS_BENCH_DIR
mkdir -p "$MPASS_BENCH_DIR"

# Every bench that must have produced a BENCH_<name>.json by the end; a
# missing report fails the collect step (and the script) rather than being
# silently dropped from the summary.
EXPECT="detectors,pem_sections,table1_asr,table2_avq,table3_apr,functionality"
EXPECT="$EXPECT,fig3_av_asr,table4_obfuscation,fig4_av_learning"
EXPECT="$EXPECT,table5_other_sec,table6_random_data,advtrain"
EXPECT="$EXPECT,ablation_ensemble,ablation_budget,micro"

{
  echo "===== bench_detectors ====="
  "$BENCH_DIR/bench_detectors"
  echo
  echo "===== bench_pem_sections ====="
  "$BENCH_DIR/bench_pem_sections"
  echo
  for b in bench_table1_asr bench_table2_avq bench_table3_apr \
           bench_functionality; do
    echo "===== $b (N=$N_OFFLINE, threads=$MPASS_THREADS) ====="
    MPASS_N="$N_OFFLINE" "$BENCH_DIR/$b"
    echo
  done
  for b in bench_fig3_av_asr bench_table4_obfuscation \
           bench_fig4_av_learning bench_table5_other_sec \
           bench_table6_random_data; do
    echo "===== $b (N=$N_AV, threads=$MPASS_THREADS) ====="
    MPASS_N="$N_AV" "$BENCH_DIR/$b"
    echo
  done
  for b in bench_advtrain bench_ablation_ensemble bench_ablation_budget; do
    echo "===== $b ====="
    MPASS_N="$N_AV" "$BENCH_DIR/$b"
    echo
  done
  echo "===== bench_micro ====="
  "$BENCH_DIR/bench_micro"
  echo
  echo "===== collect ====="
  "$TOOLS_DIR/mpass_prof" collect "$MPASS_BENCH_DIR" --expect "$EXPECT"
} 2>&1 | tee "$OUT"
