// Reproduces Table I: ASR (%) of each attack against the four offline
// ML detectors. Shares its runs with Tables II/III via the result cache.
#include "bench_common.hpp"

int main() {
  using namespace mpass;
  const auto cfg = harness::ExperimentConfig::from_env();
  bench::BenchReport report("table1_asr");
  const auto cells = harness::offline_grid(cfg);
  report.add_cells(cells);
  bench::print_grid(
      "Table I: ASR (%) of attacking offline models", cells,
      bench::offline_targets(), bench::main_attacks(),
      [](const harness::CellStats& c) { return c.asr; });
  std::printf("(n=%zu malware per cell, query budget %zu)\n", cfg.n_samples,
              cfg.max_queries);
  bench::print_cell_timings(cells);
  bench::print_top_timers();
  std::printf(
      "Paper Table I (2000 samples, real PE corpus):\n"
      "  MalConv 98.6/33.7/94.2/81.8/94.3  NonNeg 99.2/35.4/93.6/90.2/97.0\n"
      "  LightGBM 98.3/20.3/91.8/84.8/28.2 MalGCG 99.6/68.7/87.4/61.4/76.8\n");
  bench::export_results_csv("offline", cells);
  return 0;
}
