#include "core/recovery.hpp"

#include <cassert>
#include <functional>
#include <stdexcept>

#include "isa/isa.hpp"
#include "vm/api.hpp"

namespace mpass::core {

using isa::Assembler;
using isa::Reg;
using util::ByteBuf;

namespace {

/// Copies `n` bytes from `src` cyclically starting at `*cursor`.
ByteBuf cyclic_take(std::span<const std::uint8_t> src, std::size_t n,
                    std::size_t* cursor) {
  ByteBuf out(n);
  if (src.empty()) return out;
  for (std::size_t i = 0; i < n; ++i)
    out[i] = src[(*cursor + i) % src.size()];
  *cursor += n;
  return out;
}

}  // namespace

RecoverySection build_recovery_section(std::span<const RegionPlan> regions,
                                       std::span<const ByteBuf> keys,
                                       std::uint32_t section_va,
                                       std::uint32_t oep_va,
                                       std::span<const std::uint8_t> filler,
                                       const StubOptions& opts,
                                       util::Rng& rng) {
  // Validate the knobs before any sizing math: max_gap < min_gap would
  // underflow the below() bound into a ~2^64 gap (a multi-GB allocation),
  // and chunk_items == 0 is an invalid below() bound outright.
  if (opts.chunk_items < 1)
    throw std::invalid_argument("recovery: StubOptions.chunk_items must be >= 1");
  if (opts.max_gap < opts.min_gap)
    throw std::invalid_argument(
        "recovery: StubOptions.max_gap must be >= min_gap");

  if (regions.size() != keys.size())
    throw std::logic_error("recovery: regions/keys size mismatch");
  for (std::size_t i = 0; i < regions.size(); ++i)
    if (keys[i].size() != regions[i].len)
      throw std::logic_error("recovery: key length mismatch");

  RecoverySection out;

  // Section layout: [lead filler][stub + gaps][key blocks]. The benign
  // filler leads (it starts at a file-alignment boundary, so detectors see
  // donor bytes on the donor's own convolution grid), the stub follows, and
  // the incompressible key material sits deepest in the file.
  const std::uint32_t lead = static_cast<std::uint32_t>(opts.lead_filler);
  std::uint32_t cursor = 0;
  std::vector<std::uint32_t> key_rel;  // relative to key block start
  for (const ByteBuf& k : keys) {
    key_rel.push_back(cursor);
    cursor += static_cast<std::uint32_t>(k.size());
  }

  // The stub layout depends only on the shuffle randomness, not on the key
  // VAs (movi immediates are fixed-width), so two passes with a cloned RNG
  // reach an exact fixpoint: pass 1 sizes the stub, pass 2 emits with the
  // final key addresses.
  const std::uint64_t layout_seed = rng();

  struct StubBuild {
    ByteBuf bytes;
    std::size_t entry_item = 0;
    std::vector<std::size_t> item_offsets;
    std::vector<std::size_t> gap_items;
  };

  auto emit_stub = [&](std::uint32_t stub_va, std::uint32_t key_base_va) {
    util::Rng lrng(layout_seed);
    Assembler a;
    using EmitFn = std::function<void(Assembler&)>;
    std::vector<EmitFn> items;
    auto I = [&items](EmitFn fn) { items.push_back(std::move(fn)); };

    for (std::size_t r = 0; r < regions.size(); ++r) {
      const RegionPlan& reg = regions[r];
      const std::uint32_t key_va = key_base_va + key_rel[r];
      const auto loop = a.make_label();
      const auto body = a.make_label();
      const auto done = a.make_label();

      // VProtect(region, prot)
      I([=](Assembler& s) { s.movi(Reg::r0, reg.va); });
      I([=](Assembler& s) { s.movi(Reg::r1, reg.len); });
      I([=](Assembler& s) { s.movi(Reg::r2, reg.prot); });
      I([](Assembler& s) {
        s.sys(static_cast<std::uint16_t>(vm::Api::VProtect));
      });
      // r4 = cur, r5 = end, r6 = key cursor
      I([=](Assembler& s) { s.movi(Reg::r4, reg.va); });
      I([=](Assembler& s) { s.movi(Reg::r5, reg.va + reg.len); });
      I([=](Assembler& s) { s.movi(Reg::r6, key_va); });
      I([=](Assembler& s) {
        s.bind(loop);
        s.jlt(Reg::r4, Reg::r5, body);
      });
      I([=](Assembler& s) { s.jmp(done); });
      I([=](Assembler& s) {
        s.bind(body);
        s.loadb(Reg::r1, Reg::r4);
      });
      I([=](Assembler& s) { s.loadb(Reg::r2, Reg::r6); });
      I([=](Assembler& s) { s.sub(Reg::r1, Reg::r2); });
      I([=](Assembler& s) { s.storeb(Reg::r4, Reg::r1); });
      I([=](Assembler& s) { s.movi(Reg::r0, 1); });
      I([=](Assembler& s) { s.add(Reg::r4, Reg::r0); });
      I([=](Assembler& s) { s.add(Reg::r6, Reg::r0); });
      I([=](Assembler& s) { s.jmp(loop); });
      I([=](Assembler& s) { s.bind(done); s.nop(); });
    }
    // Restore context (zero registers), return to the original entry point.
    for (int reg = 0; reg < isa::kNumRegs; ++reg)
      I([=](Assembler& s) { s.movi(static_cast<Reg>(reg), 0); });
    I([=](Assembler& s) { s.jmp_va(oep_va); });

    // ---- chunking + shuffle (identical across passes: lrng is cloned).
    struct Chunk {
      std::size_t first = 0, last = 0;
    };
    std::vector<Chunk> chunks;
    std::size_t idx = 0;
    while (idx < items.size()) {
      std::size_t take = 1;
      if (opts.shuffle && opts.chunk_items > 1)
        take = 1 + lrng.below(opts.chunk_items);
      take = std::min(take, items.size() - idx);
      chunks.push_back({idx, idx + take});
      idx += take;
    }
    std::vector<std::size_t> physical(chunks.size());
    for (std::size_t i = 0; i < physical.size(); ++i) physical[i] = i;
    if (opts.shuffle && physical.size() > 1) lrng.shuffle(physical);

    std::vector<Assembler::Label> chunk_label(chunks.size());
    for (auto& l : chunk_label) l = a.make_label();

    StubBuild build;
    std::size_t filler_cursor = 0;
    std::size_t emitted = 0;
    bool entry_found = false;
    for (std::size_t pi = 0; pi < physical.size(); ++pi) {
      const std::size_t ci = physical[pi];
      a.bind(chunk_label[ci]);
      if (ci == 0 && !entry_found) {
        build.entry_item = emitted;
        entry_found = true;
      }
      for (std::size_t k = chunks[ci].first; k < chunks[ci].last; ++k) {
        items[k](a);
        ++emitted;
      }
      if (ci + 1 < chunks.size()) {
        a.jmp(chunk_label[ci + 1]);
        ++emitted;
      }
      if (opts.shuffle && pi + 1 < physical.size()) {
        const std::size_t gap =
            opts.min_gap + lrng.below(opts.max_gap - opts.min_gap + 1);
        a.raw(cyclic_take(filler, gap, &filler_cursor));
        build.gap_items.push_back(emitted);
        ++emitted;
      }
    }
    build.bytes = a.finish(stub_va, &build.item_offsets);
    return build;
  };

  // Pass 1: size the stub; pass 2: final stub/key VAs.
  const std::uint32_t stub_va = section_va + lead;
  const std::size_t stub_size = emit_stub(stub_va, 0).bytes.size();
  const std::uint32_t key_base_va =
      stub_va + static_cast<std::uint32_t>(stub_size);
  StubBuild build = emit_stub(stub_va, key_base_va);
  assert(build.bytes.size() == stub_size);

  out.entry_offset =
      lead + static_cast<std::uint32_t>(build.item_offsets[build.entry_item]);
  auto item_len = [&](std::size_t item) {
    const std::size_t end = item + 1 < build.item_offsets.size()
                                ? build.item_offsets[item + 1]
                                : build.bytes.size();
    return end - build.item_offsets[item];
  };
  if (lead > 0) out.free_ranges.emplace_back(0, lead);
  for (std::size_t gi : build.gap_items)
    out.free_ranges.emplace_back(
        lead + static_cast<std::uint32_t>(build.item_offsets[gi]),
        static_cast<std::uint32_t>(item_len(gi)));

  // Final section bytes: lead filler || stub(+gaps) || keys.
  std::size_t lead_cursor = 0;
  out.data = cyclic_take(filler, lead, &lead_cursor);
  out.data.insert(out.data.end(), build.bytes.begin(), build.bytes.end());
  for (std::size_t r = 0; r < regions.size(); ++r) {
    out.key_offsets.push_back(lead + static_cast<std::uint32_t>(stub_size) +
                              key_rel[r]);
    out.data.insert(out.data.end(), keys[r].begin(), keys[r].end());
  }
  return out;
}

}  // namespace mpass::core
