// MPass: the full hard-label black-box attack (paper §III).
//
// Workflow per sample (Fig. 1): modify with an initial perturbation from a
// randomly selected benign program + recovery module; query the target;
// on failure, optimize the perturbation on the known-model ensemble and
// re-query; re-initialize with a fresh donor if a donor stalls; stop at
// success or query exhaustion. Every AE is function-preserving by
// construction (runtime recovery + key co-updates).
#pragma once

#include "core/optimizer.hpp"
#include "detectors/detector.hpp"

namespace mpass::core {

struct MpassConfig {
  ModificationConfig modification;
  int opt_steps_per_query = 2;   // ensemble steps between target queries
  int queries_per_donor = 8;     // re-roll the donor after this many misses
  // Only spend a query once the ensemble consensus is at most this
  // confident (or the extra-step budget is exhausted) -- queries are the
  // scarce resource, local optimization is free.
  float query_gate_score = 0.35f;
  int max_gate_steps = 6;
  bool optimize = true;          // false: initial perturbation only
  bool random_content = false;   // Table VI ablation: random bytes at I
};

struct MpassResult {
  bool success = false;
  util::ByteBuf adversarial;   // best-effort sample even on failure
  std::size_t queries = 0;     // consumed from the oracle by this run
  double apr = 0.0;
};

class Mpass {
 public:
  /// benign_pool: attacker-harvested benign programs (donors).
  /// known: differentiable known models (empty => no optimization).
  Mpass(MpassConfig cfg, std::span<const util::ByteBuf> benign_pool,
        std::vector<ml::ByteConvNet*> known);

  /// Attacks one malware sample through the hard-label oracle.
  MpassResult run(std::span<const std::uint8_t> malware,
                  detect::HardLabelOracle& oracle, std::uint64_t seed) const;

  const MpassConfig& config() const { return cfg_; }

  /// Attacker assets, exposed so adapters can deep-copy an attack
  /// (MpassAttack::clone re-clones the known models from these).
  std::span<const util::ByteBuf> pool() const { return pool_; }
  std::span<ml::ByteConvNet* const> known() const { return known_; }

 private:
  static MpassResult& finish(MpassResult& result,
                             const detect::HardLabelOracle& oracle,
                             std::size_t start_queries);

  MpassConfig cfg_;
  std::vector<util::ByteBuf> pool_;
  std::vector<ml::ByteConvNet*> known_;
};

}  // namespace mpass::core
