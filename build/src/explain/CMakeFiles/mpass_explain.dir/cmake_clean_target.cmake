file(REMOVE_RECURSE
  "libmpass_explain.a"
)
