// Concrete detector implementations: the four offline models of §IV-A.
//
//   MalConv  -> ByteConvDetector (gated conv byte net)
//   NonNeg   -> ByteConvDetector with non-negative dense weights
//   MalGCG   -> ByteConvDetector with global channel gating
//   LightGBM -> GbdtDetector over EMBER-style features
#pragma once

#include <memory>

#include "detectors/detector.hpp"
#include "detectors/features.hpp"
#include "ml/byteconv.hpp"
#include "ml/gbdt.hpp"

namespace mpass::detect {

/// Byte-level neural detector. The underlying net is exposed because MPass's
/// optimization uses *known* models' gradients (white-box surrogates),
/// while targets are only ever queried through HardLabelOracle.
class ByteConvDetector : public Detector {
 public:
  ByteConvDetector(std::string name, const ml::ByteConvConfig& cfg,
                   std::uint64_t seed)
      : name_(std::move(name)), net_(cfg, seed) {}

  std::string_view name() const override { return name_; }

  double score(std::span<const std::uint8_t> bytes) const override {
    return net_.forward(bytes);
  }

  /// Deep copy (ByteConvNet's copy constructor gives the clone private
  /// parameters and forward caches).
  std::unique_ptr<Detector> clone() const override {
    return std::make_unique<ByteConvDetector>(*this);
  }

  ml::ByteConvNet& net() const { return net_; }

  void save(util::Archive& ar) const;
  void load(util::Unarchive& ar);

 private:
  std::string name_;
  // forward() caches activations; scoring is logically const.
  mutable ml::ByteConvNet net_;
};

/// Feature-space GBDT detector (the "LightGBM"/EMBER model). With
/// vendor_features enabled it additionally consumes the commercial-AV
/// heuristic block (entry-point placement etc., see features.hpp).
class GbdtDetector : public Detector {
 public:
  GbdtDetector(std::string name, const ml::GbdtConfig& cfg,
               bool vendor_features = false)
      : name_(std::move(name)), gbdt_(cfg), vendor_(vendor_features) {}

  std::string_view name() const override { return name_; }

  double score(std::span<const std::uint8_t> bytes) const override {
    const std::vector<float> f = features(bytes);
    return gbdt_.predict(f);
  }

  std::unique_ptr<Detector> clone() const override {
    return std::make_unique<GbdtDetector>(*this);
  }

  /// The feature extraction this detector was configured with.
  std::vector<float> features(std::span<const std::uint8_t> bytes) const {
    return vendor_ ? extract_vendor_features(bytes) : extract_features(bytes);
  }

  bool vendor_features() const { return vendor_; }
  ml::Gbdt& gbdt() { return gbdt_; }
  const ml::Gbdt& gbdt() const { return gbdt_; }

  void save(util::Archive& ar) const;
  void load(util::Unarchive& ar);

 private:
  std::string name_;
  ml::Gbdt gbdt_;
  bool vendor_ = false;
};

/// Standard architectures for the four offline detectors.
ml::ByteConvConfig malconv_config();
ml::ByteConvConfig nonneg_config();
ml::ByteConvConfig malgcg_config();
ml::GbdtConfig lightgbm_config();

}  // namespace mpass::detect
