file(REMOVE_RECURSE
  "libmpass_corpus.a"
)
