// Detector interface: every ML-based static malware detector in this
// repository scores raw PE file bytes. Attacks only ever see detectors
// through HardLabelOracle -- the paper's hard-label black-box query model
// (benign/malicious verdict only, with a query counter).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "obs/trace.hpp"
#include "util/bytes.hpp"

namespace mpass::detect {

class Detector {
 public:
  virtual ~Detector() = default;

  virtual std::string_view name() const = 0;

  /// Maliciousness score in [0, 1] on raw file bytes. Must never throw on
  /// malformed files (adversarial inputs are the norm).
  virtual double score(std::span<const std::uint8_t> bytes) const = 0;

  /// Deep copy carrying the trained state *and* the threshold. Concurrent
  /// attack tasks each query a private clone, so detectors whose score()
  /// mutates internal forward caches never race. Returning nullptr marks
  /// the detector non-clonable; the harness then falls back to running its
  /// samples sequentially against the shared instance.
  virtual std::unique_ptr<Detector> clone() const { return nullptr; }

  double threshold() const { return threshold_; }
  void set_threshold(double t) { threshold_ = t; }

  /// Hard-label verdict.
  bool is_malicious(std::span<const std::uint8_t> bytes) const {
    return score(bytes) >= threshold_;
  }

 private:
  double threshold_ = 0.5;
};

/// Black-box query interface with a query budget/counter, shared by all
/// attacks so AVQ is measured identically (paper §IV, "AVQ" metric).
class HardLabelOracle {
 public:
  explicit HardLabelOracle(const Detector& detector,
                           std::size_t max_queries = 100)
      : detector_(detector), max_queries_(max_queries) {}

  /// Hard-label query; increments the counter.
  /// Returns true if the detector flags the sample as malicious.
  /// Inside an obs::TraceScope, each query emits a trace event carrying the
  /// verdict and the underlying score -- the score is observability only
  /// and is never returned to the attack (the threat model stays
  /// hard-label).
  bool query(std::span<const std::uint8_t> bytes) {
    ++queries_;
    const double s = detector_.score(bytes);
    const bool malicious = s >= detector_.threshold();
    if (obs::tracing())
      obs::Event("query")
          .uint("i", queries_)
          .boolean("malicious", malicious)
          .num("score", s);
    return malicious;
  }

  std::size_t queries() const { return queries_; }
  std::size_t max_queries() const { return max_queries_; }
  bool exhausted() const { return queries_ >= max_queries_; }
  std::string_view target_name() const { return detector_.name(); }

 private:
  const Detector& detector_;
  std::size_t queries_ = 0;
  std::size_t max_queries_;
};

}  // namespace mpass::detect
