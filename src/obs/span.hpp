// Hierarchical span profiler layered on the metrics registry.
//
// Every OBS_SCOPE site is a *span*: a node in the calling thread's call-path
// tree. Where the flat "time.<scope>" histograms answer "how long does
// pe.parse take?", spans answer "how much of harness.run_cell's time is
// pe.parse, and how much is its own?" -- total time and self time are
// accumulated per *call path* (e.g. "harness.run_cell/pool.task/
// attack.mpass.run/pe.parse"), not per site.
//
// Design (mirrors obs::Metrics):
//   * Sites and call paths are interned once under a core mutex; the hot
//     path caches (parent path, site) -> path in a thread-local map, so a
//     warm push/pop is a couple of clock reads plus relaxed atomic adds on
//     slots only the calling thread writes.
//   * Each path owns three shard slots: count, total_ns, and child_ns (the
//     summed totals of its direct child frames). Self time is derived at
//     merge time as total - child, which keeps the accounting exact by
//     construction: merged self + merged child == merged total, and for
//     non-recursive trees child_ns equals the sum of the children's totals.
//   * Direct recursion collapses onto the parent path (a site nested under
//     itself reuses the parent's node), so recursive scopes cannot grow the
//     path table without bound.
//   * span_snapshot() merges all live shards plus the totals retired by
//     exited threads; the merged view depends only on the spans completed,
//     never on which thread ran them. Open (un-popped) spans are invisible
//     to snapshots until they close -- a drained process has no orphans.
//
// Cross-thread propagation: util::ThreadPool captures a SpanHandoff at
// submit() and opens a SpanTaskScope ("pool.task" span, parented under the
// *submitting* call path) around the task body, so a worker executing a
// stolen task records under the span that submitted it. With profiling on,
// the handoff also carries a flow id linking submit to execution with a
// Chrome flow arrow.
//
// Profiling sink: MPASS_PROFILE=<file> records one Chrome trace-event
// "complete" event per span pop (plus flow arrows and thread names) and
// writes Perfetto-loadable JSON at flush_profile() / process exit. With the
// variable unset, no events are recorded and the only cost over the old
// flat timers is the span-stack bookkeeping.
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"

namespace mpass::obs {

using SpanSiteId = std::uint32_t;

/// Interns a span site name and registers the matching flat "time.<name>"
/// histogram (the OBS_SCOPE macro caches the id in a function-local static).
SpanSiteId span_site(std::string_view name);

/// RAII span: pushes the site onto the calling thread's span stack; the
/// destructor pops it, accumulating (count, total, child) for the call path
/// and observing the flat "time.<name>" histogram.
class Span {
 public:
  explicit Span(SpanSiteId site) noexcept;
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
};

#define MPASS_OBS_CONCAT2(a, b) a##b
#define MPASS_OBS_CONCAT(a, b) MPASS_OBS_CONCAT2(a, b)

/// Times the enclosing scope as a hierarchical span (and into the flat
/// "time.<name>" histogram). One-time registration per call site.
#define OBS_SCOPE(name)                                              \
  static const ::mpass::obs::SpanSiteId MPASS_OBS_CONCAT(            \
      obs_scope_site_, __LINE__) = ::mpass::obs::span_site(name);    \
  const ::mpass::obs::Span MPASS_OBS_CONCAT(obs_scope_span_,         \
                                            __LINE__)(               \
      MPASS_OBS_CONCAT(obs_scope_site_, __LINE__))

// ---- snapshots --------------------------------------------------------------

/// Merged per-call-path statistics. self_ns() is exact by construction:
/// total_ns - child_ns, where child_ns sums the totals of direct child
/// frames (negative only for paths whose async children outlive them).
struct SpanRow {
  std::string path;  // site names joined with '/', e.g. "a/b/c"
  std::uint32_t depth = 0;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t child_ns = 0;
  std::int64_t self_ns() const {
    return static_cast<std::int64_t>(total_ns) -
           static_cast<std::int64_t>(child_ns);
  }
};

/// Deterministic merged view of every completed span, sorted by path.
std::vector<SpanRow> span_snapshot();

/// {"schema_version":1,"spans":[{"path","count","total_ms","self_ms",
/// "child_ms"},...]} -- the schema tools/mpass_prof and BENCH_*.json embed.
std::string spans_to_json(const std::vector<SpanRow>& rows);

// ---- cross-thread handoff (used by util::ThreadPool) ------------------------

/// Captured submitting context: the submitter's current call path and, when
/// profiling, a flow id for the Chrome flow arrow.
struct SpanHandoff {
  std::uint32_t path = 0;  // 0 = root (submitter was outside any span)
  std::uint64_t flow = 0;  // 0 = no flow event recorded
  bool engaged() const { return path != 0 || flow != 0; }
};

/// Captures the calling thread's handoff context and, when profiling,
/// records the flow-start event. Cheap no-op ({0,0}) when the caller is
/// outside any span and profiling is off.
SpanHandoff span_handoff_capture();

/// Opens a "pool.task" span parented under the handoff's path on the
/// executing thread (which may differ from the submitter), and records the
/// flow-finish event. Inactive for a disengaged handoff.
class SpanTaskScope {
 public:
  explicit SpanTaskScope(const SpanHandoff& h) noexcept;
  ~SpanTaskScope();
  SpanTaskScope(const SpanTaskScope&) = delete;
  SpanTaskScope& operator=(const SpanTaskScope&) = delete;

 private:
  bool active_ = false;
};

// ---- Chrome trace-event sink ------------------------------------------------

/// True iff span pops are being recorded as Chrome trace events.
bool profiling() noexcept;

/// Test/CLI override of the profile output file. nullopt disables
/// profiling; an empty path restores the MPASS_PROFILE environment value.
void set_profile_path(std::optional<std::filesystem::path> path);

/// Writes every event recorded so far as Chrome trace-event JSON to the
/// profile path (whole-file rewrite; safe to call more than once). Also
/// invoked at process exit once profiling was ever enabled. No-op when
/// profiling is off.
void flush_profile();

/// Names the calling thread in profile output ("pool-worker-3", ...).
void set_thread_name(std::string_view name);

}  // namespace mpass::obs
