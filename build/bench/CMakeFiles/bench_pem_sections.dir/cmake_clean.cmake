file(REMOVE_RECURSE
  "CMakeFiles/bench_pem_sections.dir/bench_pem_sections.cpp.o"
  "CMakeFiles/bench_pem_sections.dir/bench_pem_sections.cpp.o.d"
  "bench_pem_sections"
  "bench_pem_sections.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pem_sections.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
