#include "explain/pem.hpp"

#include <algorithm>
#include <map>

#include "obs/json.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"

namespace mpass::explain {

using util::ByteBuf;

PemResult run_pem(std::span<const ByteBuf> malware,
                  std::span<const detect::Detector* const> known_models,
                  const PemConfig& cfg) {
  OBS_SCOPE("pem.run");
  PemResult out;

  // Parse once; skip unparsable inputs.
  std::vector<pe::PeFile> files;
  files.reserve(malware.size());
  for (const ByteBuf& bytes : malware) {
    try {
      files.push_back(pe::PeFile::parse(bytes));
    } catch (const util::ParseError&) {
    }
  }
  if (files.empty() || known_models.empty()) return out;

  // S_all: the top-h most common section names across the corpus.
  std::map<std::string, std::size_t> name_count;
  for (const pe::PeFile& f : files)
    for (const std::string& p : section_players(f)) ++name_count[p];
  std::vector<std::pair<std::size_t, std::string>> ranked;
  for (const auto& [name, count] : name_count)
    ranked.emplace_back(count, name);
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    return a.first != b.first ? a.first > b.first : a.second < b.second;
  });
  for (const auto& [count, name] : ranked) {
    if (out.common_sections.size() >= cfg.top_h) break;
    out.common_sections.push_back(name);
  }
  const std::size_t n_common = out.common_sections.size();
  auto common_index = [&](const std::string& name) -> int {
    for (std::size_t i = 0; i < n_common; ++i)
      if (out.common_sections[i] == name) return static_cast<int>(i);
    return -1;
  };

  // Per model: average Shapley value per common section (Algorithm 1).
  for (const detect::Detector* model : known_models) {
    out.model_names.emplace_back(model->name());
    std::vector<double> sum(n_common, 0.0);

    ShapleyOptions sopts = cfg.shapley;
    for (const pe::PeFile& file : files) {
      OBS_SCOPE("pem.shapley");
      ++sopts.seed;  // decorrelate MC sampling across samples
      const auto players = section_players(file);
      const std::vector<double> phi = shapley_values(
          file,
          [model](std::span<const std::uint8_t> b) { return model->score(b); },
          sopts);
      for (std::size_t p = 0; p < players.size(); ++p) {
        const int ci = common_index(players[p]);
        if (ci >= 0) sum[static_cast<std::size_t>(ci)] += phi[p];
        // Sections outside S_all are ignored; samples lacking a section
        // contribute phi = 0 for it, which the sum already encodes.
      }
    }
    for (double& s : sum) s /= static_cast<double>(files.size());
    out.avg_shapley.push_back(std::move(sum));
  }

  // Rank per model, take top-k, intersect.
  std::vector<std::vector<std::string>> topk_sets;
  for (const std::vector<double>& avg : out.avg_shapley) {
    std::vector<std::size_t> idx(n_common);
    for (std::size_t i = 0; i < n_common; ++i) idx[i] = i;
    std::sort(idx.begin(), idx.end(),
              [&](std::size_t a, std::size_t b) { return avg[a] > avg[b]; });
    std::vector<std::string> topk;
    for (std::size_t i = 0; i < std::min(cfg.top_k, n_common); ++i)
      topk.push_back(out.common_sections[idx[i]]);
    out.per_model_topk.push_back(topk);
    topk_sets.push_back(std::move(topk));

    // Ratio statistic: mean of top-2 values over the 3rd value.
    if (n_common >= 3) {
      const double top12 = 0.5 * (avg[idx[0]] + avg[idx[1]]);
      const double top3 = avg[idx[2]];
      out.top2_over_top3.push_back(top3 > 1e-9 ? top12 / top3 : 0.0);
    }
  }

  // Intersection preserving first model's order.
  if (!topk_sets.empty()) {
    for (const std::string& s : topk_sets[0]) {
      bool in_all = true;
      for (std::size_t m = 1; m < topk_sets.size(); ++m)
        if (std::find(topk_sets[m].begin(), topk_sets[m].end(), s) ==
            topk_sets[m].end())
          in_all = false;
      if (in_all) out.critical.push_back(s);
    }
  }

  // When MPASS_TRACE is on, publish each model's section ranking so the
  // trace inspector can show *why* the attack targets the sections it does.
  if (obs::trace_dir()) {
    for (std::size_t m = 0; m < out.model_names.size(); ++m) {
      obs::JsonLine line;
      line.str("ev", "pem").str("model", out.model_names[m]);
      line.strs("ranking", out.per_model_topk[m]);
      if (m < out.top2_over_top3.size())
        line.num("top2_over_top3", out.top2_over_top3[m]);
      obs::append_run_line("pem.jsonl", line.take());
    }
  }
  return out;
}

}  // namespace mpass::explain
