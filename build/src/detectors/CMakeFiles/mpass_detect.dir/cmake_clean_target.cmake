file(REMOVE_RECURSE
  "libmpass_detect.a"
)
