# Empty dependencies file for mpass_ml.
# This may be replaced when dependencies are built.
