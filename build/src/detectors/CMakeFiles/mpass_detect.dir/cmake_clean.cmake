file(REMOVE_RECURSE
  "CMakeFiles/mpass_detect.dir/advtrain.cpp.o"
  "CMakeFiles/mpass_detect.dir/advtrain.cpp.o.d"
  "CMakeFiles/mpass_detect.dir/avsim.cpp.o"
  "CMakeFiles/mpass_detect.dir/avsim.cpp.o.d"
  "CMakeFiles/mpass_detect.dir/features.cpp.o"
  "CMakeFiles/mpass_detect.dir/features.cpp.o.d"
  "CMakeFiles/mpass_detect.dir/models.cpp.o"
  "CMakeFiles/mpass_detect.dir/models.cpp.o.d"
  "CMakeFiles/mpass_detect.dir/training.cpp.o"
  "CMakeFiles/mpass_detect.dir/training.cpp.o.d"
  "CMakeFiles/mpass_detect.dir/zoo.cpp.o"
  "CMakeFiles/mpass_detect.dir/zoo.cpp.o.d"
  "libmpass_detect.a"
  "libmpass_detect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpass_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
