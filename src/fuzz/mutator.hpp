// Structure-aware PE32 mutators for the correctness fuzzer.
//
// Unlike blind byte flipping, these mutators know where the interesting
// fields of a PE file live (e_lfanew, COFF counts, optional-header
// alignments, section-table entries, the overlay) and hit them with
// boundary values that historically break parsers: 32-bit wrap pairs
// (raw_ptr + raw_size overflowing uint32), sizes straddling the file end,
// zero/non-power-of-two alignments, unaligned raw sizes in front of an
// overlay, duplicated section headers, truncations at structural edges.
//
// All mutators are deterministic given the Rng and never read outside the
// buffer they mutate, so any fuzz finding is reproducible from (seed, iter).
#pragma once

#include <span>
#include <string_view>
#include <vector>

#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace mpass::fuzz {

/// Offsets of the structural fields of a PE32 buffer, recovered tolerantly:
/// valid is false when the buffer is too small or not MZ/PE-shaped, in which
/// case structure-aware mutators degrade to generic byte mutations.
struct PeFieldMap {
  bool valid = false;
  std::uint32_t lfanew = 0;   // value of e_lfanew
  std::size_t coff_off = 0;   // file offset of the COFF header
  std::size_t opt_off = 0;    // file offset of the optional header
  std::size_t table_off = 0;  // file offset of the section table
  std::uint16_t nsections = 0;

  std::size_t section_header(std::size_t i) const {
    return table_off + i * 40;
  }
  /// Number of section headers that actually fit inside `size` bytes.
  std::size_t sections_in(std::size_t size) const;
};

/// Maps the structural offsets of bytes (never throws).
PeFieldMap map_pe_fields(std::span<const std::uint8_t> bytes);

/// One named mutation strategy. apply() mutates in place; it must accept any
/// buffer (including empty / non-PE) without reading out of bounds.
struct Mutator {
  std::string_view name;
  void (*apply)(util::ByteBuf& bytes, const PeFieldMap& map, util::Rng& rng);
};

/// The full mutator catalogue (stable order; names are stable identifiers
/// used in fuzz reports and docs/FUZZING.md).
std::span<const Mutator> mutator_catalogue();

/// Applies `rounds` randomly chosen catalogue mutators in place and returns
/// the names applied, in order.
std::vector<std::string_view> mutate(util::ByteBuf& bytes, util::Rng& rng,
                                     std::size_t rounds);

}  // namespace mpass::fuzz
