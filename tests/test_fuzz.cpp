// Robustness properties: no component may crash, hang, or corrupt state on
// adversarial input -- attacks feed these code paths mutated files
// constantly. Parameterized sweeps over seeds act as a deterministic fuzzer.
#include <gtest/gtest.h>

#include <cmath>

#include "corpus/generator.hpp"
#include "detectors/features.hpp"
#include "isa/isa.hpp"
#include "pe/import.hpp"
#include "pe/pe.hpp"
#include "util/compress.hpp"
#include "util/rng.hpp"
#include "vm/sandbox.hpp"

namespace mpass {
namespace {

using util::ByteBuf;

class FuzzSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSweep, PeParserNeverCrashesOnMutatedFiles) {
  util::Rng rng(GetParam());
  ByteBuf bytes = corpus::make_malware(GetParam()).bytes();
  // Flip a burst of random bytes, occasionally truncate/extend.
  for (int round = 0; round < 20; ++round) {
    ByteBuf mutated = bytes;
    const int flips = static_cast<int>(rng.range(1, 64));
    for (int i = 0; i < flips; ++i)
      mutated[rng.below(mutated.size())] = rng.byte();
    if (rng.chance(0.2)) mutated.resize(rng.below(mutated.size()) + 1);
    if (rng.chance(0.2)) {
      const ByteBuf extra = rng.bytes(rng.below(2048));
      mutated.insert(mutated.end(), extra.begin(), extra.end());
    }
    try {
      const pe::PeFile f = pe::PeFile::parse(mutated);
      (void)f.build();            // rebuild must not crash either
      (void)pe::read_imports(f);  // tolerant import reading
    } catch (const util::ParseError&) {
      // rejection is fine; crashing is not
    }
  }
}

TEST_P(FuzzSweep, EmulatorNeverCrashesOnMutatedCode) {
  util::Rng rng(GetParam() ^ 0xF22);
  const corpus::CompiledSample s = corpus::make_malware(GetParam());
  ByteBuf bytes = s.bytes();
  const vm::Sandbox sandbox(/*fuel=*/200'000);
  for (int round = 0; round < 10; ++round) {
    ByteBuf mutated = bytes;
    for (int i = 0; i < 48; ++i)
      mutated[rng.below(mutated.size())] = rng.byte();
    // Must terminate (halt, fault, or fuel) without crashing the host.
    const vm::SandboxReport r = sandbox.analyze(mutated);
    (void)r;
  }
}

TEST_P(FuzzSweep, EmulatorSurvivesPureRandomCodeSections) {
  util::Rng rng(GetParam() ^ 0xC0DE);
  pe::PeFile f;
  f.add_section(".text", rng.bytes(2048),
                pe::kScnCode | pe::kScnMemRead | pe::kScnMemExecute);
  f.add_section(".data", rng.bytes(1024),
                pe::kScnInitializedData | pe::kScnMemRead | pe::kScnMemWrite);
  f.entry_point = f.sections[0].vaddr + static_cast<std::uint32_t>(
      rng.below(2048));
  const vm::Sandbox sandbox(/*fuel=*/100'000);
  const vm::SandboxReport r = sandbox.analyze(f.build());
  EXPECT_TRUE(r.parsed);
  // Random code usually faults quickly; it must never hang past the fuel.
  EXPECT_LE(r.run.steps, 100'000u);
}

TEST_P(FuzzSweep, FeatureExtractorTotalOnMutations) {
  util::Rng rng(GetParam() ^ 0xFEA7);
  ByteBuf bytes = corpus::make_benign(GetParam()).bytes();
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 32; ++i)
      bytes[rng.below(bytes.size())] = rng.byte();
    for (float v : detect::extract_features(bytes))
      ASSERT_TRUE(std::isfinite(v));
    for (float v : detect::extract_vendor_features(bytes))
      ASSERT_TRUE(std::isfinite(v));
  }
}

TEST_P(FuzzSweep, LzssDecompressorTotalOnGarbage) {
  util::Rng rng(GetParam() ^ 0x1255);
  for (int round = 0; round < 30; ++round) {
    ByteBuf garbage = rng.bytes(rng.below(512) + 16);
    // Valid magic with garbage body must not crash or over-allocate wildly.
    util::write_le<std::uint32_t>(garbage.data(), 0x315A4C4Du);
    util::write_le<std::uint32_t>(garbage.data() + 4,
                                  static_cast<std::uint32_t>(rng.below(1 << 16)));
    try {
      (void)util::lzss_decompress(garbage);
    } catch (const util::ParseError&) {
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSweep,
                         ::testing::Range<std::uint64_t>(4200, 4212));

TEST(Fuzz, DisassemblerTotalOnRandomBytes) {
  util::Rng rng(77);
  for (int round = 0; round < 50; ++round) {
    const ByteBuf code = rng.bytes(256);
    try {
      (void)isa::disassemble(code);
    } catch (const util::ParseError&) {
    }
    (void)isa::branches_well_formed(code);
  }
}

}  // namespace
}  // namespace mpass
