// Per-syscall semantic tests for the emulator's victim environment.
#include <gtest/gtest.h>

#include "isa/isa.hpp"
#include "pe/pe.hpp"
#include "util/hashing.hpp"
#include "vm/machine.hpp"

namespace mpass::vm {
namespace {

using isa::Assembler;
using isa::Reg;
using util::ByteBuf;

constexpr std::uint32_t kData = 0x00402000;

ByteBuf make_exe(Assembler& a, std::size_t data_size = 1024) {
  pe::PeFile f;
  const ByteBuf code = a.finish(f.image_base + 0x1000);
  f.add_section(".text", code,
                pe::kScnCode | pe::kScnMemRead | pe::kScnMemExecute);
  f.add_section(".data", ByteBuf(data_size, 0),
                pe::kScnInitializedData | pe::kScnMemRead | pe::kScnMemWrite);
  f.entry_point = 0x1000;
  return f.build();
}

void call(Assembler& a, Api api) { a.sys(static_cast<std::uint16_t>(api)); }

TEST(VmApi, FileReadWriteRoundTripWithCursor) {
  Assembler a;
  // open "X" -> write "abcd" twice -> close; reopen -> read 8 -> print.
  a.movi(Reg::r4, kData + 512);  // name buffer
  a.movi(Reg::r5, 'X');
  a.storeb(Reg::r4, Reg::r5);
  a.movi(Reg::r0, kData + 512);
  a.movi(Reg::r1, 1);
  call(a, Api::OpenFile);
  a.movr(Reg::r6, Reg::r0);
  // payload "abcd" at kData
  a.movi(Reg::r4, kData);
  for (int i = 0; i < 4; ++i) {
    a.movi(Reg::r5, static_cast<std::uint32_t>('a' + i));
    a.storeb(Reg::r4, Reg::r5);
    a.addi(Reg::r4, 1);
  }
  for (int rep = 0; rep < 2; ++rep) {
    a.movr(Reg::r0, Reg::r6);
    a.movi(Reg::r1, kData);
    a.movi(Reg::r2, 4);
    call(a, Api::WriteFile);
  }
  a.movr(Reg::r0, Reg::r6);
  call(a, Api::CloseFile);
  // Reopen: fresh cursor at 0.
  a.movi(Reg::r0, kData + 512);
  a.movi(Reg::r1, 1);
  call(a, Api::OpenFile);
  a.movr(Reg::r6, Reg::r0);
  a.movr(Reg::r0, Reg::r6);
  a.movi(Reg::r1, kData + 16);
  a.movi(Reg::r2, 8);
  call(a, Api::ReadFile);
  a.movi(Reg::r0, kData + 16);
  a.movi(Reg::r1, 8);
  call(a, Api::Print);
  a.halt();

  Machine m(make_exe(a));
  const RunResult r = m.run();
  ASSERT_TRUE(r.ok()) << r.fault_reason;
  // Print digest of "abcdabcd".
  EXPECT_EQ(r.trace.back().digest, util::fnv1a64(std::string_view("abcdabcd")));
}

TEST(VmApi, RecvIsDeterministicPerSocket) {
  auto run_once = [] {
    Assembler a;
    a.movi(Reg::r0, 0x42);
    a.movi(Reg::r1, 80);
    call(a, Api::Connect);
    a.movr(Reg::r4, Reg::r0);
    a.movr(Reg::r0, Reg::r4);
    a.movi(Reg::r1, kData);
    a.movi(Reg::r2, 32);
    call(a, Api::Recv);
    a.movi(Reg::r0, kData);
    a.movi(Reg::r1, 32);
    call(a, Api::Print);
    a.halt();
    Machine m(make_exe(a));
    return m.run();
  };
  const RunResult r1 = run_once();
  const RunResult r2 = run_once();
  ASSERT_TRUE(r1.ok());
  EXPECT_TRUE(traces_equal(r1.trace, r2.trace));
}

TEST(VmApi, GetEnvWritesEnvironmentString) {
  Assembler a;
  a.movi(Reg::r0, kData);
  a.movi(Reg::r1, 11);
  call(a, Api::GetEnv);
  a.movi(Reg::r0, kData);
  a.movi(Reg::r1, 11);
  call(a, Api::Print);
  a.halt();
  Machine m(make_exe(a));
  const RunResult r = m.run();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.trace[0].digest, util::fnv1a64(std::string_view("USER=victim")));
}

TEST(VmApi, ChecksumMatchesHostCrc32) {
  Assembler a;
  // Store "1234" and checksum it.
  a.movi(Reg::r4, kData);
  for (char c : {'1', '2', '3', '4'}) {
    a.movi(Reg::r5, static_cast<std::uint32_t>(c));
    a.storeb(Reg::r4, Reg::r5);
    a.addi(Reg::r4, 1);
  }
  a.movi(Reg::r0, kData);
  a.movi(Reg::r1, 4);
  call(a, Api::Checksum);
  call(a, Api::ExitProcess);  // exit code = crc32
  Machine m(make_exe(a));
  const RunResult r = m.run();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.trace.back().digest,
            util::crc32(util::as_bytes("1234")));
}

TEST(VmApi, SleepAdvancesClock) {
  Assembler a;
  call(a, Api::GetTime);
  a.movr(Reg::r4, Reg::r0);
  a.movi(Reg::r0, 500);
  call(a, Api::Sleep);
  call(a, Api::GetTime);
  a.sub(Reg::r0, Reg::r4);  // elapsed
  call(a, Api::ExitProcess);
  Machine m(make_exe(a));
  const RunResult r = m.run();
  ASSERT_TRUE(r.ok());
  EXPECT_GE(r.trace.back().digest, 500u);
}

TEST(VmApi, AllocReturnsDisjointWritableBlocks) {
  Assembler a;
  a.movi(Reg::r0, 64);
  call(a, Api::Alloc);
  a.movr(Reg::r4, Reg::r0);
  a.movi(Reg::r0, 64);
  call(a, Api::Alloc);
  a.movr(Reg::r5, Reg::r0);
  // Write to both blocks; print their distance as the exit code.
  a.movi(Reg::r6, 0xAB);
  a.storeb(Reg::r4, Reg::r6);
  a.storeb(Reg::r5, Reg::r6);
  a.movr(Reg::r0, Reg::r5);
  a.sub(Reg::r0, Reg::r4);
  call(a, Api::ExitProcess);
  Machine m(make_exe(a));
  const RunResult r = m.run();
  ASSERT_TRUE(r.ok()) << r.fault_reason;
  EXPECT_GE(r.trace.back().digest, 64u);
}

TEST(VmApi, ScreenshotAndKeylogProduceBoundedData) {
  Assembler a;
  a.movi(Reg::r0, kData);
  a.movi(Reg::r1, 32);
  call(a, Api::Screenshot);
  call(a, Api::KeylogStart);
  a.movi(Reg::r0, kData + 64);
  a.movi(Reg::r1, 8);
  call(a, Api::KeylogDump);
  call(a, Api::ExitProcess);  // r0 = keylog length (<= 8)
  Machine m(make_exe(a));
  const RunResult r = m.run();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.sensitive_calls(), 3u);
  EXPECT_LE(r.trace.back().digest, 8u);
}

TEST(VmApi, StealCredsReadsVictimPasswordFile) {
  Assembler a;
  a.movi(Reg::r0, kData);
  a.movi(Reg::r1, 7);
  call(a, Api::StealCreds);
  a.movi(Reg::r0, kData);
  a.movi(Reg::r1, 7);
  call(a, Api::Print);
  a.halt();
  Machine m(make_exe(a));
  const RunResult r = m.run();
  ASSERT_TRUE(r.ok());
  // The victim's password file starts with "hunter2".
  EXPECT_EQ(r.trace.back().digest, util::fnv1a64(std::string_view("hunter2")));
}

TEST(VmApi, EnumFilesTerminates) {
  Assembler a;
  const auto loop = a.make_label();
  const auto done = a.make_label();
  a.movi(Reg::r7, 0);  // count
  a.bind(loop);
  a.movi(Reg::r0, kData);
  a.movi(Reg::r1, 256);
  call(a, Api::EnumFiles);
  a.jz(Reg::r0, done);
  a.addi(Reg::r7, 1);
  a.jmp(loop);
  a.bind(done);
  a.movr(Reg::r0, Reg::r7);
  call(a, Api::ExitProcess);
  Machine m(make_exe(a));
  const RunResult r = m.run();
  ASSERT_TRUE(r.ok());
  // The seeded victim environment has exactly 5 user files.
  EXPECT_EQ(r.trace.back().digest, 5u);
}

TEST(VmApi, UnknownSyscallIsNoOp) {
  Assembler a;
  a.movi(Reg::r0, 77);
  a.sys(0x7ABC);  // undefined id
  call(a, Api::ExitProcess);  // r0 was zeroed by the unknown syscall
  Machine m(make_exe(a));
  const RunResult r = m.run();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.trace.back().digest, 0u);
}

TEST(VmApi, RegistryAndProcessEventsCarryArguments) {
  Assembler a;
  a.movi(Reg::r0, 0xBEEF);
  call(a, Api::RegDeleteKey);
  a.movi(Reg::r0, kData);
  a.movi(Reg::r1, 0);
  call(a, Api::CreateProc);
  a.halt();
  Machine m(make_exe(a));
  const RunResult r = m.run();
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.trace.size(), 2u);
  EXPECT_EQ(r.trace[0].digest, 0xBEEFu);
  EXPECT_EQ(r.trace[0].api, static_cast<std::uint16_t>(Api::RegDeleteKey));
}

}  // namespace
}  // namespace mpass::vm
