// Behavior-trace formatting and diffing: the human-readable layer over the
// sandbox's API traces (what an analyst reads when verifying AEs).
#pragma once

#include <string>

#include "vm/machine.hpp"

namespace mpass::vm {

/// One line per event: "  EncryptFile    digest=... [malicious]".
std::string format_trace(const Trace& trace);

/// Unified first-divergence diff of two traces. Empty string if identical.
/// Reports length mismatches and the first differing event with context.
std::string diff_traces(const Trace& before, const Trace& after);

/// Compact behavioral summary: "5 events, 3 sensitive, 2 malicious".
std::string summarize_trace(const Trace& trace);

}  // namespace mpass::vm
