// Deterministic structure-aware fuzzing driver.
//
// Every iteration is derived purely from (config.seed, iteration index):
// pick a seed-corpus input, apply 1..max_rounds catalogue mutators, run the
// differential oracle (oracle.hpp). A fixed cadence of iterations
// additionally fuzzes StubOptions knobs and runs the full
// modification + sandbox functionality-preservation oracle on a corpus
// sample. Violating inputs are ddmin-minimized and written to
// config.out_dir as crasher artifacts; a pending.bin breadcrumb is kept so
// hard crashes (sanitizer aborts) leave the offending input on disk.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "fuzz/oracle.hpp"
#include "util/bytes.hpp"

namespace mpass::fuzz {

struct FuzzConfig {
  std::uint64_t seed = 1;
  std::size_t iterations = 10000;
  std::size_t max_rounds = 4;     // mutation rounds per iteration
  // Every attack_every-th iteration runs the StubOptions + attack oracles
  // (they are ~100x slower than the structural checks). 0 disables them.
  std::size_t attack_every = 64;
  std::filesystem::path out_dir;  // empty: no artifacts written
  bool minimize = true;
  std::size_t max_input = 1u << 20;  // inputs are clamped to this size
};

struct Finding {
  std::size_t iteration = 0;
  Violation violation;
  std::vector<std::string> mutators;  // applied mutator names, in order
  util::ByteBuf input;                // the violating input
  util::ByteBuf minimized;            // ddmin-reduced (== input if disabled)
  std::filesystem::path artifact;     // where it was saved ("" if not)
};

struct FuzzStats {
  std::size_t iterations = 0;
  std::size_t parse_ok = 0;       // inputs the parser accepted
  std::size_t parse_rejected = 0; // clean ParseError rejections
  std::size_t stub_checks = 0;
  std::size_t attack_checks = 0;
  std::size_t incremental_checks = 0;  // ByteConvNet differential runs
  std::vector<Finding> findings;

  bool clean() const { return findings.empty(); }
};

class Fuzzer {
 public:
  explicit Fuzzer(FuzzConfig config);

  /// Runs the configured number of iterations. Deterministic: same config
  /// => same stats (including finding order and minimized bytes).
  FuzzStats run();

  /// Rebuilds the exact mutated input of one iteration (for reproducing a
  /// crash whose iteration index is known, e.g. from the pending breadcrumb
  /// or CI logs).
  util::ByteBuf input_for_iteration(std::size_t iter,
                                    std::vector<std::string>* mutators =
                                        nullptr) const;

  /// The deterministic seed corpus: corpus-generated malware/benign
  /// samples, a modified (attacked) sample, and handcrafted structural edge
  /// cases (bss-only, section-less, unaligned-raw-size, import-bearing).
  static std::vector<util::ByteBuf> seed_corpus(std::uint64_t seed);

  /// Greedy ddmin-style reduction: drops, then zeroes, chunks while the
  /// input still violates any invariant. Bounded work; deterministic.
  static util::ByteBuf minimize_input(const util::ByteBuf& input,
                                      std::size_t max_evals = 2000);

 private:
  FuzzConfig cfg_;
  std::vector<util::ByteBuf> seeds_;
};

/// Parses a .knobs file (key=value lines: shuffle, chunk_items, min_gap,
/// max_gap, lead_filler) into StubOptions. Throws util::ParseError on
/// malformed text.
core::StubOptions parse_stub_knobs(std::string_view text);

/// Serializes StubOptions in the .knobs format.
std::string format_stub_knobs(const core::StubOptions& opts);

}  // namespace mpass::fuzz
