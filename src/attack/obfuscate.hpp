// Obfuscation "attacks": one-shot packing with UPX/PESpin/ASPack-like
// packers (Table IV). Packers are not query-driven -- a single pack, a
// single verdict -- which is exactly why the paper finds them weak against
// ML detectors.
#pragma once

#include "attack/attack.hpp"
#include "pack/packer.hpp"

namespace mpass::attack {

class ObfuscateAttack : public Attack {
 public:
  explicit ObfuscateAttack(pack::PackerKind kind) : kind_(kind) {}

  std::string_view name() const override { return pack::packer_name(kind_); }

  AttackResult run(std::span<const std::uint8_t> malware,
                   detect::HardLabelOracle& oracle,
                   std::uint64_t seed) override;

  std::unique_ptr<Attack> clone() const override {
    return std::make_unique<ObfuscateAttack>(*this);
  }

 private:
  pack::PackerKind kind_;
};

}  // namespace mpass::attack
