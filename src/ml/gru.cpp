#include "ml/gru.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

namespace mpass::ml {

namespace {
inline float sigmoidf(float x) { return 1.0f / (1.0f + std::exp(-x)); }

/// y += A (rows x cols, row-major) * x
void matvec_acc(std::span<const float> a, std::span<const float> x,
                std::span<float> y, int rows, int cols) {
  for (int i = 0; i < rows; ++i) {
    float s = 0.0f;
    const float* row = a.data() + static_cast<std::size_t>(i) * cols;
    for (int j = 0; j < cols; ++j) s += row[j] * x[static_cast<std::size_t>(j)];
    y[static_cast<std::size_t>(i)] += s;
  }
}

/// y += A^T * x  (A is rows x cols; x has rows elems; y has cols elems)
void matvec_t_acc(std::span<const float> a, std::span<const float> x,
                  std::span<float> y, int rows, int cols) {
  for (int i = 0; i < rows; ++i) {
    const float xi = x[static_cast<std::size_t>(i)];
    if (xi == 0.0f) continue;
    const float* row = a.data() + static_cast<std::size_t>(i) * cols;
    for (int j = 0; j < cols; ++j) y[static_cast<std::size_t>(j)] += xi * row[j];
  }
}

/// G += x_outer: G(rows x cols) += d (rows) * v (cols)^T
void outer_acc(std::span<float> g, std::span<const float> d,
               std::span<const float> v, int rows, int cols) {
  for (int i = 0; i < rows; ++i) {
    const float di = d[static_cast<std::size_t>(i)];
    if (di == 0.0f) continue;
    float* row = g.data() + static_cast<std::size_t>(i) * cols;
    for (int j = 0; j < cols; ++j) row[j] += di * v[static_cast<std::size_t>(j)];
  }
}
}  // namespace

struct GruLm::StepCache {
  int token = 0;
  std::vector<float> x, h_prev, z, r, n, un_h;
};

GruLm::GruLm(const GruLmConfig& cfg, std::uint64_t seed) : cfg_(cfg) {
  const int E = cfg_.embed, H = cfg_.hidden, V = cfg_.vocab;
  emb_ = &params_.create("emb", static_cast<std::size_t>(V) * E);
  wz_ = &params_.create("wz", static_cast<std::size_t>(H) * E);
  uz_ = &params_.create("uz", static_cast<std::size_t>(H) * H);
  bz_ = &params_.create("bz", H);
  wr_ = &params_.create("wr", static_cast<std::size_t>(H) * E);
  ur_ = &params_.create("ur", static_cast<std::size_t>(H) * H);
  br_ = &params_.create("br", H);
  wn_ = &params_.create("wn", static_cast<std::size_t>(H) * E);
  un_ = &params_.create("un", static_cast<std::size_t>(H) * H);
  bn_ = &params_.create("bn", H);
  wo_ = &params_.create("wo", static_cast<std::size_t>(V) * H);
  bo_ = &params_.create("bo", V);

  util::Rng rng(seed);
  auto init = [&](Param& p, float scale) {
    for (float& w : p.w) w = static_cast<float>(rng.gaussian(0.0, scale));
  };
  init(*emb_, 0.2f);
  const float se = 1.0f / std::sqrt(static_cast<float>(E));
  const float sh = 1.0f / std::sqrt(static_cast<float>(H));
  for (Param* p : {wz_, wr_, wn_}) init(*p, se);
  for (Param* p : {uz_, ur_, un_}) init(*p, sh);
  init(*wo_, sh);
  opt_ = std::make_unique<Adam>(params_, 2e-3f);
}

void GruLm::step(int token, std::vector<float>& h, StepCache* cache) const {
  const int E = cfg_.embed, H = cfg_.hidden;
  std::vector<float> x(emb_->w.begin() + static_cast<std::size_t>(token) * E,
                       emb_->w.begin() + static_cast<std::size_t>(token + 1) * E);
  std::vector<float> z(bz_->w.begin(), bz_->w.end());
  std::vector<float> r(br_->w.begin(), br_->w.end());
  std::vector<float> n(bn_->w.begin(), bn_->w.end());
  std::vector<float> un_h(static_cast<std::size_t>(H), 0.0f);

  matvec_acc(wz_->w, x, z, H, E);
  matvec_acc(uz_->w, h, z, H, H);
  matvec_acc(wr_->w, x, r, H, E);
  matvec_acc(ur_->w, h, r, H, H);
  matvec_acc(un_->w, h, un_h, H, H);
  for (int i = 0; i < H; ++i) {
    z[static_cast<std::size_t>(i)] = sigmoidf(z[static_cast<std::size_t>(i)]);
    r[static_cast<std::size_t>(i)] = sigmoidf(r[static_cast<std::size_t>(i)]);
  }
  matvec_acc(wn_->w, x, n, H, E);
  for (int i = 0; i < H; ++i)
    n[static_cast<std::size_t>(i)] += r[static_cast<std::size_t>(i)] *
                                      un_h[static_cast<std::size_t>(i)];
  for (int i = 0; i < H; ++i)
    n[static_cast<std::size_t>(i)] = std::tanh(n[static_cast<std::size_t>(i)]);

  if (cache) {
    cache->token = token;
    cache->x = x;
    cache->h_prev = h;
    cache->z = z;
    cache->r = r;
    cache->n = n;
    cache->un_h = un_h;
  }
  for (int i = 0; i < H; ++i) {
    const std::size_t k = static_cast<std::size_t>(i);
    h[k] = (1.0f - z[k]) * n[k] + z[k] * h[k];
  }
}

std::vector<float> GruLm::output_probs(const std::vector<float>& h) const {
  const int H = cfg_.hidden, V = cfg_.vocab;
  std::vector<float> logits(bo_->w.begin(), bo_->w.end());
  matvec_acc(wo_->w, h, logits, V, H);
  const float mx = *std::max_element(logits.begin(), logits.end());
  float sum = 0.0f;
  for (float& l : logits) {
    l = std::exp(l - mx);
    sum += l;
  }
  for (float& l : logits) l /= sum;
  return logits;
}

float GruLm::train_epoch(const std::vector<util::ByteBuf>& corpus,
                         std::size_t windows, float lr, util::Rng& rng) {
  opt_->set_lr(lr);
  const int E = cfg_.embed, H = cfg_.hidden, V = cfg_.vocab;
  const int kStart = cfg_.vocab - 1;
  double total_loss = 0.0;
  std::size_t total_steps = 0;

  for (std::size_t w = 0; w < windows; ++w) {
    const util::ByteBuf& stream = rng.pick(corpus);
    if (stream.empty()) continue;
    const std::size_t len =
        std::min<std::size_t>(static_cast<std::size_t>(cfg_.bptt),
                              stream.size());
    const std::size_t start =
        stream.size() > len ? rng.below(stream.size() - len + 1) : 0;

    // Forward with caches.
    std::vector<StepCache> caches(len);
    std::vector<std::vector<float>> probs(len);
    std::vector<std::vector<float>> hs(len + 1);
    hs[0].assign(static_cast<std::size_t>(H), 0.0f);
    int prev_token = kStart;
    for (std::size_t t = 0; t < len; ++t) {
      hs[t + 1] = hs[t];
      step(prev_token, hs[t + 1], &caches[t]);
      probs[t] = output_probs(hs[t + 1]);
      const int target = stream[start + t];
      total_loss -= std::log(std::max(probs[t][static_cast<std::size_t>(target)],
                                      1e-9f));
      prev_token = target;
      ++total_steps;
    }

    // Backward through time.
    std::vector<float> dh(static_cast<std::size_t>(H), 0.0f);
    for (std::size_t t = len; t-- > 0;) {
      // Output head: dlogits = probs - onehot(target).
      std::vector<float> dlogits = probs[t];
      dlogits[stream[start + t]] -= 1.0f;
      outer_acc(wo_->g, dlogits, hs[t + 1], V, H);
      for (int i = 0; i < V; ++i)
        bo_->g[static_cast<std::size_t>(i)] += dlogits[static_cast<std::size_t>(i)];
      matvec_t_acc(wo_->w, dlogits, dh, V, H);

      // GRU cell backward.
      const StepCache& c = caches[t];
      std::vector<float> dz(static_cast<std::size_t>(H));
      std::vector<float> dn(static_cast<std::size_t>(H));
      std::vector<float> dh_prev(static_cast<std::size_t>(H), 0.0f);
      for (int i = 0; i < H; ++i) {
        const std::size_t k = static_cast<std::size_t>(i);
        dz[k] = dh[k] * (c.h_prev[k] - c.n[k]);
        dn[k] = dh[k] * (1.0f - c.z[k]);
        dh_prev[k] = dh[k] * c.z[k];
      }
      std::vector<float> da_n(static_cast<std::size_t>(H));
      std::vector<float> dr(static_cast<std::size_t>(H));
      std::vector<float> du_n(static_cast<std::size_t>(H));
      for (int i = 0; i < H; ++i) {
        const std::size_t k = static_cast<std::size_t>(i);
        da_n[k] = dn[k] * (1.0f - c.n[k] * c.n[k]);
        dr[k] = da_n[k] * c.un_h[k];
        du_n[k] = da_n[k] * c.r[k];
      }
      std::vector<float> da_z(static_cast<std::size_t>(H));
      std::vector<float> da_r(static_cast<std::size_t>(H));
      for (int i = 0; i < H; ++i) {
        const std::size_t k = static_cast<std::size_t>(i);
        da_z[k] = dz[k] * c.z[k] * (1.0f - c.z[k]);
        da_r[k] = dr[k] * c.r[k] * (1.0f - c.r[k]);
      }

      std::vector<float> dx(static_cast<std::size_t>(E), 0.0f);
      outer_acc(wz_->g, da_z, c.x, H, E);
      outer_acc(uz_->g, da_z, c.h_prev, H, H);
      outer_acc(wr_->g, da_r, c.x, H, E);
      outer_acc(ur_->g, da_r, c.h_prev, H, H);
      outer_acc(wn_->g, da_n, c.x, H, E);
      outer_acc(un_->g, du_n, c.h_prev, H, H);
      for (int i = 0; i < H; ++i) {
        const std::size_t k = static_cast<std::size_t>(i);
        bz_->g[k] += da_z[k];
        br_->g[k] += da_r[k];
        bn_->g[k] += da_n[k];
      }
      matvec_t_acc(wz_->w, da_z, dx, H, E);
      matvec_t_acc(wr_->w, da_r, dx, H, E);
      matvec_t_acc(wn_->w, da_n, dx, H, E);
      matvec_t_acc(uz_->w, da_z, dh_prev, H, H);
      matvec_t_acc(ur_->w, da_r, dh_prev, H, H);
      matvec_t_acc(un_->w, du_n, dh_prev, H, H);

      float* erow = emb_->g.data() + static_cast<std::size_t>(c.token) * E;
      for (int i = 0; i < E; ++i) erow[i] += dx[static_cast<std::size_t>(i)];

      dh = std::move(dh_prev);
    }
    opt_->step();
  }
  return total_steps ? static_cast<float>(total_loss / total_steps) : 0.0f;
}

util::ByteBuf GruLm::generate(std::size_t n, util::Rng& rng,
                              std::span<const std::uint8_t> context,
                              float temperature) {
  const int H = cfg_.hidden;
  const int kStart = cfg_.vocab - 1;
  std::vector<float> h(static_cast<std::size_t>(H), 0.0f);
  int prev = kStart;
  step(prev, h, nullptr);
  for (std::uint8_t b : context.subspan(
           context.size() > 64 ? context.size() - 64 : 0)) {
    prev = b;
    step(prev, h, nullptr);
  }
  util::ByteBuf out;
  out.reserve(n);
  const float inv_temp = 1.0f / std::max(temperature, 0.05f);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<float> p = output_probs(h);
    // Temperature re-shaping over the 256 byte values (exclude start token).
    std::vector<double> weights(256);
    for (int b = 0; b < 256; ++b)
      weights[static_cast<std::size_t>(b)] =
          std::pow(static_cast<double>(p[static_cast<std::size_t>(b)]),
                   static_cast<double>(inv_temp));
    const int next = static_cast<int>(rng.weighted(weights));
    out.push_back(static_cast<std::uint8_t>(next));
    step(next, h, nullptr);
  }
  return out;
}

float GruLm::evaluate(std::span<const std::uint8_t> bytes) {
  if (bytes.empty()) return 0.0f;
  const int H = cfg_.hidden;
  const int kStart = cfg_.vocab - 1;
  std::vector<float> h(static_cast<std::size_t>(H), 0.0f);
  int prev = kStart;
  double loss = 0.0;
  for (std::uint8_t b : bytes) {
    step(prev, h, nullptr);
    std::vector<float> p = output_probs(h);
    loss -= std::log(std::max(p[b], 1e-9f));
    prev = b;
  }
  return static_cast<float>(loss / static_cast<double>(bytes.size()));
}

void GruLm::save(util::Archive& ar) const {
  ar.tag("grulm");
  ar.u32(static_cast<std::uint32_t>(cfg_.embed));
  ar.u32(static_cast<std::uint32_t>(cfg_.hidden));
  ar.u32(static_cast<std::uint32_t>(cfg_.vocab));
  ar.u32(static_cast<std::uint32_t>(cfg_.bptt));
  params_.save(ar);
}

void GruLm::load(util::Unarchive& ar) {
  ar.tag("grulm");
  GruLmConfig cfg;
  cfg.embed = static_cast<int>(ar.u32());
  cfg.hidden = static_cast<int>(ar.u32());
  cfg.vocab = static_cast<int>(ar.u32());
  cfg.bptt = static_cast<int>(ar.u32());
  if (cfg.embed != cfg_.embed || cfg.hidden != cfg_.hidden ||
      cfg.vocab != cfg_.vocab)
    throw util::ParseError("grulm: config mismatch");
  params_.load(ar);
}

}  // namespace mpass::ml
