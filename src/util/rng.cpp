#include "util/rng.hpp"

#include <cassert>
#include <cmath>
#include <numbers>

namespace mpass::util {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // Avoid the (astronomically unlikely) all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  assert(bound > 0);
  // Lemire's nearly-divisionless unbiased bounded sampling.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    std::uint64_t t = -bound % bound;
    while (l < t) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) return static_cast<std::int64_t>((*this)());  // full range
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::uniform() {
  // 53-bit mantissa trick.
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

double Rng::gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::gaussian(double mean, double stddev) {
  return mean + stddev * gaussian();
}

bool Rng::chance(double p) { return uniform() < p; }

std::uint8_t Rng::byte() { return static_cast<std::uint8_t>((*this)() >> 56); }

void Rng::fill(std::span<std::uint8_t> out) {
  std::size_t i = 0;
  while (i + 8 <= out.size()) {
    std::uint64_t x = (*this)();
    for (int b = 0; b < 8; ++b) out[i++] = static_cast<std::uint8_t>(x >> (8 * b));
  }
  if (i < out.size()) {
    std::uint64_t x = (*this)();
    while (i < out.size()) {
      out[i++] = static_cast<std::uint8_t>(x);
      x >>= 8;
    }
  }
}

std::vector<std::uint8_t> Rng::bytes(std::size_t n) {
  std::vector<std::uint8_t> out(n);
  fill(out);
  return out;
}

std::size_t Rng::weighted(std::span<const double> weights) {
  double total = 0.0;
  for (double w : weights) total += (w > 0.0 ? w : 0.0);
  if (total <= 0.0) return static_cast<std::size_t>(below(weights.size()));
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (target < w) return i;
    target -= w;
  }
  return weights.size() - 1;
}

Rng Rng::fork() {
  // Two fresh outputs seed the child; decorrelated from future parent output.
  const std::uint64_t a = (*this)();
  const std::uint64_t b = (*this)();
  return Rng(a ^ rotl(b, 32));
}

}  // namespace mpass::util
