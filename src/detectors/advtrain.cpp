#include "detectors/advtrain.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace mpass::detect {

using util::ByteBuf;

namespace {

/// Crafts a gradient byte-level AE of `sample` against `net`: picks the
/// highest-|gradient| positions and flips each to the byte minimizing the
/// first-order benign-direction loss. No function preservation -- exactly
/// the uniform-perturbation AEs the paper says PGD-AT is limited to.
ByteBuf craft_pgd_ae(ml::ByteConvNet& net, const ByteBuf& sample,
                     double fraction, int steps, util::Rng& rng) {
  ByteBuf adv = sample;
  const std::size_t budget = std::max<std::size_t>(
      16, static_cast<std::size_t>(fraction *
                                   static_cast<double>(sample.size())));
  for (int step = 0; step < steps; ++step) {
    net.forward(adv);
    std::vector<float> grad;
    net.backward(/*target=*/0.0f, &grad, /*accumulate_params=*/false,
                 /*soft_pool_tau=*/0.5f);
    const int d = net.config().embed_dim;
    const std::size_t n =
        std::min<std::size_t>(net.consumed(), adv.size());
    // Rank positions by gradient magnitude.
    std::vector<std::pair<float, std::size_t>> ranked;
    ranked.reserve(n);
    for (std::size_t t = 0; t < n; ++t) {
      float mag = 0;
      for (int k = 0; k < d; ++k)
        mag += grad[t * d + k] * grad[t * d + k];
      ranked.emplace_back(mag, t);
    }
    const std::size_t take = std::min(budget / steps + 1, ranked.size());
    std::partial_sort(
        ranked.begin(), ranked.begin() + static_cast<std::ptrdiff_t>(take),
        ranked.end(), [](const auto& a, const auto& b) { return a.first > b.first; });
    for (std::size_t i = 0; i < take; ++i) {
      const std::size_t t = ranked[i].second;
      const float* g = grad.data() + t * d;
      int best = adv[t];
      float best_score = 0.0f;
      const auto cur = net.embedding_row(adv[t]);
      float cur_score = 0.0f;
      for (int k = 0; k < d; ++k) cur_score += g[k] * cur[k];
      best_score = cur_score;
      // Sample candidates (full 256 scan is overkill at training time).
      for (int c = 0; c < 32; ++c) {
        const int v = static_cast<int>(rng.below(256));
        const auto e = net.embedding_row(v);
        float s = 0.0f;
        for (int k = 0; k < d; ++k) s += g[k] * e[k];
        if (s < best_score) {
          best_score = s;
          best = v;
        }
      }
      adv[t] = static_cast<std::uint8_t>(best);
    }
  }
  return adv;
}

}  // namespace

float adversarial_train_pgd(ByteConvDetector& detector,
                            const corpus::Dataset& train,
                            const AdvTrainConfig& cfg) {
  ml::ByteConvNet& net = detector.net();
  ml::Adam opt(net.params(), cfg.lr);
  util::Rng rng(cfg.seed);
  std::vector<std::size_t> order(train.samples.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  float last_loss = 0.0f;
  for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
    rng.shuffle(order);
    double loss = 0.0;
    std::size_t count = 0;
    int in_batch = 0;
    // Warm-up epoch on clean data first: crafting AEs against an untrained
    // net is pure label noise.
    const bool craft = epoch > 0;
    for (std::size_t idx : order) {
      const corpus::Sample& s = train.samples[idx];
      net.forward(s.bytes);
      loss += net.backward(static_cast<float>(s.label));
      ++count;
      if (craft && s.label == 1 && rng.chance(cfg.adv_sample_fraction)) {
        // Train on the crafted AE too, still labeled malicious.
        const ByteBuf adv = craft_pgd_ae(net, s.bytes, cfg.perturb_fraction,
                                         cfg.pgd_steps, rng);
        net.forward(adv);
        loss += net.backward(1.0f);
        ++count;
      }
      if (++in_batch == cfg.batch) {
        opt.step();
        net.clamp_nonneg();
        in_batch = 0;
      }
    }
    if (in_batch) {
      opt.step();
      net.clamp_nonneg();
    }
    last_loss = static_cast<float>(loss / std::max<std::size_t>(count, 1));
  }
  return last_loss;
}

float adversarial_train_with_aes(ByteConvDetector& detector,
                                 const corpus::Dataset& train,
                                 std::span<const ByteBuf> aes,
                                 const AdvTrainConfig& cfg) {
  // Build the mixed set: all clean samples + AEs (malicious label). The
  // paper mixes AE/clean malware 50/50; with fewer AEs than malware the AEs
  // are repeated to reach the same ratio.
  corpus::Dataset mixed = train;
  if (!aes.empty()) {
    const std::size_t n_malware = train.count(1);
    for (std::size_t i = 0; i < n_malware; ++i) {
      corpus::Sample s;
      s.bytes = aes[i % aes.size()];
      s.label = 1;
      mixed.samples.push_back(std::move(s));
    }
  }
  NetTrainConfig tc;
  tc.epochs = cfg.epochs;
  tc.lr = cfg.lr;
  tc.batch = cfg.batch;
  tc.seed = cfg.seed;
  return train_net(detector, mixed, tc);
}

}  // namespace mpass::detect
