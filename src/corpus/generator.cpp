#include "corpus/generator.hpp"

#include <algorithm>
#include <stdexcept>

#include "corpus/codegen.hpp"
#include "corpus/strings.hpp"
#include "obs/log.hpp"
#include "obs/span.hpp"
#include "util/hashing.hpp"
#include "util/rng.hpp"
#include "util/serialize.hpp"
#include "vm/sandbox.hpp"

namespace mpass::corpus {

using util::Rng;

namespace {

void maybe(Rng& rng, double p, std::vector<Behavior>& v, Behavior b) {
  if (rng.chance(p)) v.push_back(b);
}

std::vector<Behavior> behaviors_for(Family f, Rng& rng) {
  std::vector<Behavior> v;
  switch (f) {
    case Family::Ransom:
      v.push_back(Behavior::Ransomware);
      maybe(rng, 0.5, v, Behavior::Persistence);
      maybe(rng, 0.3, v, Behavior::C2Beacon);
      maybe(rng, 0.2, v, Behavior::OverlayLoader);
      break;
    case Family::InfoStealer:
      v.push_back(Behavior::Stealer);
      maybe(rng, 0.4, v, Behavior::Persistence);
      maybe(rng, 0.3, v, Behavior::C2Beacon);
      maybe(rng, 0.35, v, Behavior::OverlayLoader);
      break;
    case Family::Backdoor:
      v.push_back(Behavior::C2Beacon);
      v.push_back(rng.chance(0.5) ? Behavior::Injector
                                  : Behavior::OverlayLoader);
      maybe(rng, 0.6, v, Behavior::Persistence);
      break;
    case Family::DropperBot:
      v.push_back(Behavior::Dropper);
      maybe(rng, 0.4, v, Behavior::OverlayLoader);
      maybe(rng, 0.5, v, Behavior::Persistence);
      break;
    case Family::KeylogSpy:
      v.push_back(Behavior::Keylogger);
      maybe(rng, 0.3, v, Behavior::Stealer);
      maybe(rng, 0.5, v, Behavior::Persistence);
      maybe(rng, 0.25, v, Behavior::OverlayLoader);
      break;
    case Family::WiperKit:
      v.push_back(Behavior::Wiper);
      maybe(rng, 0.3, v, Behavior::Persistence);
      break;
    case Family::BenignUtility:
      v.push_back(Behavior::HelloReport);
      maybe(rng, 0.7, v, Behavior::ConfigReader);
      maybe(rng, 0.6, v, Behavior::Calculator);
      maybe(rng, 0.5, v, Behavior::FileWriter);
      maybe(rng, 0.3, v, Behavior::SelfCheck);
      break;
    case Family::BenignEditor:
      v.push_back(Behavior::TextProcessor);
      maybe(rng, 0.6, v, Behavior::FileWriter);
      maybe(rng, 0.5, v, Behavior::UiGreeting);
      maybe(rng, 0.5, v, Behavior::HelloReport);
      break;
    case Family::BenignUpdater:
      v.push_back(Behavior::Updater);
      maybe(rng, 0.7, v, Behavior::Telemetry);
      maybe(rng, 0.5, v, Behavior::ConfigReader);
      maybe(rng, 0.4, v, Behavior::SelfCheck);
      break;
    case Family::BenignGame:
      v.push_back(Behavior::Calculator);
      maybe(rng, 0.7, v, Behavior::UiGreeting);
      maybe(rng, 0.6, v, Behavior::HelloReport);
      maybe(rng, 0.3, v, Behavior::Telemetry);
      break;
  }
  rng.shuffle(v);
  return v;
}

ProgramSpec sample_spec(std::uint64_t seed, bool malicious) {
  Rng rng(util::hash_combine(seed, malicious ? 0x4D41 : 0x424E));
  ProgramSpec spec;
  spec.seed = rng();

  static constexpr Family kMal[] = {Family::Ransom,     Family::InfoStealer,
                                    Family::Backdoor,   Family::DropperBot,
                                    Family::KeylogSpy,  Family::WiperKit};
  static constexpr Family kBen[] = {Family::BenignUtility, Family::BenignEditor,
                                    Family::BenignUpdater, Family::BenignGame};
  spec.family = malicious ? kMal[rng.below(std::size(kMal))]
                          : kBen[rng.below(std::size(kBen))];
  spec.behaviors = behaviors_for(spec.family, rng);

  // Embedded strings. Deliberately class-independent: file *layout*
  // statistics (string-pool size, resource presence, section count) are kept
  // matched across classes so detectors must learn from code/data *content*,
  // the regime the paper's PEM analysis describes. Real-world corpora
  // approximate this too -- plenty of malware ships resources and benign
  // software ships none.
  const int nstr = static_cast<int>(rng.range(2, 8));
  for (int i = 0; i < nstr; ++i)
    spec.extra_strings.emplace_back(rng.pick(benign_strings()));

  // Section naming: non-standard names occur in both classes (malware
  // slightly more often), e.g. protected/packed goodware.
  if (rng.chance(malicious ? 0.2 : 0.1)) {
    spec.text_name = std::string(rng.pick(shady_section_names()));
    if (rng.chance(0.5))
      spec.data_name = std::string(rng.pick(shady_section_names()));
  }

  spec.rsrc_size = 0;
  if (rng.chance(0.55))
    spec.rsrc_size = static_cast<std::size_t>(rng.range(1024, 12288));
  spec.has_reloc = rng.chance(0.45);
  spec.hide_sensitive_imports = malicious && rng.chance(0.45);
  spec.timestamp = static_cast<std::uint32_t>(
      rng.range(0x5C000000, 0x63000000));  // 2018..2022

  // Imported-but-unused APIs: real programs of BOTH classes link in a large
  // superset of the APIs they call (static libraries, frameworks, dead
  // code), including alarming-sounding crypto/capture/process primitives in
  // perfectly benign software. Import *lists* are therefore a weak class
  // signal at this granularity -- the real-PE regime behind the paper's
  // footnote that import tables are negligible for attacks. Each program
  // gets a uniform random superset over the whole API registry.
  {
    const auto all = vm::all_apis();
    const int nextra = static_cast<int>(rng.range(5, 15));
    for (int i = 0; i < nextra; ++i)
      spec.extra_imports.push_back(all[rng.below(all.size())]);
  }

  bool overlay = false;
  for (Behavior b : spec.behaviors)
    if (b == Behavior::OverlayLoader) overlay = true;
  if (overlay) {
    spec.overlay_payload =
        rng.bytes(static_cast<std::size_t>(rng.range(512, 4096)));
  } else if (rng.chance(0.25)) {
    // Inert overlay (installer payloads, signatures): both classes carry
    // them; content is benign-looking text + padding.
    util::ByteWriter w;
    while (w.size() < static_cast<std::size_t>(rng.range(512, 3072)))
      w.block(util::as_bytes(rng.pick(benign_strings())));
    spec.inert_overlay = w.take();
  }
  return spec;
}

}  // namespace

ProgramSpec sample_malware_spec(std::uint64_t seed) {
  return sample_spec(seed, true);
}

ProgramSpec sample_benign_spec(std::uint64_t seed) {
  return sample_spec(seed, false);
}

namespace {
CompiledSample make_validated(std::uint64_t seed, bool malicious) {
  const vm::Sandbox sandbox;
  for (int attempt = 0; attempt < 32; ++attempt) {
    const std::uint64_t s = util::hash_combine(seed, attempt);
    CompiledSample sample =
        compile_program(sample_spec(s, malicious));
    const vm::SandboxReport report = sandbox.analyze(sample.bytes());
    if (report.executed_ok && report.malicious == malicious) return sample;
  }
  throw std::runtime_error("corpus: failed to generate a valid sample");
}
}  // namespace

CompiledSample make_malware(std::uint64_t seed) {
  return make_validated(seed, true);
}

CompiledSample make_benign(std::uint64_t seed) {
  return make_validated(seed, false);
}

std::size_t Dataset::count(int label) const {
  std::size_t n = 0;
  for (const Sample& s : samples)
    if (s.label == label) ++n;
  return n;
}

std::pair<Dataset, Dataset> Dataset::split(double train_fraction) const {
  Dataset train, test;
  std::size_t seen[2] = {0, 0};
  const std::size_t total[2] = {count(0), count(1)};
  for (const Sample& s : samples) {
    const int l = s.label ? 1 : 0;
    const bool to_train =
        static_cast<double>(seen[l]) <
        train_fraction * static_cast<double>(total[l]);
    (to_train ? train : test).samples.push_back(s);
    ++seen[l];
  }
  return {std::move(train), std::move(test)};
}

void save_dataset(const Dataset& dataset, const std::filesystem::path& dir) {
  std::filesystem::create_directories(dir);
  std::string index = "file,label,family,overlay\n";
  std::size_t counters[2] = {0, 0};
  for (const Sample& s : dataset.samples) {
    char name[32];
    std::snprintf(name, sizeof(name), "%s_%04zu.bin",
                  s.label ? "mal" : "ben", counters[s.label ? 1 : 0]++);
    util::save_file(dir / name, s.bytes);
    index += std::string(name) + "," + (s.label ? "1" : "0") + "," +
             std::string(family_name(s.meta.family)) + "," +
             (s.meta.overlay_dependent ? "1" : "0") + "\n";
  }
  util::save_file(dir / "index.csv", util::to_bytes(index));
  obs::logf(obs::LogLevel::Debug, "corpus: saved %zu samples to %s",
            dataset.samples.size(), dir.string().c_str());
}

Dataset load_dataset(const std::filesystem::path& dir) {
  Dataset ds;
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir))
    if (entry.path().extension() == ".bin") files.push_back(entry.path());
  std::sort(files.begin(), files.end());
  for (const auto& path : files) {
    auto bytes = util::load_file(path);
    if (!bytes) continue;
    Sample s;
    s.bytes = std::move(*bytes);
    s.label = path.filename().string().rfind("mal", 0) == 0 ? 1 : 0;
    s.meta.malicious = s.label == 1;
    ds.samples.push_back(std::move(s));
  }
  return ds;
}

Dataset generate_dataset(std::uint64_t seed, std::size_t n_malware,
                         std::size_t n_benign) {
  OBS_SCOPE("corpus.generate");
  obs::logf(obs::LogLevel::Debug,
            "corpus: generating %zu malware + %zu benign (seed %llu)",
            n_malware, n_benign, static_cast<unsigned long long>(seed));
  Dataset ds;
  ds.samples.reserve(n_malware + n_benign);
  for (std::size_t i = 0; i < n_malware; ++i) {
    CompiledSample s = make_malware(util::hash_combine(seed, 0x6D00 + i));
    ds.samples.push_back({s.bytes(), 1, std::move(s.meta)});
  }
  for (std::size_t i = 0; i < n_benign; ++i) {
    CompiledSample s = make_benign(util::hash_combine(seed, 0xB000 + i));
    ds.samples.push_back({s.bytes(), 0, std::move(s.meta)});
  }
  // Interleave classes deterministically so splits stay balanced.
  util::Rng rng(seed ^ 0xDA7A);
  rng.shuffle(ds.samples);
  return ds;
}

}  // namespace mpass::corpus
