#include "util/compress.hpp"

#include <algorithm>
#include <array>

namespace mpass::util {

namespace {
constexpr std::uint32_t kMagic = 0x315A4C4Du;  // 'MLZ1'
constexpr std::size_t kWindow = 4096;
constexpr std::size_t kMinMatch = 3;
constexpr std::size_t kMaxMatch = 18;
}  // namespace

ByteBuf lzss_compress(std::span<const std::uint8_t> data) {
  ByteWriter w;
  w.u32(kMagic);
  w.u32(static_cast<std::uint32_t>(data.size()));

  // Hash chains over 3-byte prefixes for match finding.
  constexpr std::size_t kHashSize = 1 << 13;
  std::vector<std::int32_t> head(kHashSize, -1);
  std::vector<std::int32_t> prev(data.size(), -1);
  auto hash3 = [&](std::size_t i) {
    const std::uint32_t v = data[i] | (data[i + 1] << 8) | (data[i + 2] << 16);
    return static_cast<std::size_t>((v * 2654435761u) >> 19) & (kHashSize - 1);
  };

  ByteBuf pending;        // up to 8 encoded items
  std::uint8_t flags = 0;
  int nitems = 0;
  auto flush = [&] {
    if (nitems == 0) return;
    w.u8(flags);
    w.block(pending);
    pending.clear();
    flags = 0;
    nitems = 0;
  };

  std::size_t i = 0;
  while (i < data.size()) {
    std::size_t best_len = 0;
    std::size_t best_off = 0;
    if (i + kMinMatch <= data.size()) {
      const std::size_t h = hash3(i);
      std::int32_t cand = head[h];
      int chain = 64;
      while (cand >= 0 && chain-- > 0 &&
             i - static_cast<std::size_t>(cand) <= kWindow) {
        const std::size_t c = static_cast<std::size_t>(cand);
        const std::size_t limit = std::min(kMaxMatch, data.size() - i);
        std::size_t len = 0;
        while (len < limit && data[c + len] == data[i + len]) ++len;
        if (len > best_len) {
          best_len = len;
          best_off = i - c;
          if (len == kMaxMatch) break;
        }
        cand = prev[c];
      }
    }

    if (best_len >= kMinMatch) {
      flags |= static_cast<std::uint8_t>(1u << nitems);
      const std::uint16_t token = static_cast<std::uint16_t>(
          ((best_off - 1) << 4) | (best_len - kMinMatch));
      pending.push_back(static_cast<std::uint8_t>(token & 0xFF));
      pending.push_back(static_cast<std::uint8_t>(token >> 8));
      // Insert all covered positions into the hash chains.
      for (std::size_t k = 0; k < best_len && i + k + kMinMatch <= data.size();
           ++k) {
        const std::size_t h = hash3(i + k);
        prev[i + k] = head[h];
        head[h] = static_cast<std::int32_t>(i + k);
      }
      i += best_len;
    } else {
      pending.push_back(data[i]);
      if (i + kMinMatch <= data.size()) {
        const std::size_t h = hash3(i);
        prev[i] = head[h];
        head[h] = static_cast<std::int32_t>(i);
      }
      ++i;
    }
    if (++nitems == 8) flush();
  }
  flush();
  return w.take();
}

ByteBuf lzss_decompress(std::span<const std::uint8_t> data) {
  ByteReader r(data);
  if (r.u32() != kMagic) throw ParseError("lzss: bad magic");
  const std::uint32_t out_size = r.u32();
  ByteBuf out;
  out.reserve(out_size);
  while (out.size() < out_size) {
    std::uint8_t flags = r.u8();
    for (int bit = 0; bit < 8 && out.size() < out_size; ++bit) {
      if (flags & (1u << bit)) {
        const std::uint16_t token = r.u16();
        const std::size_t off = (token >> 4) + 1;
        const std::size_t len = (token & 0xF) + kMinMatch;
        if (off > out.size()) throw ParseError("lzss: bad match offset");
        for (std::size_t k = 0; k < len; ++k)
          out.push_back(out[out.size() - off]);
      } else {
        out.push_back(r.u8());
      }
    }
  }
  if (out.size() != out_size) throw ParseError("lzss: size mismatch");
  return out;
}

bool is_lzss(std::span<const std::uint8_t> data) {
  return data.size() >= 4 && read_le<std::uint32_t>(data.data()) == kMagic;
}

}  // namespace mpass::util
