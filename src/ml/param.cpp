#include "ml/param.hpp"

#include <cmath>
#include <stdexcept>

namespace mpass::ml {

void ParamSet::load(util::Unarchive& ar) {
  ar.tag("params");
  const std::uint32_t n = ar.u32();
  if (n != params_.size())
    throw util::ParseError("params: count mismatch");
  for (Param* p : params_) {
    const std::string name = ar.str();
    std::vector<float> w = ar.floats();
    if (name != p->name || w.size() != p->w.size())
      throw util::ParseError("params: layout mismatch at " + name);
    p->w = std::move(w);
  }
  bump_version();
}

Adam::Adam(ParamSet& params, float lr, float beta1, float beta2, float eps)
    : params_(params), lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {
  for (Param* p : params_.all()) {
    m_.emplace_back(p->size(), 0.0f);
    v_.emplace_back(p->size(), 0.0f);
  }
}

void Adam::step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  const auto& params = params_.all();
  for (std::size_t i = 0; i < params.size(); ++i) {
    Param& p = *params[i];
    for (std::size_t j = 0; j < p.size(); ++j) {
      const float g = p.g[j];
      m_[i][j] = beta1_ * m_[i][j] + (1.0f - beta1_) * g;
      v_[i][j] = beta2_ * v_[i][j] + (1.0f - beta2_) * g * g;
      const float mhat = m_[i][j] / bc1;
      const float vhat = v_[i][j] / bc2;
      p.w[j] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
    std::fill(p.g.begin(), p.g.end(), 0.0f);
  }
  params_.bump_version();
}

}  // namespace mpass::ml
