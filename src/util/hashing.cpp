#include "util/hashing.hpp"

#include <array>

namespace mpass::util {

namespace {
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
    table[i] = c;
  }
  return table;
}
}  // namespace

std::uint64_t fnv1a64(std::span<const std::uint8_t> data, std::uint64_t seed) {
  std::uint64_t h = seed;
  for (std::uint8_t b : data) {
    h ^= b;
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t fnv1a64(std::string_view s, std::uint64_t seed) {
  return fnv1a64(
      {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()}, seed);
}

std::uint64_t hash_combine(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= static_cast<std::uint8_t>(v >> (8 * i));
    h *= kFnvPrime;
  }
  return h;
}

std::uint32_t crc32(std::span<const std::uint8_t> data) {
  static const auto table = make_crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::uint8_t b : data) c = table[(c ^ b) & 0xFF] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

}  // namespace mpass::util
