#include "vm/machine.hpp"

#include <algorithm>

#include "isa/isa.hpp"
#include "util/hashing.hpp"
#include "util/rng.hpp"

namespace mpass::vm {

using util::ByteBuf;
using util::fnv1a64;
using util::hash_combine;

std::size_t RunResult::sensitive_calls() const {
  std::size_t n = 0;
  for (const Event& e : trace)
    if (is_sensitive(e.api)) ++n;
  return n;
}

std::size_t RunResult::malicious_calls() const {
  std::size_t n = 0;
  for (const Event& e : trace)
    if (is_hard_malicious(e.api)) ++n;
  return n;
}

bool traces_equal(const Trace& a, const Trace& b) { return a == b; }

Machine::Machine(ByteBuf raw_file) : raw_(std::move(raw_file)) {
  pe::PeFile file = pe::PeFile::parse(raw_);

  image_base_ = file.image_base;
  image_size_ = file.size_of_image();
  image_.assign(image_size_, 0);
  prot_.assign(image_size_, 0);

  // Map headers (read-only) exactly as the Windows loader does.
  pe::Layout layout;
  const ByteBuf built = file.build_with_layout(&layout);
  const std::size_t hdr = std::min<std::size_t>(layout.headers_size,
                                                image_.size());
  std::copy_n(built.begin(), hdr, image_.begin());

  // Map sections with their protections.
  for (const pe::Section& s : file.sections) {
    if (s.vaddr >= image_size_) continue;
    const std::size_t copy_len =
        std::min<std::size_t>(s.data.size(), image_size_ - s.vaddr);
    std::copy_n(s.data.begin(), copy_len, image_.begin() + s.vaddr);
    const std::uint32_t span = std::max(
        s.vsize, static_cast<std::uint32_t>(s.data.size()));
    const std::size_t prot_len =
        std::min<std::size_t>(span, image_size_ - s.vaddr);
    std::uint8_t p = 0;
    if (s.writable()) p |= 1;
    if (s.executable()) p |= 2;
    std::fill_n(prot_.begin() + s.vaddr, prot_len, p);
  }

  stack_.assign(kStackSize, 0);
  heap_.assign(kHeapSize, 0);

  pc_ = image_base_ + file.entry_point;
  sp_ = kStackTop;

  // Victim environment: a deterministic set of user files.
  auto seed_file = [&](const std::string& name, std::string_view content) {
    fs_[name] = util::to_bytes(content);
    victim_files_.push_back(name);
  };
  seed_file("C:/Users/victim/doc_report.txt",
            "Quarterly report: revenue grew 4% in Q3.");
  seed_file("C:/Users/victim/passwords.txt", "hunter2\nswordfish\n");
  seed_file("C:/Users/victim/photo.raw", "RAWDATA0123456789abcdef");
  seed_file("C:/Users/victim/notes.md", "# TODO\n- renew license\n");
  seed_file("C:/Windows/config.ini", "[system]\nlocale=en-US\n");
}

// ---- memory --------------------------------------------------------------

std::uint8_t* Machine::mem_ptr(std::uint32_t addr, std::uint32_t len) {
  if (len == 0) return nullptr;
  // Image region.
  if (addr >= image_base_ && addr + len > addr &&
      addr + len <= image_base_ + image_size_)
    return image_.data() + (addr - image_base_);
  // Stack region.
  const std::uint32_t stack_base = kStackTop - kStackSize;
  if (addr >= stack_base && addr + len > addr && addr + len <= kStackTop)
    return stack_.data() + (addr - stack_base);
  // Heap region.
  if (addr >= kHeapBase && addr + len > addr &&
      addr + len <= kHeapBase + kHeapSize)
    return heap_.data() + (addr - kHeapBase);
  return nullptr;
}

bool Machine::readable(std::uint32_t addr, std::uint32_t len) {
  return mem_ptr(addr, len) != nullptr;
}

bool Machine::writable(std::uint32_t addr, std::uint32_t len) {
  if (!mem_ptr(addr, len)) return false;
  if (addr >= image_base_ && addr + len <= image_base_ + image_size_) {
    for (std::uint32_t i = 0; i < len; ++i)
      if (!(prot_[addr - image_base_ + i] & 1)) return false;
  }
  return true;  // stack/heap always writable
}

bool Machine::executable(std::uint32_t addr) {
  if (addr < image_base_ || addr >= image_base_ + image_size_) return false;
  return (prot_[addr - image_base_] & 2) != 0;
}

std::uint8_t Machine::load8(std::uint32_t addr) {
  const std::uint8_t* p = mem_ptr(addr, 1);
  if (!p) {
    fault("read fault");
    return 0;
  }
  return *p;
}

std::uint32_t Machine::load32(std::uint32_t addr) {
  const std::uint8_t* p = mem_ptr(addr, 4);
  if (!p) {
    fault("read fault");
    return 0;
  }
  return util::read_le<std::uint32_t>(p);
}

void Machine::store8(std::uint32_t addr, std::uint8_t v) {
  if (!writable(addr, 1)) {
    fault("write fault");
    return;
  }
  *mem_ptr(addr, 1) = v;
}

void Machine::store32(std::uint32_t addr, std::uint32_t v) {
  if (!writable(addr, 4)) {
    fault("write fault");
    return;
  }
  util::write_le(mem_ptr(addr, 4), v);
}

std::string Machine::read_string(std::uint32_t ptr, std::uint32_t len) {
  len = std::min<std::uint32_t>(len, 4096);
  if (len == 0) return {};
  const std::uint8_t* p = mem_ptr(ptr, len);
  if (!p) {
    fault("string read fault");
    return {};
  }
  return std::string(reinterpret_cast<const char*>(p), len);
}

ByteBuf Machine::read_block(std::uint32_t ptr, std::uint32_t len) {
  len = std::min<std::uint32_t>(len, 1u << 20);
  if (len == 0) return {};
  const std::uint8_t* p = mem_ptr(ptr, len);
  if (!p) {
    fault("block read fault");
    return {};
  }
  return ByteBuf(p, p + len);
}

void Machine::write_block(std::uint32_t ptr,
                          std::span<const std::uint8_t> data) {
  if (data.empty()) return;
  if (!writable(ptr, static_cast<std::uint32_t>(data.size()))) {
    fault("block write fault");
    return;
  }
  std::copy(data.begin(), data.end(),
            mem_ptr(ptr, static_cast<std::uint32_t>(data.size())));
}

// ---- execution -------------------------------------------------------------

void Machine::fault(std::string reason) {
  if (!result_.faulted) {
    result_.faulted = true;
    result_.fault_reason = std::move(reason);
  }
  running_ = false;
}

void Machine::record(std::uint16_t api, std::uint64_t digest) {
  result_.trace.push_back({api, digest});
}

RunResult Machine::run(std::uint64_t max_steps) {
  result_ = RunResult{};
  running_ = true;

  using isa::Op;
  using isa::Reg;
  auto r = [&](Reg x) -> std::uint32_t& {
    return reg_[static_cast<int>(x)];
  };

  while (running_ && result_.steps < max_steps) {
    if (!executable(pc_)) {
      fault("exec fault at pc");
      break;
    }
    // Decode directly from the image; instructions never straddle regions.
    const std::size_t off = pc_ - image_base_;
    const std::size_t avail =
        std::min<std::size_t>(image_size_ - off, 16);
    isa::Instr in;
    std::size_t len = 0;
    try {
      util::ByteReader br({image_.data() + off, avail});
      in = isa::decode(br);
      len = br.pos();
    } catch (const util::ParseError&) {
      fault("decode fault");
      break;
    }
    // Every byte of the instruction must be executable.
    bool exec_ok = true;
    for (std::size_t i = 1; i < len; ++i)
      if (!(prot_[off + i] & 2)) exec_ok = false;
    if (!exec_ok) {
      fault("exec fault inside instruction");
      break;
    }

    pc_ += static_cast<std::uint32_t>(len);
    ++result_.steps;

    switch (in.op) {
      case Op::Nop:
        break;
      case Op::Halt:
        result_.halted = true;
        running_ = false;
        break;
      case Op::Movi:
        r(in.a) = in.imm;
        break;
      case Op::Movr:
        r(in.a) = r(in.b);
        break;
      case Op::Add:
        r(in.a) += r(in.b);
        break;
      case Op::Sub:
        r(in.a) -= r(in.b);
        break;
      case Op::Xor:
        r(in.a) ^= r(in.b);
        break;
      case Op::And:
        r(in.a) &= r(in.b);
        break;
      case Op::Or:
        r(in.a) |= r(in.b);
        break;
      case Op::Mul:
        r(in.a) *= r(in.b);
        break;
      case Op::Shl:
        r(in.a) <<= (r(in.b) & 31);
        break;
      case Op::Shr:
        r(in.a) >>= (r(in.b) & 31);
        break;
      case Op::Mod:
        r(in.a) = r(in.b) ? r(in.a) % r(in.b) : 0;
        break;
      case Op::Div:
        r(in.a) = r(in.b) ? r(in.a) / r(in.b) : 0;
        break;
      case Op::Addi:
        r(in.a) += in.imm;
        break;
      case Op::Loadb:
        r(in.a) = load8(r(in.b));
        break;
      case Op::Storeb:
        store8(r(in.a), static_cast<std::uint8_t>(r(in.b)));
        break;
      case Op::Loadw:
        r(in.a) = load32(r(in.b));
        break;
      case Op::Storew:
        store32(r(in.a), r(in.b));
        break;
      case Op::Jmp:
        pc_ += static_cast<std::uint32_t>(in.rel);
        break;
      case Op::Jz:
        if (r(in.a) == 0) pc_ += static_cast<std::uint32_t>(in.rel);
        break;
      case Op::Jnz:
        if (r(in.a) != 0) pc_ += static_cast<std::uint32_t>(in.rel);
        break;
      case Op::Jlt:
        if (r(in.a) < r(in.b)) pc_ += static_cast<std::uint32_t>(in.rel);
        break;
      case Op::Call:
        sp_ -= 4;
        if (sp_ < kStackTop - kStackSize) {
          fault("stack overflow");
          break;
        }
        store32(sp_, pc_);
        pc_ += static_cast<std::uint32_t>(in.rel);
        break;
      case Op::Ret:
        if (sp_ + 4 > kStackTop) {
          fault("stack underflow");
          break;
        }
        pc_ = load32(sp_);
        sp_ += 4;
        break;
      case Op::Push:
        sp_ -= 4;
        if (sp_ < kStackTop - kStackSize) {
          fault("stack overflow");
          break;
        }
        store32(sp_, r(in.a));
        break;
      case Op::Pop:
        if (sp_ + 4 > kStackTop) {
          fault("stack underflow");
          break;
        }
        r(in.a) = load32(sp_);
        sp_ += 4;
        break;
      case Op::Sys:
        syscall(static_cast<std::uint16_t>(in.imm));
        break;
    }
  }
  if (result_.steps >= max_steps && !result_.halted && !result_.faulted)
    result_.fault_reason = "fuel exhausted";
  return result_;
}

// ---- syscalls ---------------------------------------------------------------

void Machine::syscall(std::uint16_t api) {
  auto& r0 = reg_[0];
  auto& r1 = reg_[1];
  auto& r2 = reg_[2];
  auto& r3 = reg_[3];

  switch (static_cast<Api>(api)) {
    case Api::Print: {
      const ByteBuf data = read_block(r0, r1);
      record(api, fnv1a64(data));
      break;
    }
    case Api::GetTime:
      r0 = time_counter_;
      time_counter_ += 16;  // deterministic monotone clock
      break;
    case Api::OpenFile: {
      const std::string name = read_string(r0, r1);
      record(api, fnv1a64(name));
      if (!fs_.contains(name)) fs_[name] = {};
      handles_.push_back({name, 0, true});
      r0 = static_cast<std::uint32_t>(handles_.size());  // 1-based handle
      break;
    }
    case Api::ReadFile: {
      if (r0 == 0 || r0 > handles_.size() || !handles_[r0 - 1].open) {
        r0 = 0;
        break;
      }
      OpenFile& h = handles_[r0 - 1];
      const ByteBuf& content = fs_[h.name];
      const std::uint32_t avail =
          h.cursor < content.size()
              ? static_cast<std::uint32_t>(content.size()) - h.cursor
              : 0;
      const std::uint32_t n = std::min(r2, avail);
      if (n) write_block(r1, {content.data() + h.cursor, n});
      h.cursor += n;
      r0 = n;
      break;
    }
    case Api::WriteFile: {
      if (r0 == 0 || r0 > handles_.size() || !handles_[r0 - 1].open) {
        r0 = 0;
        break;
      }
      OpenFile& h = handles_[r0 - 1];
      const ByteBuf data = read_block(r1, r2);
      ByteBuf& content = fs_[h.name];
      if (h.cursor + data.size() > content.size())
        content.resize(h.cursor + data.size());
      std::copy(data.begin(), data.end(), content.begin() + h.cursor);
      h.cursor += static_cast<std::uint32_t>(data.size());
      record(api, hash_combine(fnv1a64(h.name), fnv1a64(data)));
      r0 = r2;
      break;
    }
    case Api::CloseFile:
      if (r0 >= 1 && r0 <= handles_.size()) handles_[r0 - 1].open = false;
      break;
    case Api::Alloc: {
      const std::uint32_t size = std::min(r0, kHeapSize);
      if (heap_brk_ + size > kHeapSize) {
        r0 = 0;
      } else {
        r0 = kHeapBase + heap_brk_;
        heap_brk_ += util::align_up(std::max(size, 4u), 16);
      }
      break;
    }
    case Api::GetEnv: {
      static constexpr std::string_view kEnv = "USER=victim;OS=SimWin";
      const std::uint32_t n =
          std::min<std::uint32_t>(r1, static_cast<std::uint32_t>(kEnv.size()));
      write_block(r0, util::as_bytes(kEnv.substr(0, n)));
      r0 = n;
      break;
    }
    case Api::MsgBox: {
      const ByteBuf data = read_block(r0, r1);
      record(api, fnv1a64(data));
      break;
    }
    case Api::Rand:
      r0 = static_cast<std::uint32_t>(util::splitmix64(rand_state_));
      break;
    case Api::Sleep:
      time_counter_ += r0;
      break;
    case Api::ExitProcess:
      record(api, r0);
      result_.halted = true;
      running_ = false;
      break;
    case Api::VProtect: {
      if (r0 < image_base_ || r0 + r1 < r0 ||
          r0 + r1 > image_base_ + image_size_)
        break;  // no-op outside image, like VirtualProtect failing softly
      const std::uint8_t p = static_cast<std::uint8_t>(r2 & 3);
      std::fill_n(prot_.begin() + (r0 - image_base_), r1, p);
      break;
    }
    case Api::GetSelfSize:
      r0 = static_cast<std::uint32_t>(raw_.size());
      break;
    case Api::ReadSelf: {
      if (r0 >= raw_.size()) {
        r0 = 0;
        break;
      }
      const std::uint32_t n = std::min<std::uint32_t>(
          r2, static_cast<std::uint32_t>(raw_.size()) - r0);
      write_block(r1, {raw_.data() + r0, n});
      r0 = n;
      break;
    }
    case Api::Checksum: {
      const ByteBuf data = read_block(r0, r1);
      r0 = util::crc32(data);
      break;
    }

    // ---- sensitive APIs ----
    case Api::RegSetAutorun: {
      const std::string value = read_string(r0, r1);
      record(api, fnv1a64(value));
      break;
    }
    case Api::RegDeleteKey:
      record(api, r0);
      break;
    case Api::Connect:
      record(api, hash_combine(r0, r1));
      r0 = next_sock_++;
      break;
    case Api::Send: {
      const ByteBuf data = read_block(r1, r2);
      record(api, hash_combine(r0, fnv1a64(data)));
      break;
    }
    case Api::Recv: {
      // Deterministic pseudo-C2 downlink: stream derived from sock id.
      const std::uint32_t n = std::min(r2, 256u);
      ByteBuf data(n);
      std::uint64_t s = 0x5bd1e995u ^ r0;
      for (auto& b : data) b = static_cast<std::uint8_t>(util::splitmix64(s));
      write_block(r1, data);
      record(api, hash_combine(r0, n));
      r0 = n;
      break;
    }
    case Api::EnumFiles: {
      if (enum_cursor_ >= victim_files_.size()) {
        r0 = 0;
        break;
      }
      const std::string& name = victim_files_[enum_cursor_++];
      const std::uint32_t n =
          std::min<std::uint32_t>(r1, static_cast<std::uint32_t>(name.size()));
      write_block(r0, util::as_bytes(std::string_view(name).substr(0, n)));
      record(api, fnv1a64(name));
      r0 = n;
      break;
    }
    case Api::EncryptFile: {
      const std::string name = read_string(r0, r1);
      auto it = fs_.find(name);
      std::uint64_t content_digest = 0;
      if (it != fs_.end()) {
        for (auto& b : it->second) b ^= static_cast<std::uint8_t>(r2);
        content_digest = fnv1a64(it->second);
      }
      record(api, hash_combine(fnv1a64(name), content_digest));
      break;
    }
    case Api::DeleteShadow:
      record(api, 0xD5);
      break;
    case Api::KeylogStart:
      record(api, 0xA110);
      break;
    case Api::KeylogDump: {
      static constexpr std::string_view kKeys = "user typed: secret";
      const std::uint32_t n =
          std::min<std::uint32_t>(r1, static_cast<std::uint32_t>(kKeys.size()));
      write_block(r0, util::as_bytes(kKeys.substr(0, n)));
      record(api, n);
      r0 = n;
      break;
    }
    case Api::InjectProc: {
      const ByteBuf payload = read_block(r1, r2);
      record(api, hash_combine(r0, fnv1a64(payload)));
      break;
    }
    case Api::CreateProc: {
      const std::string name = read_string(r0, r1);
      record(api, fnv1a64(name));
      break;
    }
    case Api::WriteExe: {
      const std::string name = read_string(r0, r1);
      const ByteBuf body = read_block(r2, r3);
      fs_[name] = body;
      record(api, hash_combine(fnv1a64(name), fnv1a64(body)));
      break;
    }
    case Api::SetHidden: {
      const std::string name = read_string(r0, r1);
      record(api, fnv1a64(name));
      break;
    }
    case Api::Screenshot: {
      const std::uint32_t n = std::min(r1, 64u);
      ByteBuf shot(n, 0x7C);
      write_block(r0, shot);
      record(api, n);
      r0 = n;
      break;
    }
    case Api::StealCreds: {
      const ByteBuf& pw = fs_["C:/Users/victim/passwords.txt"];
      const std::uint32_t n =
          std::min<std::uint32_t>(r1, static_cast<std::uint32_t>(pw.size()));
      if (n) write_block(r0, {pw.data(), n});
      record(api, fnv1a64(pw));
      r0 = n;
      break;
    }
    default:
      // Unknown syscall id: treated as a no-op returning 0 (robustness
      // against adversarially perturbed code falling through here is not
      // required -- perturbed code is never executed thanks to recovery).
      r0 = 0;
      break;
  }
}

}  // namespace mpass::vm
