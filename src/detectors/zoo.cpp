#include "detectors/zoo.hpp"

#include <cstdlib>
#include <thread>

#include "obs/log.hpp"
#include "obs/span.hpp"
#include "pack/packer.hpp"
#include "util/hashing.hpp"

namespace mpass::detect {

using util::ByteBuf;

namespace {
constexpr std::uint64_t kZooCacheVersion = 10;

std::size_t env_size(const char* name, std::size_t fallback) {
  if (const char* v = std::getenv(name); v && *v)
    return static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
  return fallback;
}
}  // namespace

ZooConfig ZooConfig::from_env() {
  ZooConfig cfg;
  cfg.seed = env_size("MPASS_SEED", cfg.seed);
  cfg.train_malware = env_size("MPASS_TRAIN_MAL", cfg.train_malware);
  cfg.train_benign = env_size("MPASS_TRAIN_BEN", cfg.train_benign);
  cfg.test_malware = env_size("MPASS_TEST_MAL", cfg.test_malware);
  cfg.test_benign = env_size("MPASS_TEST_BEN", cfg.test_benign);
  cfg.net_epochs = static_cast<int>(
      env_size("MPASS_NET_EPOCHS", static_cast<std::size_t>(cfg.net_epochs)));
  if (std::getenv("MPASS_NO_CACHE")) cfg.use_cache = false;
  return cfg;
}

std::uint64_t ZooConfig::digest() const {
  std::uint64_t h = kZooCacheVersion;
  for (std::uint64_t v :
       {seed, static_cast<std::uint64_t>(train_malware),
        static_cast<std::uint64_t>(train_benign),
        static_cast<std::uint64_t>(test_malware),
        static_cast<std::uint64_t>(test_benign),
        static_cast<std::uint64_t>(packed_malware),
        static_cast<std::uint64_t>(packed_benign),
        static_cast<std::uint64_t>(benign_pool),
        static_cast<std::uint64_t>(net_epochs),
        static_cast<std::uint64_t>(lm_windows),
        static_cast<std::uint64_t>(lm_epochs),
        static_cast<std::uint64_t>(target_fpr * 1e6)})
    h = util::hash_combine(h, v);
  return h;
}

namespace {
// Structural-noise augmentation: label-neutral cosmetic variants (extra
// sections of benign-slice content, renamed sections, overlay appends,
// timestamp changes) for BOTH classes. Real-world training corpora contain
// endless such variants, which is why production detectors key on content
// rather than structural oddity; a small synthetic corpus needs the same
// invariances made explicit or "anything unusual" becomes a malware
// feature and transfer attacks stop reflecting the paper's regime.
void augment_structural_noise(corpus::Dataset& data, std::uint64_t seed) {
  util::Rng arng(seed);
  std::vector<ByteBuf> slices;
  for (const corpus::Sample& s : data.samples)
    if (s.label == 0 && slices.size() < 24) slices.push_back(s.bytes);
  auto slice_of = [&](std::size_t n) {
    ByteBuf out(n);
    if (slices.empty()) return out;
    const ByteBuf& src = slices[arng.below(slices.size())];
    const std::size_t start = arng.below(std::max<std::size_t>(src.size(), 1));
    for (std::size_t i = 0; i < n; ++i) out[i] = src[(start + i) % src.size()];
    return out;
  };
  auto random_name = [&] {
    std::string name;
    const std::size_t len = 3 + arng.below(5);
    for (std::size_t c = 0; c < len; ++c)
      name.push_back("abcdefghijklmnopqrstuvwxyz."[arng.below(27)]);
    return name;
  };
  const std::size_t base_count = data.samples.size();
  std::vector<corpus::Sample> augmented;
  for (std::size_t i = 0; i < base_count; ++i) {
    if (!arng.chance(0.45)) continue;
    pe::PeFile f;
    try {
      f = pe::PeFile::parse(data.samples[i].bytes);
    } catch (const util::ParseError&) {
      continue;
    }
    const int n_transforms = static_cast<int>(arng.range(1, 3));
    for (int t = 0; t < n_transforms; ++t) {
      switch (arng.range(0, 3)) {
        case 0:  // extra section, random name, benign-slice content
          f.add_section(random_name(),
                        slice_of(static_cast<std::size_t>(
                            arng.range(1024, 12288))),
                        pe::kScnInitializedData | pe::kScnMemRead);
          break;
        case 1: {  // overlay append
          const ByteBuf extra =
              slice_of(static_cast<std::size_t>(arng.range(512, 8192)));
          f.overlay.insert(f.overlay.end(), extra.begin(), extra.end());
          break;
        }
        case 2:  // rename a section
          if (!f.sections.empty())
            f.sections[arng.below(f.sections.size())].name = random_name();
          break;
        default:  // timestamp
          f.timestamp = static_cast<std::uint32_t>(
              arng.range(0x40000000, 0x65000000));
          break;
      }
    }
    corpus::Sample aug;
    aug.bytes = f.build();
    aug.label = data.samples[i].label;
    aug.meta = data.samples[i].meta;
    augmented.push_back(std::move(aug));
  }
  for (corpus::Sample& s : augmented)
    data.samples.push_back(std::move(s));
}
}  // namespace

ModelZoo& ModelZoo::instance() {
  static ModelZoo zoo(ZooConfig::from_env());
  return zoo;
}

std::filesystem::path ModelZoo::artifact_path(std::string_view stem) const {
  char dir[64];
  std::snprintf(dir, sizeof(dir), "zoo-%016llx",
                static_cast<unsigned long long>(cfg_.digest()));
  return util::cache_dir() / dir / (std::string(stem) + ".bin");
}

ModelZoo::ModelZoo(const ZooConfig& cfg) : cfg_(cfg) { build_or_load(); }

void ModelZoo::build_or_load() {
  // ---- corpus (always regenerated; deterministic and fast) ----------------
  corpus::Dataset train_raw = corpus::generate_dataset(
      cfg_.seed, cfg_.train_malware, cfg_.train_benign);
  test_ = corpus::generate_dataset(cfg_.seed ^ 0x7E57, cfg_.test_malware,
                                   cfg_.test_benign);

  // Packed-sample augmentation: deployed AVs have seen packed goodware and
  // (mostly) packed malware; this is what makes packers a weak evasion
  // (Table IV).
  util::Rng prng(cfg_.seed ^ 0x9ACC);
  auto add_packed = [&](int label, std::size_t count) {
    std::size_t added = 0;
    for (const corpus::Sample& s : train_raw.samples) {
      if (added >= count) break;
      if (s.label != label) continue;
      static constexpr pack::PackerKind kKinds[] = {
          pack::PackerKind::UpxLike, pack::PackerKind::PespinLike,
          pack::PackerKind::AspackLike};
      const auto kind = kKinds[prng.below(3)];
      if (auto packed = pack::pack(kind, s.bytes)) {
        corpus::Sample ps;
        ps.bytes = std::move(*packed);
        ps.label = label;
        ps.meta = s.meta;
        train_.samples.push_back(std::move(ps));
        ++added;
      }
    }
  };
  train_ = std::move(train_raw);
  add_packed(1, cfg_.packed_malware);
  add_packed(0, cfg_.packed_benign);

  augment_structural_noise(train_, cfg_.seed ^ 0xA06);

  util::Rng shuffler(cfg_.seed ^ 0x5117);
  shuffler.shuffle(train_.samples);

  // ---- attacker-side benign pool -------------------------------------------
  pool_.clear();
  for (std::size_t i = 0; i < cfg_.benign_pool; ++i)
    pool_.push_back(
        corpus::make_benign(util::hash_combine(cfg_.seed ^ 0xA77C, i)).bytes());

  // ---- models ---------------------------------------------------------------
  malconv_ = std::make_unique<ByteConvDetector>("MalConv", malconv_config(),
                                                cfg_.seed + 1);
  nonneg_ = std::make_unique<ByteConvDetector>("NonNeg", nonneg_config(),
                                               cfg_.seed + 2);
  malgcg_ = std::make_unique<ByteConvDetector>("MalGCG", malgcg_config(),
                                               cfg_.seed + 3);
  lightgbm_ =
      std::make_unique<GbdtDetector>("LightGBM", lightgbm_config());
  lm_ = std::make_unique<ml::GruLm>(ml::GruLmConfig{}, cfg_.seed + 4);

  // Attacker-trained surrogates: diverse architectures (shapes chosen to
  // overlap none of the targets exactly) trained on the attacker's own
  // generated corpus.
  {
    ml::ByteConvConfig a = malconv_config();
    a.embed_dim = 6; a.filters = 24; a.width = 24; a.stride = 12;
    ml::ByteConvConfig b = malgcg_config();
    b.filters = 12; b.width = 64; b.stride = 32;
    ml::ByteConvConfig c = malconv_config();
    c.gated = false; c.filters = 20; c.width = 16; c.stride = 8;
    surrogates_.clear();
    surrogates_.push_back(std::make_unique<ByteConvDetector>(
        "Surrogate-A", a, cfg_.seed + 101));
    surrogates_.push_back(std::make_unique<ByteConvDetector>(
        "Surrogate-B", b, cfg_.seed + 202));
    surrogates_.push_back(std::make_unique<ByteConvDetector>(
        "Surrogate-C", c, cfg_.seed + 303));
  }

  // Cache probe.
  const auto path = artifact_path("offline");
  if (cfg_.use_cache) {
    if (auto blob = util::load_file(path)) {
      try {
        util::Unarchive ar(*blob);
        malconv_->load(ar);
        nonneg_->load(ar);
        malgcg_->load(ar);
        lightgbm_->load(ar);
        lm_->load(ar);
        for (auto& s : surrogates_) s->load(ar);
        obs::logf(obs::LogLevel::Debug, "zoo: loaded offline models from %s",
                  path.string().c_str());
        return;
      } catch (const util::ParseError&) {
        obs::logf(obs::LogLevel::Warn,
                  "zoo: stale model cache %s, retraining",
                  path.string().c_str());
      }
    }
  }
  obs::logf(obs::LogLevel::Info,
            "zoo: training offline models (train=%zu test=%zu epochs=%d)",
            train_.samples.size(), test_.samples.size(), cfg_.net_epochs);
  OBS_SCOPE("zoo.train");

  // Train the target nets and surrogates in parallel, GBDT + LM here.
  NetTrainConfig tc;
  tc.epochs = cfg_.net_epochs;
  tc.seed = cfg_.seed + 10;
  // The attacker's corpus is *disjoint* from the defenders' training data
  // (different generator stream): surrogate transfer is not an artifact of
  // shared training sets.
  corpus::Dataset attacker_train = corpus::generate_dataset(
      cfg_.seed ^ 0xA77AC4, cfg_.train_malware / 2 + 150,
      cfg_.train_benign / 2 + 150);
  augment_structural_noise(attacker_train, cfg_.seed ^ 0xA07);
  std::vector<std::thread> workers;
  workers.emplace_back([&] { train_net(*malconv_, train_, tc); });
  workers.emplace_back([&] { train_net(*nonneg_, train_, tc); });
  workers.emplace_back([&] { train_net(*malgcg_, train_, tc); });
  for (auto& s : surrogates_)
    workers.emplace_back([&, sp = s.get()] {
      NetTrainConfig stc = tc;
      stc.seed ^= util::fnv1a64(std::string_view(sp->name()));
      train_net(*sp, attacker_train, stc);
    });
  train_gbdt(*lightgbm_, train_, cfg_.seed + 11);
  {
    util::Rng lm_rng(cfg_.seed + 12);
    for (int e = 0; e < cfg_.lm_epochs; ++e)
      lm_->train_epoch(pool_, cfg_.lm_windows, 2e-3f, lm_rng);
  }
  for (std::thread& t : workers) t.join();

  for (Detector* d : offline()) {
    calibrate_threshold(*d, train_, cfg_.target_fpr);
    obs::logf(obs::LogLevel::Debug, "zoo: %s calibrated, threshold %.4f",
              std::string(d->name()).c_str(), d->threshold());
  }
  for (auto& s : surrogates_)
    calibrate_threshold(*s, attacker_train, cfg_.target_fpr);

  if (cfg_.use_cache) {
    util::Archive ar;
    malconv_->save(ar);
    nonneg_->save(ar);
    malgcg_->save(ar);
    lightgbm_->save(ar);
    lm_->save(ar);
    for (auto& s : surrogates_) s->save(ar);
    util::save_file(path, ar.take());
  }
}

std::vector<ByteConvDetector*> ModelZoo::surrogates() const {
  std::vector<ByteConvDetector*> out;
  for (const auto& s : surrogates_) out.push_back(s.get());
  return out;
}

std::vector<Detector*> ModelZoo::offline() const {
  return {malconv_.get(), nonneg_.get(), lightgbm_.get(), malgcg_.get()};
}

Detector& ModelZoo::offline_by_name(std::string_view name) const {
  for (Detector* d : offline())
    if (d->name() == name) return *d;
  throw std::out_of_range("zoo: unknown detector " + std::string(name));
}

std::vector<ml::ByteConvNet*> ModelZoo::known_nets_excluding(
    std::string_view target) const {
  std::vector<ml::ByteConvNet*> nets;
  for (ByteConvDetector* d : {malconv_.get(), nonneg_.get(), malgcg_.get()})
    if (d->name() != target) nets.push_back(&d->net());
  for (const auto& s : surrogates_) nets.push_back(&s->net());
  return nets;
}

void ModelZoo::build_avs() {
  const auto path = artifact_path("avs");
  const auto profiles = default_av_profiles();
  if (cfg_.use_cache) {
    if (auto blob = util::load_file(path)) {
      try {
        util::Unarchive ar(*blob);
        std::vector<std::unique_ptr<CommercialAv>> loaded;
        for (const AvProfile& p : profiles) {
          auto av = std::make_unique<CommercialAv>(p, CommercialAv::Untrained{});
          av->load(ar);
          loaded.push_back(std::move(av));
        }
        avs_ = std::move(loaded);
        avs_built_ = true;
        obs::logf(obs::LogLevel::Debug, "zoo: loaded %zu AVs from cache",
                  avs_.size());
        return;
      } catch (const util::ParseError&) {
        obs::logf(obs::LogLevel::Warn, "zoo: stale AV cache %s, retraining",
                  path.string().c_str());
      }
    }
  }

  obs::logf(obs::LogLevel::Info, "zoo: training %zu commercial-AV simulators",
            profiles.size());
  OBS_SCOPE("zoo.train_avs");
  avs_.resize(profiles.size());
  std::vector<std::thread> workers;
  for (std::size_t i = 0; i < profiles.size(); ++i)
    workers.emplace_back([this, &profiles, i] {
      avs_[i] = std::make_unique<CommercialAv>(profiles[i], train_);
    });
  for (std::thread& t : workers) t.join();
  avs_built_ = true;

  if (cfg_.use_cache) {
    util::Archive ar;
    for (const auto& av : avs_) av->save(ar);
    util::save_file(path, ar.take());
  }
}

const std::vector<std::unique_ptr<CommercialAv>>& ModelZoo::avs() {
  if (!avs_built_) build_avs();
  return avs_;
}

EvalReport ModelZoo::eval_offline(std::string_view name) const {
  return evaluate(offline_by_name(name), test_);
}

}  // namespace mpass::detect
