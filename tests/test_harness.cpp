// Tests for the experiment harness: metric computation, sample gating,
// result-cache round-trips.
#include <gtest/gtest.h>

#include "harness/experiment.hpp"

namespace mpass::harness {
namespace {

using util::ByteBuf;

class SizeDetector : public detect::Detector {
 public:
  explicit SizeDetector(std::size_t threshold) : threshold_(threshold) {}
  std::string_view name() const override { return "size"; }
  double score(std::span<const std::uint8_t> bytes) const override {
    return bytes.size() < threshold_ ? 1.0 : 0.0;
  }
 private:
  std::size_t threshold_;
};

/// Scripted attack: succeeds on every other sample using a fixed number of
/// queries, never produces a functional check failure (AE = original).
class Scripted : public attack::Attack {
 public:
  std::string_view name() const override { return "scripted"; }
  attack::AttackResult run(std::span<const std::uint8_t> malware,
                           detect::HardLabelOracle& oracle,
                           std::uint64_t) override {
    attack::AttackResult r;
    r.adversarial.assign(malware.begin(), malware.end());
    oracle.query(r.adversarial);
    oracle.query(r.adversarial);
    r.queries = 2;
    r.success = (++calls_ % 2) == 1;
    r.apr = 0.5;
    return r;
  }
 private:
  int calls_ = 0;
};

TEST(Harness, RunCellComputesMetrics) {
  const SizeDetector det(1);  // never flags anything; irrelevant here
  Scripted atk;
  std::vector<ByteBuf> samples;
  for (int i = 0; i < 6; ++i)
    samples.push_back(corpus::make_malware(8800 + i).bytes());
  ExperimentConfig cfg;
  cfg.max_queries = 10;
  const CellStats stats = run_cell(atk, det, samples, samples, cfg);
  EXPECT_EQ(stats.n, 6u);
  EXPECT_EQ(stats.successes, 3u);
  EXPECT_DOUBLE_EQ(stats.asr, 50.0);
  EXPECT_DOUBLE_EQ(stats.avq, 2.0);
  EXPECT_DOUBLE_EQ(stats.apr, 50.0);
  // AE == original, so functionality is trivially preserved.
  EXPECT_DOUBLE_EQ(stats.functional, 100.0);
  EXPECT_EQ(stats.aes.size(), 3u);
}

TEST(Harness, MakeAttackSetOnlyReturnsDetectedSamples) {
  const SizeDetector strict(1 << 20);  // flags everything under 1 MiB
  const detect::Detector* gate[] = {&strict};
  const auto samples = make_attack_set(gate, 5, 77);
  EXPECT_EQ(samples.size(), 5u);
  for (const ByteBuf& s : samples) EXPECT_TRUE(strict.is_malicious(s));

  const SizeDetector impossible(0);  // flags nothing
  const detect::Detector* gate2[] = {&impossible};
  EXPECT_TRUE(make_attack_set(gate2, 3, 77).empty());
}

TEST(Harness, CellCacheRoundTrip) {
  ExperimentConfig cfg;
  cfg.seed = 987654;  // private cache slot for this test
  cfg.use_cache = true;
  std::vector<CellStats> cells(2);
  cells[0].attack = "A";
  cells[0].target = "T";
  cells[0].n = 10;
  cells[0].successes = 7;
  cells[0].asr = 70.0;
  cells[0].avq = 3.5;
  cells[0].apr = 120.0;
  cells[0].functional = 100.0;
  cells[0].aes = {ByteBuf{1, 2, 3}, ByteBuf{4, 5}};
  cells[1].attack = "B";
  cells[1].target = "T";
  save_cells("unittest", cfg, cells);
  const auto loaded = load_cells("unittest", cfg);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), 2u);
  EXPECT_EQ((*loaded)[0].attack, "A");
  EXPECT_EQ((*loaded)[0].successes, 7u);
  EXPECT_DOUBLE_EQ((*loaded)[0].avq, 3.5);
  EXPECT_EQ((*loaded)[0].aes[0], (ByteBuf{1, 2, 3}));
  EXPECT_EQ((*loaded)[1].attack, "B");

  ExperimentConfig other = cfg;
  other.seed = 123;  // digest changes -> cache miss
  EXPECT_FALSE(load_cells("unittest", other).has_value());
}

TEST(Harness, CsvExportWritesAllCells) {
  std::vector<CellStats> cells(2);
  cells[0] = {"MPass", "MalConv", 10, 9, 90.0, 2.5, 110.0, 100.0, {}, 0,
              0.0,     0.0,       {}};
  cells[1] = {"RLA", "MalConv", 10, 2, 20.0, 80.0, 400.0, 77.0, {}, 0,
              0.0,   0.0,       {}};
  const auto path = util::cache_dir() / "results" / "unittest.csv";
  export_csv(path, cells);
  const auto data = util::load_file(path);
  ASSERT_TRUE(data.has_value());
  const std::string text(data->begin(), data->end());
  EXPECT_NE(text.find("attack,target"), std::string::npos);
  EXPECT_NE(text.find("MPass,MalConv,10,9,90.00,2.50"), std::string::npos);
  EXPECT_NE(text.find("RLA"), std::string::npos);
}

TEST(Harness, ConfigDigestSensitivity) {
  ExperimentConfig a;
  ExperimentConfig b = a;
  EXPECT_EQ(a.digest(), b.digest());
  b.n_samples += 1;
  EXPECT_NE(a.digest(), b.digest());
}

}  // namespace
}  // namespace mpass::harness
