file(REMOVE_RECURSE
  "CMakeFiles/test_vm_apis.dir/test_vm_apis.cpp.o"
  "CMakeFiles/test_vm_apis.dir/test_vm_apis.cpp.o.d"
  "test_vm_apis"
  "test_vm_apis.pdb"
  "test_vm_apis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vm_apis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
