file(REMOVE_RECURSE
  "CMakeFiles/bench_advtrain.dir/bench_advtrain.cpp.o"
  "CMakeFiles/bench_advtrain.dir/bench_advtrain.cpp.o.d"
  "bench_advtrain"
  "bench_advtrain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_advtrain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
