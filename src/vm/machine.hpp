// MVM emulator: loads a PE32 image the way a real OS loader would (headers +
// sections mapped at image base), executes MVM code with section protections,
// and services syscalls against a simulated victim environment (in-memory
// filesystem, registry, network, process list).
//
// The emulator's *behavior trace* -- the sequence of effectful API calls with
// content digests -- is this repository's substitute for Cuckoo-sandbox API
// traces (see DESIGN.md): two samples are behaviorally equivalent iff their
// traces are identical.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "pe/pe.hpp"
#include "util/bytes.hpp"
#include "vm/api.hpp"

namespace mpass::vm {

/// One effectful API call: the api id plus a digest of its semantically
/// relevant arguments (including pointed-to memory contents).
struct Event {
  std::uint16_t api = 0;
  std::uint64_t digest = 0;
  bool operator==(const Event&) const = default;
};

using Trace = std::vector<Event>;

/// Outcome of an emulation run.
struct RunResult {
  Trace trace;
  bool halted = false;       // reached Halt/ExitProcess
  bool faulted = false;      // memory/decode/protection violation
  std::string fault_reason;  // empty unless faulted
  std::uint64_t steps = 0;   // instructions executed

  /// Clean termination within budget.
  bool ok() const { return halted && !faulted; }

  /// Number of sensitive API events in the trace.
  std::size_t sensitive_calls() const;

  /// Number of hard-malicious API events (see is_hard_malicious).
  std::size_t malicious_calls() const;
};

/// Emulator for one loaded sample. Construct, then run().
class Machine {
 public:
  /// Parses and maps the file. Throws util::ParseError if not valid PE32.
  explicit Machine(util::ByteBuf raw_file);

  /// Runs from the entry point for at most max_steps instructions.
  RunResult run(std::uint64_t max_steps = kDefaultFuel);

  static constexpr std::uint64_t kDefaultFuel = 2'000'000;

  // Memory map constants.
  static constexpr std::uint32_t kStackTop = 0x7F000000;
  static constexpr std::uint32_t kStackSize = 0x10000;
  static constexpr std::uint32_t kHeapBase = 0x60000000;
  static constexpr std::uint32_t kHeapSize = 0x100000;

  /// Victim filesystem contents after a run (for tests).
  const std::map<std::string, util::ByteBuf>& files() const { return fs_; }

 private:
  // ---- memory ----
  std::uint8_t* mem_ptr(std::uint32_t addr, std::uint32_t len);
  bool readable(std::uint32_t addr, std::uint32_t len);
  bool writable(std::uint32_t addr, std::uint32_t len);
  bool executable(std::uint32_t addr);
  std::uint8_t load8(std::uint32_t addr);
  std::uint32_t load32(std::uint32_t addr);
  void store8(std::uint32_t addr, std::uint8_t v);
  void store32(std::uint32_t addr, std::uint32_t v);
  std::string read_string(std::uint32_t ptr, std::uint32_t len);
  util::ByteBuf read_block(std::uint32_t ptr, std::uint32_t len);
  void write_block(std::uint32_t ptr, std::span<const std::uint8_t> data);

  // ---- execution ----
  void fault(std::string reason);
  void syscall(std::uint16_t api);
  void record(std::uint16_t api, std::uint64_t digest);

  util::ByteBuf raw_;             // original file bytes (ReadSelf)
  util::ByteBuf image_;           // mapped image (headers + sections)
  std::vector<std::uint8_t> prot_;  // per-byte prot bits of image_: 1=W 2=X
  util::ByteBuf stack_;
  util::ByteBuf heap_;
  std::uint32_t heap_brk_ = 0;
  std::uint32_t image_base_ = 0;
  std::uint32_t image_size_ = 0;

  std::uint32_t reg_[8] = {};
  std::uint32_t pc_ = 0;
  std::uint32_t sp_ = 0;

  RunResult result_;
  bool running_ = false;

  // Victim environment.
  std::map<std::string, util::ByteBuf> fs_;
  struct OpenFile {
    std::string name;
    std::uint32_t cursor = 0;
    bool open = false;
  };
  std::vector<OpenFile> handles_;
  std::vector<std::string> victim_files_;  // EnumFiles order
  std::size_t enum_cursor_ = 0;
  std::uint64_t rand_state_ = 0x243F6A8885A308D3ULL;
  std::uint32_t time_counter_ = 0x60000000;
  std::uint32_t next_sock_ = 1;
};

/// Trace equality (the functionality-preservation predicate).
bool traces_equal(const Trace& a, const Trace& b);

}  // namespace mpass::vm
