// Tests for the hierarchical span profiler (obs/span.hpp) and the
// perf-baseline pipeline behind tools/mpass_prof (obs/profile.hpp):
// call-path nesting and exact self-time accounting, invisibility of open
// spans, cross-thread propagation through util::ThreadPool under
// contention, Chrome trace-event JSON validity of the MPASS_PROFILE sink,
// and the compare/collect plumbing the CI perf gate runs on.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "obs/profile.hpp"
#include "obs/span.hpp"
#include "util/threadpool.hpp"

namespace mpass::obs {
namespace {

// Each test uses site names unique to it ("t.span.<test>...") so snapshots
// taken mid-suite are not polluted by other tests' spans.
std::map<std::string, SpanRow> rows_with_prefix(const std::string& prefix) {
  std::map<std::string, SpanRow> out;
  for (const SpanRow& r : span_snapshot())
    if (r.path.rfind(prefix, 0) == 0 ||
        r.path.find("/" + prefix) != std::string::npos)
      out[r.path] = r;
  return out;
}

void spin_for_ns(std::uint64_t ns) {
  const auto t0 = std::chrono::steady_clock::now();
  while (std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - t0)
             .count() < static_cast<std::int64_t>(ns)) {
  }
}

TEST(Span, NestingBuildsCallPathsNotSites) {
  {
    OBS_SCOPE("t.span.nest.outer");
    spin_for_ns(200000);
    for (int i = 0; i < 3; ++i) {
      OBS_SCOPE("t.span.nest.inner");
      spin_for_ns(100000);
    }
  }
  {
    // Same inner site at the top level: must land on a *different* path.
    OBS_SCOPE("t.span.nest.inner");
    spin_for_ns(50000);
  }

  const auto rows = rows_with_prefix("t.span.nest.");
  ASSERT_TRUE(rows.count("t.span.nest.outer"));
  ASSERT_TRUE(rows.count("t.span.nest.outer/t.span.nest.inner"));
  ASSERT_TRUE(rows.count("t.span.nest.inner"));

  const SpanRow& outer = rows.at("t.span.nest.outer");
  const SpanRow& nested = rows.at("t.span.nest.outer/t.span.nest.inner");
  const SpanRow& top = rows.at("t.span.nest.inner");
  EXPECT_EQ(outer.count, 1u);
  EXPECT_EQ(nested.count, 3u);
  EXPECT_EQ(top.count, 1u);
  EXPECT_EQ(top.depth, 1u);
  EXPECT_EQ(nested.depth, 2u);

  // Exact accounting: the outer path's child time IS the nested path's
  // total (only child), so outer self + nested total == outer total.
  EXPECT_EQ(outer.child_ns, nested.total_ns);
  EXPECT_EQ(outer.self_ns() + static_cast<std::int64_t>(outer.child_ns),
            static_cast<std::int64_t>(outer.total_ns));
  EXPECT_GE(outer.self_ns(), 200000);          // outer spun >= 200us itself
  EXPECT_GE(nested.total_ns, 3u * 100000u);    // 3 inner spins
  EXPECT_GT(outer.total_ns, outer.child_ns);
}

TEST(Span, DirectRecursionCollapsesOntoOnePath) {
  struct Rec {
    static void run(int depth) {
      OBS_SCOPE("t.span.rec");
      spin_for_ns(20000);
      if (depth > 0) run(depth - 1);
    }
  };
  Rec::run(8);

  const auto rows = rows_with_prefix("t.span.rec");
  ASSERT_EQ(rows.size(), 1u) << "recursive site must not grow the path table";
  const SpanRow& r = rows.begin()->second;
  EXPECT_EQ(r.count, 9u);
  // Self time stays exact: every frame's duration lands in total, every
  // nested frame's duration also lands in child, so self == outermost
  // frame's exclusive time... for a collapsed chain, self = total - child
  // where child counts the 8 nested frames against the same path.
  EXPECT_GE(r.self_ns(), 20000);
  EXPECT_LE(r.self_ns(), static_cast<std::int64_t>(r.total_ns));
}

TEST(Span, OpenSpansAreInvisibleUntilPopped) {
  const SpanSiteId site = span_site("t.span.open");
  {
    Span open(site);
    EXPECT_EQ(rows_with_prefix("t.span.open").size(), 0u)
        << "an un-popped span must not appear in snapshots";
  }
  const auto rows = rows_with_prefix("t.span.open");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows.begin()->second.count, 1u);
}

TEST(Span, CrossThreadPropagationUnderContention) {
  util::ThreadPool pool(4);
  static constexpr int kSubmitters = 4;
  static constexpr int kTasksPer = 64;

  // Several submitting threads, each inside its own span, all hammering the
  // same pool: every task must record under its *submitter's* call path no
  // matter which worker (or helping waiter) executed it.
  std::vector<std::thread> submitters;
  for (int s = 0; s < kSubmitters; ++s)
    submitters.emplace_back([&pool, s] {
      // Not OBS_SCOPE: its per-site static would pin the first submitter's
      // name for all four threads. Intern each root site explicitly.
      const SpanSiteId site =
          span_site("t.span.cross" + std::to_string(s));
      const Span root_span(site);
      std::vector<std::future<int>> futs;
      futs.reserve(kTasksPer);
      for (int i = 0; i < kTasksPer; ++i)
        futs.push_back(pool.submit([] {
          OBS_SCOPE("t.span.leaf");
          spin_for_ns(5000);
          return 1;
        }));
      int acc = 0;
      for (auto& f : futs) acc += pool.wait(std::move(f));
      EXPECT_EQ(acc, kTasksPer);
    });
  for (std::thread& t : submitters) t.join();

  for (int s = 0; s < kSubmitters; ++s) {
    const std::string root = "t.span.cross" + std::to_string(s);
    const auto rows = rows_with_prefix(root);
    ASSERT_TRUE(rows.count(root)) << root;
    ASSERT_TRUE(rows.count(root + "/pool.task")) << root;
    ASSERT_TRUE(rows.count(root + "/pool.task/t.span.leaf")) << root;

    const SpanRow& task = rows.at(root + "/pool.task");
    const SpanRow& leaf = rows.at(root + "/pool.task/t.span.leaf");
    EXPECT_EQ(task.count, static_cast<std::uint64_t>(kTasksPer));
    EXPECT_EQ(leaf.count, static_cast<std::uint64_t>(kTasksPer));
    // Merged self-times stay exact per call path even though the frames
    // were pushed/popped on many different threads: the task path's child
    // time is exactly the leaf path's total.
    EXPECT_EQ(task.child_ns, leaf.total_ns);
    EXPECT_EQ(task.self_ns() + static_cast<std::int64_t>(task.child_ns),
              static_cast<std::int64_t>(task.total_ns));
    EXPECT_GE(leaf.total_ns, static_cast<std::uint64_t>(kTasksPer) * 5000u);
  }
}

TEST(Span, SnapshotIsDeterministicallySorted) {
  {
    OBS_SCOPE("t.span.sortb");
  }
  {
    OBS_SCOPE("t.span.sorta");
  }
  const std::vector<SpanRow> rows = span_snapshot();
  for (std::size_t i = 1; i < rows.size(); ++i)
    EXPECT_LT(rows[i - 1].path, rows[i].path);
  const std::string json = spans_to_json(rows);
  const auto doc = Json::parse(json);
  ASSERT_TRUE(doc.has_value());
  const Json* version = doc->get("schema_version");
  ASSERT_TRUE(version && version->is_number());
  EXPECT_EQ(version->number(), 1.0);
  const auto parsed = parse_spans(*doc);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->size(), rows.size());
}

TEST(Span, ChromeProfileIsValidAndNested) {
  const std::filesystem::path out =
      std::filesystem::temp_directory_path() / "mpass_test_profile.json";
  std::filesystem::remove(out);
  set_profile_path(out);
  ASSERT_TRUE(profiling());

  util::ThreadPool pool(2);
  {
    OBS_SCOPE("t.span.prof.outer");
    {
      OBS_SCOPE("t.span.prof.inner");
      spin_for_ns(100000);
    }
    auto fut = pool.submit([] {
      OBS_SCOPE("t.span.prof.task");
      spin_for_ns(50000);
      return 7;
    });
    EXPECT_EQ(pool.wait(std::move(fut)), 7);
  }
  flush_profile();
  set_profile_path(std::nullopt);  // stop recording for the rest of the suite

  std::ifstream in(out, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  const auto doc = Json::parse(text);
  ASSERT_TRUE(doc.has_value()) << "profile must be valid JSON";
  const Json* unit = doc->get("displayTimeUnit");
  ASSERT_TRUE(unit && unit->is_string());
  EXPECT_EQ(unit->str(), "ms");
  const Json* events = doc->get("traceEvents");
  ASSERT_TRUE(events && events->is_array());

  struct Ev {
    std::string name;
    double ts = 0.0, dur = 0.0, tid = -1.0;
  };
  std::vector<Ev> complete;
  std::size_t flow_starts = 0, flow_finishes = 0, metas = 0;
  for (const Json& e : events->items()) {
    const Json* ph = e.get("ph");
    ASSERT_TRUE(ph && ph->is_string());
    ASSERT_TRUE(e.get("pid") && e.get("pid")->is_number());
    if (ph->str() == "X") {
      Ev ev;
      ev.name = e.get("name")->str();
      ev.ts = e.get("ts")->number();
      ev.dur = e.get("dur")->number();
      ev.tid = e.get("tid")->number();
      complete.push_back(ev);
    } else if (ph->str() == "s") {
      ++flow_starts;
      ASSERT_TRUE(e.get("id") && e.get("id")->is_number());
    } else if (ph->str() == "f") {
      ++flow_finishes;
      const Json* bp = e.get("bp");
      ASSERT_TRUE(bp && bp->is_string());
      EXPECT_EQ(bp->str(), "e");
    } else {
      EXPECT_EQ(ph->str(), "M");
      ++metas;
    }
  }
  EXPECT_GE(metas, 1u);  // process/thread names
  EXPECT_GE(flow_starts, 1u) << "pool submit must emit a flow start";
  EXPECT_GE(flow_finishes, 1u) << "pool execute must emit a flow finish";

  const auto find = [&](const std::string& name) -> const Ev* {
    for (const Ev& e : complete)
      if (e.name == name) return &e;
    return nullptr;
  };
  const Ev* outer = find("t.span.prof.outer");
  const Ev* inner = find("t.span.prof.inner");
  const Ev* task = find("t.span.prof.task");
  ASSERT_TRUE(outer && inner && task);
  // Nesting: inner lies within outer's interval on the same thread.
  EXPECT_EQ(inner->tid, outer->tid);
  EXPECT_GE(inner->ts, outer->ts);
  EXPECT_LE(inner->ts + inner->dur, outer->ts + outer->dur + 1.0);
  EXPECT_GE(inner->dur, 100.0);  // spun 100us -> dur is in us
  EXPECT_GE(task->dur, 50.0);
}

// ---- perf-baseline pipeline -------------------------------------------------

Json parse_or_die(const std::string& text) {
  auto doc = Json::parse(text);
  EXPECT_TRUE(doc.has_value()) << text;
  return *doc;
}

const char* kBenchA =
    R"({"schema_version":1,"bench":"alpha","wall_ms":100.0,"spans":[
        {"path":"a","count":10,"total_ms":90.0,"self_ms":40.0,"child_ms":50.0},
        {"path":"a/b","count":10,"total_ms":50.0,"self_ms":50.0,"child_ms":0}]})";

TEST(Profile, CompareIdenticalPasses) {
  const Json doc = parse_or_die(kBenchA);
  const ProfCompareResult r = compare_profiles(doc, doc, {});
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.regressions.size(), 0u);
  EXPECT_GE(r.compared, 3u);  // wall + two span paths
}

TEST(Profile, CompareDetectsRegressionAboveThreshold) {
  const Json base = parse_or_die(kBenchA);
  const Json cur = parse_or_die(
      R"({"schema_version":1,"bench":"alpha","wall_ms":150.0,"spans":[
          {"path":"a","count":10,"total_ms":140.0,"self_ms":40.0,"child_ms":100.0},
          {"path":"a/b","count":10,"total_ms":100.0,"self_ms":100.0,"child_ms":0}]})");
  ProfCompareOptions opts;
  opts.threshold = 0.20;
  const ProfCompareResult r = compare_profiles(base, cur, opts);
  EXPECT_FALSE(r.ok());
  ASSERT_EQ(r.regressions.size(), 2u);  // wall 1.5x and a/b self 2.0x
  EXPECT_EQ(r.regressions[0].ratio, 2.0);  // sorted worst-first
  EXPECT_EQ(r.regressions[0].kind, "span-self");
  EXPECT_EQ(r.regressions[1].kind, "bench-wall");
  // "a" self stayed at 40 -> not a regression.
  const std::string rendered = render_compare(r, opts);
  EXPECT_NE(rendered.find("REGRESSION"), std::string::npos);
  EXPECT_NE(rendered.find("FAIL"), std::string::npos);
}

TEST(Profile, CompareIgnoresSeriesBelowMinMs) {
  const Json base = parse_or_die(
      R"({"bench":"b","wall_ms":2.0,"spans":[
          {"path":"x","count":1,"total_ms":2.0,"self_ms":2.0}]})");
  const Json cur = parse_or_die(
      R"({"bench":"b","wall_ms":9.0,"spans":[
          {"path":"x","count":1,"total_ms":9.0,"self_ms":9.0}]})");
  ProfCompareOptions opts;
  opts.min_ms = 10.0;
  const ProfCompareResult r = compare_profiles(base, cur, opts);
  EXPECT_TRUE(r.ok()) << "sub-min_ms jitter must not fail the gate";
  EXPECT_EQ(r.compared, 0u);
}

TEST(Profile, CompareHandlesSummaryDocuments) {
  const std::string summary_base =
      std::string(R"({"schema_version":1,"benches":{"alpha":)") + kBenchA +
      "}}";
  const Json base = parse_or_die(summary_base);
  const Json cur = parse_or_die(kBenchA);  // single-bench doc, same data
  const ProfCompareResult r = compare_profiles(base, cur, {});
  EXPECT_TRUE(r.ok());
  EXPECT_GE(r.compared, 3u);
}

TEST(Profile, ParseSpansAcceptsAllThreeShapes) {
  const char* arr =
      R"([{"path":"p","count":1,"total_ms":1.0,"self_ms":1.0}])";
  EXPECT_TRUE(parse_spans(parse_or_die(arr)).has_value());
  EXPECT_TRUE(parse_spans(parse_or_die(
                              R"({"spans":[]})"))
                  .has_value());
  EXPECT_TRUE(parse_spans(parse_or_die(kBenchA)).has_value());
  EXPECT_FALSE(parse_spans(parse_or_die(R"({"nope":1})")).has_value());
}

TEST(Profile, RenderersProduceOutput) {
  const auto rows = parse_spans(parse_or_die(kBenchA));
  ASSERT_TRUE(rows.has_value());
  EXPECT_NE(render_span_top(*rows).find("a/b"), std::string::npos);
  const std::string tree = render_span_tree(*rows);
  EXPECT_NE(tree.find("b"), std::string::npos);
  const std::string chrome = chrome_from_spans(*rows);
  const auto doc = Json::parse(chrome);
  ASSERT_TRUE(doc.has_value());
  ASSERT_TRUE(doc->get("traceEvents"));
  EXPECT_GE(doc->get("traceEvents")->items().size(), 2u);
}

TEST(Profile, CollectBenchDirMergesAndValidates) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "mpass_test_benchdir";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const auto write = [&](const char* name, const std::string& text) {
    std::ofstream(dir / name, std::ios::binary) << text;
  };
  write("BENCH_alpha.json", kBenchA);
  write("BENCH_beta.json",
        R"({"schema_version":1,"bench":"beta","wall_ms":5.0,"spans":[]})");
  write("not_a_bench.txt", "ignored");

  std::string error;
  const auto summary =
      collect_bench_dir(dir, {"alpha", "beta"}, &error);
  ASSERT_TRUE(summary.has_value()) << error;
  const Json doc = parse_or_die(*summary);
  ASSERT_TRUE(doc.get("benches"));
  EXPECT_EQ(doc.get("benches")->fields().size(), 2u);
  EXPECT_TRUE(doc.get("benches")->get("alpha"));
  EXPECT_TRUE(doc.get("benches")->get("beta"));

  // A missing expected bench is an error, never silently skipped.
  EXPECT_FALSE(collect_bench_dir(dir, {"alpha", "gamma"}, &error));
  EXPECT_NE(error.find("gamma"), std::string::npos);

  // An unparsable bench file fails the whole collection.
  write("BENCH_broken.json", "{nope");
  EXPECT_FALSE(collect_bench_dir(dir, {}, &error));
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace mpass::obs
