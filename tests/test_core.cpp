// Tests for the MPass core: recovery stub + shuffle strategy, modification
// engine (positions I / key map J), and the ensemble optimizer invariants.
#include <gtest/gtest.h>

#include "core/mpass.hpp"
#include "corpus/generator.hpp"
#include "detectors/models.hpp"
#include "detectors/training.hpp"
#include "isa/isa.hpp"
#include "util/hashing.hpp"
#include "vm/sandbox.hpp"

namespace mpass::core {
namespace {

using util::ByteBuf;

ByteBuf donor_bytes(std::uint64_t seed = 1000) {
  return corpus::make_benign(seed).bytes();
}

// Property sweep: the modification preserves functionality across random
// malware, with and without the shuffle strategy.
struct ModCase {
  std::uint64_t seed;
  bool shuffle;
};

class ModificationPreserves : public ::testing::TestWithParam<ModCase> {};

TEST_P(ModificationPreserves, TraceIdentical) {
  const auto [seed, shuffle] = GetParam();
  const ByteBuf orig = corpus::make_malware(seed).bytes();
  util::Rng rng(seed ^ 0xF00D);
  ModificationConfig cfg;
  cfg.stub.shuffle = shuffle;
  const ModifiedSample mod =
      apply_modification(orig, donor_bytes(), cfg, rng);
  const vm::Sandbox sandbox;
  EXPECT_TRUE(sandbox.functionality_preserved(orig, mod.bytes));
  EXPECT_GT(mod.apr, 0.2);
  EXPECT_LT(mod.apr, 3.0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ModificationPreserves,
    ::testing::Values(ModCase{1, true}, ModCase{2, true}, ModCase{3, true},
                      ModCase{4, true}, ModCase{5, true}, ModCase{6, false},
                      ModCase{7, false}, ModCase{8, false}));

TEST(Modification, SetByteKeepsRecoveredContentInvariant) {
  const ByteBuf orig = corpus::make_malware(99).bytes();
  util::Rng rng(7);
  ModifiedSample mod =
      apply_modification(orig, donor_bytes(), ModificationConfig{}, rng);
  // Hammer random perturbable positions with random values.
  for (int i = 0; i < 500; ++i)
    mod.set_byte(mod.perturbable[rng.below(mod.perturbable.size())],
                 rng.byte());
  const vm::Sandbox sandbox;
  EXPECT_TRUE(sandbox.functionality_preserved(orig, mod.bytes));
}

TEST(Modification, PerturbablePositionsAreSortedUniqueInRange) {
  const ByteBuf orig = corpus::make_malware(123).bytes();
  util::Rng rng(11);
  const ModifiedSample mod =
      apply_modification(orig, donor_bytes(), ModificationConfig{}, rng);
  ASSERT_FALSE(mod.perturbable.empty());
  for (std::size_t i = 1; i < mod.perturbable.size(); ++i)
    EXPECT_LT(mod.perturbable[i - 1], mod.perturbable[i]);
  EXPECT_LT(mod.perturbable.back(), mod.bytes.size());
  // Every key offset is inside the file and not itself perturbable-mapped.
  for (const auto& [pos, key] : mod.key_of) {
    EXPECT_LT(key, mod.bytes.size());
    EXPECT_FALSE(mod.key_of.contains(key));
  }
}

TEST(Modification, EncodedSectionsCarryDonorContent) {
  // After encoding, the code section bytes must differ from the original
  // (benign content now) yet recover at runtime (checked elsewhere).
  const corpus::CompiledSample s = corpus::make_malware(321);
  const ByteBuf orig = s.bytes();
  util::Rng rng(13);
  const ModifiedSample mod =
      apply_modification(orig, donor_bytes(), ModificationConfig{}, rng);
  const pe::PeFile before = pe::PeFile::parse(orig);
  const pe::PeFile after = pe::PeFile::parse(mod.bytes);
  const auto idx = before.find_section(before.sections[0].name);
  ASSERT_TRUE(idx.has_value());
  std::size_t diff = 0;
  const auto& a = before.sections[0].data;
  const auto& b = after.sections[0].data;
  for (std::size_t i = 0; i < std::min(a.size(), b.size()); ++i)
    diff += a[i] != b[i];
  // Donor slices can coincide with original bytes (both are programs), but
  // a substantial share of the section must have been rewritten.
  EXPECT_GT(diff, a.size() / 8);
}

TEST(Modification, OtherSecModeLeavesCodeAndDataAlone) {
  const ByteBuf orig = corpus::make_malware(555).bytes();
  util::Rng rng(17);
  ModificationConfig cfg;
  cfg.targets = TargetMode::OtherSec;
  const ModifiedSample mod =
      apply_modification(orig, donor_bytes(), cfg, rng);
  const pe::PeFile before = pe::PeFile::parse(orig);
  const pe::PeFile after = pe::PeFile::parse(mod.bytes);
  // Executable section content unchanged.
  EXPECT_EQ(before.sections[0].data, after.sections[0].data);
  const vm::Sandbox sandbox;
  EXPECT_TRUE(sandbox.functionality_preserved(orig, mod.bytes));
}

TEST(Modification, ShuffleRandomizesStubLayout) {
  const ByteBuf orig = corpus::make_malware(777).bytes();
  util::Rng rng1(1), rng2(2);
  const ModifiedSample m1 =
      apply_modification(orig, donor_bytes(), ModificationConfig{}, rng1);
  const ModifiedSample m2 =
      apply_modification(orig, donor_bytes(), ModificationConfig{}, rng2);
  // Same malware + same donor, different seeds -> different recovery
  // sections (the anti-signature property behind Fig. 4).
  const ByteBuf s1(m1.bytes.begin() + m1.recovery_section_off,
                   m1.bytes.begin() + m1.recovery_section_off +
                       m1.recovery_section_len);
  const ByteBuf s2(m2.bytes.begin() + m2.recovery_section_off,
                   m2.bytes.begin() + m2.recovery_section_off +
                       m2.recovery_section_len);
  EXPECT_NE(s1, s2);
}

TEST(Modification, RejectsNonPe) {
  util::Rng rng(19);
  const ByteBuf junk(500, 0x42);
  EXPECT_THROW(
      apply_modification(junk, donor_bytes(), ModificationConfig{}, rng),
      util::ParseError);
}

TEST(Recovery, NoShuffleStubIsContiguous) {
  // Without shuffle there must be no gaps: free ranges = tail filler only.
  RegionPlan region{0x401000, 64, 3};
  ByteBuf key(64, 7);
  util::Rng rng(23);
  StubOptions opts;
  opts.shuffle = false;
  opts.lead_filler = 128;
  const ByteBuf filler(256, 0xAB);
  const RecoverySection sec = build_recovery_section(
      {&region, 1}, {&key, 1}, 0x403000, 0x401000, filler, opts, rng);
  EXPECT_EQ(sec.free_ranges.size(), 1u);  // just the lead filler
  EXPECT_EQ(sec.free_ranges[0].second, 128u);
  EXPECT_EQ(sec.free_ranges[0].first, 0u);
}

TEST(Recovery, ShuffledStubHasGapsAndValidEntry) {
  RegionPlan region{0x401000, 64, 3};
  ByteBuf key(64, 7);
  util::Rng rng(29);
  StubOptions opts;  // shuffle on
  opts.lead_filler = 64;
  const ByteBuf filler(256, 0xCD);
  const RecoverySection sec = build_recovery_section(
      {&region, 1}, {&key, 1}, 0x403000, 0x401000, filler, opts, rng);
  EXPECT_GT(sec.free_ranges.size(), 3u);
  EXPECT_LT(sec.entry_offset, sec.data.size());
  // Keys go last: the key block starts after the stub + filler and reaches
  // the end of the section.
  ASSERT_EQ(sec.key_offsets.size(), 1u);
  EXPECT_EQ(sec.key_offsets[0] + key.size(), sec.data.size());
  // The stored key bytes are intact.
  for (std::size_t i = 0; i < key.size(); ++i)
    EXPECT_EQ(sec.data[sec.key_offsets[0] + i], 7);
  // The instruction at the entry must decode.
  util::ByteReader r({sec.data.data() + sec.entry_offset,
                      sec.data.size() - sec.entry_offset});
  EXPECT_NO_THROW(isa::decode(r));
}

TEST(Recovery, MismatchedKeysRejected) {
  RegionPlan region{0x401000, 64, 3};
  ByteBuf key(32, 7);  // wrong length
  util::Rng rng(31);
  const ByteBuf filler(64, 0);
  EXPECT_THROW(build_recovery_section({&region, 1}, {&key, 1}, 0x403000,
                                      0x401000, filler, {}, rng),
               std::logic_error);
}

// ---- optimizer ------------------------------------------------------------------

class TinyNetFixture : public ::testing::Test {
 protected:
  static ml::ByteConvConfig tiny() {
    ml::ByteConvConfig cfg;
    cfg.max_len = 8192;
    cfg.embed_dim = 4;
    cfg.filters = 6;
    cfg.width = 16;
    cfg.stride = 8;
    cfg.hidden = 6;
    return cfg;
  }

  void SetUp() override {
    const corpus::Dataset data = corpus::generate_dataset(900, 20, 20);
    det_ = std::make_unique<detect::ByteConvDetector>("tiny", tiny(), 5);
    detect::NetTrainConfig tc;
    tc.epochs = 3;
    detect::train_net(*det_, data, tc);
    detect::calibrate_threshold(*det_, data, 0.05);
  }

  std::unique_ptr<detect::ByteConvDetector> det_;
};

TEST_F(TinyNetFixture, OptimizerStepReturnsLossOfKeptState) {
  const ByteBuf orig = corpus::make_malware(888).bytes();
  util::Rng rng(37);
  ModifiedSample mod =
      apply_modification(orig, donor_bytes(), ModificationConfig{}, rng);
  EnsembleOptimizer opt({&det_->net()});
  const float initial = opt.ensemble_loss(mod.bytes);
  float best = initial;
  for (int i = 0; i < 4; ++i) {
    const float loss = opt.step(mod);
    // The returned loss must describe the exact byte state step() left
    // behind -- it used to report a stale base loss when the exploratory
    // fallback fired (loss can legitimately *increase* on such steps).
    EXPECT_EQ(loss, opt.ensemble_loss(mod.bytes));
    best = std::min(best, loss);
  }
  // Weak progress: the best state seen is no worse than the start.
  EXPECT_LE(best, initial + 1e-3f);
}

TEST_F(TinyNetFixture, SetByteRollbackRestoresExactBytes) {
  const ByteBuf orig = corpus::make_malware(887).bytes();
  util::Rng rng(53);
  ModifiedSample mod =
      apply_modification(orig, donor_bytes(), ModificationConfig{}, rng);
  ASSERT_FALSE(mod.perturbable.empty());
  const std::uint64_t before = util::fnv1a64(mod.bytes);

  // Apply a burst of random writes (recording prior values), then roll them
  // back in reverse: the sample must be digest-identical, including every
  // key-coupled byte set_byte co-updates. This is the invariant the
  // optimizer's line-search rollback (a rejected proposal) relies on.
  struct Write {
    std::uint32_t pos;
    std::uint8_t old_value;
  };
  std::vector<Write> writes;
  for (int i = 0; i < 200; ++i) {
    const std::uint32_t p = mod.perturbable[rng.below(mod.perturbable.size())];
    writes.push_back({p, mod.bytes[p]});
    mod.set_byte(p, rng.byte());
  }
  for (auto it = writes.rbegin(); it != writes.rend(); ++it)
    mod.set_byte(it->pos, it->old_value);
  EXPECT_EQ(util::fnv1a64(mod.bytes), before);
}

TEST_F(TinyNetFixture, OptimizerIncrementalMatchesFullRecompute) {
  // Two identical nets and samples; one optimizer runs the incremental
  // line search, the other the MPASS_NO_INCREMENTAL escape hatch. Byte
  // digests and returned losses must agree exactly at every step.
  ml::ByteConvNet full_net(det_->net());
  full_net.set_incremental(false);

  const ByteBuf orig = corpus::make_malware(886).bytes();
  auto make_mod = [&] {
    util::Rng rng(61);
    return apply_modification(orig, donor_bytes(), ModificationConfig{}, rng);
  };
  ModifiedSample inc_mod = make_mod();
  ModifiedSample full_mod = make_mod();
  ASSERT_EQ(util::fnv1a64(inc_mod.bytes), util::fnv1a64(full_mod.bytes));

  EnsembleOptimizer inc_opt({&det_->net()});
  inc_opt.set_incremental(true);
  EnsembleOptimizer full_opt({&full_net});
  full_opt.set_incremental(false);
  ASSERT_FALSE(full_opt.incremental());

  for (int i = 0; i < 4; ++i) {
    const float inc_loss = inc_opt.step(inc_mod);
    const float full_loss = full_opt.step(full_mod);
    EXPECT_EQ(inc_loss, full_loss) << "step " << i;
    EXPECT_EQ(util::fnv1a64(inc_mod.bytes), util::fnv1a64(full_mod.bytes))
        << "step " << i;
  }
}

TEST_F(TinyNetFixture, OptimizerPreservesFunctionality) {
  const ByteBuf orig = corpus::make_malware(889).bytes();
  util::Rng rng(41);
  ModifiedSample mod =
      apply_modification(orig, donor_bytes(), ModificationConfig{}, rng);
  EnsembleOptimizer opt({&det_->net()});
  for (int i = 0; i < 3; ++i) opt.step(mod);
  const vm::Sandbox sandbox;
  EXPECT_TRUE(sandbox.functionality_preserved(orig, mod.bytes));
}

TEST_F(TinyNetFixture, WhiteBoxAttackSucceeds) {
  // Known model == target: MPass must bypass within the budget on a sample
  // the detector flags.
  std::vector<ByteBuf> pool = {donor_bytes(1), donor_bytes(2)};
  Mpass attack({}, pool, {&det_->net()});
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const ByteBuf sample = corpus::make_malware(7100 + seed).bytes();
    if (!det_->is_malicious(sample)) continue;
    detect::HardLabelOracle oracle(*det_, 100);
    const MpassResult r = attack.run(sample, oracle, 5);
    EXPECT_TRUE(r.success);
    EXPECT_GE(r.queries, 1u);
    if (r.success) {
      EXPECT_FALSE(det_->is_malicious(r.adversarial));
      const vm::Sandbox sandbox;
      EXPECT_TRUE(sandbox.functionality_preserved(sample, r.adversarial));
    }
    return;
  }
  GTEST_SKIP() << "tiny detector flagged no sample";
}

TEST(Optimizer, RequiresNonEmptyEnsemble) {
  EXPECT_THROW(EnsembleOptimizer({}), std::invalid_argument);
}

TEST(Mpass, RandomContentModeQueriesUntilBudget) {
  // Against an always-malicious detector, random-content mode must consume
  // the full budget and fail.
  class Always : public detect::Detector {
   public:
    std::string_view name() const override { return "always"; }
    double score(std::span<const std::uint8_t>) const override { return 1.0; }
  };
  Always det;
  std::vector<ByteBuf> pool = {donor_bytes(3)};
  MpassConfig cfg;
  cfg.random_content = true;
  cfg.optimize = false;
  Mpass attack(cfg, pool, {});
  detect::HardLabelOracle oracle(det, 10);
  const ByteBuf sample = corpus::make_malware(4242).bytes();
  const MpassResult r = attack.run(sample, oracle, 1);
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.queries, 10u);
}

}  // namespace
}  // namespace mpass::core
