#include "detectors/training.hpp"

#include "util/stats.hpp"

namespace mpass::detect {

EvalReport evaluate(const Detector& detector, const corpus::Dataset& data) {
  std::vector<double> scores;
  std::vector<int> labels;
  scores.reserve(data.samples.size());
  for (const corpus::Sample& s : data.samples) {
    scores.push_back(detector.score(s.bytes));
    labels.push_back(s.label);
  }
  const util::Confusion c =
      util::confusion_at(scores, labels, detector.threshold());
  EvalReport r;
  r.accuracy = c.accuracy();
  r.tpr = c.tpr();
  r.fpr = c.fpr();
  r.auc = util::auc(scores, labels);
  return r;
}

void calibrate_threshold(Detector& detector, const corpus::Dataset& data,
                         double max_fpr) {
  std::vector<double> scores;
  std::vector<int> labels;
  for (const corpus::Sample& s : data.samples) {
    scores.push_back(detector.score(s.bytes));
    labels.push_back(s.label);
  }
  detector.set_threshold(util::threshold_for_fpr(scores, labels, max_fpr));
}

float train_net(ByteConvDetector& detector, const corpus::Dataset& train,
                const NetTrainConfig& cfg) {
  ml::ByteConvNet& net = detector.net();
  ml::Adam opt(net.params(), cfg.lr);
  util::Rng rng(cfg.seed);

  std::vector<std::size_t> order(train.samples.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  float last_epoch_loss = 0.0f;
  for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
    rng.shuffle(order);
    double epoch_loss = 0.0;
    int in_batch = 0;
    for (std::size_t idx : order) {
      const corpus::Sample& s = train.samples[idx];
      net.forward(s.bytes);
      epoch_loss += net.backward(static_cast<float>(s.label));
      if (++in_batch == cfg.batch) {
        opt.step();
        net.clamp_nonneg();
        in_batch = 0;
      }
    }
    if (in_batch > 0) {
      opt.step();
      net.clamp_nonneg();
    }
    last_epoch_loss =
        static_cast<float>(epoch_loss / static_cast<double>(order.size()));
  }
  return last_epoch_loss;
}

void train_gbdt(GbdtDetector& detector, const corpus::Dataset& train,
                std::uint64_t seed) {
  std::vector<std::vector<float>> x;
  std::vector<int> y;
  x.reserve(train.samples.size());
  for (const corpus::Sample& s : train.samples) {
    x.push_back(detector.features(s.bytes));
    y.push_back(s.label);
  }
  detector.gbdt().fit(x, y, seed);
}

}  // namespace mpass::detect
