// Unit + property tests for the MVM instruction set and assembler.
#include <gtest/gtest.h>

#include "isa/isa.hpp"
#include "util/rng.hpp"

namespace mpass::isa {
namespace {

using util::ByteBuf;
using util::ByteReader;
using util::ByteWriter;

Instr random_instr(util::Rng& rng) {
  Instr in;
  in.op = static_cast<Op>(rng.below(kMaxOpcode + 1));
  in.a = static_cast<Reg>(rng.below(kNumRegs));
  in.b = static_cast<Reg>(rng.below(kNumRegs));
  in.imm = static_cast<std::uint32_t>(rng());
  if (in.op == Op::Sys) in.imm &= 0xFFFF;
  in.rel = static_cast<std::int32_t>(rng());
  // Normalize fields the encoding does not carry, for equality comparison.
  switch (in.op) {
    case Op::Nop: case Op::Halt: case Op::Ret:
      in = Instr{in.op};
      break;
    case Op::Movi: case Op::Addi:
      in.b = Reg::r0; in.rel = 0;
      break;
    case Op::Jmp: case Op::Call:
      in.a = Reg::r0; in.b = Reg::r0; in.imm = 0;
      break;
    case Op::Jz: case Op::Jnz:
      in.b = Reg::r0; in.imm = 0;
      break;
    case Op::Jlt:
      in.imm = 0;
      break;
    case Op::Push: case Op::Pop:
      in.b = Reg::r0; in.imm = 0; in.rel = 0;
      break;
    case Op::Sys:
      in.a = Reg::r0; in.b = Reg::r0; in.rel = 0;
      break;
    default:
      in.imm = 0; in.rel = 0;
      break;
  }
  return in;
}

// Property: encode/decode round-trips for random instruction streams.
class IsaRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IsaRoundTrip, EncodeDecodeIdentity) {
  util::Rng rng(GetParam());
  std::vector<Instr> prog;
  for (int i = 0; i < 200; ++i) prog.push_back(random_instr(rng));
  const ByteBuf code = encode_all(prog);

  std::vector<std::size_t> offsets;
  const std::vector<Instr> decoded = decode_all(code, &offsets);
  ASSERT_EQ(decoded.size(), prog.size());
  for (std::size_t i = 0; i < prog.size(); ++i)
    EXPECT_EQ(decoded[i], prog[i]) << "instr " << i;

  // Offsets must match cumulative instruction lengths.
  std::size_t off = 0;
  for (std::size_t i = 0; i < prog.size(); ++i) {
    EXPECT_EQ(offsets[i], off);
    off += instr_length(prog[i].op);
  }
  EXPECT_EQ(off, code.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, IsaRoundTrip,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(Isa, DecodeRejectsBadOpcode) {
  const ByteBuf code = {0x7F};
  ByteReader r(code);
  EXPECT_THROW(decode(r), util::ParseError);
}

TEST(Isa, DecodeRejectsBadRegister) {
  const ByteBuf code = {static_cast<std::uint8_t>(Op::Movr), 0x09, 0x00};
  ByteReader r(code);
  EXPECT_THROW(decode(r), util::ParseError);
}

TEST(Isa, DecodeRejectsTruncation) {
  const ByteBuf code = {static_cast<std::uint8_t>(Op::Movi), 0x01};
  ByteReader r(code);
  EXPECT_THROW(decode(r), util::ParseError);
}

TEST(Isa, LengthsMatchEncoding) {
  util::Rng rng(99);
  for (int i = 0; i < 100; ++i) {
    const Instr in = random_instr(rng);
    ByteWriter w;
    encode(in, w);
    EXPECT_EQ(w.size(), instr_length(in.op)) << to_string(in);
  }
}

TEST(Assembler, ForwardAndBackwardBranches) {
  Assembler a;
  const auto top = a.make_label();
  const auto end = a.make_label();
  a.movi(Reg::r0, 3);
  a.bind(top);
  a.jz(Reg::r0, end);     // forward branch
  a.movi(Reg::r1, 1);
  a.sub(Reg::r0, Reg::r1);
  a.jmp(top);             // backward branch
  a.bind(end);
  a.halt();
  const ByteBuf code = a.finish();
  EXPECT_TRUE(branches_well_formed(code));

  // Check the resolved displacements by decoding.
  const auto prog = decode_all(code);
  ASSERT_EQ(prog.size(), 6u);
  EXPECT_EQ(prog[1].op, Op::Jz);
  EXPECT_GT(prog[1].rel, 0);   // forward
  EXPECT_EQ(prog[4].op, Op::Jmp);
  EXPECT_LT(prog[4].rel, 0);   // backward
}

TEST(Assembler, UnboundLabelThrows) {
  Assembler a;
  const auto l = a.make_label();
  a.jmp(l);
  EXPECT_THROW(a.finish(), std::logic_error);
}

TEST(Assembler, JmpVaComputesAbsoluteDisplacement) {
  Assembler a;
  a.jmp_va(0x401000);
  const ByteBuf code = a.finish(/*base_va=*/0x402000);
  const auto prog = decode_all(code);
  ASSERT_EQ(prog.size(), 1u);
  // rel = target - (base + len) = 0x401000 - 0x402005
  EXPECT_EQ(prog[0].rel, static_cast<std::int32_t>(0x401000 - 0x402005));
}

TEST(Assembler, RawBlocksAndItemOffsets) {
  Assembler a;
  a.nop();
  a.raw({0xDE, 0xAD, 0xBE});
  a.halt();
  std::vector<std::size_t> offsets;
  const ByteBuf code = a.finish(0, &offsets);
  ASSERT_EQ(offsets.size(), 3u);
  EXPECT_EQ(offsets[0], 0u);
  EXPECT_EQ(offsets[1], 1u);
  EXPECT_EQ(offsets[2], 4u);
  EXPECT_EQ(code.size(), 5u);
  EXPECT_EQ(code[1], 0xDE);
}

TEST(Assembler, BranchOverRawGapStaysWellFormed) {
  Assembler a;
  const auto after = a.make_label();
  a.jmp(after);
  a.raw({0xFF, 0xFF, 0xFF, 0xFF});  // junk that must never decode
  a.bind(after);
  a.halt();
  const ByteBuf code = a.finish();
  // A linear sweep cannot decode the gap (that is the point of gaps);
  // decode just the branch and verify it skips the gap exactly.
  ByteReader r(code);
  const Instr jmp = decode(r);
  EXPECT_EQ(jmp.op, Op::Jmp);
  EXPECT_EQ(jmp.rel, 4);
  EXPECT_EQ(code[static_cast<std::size_t>(r.pos()) + jmp.rel],
            static_cast<std::uint8_t>(Op::Halt));
}

TEST(Isa, BranchesWellFormedRejectsMisaligned) {
  Assembler a;
  a.nop();
  a.halt();
  ByteBuf code = a.finish();
  // Hand-craft a jmp into the middle of nowhere.
  ByteWriter w;
  encode({Op::Jmp, Reg::r0, Reg::r0, 0, 100}, w);
  ByteBuf bad = w.take();
  EXPECT_FALSE(branches_well_formed(bad));
  EXPECT_TRUE(branches_well_formed(code));
}

TEST(Isa, DisassembleProducesOneLinePerInstr) {
  Assembler a;
  a.movi(Reg::r2, 0xABCD);
  a.sys(0x106);
  a.halt();
  const std::string text = disassemble(a.finish());
  EXPECT_NE(text.find("movi r2, 0xabcd"), std::string::npos);
  EXPECT_NE(text.find("sys 0x106"), std::string::npos);
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 3);
}

}  // namespace
}  // namespace mpass::isa
