// Tests for the work-stealing thread pool and the parallel harness built on
// it: task completion, exception propagation, nested submission (waiters
// help drain the pool), and the key contract of the per-sample parallel
// run_cell -- identical CellStats at 1 thread and at N threads.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "attack/gamma.hpp"
#include "attack/mab.hpp"
#include "corpus/generator.hpp"
#include "detectors/models.hpp"
#include "harness/experiment.hpp"
#include "obs/metrics.hpp"
#include "util/threadpool.hpp"

namespace mpass {
namespace {

TEST(ThreadPool, SchedulingCountersConserveTasks) {
  const auto read = [] {
    const obs::Snapshot s = obs::Registry::instance().snapshot();
    const auto get = [&s](const char* name) -> std::uint64_t {
      const auto it = s.counters.find(name);
      return it == s.counters.end() ? 0 : it->second;
    };
    struct {
      std::uint64_t submitted, pops;
    } r{get("pool.tasks.submitted"),
        get("pool.pops.local") + get("pool.pops.injector") +
            get("pool.pops.steal")};
    return r;
  };

  const auto before = read();
  constexpr int kTasks = 500;
  {
    util::ThreadPool pool(4);
    std::vector<std::future<int>> futs;
    futs.reserve(kTasks);
    for (int i = 0; i < kTasks; ++i)
      futs.push_back(pool.submit([i] { return i; }));
    for (auto& f : futs) pool.wait(std::move(f));
    // ~ThreadPool drains any stragglers before the pool goes away.
  }
  const auto after = read();

  // Conservation: every submitted task was popped exactly once, whether
  // locally, from the injector, or by a thief. Deltas are used because the
  // registry is process-global and other tests also schedule work.
  EXPECT_GE(after.submitted - before.submitted,
            static_cast<std::uint64_t>(kTasks));
  EXPECT_EQ(after.submitted - before.submitted, after.pops - before.pops);
}

TEST(ThreadPool, CompletesAllTasksWithResults) {
  util::ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::future<int>> futs;
  futs.reserve(200);
  for (int i = 0; i < 200; ++i)
    futs.push_back(pool.submit([&count, i] {
      ++count;
      return i;
    }));
  for (int i = 0; i < 200; ++i)
    EXPECT_EQ(pool.wait(std::move(futs[static_cast<std::size_t>(i)])), i);
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPool, PropagatesExceptionsThroughFutures) {
  util::ThreadPool pool(2);
  auto bad = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.wait(std::move(bad)), std::runtime_error);
  // The worker that ran the throwing task stays alive and usable.
  EXPECT_EQ(pool.wait(pool.submit([] { return 7; })), 7);
}

TEST(ThreadPool, NestedSubmissionDoesNotDeadlock) {
  // Single worker: the outer task can only finish if waiting on inner
  // futures executes pending tasks on the waiting thread.
  util::ThreadPool pool(1);
  auto outer = pool.submit([&pool] {
    std::vector<std::future<int>> inner;
    inner.reserve(8);
    for (int i = 0; i < 8; ++i)
      inner.push_back(pool.submit([i] { return i * i; }));
    int sum = 0;
    for (auto& f : inner) sum += pool.wait(std::move(f));
    return sum;
  });
  EXPECT_EQ(pool.wait(std::move(outer)), 140);
}

TEST(ThreadPool, OutsideThreadCanHelp) {
  util::ThreadPool pool(1);
  // Park the lone worker so pending tasks can only run via run_one().
  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  auto parked = pool.submit([&started, &release] {
    started.store(true);
    while (!release.load()) std::this_thread::yield();
  });
  while (!started.load()) std::this_thread::yield();
  auto side = pool.submit([] { return 42; });
  while (!pool.run_one()) std::this_thread::yield();
  EXPECT_EQ(side.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_EQ(side.get(), 42);
  release.store(true);
  pool.wait(std::move(parked));
}

/// run_cell must produce bit-identical CellStats regardless of the thread
/// count (per-sample clones + per-sample RNG streams seeded from the sample
/// digest make each outcome independent of scheduling order).
template <typename MakeAttack>
void expect_thread_count_invariance(MakeAttack make_attack) {
  std::vector<util::ByteBuf> samples;
  for (int i = 0; i < 6; ++i)
    samples.push_back(corpus::make_malware(9100 + i).bytes());
  std::vector<util::ByteBuf> pool_benign;
  for (int i = 0; i < 4; ++i)
    pool_benign.push_back(corpus::make_benign(9200 + i).bytes());

  detect::ByteConvDetector target("tgt", detect::malconv_config(), 4711);

  harness::ExperimentConfig cfg;
  cfg.n_samples = samples.size();
  cfg.max_queries = 12;
  cfg.seed = 424242;
  cfg.use_cache = false;  // exercise real runs, not the per-sample cache

  util::ThreadPool one(1);
  util::ThreadPool many(8);
  auto atk1 = make_attack(pool_benign);
  auto atk8 = make_attack(pool_benign);
  const harness::CellStats s1 =
      harness::run_cell(*atk1, target, samples, samples, cfg, &one);
  const harness::CellStats s8 =
      harness::run_cell(*atk8, target, samples, samples, cfg, &many);

  EXPECT_EQ(s1.n, s8.n);
  EXPECT_EQ(s1.successes, s8.successes);
  EXPECT_DOUBLE_EQ(s1.asr, s8.asr);
  EXPECT_DOUBLE_EQ(s1.avq, s8.avq);
  EXPECT_DOUBLE_EQ(s1.apr, s8.apr);
  EXPECT_DOUBLE_EQ(s1.functional, s8.functional);
  ASSERT_EQ(s1.aes.size(), s8.aes.size());
  for (std::size_t i = 0; i < s1.aes.size(); ++i)
    EXPECT_EQ(s1.aes[i], s8.aes[i]) << "AE " << i << " differs";
  EXPECT_EQ(s1.result_digest(), s8.result_digest());
  EXPECT_GT(s1.total_queries, 0u);
}

TEST(ThreadPool, RunCellDeterministicAcrossThreadCounts) {
  expect_thread_count_invariance([](std::span<const util::ByteBuf> benign) {
    return std::make_unique<attack::Gamma>(attack::GammaConfig{}, benign);
  });
}

TEST(ThreadPool, RunCellDeterministicForStatefulAttackClones) {
  // MAB keeps cross-sample bandit state; per-sample clones reset it, which
  // is exactly what makes the parallel schedule order-free.
  expect_thread_count_invariance([](std::span<const util::ByteBuf> benign) {
    return std::make_unique<attack::Mab>(attack::MabConfig{}, benign);
  });
}

}  // namespace
}  // namespace mpass
