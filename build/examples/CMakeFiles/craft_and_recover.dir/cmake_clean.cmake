file(REMOVE_RECURSE
  "CMakeFiles/craft_and_recover.dir/craft_and_recover.cpp.o"
  "CMakeFiles/craft_and_recover.dir/craft_and_recover.cpp.o.d"
  "craft_and_recover"
  "craft_and_recover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/craft_and_recover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
