// Quickstart: the full MPass pipeline in ~60 lines.
//
//  1. Generate a synthetic malware PE and confirm its behavior in the
//     sandbox (the Cuckoo substitute).
//  2. Load the trained detector zoo (cached after the first run).
//  3. Attack the MalConv detector through the hard-label oracle.
//  4. Verify the adversarial example bypasses the detector AND still shows
//     the identical malicious behavior trace.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/mpass.hpp"
#include "corpus/generator.hpp"
#include "detectors/zoo.hpp"
#include "vm/sandbox.hpp"

int main() {
  using namespace mpass;

  // 1. A fresh malware sample.
  corpus::CompiledSample malware = corpus::make_malware(/*seed=*/20230712);
  const util::ByteBuf original = malware.bytes();
  std::printf("sample: family=%s, %zu bytes, %zu sections\n",
              std::string(corpus::family_name(malware.meta.family)).c_str(),
              original.size(), malware.pe.sections.size());

  const vm::Sandbox sandbox;
  const vm::SandboxReport before = sandbox.analyze(original);
  std::printf("sandbox: ran=%d malicious=%d, %zu API events\n",
              before.executed_ok, before.malicious, before.trace().size());

  // 2. Trained detectors (first run trains and caches them).
  detect::ModelZoo& zoo = detect::ModelZoo::instance();
  const detect::Detector& target = zoo.offline_by_name("MalConv");
  std::printf("target %s: score=%.3f (threshold %.3f) -> %s\n",
              std::string(target.name()).c_str(), target.score(original),
              target.threshold(),
              target.is_malicious(original) ? "DETECTED" : "missed");

  // 3. MPass with the remaining differentiable models as the known ensemble.
  core::Mpass attack({}, zoo.benign_pool(),
                     zoo.known_nets_excluding(target.name()));
  detect::HardLabelOracle oracle(target, /*max_queries=*/100);
  const core::MpassResult result = attack.run(original, oracle, /*seed=*/7);
  std::printf("attack: success=%d queries=%zu APR=%.0f%%\n", result.success,
              result.queries, 100.0 * result.apr);

  // 4. The AE must evade *and* behave identically.
  if (result.success) {
    std::printf("AE score on target: %.3f (below threshold)\n",
                target.score(result.adversarial));
    const bool preserved =
        sandbox.functionality_preserved(original, result.adversarial);
    std::printf("functionality preserved (identical behavior trace): %s\n",
                preserved ? "YES" : "NO");
    return preserved ? 0 : 1;
  }
  std::printf("attack failed within the query budget\n");
  return 1;
}
