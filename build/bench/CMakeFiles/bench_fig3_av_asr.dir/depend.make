# Empty dependencies file for bench_fig3_av_asr.
# This may be replaced when dependencies are built.
