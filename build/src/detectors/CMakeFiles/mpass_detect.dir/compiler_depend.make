# Empty compiler generated dependencies file for mpass_detect.
# This may be replaced when dependencies are built.
