#include "obs/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstring>

namespace mpass::obs {

void json_escape(std::string& out, std::string_view s) {
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
}

void json_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[40];
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.6g", v);
  }
  out += buf;
}

const Json* Json::get(std::string_view key) const {
  if (kind_ != Kind::Object) return nullptr;
  const auto it = fields_.find(std::string(key));
  return it == fields_.end() ? nullptr : &it->second;
}

// ---- parser -----------------------------------------------------------------

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : s_(text) {}

  std::optional<Json> run() {
    skip_ws();
    Json v;
    if (!value(v)) return std::nullopt;
    skip_ws();
    if (pos_ != s_.size()) return std::nullopt;  // trailing garbage
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r'))
      ++pos_;
  }

  bool eat(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (s_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool value(Json& out) {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object(out);
      case '[': return array(out);
      case '"': {
        out.kind_ = Json::Kind::String;
        return string(out.str_);
      }
      case 't':
        out.kind_ = Json::Kind::Bool;
        out.num_ = 1.0;
        return literal("true");
      case 'f':
        out.kind_ = Json::Kind::Bool;
        out.num_ = 0.0;
        return literal("false");
      case 'n':
        out.kind_ = Json::Kind::Null;
        return literal("null");
      default: return number(out);
    }
  }

  bool object(Json& out) {
    out.kind_ = Json::Kind::Object;
    if (!eat('{')) return false;
    skip_ws();
    if (eat('}')) return true;
    for (;;) {
      skip_ws();
      std::string key;
      if (!string(key)) return false;
      skip_ws();
      if (!eat(':')) return false;
      skip_ws();
      Json v;
      if (!value(v)) return false;
      out.fields_.emplace(std::move(key), std::move(v));
      skip_ws();
      if (eat(',')) continue;
      return eat('}');
    }
  }

  bool array(Json& out) {
    out.kind_ = Json::Kind::Array;
    if (!eat('[')) return false;
    skip_ws();
    if (eat(']')) return true;
    for (;;) {
      skip_ws();
      Json v;
      if (!value(v)) return false;
      out.items_.push_back(std::move(v));
      skip_ws();
      if (eat(',')) continue;
      return eat(']');
    }
  }

  bool string(std::string& out) {
    if (!eat('"')) return false;
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > s_.size()) return false;
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = s_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f')
                code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F')
                code |= static_cast<unsigned>(h - 'A' + 10);
              else
                return false;
            }
            // The schema only escapes control characters; emit as-is for
            // the ASCII range and UTF-8-encode the rest.
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: return false;
        }
      } else {
        out += c;
      }
    }
    return false;  // unterminated
  }

  bool number(Json& out) {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    bool digits = false;
    auto eat_digits = [&] {
      while (pos_ < s_.size() && s_[pos_] >= '0' && s_[pos_] <= '9') {
        ++pos_;
        digits = true;
      }
    };
    eat_digits();
    if (pos_ < s_.size() && s_[pos_] == '.') {
      ++pos_;
      eat_digits();
    }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
      eat_digits();
    }
    if (!digits) return false;
    out.kind_ = Json::Kind::Number;
    out.num_ = std::strtod(std::string(s_.substr(start, pos_ - start)).c_str(),
                           nullptr);
    return true;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

std::optional<Json> Json::parse(std::string_view text) {
  return JsonParser(text).run();
}

// ---- JsonLine ---------------------------------------------------------------

void JsonLine::key(std::string_view k) {
  if (!first_) buf_ += ',';
  first_ = false;
  buf_ += '"';
  buf_ += k;  // keys are schema constants, never escaped
  buf_ += "\":";
}

JsonLine& JsonLine::str(std::string_view k, std::string_view v) {
  key(k);
  buf_ += '"';
  json_escape(buf_, v);
  buf_ += '"';
  return *this;
}

JsonLine& JsonLine::num(std::string_view k, double v) {
  key(k);
  json_number(buf_, v);
  return *this;
}

JsonLine& JsonLine::uint(std::string_view k, std::uint64_t v) {
  key(k);
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  buf_ += buf;
  return *this;
}

JsonLine& JsonLine::boolean(std::string_view k, bool v) {
  key(k);
  buf_ += v ? "true" : "false";
  return *this;
}

JsonLine& JsonLine::strs(std::string_view k, std::span<const std::string> vs) {
  key(k);
  buf_ += '[';
  for (std::size_t i = 0; i < vs.size(); ++i) {
    if (i) buf_ += ',';
    buf_ += '"';
    json_escape(buf_, vs[i]);
    buf_ += '"';
  }
  buf_ += ']';
  return *this;
}

JsonLine& JsonLine::hex(std::string_view k, std::uint64_t v) {
  key(k);
  char buf[24];
  std::snprintf(buf, sizeof(buf), "\"%016llx\"",
                static_cast<unsigned long long>(v));
  buf_ += buf;
  return *this;
}

}  // namespace mpass::obs
