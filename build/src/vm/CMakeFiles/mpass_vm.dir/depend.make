# Empty dependencies file for mpass_vm.
# This may be replaced when dependencies are built.
