#include "obs/log.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>

namespace mpass::obs {

namespace {

std::atomic<int>& level_slot() {
  static std::atomic<int> level{[] {
    const char* v = std::getenv("MPASS_LOG_LEVEL");
    return static_cast<int>(parse_log_level(v ? v : ""));
  }()};
  return level;
}

int next_thread_id() {
  static std::atomic<int> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

thread_local const int tl_thread_id = next_thread_id();
thread_local std::string tl_tag;

std::mutex& sink_mu() {
  static std::mutex mu;
  return mu;
}

}  // namespace

LogLevel parse_log_level(std::string_view name) {
  std::string s(name);
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  if (s == "debug") return LogLevel::Debug;
  if (s == "warn" || s == "warning") return LogLevel::Warn;
  if (s == "error") return LogLevel::Error;
  if (s == "off" || s == "none") return LogLevel::Off;
  return LogLevel::Info;
}

LogLevel log_level() {
  return static_cast<LogLevel>(level_slot().load(std::memory_order_relaxed));
}

void set_log_level(LogLevel level) {
  level_slot().store(static_cast<int>(level), std::memory_order_relaxed);
}

void set_log_tag(std::string_view tag) { tl_tag.assign(tag); }

std::string_view log_tag() { return tl_tag; }

void logf(LogLevel level, const char* fmt, ...) {
  if (!log_enabled(level)) return;

  char msg[1024];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(msg, sizeof(msg), fmt, args);
  va_end(args);

  const auto now = std::chrono::system_clock::now();
  const auto since_midnight =
      now.time_since_epoch() % std::chrono::hours(24);
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(since_midnight)
          .count();
  static constexpr char kLetters[] = {'D', 'I', 'W', 'E'};
  const char letter =
      kLetters[std::clamp(static_cast<int>(level), 0, 3)];

  char prefix[192];
  if (tl_tag.empty()) {
    std::snprintf(prefix, sizeof(prefix), "[%c %02lld:%02lld:%02lld.%03lld t%02d]",
                  letter, static_cast<long long>(ms / 3600000),
                  static_cast<long long>(ms / 60000 % 60),
                  static_cast<long long>(ms / 1000 % 60),
                  static_cast<long long>(ms % 1000), tl_thread_id);
  } else {
    std::snprintf(prefix, sizeof(prefix),
                  "[%c %02lld:%02lld:%02lld.%03lld t%02d %s]", letter,
                  static_cast<long long>(ms / 3600000),
                  static_cast<long long>(ms / 60000 % 60),
                  static_cast<long long>(ms / 1000 % 60),
                  static_cast<long long>(ms % 1000), tl_thread_id,
                  tl_tag.c_str());
  }

  std::lock_guard<std::mutex> lk(sink_mu());
  std::fprintf(stderr, "%s %s\n", prefix, msg);
}

}  // namespace mpass::obs
