#include "core/mpass.hpp"

#include "obs/span.hpp"
#include "obs/trace.hpp"

namespace mpass::core {

namespace {

const char* target_mode_name(TargetMode m) {
  switch (m) {
    case TargetMode::CodeData: return "code+data";
    case TargetMode::OtherSec: return "other-sec";
    case TargetMode::None: return "none";
  }
  return "?";
}

/// Trace event describing the chosen donor's modification layout: how many
/// bytes the optimizer may touch, where the recovery section (stub + keys)
/// landed, and the section-targeting / shuffle strategy in effect.
void trace_donor(const MpassConfig& cfg, const ModifiedSample& mod,
                 int candidates, float ensemble_score) {
  if (!obs::tracing()) return;
  obs::Event("action")
      .str("kind", "donor")
      .uint("candidates", static_cast<std::uint64_t>(candidates))
      .num("ensemble_score", ensemble_score)
      .str("targets", target_mode_name(cfg.modification.targets))
      .boolean("shuffle", cfg.modification.stub.shuffle)
      .uint("perturbable", mod.perturbable.size())
      .uint("coupled_keys", mod.key_of.size())
      .uint("stub_off", mod.recovery_section_off)
      .uint("stub_len", mod.recovery_section_len)
      .num("apr", mod.apr);
}

}  // namespace

using util::ByteBuf;

Mpass::Mpass(MpassConfig cfg, std::span<const ByteBuf> benign_pool,
             std::vector<ml::ByteConvNet*> known)
    : cfg_(std::move(cfg)),
      pool_(benign_pool.begin(), benign_pool.end()),
      known_(std::move(known)) {
  if (pool_.empty()) pool_.emplace_back();  // degenerate zero-donor
}

MpassResult Mpass::run(std::span<const std::uint8_t> malware,
                       detect::HardLabelOracle& oracle,
                       std::uint64_t seed) const {
  OBS_SCOPE("attack.mpass.run");
  util::Rng rng(seed);
  MpassResult result;
  const std::size_t start_queries = oracle.queries();
  // Ensemble-loss trace: one "opt" event per optimizer step, numbered
  // monotonically across donors so the inspector can plot one loss curve
  // per sample.
  std::uint64_t opt_iter = 0;
  const auto trace_opt = [&opt_iter](float loss) {
    if (obs::tracing())
      obs::Event("opt").uint("iter", ++opt_iter).num("loss", loss);
  };

  const bool can_optimize =
      cfg_.optimize && !known_.empty() && !cfg_.random_content;
  std::unique_ptr<EnsembleOptimizer> opt;
  if (can_optimize) opt = std::make_unique<EnsembleOptimizer>(known_);

  while (!oracle.exhausted()) {
    // (1) Initial perturbation from a random benign program + recovery.
    // When an ensemble is available, several candidate donors are modified
    // and the one scoring most benign on the known models is kept -- this
    // costs zero target queries and is what keeps AVQ low.
    ModifiedSample mod;
    bool have_mod = false;
    const int donor_candidates = can_optimize ? 4 : 1;
    float best_score = 1e30f;
    for (int c = 0; c < donor_candidates; ++c) {
      const ByteBuf& donor = pool_[rng.below(pool_.size())];
      ModifiedSample candidate;
      try {
        candidate = apply_modification(malware, donor, cfg_.modification, rng);
      } catch (const util::ParseError&) {
        return finish(result, oracle, start_queries);  // not a modifiable PE
      }
      const float score =
          can_optimize ? opt->ensemble_score(candidate.bytes) : 0.0f;
      if (!have_mod || score < best_score) {
        best_score = score;
        mod = std::move(candidate);
        have_mod = true;
      }
    }
    trace_donor(cfg_, mod, donor_candidates, best_score);
    if (cfg_.random_content)
      for (std::uint32_t p : mod.perturbable) mod.set_byte(p, rng.byte());

    // Burn-in optimization before spending the first query (paper workflow:
    // optimize on the ensemble, then query). Queries are the scarce
    // resource: keep optimizing until the ensemble consensus is benign
    // enough or the local budget runs out. Both the gate's ensemble_score
    // and each step's line search ride the nets' incremental forward: only
    // the bytes the previous step touched get re-convolved, and the oracle
    // query below diffs against the same cache (see ml/byteconv.hpp).
    if (can_optimize) {
      for (int s = 0; s < cfg_.opt_steps_per_query; ++s)
        trace_opt(opt->step(mod));
      for (int s = 0; s < cfg_.max_gate_steps &&
                      opt->ensemble_score(mod.bytes) > cfg_.query_gate_score;
           ++s)
        trace_opt(opt->step(mod));
    }

    result.adversarial = mod.bytes;
    result.apr = mod.apr;
    if (!oracle.query(mod.bytes)) {
      result.success = true;
      break;
    }

    if (!can_optimize) {
      // Random-content mode: fresh randomization per query; otherwise a new
      // donor is drawn by the outer loop.
      if (!cfg_.random_content) continue;
      while (!oracle.exhausted()) {
        for (std::uint32_t p : mod.perturbable) mod.set_byte(p, rng.byte());
        if (obs::tracing())
          obs::Event("action").str("kind", "randomize").uint(
              "bytes", mod.perturbable.size());
        if (!oracle.query(mod.bytes)) {
          result.success = true;
          result.adversarial = mod.bytes;
          break;
        }
      }
      break;
    }

    // (3) Keep optimizing on the ensemble, querying periodically.
    int donor_queries = 0;
    float prev_loss = 1e30f;
    int stalls = 0;
    while (!oracle.exhausted() && donor_queries < cfg_.queries_per_donor) {
      float loss = 0.0f;
      for (int s = 0; s < cfg_.opt_steps_per_query; ++s) {
        loss = opt->step(mod);
        trace_opt(loss);
      }
      for (int s = 0; s < cfg_.max_gate_steps &&
                      opt->ensemble_score(mod.bytes) > cfg_.query_gate_score;
           ++s) {
        loss = opt->step(mod);
        trace_opt(loss);
      }
      if (!oracle.query(mod.bytes)) {
        result.success = true;
        result.adversarial = mod.bytes;
        result.apr = mod.apr;
        break;
      }
      ++donor_queries;
      // Loss plateau: this donor's basin is exhausted; re-initialize.
      if (loss >= prev_loss - 1e-4f) {
        if (++stalls >= 2) break;
      } else {
        stalls = 0;
      }
      prev_loss = loss;
    }
    if (result.success) break;
  }

  return finish(result, oracle, start_queries);
}

MpassResult& Mpass::finish(MpassResult& result,
                           const detect::HardLabelOracle& oracle,
                           std::size_t start_queries) {
  result.queries = oracle.queries() - start_queries;
  return result;
}

}  // namespace mpass::core
