// String pools for the synthetic program generator. Malware and benign
// programs draw from different distributions of embedded strings -- C2 URLs,
// registry run keys and ransom notes vs. help text, menus and config paths --
// which is one of the static signals real detectors (and ours) learn.
#pragma once

#include <span>
#include <string_view>

namespace mpass::corpus {

std::span<const std::string_view> benign_strings();
std::span<const std::string_view> malicious_urls();
std::span<const std::string_view> registry_run_keys();
std::span<const std::string_view> ransom_notes();
std::span<const std::string_view> dropper_names();
std::span<const std::string_view> benign_section_names();
std::span<const std::string_view> shady_section_names();
std::span<const std::string_view> benign_file_names();

}  // namespace mpass::corpus
