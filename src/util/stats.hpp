// Small statistics helpers shared by training, evaluation and the harness.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace mpass::util {

double mean(std::span<const double> xs);
double stddev(std::span<const double> xs);  // population stddev
double median(std::vector<double> xs);      // by value: sorts a copy

/// Binary-classification counters at a fixed threshold.
struct Confusion {
  std::size_t tp = 0, fp = 0, tn = 0, fn = 0;

  double accuracy() const;
  double tpr() const;  // recall / detection rate
  double fpr() const;
  double precision() const;
};

/// Builds a confusion matrix from scores (higher = positive) and labels.
Confusion confusion_at(std::span<const double> scores,
                       std::span<const int> labels, double threshold);

/// Smallest threshold achieving fpr <= max_fpr on the given scores
/// (scores of negatives), i.e. the calibration ML AVs use in practice.
/// Returns +inf-like 1.0 if even threshold 1.0 exceeds the target on ties.
double threshold_for_fpr(std::span<const double> scores,
                         std::span<const int> labels, double max_fpr);

/// Area under the ROC curve (rank statistic).
double auc(std::span<const double> scores, std::span<const int> labels);

}  // namespace mpass::util
