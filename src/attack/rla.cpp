#include "attack/rla.hpp"

namespace mpass::attack {

using util::ByteBuf;

double& Rla::q(std::uint64_t state, std::size_t action) {
  auto [it, inserted] = qtable_.try_emplace(state);
  if (inserted) it->second.fill(0.0);
  return it->second[action];
}

std::size_t Rla::choose(std::uint64_t state, util::Rng& rng) {
  if (rng.chance(cfg_.epsilon)) return rng.below(kNumActions);
  auto [it, inserted] = qtable_.try_emplace(state);
  if (inserted) it->second.fill(0.0);
  std::size_t best = 0;
  for (std::size_t a = 1; a < kNumActions; ++a)
    if (it->second[a] > it->second[best]) best = a;
  return best;
}

AttackResult Rla::run(std::span<const std::uint8_t> malware,
                      detect::HardLabelOracle& oracle, std::uint64_t seed) {
  util::Rng rng(seed);
  AttackResult result;
  result.adversarial.assign(malware.begin(), malware.end());

  while (!oracle.exhausted()) {
    // One episode: mutate from the pristine sample.
    ByteBuf current(malware.begin(), malware.end());
    std::uint64_t state = state_fingerprint(current);
    for (int step = 0; step < cfg_.max_episode_len && !oracle.exhausted();
         ++step) {
      const std::size_t a = choose(state, rng);
      auto mutated =
          apply_action(static_cast<Action>(a), current, pool_, rng);
      if (!mutated) {
        q(state, a) += cfg_.alpha * (-0.05 - q(state, a));  // useless action
        continue;
      }
      current = std::move(*mutated);
      const bool detected = oracle.query(current);
      const std::uint64_t next = state_fingerprint(current);
      const double reward = detected ? -0.01 : 1.0;
      auto [it, inserted] = qtable_.try_emplace(next);
      if (inserted) it->second.fill(0.0);
      double next_max = 0.0;
      for (double v : it->second) next_max = std::max(next_max, v);
      q(state, a) +=
          cfg_.alpha * (reward + cfg_.gamma * next_max - q(state, a));
      state = next;

      if (!detected) {
        result.success = true;
        result.adversarial = current;
        result.apr = apr_of(malware.size(), current.size());
        return result;
      }
    }
  }
  result.apr = apr_of(malware.size(), result.adversarial.size());
  return result;
}

}  // namespace mpass::attack
