#include "fuzz/mutator.hpp"

#include "obs/span.hpp"
#include <algorithm>
#include <iterator>
#include <optional>

namespace mpass::fuzz {

using util::ByteBuf;
using util::Rng;

namespace {

constexpr std::size_t kDosHeaderSize = 64;
constexpr std::size_t kCoffSize = 20;
constexpr std::size_t kOptSize = 224;
constexpr std::size_t kSectionHeaderSize = 40;

// Section-header field offsets (within one 40-byte entry).
constexpr std::size_t kSecName = 0;
constexpr std::size_t kSecVSize = 8;
constexpr std::size_t kSecVAddr = 12;
constexpr std::size_t kSecRawSize = 16;
constexpr std::size_t kSecRawPtr = 20;
constexpr std::size_t kSecChars = 36;

/// Boundary values that flush out wrap-around and off-by-one bugs. Values
/// relative to the file size are appended by interesting_u32().
constexpr std::uint32_t kInteresting[] = {
    0,          1,          2,          3,          4,          7,
    8,          0x3C,       0x40,       0x7F,       0x80,       0xFF,
    0x100,      0x200,      0x1FF,      0x201,      0x1000,     0x7FFF,
    0x8000,     0xFFFF,     0x10000,    0x100000,   0x7FFFFFFF, 0x80000000,
    0xFFFFFF00, 0xFFFFFFF0, 0xFFFFFFFC, 0xFFFFFFFD, 0xFFFFFFFE, 0xFFFFFFFF,
};

std::uint32_t interesting_u32(const ByteBuf& bytes, Rng& rng) {
  const std::size_t n = std::size(kInteresting);
  const std::uint64_t pick = rng.below(n + 4);
  const auto size = static_cast<std::uint32_t>(bytes.size());
  switch (pick) {
    case 0: return size;
    case 1: return size > 0 ? size - 1 : 0;
    case 2: return size > 4 ? size - 4 : 0;
    case 3: return static_cast<std::uint32_t>(rng());
    default: return kInteresting[pick - 4];
  }
}

void put_u32(ByteBuf& bytes, std::size_t off, std::uint32_t v) {
  if (off + 4 <= bytes.size()) util::write_le<std::uint32_t>(bytes.data() + off, v);
}

void put_u16(ByteBuf& bytes, std::size_t off, std::uint16_t v) {
  if (off + 2 <= bytes.size()) util::write_le<std::uint16_t>(bytes.data() + off, v);
}

std::uint32_t get_u32(const ByteBuf& bytes, std::size_t off) {
  return off + 4 <= bytes.size() ? util::read_le<std::uint32_t>(bytes.data() + off)
                                 : 0;
}

/// Offset of a random section-header field, or nullopt if no header fits.
struct SecField {
  std::size_t off;
  std::size_t field;
};
std::optional<SecField> pick_section_field(const ByteBuf& bytes,
                                           const PeFieldMap& map, Rng& rng,
                                           std::size_t field) {
  const std::size_t fit = map.sections_in(bytes.size());
  if (!map.valid || fit == 0) return std::nullopt;
  const std::size_t i = rng.below(fit);
  return SecField{map.section_header(i) + field, field};
}

// ---- mutators --------------------------------------------------------------

void mut_flip_bytes(ByteBuf& bytes, const PeFieldMap&, Rng& rng) {
  if (bytes.empty()) return;
  const std::size_t flips = 1 + rng.below(32);
  for (std::size_t i = 0; i < flips; ++i)
    bytes[rng.below(bytes.size())] = rng.byte();
}

void mut_lfanew(ByteBuf& bytes, const PeFieldMap&, Rng& rng) {
  put_u32(bytes, 0x3C, interesting_u32(bytes, rng));
}

void mut_nsections(ByteBuf& bytes, const PeFieldMap& map, Rng& rng) {
  if (!map.valid) return;
  const std::uint16_t cur = map.nsections;
  const std::uint16_t choices[] = {0, 1, 96, 97, 0xFF, 0xFFFF,
                                   static_cast<std::uint16_t>(cur + 1),
                                   static_cast<std::uint16_t>(cur - 1)};
  put_u16(bytes, map.coff_off + 2, choices[rng.below(std::size(choices))]);
}

void mut_opt_size(ByteBuf& bytes, const PeFieldMap& map, Rng& rng) {
  if (!map.valid) return;
  const std::uint16_t choices[] = {0, 4, 223, 224, 225, 512, 0xFFFF};
  put_u16(bytes, map.coff_off + 16, choices[rng.below(std::size(choices))]);
}

void mut_alignments(ByteBuf& bytes, const PeFieldMap& map, Rng& rng) {
  if (!map.valid) return;
  const std::uint32_t choices[] = {0,      1,          2,         3,
                                   0x200,  0x201,      0x1000,    0x8000,
                                   0xFFFF, 0x10000,    0x20000,   0x1000000,
                                   0x80000000, 0xFFFFFFFF};
  // SectionAlignment at opt+32, FileAlignment at opt+36.
  const std::size_t off = map.opt_off + (rng.chance(0.5) ? 32 : 36);
  put_u32(bytes, off, choices[rng.below(std::size(choices))]);
}

void mut_entry_and_bases(ByteBuf& bytes, const PeFieldMap& map, Rng& rng) {
  if (!map.valid) return;
  // AddressOfEntryPoint at opt+16, ImageBase at opt+28.
  const std::size_t off = map.opt_off + (rng.chance(0.5) ? 16 : 28);
  put_u32(bytes, off, interesting_u32(bytes, rng));
}

void mut_data_dirs(ByteBuf& bytes, const PeFieldMap& map, Rng& rng) {
  if (!map.valid) return;
  // NumberOfRvaAndSizes at opt+92, directory table right after.
  if (rng.chance(0.3)) {
    const std::uint32_t choices[] = {0, 1, 15, 16, 17, 0xFFFFFFFF};
    put_u32(bytes, map.opt_off + 92, choices[rng.below(std::size(choices))]);
    return;
  }
  const std::size_t dir = rng.below(16);
  put_u32(bytes, map.opt_off + 96 + dir * 8 + (rng.chance(0.5) ? 0 : 4),
          interesting_u32(bytes, rng));
}

void mut_section_field(ByteBuf& bytes, const PeFieldMap& map, Rng& rng) {
  static constexpr std::size_t kFields[] = {kSecName,    kSecVSize, kSecVAddr,
                                            kSecRawSize, kSecRawPtr, kSecChars};
  const auto f = pick_section_field(bytes, map, rng,
                                    kFields[rng.below(std::size(kFields))]);
  if (!f) return mut_flip_bytes(bytes, map, rng);
  if (f->field == kSecName) {
    const std::size_t b = f->off + rng.below(8);
    if (b < bytes.size()) bytes[b] = rng.byte();
  } else {
    put_u32(bytes, f->off, interesting_u32(bytes, rng));
  }
}

void mut_raw_wrap_pair(ByteBuf& bytes, const PeFieldMap& map, Rng& rng) {
  // The classic uint32-wrap probe: raw_ptr + raw_size == 0x100 (mod 2^32).
  const auto f = pick_section_field(bytes, map, rng, kSecRawSize);
  if (!f) return mut_flip_bytes(bytes, map, rng);
  const std::size_t hdr = f->off - kSecRawSize;
  put_u32(bytes, hdr + kSecRawPtr, 0xFFFFFF00u);
  put_u32(bytes, hdr + kSecRawSize, 0x200u);
}

void mut_unalign_raw_size(ByteBuf& bytes, const PeFieldMap& map, Rng& rng) {
  // Shrinks a raw size below its file-alignment padding so the padding sits
  // between the section data and the overlay.
  const auto f = pick_section_field(bytes, map, rng, kSecRawSize);
  if (!f) return mut_flip_bytes(bytes, map, rng);
  const std::uint32_t cur = get_u32(bytes, f->off);
  if (cur == 0) return;
  put_u32(bytes, f->off, cur - static_cast<std::uint32_t>(
                                   1 + rng.below(std::min<std::uint32_t>(
                                           cur, 0x1FF))));
}

void mut_dup_section_header(ByteBuf& bytes, const PeFieldMap& map, Rng& rng) {
  // Copies one section header over another and bumps NumberOfSections.
  const std::size_t fit = map.sections_in(bytes.size());
  if (!map.valid || fit == 0) return mut_flip_bytes(bytes, map, rng);
  const std::size_t src = map.section_header(rng.below(fit));
  const std::size_t dst = map.section_header(rng.below(fit));
  if (src + kSectionHeaderSize <= bytes.size() &&
      dst + kSectionHeaderSize <= bytes.size())
    std::copy_n(bytes.begin() + static_cast<std::ptrdiff_t>(src),
                kSectionHeaderSize,
                bytes.begin() + static_cast<std::ptrdiff_t>(dst));
  put_u16(bytes, map.coff_off + 2,
          static_cast<std::uint16_t>(map.nsections + 1));
}

void mut_checksum_field(ByteBuf& bytes, const PeFieldMap& map, Rng& rng) {
  if (!map.valid) return;
  put_u32(bytes, map.opt_off + 64, interesting_u32(bytes, rng));
}

void mut_truncate(ByteBuf& bytes, const PeFieldMap& map, Rng& rng) {
  if (bytes.size() < 2) return;
  std::size_t at;
  if (map.valid && rng.chance(0.5)) {
    // Cut at a structural edge +/- a small jitter.
    const std::size_t edges[] = {kDosHeaderSize, map.lfanew, map.opt_off,
                                 map.table_off,
                                 map.table_off +
                                     map.nsections * kSectionHeaderSize};
    const std::size_t e = edges[rng.below(std::size(edges))];
    const std::size_t jitter = rng.below(8);
    at = e > jitter ? e - jitter : e + jitter;
  } else {
    at = 1 + rng.below(bytes.size() - 1);
  }
  bytes.resize(std::min(std::max<std::size_t>(at, 1), bytes.size()));
}

void mut_extend_overlay(ByteBuf& bytes, const PeFieldMap&, Rng& rng) {
  const std::size_t n = 1 + rng.below(4096);
  if (rng.chance(0.5)) {
    bytes.resize(bytes.size() + n, 0);
  } else {
    const ByteBuf extra = rng.bytes(n);
    bytes.insert(bytes.end(), extra.begin(), extra.end());
  }
}

void mut_splice(ByteBuf& bytes, const PeFieldMap&, Rng& rng) {
  if (bytes.size() < 16) return;
  const std::size_t len = 1 + rng.below(std::min<std::size_t>(bytes.size() / 2, 256));
  const std::size_t src = rng.below(bytes.size() - len + 1);
  const std::size_t dst = rng.below(bytes.size() - len + 1);
  std::copy_n(bytes.begin() + static_cast<std::ptrdiff_t>(src), len,
              bytes.begin() + static_cast<std::ptrdiff_t>(dst));
}

void mut_zero_range(ByteBuf& bytes, const PeFieldMap&, Rng& rng) {
  if (bytes.empty()) return;
  const std::size_t len = 1 + rng.below(std::min<std::size_t>(bytes.size(), 128));
  const std::size_t at = rng.below(bytes.size() - len + 1);
  std::fill_n(bytes.begin() + static_cast<std::ptrdiff_t>(at), len, 0);
}

constexpr Mutator kCatalogue[] = {
    {"flip_bytes", mut_flip_bytes},
    {"lfanew", mut_lfanew},
    {"nsections", mut_nsections},
    {"opt_size", mut_opt_size},
    {"alignments", mut_alignments},
    {"entry_and_bases", mut_entry_and_bases},
    {"data_dirs", mut_data_dirs},
    {"section_field", mut_section_field},
    {"raw_wrap_pair", mut_raw_wrap_pair},
    {"unalign_raw_size", mut_unalign_raw_size},
    {"dup_section_header", mut_dup_section_header},
    {"checksum_field", mut_checksum_field},
    {"truncate", mut_truncate},
    {"extend_overlay", mut_extend_overlay},
    {"splice", mut_splice},
    {"zero_range", mut_zero_range},
};

}  // namespace

std::size_t PeFieldMap::sections_in(std::size_t size) const {
  if (!valid || table_off >= size) return 0;
  return std::min<std::size_t>(nsections,
                               (size - table_off) / kSectionHeaderSize);
}

PeFieldMap map_pe_fields(std::span<const std::uint8_t> bytes) {
  PeFieldMap m;
  if (bytes.size() < kDosHeaderSize) return m;
  if (util::read_le<std::uint16_t>(bytes.data()) != 0x5A4D) return m;
  m.lfanew = util::read_le<std::uint32_t>(bytes.data() + 0x3C);
  const std::uint64_t sig = m.lfanew;
  if (sig + 4 + kCoffSize > bytes.size()) return m;
  m.coff_off = static_cast<std::size_t>(sig + 4);
  m.opt_off = m.coff_off + kCoffSize;
  m.nsections = util::read_le<std::uint16_t>(bytes.data() + m.coff_off + 2);
  const std::uint16_t opt_size =
      util::read_le<std::uint16_t>(bytes.data() + m.coff_off + 16);
  m.table_off = m.opt_off + std::max<std::size_t>(opt_size, kOptSize);
  m.valid = true;
  return m;
}

std::span<const Mutator> mutator_catalogue() { return kCatalogue; }

std::vector<std::string_view> mutate(util::ByteBuf& bytes, util::Rng& rng,
                                     std::size_t rounds) {
  OBS_SCOPE("fuzz.mutate");
  std::vector<std::string_view> applied;
  for (std::size_t i = 0; i < rounds; ++i) {
    // Re-map each round: earlier mutations may have moved/destroyed fields.
    const PeFieldMap map = map_pe_fields(bytes);
    const Mutator& m = kCatalogue[rng.below(std::size(kCatalogue))];
    m.apply(bytes, map, rng);
    applied.push_back(m.name);
  }
  return applied;
}

}  // namespace mpass::fuzz
