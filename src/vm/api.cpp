#include "vm/api.hpp"

#include <array>
#include <vector>

namespace mpass::vm {

namespace {
struct ApiInfo {
  std::uint16_t id;
  std::string_view name;
};

constexpr ApiInfo kApis[] = {
    {0x0001, "Print"},        {0x0002, "GetTime"},
    {0x0003, "OpenFile"},     {0x0004, "ReadFile"},
    {0x0005, "WriteFile"},    {0x0006, "CloseFile"},
    {0x0007, "Alloc"},        {0x0008, "GetEnv"},
    {0x0009, "MsgBox"},       {0x000A, "Rand"},
    {0x000B, "Sleep"},        {0x000C, "ExitProcess"},
    {0x000D, "VProtect"},     {0x000E, "GetSelfSize"},
    {0x000F, "ReadSelf"},     {0x0010, "Checksum"},
    {0x0100, "RegSetAutorun"}, {0x0101, "RegDeleteKey"},
    {0x0102, "Connect"},      {0x0103, "Send"},
    {0x0104, "Recv"},         {0x0105, "EnumFiles"},
    {0x0106, "EncryptFile"},  {0x0107, "DeleteShadow"},
    {0x0108, "KeylogStart"},  {0x0109, "KeylogDump"},
    {0x010A, "InjectProc"},   {0x010B, "CreateProc"},
    {0x010C, "WriteExe"},     {0x010D, "SetHidden"},
    {0x010E, "Screenshot"},   {0x010F, "StealCreds"},
};

constexpr std::size_t kNumApis = std::size(kApis);

std::array<std::uint16_t, kNumApis> make_all() {
  std::array<std::uint16_t, kNumApis> out{};
  for (std::size_t i = 0; i < kNumApis; ++i) out[i] = kApis[i].id;
  return out;
}
const auto kAllIds = make_all();

std::vector<std::uint16_t> filter(bool sensitive) {
  std::vector<std::uint16_t> out;
  for (const auto& a : kApis)
    if (is_sensitive(a.id) == sensitive) out.push_back(a.id);
  return out;
}
const std::vector<std::uint16_t> kSensitive = filter(true);
const std::vector<std::uint16_t> kBenign = filter(false);
}  // namespace

std::string_view api_name(std::uint16_t api) {
  for (const auto& a : kApis)
    if (a.id == api) return a.name;
  return "Api_unknown";
}

bool api_exists(std::uint16_t api) {
  for (const auto& a : kApis)
    if (a.id == api) return true;
  return false;
}

std::span<const std::uint16_t> all_apis() { return kAllIds; }
std::span<const std::uint16_t> sensitive_apis() { return kSensitive; }
std::span<const std::uint16_t> benign_apis() { return kBenign; }

}  // namespace mpass::vm
