// Adapter exposing core::Mpass through the common Attack interface, plus
// the ablation variants of §V (Other-sec, Random-data) as named attacks.
#pragma once

#include <memory>

#include "attack/attack.hpp"
#include "core/mpass.hpp"

namespace mpass::attack {

class MpassAttack : public Attack {
 public:
  struct CloneTag {};

  MpassAttack(std::string name, core::MpassConfig cfg,
              std::span<const util::ByteBuf> benign_pool,
              std::vector<ml::ByteConvNet*> known)
      : name_(std::move(name)),
        impl_(std::move(cfg), benign_pool, std::move(known)) {}

  /// Variant that deep-copies the known models and owns the clones: attack
  /// instances built this way are safe to run on concurrent threads (the
  /// nets' forward caches are private).
  MpassAttack(std::string name, core::MpassConfig cfg,
              std::span<const util::ByteBuf> benign_pool,
              std::span<ml::ByteConvNet* const> known_to_clone, CloneTag)
      : name_(std::move(name)),
        owned_(clone_all(known_to_clone)),
        impl_(std::move(cfg), benign_pool, raw(owned_)) {}

  std::string_view name() const override { return name_; }

  AttackResult run(std::span<const std::uint8_t> malware,
                   detect::HardLabelOracle& oracle,
                   std::uint64_t seed) override {
    const core::MpassResult r = impl_.run(malware, oracle, seed);
    AttackResult out;
    out.success = r.success;
    out.adversarial = r.adversarial;
    out.queries = r.queries;
    out.apr = r.apr;
    return out;
  }

  /// Deep copy: the clone owns fresh copies of the known models, so its
  /// ensemble optimization never shares forward caches with this instance.
  std::unique_ptr<Attack> clone() const override {
    return std::make_unique<MpassAttack>(name_, impl_.config(), impl_.pool(),
                                         impl_.known(), CloneTag{});
  }

  /// Standard MPass.
  static core::MpassConfig default_config();
  /// Table V ablation: modify every section *except* code/data.
  static core::MpassConfig other_sec_config();
  /// Table VI ablation: random bytes at the same positions, no optimization.
  static core::MpassConfig random_data_config();
  /// Fig. 4 ablation: shuffle strategy disabled.
  static core::MpassConfig no_shuffle_config();

 private:
  static std::vector<std::unique_ptr<ml::ByteConvNet>> clone_all(
      std::span<ml::ByteConvNet* const> nets) {
    std::vector<std::unique_ptr<ml::ByteConvNet>> out;
    out.reserve(nets.size());
    for (ml::ByteConvNet* n : nets)
      out.push_back(std::make_unique<ml::ByteConvNet>(*n));
    return out;
  }
  static std::vector<ml::ByteConvNet*> raw(
      const std::vector<std::unique_ptr<ml::ByteConvNet>>& owned) {
    std::vector<ml::ByteConvNet*> out;
    out.reserve(owned.size());
    for (const auto& n : owned) out.push_back(n.get());
    return out;
  }

  std::string name_;
  std::vector<std::unique_ptr<ml::ByteConvNet>> owned_;
  core::Mpass impl_;
};

}  // namespace mpass::attack
