file(REMOVE_RECURSE
  "CMakeFiles/mpass_corpus.dir/codegen.cpp.o"
  "CMakeFiles/mpass_corpus.dir/codegen.cpp.o.d"
  "CMakeFiles/mpass_corpus.dir/generator.cpp.o"
  "CMakeFiles/mpass_corpus.dir/generator.cpp.o.d"
  "CMakeFiles/mpass_corpus.dir/spec.cpp.o"
  "CMakeFiles/mpass_corpus.dir/spec.cpp.o.d"
  "CMakeFiles/mpass_corpus.dir/strings.cpp.o"
  "CMakeFiles/mpass_corpus.dir/strings.cpp.o.d"
  "libmpass_corpus.a"
  "libmpass_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpass_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
