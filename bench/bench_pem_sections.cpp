// Reproduces the §III-B PEM result: averaged problem-space Shapley values
// per section across the known models rank code (.text) and data sections
// top-2, with roughly 1.3~6.0x the value of the 3rd section; the per-model
// top-k intersection yields the critical-section set MPass targets.
#include "bench_common.hpp"
#include "corpus/generator.hpp"
#include "explain/pem.hpp"

int main() {
  using namespace mpass;
  bench::BenchReport report("pem_sections");
  auto& zoo = detect::ModelZoo::instance();

  // N randomly sampled malware (exact Shapley: few players per file).
  std::size_t n = 24;
  if (const char* v = std::getenv("MPASS_PEM_N"); v && *v)
    n = std::strtoull(v, nullptr, 10);
  std::vector<util::ByteBuf> malware;
  for (std::size_t i = 0; i < n; ++i)
    malware.push_back(corpus::make_malware(0x9E40 + i).bytes());

  std::vector<const detect::Detector*> known;
  for (detect::Detector* d : zoo.offline())
    known.push_back(d);  // all four serve as "known models" for PEM

  explain::PemConfig cfg;
  cfg.top_k = 3;
  const explain::PemResult res = explain::run_pem(malware, known, cfg);

  util::Table table("PEM: average Shapley value per section (x1000)");
  std::vector<std::string> header = {"Model"};
  for (const std::string& s : res.common_sections) header.push_back(s);
  table.header(header);
  for (std::size_t m = 0; m < res.model_names.size(); ++m) {
    std::vector<std::string> row = {res.model_names[m]};
    for (double v : res.avg_shapley[m])
      row.push_back(util::Table::num(1000.0 * v, 1));
    table.row(row);
  }
  std::cout << table.render();

  for (std::size_t m = 0; m < res.model_names.size(); ++m) {
    std::printf("%-10s top-%zu:", res.model_names[m].c_str(), cfg.top_k);
    for (const std::string& s : res.per_model_topk[m])
      std::printf(" %s", s.c_str());
    if (m < res.top2_over_top3.size())
      std::printf("   mean(top1,top2)/top3 = %.2fx", res.top2_over_top3[m]);
    std::printf("\n");
  }
  std::printf("Common critical sections (intersection):");
  for (const std::string& s : res.critical) std::printf(" %s", s.c_str());
  std::printf(
      "\nPaper finding: code and data sections are top-1/2 on all known\n"
      "models, ~1.3-6.0x the Shapley value of the top-3 section.\n");
  return 0;
}
