// Unit + property tests for the PE32 parser/builder/editor.
#include <gtest/gtest.h>

#include "corpus/generator.hpp"
#include "pe/import.hpp"
#include "pe/pe.hpp"
#include "util/rng.hpp"

namespace mpass::pe {
namespace {

using util::ByteBuf;

PeFile make_simple(util::Rng& rng, int nsections = 3) {
  PeFile f;
  f.timestamp = 0x5F123456;
  for (int i = 0; i < nsections; ++i) {
    const std::uint32_t chars =
        i == 0 ? (kScnCode | kScnMemRead | kScnMemExecute)
               : (kScnInitializedData | kScnMemRead | kScnMemWrite);
    f.add_section("sec" + std::to_string(i),
                  rng.bytes(256 + rng.below(2048)), chars);
  }
  f.entry_point = f.sections[0].vaddr;
  return f;
}

TEST(Pe, BuildParseRoundTripPreservesEverything) {
  util::Rng rng(1);
  PeFile f = make_simple(rng);
  f.overlay = rng.bytes(777);
  f.dos_stub = rng.bytes(48);
  const ByteBuf bytes = f.build();
  ASSERT_TRUE(PeFile::looks_like_pe(bytes));

  const PeFile g = PeFile::parse(bytes);
  EXPECT_EQ(g.machine, f.machine);
  EXPECT_EQ(g.timestamp, f.timestamp);
  EXPECT_EQ(g.entry_point, f.entry_point);
  EXPECT_EQ(g.image_base, f.image_base);
  EXPECT_EQ(g.dos_stub, f.dos_stub);
  ASSERT_EQ(g.sections.size(), f.sections.size());
  for (std::size_t i = 0; i < f.sections.size(); ++i) {
    EXPECT_EQ(g.sections[i].name, f.sections[i].name);
    EXPECT_EQ(g.sections[i].vaddr, f.sections[i].vaddr);
    // Raw data is padded to file alignment on disk.
    ASSERT_GE(g.sections[i].data.size(), f.sections[i].data.size());
    EXPECT_TRUE(std::equal(f.sections[i].data.begin(),
                           f.sections[i].data.end(),
                           g.sections[i].data.begin()));
  }
  EXPECT_EQ(g.overlay, f.overlay);
}

// Property sweep: round-trip stability (parse(build(x)) builds identically).
class PeRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PeRoundTrip, BuildIsAFixpointAfterParse) {
  util::Rng rng(GetParam());
  PeFile f = make_simple(rng, 2 + static_cast<int>(rng.below(5)));
  if (rng.chance(0.5)) f.overlay = rng.bytes(rng.below(4096));
  const ByteBuf once = f.build();
  const ByteBuf twice = PeFile::parse(once).build();
  EXPECT_EQ(once.size(), twice.size());
  // Sections on disk are align-padded, so a rebuilt file may differ in the
  // vsize fields it reconstructs; compare the parse of both instead.
  const PeFile a = PeFile::parse(once);
  const PeFile b = PeFile::parse(twice);
  ASSERT_EQ(a.sections.size(), b.sections.size());
  for (std::size_t i = 0; i < a.sections.size(); ++i)
    EXPECT_EQ(a.sections[i].data, b.sections[i].data);
  EXPECT_EQ(a.overlay, b.overlay);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PeRoundTrip,
                         ::testing::Range<std::uint64_t>(100, 116));

TEST(Pe, ParseRejectsGarbage) {
  util::Rng rng(3);
  const ByteBuf junk = rng.bytes(1024);
  EXPECT_FALSE(PeFile::looks_like_pe(junk));
  EXPECT_THROW(PeFile::parse(junk), util::ParseError);
  EXPECT_THROW(PeFile::parse(ByteBuf{}), util::ParseError);
  ByteBuf truncated = make_simple(rng).build();
  truncated.resize(90);
  EXPECT_THROW(PeFile::parse(truncated), util::ParseError);
}

TEST(Pe, ParseRejectsSectionOutOfBounds) {
  util::Rng rng(4);
  ByteBuf bytes = make_simple(rng).build();
  // Corrupt the first section's PointerToRawData to beyond EOF.
  const std::uint32_t lfanew = util::read_le<std::uint32_t>(bytes.data() + 0x3C);
  const std::size_t table = lfanew + 4 + 20 + 224;
  util::write_le<std::uint32_t>(bytes.data() + table + 20, 0x7FFFFFFF);
  EXPECT_THROW(PeFile::parse(bytes), util::ParseError);
}

TEST(Pe, AddSectionAssignsAlignedDisjointRvas) {
  util::Rng rng(5);
  PeFile f = make_simple(rng, 4);
  for (std::size_t i = 0; i < f.sections.size(); ++i) {
    EXPECT_EQ(f.sections[i].vaddr % f.section_align, 0u);
    for (std::size_t j = i + 1; j < f.sections.size(); ++j) {
      const auto& a = f.sections[i];
      const auto& b = f.sections[j];
      const bool disjoint = a.vaddr + a.vsize <= b.vaddr ||
                            b.vaddr + b.vsize <= a.vaddr;
      EXPECT_TRUE(disjoint) << i << " vs " << j;
    }
  }
}

TEST(Pe, SectionLookups) {
  util::Rng rng(6);
  PeFile f = make_simple(rng);
  EXPECT_EQ(f.find_section("sec1"), std::optional<std::size_t>(1));
  EXPECT_EQ(f.find_section("nope"), std::nullopt);
  EXPECT_EQ(f.section_by_rva(f.sections[2].vaddr + 5),
            std::optional<std::size_t>(2));
  EXPECT_EQ(f.section_by_rva(0), std::nullopt);
}

TEST(Pe, LayoutMapsOffsetsToSections) {
  util::Rng rng(7);
  PeFile f = make_simple(rng);
  f.overlay = rng.bytes(100);
  Layout layout;
  const ByteBuf bytes = f.build_with_layout(&layout);
  EXPECT_EQ(layout.file_size, bytes.size());
  EXPECT_EQ(layout.overlay_offset + f.overlay.size(), bytes.size());
  ASSERT_EQ(layout.sections.size(), f.sections.size());
  // First byte of every section's raw data matches the stored content.
  for (std::size_t i = 0; i < f.sections.size(); ++i) {
    EXPECT_EQ(bytes[layout.sections[i].file_offset], f.sections[i].data[0]);
    EXPECT_EQ(layout.section_of(layout.sections[i].file_offset),
              std::optional<std::size_t>(i));
  }
  EXPECT_EQ(layout.section_of(0), std::nullopt);  // headers
}

TEST(Pe, ChecksumIsStableAndContentSensitive) {
  util::Rng rng(8);
  PeFile f = make_simple(rng);
  f.update_checksum();
  const std::uint32_t c1 = f.checksum;
  EXPECT_NE(c1, 0u);
  f.sections[1].data[0] ^= 0xFF;
  f.update_checksum();
  EXPECT_NE(f.checksum, c1);
}

TEST(Imports, EncodeDecodeRoundTrip) {
  const std::vector<Import> imports = {
      {0x0001, "Print"}, {0x0106, "EncryptFile"}, {0x0102, "Connect"}};
  const ByteBuf blob = encode_imports(imports);
  EXPECT_EQ(decode_imports(blob), imports);
}

TEST(Imports, AttachAndReadThroughDirectory) {
  util::Rng rng(9);
  PeFile f = make_simple(rng);
  const std::vector<Import> imports = {{0x0005, "WriteFile"},
                                       {0x0103, "Send"}};
  attach_import_section(f, imports);
  const PeFile g = PeFile::parse(f.build());
  EXPECT_EQ(read_imports(g), imports);
}

TEST(Imports, ReadToleratesCorruption) {
  util::Rng rng(10);
  PeFile f = make_simple(rng);
  { std::vector<Import> one = {{0x0001, "Print"}}; attach_import_section(f, one); }
  // Corrupt the import blob.
  const auto idx = f.find_section(".idata");
  ASSERT_TRUE(idx.has_value());
  f.sections[*idx].data[0] ^= 0xFF;
  const PeFile g = PeFile::parse(f.build());
  EXPECT_TRUE(read_imports(g).empty());
  // Dangling directory RVA.
  PeFile h = make_simple(rng);
  h.dirs[kDirImport] = {0x99999000, 64};
  EXPECT_TRUE(read_imports(h).empty());
}

TEST(Pe, CorpusSamplesAreValidPe) {
  for (int i = 0; i < 6; ++i) {
    const ByteBuf bytes = corpus::make_malware(777000 + i).bytes();
    ASSERT_TRUE(PeFile::looks_like_pe(bytes));
    const PeFile f = PeFile::parse(bytes);
    EXPECT_GE(f.sections.size(), 4u);
    EXPECT_TRUE(f.section_by_rva(f.entry_point).has_value());
  }
}

}  // namespace
}  // namespace mpass::pe
