#include "ml/byteconv.hpp"

#include <algorithm>
#include <cmath>

#include "obs/span.hpp"

namespace mpass::ml {

namespace {
constexpr int kVocab = 257;  // 256 byte values + padding token
constexpr int kPad = 256;

inline float sigmoidf(float x) {
  return 1.0f / (1.0f + std::exp(-x));
}
}  // namespace

float bce_loss(float prob, float target) {
  const float p = std::clamp(prob, 1e-7f, 1.0f - 1e-7f);
  return -(target * std::log(p) + (1.0f - target) * std::log(1.0f - p));
}

ByteConvNet::ByteConvNet(const ByteConvConfig& cfg, std::uint64_t seed)
    : cfg_(cfg) {
  const int d = cfg_.embed_dim;
  const int F = cfg_.filters;
  const int W = cfg_.width;
  const int H = cfg_.hidden;
  emb_ = &params_.create("emb", static_cast<std::size_t>(kVocab) * d);
  wa_ = &params_.create("wa", static_cast<std::size_t>(F) * W * d);
  ba_ = &params_.create("ba", F);
  wb_ = &params_.create("wb", static_cast<std::size_t>(F) * W * d);
  bb_ = &params_.create("bb", F);
  const int gsize = cfg_.channel_gating ? F : 0;
  wg_ = &params_.create("wg", static_cast<std::size_t>(gsize) * gsize);
  bg_ = &params_.create("bg", gsize);
  w1_ = &params_.create("w1", static_cast<std::size_t>(H) * F);
  b1_ = &params_.create("b1", H);
  w2_ = &params_.create("w2", H);
  b2_ = &params_.create("b2", 1);

  util::Rng rng(seed);
  auto init = [&](Param& p, float scale) {
    for (float& w : p.w) w = static_cast<float>(rng.gaussian(0.0, scale));
  };
  init(*emb_, 0.3f);
  init(*wa_, 1.0f / std::sqrt(static_cast<float>(W * d)));
  init(*wb_, 1.0f / std::sqrt(static_cast<float>(W * d)));
  if (cfg_.channel_gating)
    init(*wg_, 1.0f / std::sqrt(static_cast<float>(F)));
  init(*w1_, 1.0f / std::sqrt(static_cast<float>(F)));
  init(*w2_, 1.0f / std::sqrt(static_cast<float>(H)));
  if (cfg_.nonneg) clamp_nonneg();
}

ByteConvNet::ByteConvNet(const ByteConvNet& other)
    : cfg_(other.cfg_), params_(other.params_) {
  // Re-bind the layer pointers into the copied ParamSet (same order as the
  // constructor created them).
  auto& all = params_.all();
  std::size_t i = 0;
  emb_ = all[i++];
  wa_ = all[i++];
  ba_ = all[i++];
  wb_ = all[i++];
  bb_ = all[i++];
  wg_ = all[i++];
  bg_ = all[i++];
  w1_ = all[i++];
  b1_ = all[i++];
  w2_ = all[i++];
  b2_ = all[i++];
}

std::size_t ByteConvNet::time_steps(std::size_t n_tokens) const {
  if (n_tokens < static_cast<std::size_t>(cfg_.width)) return 0;
  return (n_tokens - cfg_.width) / cfg_.stride + 1;
}

float ByteConvNet::forward(std::span<const std::uint8_t> bytes) {
  OBS_SCOPE("ml.byteconv.forward");
  const int d = cfg_.embed_dim;
  const int F = cfg_.filters;
  const int W = cfg_.width;
  const int S = cfg_.stride;
  const int H = cfg_.hidden;

  // Tokenize: truncate to L, pad (with the pad token) up to one window.
  std::size_t n = std::min(bytes.size(), cfg_.max_len);
  const std::size_t n_tok =
      std::max<std::size_t>(n, static_cast<std::size_t>(W));
  tokens_.resize(n_tok);
  for (std::size_t t = 0; t < n_tok; ++t)
    tokens_[t] = t < n ? static_cast<int>(bytes[t]) : kPad;

  // Embedding.
  x_.resize(n_tok * d);
  for (std::size_t t = 0; t < n_tok; ++t) {
    const float* row = emb_->w.data() + tokens_[t] * d;
    std::copy_n(row, d, x_.data() + t * d);
  }

  // Convolutions + gating.
  const std::size_t T = time_steps(n_tok);
  a_.assign(T * F, 0.0f);
  b_.assign(T * F, 0.0f);
  h_.assign(T * F, 0.0f);
  const int window = W * d;
  for (std::size_t p = 0; p < T; ++p) {
    const float* win = x_.data() + p * S * d;
    float* ap = a_.data() + p * F;
    float* bp = b_.data() + p * F;
    for (int f = 0; f < F; ++f) {
      const float* wra = wa_->w.data() + static_cast<std::size_t>(f) * window;
      const float* wrb = wb_->w.data() + static_cast<std::size_t>(f) * window;
      float sa = ba_->w[f];
      float sb = bb_->w[f];
      for (int i = 0; i < window; ++i) {
        sa += wra[i] * win[i];
        sb += wrb[i] * win[i];
      }
      ap[f] = sa;
      bp[f] = sb;
    }
    float* hp = h_.data() + p * F;
    for (int f = 0; f < F; ++f)
      hp[f] = cfg_.gated ? ap[f] * sigmoidf(bp[f]) : std::max(0.0f, ap[f]);
  }

  // Global channel gating (MalGCG).
  gate_.assign(F, 1.0f);
  ctx_.assign(F, 0.0f);
  if (cfg_.channel_gating && T > 0) {
    for (std::size_t p = 0; p < T; ++p)
      for (int f = 0; f < F; ++f) ctx_[f] += h_[p * F + f];
    for (int f = 0; f < F; ++f) ctx_[f] /= static_cast<float>(T);
    for (int f = 0; f < F; ++f) {
      float s = bg_->w[f];
      for (int j = 0; j < F; ++j) s += wg_->w[f * F + j] * ctx_[j];
      gate_[f] = sigmoidf(s);
    }
  }

  // Global max pooling (over gated features).
  pooled_.assign(F, 0.0f);
  argmax_.assign(F, -1);
  for (int f = 0; f < F; ++f) {
    float best = -1e30f;
    int bi = -1;
    for (std::size_t p = 0; p < T; ++p) {
      const float v = h_[p * F + f] * gate_[f];
      if (v > best) {
        best = v;
        bi = static_cast<int>(p);
      }
    }
    pooled_[f] = T > 0 ? best : 0.0f;
    argmax_[f] = bi;
  }

  // Dense head.
  u_.assign(H, 0.0f);
  for (int i = 0; i < H; ++i) {
    float s = b1_->w[i];
    for (int f = 0; f < F; ++f) s += w1_->w[i * F + f] * pooled_[f];
    u_[i] = std::max(0.0f, s);
  }
  z_ = b2_->w[0];
  for (int i = 0; i < H; ++i) z_ += w2_->w[i] * u_[i];
  prob_ = sigmoidf(z_);
  return prob_;
}

float ByteConvNet::backward(float target, std::vector<float>* input_grad,
                            bool accumulate_params, float soft_pool_tau) {
  OBS_SCOPE("ml.byteconv.backward");
  const int d = cfg_.embed_dim;
  const int F = cfg_.filters;
  const int W = cfg_.width;
  const int S = cfg_.stride;
  const int H = cfg_.hidden;
  const std::size_t T = time_steps(tokens_.size());

  const float loss = bce_loss(prob_, target);
  const float dz = prob_ - target;  // dBCE/dlogit

  // Dense head.
  std::vector<float> du(H);
  for (int i = 0; i < H; ++i) du[i] = u_[i] > 0.0f ? dz * w2_->w[i] : 0.0f;
  std::vector<float> dpool(F, 0.0f);
  for (int i = 0; i < H; ++i)
    for (int f = 0; f < F; ++f) dpool[f] += du[i] * w1_->w[i * F + f];
  if (accumulate_params) {
    b2_->g[0] += dz;
    for (int i = 0; i < H; ++i) w2_->g[i] += dz * u_[i];
    for (int i = 0; i < H; ++i) {
      b1_->g[i] += du[i];
      for (int f = 0; f < F; ++f) w1_->g[i * F + f] += du[i] * pooled_[f];
    }
  }

  // Through max pool (+ channel gating).
  std::vector<float> dh(T * F, 0.0f);
  std::vector<float> dgate(F, 0.0f);
  if (soft_pool_tau > 0.0f && T > 0) {
    // Softmax-pool surrogate: weight each window by exp(value/tau).
    const float inv_tau = 1.0f / soft_pool_tau;
    for (int f = 0; f < F; ++f) {
      const float peak = pooled_[f];
      float z = 0.0f;
      for (std::size_t p = 0; p < T; ++p)
        z += std::exp((h_[p * F + f] * gate_[f] - peak) * inv_tau);
      if (z <= 0.0f) continue;
      for (std::size_t p = 0; p < T; ++p) {
        const float w =
            std::exp((h_[p * F + f] * gate_[f] - peak) * inv_tau) / z;
        dh[p * F + f] += dpool[f] * gate_[f] * w;
        dgate[f] += dpool[f] * h_[p * F + f] * w;
      }
    }
  } else {
    for (int f = 0; f < F; ++f) {
      if (argmax_[f] < 0) continue;
      const std::size_t p = static_cast<std::size_t>(argmax_[f]);
      dh[p * F + f] += dpool[f] * gate_[f];
      dgate[f] += dpool[f] * h_[p * F + f];
    }
  }
  if (cfg_.channel_gating && T > 0) {
    std::vector<float> dpre(F);
    for (int f = 0; f < F; ++f)
      dpre[f] = dgate[f] * gate_[f] * (1.0f - gate_[f]);
    std::vector<float> dctx(F, 0.0f);
    for (int f = 0; f < F; ++f)
      for (int j = 0; j < F; ++j) dctx[j] += dpre[f] * wg_->w[f * F + j];
    if (accumulate_params) {
      for (int f = 0; f < F; ++f) {
        bg_->g[f] += dpre[f];
        for (int j = 0; j < F; ++j) wg_->g[f * F + j] += dpre[f] * ctx_[j];
      }
    }
    const float inv_t = 1.0f / static_cast<float>(T);
    for (std::size_t p = 0; p < T; ++p)
      for (int f = 0; f < F; ++f) dh[p * F + f] += dctx[f] * inv_t;
  }

  // Through gating + convolutions into the embedded input.
  std::vector<float> dx(x_.size(), 0.0f);
  const int window = W * d;
  for (std::size_t p = 0; p < T; ++p) {
    const float* hp_a = a_.data() + p * F;
    const float* hp_b = b_.data() + p * F;
    const float* win = x_.data() + p * S * d;
    float* dwin = dx.data() + p * S * d;
    for (int f = 0; f < F; ++f) {
      const float g = dh[p * F + f];
      if (g == 0.0f) continue;
      float da, db;
      if (cfg_.gated) {
        const float sb = sigmoidf(hp_b[f]);
        da = g * sb;
        db = g * hp_a[f] * sb * (1.0f - sb);
      } else {
        da = hp_a[f] > 0.0f ? g : 0.0f;
        db = 0.0f;
      }
      const float* wra = wa_->w.data() + static_cast<std::size_t>(f) * window;
      const float* wrb = wb_->w.data() + static_cast<std::size_t>(f) * window;
      if (accumulate_params) {
        float* gra = wa_->g.data() + static_cast<std::size_t>(f) * window;
        float* grb = wb_->g.data() + static_cast<std::size_t>(f) * window;
        for (int i = 0; i < window; ++i) {
          gra[i] += da * win[i];
          dwin[i] += da * wra[i];
          if (cfg_.gated) {
            grb[i] += db * win[i];
            dwin[i] += db * wrb[i];
          }
        }
        ba_->g[f] += da;
        if (cfg_.gated) bb_->g[f] += db;
      } else {
        for (int i = 0; i < window; ++i) {
          dwin[i] += da * wra[i];
          if (cfg_.gated) dwin[i] += db * wrb[i];
        }
      }
    }
  }

  // Embedding gradients.
  if (accumulate_params) {
    for (std::size_t t = 0; t < tokens_.size(); ++t) {
      float* row = emb_->g.data() + tokens_[t] * d;
      for (int k = 0; k < d; ++k) row[k] += dx[t * d + k];
    }
  }
  if (input_grad) *input_grad = std::move(dx);
  return loss;
}

std::span<const float> ByteConvNet::embedding_row(int token) const {
  return {emb_->w.data() + static_cast<std::size_t>(token) * cfg_.embed_dim,
          static_cast<std::size_t>(cfg_.embed_dim)};
}

void ByteConvNet::clamp_nonneg() {
  if (!cfg_.nonneg) return;
  for (Param* p : {w1_, w2_})
    for (float& w : p->w) w = std::max(0.0f, w);
}

void ByteConvNet::save(util::Archive& ar) const {
  ar.tag("byteconv");
  ar.u32(static_cast<std::uint32_t>(cfg_.max_len));
  ar.u32(static_cast<std::uint32_t>(cfg_.embed_dim));
  ar.u32(static_cast<std::uint32_t>(cfg_.filters));
  ar.u32(static_cast<std::uint32_t>(cfg_.width));
  ar.u32(static_cast<std::uint32_t>(cfg_.stride));
  ar.u32(static_cast<std::uint32_t>(cfg_.hidden));
  ar.u32((cfg_.gated ? 1u : 0u) | (cfg_.channel_gating ? 2u : 0u) |
         (cfg_.nonneg ? 4u : 0u));
  params_.save(ar);
}

void ByteConvNet::load(util::Unarchive& ar) {
  ar.tag("byteconv");
  ByteConvConfig cfg;
  cfg.max_len = ar.u32();
  cfg.embed_dim = static_cast<int>(ar.u32());
  cfg.filters = static_cast<int>(ar.u32());
  cfg.width = static_cast<int>(ar.u32());
  cfg.stride = static_cast<int>(ar.u32());
  cfg.hidden = static_cast<int>(ar.u32());
  const std::uint32_t flags = ar.u32();
  cfg.gated = flags & 1;
  cfg.channel_gating = (flags & 2) != 0;
  cfg.nonneg = (flags & 4) != 0;
  // Architectures must match the constructed net (params are pre-created).
  if (cfg.max_len != cfg_.max_len || cfg.embed_dim != cfg_.embed_dim ||
      cfg.filters != cfg_.filters || cfg.width != cfg_.width ||
      cfg.stride != cfg_.stride || cfg.hidden != cfg_.hidden ||
      cfg.gated != cfg_.gated || cfg.channel_gating != cfg_.channel_gating ||
      cfg.nonneg != cfg_.nonneg)
    throw util::ParseError("byteconv: config mismatch");
  params_.load(ar);
}

}  // namespace mpass::ml
