// Parameter storage and optimizers for the from-scratch neural nets.
//
// Every learnable tensor is a Param (weights + gradient accumulator)
// registered in a ParamSet; optimizers iterate the set generically.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"
#include "util/serialize.hpp"

namespace mpass::ml {

/// One learnable tensor (flat storage; shape is the owning layer's concern).
struct Param {
  std::string name;
  std::vector<float> w;  // weights
  std::vector<float> g;  // gradient (accumulated until step())

  void resize(std::size_t n) {
    w.assign(n, 0.0f);
    g.assign(n, 0.0f);
  }
  std::size_t size() const { return w.size(); }
};

/// Registry of a model's parameters.
///
/// The set carries a monotonically increasing *version*: every code path
/// that mutates weights (Adam::step, load, init_gaussian, owners' manual
/// clamps) bumps it, and consumers that cache activations keyed on the
/// weights (ByteConvNet's incremental forward) compare versions to detect
/// staleness. Code that pokes `w` directly (numeric gradient checks) must
/// call bump_version() afterwards -- or the owning net's caches go stale.
class ParamSet {
 public:
  /// Registers and returns a new parameter of n elements.
  Param& create(std::string name, std::size_t n) {
    params_.push_back(new Param{});
    params_.back()->name = std::move(name);
    params_.back()->resize(n);
    return *params_.back();
  }

  ~ParamSet() {
    for (Param* p : params_) delete p;
  }
  ParamSet() = default;
  // Deep copy: layers hold Param* into the set, so owners must re-bind
  // their pointers after copying (see ByteConvNet's copy constructor).
  ParamSet(const ParamSet& other) {
    params_.reserve(other.params_.size());
    for (const Param* p : other.params_) params_.push_back(new Param(*p));
  }
  ParamSet& operator=(const ParamSet&) = delete;

  std::vector<Param*>& all() { return params_; }
  const std::vector<Param*>& all() const { return params_; }

  void zero_grad() {
    for (Param* p : params_) std::fill(p->g.begin(), p->g.end(), 0.0f);
  }

  std::size_t total_size() const {
    std::size_t n = 0;
    for (const Param* p : params_) n += p->size();
    return n;
  }

  /// Gaussian init with per-param fan-in style scale.
  void init_gaussian(util::Rng& rng, float scale) {
    for (Param* p : params_)
      for (float& w : p->w)
        w = static_cast<float>(rng.gaussian(0.0, scale));
    bump_version();
  }

  /// Weight-mutation counter (see class comment).
  std::uint64_t version() const { return version_; }
  void bump_version() { ++version_; }

  void save(util::Archive& ar) const {
    ar.tag("params");
    ar.u32(static_cast<std::uint32_t>(params_.size()));
    for (const Param* p : params_) {
      ar.str(p->name);
      ar.floats(p->w);
    }
  }

  /// Loads weights into already-created params (names+sizes must match).
  void load(util::Unarchive& ar);

 private:
  std::vector<Param*> params_;
  std::uint64_t version_ = 0;
};

/// Adam optimizer (the paper's optimizer for perturbation generation; also
/// used for model training).
class Adam {
 public:
  explicit Adam(ParamSet& params, float lr = 1e-3f, float beta1 = 0.9f,
                float beta2 = 0.999f, float eps = 1e-8f);

  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

  /// Applies accumulated gradients and zeroes them.
  void step();

 private:
  ParamSet& params_;
  float lr_, beta1_, beta2_, eps_;
  std::uint64_t t_ = 0;
  std::vector<std::vector<float>> m_, v_;
};

}  // namespace mpass::ml
