// Reproduces Fig. 3: ASR (%) of each attack against the five commercial
// ML-AV simulators (AV1..AV5).
#include "bench_common.hpp"

int main() {
  using namespace mpass;
  const auto cfg = harness::ExperimentConfig::from_env();
  bench::BenchReport report("fig3_av_asr");
  const auto cells = harness::av_grid(cfg);
  report.add_cells(cells);
  bench::print_grid(
      "Fig. 3: ASR (%) of attacking commercial ML AVs", cells,
      bench::av_targets(), bench::main_attacks(),
      [](const harness::CellStats& c) { return c.asr; });
  std::printf(
      "Paper Fig. 3 (MPass vs best baseline):\n"
      "  AV1 42.3  AV2 35.8  AV3 61.2 (baselines <= 23.2)\n"
      "  AV4 58.8 (baselines <= 6.7)  AV5 29.2\n");
  bench::export_results_csv("avs", cells);
  return 0;
}
