// Tests for the synthetic program generator: validity, determinism,
// behavior/API consistency, and class-conditional properties.
#include <gtest/gtest.h>

#include "corpus/codegen.hpp"
#include "corpus/generator.hpp"
#include "pe/import.hpp"
#include "util/entropy.hpp"
#include "vm/sandbox.hpp"

namespace mpass::corpus {
namespace {

using util::ByteBuf;

TEST(Corpus, CompileIsDeterministic) {
  const ProgramSpec spec = sample_malware_spec(42);
  const ByteBuf a = compile_program(spec).bytes();
  const ByteBuf b = compile_program(spec).bytes();
  EXPECT_EQ(a, b);
}

TEST(Corpus, DifferentSeedsDifferentSamples) {
  EXPECT_NE(make_malware(1).bytes(), make_malware(2).bytes());
  EXPECT_NE(make_benign(1).bytes(), make_benign(2).bytes());
}

// Property sweep: every generated sample is valid, runs, and matches its
// intended verdict.
class CorpusValidity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CorpusValidity, MalwareRunsAndIsMalicious) {
  const CompiledSample s = make_malware(GetParam());
  EXPECT_TRUE(s.meta.malicious);
  const vm::Sandbox sandbox;
  const vm::SandboxReport r = sandbox.analyze(s.bytes());
  EXPECT_TRUE(r.executed_ok) << r.run.fault_reason;
  EXPECT_TRUE(r.malicious);
  EXPECT_GT(r.trace().size(), 0u);
}

TEST_P(CorpusValidity, BenignRunsClean) {
  const CompiledSample s = make_benign(GetParam());
  EXPECT_FALSE(s.meta.malicious);
  const vm::Sandbox sandbox;
  const vm::SandboxReport r = sandbox.analyze(s.bytes());
  EXPECT_TRUE(r.executed_ok) << r.run.fault_reason;
  EXPECT_FALSE(r.malicious);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorpusValidity,
                         ::testing::Range<std::uint64_t>(9000, 9012));

TEST(Corpus, OverlayLoaderSamplesCarryOverlay) {
  int with_overlay = 0;
  for (std::uint64_t i = 0; i < 40; ++i) {
    const CompiledSample s = make_malware(5000 + i);
    if (s.meta.overlay_dependent) {
      ++with_overlay;
      EXPECT_FALSE(s.pe.overlay.empty());
      // The encoded overlay payload should look high-entropy.
      EXPECT_GT(util::shannon_entropy(s.pe.overlay), 6.0);
    }
  }
  EXPECT_GT(with_overlay, 3);   // a meaningful fraction
  EXPECT_LT(with_overlay, 35);  // but not all
}

TEST(Corpus, ImportsConsistentWithBehaviors) {
  const ProgramSpec spec = sample_malware_spec(77);
  const CompiledSample s = compile_program(spec);
  const auto imports = pe::read_imports(s.pe);
  ASSERT_FALSE(imports.empty());
  if (!spec.hide_sensitive_imports) {
    // Every behavior's APIs must be importable.
    for (Behavior b : spec.behaviors)
      for (std::uint16_t id : behavior_apis(b)) {
        bool found = false;
        for (const pe::Import& imp : imports)
          if (imp.api_id == id) found = true;
        EXPECT_TRUE(found) << "api " << id;
      }
  }
}

TEST(Corpus, ImportTablesAreNoisySupersets) {
  // Both classes import APIs they never call (random supersets), so import
  // lists cannot cleanly separate the classes.
  std::size_t benign_with_hard = 0, malware_extra = 0;
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    const CompiledSample b = compile_program(sample_benign_spec(seed));
    for (const pe::Import& imp : pe::read_imports(b.pe))
      if (vm::is_hard_malicious(imp.api_id)) {
        ++benign_with_hard;
        break;
      }
    const ProgramSpec mspec = sample_malware_spec(seed);
    const CompiledSample m = compile_program(mspec);
    std::vector<std::uint16_t> used;
    for (Behavior bh : mspec.behaviors)
      for (std::uint16_t id : behavior_apis(bh)) used.push_back(id);
    for (const pe::Import& imp : pe::read_imports(m.pe))
      if (std::find(used.begin(), used.end(), imp.api_id) == used.end()) {
        ++malware_extra;
        break;
      }
  }
  EXPECT_GT(benign_with_hard, 2u);  // benign imports scary APIs too
  EXPECT_GT(malware_extra, 6u);     // malware imports unused APIs too
}

TEST(Corpus, BehaviorApiTablesCoverAllBehaviors) {
  for (int b = 0; b <= static_cast<int>(Behavior::Updater); ++b)
    EXPECT_FALSE(behavior_apis(static_cast<Behavior>(b)).empty());
}

TEST(Corpus, DatasetBalancedAndLabeled) {
  const Dataset ds = generate_dataset(123, 12, 14);
  EXPECT_EQ(ds.samples.size(), 26u);
  EXPECT_EQ(ds.count(1), 12u);
  EXPECT_EQ(ds.count(0), 14u);
  const auto [train, test] = ds.split(0.5);
  EXPECT_EQ(train.count(1), 6u);
  EXPECT_EQ(test.count(0), 7u);
}

TEST(Corpus, SaveLoadDatasetRoundTrip) {
  const Dataset ds = generate_dataset(777, 3, 4);
  const auto dir =
      std::filesystem::temp_directory_path() / "mpass_corpus_test";
  std::filesystem::remove_all(dir);
  save_dataset(ds, dir);
  EXPECT_TRUE(std::filesystem::exists(dir / "index.csv"));
  const Dataset loaded = load_dataset(dir);
  EXPECT_EQ(loaded.samples.size(), ds.samples.size());
  EXPECT_EQ(loaded.count(1), 3u);
  EXPECT_EQ(loaded.count(0), 4u);
  // Byte-identical content (order-insensitive check via multiset of sizes +
  // one exact match per label).
  std::size_t matched = 0;
  for (const Sample& a : ds.samples)
    for (const Sample& b : loaded.samples)
      if (a.bytes == b.bytes && a.label == b.label) {
        ++matched;
        break;
      }
  EXPECT_EQ(matched, ds.samples.size());
  std::filesystem::remove_all(dir);
}

TEST(Corpus, MalwareDataSectionsCarrySignal) {
  // The paper's premise: malware's data sections carry malicious features
  // (URLs, run keys, encrypted payloads). Verify strings/bytes land there.
  int with_url = 0;
  for (std::uint64_t i = 0; i < 20; ++i) {
    const CompiledSample s = make_malware(6000 + i);
    const auto idx = s.pe.find_section(".data");
    if (!idx) continue;  // shady-renamed
    const auto& data = s.pe.sections[*idx].data;
    const std::string text(data.begin(), data.end());
    if (text.find("http://") != std::string::npos ||
        text.find("HK") != std::string::npos)
      ++with_url;
  }
  EXPECT_GT(with_url, 5);
}

}  // namespace
}  // namespace mpass::corpus
