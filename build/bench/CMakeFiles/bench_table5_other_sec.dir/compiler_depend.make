# Empty compiler generated dependencies file for bench_table5_other_sec.
# This may be replaced when dependencies are built.
