// Differential round-trip oracle: the invariants every PE input, stub-knob
// setting, and attack run must satisfy. The fuzzer feeds mutated inputs
// through these checks; tests/fuzz_corpus/ holds minimized inputs that once
// violated them.
//
// Invariants on arbitrary bytes (check_pe_invariants):
//   * PeFile::parse either succeeds or throws util::ParseError -- anything
//     else (std::exception, crash, sanitizer abort) is a bug;
//   * build() of a parsed file is total and deterministic;
//   * build_with_layout agrees with the emitted bytes: Layout::section_of /
//     file offsets / overlay_offset / file_size all match, and every
//     section's data bytes appear verbatim at its layout offset;
//   * parse(build(parse(x))) is a byte-exact fixpoint (build canonicalizes,
//     so one round trip must reach the fixed point -- growing files, e.g.
//     by absorbing alignment padding into the overlay, are bugs);
//   * update_checksum() produces a file that verifies from its raw bytes;
//   * PeFile::section_by_rva agrees with the section table.
//
// Invariants on attack knobs (check_stub_options): build_recovery_section
// either rejects invalid StubOptions with std::invalid_argument or returns a
// sanely bounded section -- never a runaway allocation.
//
// Invariant on the full pipeline (check_attack_preserves): the paper's
// functionality-preservation property (§III-C) -- a modified sample, before
// and after perturbing optimizable bytes, produces the exact behavior trace
// of the original in the sandbox.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/modification.hpp"
#include "core/recovery.hpp"
#include "util/bytes.hpp"

namespace mpass::fuzz {

enum class ViolationKind {
  UnexpectedException,   // parse/build threw something besides ParseError
  BuildFailed,           // build() of a successfully parsed file threw
  NonDeterministicBuild, // build() twice gave different bytes
  LayoutMismatch,        // Layout disagrees with the emitted bytes
  ReparseFailed,         // parse(build(x)) threw
  RoundTripUnstable,     // build(parse(build(x))) != build(x)
  ChecksumMismatch,      // update_checksum() output does not verify
  RvaLookupMismatch,     // section_by_rva disagrees with the section table
  StubOptionsNotRejected,// invalid StubOptions did not throw
  StubBuildFailed,       // valid StubOptions threw / overran the size bound
  FunctionalityBroken,   // sandbox trace changed under the modification
  IncrementalScoreMismatch, // forward_delta/forward_auto != full forward
};

std::string_view kind_name(ViolationKind kind);

struct Violation {
  ViolationKind kind;
  std::string message;
};

/// Runs the structural invariants above on arbitrary bytes. Empty result
/// means clean (parse rejection via ParseError counts as clean).
std::vector<Violation> check_pe_invariants(
    std::span<const std::uint8_t> input);

/// Exercises build_recovery_section with the given knobs against a tiny
/// fixed region. Returns a violation if invalid knobs are accepted, valid
/// knobs are rejected, or the output exceeds a sane size bound.
std::optional<Violation> check_stub_options(const core::StubOptions& opts);

/// Runs the full modification on `malware` with `donor` content and checks
/// Sandbox::functionality_preserved, both for the fresh modification and
/// after perturbing a spread of optimizable bytes through set_byte (which
/// must co-update keys). `malware` must be a sandbox-valid sample.
std::optional<Violation> check_attack_preserves(
    std::span<const std::uint8_t> malware,
    std::span<const std::uint8_t> donor, const core::ModificationConfig& cfg,
    std::uint64_t seed);

/// Differential oracle for ByteConvNet's incremental forward (ISSUE 5): on
/// a fresh small net (architecture variant chosen from `seed`), cumulative
/// random window edits scored through forward_delta / forward_auto and
/// batched candidates through score_deltas must match a full-forward
/// reference net bit-for-bit (exact float equality, no tolerance).
std::optional<Violation> check_incremental_forward(
    std::span<const std::uint8_t> input, std::uint64_t seed);

}  // namespace mpass::fuzz
