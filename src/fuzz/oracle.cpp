#include "fuzz/oracle.hpp"

#include <algorithm>
#include <cstdio>

#include "ml/byteconv.hpp"
#include "obs/span.hpp"
#include "pe/import.hpp"
#include "pe/pe.hpp"
#include "util/rng.hpp"
#include "vm/sandbox.hpp"

namespace mpass::fuzz {

using util::ByteBuf;

namespace {

/// Upper bound on a recovery section built from a 16-byte region with small
/// gaps: generous, but far below the multi-GB output a gap underflow emits.
constexpr std::size_t kMaxStubSectionBytes = 32u << 20;

std::string hex32(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%llx", static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

std::string_view kind_name(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::UnexpectedException: return "unexpected_exception";
    case ViolationKind::BuildFailed: return "build_failed";
    case ViolationKind::NonDeterministicBuild: return "nondeterministic_build";
    case ViolationKind::LayoutMismatch: return "layout_mismatch";
    case ViolationKind::ReparseFailed: return "reparse_failed";
    case ViolationKind::RoundTripUnstable: return "roundtrip_unstable";
    case ViolationKind::ChecksumMismatch: return "checksum_mismatch";
    case ViolationKind::RvaLookupMismatch: return "rva_lookup_mismatch";
    case ViolationKind::StubOptionsNotRejected: return "stub_options_not_rejected";
    case ViolationKind::StubBuildFailed: return "stub_build_failed";
    case ViolationKind::FunctionalityBroken: return "functionality_broken";
    case ViolationKind::IncrementalScoreMismatch:
      return "incremental_score_mismatch";
  }
  return "unknown";
}

std::vector<Violation> check_pe_invariants(
    std::span<const std::uint8_t> input) {
  OBS_SCOPE("fuzz.oracle.pe");
  std::vector<Violation> out;
  const auto fail = [&](ViolationKind kind, std::string msg) {
    out.push_back({kind, std::move(msg)});
  };

  // looks_like_pe is a pure predicate: any exception is a bug.
  try {
    (void)pe::PeFile::looks_like_pe(input);
  } catch (const std::exception& e) {
    fail(ViolationKind::UnexpectedException,
         std::string("looks_like_pe threw: ") + e.what());
  }

  pe::PeFile f;
  try {
    f = pe::PeFile::parse(input);
  } catch (const util::ParseError&) {
    return out;  // clean rejection
  } catch (const std::exception& e) {
    fail(ViolationKind::UnexpectedException,
         std::string("parse threw non-ParseError: ") + e.what());
    return out;
  }

  // Tolerant import reading must be total on any parsed file.
  try {
    (void)pe::read_imports(f);
  } catch (const std::exception& e) {
    fail(ViolationKind::UnexpectedException,
         std::string("read_imports threw: ") + e.what());
  }

  // build() is total and deterministic on parsed files.
  pe::Layout layout;
  ByteBuf b1;
  try {
    b1 = f.build_with_layout(&layout);
    if (f.build() != b1) {
      fail(ViolationKind::NonDeterministicBuild,
           "two build() calls disagree");
      return out;
    }
  } catch (const std::exception& e) {
    fail(ViolationKind::BuildFailed, std::string("build threw: ") + e.what());
    return out;
  }

  // Layout must describe the emitted bytes exactly.
  if (layout.file_size != b1.size())
    fail(ViolationKind::LayoutMismatch,
         "file_size=" + hex32(layout.file_size) + " built=" + hex32(b1.size()));
  if (static_cast<std::uint64_t>(layout.overlay_offset) + f.overlay.size() !=
      b1.size())
    fail(ViolationKind::LayoutMismatch,
         "overlay_offset=" + hex32(layout.overlay_offset) + " overlay=" +
             hex32(f.overlay.size()) + " built=" + hex32(b1.size()));
  if (layout.sections.size() != f.sections.size()) {
    fail(ViolationKind::LayoutMismatch, "layout section count mismatch");
  } else {
    for (std::size_t i = 0; i < f.sections.size(); ++i) {
      const auto& range = layout.sections[i];
      const ByteBuf& data = f.sections[i].data;
      if (range.raw_size == 0) continue;
      if (static_cast<std::uint64_t>(range.file_offset) + range.raw_size >
              b1.size() ||
          data.size() > range.raw_size) {
        fail(ViolationKind::LayoutMismatch,
             "section " + std::to_string(i) + " range out of file");
        continue;
      }
      if (!std::equal(data.begin(), data.end(),
                      b1.begin() + range.file_offset))
        fail(ViolationKind::LayoutMismatch,
             "section " + std::to_string(i) + " bytes not at layout offset");
      if (layout.section_of(range.file_offset) != i ||
          layout.section_of(range.file_offset + range.raw_size - 1) != i)
        fail(ViolationKind::LayoutMismatch,
             "section_of disagrees for section " + std::to_string(i));
    }
    if (layout.headers_size > 0 && layout.section_of(0).has_value())
      fail(ViolationKind::LayoutMismatch, "section_of(0) inside headers");
  }

  // section_by_rva must return a section actually containing the RVA.
  for (std::size_t i = 0; i < f.sections.size(); ++i) {
    const pe::Section& s = f.sections[i];
    const auto hit = f.section_by_rva(s.vaddr);
    if (!hit.has_value()) {
      fail(ViolationKind::RvaLookupMismatch,
           "section_by_rva missed vaddr of section " + std::to_string(i));
      continue;
    }
    const pe::Section& h = f.sections[*hit];
    const std::uint32_t span = std::max(
        std::max(h.vsize, static_cast<std::uint32_t>(h.data.size())), 1u);
    if (!(s.vaddr >= h.vaddr && s.vaddr - h.vaddr < span))
      fail(ViolationKind::RvaLookupMismatch,
           "section_by_rva returned non-containing section " +
               std::to_string(*hit));
  }

  // Round trip: parse(b1) must succeed, and rebuild byte-exactly (build
  // canonicalizes, so the fixpoint must be reached after one trip).
  pe::PeFile g;
  try {
    g = pe::PeFile::parse(b1);
  } catch (const std::exception& e) {
    fail(ViolationKind::ReparseFailed,
         std::string("parse of built file threw: ") + e.what());
    return out;
  }
  ByteBuf b2;
  try {
    b2 = g.build();
  } catch (const std::exception& e) {
    fail(ViolationKind::BuildFailed,
         std::string("rebuild threw: ") + e.what());
    return out;
  }
  if (b2 != b1) {
    std::size_t at = 0;
    const std::size_t n = std::min(b1.size(), b2.size());
    while (at < n && b1[at] == b2[at]) ++at;
    fail(ViolationKind::RoundTripUnstable,
         "sizes " + hex32(b1.size()) + " vs " + hex32(b2.size()) +
             ", first difference at " + hex32(at));
  }

  // Checksum verification from raw bytes.
  try {
    g.update_checksum();
    const ByteBuf bc = g.build();
    const std::uint32_t stored = pe::PeFile::parse(bc).checksum;
    const std::uint32_t recomputed = pe::PeFile::compute_checksum(bc);
    if (stored != g.checksum || recomputed != g.checksum)
      fail(ViolationKind::ChecksumMismatch,
           "stored=" + hex32(stored) + " recomputed=" + hex32(recomputed) +
               " expected=" + hex32(g.checksum));
  } catch (const std::exception& e) {
    fail(ViolationKind::ChecksumMismatch,
         std::string("checksum pipeline threw: ") + e.what());
  }

  return out;
}

std::optional<Violation> check_stub_options(const core::StubOptions& opts) {
  OBS_SCOPE("fuzz.oracle.stub");
  const bool invalid = opts.chunk_items < 1 || opts.max_gap < opts.min_gap;

  const core::RegionPlan region{/*va=*/0x401000, /*len=*/16, /*prot=*/3};
  const ByteBuf key(16, 0x5A);
  const ByteBuf filler(64, 0x90);
  util::Rng rng(7);
  try {
    const core::RecoverySection sec = core::build_recovery_section(
        {&region, 1}, {&key, 1}, /*section_va=*/0x405000, /*oep_va=*/0x401000,
        filler, opts, rng);
    if (invalid)
      return Violation{ViolationKind::StubOptionsNotRejected,
                       "invalid StubOptions built a section of " +
                           std::to_string(sec.data.size()) + " bytes"};
    if (sec.data.size() > kMaxStubSectionBytes)
      return Violation{ViolationKind::StubBuildFailed,
                       "oversized section: " +
                           std::to_string(sec.data.size()) + " bytes"};
  } catch (const std::invalid_argument&) {
    if (!invalid)
      return Violation{ViolationKind::StubBuildFailed,
                       "valid StubOptions rejected"};
  } catch (const std::exception& e) {
    return Violation{ViolationKind::StubBuildFailed,
                     std::string("unexpected exception: ") + e.what()};
  }
  return std::nullopt;
}

std::optional<Violation> check_attack_preserves(
    std::span<const std::uint8_t> malware,
    std::span<const std::uint8_t> donor, const core::ModificationConfig& cfg,
    std::uint64_t seed) {
  OBS_SCOPE("fuzz.oracle.attack");
  util::Rng rng(seed);
  core::ModifiedSample mod;
  try {
    mod = core::apply_modification(malware, donor, cfg, rng);
  } catch (const std::exception& e) {
    return Violation{ViolationKind::FunctionalityBroken,
                     std::string("apply_modification threw: ") + e.what()};
  }

  const ByteBuf original(malware.begin(), malware.end());
  const vm::Sandbox sandbox;
  if (!sandbox.functionality_preserved(original, mod.bytes))
    return Violation{ViolationKind::FunctionalityBroken,
                     "fresh modification changed the behavior trace"};

  // Perturb a spread of optimizable bytes; set_byte must co-update keys so
  // behavior is still identical (paper Eq. 2's M*delta constraint).
  if (!mod.perturbable.empty()) {
    const std::size_t writes =
        std::min<std::size_t>(mod.perturbable.size(), 256);
    for (std::size_t i = 0; i < writes; ++i) {
      const std::uint32_t p =
          mod.perturbable[rng.below(mod.perturbable.size())];
      mod.set_byte(p, rng.byte());
    }
    if (!sandbox.functionality_preserved(original, mod.bytes))
      return Violation{ViolationKind::FunctionalityBroken,
                       "perturbing optimizable bytes changed the trace"};
  }
  return std::nullopt;
}

std::optional<Violation> check_incremental_forward(
    std::span<const std::uint8_t> input, std::uint64_t seed) {
  OBS_SCOPE("fuzz.oracle.incremental");
  util::Rng rng(seed);

  // Small net so the full-forward reference stays cheap; the seed picks the
  // architecture variant so gated, relu and channel-gated (MalGCG) pool
  // repair paths all get fuzzed over time.
  ml::ByteConvConfig cfg;
  cfg.max_len = 2048;
  cfg.embed_dim = 4;
  cfg.filters = 8;
  cfg.width = 16;
  cfg.stride = 8;
  cfg.hidden = 8;
  cfg.channel_gating = (seed & 1) != 0;
  cfg.gated = cfg.channel_gating || ((seed >> 1) & 1) != 0;

  ml::ByteConvNet inc(cfg, seed);
  ml::ByteConvNet ref(inc);  // identical parameters, independent caches
  inc.set_incremental(true);
  ref.set_incremental(false);

  const auto mismatch = [&](std::string_view where, float got, float want) {
    return Violation{
        ViolationKind::IncrementalScoreMismatch,
        std::string(where) + ": incremental=" + std::to_string(got) +
            " full=" + std::to_string(want) +
            (cfg.channel_gating ? " [channel_gating]"
                                : (cfg.gated ? " [gated]" : " [relu]"))};
  };

  ByteBuf buf(input.begin(), input.end());
  if (buf.empty()) {
    buf.resize(64);
    for (auto& x : buf) x = rng.byte();
  }
  if (inc.forward_auto(buf) != ref.forward(buf))
    return mismatch("base", inc.forward_auto(buf), ref.forward(buf));

  // Cumulative random window edits; some straddle the max_len truncation
  // boundary or fall entirely past it (must be no-ops on the score).
  for (int i = 0; i < 16; ++i) {
    const std::size_t pos = rng.below(buf.size());
    const std::size_t len =
        std::min<std::size_t>(1 + rng.below(64), buf.size() - pos);
    for (std::size_t j = 0; j < len; ++j) buf[pos + j] = rng.byte();
    const ml::ByteRange dirty{pos, pos + len};
    const float d = inc.forward_delta(buf, {&dirty, 1});
    const float f = ref.forward(buf);
    if (d != f) return mismatch("forward_delta edit " + std::to_string(i), d, f);
    const float a = inc.forward_auto(buf);
    if (a != f) return mismatch("forward_auto edit " + std::to_string(i), a, f);
  }

  // Batched independent candidates against one cached baseline.
  std::vector<ByteBuf> payloads(8);
  std::vector<ml::ByteEdit> edits;
  edits.reserve(payloads.size());
  for (ByteBuf& p : payloads) {
    p.resize(1 + rng.below(48));
    for (auto& x : p) x = rng.byte();
    edits.push_back({rng.below(buf.size()), p});
  }
  const std::vector<float> batched = inc.score_deltas(buf, edits);
  for (std::size_t i = 0; i < edits.size(); ++i) {
    ByteBuf variant = buf;
    const std::size_t lo = std::min(edits[i].offset, variant.size());
    const std::size_t hi =
        std::min(edits[i].offset + edits[i].bytes.size(), variant.size());
    std::copy(edits[i].bytes.begin(),
              edits[i].bytes.begin() + static_cast<std::ptrdiff_t>(hi - lo),
              variant.begin() + static_cast<std::ptrdiff_t>(lo));
    const float f = ref.forward(variant);
    if (batched[i] != f)
      return mismatch("score_deltas[" + std::to_string(i) + "]", batched[i], f);
  }
  // score_deltas must leave the cache corresponding to the unedited base.
  if (inc.forward_auto(buf) != ref.forward(buf))
    return mismatch("post-batch base", inc.forward_auto(buf), ref.forward(buf));

  return std::nullopt;
}

}  // namespace mpass::fuzz
