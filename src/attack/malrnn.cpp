#include "attack/malrnn.hpp"

#include "pe/pe.hpp"

namespace mpass::attack {

using util::ByteBuf;

AttackResult MalRnn::run(std::span<const std::uint8_t> malware,
                         detect::HardLabelOracle& oracle,
                         std::uint64_t seed) {
  util::Rng rng(seed);
  AttackResult result;
  result.adversarial.assign(malware.begin(), malware.end());

  pe::PeFile pe;
  try {
    pe = pe::PeFile::parse(malware);
  } catch (const util::ParseError&) {
    return result;
  }

  const std::size_t original_overlay = pe.overlay.size();
  std::size_t chunk = cfg_.initial_chunk;
  std::size_t appended = 0;
  while (!oracle.exhausted()) {
    // Once the append budget is exhausted, strip back to the original
    // overlay and resample a fresh stream (bounded file size, new dice).
    if (appended >= cfg_.max_total) {
      pe.overlay.resize(original_overlay);
      appended = 0;
      chunk = cfg_.initial_chunk;
    }
    // Condition the LM on the current overlay tail so the stream continues
    // naturally (the seq2seq conditioning of the original attack).
    std::span<const std::uint8_t> context(pe.overlay);
    ByteBuf generated = lm_.generate(chunk, rng, context, cfg_.temperature);
    pe.overlay.insert(pe.overlay.end(), generated.begin(), generated.end());
    appended += generated.size();

    ByteBuf sample = pe.build();
    const bool detected = oracle.query(sample);
    if (!detected) {
      result.success = true;
      result.adversarial = std::move(sample);
      break;
    }
    chunk = std::min(cfg_.max_chunk,
                     static_cast<std::size_t>(static_cast<double>(chunk) *
                                              cfg_.growth));
    result.adversarial = std::move(sample);
  }
  result.apr = apr_of(malware.size(), result.adversarial.size());
  return result;
}

}  // namespace mpass::attack
