#include "ml/byteconv.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/bytes.hpp"

namespace mpass::ml {

namespace {
constexpr int kVocab = 257;  // 256 byte values + padding token
constexpr int kPad = 256;

inline float sigmoidf(float x) {
  return 1.0f / (1.0f + std::exp(-x));
}

bool incremental_default() {
  static const bool off = [] {
    const char* v = std::getenv("MPASS_NO_INCREMENTAL");
    return v != nullptr && *v != '\0' && *v != '0';
  }();
  return !off;
}

/// Clamps `ranges` to [0, n), drops empties, and coalesces sorted/nearby
/// ranges (gap <= width) so overlapping timestep windows are visited once.
std::vector<ByteRange> normalize_ranges(std::span<const ByteRange> ranges,
                                        std::size_t n, std::size_t width) {
  std::vector<ByteRange> out;
  out.reserve(ranges.size());
  for (const ByteRange& r : ranges) {
    const std::size_t lo = std::min(r.lo, n);
    const std::size_t hi = std::min(r.hi, n);
    if (lo < hi) out.push_back({lo, hi});
  }
  std::sort(out.begin(), out.end(),
            [](const ByteRange& a, const ByteRange& b) { return a.lo < b.lo; });
  std::size_t w = 0;
  for (std::size_t i = 1; i < out.size(); ++i) {
    if (out[i].lo <= out[w].hi + width) {
      out[w].hi = std::max(out[w].hi, out[i].hi);
    } else {
      out[++w] = out[i];
    }
  }
  if (!out.empty()) out.resize(w + 1);
  return out;
}
}  // namespace

float bce_loss(float prob, float target) {
  const float p = std::clamp(prob, 1e-7f, 1.0f - 1e-7f);
  return -(target * std::log(p) + (1.0f - target) * std::log(1.0f - p));
}

ByteConvNet::ByteConvNet(const ByteConvConfig& cfg, std::uint64_t seed)
    : cfg_(cfg), incremental_(incremental_default()) {
  const int d = cfg_.embed_dim;
  const int F = cfg_.filters;
  const int W = cfg_.width;
  const int H = cfg_.hidden;
  emb_ = &params_.create("emb", static_cast<std::size_t>(kVocab) * d);
  wa_ = &params_.create("wa", static_cast<std::size_t>(F) * W * d);
  ba_ = &params_.create("ba", F);
  wb_ = &params_.create("wb", static_cast<std::size_t>(F) * W * d);
  bb_ = &params_.create("bb", F);
  const int gsize = cfg_.channel_gating ? F : 0;
  wg_ = &params_.create("wg", static_cast<std::size_t>(gsize) * gsize);
  bg_ = &params_.create("bg", gsize);
  w1_ = &params_.create("w1", static_cast<std::size_t>(H) * F);
  b1_ = &params_.create("b1", H);
  w2_ = &params_.create("w2", H);
  b2_ = &params_.create("b2", 1);

  util::Rng rng(seed);
  auto init = [&](Param& p, float scale) {
    for (float& w : p.w) w = static_cast<float>(rng.gaussian(0.0, scale));
  };
  init(*emb_, 0.3f);
  init(*wa_, 1.0f / std::sqrt(static_cast<float>(W * d)));
  init(*wb_, 1.0f / std::sqrt(static_cast<float>(W * d)));
  if (cfg_.channel_gating)
    init(*wg_, 1.0f / std::sqrt(static_cast<float>(F)));
  init(*w1_, 1.0f / std::sqrt(static_cast<float>(F)));
  init(*w2_, 1.0f / std::sqrt(static_cast<float>(H)));
  if (cfg_.nonneg) clamp_nonneg();
}

ByteConvNet::ByteConvNet(const ByteConvNet& other)
    : cfg_(other.cfg_),
      params_(other.params_),
      incremental_(other.incremental_) {
  // The activation caches are deliberately not copied: the clone starts
  // cache-invalid and its first incremental call runs a full forward.
  // Re-bind the layer pointers into the copied ParamSet (same order as the
  // constructor created them).
  auto& all = params_.all();
  std::size_t i = 0;
  emb_ = all[i++];
  wa_ = all[i++];
  ba_ = all[i++];
  wb_ = all[i++];
  bb_ = all[i++];
  wg_ = all[i++];
  bg_ = all[i++];
  w1_ = all[i++];
  b1_ = all[i++];
  w2_ = all[i++];
  b2_ = all[i++];
}

std::size_t ByteConvNet::time_steps(std::size_t n_tokens) const {
  if (n_tokens < static_cast<std::size_t>(cfg_.width)) return 0;
  return (n_tokens - cfg_.width) / cfg_.stride + 1;
}

float ByteConvNet::forward(std::span<const std::uint8_t> bytes) {
  OBS_SCOPE("ml.byteconv.forward");
  return full_forward(bytes);
}

void ByteConvNet::conv_row(std::size_t p) {
  const int d = cfg_.embed_dim;
  const int F = cfg_.filters;
  const int window = cfg_.width * d;
  const float* win = x_.data() + p * cfg_.stride * d;
  float* ap = a_.data() + p * F;
  float* bp = b_.data() + p * F;
  for (int f = 0; f < F; ++f) {
    const float* wra = wa_->w.data() + static_cast<std::size_t>(f) * window;
    const float* wrb = wb_->w.data() + static_cast<std::size_t>(f) * window;
    float sa = ba_->w[f];
    float sb = bb_->w[f];
    for (int i = 0; i < window; ++i) {
      sa += wra[i] * win[i];
      sb += wrb[i] * win[i];
    }
    ap[f] = sa;
    bp[f] = sb;
  }
  float* hp = h_.data() + p * F;
  for (int f = 0; f < F; ++f)
    hp[f] = cfg_.gated ? ap[f] * sigmoidf(bp[f]) : std::max(0.0f, ap[f]);
}

void ByteConvNet::pool_and_head() {
  const int F = cfg_.filters;
  const std::size_t T = time_steps(tokens_.size());

  // Global channel gating (MalGCG).
  gate_.assign(F, 1.0f);
  ctx_.assign(F, 0.0f);
  if (cfg_.channel_gating && T > 0) {
    for (std::size_t p = 0; p < T; ++p)
      for (int f = 0; f < F; ++f) ctx_[f] += h_[p * F + f];
    for (int f = 0; f < F; ++f) ctx_[f] /= static_cast<float>(T);
    for (int f = 0; f < F; ++f) {
      float s = bg_->w[f];
      for (int j = 0; j < F; ++j) s += wg_->w[f * F + j] * ctx_[j];
      gate_[f] = sigmoidf(s);
    }
  }

  // Global max pooling (over gated features).
  pooled_.assign(F, 0.0f);
  argmax_.assign(F, -1);
  for (int f = 0; f < F; ++f) {
    float best = -1e30f;
    int bi = -1;
    for (std::size_t p = 0; p < T; ++p) {
      const float v = h_[p * F + f] * gate_[f];
      if (v > best) {
        best = v;
        bi = static_cast<int>(p);
      }
    }
    pooled_[f] = T > 0 ? best : 0.0f;
    argmax_[f] = bi;
  }

  dense_head();
}

void ByteConvNet::dense_head() {
  const int F = cfg_.filters;
  const int H = cfg_.hidden;
  u_.assign(H, 0.0f);
  for (int i = 0; i < H; ++i) {
    float s = b1_->w[i];
    for (int f = 0; f < F; ++f) s += w1_->w[i * F + f] * pooled_[f];
    u_[i] = std::max(0.0f, s);
  }
  z_ = b2_->w[0];
  for (int i = 0; i < H; ++i) z_ += w2_->w[i] * u_[i];
  prob_ = sigmoidf(z_);
}

float ByteConvNet::full_forward(std::span<const std::uint8_t> bytes) {
  static const obs::Counter count_full("ml.forward.full");
  count_full.inc();
  const int d = cfg_.embed_dim;
  const int F = cfg_.filters;
  const int W = cfg_.width;

  // Tokenize: truncate to L, pad (with the pad token) up to one window.
  const std::size_t n = std::min(bytes.size(), cfg_.max_len);
  const std::size_t n_tok =
      std::max<std::size_t>(n, static_cast<std::size_t>(W));
  tokens_.resize(n_tok);
  for (std::size_t t = 0; t < n_tok; ++t)
    tokens_[t] = t < n ? static_cast<int>(bytes[t]) : kPad;

  // Embedding.
  x_.resize(n_tok * d);
  for (std::size_t t = 0; t < n_tok; ++t) {
    const float* row = emb_->w.data() + tokens_[t] * d;
    std::copy_n(row, d, x_.data() + t * d);
  }

  // Convolutions + gating.
  const std::size_t T = time_steps(n_tok);
  a_.assign(T * F, 0.0f);
  b_.assign(T * F, 0.0f);
  h_.assign(T * F, 0.0f);
  for (std::size_t p = 0; p < T; ++p) conv_row(p);

  pool_and_head();

  cache_valid_ = true;
  cache_n_ = n;
  cache_version_ = params_.version();
  return prob_;
}

bool ByteConvNet::cache_usable(std::size_t n, std::size_t n_tok) const {
  return cache_valid_ && n == cache_n_ && n_tok == tokens_.size() &&
         cache_version_ == params_.version();
}

float ByteConvNet::apply_delta(std::span<const std::uint8_t> bytes,
                               std::span<const ByteRange> ranges) {
  OBS_SCOPE("ml.forward_delta");
  static const obs::Counter count_delta("ml.forward.delta");
  count_delta.inc();
  const int d = cfg_.embed_dim;
  const int F = cfg_.filters;
  const int W = cfg_.width;
  const int S = cfg_.stride;
  const std::size_t T = time_steps(tokens_.size());

  // Re-tokenize + re-embed the dirty positions (identical copy of the
  // embedding row, so unchanged-value writes stay bitwise stable).
  for (const ByteRange& r : ranges) {
    for (std::size_t t = r.lo; t < r.hi; ++t) {
      tokens_[t] = static_cast<int>(bytes[t]);
      const float* row = emb_->w.data() + tokens_[t] * d;
      std::copy_n(row, d, x_.data() + t * d);
    }
  }

  // Dirty byte range -> overlapping timesteps: window p covers positions
  // [p*S, p*S + W), so it overlaps [lo, hi) iff p*S < hi and p*S + W > lo.
  std::vector<ByteRange> tranges;
  tranges.reserve(ranges.size());
  for (const ByteRange& r : ranges) {
    const std::size_t p_lo =
        r.lo >= static_cast<std::size_t>(W)
            ? (r.lo - static_cast<std::size_t>(W)) / S + 1
            : 0;
    const std::size_t p_hi = std::min(T, (r.hi - 1) / S + 1);
    if (p_lo < p_hi) tranges.push_back({p_lo, p_hi});
  }
  // normalize_ranges already coalesced byte ranges with gap <= W, so the
  // timestep ranges are sorted; merge any residual overlap.
  std::size_t w = 0;
  for (std::size_t i = 1; i < tranges.size(); ++i) {
    if (tranges[i].lo <= tranges[w].hi) {
      tranges[w].hi = std::max(tranges[w].hi, tranges[i].hi);
    } else {
      tranges[++w] = tranges[i];
    }
  }
  if (!tranges.empty()) tranges.resize(w + 1);

  for (const ByteRange& tr : tranges)
    for (std::size_t p = tr.lo; p < tr.hi; ++p) conv_row(p);

  if (cfg_.channel_gating) {
    // Any h row perturbs the mean-pooled context and hence every gate, so
    // every pooled value moves: recompute gating + pool + head outright.
    // The conv above is ~W*d times the cost of this scan, so the delta
    // still pays off; the full-order recompute keeps bitwise equality.
    pool_and_head();
    return prob_;
  }

  // Incremental max-pool repair. For each filter, the cached argmax is
  // still the max over every non-dirty timestep; only if its own value
  // decreased can the max hide among non-dirty timesteps, forcing a full
  // rescan (same comparison order as pool_and_head, hence bitwise equal).
  // The `==`+earlier-index tie rule reproduces the full scan's first-max
  // semantics: a non-dirty timestep tied with the cached max can only sit
  // *after* the cached argmax (it lost the original scan), so dirty
  // candidates decide every tie that can change the winner.
  const auto in_dirty = [&tranges](int p) {
    for (const ByteRange& tr : tranges)
      if (static_cast<std::size_t>(p) >= tr.lo &&
          static_cast<std::size_t>(p) < tr.hi)
        return true;
    return false;
  };
  for (int f = 0; f < F; ++f) {
    float best = pooled_[f];
    int bi = argmax_[f];
    bool rescan = bi < 0;
    if (!rescan && in_dirty(bi)) {
      const float v = h_[static_cast<std::size_t>(bi) * F + f] * gate_[f];
      if (v < pooled_[f]) {
        rescan = true;  // previous argmax decreased: max may be anywhere
      } else {
        best = v;
      }
    }
    if (rescan) {
      best = -1e30f;
      bi = -1;
      for (std::size_t p = 0; p < T; ++p) {
        const float v = h_[p * F + f] * gate_[f];
        if (v > best) {
          best = v;
          bi = static_cast<int>(p);
        }
      }
      pooled_[f] = T > 0 ? best : 0.0f;
      argmax_[f] = bi;
      continue;
    }
    for (const ByteRange& tr : tranges) {
      for (std::size_t p = tr.lo; p < tr.hi; ++p) {
        const float v = h_[p * F + f] * gate_[f];
        if (v > best || (v == best && static_cast<int>(p) < bi)) {
          best = v;
          bi = static_cast<int>(p);
        }
      }
    }
    pooled_[f] = best;
    argmax_[f] = bi;
  }

  dense_head();
  return prob_;
}

float ByteConvNet::forward_delta(std::span<const std::uint8_t> bytes,
                                 std::span<const ByteRange> dirty) {
  const std::size_t n = std::min(bytes.size(), cfg_.max_len);
  const std::size_t n_tok =
      std::max<std::size_t>(n, static_cast<std::size_t>(cfg_.width));
  if (!incremental_ || !cache_usable(n, n_tok)) return forward(bytes);
  const std::vector<ByteRange> ranges =
      normalize_ranges(dirty, n, static_cast<std::size_t>(cfg_.width));
  // A dirty set covering most timesteps recomputes nearly everything; the
  // straight full forward is then cheaper than delta bookkeeping.
  std::size_t dirty_bytes = 0;
  for (const ByteRange& r : ranges) dirty_bytes += r.hi - r.lo;
  if (dirty_bytes * 2 > n_tok) return forward(bytes);
  return apply_delta(bytes, ranges);
}

float ByteConvNet::forward_auto(std::span<const std::uint8_t> bytes) {
  const std::size_t n = std::min(bytes.size(), cfg_.max_len);
  const std::size_t n_tok =
      std::max<std::size_t>(n, static_cast<std::size_t>(cfg_.width));
  if (!incremental_ || !cache_usable(n, n_tok)) return forward(bytes);

  // Diff the new buffer against the cached token stream. Positions in
  // [n, n_tok) are padding and cannot differ (n matches the cache).
  std::vector<ByteRange> ranges;
  const std::size_t gap = cfg_.width;  // coalesce nearby edits
  std::size_t dirty_bytes = 0;
  for (std::size_t t = 0; t < n; ++t) {
    if (tokens_[t] == static_cast<int>(bytes[t])) continue;
    std::size_t end = t + 1;
    if (!ranges.empty() && t <= ranges.back().hi + gap) {
      dirty_bytes += end - ranges.back().hi;
      ranges.back().hi = end;
    } else {
      ranges.push_back({t, end});
      ++dirty_bytes;
    }
    if (dirty_bytes * 2 > n_tok) return forward(bytes);
  }
  if (ranges.empty()) {
    static const obs::Counter count_cached("ml.forward.cached");
    count_cached.inc();
    return prob_;  // byte-identical to the cached input
  }
  return apply_delta(bytes, ranges);
}

std::vector<float> ByteConvNet::score_deltas(
    std::span<const std::uint8_t> base, std::span<const ByteEdit> edits) {
  std::vector<float> out;
  out.reserve(edits.size());
  // Establish (or cheaply re-verify) the cached baseline, then walk the
  // candidates: each forward_delta declares both the previous edit's range
  // (reverted) and the current one, so the cache always chases the scratch
  // buffer. On exit the cache is rolled back to `base` bit-for-bit.
  util::ByteBuf scratch(base.begin(), base.end());
  forward_auto(base);
  ByteRange prev{0, 0};
  for (const ByteEdit& e : edits) {
    const std::size_t lo = std::min(e.offset, scratch.size());
    const std::size_t hi = std::min(e.offset + e.bytes.size(), scratch.size());
    if (hi > lo) std::copy_n(e.bytes.data(), hi - lo, scratch.data() + lo);
    const ByteRange cur{lo, hi};
    const ByteRange dirty[2] = {prev, cur};
    out.push_back(forward_delta(scratch, dirty));
    if (hi > lo) std::copy_n(base.data() + lo, hi - lo, scratch.data() + lo);
    prev = cur;
  }
  if (prev.lo < prev.hi) forward_delta(base, {&prev, 1});
  return out;
}

float ByteConvNet::backward(float target, std::vector<float>* input_grad,
                            bool accumulate_params, float soft_pool_tau) {
  OBS_SCOPE("ml.byteconv.backward");
  const int d = cfg_.embed_dim;
  const int F = cfg_.filters;
  const int W = cfg_.width;
  const int S = cfg_.stride;
  const int H = cfg_.hidden;
  const std::size_t T = time_steps(tokens_.size());

  const float loss = bce_loss(prob_, target);
  const float dz = prob_ - target;  // dBCE/dlogit

  // Dense head.
  std::vector<float> du(H);
  for (int i = 0; i < H; ++i) du[i] = u_[i] > 0.0f ? dz * w2_->w[i] : 0.0f;
  std::vector<float> dpool(F, 0.0f);
  for (int i = 0; i < H; ++i)
    for (int f = 0; f < F; ++f) dpool[f] += du[i] * w1_->w[i * F + f];
  if (accumulate_params) {
    b2_->g[0] += dz;
    for (int i = 0; i < H; ++i) w2_->g[i] += dz * u_[i];
    for (int i = 0; i < H; ++i) {
      b1_->g[i] += du[i];
      for (int f = 0; f < F; ++f) w1_->g[i * F + f] += du[i] * pooled_[f];
    }
  }

  // Through max pool (+ channel gating).
  std::vector<float> dh(T * F, 0.0f);
  std::vector<float> dgate(F, 0.0f);
  if (soft_pool_tau > 0.0f && T > 0) {
    // Softmax-pool surrogate: weight each window by exp(value/tau).
    const float inv_tau = 1.0f / soft_pool_tau;
    for (int f = 0; f < F; ++f) {
      const float peak = pooled_[f];
      float z = 0.0f;
      for (std::size_t p = 0; p < T; ++p)
        z += std::exp((h_[p * F + f] * gate_[f] - peak) * inv_tau);
      if (z <= 0.0f) continue;
      for (std::size_t p = 0; p < T; ++p) {
        const float w =
            std::exp((h_[p * F + f] * gate_[f] - peak) * inv_tau) / z;
        dh[p * F + f] += dpool[f] * gate_[f] * w;
        dgate[f] += dpool[f] * h_[p * F + f] * w;
      }
    }
  } else {
    for (int f = 0; f < F; ++f) {
      if (argmax_[f] < 0) continue;
      const std::size_t p = static_cast<std::size_t>(argmax_[f]);
      dh[p * F + f] += dpool[f] * gate_[f];
      dgate[f] += dpool[f] * h_[p * F + f];
    }
  }
  if (cfg_.channel_gating && T > 0) {
    std::vector<float> dpre(F);
    for (int f = 0; f < F; ++f)
      dpre[f] = dgate[f] * gate_[f] * (1.0f - gate_[f]);
    std::vector<float> dctx(F, 0.0f);
    for (int f = 0; f < F; ++f)
      for (int j = 0; j < F; ++j) dctx[j] += dpre[f] * wg_->w[f * F + j];
    if (accumulate_params) {
      for (int f = 0; f < F; ++f) {
        bg_->g[f] += dpre[f];
        for (int j = 0; j < F; ++j) wg_->g[f * F + j] += dpre[f] * ctx_[j];
      }
    }
    const float inv_t = 1.0f / static_cast<float>(T);
    for (std::size_t p = 0; p < T; ++p)
      for (int f = 0; f < F; ++f) dh[p * F + f] += dctx[f] * inv_t;
  }

  // Through gating + convolutions into the embedded input.
  std::vector<float> dx(x_.size(), 0.0f);
  const int window = W * d;
  for (std::size_t p = 0; p < T; ++p) {
    const float* hp_a = a_.data() + p * F;
    const float* hp_b = b_.data() + p * F;
    const float* win = x_.data() + p * S * d;
    float* dwin = dx.data() + p * S * d;
    for (int f = 0; f < F; ++f) {
      const float g = dh[p * F + f];
      if (g == 0.0f) continue;
      float da, db;
      if (cfg_.gated) {
        const float sb = sigmoidf(hp_b[f]);
        da = g * sb;
        db = g * hp_a[f] * sb * (1.0f - sb);
      } else {
        da = hp_a[f] > 0.0f ? g : 0.0f;
        db = 0.0f;
      }
      const float* wra = wa_->w.data() + static_cast<std::size_t>(f) * window;
      const float* wrb = wb_->w.data() + static_cast<std::size_t>(f) * window;
      if (accumulate_params) {
        float* gra = wa_->g.data() + static_cast<std::size_t>(f) * window;
        float* grb = wb_->g.data() + static_cast<std::size_t>(f) * window;
        for (int i = 0; i < window; ++i) {
          gra[i] += da * win[i];
          dwin[i] += da * wra[i];
          if (cfg_.gated) {
            grb[i] += db * win[i];
            dwin[i] += db * wrb[i];
          }
        }
        ba_->g[f] += da;
        if (cfg_.gated) bb_->g[f] += db;
      } else {
        for (int i = 0; i < window; ++i) {
          dwin[i] += da * wra[i];
          if (cfg_.gated) dwin[i] += db * wrb[i];
        }
      }
    }
  }

  // Embedding gradients.
  if (accumulate_params) {
    for (std::size_t t = 0; t < tokens_.size(); ++t) {
      float* row = emb_->g.data() + tokens_[t] * d;
      for (int k = 0; k < d; ++k) row[k] += dx[t * d + k];
    }
  }
  if (input_grad) *input_grad = std::move(dx);
  return loss;
}

std::span<const float> ByteConvNet::embedding_row(int token) const {
  return {emb_->w.data() + static_cast<std::size_t>(token) * cfg_.embed_dim,
          static_cast<std::size_t>(cfg_.embed_dim)};
}

void ByteConvNet::clamp_nonneg() {
  if (!cfg_.nonneg) return;
  for (Param* p : {w1_, w2_})
    for (float& w : p->w) w = std::max(0.0f, w);
  params_.bump_version();
}

void ByteConvNet::save(util::Archive& ar) const {
  ar.tag("byteconv");
  ar.u32(static_cast<std::uint32_t>(cfg_.max_len));
  ar.u32(static_cast<std::uint32_t>(cfg_.embed_dim));
  ar.u32(static_cast<std::uint32_t>(cfg_.filters));
  ar.u32(static_cast<std::uint32_t>(cfg_.width));
  ar.u32(static_cast<std::uint32_t>(cfg_.stride));
  ar.u32(static_cast<std::uint32_t>(cfg_.hidden));
  ar.u32((cfg_.gated ? 1u : 0u) | (cfg_.channel_gating ? 2u : 0u) |
         (cfg_.nonneg ? 4u : 0u));
  params_.save(ar);
}

void ByteConvNet::load(util::Unarchive& ar) {
  ar.tag("byteconv");
  ByteConvConfig cfg;
  cfg.max_len = ar.u32();
  cfg.embed_dim = static_cast<int>(ar.u32());
  cfg.filters = static_cast<int>(ar.u32());
  cfg.width = static_cast<int>(ar.u32());
  cfg.stride = static_cast<int>(ar.u32());
  cfg.hidden = static_cast<int>(ar.u32());
  const std::uint32_t flags = ar.u32();
  cfg.gated = flags & 1;
  cfg.channel_gating = (flags & 2) != 0;
  cfg.nonneg = (flags & 4) != 0;
  // Architectures must match the constructed net (params are pre-created).
  if (cfg.max_len != cfg_.max_len || cfg.embed_dim != cfg_.embed_dim ||
      cfg.filters != cfg_.filters || cfg.width != cfg_.width ||
      cfg.stride != cfg_.stride || cfg.hidden != cfg_.hidden ||
      cfg.gated != cfg_.gated || cfg.channel_gating != cfg_.channel_gating ||
      cfg.nonneg != cfg_.nonneg)
    throw util::ParseError("byteconv: config mismatch");
  params_.load(ar);
}

}  // namespace mpass::ml
