// Random sampling of program specs per family, and dataset construction.
//
// Stands in for the paper's sample sources (2000 PE malware from
// VirusTotal/VirusShare + 50k benign programs): every generated sample is a
// real PE32 file, and -- like the paper's quality bar (§IV) -- malware is
// only admitted to a dataset if the sandbox confirms malicious runtime
// behavior, benign samples if they run cleanly without malicious behavior.
#pragma once

#include <filesystem>

#include "corpus/spec.hpp"

namespace mpass::corpus {

/// Samples a malware spec (family chosen from the malware families).
ProgramSpec sample_malware_spec(std::uint64_t seed);

/// Samples a benign-program spec.
ProgramSpec sample_benign_spec(std::uint64_t seed);

/// Compiles a random malware sample (validated: retries seeds until the
/// sandbox confirms clean execution + malicious behavior).
CompiledSample make_malware(std::uint64_t seed);

/// Compiles a random benign sample (validated analogously).
CompiledSample make_benign(std::uint64_t seed);

/// One labeled dataset sample.
struct Sample {
  util::ByteBuf bytes;
  int label = 0;  // 1 = malware
  SampleMeta meta;
};

/// A labeled corpus.
struct Dataset {
  std::vector<Sample> samples;

  std::size_t count(int label) const;
  /// Deterministic split: first train_fraction of each class to train.
  std::pair<Dataset, Dataset> split(double train_fraction) const;
};

/// Generates a validated corpus of n_malware + n_benign samples.
Dataset generate_dataset(std::uint64_t seed, std::size_t n_malware,
                         std::size_t n_benign);

/// Writes a dataset to a directory: one PE file per sample
/// (mal_0000.bin / ben_0000.bin by label) plus an index.csv with
/// file,label,family,overlay columns.
void save_dataset(const Dataset& dataset, const std::filesystem::path& dir);

/// Loads every *.bin from a directory written by save_dataset (labels from
/// the file-name prefix; metadata re-derived where possible).
Dataset load_dataset(const std::filesystem::path& dir);

}  // namespace mpass::corpus
