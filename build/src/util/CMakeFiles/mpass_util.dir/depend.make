# Empty dependencies file for mpass_util.
# This may be replaced when dependencies are built.
