file(REMOVE_RECURSE
  "CMakeFiles/mpass_pack.dir/packer.cpp.o"
  "CMakeFiles/mpass_pack.dir/packer.cpp.o.d"
  "libmpass_pack.a"
  "libmpass_pack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpass_pack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
