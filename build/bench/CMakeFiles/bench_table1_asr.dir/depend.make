# Empty dependencies file for bench_table1_asr.
# This may be replaced when dependencies are built.
