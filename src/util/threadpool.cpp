#include "util/threadpool.hpp"

#include <cstdlib>
#include <string>

#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace mpass::util {

namespace {
// Which pool (if any) the current thread is a worker of, and its queue
// index within that pool. Lets submit() and try_pop() route a worker's own
// tasks to its own deque; threads foreign to a pool use the injector queue.
thread_local ThreadPool* tl_pool = nullptr;
thread_local std::size_t tl_queue = 0;

// Scheduling counters, shared by every pool in the process (the registry
// merges per-thread shards, so the hot path stays lock-free). Conservation
// invariant, asserted in test_threadpool.cpp: once drained,
//   pool.tasks.submitted == pops.local + pops.injector + pops.steal.
struct PoolMetrics {
  obs::Counter submits{"pool.tasks.submitted"};
  obs::Counter pops_local{"pool.pops.local"};
  obs::Counter pops_injector{"pool.pops.injector"};
  obs::Counter pops_steal{"pool.pops.steal"};
  static const PoolMetrics& get() {
    static PoolMetrics m;
    return m;
  }
};
}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = 1;
  queues_.reserve(threads + 1);
  for (std::size_t i = 0; i < threads + 1; ++i)
    queues_.push_back(std::make_unique<Queue>());
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  stop_.store(true, std::memory_order_release);
  idle_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
  // Tasks submitted during shutdown (rare) run inline so futures resolve.
  while (run_one()) {
  }
}

ThreadPool& ThreadPool::instance() {
  static ThreadPool pool(env_threads());
  // Queue-depth gauge for the shared pool only (per-object gauges would
  // collide on the name; tests construct many short-lived pools).
  static const bool gauge_registered = [] {
    obs::Registry::instance().gauge_callback("pool.pending", [] {
      return static_cast<double>(
          pool.pending_.load(std::memory_order_relaxed));
    });
    return true;
  }();
  (void)gauge_registered;
  return pool;
}

std::size_t ThreadPool::env_threads() {
  if (const char* v = std::getenv("MPASS_THREADS"); v && *v) {
    const unsigned long long n = std::strtoull(v, nullptr, 10);
    if (n > 0) return static_cast<std::size_t>(n);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

void ThreadPool::push(std::function<void()> task) {
  // Span propagation: a task records under the *submitting* call path (a
  // "pool.task" child span), no matter which worker steals it; with
  // MPASS_PROFILE set the handoff carries a flow id so the submit and the
  // execution are linked by a Chrome flow arrow. Disengaged (outside any
  // span, profiling off) the task runs unwrapped.
  if (const obs::SpanHandoff h = obs::span_handoff_capture(); h.engaged()) {
    task = [h, inner = std::move(task)] {
      obs::SpanTaskScope span_scope(h);
      inner();
    };
  }
  const std::size_t qi =
      (tl_pool == this) ? tl_queue : 0;  // worker deque or injector
  {
    std::lock_guard<std::mutex> lk(queues_[qi]->mu);
    queues_[qi]->tasks.push_back(std::move(task));
  }
  pending_.fetch_add(1, std::memory_order_release);
  PoolMetrics::get().submits.inc();
  idle_cv_.notify_one();
}

bool ThreadPool::pop_back(Queue& q, std::function<void()>& out) {
  std::lock_guard<std::mutex> lk(q.mu);
  if (q.tasks.empty()) return false;
  out = std::move(q.tasks.back());
  q.tasks.pop_back();
  pending_.fetch_sub(1, std::memory_order_release);
  return true;
}

bool ThreadPool::pop_front(Queue& q, std::function<void()>& out) {
  std::lock_guard<std::mutex> lk(q.mu);
  if (q.tasks.empty()) return false;
  out = std::move(q.tasks.front());
  q.tasks.pop_front();
  pending_.fetch_sub(1, std::memory_order_release);
  return true;
}

bool ThreadPool::try_pop(std::size_t self, std::function<void()>& out) {
  const PoolMetrics& pm = PoolMetrics::get();
  if (self != 0 && pop_back(*queues_[self], out)) {  // own deque, LIFO
    pm.pops_local.inc();
    return true;
  }
  if (pop_front(*queues_[0], out)) {  // injector
    pm.pops_injector.inc();
    return true;
  }
  // Steal FIFO from the other workers, starting after ourselves so
  // concurrent thieves spread out.
  for (std::size_t k = 1; k < queues_.size(); ++k) {
    const std::size_t victim = 1 + (self + k) % (queues_.size() - 1);
    if (victim == self) continue;
    if (pop_front(*queues_[victim], out)) {
      pm.pops_steal.inc();
      return true;
    }
  }
  return false;
}

bool ThreadPool::run_one() {
  std::function<void()> task;
  const std::size_t self = (tl_pool == this) ? tl_queue : 0;
  if (!try_pop(self, task)) return false;
  task();
  return true;
}

void ThreadPool::worker_loop(std::size_t index) {
  tl_pool = this;
  tl_queue = 1 + index;
  obs::set_thread_name("pool-worker-" + std::to_string(index));
  std::function<void()> task;
  for (;;) {
    if (try_pop(tl_queue, task)) {
      task();
      task = nullptr;  // release captures before sleeping
      continue;
    }
    if (stop_.load(std::memory_order_acquire)) return;
    std::unique_lock<std::mutex> lk(idle_mu_);
    idle_cv_.wait_for(lk, std::chrono::milliseconds(50), [this] {
      return stop_.load(std::memory_order_acquire) ||
             pending_.load(std::memory_order_acquire) > 0;
    });
  }
}

}  // namespace mpass::util
