#include "fuzz/fuzzer.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "corpus/generator.hpp"
#include "fuzz/mutator.hpp"
#include "obs/span.hpp"
#include "pe/import.hpp"
#include "pe/pe.hpp"
#include "util/rng.hpp"
#include "util/serialize.hpp"

namespace mpass::fuzz {

using util::ByteBuf;
using util::Rng;

namespace {

/// Stable per-iteration RNG stream: mixing the master seed with the
/// iteration index makes every iteration reproducible in isolation.
Rng iteration_rng(std::uint64_t seed, std::size_t iter) {
  std::uint64_t state = seed ^ (0x9E3779B97F4A7C15ULL * (iter + 1));
  return Rng(util::splitmix64(state));
}

void write_text(const std::filesystem::path& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
}

core::StubOptions random_stub_knobs(Rng& rng) {
  core::StubOptions opts;
  opts.shuffle = rng.chance(0.8);
  // Deliberately includes invalid settings (chunk_items == 0, max < min):
  // the oracle checks they are rejected, not that they work.
  opts.chunk_items = rng.below(5);
  opts.min_gap = rng.below(32);
  opts.max_gap = rng.below(48);
  opts.lead_filler = rng.below(512);
  return opts;
}

core::ModificationConfig random_valid_attack_cfg(Rng& rng) {
  core::ModificationConfig cfg;
  cfg.targets = rng.chance(0.8) ? core::TargetMode::CodeData
                                : core::TargetMode::OtherSec;
  cfg.stub.shuffle = rng.chance(0.9);
  cfg.stub.chunk_items = 1 + rng.below(4);
  cfg.stub.min_gap = rng.below(16);
  cfg.stub.max_gap = cfg.stub.min_gap + rng.below(24);
  cfg.filler_ratio = rng.uniform(0.0, 0.5);
  cfg.min_tail = 128 + rng.below(1024);
  cfg.modify_headers = rng.chance(0.7);
  cfg.push_keys_beyond = rng.chance(0.5) ? 0 : rng.below(32768);
  return cfg;
}

}  // namespace

core::StubOptions parse_stub_knobs(std::string_view text) {
  core::StubOptions opts;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    const std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty() || line[0] == '#') continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos)
      throw util::ParseError("knobs: missing '=' in line");
    const std::string_view key = line.substr(0, eq);
    const std::string value(line.substr(eq + 1));
    std::size_t parsed = 0;
    const unsigned long long v = std::stoull(value, &parsed);
    if (parsed != value.size())
      throw util::ParseError("knobs: bad value for " + std::string(key));
    if (key == "shuffle") opts.shuffle = v != 0;
    else if (key == "chunk_items") opts.chunk_items = v;
    else if (key == "min_gap") opts.min_gap = v;
    else if (key == "max_gap") opts.max_gap = v;
    else if (key == "lead_filler") opts.lead_filler = v;
    else throw util::ParseError("knobs: unknown key " + std::string(key));
  }
  return opts;
}

std::string format_stub_knobs(const core::StubOptions& opts) {
  std::string out;
  out += "shuffle=" + std::to_string(opts.shuffle ? 1 : 0) + "\n";
  out += "chunk_items=" + std::to_string(opts.chunk_items) + "\n";
  out += "min_gap=" + std::to_string(opts.min_gap) + "\n";
  out += "max_gap=" + std::to_string(opts.max_gap) + "\n";
  out += "lead_filler=" + std::to_string(opts.lead_filler) + "\n";
  return out;
}

std::vector<ByteBuf> Fuzzer::seed_corpus(std::uint64_t seed) {
  std::vector<ByteBuf> seeds;
  Rng rng(seed ^ 0x5EEDC0DEULL);

  // Real corpus samples (sandbox-validated by construction). Their seeds are
  // fixed offsets of the master seed so the whole corpus is deterministic.
  const ByteBuf malware = corpus::make_malware(90000 + seed % 100).bytes();
  const ByteBuf benign = corpus::make_benign(91000 + seed % 100).bytes();
  seeds.push_back(malware);
  seeds.push_back(benign);

  // A fully modified (attacked) sample: the adversarial shape the rest of
  // the pipeline feeds back into the parser constantly.
  {
    core::ModificationConfig cfg;
    Rng mod_rng(seed ^ 0xA77ACCULL);
    seeds.push_back(core::apply_modification(malware, benign, cfg, mod_rng).bytes);
  }

  // Handcrafted structural edge cases.
  {
    pe::PeFile f;  // minimal: one tiny code section
    f.add_section(".text", rng.bytes(64),
                  pe::kScnCode | pe::kScnMemRead | pe::kScnMemExecute);
    f.entry_point = f.sections[0].vaddr;
    seeds.push_back(f.build());
  }
  {
    pe::PeFile f;  // bss-only section (no raw data) + overlay
    pe::Section bss;
    bss.name = ".bss";
    bss.vaddr = f.next_free_rva();
    bss.vsize = 0x400;
    bss.characteristics = pe::kScnUninitializedData | pe::kScnMemRead |
                          pe::kScnMemWrite;
    f.sections.push_back(std::move(bss));
    f.overlay = util::to_bytes("OVERLAY!");
    seeds.push_back(f.build());
  }
  {
    pe::PeFile f;  // no sections at all, overlay only
    f.overlay = rng.bytes(100);
    seeds.push_back(f.build());
  }
  {
    pe::PeFile f;  // unaligned raw size in front of an overlay
    f.add_section(".data", rng.bytes(100),
                  pe::kScnInitializedData | pe::kScnMemRead);
    f.overlay = util::to_bytes("overlay-tail");
    ByteBuf bytes = f.build();
    // Patch the (only) section's SizeOfRawData down to the true length.
    const std::uint32_t lfanew =
        util::read_le<std::uint32_t>(bytes.data() + 0x3C);
    util::write_le<std::uint32_t>(bytes.data() + lfanew + 4 + 20 + 224 + 16,
                                  100);
    seeds.push_back(std::move(bytes));
  }
  {
    pe::PeFile f;  // import-bearing file with checksum set
    f.add_section(".text", rng.bytes(256),
                  pe::kScnCode | pe::kScnMemRead | pe::kScnMemExecute);
    const std::vector<pe::Import> imports = {{0x0001, "Print"},
                                             {0x0103, "Send"}};
    pe::attach_import_section(f, imports);
    f.update_checksum();
    seeds.push_back(f.build());
  }
  // A non-PE blob: exercises the rejection path and generic mutators.
  seeds.push_back(rng.bytes(512));
  return seeds;
}

Fuzzer::Fuzzer(FuzzConfig config)
    : cfg_(std::move(config)), seeds_(seed_corpus(cfg_.seed)) {}

ByteBuf Fuzzer::input_for_iteration(std::size_t iter,
                                    std::vector<std::string>* mutators) const {
  Rng rng = iteration_rng(cfg_.seed, iter);
  ByteBuf input = seeds_[rng.below(seeds_.size())];
  const std::size_t rounds = 1 + rng.below(cfg_.max_rounds);
  const auto applied = mutate(input, rng, rounds);
  if (input.size() > cfg_.max_input) input.resize(cfg_.max_input);
  if (mutators) {
    mutators->clear();
    for (const std::string_view name : applied) mutators->emplace_back(name);
  }
  return input;
}

ByteBuf Fuzzer::minimize_input(const ByteBuf& input, std::size_t max_evals) {
  OBS_SCOPE("fuzz.minimize");
  std::size_t evals = 0;
  const auto violates = [&](const ByteBuf& candidate) {
    ++evals;
    return !check_pe_invariants(candidate).empty();
  };
  if (!violates(input)) return input;

  ByteBuf cur = input;
  // Pass 1: drop chunks (halving granularity) while the violation persists.
  bool progress = true;
  while (progress && evals < max_evals) {
    progress = false;
    for (std::size_t chunk = std::max<std::size_t>(cur.size() / 2, 1);
         chunk >= 1 && evals < max_evals; chunk /= 2) {
      for (std::size_t at = 0; at + chunk <= cur.size() && evals < max_evals;) {
        ByteBuf cand;
        cand.reserve(cur.size() - chunk);
        cand.insert(cand.end(), cur.begin(),
                    cur.begin() + static_cast<std::ptrdiff_t>(at));
        cand.insert(cand.end(),
                    cur.begin() + static_cast<std::ptrdiff_t>(at + chunk),
                    cur.end());
        if (!cand.empty() && violates(cand)) {
          cur = std::move(cand);
          progress = true;
        } else {
          at += chunk;
        }
      }
      if (chunk == 1) break;
    }
  }
  // Pass 2: canonicalize surviving bytes to zero where possible.
  for (std::size_t chunk = std::max<std::size_t>(cur.size() / 2, 1);
       chunk >= 1 && evals < max_evals; chunk /= 2) {
    for (std::size_t at = 0; at + chunk <= cur.size() && evals < max_evals;
         at += chunk) {
      ByteBuf cand = cur;
      std::fill_n(cand.begin() + static_cast<std::ptrdiff_t>(at), chunk, 0);
      if (cand != cur && violates(cand)) cur = std::move(cand);
    }
    if (chunk == 1) break;
  }
  return cur;
}

FuzzStats Fuzzer::run() {
  OBS_SCOPE("fuzz.run");
  FuzzStats stats;
  const bool artifacts = !cfg_.out_dir.empty();
  if (artifacts) std::filesystem::create_directories(cfg_.out_dir);

  const auto record = [&](std::size_t iter, Violation v,
                          std::vector<std::string> mutators, ByteBuf input,
                          const char* ext) {
    Finding f;
    f.iteration = iter;
    f.violation = std::move(v);
    f.mutators = std::move(mutators);
    f.minimized = (cfg_.minimize && !input.empty())
                      ? minimize_input(input)
                      : input;
    f.input = std::move(input);
    if (artifacts && !f.minimized.empty()) {
      char name[128];
      std::snprintf(name, sizeof(name), "crash_iter%06zu_%s%s", iter,
                    std::string(kind_name(f.violation.kind)).c_str(), ext);
      f.artifact = cfg_.out_dir / name;
      util::save_file(f.artifact, f.minimized);
    }
    stats.findings.push_back(std::move(f));
  };

  for (std::size_t iter = 0; iter < cfg_.iterations; ++iter) {
    std::vector<std::string> mutators;
    ByteBuf input = input_for_iteration(iter, &mutators);

    if (artifacts) {
      // Breadcrumb: if the oracle hard-crashes (sanitizer abort), the
      // offending input and its iteration index survive on disk.
      util::save_file(cfg_.out_dir / "pending.bin", input);
      write_text(cfg_.out_dir / "pending_iter.txt",
                 std::to_string(iter) + "\n");
    }

    try {
      (void)pe::PeFile::parse(input);
      ++stats.parse_ok;
    } catch (...) {
      ++stats.parse_rejected;
    }

    for (Violation& v : check_pe_invariants(input))
      record(iter, std::move(v), mutators, input, ".bin");

    if (cfg_.attack_every != 0 &&
        iter % cfg_.attack_every == cfg_.attack_every - 1) {
      Rng krng = iteration_rng(cfg_.seed ^ 0x57AB, iter);
      const core::StubOptions knobs = random_stub_knobs(krng);
      ++stats.stub_checks;
      if (auto v = check_stub_options(knobs)) {
        if (artifacts)
          write_text(cfg_.out_dir /
                         ("crash_iter" + std::to_string(iter) + "_knobs.knobs"),
                     format_stub_knobs(knobs));
        record(iter, std::move(*v), {"stub_knobs"}, {}, ".bin");
      }

      const core::ModificationConfig cfg = random_valid_attack_cfg(krng);
      ++stats.attack_checks;
      if (auto v = check_attack_preserves(seeds_[0], seeds_[1], cfg, krng()))
        record(iter, std::move(*v), {"attack_knobs"}, {}, ".bin");

      // Incremental-forward differential: the mutated input of this
      // iteration doubles as the scored buffer, so structural mutators feed
      // the net shapes the attacks actually produce.
      ++stats.incremental_checks;
      if (auto v = check_incremental_forward(input, krng()))
        record(iter, std::move(*v), mutators, input, ".bin");
    }

    ++stats.iterations;
  }

  if (artifacts) {
    std::filesystem::remove(cfg_.out_dir / "pending.bin");
    std::filesystem::remove(cfg_.out_dir / "pending_iter.txt");
  }
  return stats;
}

}  // namespace mpass::fuzz
