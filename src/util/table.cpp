#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace mpass::util {

Table& Table::header(std::vector<std::string> cols) {
  header_ = std::move(cols);
  return *this;
}

Table& Table::row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::num(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string Table::render() const {
  std::size_t ncols = header_.size();
  for (const auto& r : rows_) ncols = std::max(ncols, r.size());
  std::vector<std::size_t> width(ncols, 0);
  auto measure = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i)
      width[i] = std::max(width[i], cells[i].size());
  };
  measure(header_);
  for (const auto& r : rows_) measure(r);

  auto rule = [&](char fill) {
    std::string s = "+";
    for (std::size_t i = 0; i < ncols; ++i) {
      s.append(width[i] + 2, fill);
      s += "+";
    }
    s += "\n";
    return s;
  };
  auto line = [&](const std::vector<std::string>& cells) {
    std::string s = "|";
    for (std::size_t i = 0; i < ncols; ++i) {
      const std::string& c = i < cells.size() ? cells[i] : std::string();
      s += " " + c + std::string(width[i] - c.size(), ' ') + " |";
    }
    s += "\n";
    return s;
  };

  std::ostringstream os;
  os << "== " << title_ << " ==\n";
  os << rule('-');
  if (!header_.empty()) {
    os << line(header_);
    os << rule('=');
  }
  for (const auto& r : rows_) os << line(r);
  os << rule('-');
  return os.str();
}

void Table::print(std::ostream& os) const { os << render(); }

}  // namespace mpass::util
