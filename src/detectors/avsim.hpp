// Commercial ML-AV simulators: the five real-world targets of §IV-B
// (MAX, CrowdStrike, Acronis, SentinelOne, Cylance -- AV1..AV5).
//
// Each AV couples (a) an ML model -- GBDT, byte-conv net, or a hybrid
// ensemble, trained on its own vendor corpus -- with (b) a byte-signature
// database mined from known malware (n-grams frequent in malware and absent
// from the vendor's benign corpus), and (c) a *learning* update: newly
// submitted malicious samples are mined for new shared signatures, modeling
// the weekly-update dynamics of Fig. 4. The paper verifies these AVs are
// ML-based and not hash-based (Table VI); our simulators likewise score
// content, never hashes.
#pragma once

#include <memory>

#include "corpus/generator.hpp"
#include "detectors/models.hpp"

namespace mpass::detect {

/// Byte-pattern signature database with substring matching.
class SignatureDb {
 public:
  void add(util::ByteBuf pattern);
  std::size_t size() const { return patterns_.size(); }
  bool matches(std::span<const std::uint8_t> bytes) const;
  const std::vector<util::ByteBuf>& patterns() const { return patterns_; }

  void save(util::Archive& ar) const;
  void load(util::Unarchive& ar);

 private:
  std::vector<util::ByteBuf> patterns_;
};

/// Mines n-gram signatures: byte n-grams occurring in at least
/// min_doc_frac of the malicious documents and in none of the benign ones.
/// Returns up to max_sigs patterns ranked by document frequency.
std::vector<util::ByteBuf> mine_signatures(
    std::span<const util::ByteBuf> malicious,
    std::span<const util::ByteBuf> benign, std::size_t ngram,
    std::size_t max_sigs, double min_doc_frac);

/// Static configuration of one simulated AV.
struct AvProfile {
  std::string name;
  enum class Model { Gbdt, ByteConv, ByteConvGcg, Hybrid } model;
  double target_fpr = 0.01;
  std::size_t max_sigs = 150;
  double min_doc_frac = 0.05;
  std::uint64_t seed = 1;
  std::size_t vendor_malware = 250;  // extra vendor-private training data
  std::size_t vendor_benign = 250;
};

/// The five default profiles (AV1..AV5).
std::vector<AvProfile> default_av_profiles();

/// One simulated commercial ML AV.
class CommercialAv : public Detector {
 public:
  /// Trains the model on shared + vendor-private data and seeds the
  /// signature DB from the vendor's malware corpus.
  CommercialAv(AvProfile profile, const corpus::Dataset& shared_train);

  /// Tag type: build the right model shapes without training (cache loads).
  struct Untrained {};
  CommercialAv(AvProfile profile, Untrained);

  std::string_view name() const override { return profile_.name; }
  double score(std::span<const std::uint8_t> bytes) const override;

  /// Deep copy via the archive round-trip (model weights, signature DB,
  /// benign whitelist, threshold). The clone starts a fresh
  /// updates_applied() count -- it is a query target, not a learning AV.
  std::unique_ptr<Detector> clone() const override;

  /// Weekly learning update: mines new signatures shared across the
  /// submitted (vendor-sandbox-confirmed malicious) samples.
  /// Returns the number of new signatures added.
  std::size_t update(std::span<const util::ByteBuf> submissions);

  const SignatureDb& signatures() const { return sigs_; }
  std::size_t updates_applied() const { return updates_; }

  void save(util::Archive& ar) const;
  void load(util::Unarchive& ar);

 private:
  double model_score(std::span<const std::uint8_t> bytes) const;

  AvProfile profile_;
  std::unique_ptr<GbdtDetector> gbdt_;
  std::unique_ptr<ByteConvDetector> net_;
  SignatureDb sigs_;
  std::vector<util::ByteBuf> benign_ref_;  // vendor benign corpus (whitelist)
  std::size_t updates_ = 0;
};

}  // namespace mpass::detect
