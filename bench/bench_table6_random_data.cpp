// Reproduces Table VI: the Random-data ablation -- random bytes written at
// MPass's modification positions (no benign content, no optimization) vs
// MPass, demonstrating the AVs are not hash-based.
#include "bench_common.hpp"

int main() {
  using namespace mpass;
  const auto cfg = harness::ExperimentConfig::from_env();
  bench::BenchReport report("table6_random_data");
  const auto cells = harness::random_data_grid(cfg);
  report.add_cells(cells);
  util::Table table(
      "Table VI: Random data at MPass positions vs MPass, ASR (%) on AVs");
  table.header({"Method", "AV1", "AV2", "AV3", "AV4", "AV5"});
  for (const std::string& a :
       {std::string("Random-data"), std::string("MPass")}) {
    std::vector<std::string> row = {a};
    for (const std::string& t : bench::av_targets())
      row.push_back(util::Table::num(bench::cell(cells, a, t).asr, 1));
    table.row(row);
  }
  std::cout << table.render();
  std::printf(
      "Paper Table VI:\n"
      "  Random data 8.3/4.1/5.9/7.2/6.6  MPass 42.3/35.8/61.2/58.8/29.2\n");
  bench::export_results_csv("randomdata", cells);
  return 0;
}
