// Work-stealing thread pool shared by the experiment harness.
//
// The harness's unit of parallelism is one (target, attack, sample) attack
// run -- thousands of independent tasks per grid -- so the pool is built for
// many small-to-medium tasks with nested fan-out: a cell task submits one
// sub-task per sample and then *helps* execute pending work while waiting
// (run_one / wait), which makes nested submission deadlock-free even on a
// single worker thread.
//
// Topology: one injector queue for external submitters plus one deque per
// worker. Workers pop their own deque LIFO (cache locality) and steal from
// the injector and the other workers FIFO (oldest work first). Results and
// exceptions travel through std::future via std::packaged_task.
//
// Pool size: ThreadPool::instance() honors MPASS_THREADS, defaulting to
// std::thread::hardware_concurrency().
//
// Observability: scheduling counters (pool.tasks.submitted, pool.pops.local
// / .injector / .steal) go through the obs::Registry; the shared instance()
// pool also exports a pool.pending queue-depth gauge. The conservation
// invariant submits == sum(pops) after a drain is tested in
// test_threadpool.cpp. Span context (obs/span.hpp) propagates across
// submit(): each task executes under a "pool.task" span parented at the
// submitting call path -- so stolen tasks profile under their submitter --
// and, with MPASS_PROFILE set, submit and execution are linked by Chrome
// flow arrows.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace mpass::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers (at least 1).
  explicit ThreadPool(std::size_t threads);

  /// Drains all queued tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Process-wide pool sized by MPASS_THREADS (default: hardware threads).
  static ThreadPool& instance();

  /// MPASS_THREADS if set and positive, else hardware_concurrency (>= 1).
  static std::size_t env_threads();

  std::size_t size() const { return workers_.size(); }

  /// Schedules a callable; the returned future carries its result or
  /// exception. Calls from a worker thread of this pool enqueue onto that
  /// worker's own deque (nested submission).
  template <typename F, typename R = std::invoke_result_t<std::decay_t<F>&>>
  std::future<R> submit(F&& fn) {
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    push([task] { (*task)(); });
    return fut;
  }

  /// Executes one pending task on the calling thread, if any.
  /// Callable from any thread (workers, waiters, outsiders).
  bool run_one();

  /// Blocks until `fut` is ready, executing pending pool tasks while
  /// waiting so that tasks can wait on sub-tasks without deadlock.
  template <typename T>
  T wait(std::future<T> fut) {
    while (fut.wait_for(std::chrono::seconds(0)) !=
           std::future_status::ready) {
      if (!run_one())
        fut.wait_for(std::chrono::milliseconds(1));
    }
    return fut.get();
  }

 private:
  struct Queue {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  void push(std::function<void()> task);
  bool pop_back(Queue& q, std::function<void()>& out);
  bool pop_front(Queue& q, std::function<void()>& out);
  /// Own deque LIFO, then injector, then steal other workers FIFO.
  bool try_pop(std::size_t self, std::function<void()>& out);
  void worker_loop(std::size_t index);

  // queues_[0] is the injector; queues_[1 + i] belongs to worker i.
  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::thread> workers_;
  std::mutex idle_mu_;
  std::condition_variable idle_cv_;
  std::atomic<std::size_t> pending_{0};
  std::atomic<bool> stop_{false};
};

}  // namespace mpass::util
