#include "corpus/spec.hpp"

#include "vm/api.hpp"

namespace mpass::corpus {

using vm::Api;

bool is_malicious_behavior(Behavior b) {
  switch (b) {
    case Behavior::Persistence:
    case Behavior::C2Beacon:
    case Behavior::Ransomware:
    case Behavior::Stealer:
    case Behavior::Keylogger:
    case Behavior::Dropper:
    case Behavior::Injector:
    case Behavior::Wiper:
    case Behavior::OverlayLoader:
      return true;
    default:
      return false;
  }
}

std::vector<std::uint16_t> behavior_apis(Behavior b) {
  auto ids = [](std::initializer_list<Api> list) {
    std::vector<std::uint16_t> out;
    for (Api a : list) out.push_back(static_cast<std::uint16_t>(a));
    return out;
  };
  switch (b) {
    case Behavior::Persistence:
      return ids({Api::RegSetAutorun});
    case Behavior::C2Beacon:
      return ids({Api::Connect, Api::Send, Api::Recv});
    case Behavior::Ransomware:
      return ids({Api::OpenFile, Api::WriteFile, Api::CloseFile,
                  Api::EnumFiles, Api::EncryptFile, Api::DeleteShadow});
    case Behavior::Stealer:
      return ids({Api::StealCreds, Api::Connect, Api::Send});
    case Behavior::Keylogger:
      return ids({Api::KeylogStart, Api::Sleep, Api::KeylogDump, Api::Connect,
                  Api::Send});
    case Behavior::Dropper:
      return ids({Api::WriteExe, Api::CreateProc});
    case Behavior::Injector:
      return ids({Api::InjectProc});
    case Behavior::Wiper:
      return ids({Api::EnumFiles, Api::EncryptFile, Api::RegDeleteKey,
                  Api::DeleteShadow});
    case Behavior::OverlayLoader:
      return ids({Api::ReadSelf, Api::Connect, Api::Send, Api::WriteExe,
                  Api::CreateProc});
    case Behavior::HelloReport:
      return ids({Api::Print});
    case Behavior::ConfigReader:
      return ids({Api::OpenFile, Api::ReadFile, Api::Checksum,
                  Api::CloseFile, Api::Print});
    case Behavior::Calculator:
      return ids({Api::Print});
    case Behavior::TextProcessor:
      return ids({Api::Print});
    case Behavior::FileWriter:
      return ids({Api::OpenFile, Api::WriteFile, Api::CloseFile});
    case Behavior::UiGreeting:
      return ids({Api::MsgBox});
    case Behavior::SelfCheck:
      return ids({Api::ReadSelf, Api::Checksum, Api::Print});
    case Behavior::Telemetry:
      return ids({Api::Connect, Api::Send});
    case Behavior::Updater:
      return ids({Api::RegSetAutorun, Api::Print});
  }
  return {};
}

std::string_view family_name(Family f) {
  switch (f) {
    case Family::Ransom: return "ransom";
    case Family::InfoStealer: return "infostealer";
    case Family::Backdoor: return "backdoor";
    case Family::DropperBot: return "dropperbot";
    case Family::KeylogSpy: return "keylogspy";
    case Family::WiperKit: return "wiperkit";
    case Family::BenignUtility: return "benign-utility";
    case Family::BenignEditor: return "benign-editor";
    case Family::BenignUpdater: return "benign-updater";
    case Family::BenignGame: return "benign-game";
  }
  return "unknown";
}

bool is_malicious_family(Family f) {
  switch (f) {
    case Family::Ransom:
    case Family::InfoStealer:
    case Family::Backdoor:
    case Family::DropperBot:
    case Family::KeylogSpy:
    case Family::WiperKit:
      return true;
    default:
      return false;
  }
}

}  // namespace mpass::corpus
