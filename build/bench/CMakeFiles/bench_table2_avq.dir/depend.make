# Empty dependencies file for bench_table2_avq.
# This may be replaced when dependencies are built.
