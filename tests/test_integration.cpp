// End-to-end integration: a private miniature ModelZoo (small corpus, short
// training, no cache) driving the full pipeline -- PEM, MPass, a baseline,
// an AV with learning -- exactly as the bench harness does, at test scale.
#include <gtest/gtest.h>

#include "attack/mab.hpp"
#include "attack/mpass_attack.hpp"
#include "explain/pem.hpp"
#include "harness/experiment.hpp"

namespace mpass {
namespace {

using util::ByteBuf;

class MiniZoo : public ::testing::Test {
 protected:
  static detect::ModelZoo& zoo() {
    static detect::ModelZoo* z = [] {
      detect::ZooConfig cfg;
      cfg.seed = 20230707;
      cfg.train_malware = 80;
      cfg.train_benign = 80;
      cfg.test_malware = 24;
      cfg.test_benign = 24;
      cfg.packed_malware = 10;
      cfg.packed_benign = 4;
      cfg.benign_pool = 12;
      cfg.net_epochs = 2;
      cfg.lm_windows = 150;
      cfg.lm_epochs = 1;
      cfg.use_cache = false;
      return new detect::ModelZoo(cfg);
    }();
    return *z;
  }
};

TEST_F(MiniZoo, DetectorsLearnSomething) {
  for (detect::Detector* d : zoo().offline()) {
    const detect::EvalReport r = zoo().eval_offline(d->name());
    EXPECT_GT(r.auc, 0.75) << d->name();
  }
  EXPECT_EQ(zoo().known_nets_excluding("MalConv").size(), 5u);
  EXPECT_EQ(zoo().known_nets_excluding("LightGBM").size(), 6u);
}

TEST_F(MiniZoo, MpassBeatsAtLeastOneDetectedSample) {
  detect::Detector& target = zoo().offline_by_name("MalConv");
  const detect::Detector* gate[] = {&target};
  const auto samples = harness::make_attack_set(gate, 4, 99);
  ASSERT_FALSE(samples.empty());
  attack::MpassAttack mpass("MPass", attack::MpassAttack::default_config(),
                            zoo().benign_pool(),
                            zoo().known_nets_excluding("MalConv"));
  const vm::Sandbox sandbox;
  int wins = 0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    detect::HardLabelOracle oracle(target, 100);
    const attack::AttackResult r = mpass.run(samples[i], oracle, 5 + i);
    if (r.success) {
      ++wins;
      EXPECT_FALSE(target.is_malicious(r.adversarial));
      EXPECT_TRUE(sandbox.functionality_preserved(samples[i], r.adversarial));
    }
  }
  EXPECT_GE(wins, 1);
}

TEST_F(MiniZoo, PemRanksContentSections) {
  std::vector<ByteBuf> malware;
  for (int i = 0; i < 6; ++i)
    malware.push_back(corpus::make_malware(606000 + i).bytes());
  std::vector<const detect::Detector*> known;
  for (detect::Detector* d : zoo().offline()) known.push_back(d);
  explain::PemConfig cfg;
  cfg.top_k = 3;
  const explain::PemResult res = explain::run_pem(malware, known, cfg);
  ASSERT_EQ(res.model_names.size(), 4u);
  // The common sections list must contain the standard content sections.
  EXPECT_NE(std::find(res.common_sections.begin(), res.common_sections.end(),
                      ".text"),
            res.common_sections.end());
}

TEST_F(MiniZoo, AvLearningCatchesBaselineArtifacts) {
  detect::CommercialAv& av = *zoo().avs()[0];
  attack::Mab mab({}, zoo().benign_pool());
  const detect::Detector* gate[] = {&av};
  const auto samples = harness::make_attack_set(gate, 6, 123);
  std::vector<ByteBuf> aes;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    detect::HardLabelOracle oracle(av, 60);
    const attack::AttackResult r = mab.run(samples[i], oracle, 9 + i);
    if (r.success) aes.push_back(r.adversarial);
  }
  if (aes.size() < 3) GTEST_SKIP() << "MAB produced too few AEs on this AV";
  const std::size_t before = av.signatures().size();
  av.update(aes);
  EXPECT_GE(av.signatures().size(), before);  // mining ran
  std::size_t caught = 0;
  for (const ByteBuf& ae : aes)
    if (av.is_malicious(ae)) ++caught;
  // The shared benign-content library should be mineable from >= 3 AEs.
  EXPECT_GT(caught, 0u);
}

TEST_F(MiniZoo, HarnessGridRunsEndToEnd) {
  harness::ExperimentConfig cfg;
  cfg.n_samples = 3;
  cfg.max_queries = 40;
  cfg.use_cache = false;
  detect::Detector& target = zoo().offline_by_name("LightGBM");
  const detect::Detector* gate[] = {&target};
  const auto samples = harness::make_attack_set(gate, cfg.n_samples, 7);
  ASSERT_FALSE(samples.empty());
  attack::MpassAttack mpass("MPass", attack::MpassAttack::default_config(),
                            zoo().benign_pool(),
                            zoo().known_nets_excluding("LightGBM"));
  const harness::CellStats stats =
      harness::run_cell(mpass, target, samples, samples, cfg);
  EXPECT_EQ(stats.n, samples.size());
  EXPECT_LE(stats.asr, 100.0);
  if (stats.successes > 0) {
    EXPECT_GE(stats.avq, 1.0);
    EXPECT_EQ(stats.functional, 100.0);  // MPass AEs always preserve behavior
  }
}

}  // namespace
}  // namespace mpass
