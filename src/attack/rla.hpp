// RLA: the reinforcement-learning evasion attack (Anderson et al., Black
// Hat 2017 "gym-malware" -- reference [21] of the paper).
//
// A tabular Q-learning agent over coarse PE-state fingerprints chooses
// manipulation actions (including the risky overlay actions that cause the
// 23% functionality-broken AEs reported in §IV-A). Each mutation costs one
// hard-label query; the policy persists across samples, as the original
// attack trains across an episode corpus.
#pragma once

#include <unordered_map>

#include "attack/actions.hpp"
#include "attack/attack.hpp"

namespace mpass::attack {

struct RlaConfig {
  int max_episode_len = 10;   // mutations per episode before reset
  double epsilon = 0.25;      // exploration rate
  double alpha = 0.2;         // learning rate
  double gamma = 0.9;         // discount
};

class Rla : public Attack {
 public:
  Rla(RlaConfig cfg, std::span<const util::ByteBuf> benign_pool)
      : cfg_(cfg), pool_(benign_pool.begin(), benign_pool.end()) {}

  std::string_view name() const override { return "RLA"; }

  AttackResult run(std::span<const std::uint8_t> malware,
                   detect::HardLabelOracle& oracle,
                   std::uint64_t seed) override;

  /// Copies the Q-table as-is; a clone taken before any run starts from a
  /// blank policy (the per-sample parallel harness does exactly that).
  std::unique_ptr<Attack> clone() const override {
    return std::make_unique<Rla>(*this);
  }

 private:
  double& q(std::uint64_t state, std::size_t action);
  std::size_t choose(std::uint64_t state, util::Rng& rng);

  RlaConfig cfg_;
  std::vector<util::ByteBuf> pool_;
  std::unordered_map<std::uint64_t, std::array<double, kNumActions>> qtable_;
};

}  // namespace mpass::attack
