# Empty dependencies file for craft_and_recover.
# This may be replaced when dependencies are built.
