# Empty dependencies file for bench_pem_sections.
# This may be replaced when dependencies are built.
