file(REMOVE_RECURSE
  "CMakeFiles/mpass_util.dir/bytes.cpp.o"
  "CMakeFiles/mpass_util.dir/bytes.cpp.o.d"
  "CMakeFiles/mpass_util.dir/compress.cpp.o"
  "CMakeFiles/mpass_util.dir/compress.cpp.o.d"
  "CMakeFiles/mpass_util.dir/entropy.cpp.o"
  "CMakeFiles/mpass_util.dir/entropy.cpp.o.d"
  "CMakeFiles/mpass_util.dir/hashing.cpp.o"
  "CMakeFiles/mpass_util.dir/hashing.cpp.o.d"
  "CMakeFiles/mpass_util.dir/rng.cpp.o"
  "CMakeFiles/mpass_util.dir/rng.cpp.o.d"
  "CMakeFiles/mpass_util.dir/serialize.cpp.o"
  "CMakeFiles/mpass_util.dir/serialize.cpp.o.d"
  "CMakeFiles/mpass_util.dir/stats.cpp.o"
  "CMakeFiles/mpass_util.dir/stats.cpp.o.d"
  "CMakeFiles/mpass_util.dir/table.cpp.o"
  "CMakeFiles/mpass_util.dir/table.cpp.o.d"
  "libmpass_util.a"
  "libmpass_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpass_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
