
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/byteconv.cpp" "src/ml/CMakeFiles/mpass_ml.dir/byteconv.cpp.o" "gcc" "src/ml/CMakeFiles/mpass_ml.dir/byteconv.cpp.o.d"
  "/root/repo/src/ml/gbdt.cpp" "src/ml/CMakeFiles/mpass_ml.dir/gbdt.cpp.o" "gcc" "src/ml/CMakeFiles/mpass_ml.dir/gbdt.cpp.o.d"
  "/root/repo/src/ml/gru.cpp" "src/ml/CMakeFiles/mpass_ml.dir/gru.cpp.o" "gcc" "src/ml/CMakeFiles/mpass_ml.dir/gru.cpp.o.d"
  "/root/repo/src/ml/param.cpp" "src/ml/CMakeFiles/mpass_ml.dir/param.cpp.o" "gcc" "src/ml/CMakeFiles/mpass_ml.dir/param.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mpass_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
