// Structured per-sample trace sink (JSONL).
//
// When MPASS_TRACE=<dir> is set, every executed (attack, target, sample)
// run emits one JSONL file "<attack>-<target>-<sample digest>.jsonl" under
// <dir>: a "start" line, then "action"/"opt"/"query" events in order, then
// an "end" line. Run-level streams append under a global mutex:
// "cells.jsonl" (one "cell" line per completed grid cell, for query-budget
// reconciliation against CellStats) and "pem.jsonl" (PEM section rankings).
// Schema: docs/OBSERVABILITY.md.
//
// The sink composes with the per-sample parallel harness: a TraceScope is
// opened by the worker task that executes the sample and the buffer is
// thread-local, so concurrent samples never interleave within a file. The
// sample file is buffered in memory and written once at scope end (a torn
// run never leaves a half-valid trace). Nested scopes save and restore the
// outer scope, which makes the sink safe under the work-stealing pool's
// helping waiters.
//
// With MPASS_TRACE unset everything is pay-for-what-you-use: tracing()
// is one thread-local pointer test and no Event allocates.
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <span>
#include <string>
#include <string_view>

#include "obs/json.hpp"

namespace mpass::obs {

/// Trace output directory (from MPASS_TRACE), or nullptr when disabled.
const std::filesystem::path* trace_dir();

/// Test/CLI override of the trace directory. nullopt disables tracing;
/// an empty path restores the MPASS_TRACE environment value.
void set_trace_dir(std::optional<std::filesystem::path> dir);

/// True iff the calling thread is inside a TraceScope (and tracing is on).
bool tracing() noexcept;

/// Opens a per-sample trace on this thread: emits the "start" event and
/// routes subsequent Event lines into the sample's buffer. The file is
/// written on destruction. No-op when tracing is disabled.
class TraceScope {
 public:
  TraceScope(std::string_view attack, std::string_view target,
             std::uint64_t sample_digest, std::uint64_t seed,
             std::uint64_t query_budget);
  ~TraceScope();
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  bool active() const { return active_; }

 private:
  bool active_ = false;
  void* prev_ = nullptr;        // outer scope's buffer (nesting)
  std::string prev_tag_;        // outer log tag
};

/// One trace event line. Inactive (and free) outside a TraceScope; field
/// setters are chainable and ignored when inactive. The line is appended to
/// the current sample trace on destruction.
class Event {
 public:
  explicit Event(std::string_view ev);
  ~Event();
  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  bool active() const { return active_; }
  Event& num(std::string_view key, double v);
  Event& uint(std::string_view key, std::uint64_t v);
  Event& boolean(std::string_view key, bool v);
  Event& str(std::string_view key, std::string_view v);
  Event& strs(std::string_view key, std::span<const std::string> vs);

 private:
  bool active_ = false;
  JsonLine line_;
};

/// Appends one line to a run-level stream (e.g. "cells.jsonl") under the
/// trace directory; serialized by a global mutex. No-op when disabled.
void append_run_line(std::string_view file, std::string line);

/// Writes the current metrics snapshot to <trace dir>/metrics.json and the
/// current span snapshot (call-path profile, obs/span.hpp) to
/// <trace dir>/spans.json. No-op when disabled.
void write_metrics_snapshot();

}  // namespace mpass::obs
