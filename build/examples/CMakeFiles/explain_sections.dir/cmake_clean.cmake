file(REMOVE_RECURSE
  "CMakeFiles/explain_sections.dir/explain_sections.cpp.o"
  "CMakeFiles/explain_sections.dir/explain_sections.cpp.o.d"
  "explain_sections"
  "explain_sections.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explain_sections.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
