file(REMOVE_RECURSE
  "libmpass_ml.a"
)
