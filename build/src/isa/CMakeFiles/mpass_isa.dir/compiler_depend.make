# Empty compiler generated dependencies file for mpass_isa.
# This may be replaced when dependencies are built.
