// EMBER-style static feature extraction for the GBDT ("LightGBM") detector
// and the commercial-AV simulators.
//
// Feature groups (fixed layout, see feature_dim()):
//   [0..255]    normalized whole-file byte histogram
//   [256..511]  byte-entropy joint histogram (16x16)
//   [512..]     parsed-PE features: header fields, section statistics,
//               import-table features, string features, and MVM code-section
//               statistics (sensitive-syscall densities -- the code-section
//               signal the paper identifies as critical).
// Extraction is tolerant: unparsable/adversarial files yield the raw-bytes
// groups plus zeros for parsed groups (plus a parse-failure indicator).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace mpass::detect {

/// Total feature dimensionality.
std::size_t feature_dim();

/// Names of the parsed-feature block (diagnostics / tests).
std::span<const std::string_view> parsed_feature_names();

/// Extracts the full feature vector from raw file bytes.
std::vector<float> extract_features(std::span<const std::uint8_t> bytes);

/// Commercial AVs ship heuristic features beyond the EMBER-style set --
/// entry-point placement, writable+executable sections, whether code at the
/// entry point disassembles -- which is part of why they are harder targets
/// than the offline research models (paper Fig. 3 vs Table I).
std::size_t vendor_feature_dim();
std::span<const std::string_view> vendor_feature_names();

/// EMBER-style features + the vendor heuristic block.
std::vector<float> extract_vendor_features(std::span<const std::uint8_t> bytes);

}  // namespace mpass::detect
