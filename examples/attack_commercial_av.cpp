// Attacking a commercial ML AV simulator (paper §IV-B) and watching it
// *learn* (§IV-C): run MPass and a baseline against AV1, then feed the
// successful AEs back through the vendor's weekly signature-mining update
// and re-scan -- the baseline's AEs get caught, MPass's survive.
//
// Build & run:  ./build/examples/attack_commercial_av
#include <cstdio>

#include "attack/mab.hpp"
#include "attack/mpass_attack.hpp"
#include "corpus/generator.hpp"
#include "detectors/zoo.hpp"
#include "vm/sandbox.hpp"

int main() {
  using namespace mpass;
  detect::ModelZoo& zoo = detect::ModelZoo::instance();
  detect::CommercialAv& av = *zoo.avs()[0];  // AV1
  std::printf("target: %s (%zu signatures, threshold %.3f)\n\n",
              std::string(av.name()).c_str(), av.signatures().size(),
              av.threshold());

  attack::MpassAttack mpass("MPass", attack::MpassAttack::default_config(),
                            zoo.benign_pool(),
                            zoo.known_nets_excluding("none"));
  attack::Mab mab({}, zoo.benign_pool());

  std::vector<util::ByteBuf> mpass_aes, mab_aes;
  const int n = 16;
  int mpass_ok = 0, mab_ok = 0;
  for (int i = 0; i < n; ++i) {
    const util::ByteBuf sample = corpus::make_malware(808000 + i).bytes();
    if (!av.is_malicious(sample)) continue;
    {
      detect::HardLabelOracle oracle(av, 100);
      auto r = mpass.run(sample, oracle, 90 + i);
      if (r.success) {
        ++mpass_ok;
        mpass_aes.push_back(r.adversarial);
      }
    }
    {
      detect::HardLabelOracle oracle(av, 100);
      auto r = mab.run(sample, oracle, 90 + i);
      if (r.success) {
        ++mab_ok;
        mab_aes.push_back(r.adversarial);
      }
    }
  }
  std::printf("first-scan evasions out of %d samples: MPass %d, MAB %d\n", n,
              mpass_ok, mab_ok);

  // The vendor's weekly update: mine signatures from everything submitted.
  std::vector<util::ByteBuf> submissions = mpass_aes;
  submissions.insert(submissions.end(), mab_aes.begin(), mab_aes.end());
  const std::size_t added = av.update(submissions);
  std::printf("AV update: %zu new signatures mined from %zu submissions\n",
              added, submissions.size());

  auto rescan = [&](const std::vector<util::ByteBuf>& aes) {
    std::size_t still = 0;
    for (const auto& ae : aes)
      if (!av.is_malicious(ae)) ++still;
    return aes.empty() ? 0.0
                       : 100.0 * static_cast<double>(still) /
                             static_cast<double>(aes.size());
  };
  std::printf("bypass rate after the update: MPass %.0f%%, MAB %.0f%%\n",
              rescan(mpass_aes), rescan(mab_aes));
  std::printf("(paper Fig. 4: baselines decay under vendor learning, MPass "
              "stays at 100%%)\n");
  return 0;
}
