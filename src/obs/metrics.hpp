// Lock-cheap metrics registry: named counters, gauges and fixed-bucket
// histograms, sharded per thread and merged on snapshot.
//
// Design:
//   * Registration (name -> MetricId) takes a registry mutex once per call
//     site; handles and OBS_SCOPE cache the id in a function-local static.
//   * The hot path (inc/observe) touches only the calling thread's shard:
//     a bounds check plus relaxed atomic updates on slots only this thread
//     writes. No locks, no contention -- safe from any thread, including
//     the work-stealing util::ThreadPool workers.
//   * snapshot() merges all live shards (briefly locking each to fence
//     against shard growth) plus the totals retired by exited threads, so
//     the merged view is deterministic: it depends only on the updates
//     performed, never on which thread performed them.
//   * Threads retire their shard through a shared_ptr to the registry core,
//     so worker threads that outlive the registry singleton (static
//     destruction order is unspecified) merge into a still-live core
//     instead of a dangling pointer.
//
// Naming scheme (see docs/OBSERVABILITY.md): dot-separated lowercase,
// "<subsystem>.<what>[.<detail>]"; scoped-timer histograms are
// "time.<scope>" with millisecond buckets.
//
// The OBS_SCOPE macro lives in obs/span.hpp: a scope is now a hierarchical
// span (per-call-path accounting) that also feeds the flat "time.<scope>"
// histogram here.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace mpass::obs {

using MetricId = std::uint32_t;

/// Merged view of every metric at one point in time.
struct Snapshot {
  struct Histogram {
    std::vector<double> bounds;          // upper bucket bounds; +inf implicit
    std::vector<std::uint64_t> buckets;  // bounds.size() + 1 entries
    std::uint64_t count = 0;
    double sum = 0.0;
  };
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, Histogram> histograms;

  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  std::string to_json() const;

  /// Flat (name, value) view: counters as-is, gauges, and per histogram
  /// "<name>.count" / "<name>.sum". Used to embed snapshots in CellStats.
  std::vector<std::pair<std::string, double>> flat() const;
};

class Registry {
 public:
  /// Process-wide registry.
  static Registry& instance();

  /// Registers (or looks up) a metric; same (kind, name) always yields the
  /// same id. Throws std::invalid_argument if `name` is already registered
  /// with a different kind (or different histogram bounds).
  MetricId counter(std::string_view name);
  MetricId gauge(std::string_view name);
  MetricId histogram(std::string_view name, std::span<const double> bounds);

  /// Gauge whose value is computed at snapshot time (e.g. queue depth).
  /// Re-registering a name replaces the callback. The callback must remain
  /// valid until replaced (pass owning lambdas for static-lifetime objects).
  void gauge_callback(std::string_view name, std::function<double()> fn);

  void inc(MetricId id, std::uint64_t delta = 1) noexcept;
  void set(MetricId id, double value) noexcept;
  void observe(MetricId id, double value) noexcept;

  Snapshot snapshot() const;

  struct Core;  // implementation detail, public only for the .cpp's TLS hook

 private:
  Registry();
  std::shared_ptr<Core> core_;
};

// ---- ergonomic handles ------------------------------------------------------

class Counter {
 public:
  explicit Counter(std::string_view name)
      : id_(Registry::instance().counter(name)) {}
  void inc(std::uint64_t delta = 1) const noexcept {
    Registry::instance().inc(id_, delta);
  }

 private:
  MetricId id_;
};

class Gauge {
 public:
  explicit Gauge(std::string_view name)
      : id_(Registry::instance().gauge(name)) {}
  void set(double v) const noexcept { Registry::instance().set(id_, v); }

 private:
  MetricId id_;
};

class Histogram {
 public:
  Histogram(std::string_view name, std::span<const double> bounds)
      : id_(Registry::instance().histogram(name, bounds)) {}
  void observe(double v) const noexcept {
    Registry::instance().observe(id_, v);
  }

 private:
  MetricId id_;
};

/// Default wall-time buckets for scoped timers, in milliseconds
/// (exponential 10us .. 30s). Span sites (obs/span.hpp) register their flat
/// "time.<scope>" histograms with these bounds.
std::span<const double> time_bounds();

}  // namespace mpass::obs
