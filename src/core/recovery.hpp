// Runtime-recovery stub construction + shuffle strategy (paper §III-C).
//
// The recovery section is laid out as [key blocks][stub][benign filler]:
//   * key blocks -- one per encoded region, key = benign_content - original
//     (byte-wise mod 256), so the stub restores x = b - k at runtime;
//   * stub -- VProtect each region, decode it against its key block, zero
//     the registers ("restore contexts") and jump to the original entry
//     point;
//   * shuffle strategy -- the stub instruction sequence is split into small
//     chunks, the chunks are laid out in random order connected by jump
//     instructions that preserve program order, and never-executed gaps
//     between chunks hold perturbation bytes. Re-assembly re-patches all
//     relative displacements (the paper's relative-addressing fix-up).
#pragma once

#include <cstdint>
#include <vector>

#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace mpass::core {

/// One region of the original file to encode + recover.
struct RegionPlan {
  std::uint32_t va = 0;    // mapped VA of the region start
  std::uint32_t len = 0;   // bytes
  std::uint32_t prot = 1;  // protection restored during decode (1=W, 3=W+X)
};

/// Knobs for the stub layout. build_recovery_section validates them up
/// front and throws std::invalid_argument if chunk_items < 1 or
/// max_gap < min_gap.
struct StubOptions {
  bool shuffle = true;
  std::size_t chunk_items = 2;   // max instructions per shuffled chunk (>= 1)
  std::size_t min_gap = 4;       // gap bytes between chunks
  std::size_t max_gap = 16;      // must be >= min_gap
  std::size_t lead_filler = 0;   // benign filler *before* the stub
};

/// The built recovery section plus the byte ranges the optimizer may touch.
/// Layout: [lead filler][shuffled stub + gaps][key blocks] -- benign-looking
/// content leads, the incompressible key material sits deepest in the file.
struct RecoverySection {
  util::ByteBuf data;
  std::uint32_t entry_offset = 0;  // section-relative entry (first chunk)
  std::vector<std::uint32_t> key_offsets;  // per region, section-relative
  // Section-relative (offset, len) ranges that are pure perturbation slots:
  // the lead filler and the shuffle gaps.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> free_ranges;
};

/// Builds the recovery section.
///   regions/keys  parallel arrays (keys[i].size() == regions[i].len)
///   section_va    VA the section will be mapped at
///   oep_va        original entry point to jump to after recovery
///   filler        benign byte source for gaps + tail (used cyclically)
RecoverySection build_recovery_section(std::span<const RegionPlan> regions,
                                       std::span<const util::ByteBuf> keys,
                                       std::uint32_t section_va,
                                       std::uint32_t oep_va,
                                       std::span<const std::uint8_t> filler,
                                       const StubOptions& opts,
                                       util::Rng& rng);

}  // namespace mpass::core
