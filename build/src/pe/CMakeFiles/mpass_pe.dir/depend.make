# Empty dependencies file for mpass_pe.
# This may be replaced when dependencies are built.
