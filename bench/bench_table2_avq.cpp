// Reproduces Table II: AVQ (mean queries per successful AE) of each attack
// against the four offline detectors. Uses the cached Table-I runs.
#include "bench_common.hpp"

int main() {
  using namespace mpass;
  const auto cfg = harness::ExperimentConfig::from_env();
  bench::BenchReport report("table2_avq");
  const auto cells = harness::offline_grid(cfg);
  report.add_cells(cells);
  bench::print_grid(
      "Table II: AVQ of attack methods on offline models", cells,
      bench::offline_targets(), bench::main_attacks(),
      [](const harness::CellStats& c) { return c.avq; });
  bench::print_top_timers();
  std::printf(
      "Paper Table II:\n"
      "  MalConv 2.6/92.3/7.6/83.9/9.3   NonNeg 2.2/79.5/10.5/15.8/5.7\n"
      "  LightGBM 2.8/94.2/11.7/18.0/70.8 MalGCG 1.6/61.4/17.0/63.1/12.4\n");
  return 0;
}
