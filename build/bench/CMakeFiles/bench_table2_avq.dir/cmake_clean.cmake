file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_avq.dir/bench_table2_avq.cpp.o"
  "CMakeFiles/bench_table2_avq.dir/bench_table2_avq.cpp.o.d"
  "bench_table2_avq"
  "bench_table2_avq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_avq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
