
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pe/import.cpp" "src/pe/CMakeFiles/mpass_pe.dir/import.cpp.o" "gcc" "src/pe/CMakeFiles/mpass_pe.dir/import.cpp.o.d"
  "/root/repo/src/pe/pe.cpp" "src/pe/CMakeFiles/mpass_pe.dir/pe.cpp.o" "gcc" "src/pe/CMakeFiles/mpass_pe.dir/pe.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mpass_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
