file(REMOVE_RECURSE
  "libmpass_harness.a"
)
