// Concrete detector implementations: the four offline models of §IV-A.
//
//   MalConv  -> ByteConvDetector (gated conv byte net)
//   NonNeg   -> ByteConvDetector with non-negative dense weights
//   MalGCG   -> ByteConvDetector with global channel gating
//   LightGBM -> GbdtDetector over EMBER-style features
#pragma once

#include <memory>

#include "detectors/detector.hpp"
#include "detectors/features.hpp"
#include "ml/byteconv.hpp"
#include "ml/gbdt.hpp"

namespace mpass::detect {

/// Byte-level neural detector. The underlying net is exposed because MPass's
/// optimization uses *known* models' gradients (white-box surrogates),
/// while targets are only ever queried through HardLabelOracle.
class ByteConvDetector : public Detector {
 public:
  ByteConvDetector(std::string name, const ml::ByteConvConfig& cfg,
                   std::uint64_t seed)
      : name_(std::move(name)), net_(cfg, seed) {}

  std::string_view name() const override { return name_; }

  /// Incremental scoring: query-based attacks (MAB's per-pull mutations,
  /// GAMMA's genome variants, MPass's optimized re-queries) score buffers
  /// differing from the previous query in a few windows, so the net diffs
  /// against its cached forward and re-convolves only the dirty timesteps.
  /// Bit-for-bit equal to a full forward (MPASS_NO_INCREMENTAL=1 reverts).
  double score(std::span<const std::uint8_t> bytes) const override {
    return net_.forward_auto(bytes);
  }

  /// Batched candidate scoring against one cached baseline (edits are
  /// independent alternatives, not cumulative).
  std::vector<float> score_deltas(std::span<const std::uint8_t> base,
                                  std::span<const ml::ByteEdit> edits) const {
    return net_.score_deltas(base, edits);
  }

  /// Deep copy (ByteConvNet's copy constructor gives the clone private
  /// parameters; activation caches start cold).
  std::unique_ptr<Detector> clone() const override {
    return std::make_unique<ByteConvDetector>(*this);
  }

  ml::ByteConvNet& net() const { return net_; }

  void save(util::Archive& ar) const;
  void load(util::Unarchive& ar);

 private:
  std::string name_;
  // forward() caches activations; scoring is logically const.
  mutable ml::ByteConvNet net_;
};

/// Feature-space GBDT detector (the "LightGBM"/EMBER model). With
/// vendor_features enabled it additionally consumes the commercial-AV
/// heuristic block (entry-point placement etc., see features.hpp).
class GbdtDetector : public Detector {
 public:
  GbdtDetector(std::string name, const ml::GbdtConfig& cfg,
               bool vendor_features = false)
      : name_(std::move(name)), gbdt_(cfg), vendor_(vendor_features) {}

  std::string_view name() const override { return name_; }

  double score(std::span<const std::uint8_t> bytes) const override {
    const std::vector<float> f = features(bytes);
    return gbdt_.predict(f);
  }

  std::unique_ptr<Detector> clone() const override {
    return std::make_unique<GbdtDetector>(*this);
  }

  /// The feature extraction this detector was configured with.
  std::vector<float> features(std::span<const std::uint8_t> bytes) const {
    return vendor_ ? extract_vendor_features(bytes) : extract_features(bytes);
  }

  bool vendor_features() const { return vendor_; }
  ml::Gbdt& gbdt() { return gbdt_; }
  const ml::Gbdt& gbdt() const { return gbdt_; }

  void save(util::Archive& ar) const;
  void load(util::Unarchive& ar);

 private:
  std::string name_;
  ml::Gbdt gbdt_;
  bool vendor_ = false;
};

/// Standard architectures for the four offline detectors.
ml::ByteConvConfig malconv_config();
ml::ByteConvConfig nonneg_config();
ml::ByteConvConfig malgcg_config();
ml::GbdtConfig lightgbm_config();

}  // namespace mpass::detect
