// PEM: the problem-space explainability method (paper §III-B, Algorithm 1).
//
// Runs Shapley attribution of every known model over a set of sampled
// malware, averages per common section name, ranks sections per model,
// and intersects the per-model top-k sets into the common critical sections
// the attack will target. The paper's headline finding -- code and data are
// the top-2 critical sections, with 1.3~6.0x the Shapley value of the
// top-3 section -- is exposed as a ratio statistic for the PEM bench.
#pragma once

#include "detectors/detector.hpp"
#include "explain/shapley.hpp"

namespace mpass::explain {

struct PemConfig {
  std::size_t top_h = 30;  // most common section names considered (S_all)
  std::size_t top_k = 3;   // per-model critical-section count
  ShapleyOptions shapley;
};

struct PemResult {
  std::vector<std::string> common_sections;  // S_all, by corpus frequency
  std::vector<std::string> model_names;
  // avg_shapley[m][i] = E_f(phi_i) for model m, section common_sections[i].
  std::vector<std::vector<double>> avg_shapley;
  std::vector<std::vector<std::string>> per_model_topk;
  std::vector<std::string> critical;  // intersection of per-model top-k
  // mean(E[top1], E[top2]) / E[top3], per model (the 1.3~6.0x claim).
  std::vector<double> top2_over_top3;
};

/// Runs Algorithm 1 over N sampled malware files and M known models.
PemResult run_pem(std::span<const util::ByteBuf> malware,
                  std::span<const detect::Detector* const> known_models,
                  const PemConfig& cfg = {});

}  // namespace mpass::explain
