// LZSS-style compression used by the packer obfuscators (UPX-like/ASPack-like)
// and by tests that need realistic high-entropy-but-decompressible payloads.
//
// Format (self-describing, little-endian):
//   u32 magic 'MLZ1' | u32 uncompressed_size | token stream
// Token stream: flag byte covering the next 8 items, LSB first;
//   bit=0 -> literal byte; bit=1 -> match: u16 (offset:12 | len-3:4).
// Window 4096 bytes, match length 3..18.
#pragma once

#include "util/bytes.hpp"

namespace mpass::util {

/// Compresses data; output always round-trips through decompress().
ByteBuf lzss_compress(std::span<const std::uint8_t> data);

/// Decompresses a buffer produced by lzss_compress.
/// Throws ParseError on malformed input.
ByteBuf lzss_decompress(std::span<const std::uint8_t> data);

/// True if the buffer starts with the MLZ1 magic.
bool is_lzss(std::span<const std::uint8_t> data);

}  // namespace mpass::util
