// Unit tests for the MVM emulator: arithmetic, control flow, memory
// protection, syscalls and behavior traces.
#include <gtest/gtest.h>

#include "isa/isa.hpp"
#include "pe/pe.hpp"
#include "util/hashing.hpp"
#include "vm/machine.hpp"
#include "vm/sandbox.hpp"
#include "vm/trace_io.hpp"

namespace mpass::vm {
namespace {

using isa::Assembler;
using isa::Reg;
using util::ByteBuf;

/// Builds a single-code-section PE around the assembled program.
ByteBuf make_exe(Assembler& a, ByteBuf data_section = {},
                 std::uint32_t data_chars = pe::kScnInitializedData |
                                            pe::kScnMemRead |
                                            pe::kScnMemWrite) {
  pe::PeFile f;
  const ByteBuf code = a.finish(f.image_base + 0x1000);
  f.add_section(".text", code,
                pe::kScnCode | pe::kScnMemRead | pe::kScnMemExecute);
  if (!data_section.empty()) f.add_section(".data", data_section, data_chars);
  f.entry_point = 0x1000;
  return f.build();
}

RunResult run_program(Assembler& a, ByteBuf data = {}) {
  Machine m(make_exe(a, std::move(data)));
  return m.run();
}

TEST(Vm, ArithmeticAndPrintDigest) {
  Assembler a;
  // r4 = 6 * 7; Print 4 bytes at a known data VA after storing r4 there.
  a.movi(Reg::r4, 6);
  a.movi(Reg::r5, 7);
  a.mul(Reg::r4, Reg::r5);
  a.movi(Reg::r6, 0x00402000);  // .data section VA (second section)
  a.storew(Reg::r6, Reg::r4);
  a.movi(Reg::r0, 0x00402000);
  a.movi(Reg::r1, 4);
  a.sys(static_cast<std::uint16_t>(Api::Print));
  a.halt();
  const RunResult r = run_program(a, ByteBuf(16, 0));
  ASSERT_TRUE(r.ok()) << r.fault_reason;
  ASSERT_EQ(r.trace.size(), 1u);
  EXPECT_EQ(r.trace[0].api, static_cast<std::uint16_t>(Api::Print));
  // Digest covers memory contents: 42 little-endian.
  const ByteBuf expect = {42, 0, 0, 0};
  EXPECT_EQ(r.trace[0].digest, util::fnv1a64(expect));
}

TEST(Vm, LoopAndBranches) {
  Assembler a;
  // sum 1..10 in r4, Exit with code r4 -> traced digest 55.
  const auto loop = a.make_label();
  const auto done = a.make_label();
  a.movi(Reg::r4, 0);
  a.movi(Reg::r5, 1);
  a.bind(loop);
  a.movi(Reg::r6, 11);
  a.jlt(Reg::r5, Reg::r6, done);  // continue while r5 < 11... inverted below
  a.jmp(done);
  a.bind(done);
  a.halt();
  // Simpler deterministic loop:
  Assembler b;
  const auto top = b.make_label();
  const auto end = b.make_label();
  b.movi(Reg::r4, 0);   // sum
  b.movi(Reg::r5, 10);  // counter
  b.bind(top);
  b.jz(Reg::r5, end);
  b.add(Reg::r4, Reg::r5);
  b.movi(Reg::r0, 1);
  b.sub(Reg::r5, Reg::r0);
  b.jmp(top);
  b.bind(end);
  b.movr(Reg::r0, Reg::r4);
  b.sys(static_cast<std::uint16_t>(Api::ExitProcess));
  b.halt();
  const RunResult r = run_program(b);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.trace.size(), 1u);
  EXPECT_EQ(r.trace[0].digest, 55u);
}

TEST(Vm, CallRetAndStack) {
  Assembler a;
  const auto fn = a.make_label();
  const auto over = a.make_label();
  a.movi(Reg::r4, 5);
  a.call(fn);
  a.movr(Reg::r0, Reg::r4);
  a.sys(static_cast<std::uint16_t>(Api::ExitProcess));
  a.halt();
  a.jmp(over);  // unreachable guard
  a.bind(fn);
  a.push(Reg::r4);
  a.movi(Reg::r4, 100);
  a.pop(Reg::r4);      // restore 5
  a.addi(Reg::r4, 1);  // 6
  a.ret();
  a.bind(over);
  a.halt();
  const RunResult r = run_program(a);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.trace[0].digest, 6u);
}

TEST(Vm, WriteToCodeSectionFaultsWithoutVProtect) {
  Assembler a;
  a.movi(Reg::r4, 0x00401000);  // own code section
  a.movi(Reg::r5, 0x99);
  a.storeb(Reg::r4, Reg::r5);
  a.halt();
  const RunResult r = run_program(a);
  EXPECT_TRUE(r.faulted);
  EXPECT_EQ(r.fault_reason, "write fault");
}

TEST(Vm, VProtectEnablesWrite) {
  Assembler a;
  a.movi(Reg::r0, 0x00401000);
  a.movi(Reg::r1, 0x1000);
  a.movi(Reg::r2, 3);  // W|X
  a.sys(static_cast<std::uint16_t>(Api::VProtect));
  a.movi(Reg::r4, 0x00401080);
  a.movi(Reg::r5, 0x99);
  a.storeb(Reg::r4, Reg::r5);
  a.halt();
  const RunResult r = run_program(a);
  EXPECT_TRUE(r.ok()) << r.fault_reason;
}

TEST(Vm, ExecutingDataSectionFaults) {
  Assembler a;
  a.jmp_va(0x00402000);  // jump into .data
  const RunResult r = run_program(a, ByteBuf(64, 0x00));
  EXPECT_TRUE(r.faulted);
}

TEST(Vm, BadMemoryAccessFaults) {
  Assembler a;
  a.movi(Reg::r4, 0x12345678);  // unmapped
  a.loadb(Reg::r5, Reg::r4);
  a.halt();
  const RunResult r = run_program(a);
  EXPECT_TRUE(r.faulted);
}

TEST(Vm, FuelExhaustionReported) {
  Assembler a;
  const auto loop = a.make_label();
  a.bind(loop);
  a.jmp(loop);
  Machine m(make_exe(a));
  const RunResult r = m.run(1000);
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.faulted);
  EXPECT_EQ(r.fault_reason, "fuel exhausted");
  EXPECT_EQ(r.steps, 1000u);
}

TEST(Vm, ReadSelfReturnsRawFileBytes) {
  Assembler a;
  // Read first 2 bytes of our own file into scratch and Print them.
  a.movi(Reg::r0, 0);
  a.movi(Reg::r1, 0x00402000);
  a.movi(Reg::r2, 2);
  a.sys(static_cast<std::uint16_t>(Api::ReadSelf));
  a.movi(Reg::r0, 0x00402000);
  a.movi(Reg::r1, 2);
  a.sys(static_cast<std::uint16_t>(Api::Print));
  a.halt();
  const RunResult r = run_program(a, ByteBuf(16, 0));
  ASSERT_TRUE(r.ok());
  const ByteBuf mz = {'M', 'Z'};
  EXPECT_EQ(r.trace[0].digest, util::fnv1a64(mz));
}

TEST(Vm, SensitiveCallsCounted) {
  Assembler a;
  a.movi(Reg::r0, 1);
  a.movi(Reg::r1, 443);
  a.sys(static_cast<std::uint16_t>(Api::Connect));
  a.sys(static_cast<std::uint16_t>(Api::DeleteShadow));
  a.halt();
  const RunResult r = run_program(a);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.sensitive_calls(), 2u);
  EXPECT_EQ(r.malicious_calls(), 1u);  // only DeleteShadow is hard-malicious
}

TEST(Vm, EncryptFileChangesVictimFileAndDigest) {
  Assembler a;
  // Enumerate one file and encrypt it.
  a.movi(Reg::r0, 0x00402000);
  a.movi(Reg::r1, 256);
  a.sys(static_cast<std::uint16_t>(Api::EnumFiles));
  a.movr(Reg::r5, Reg::r0);
  a.movi(Reg::r0, 0x00402000);
  a.movr(Reg::r1, Reg::r5);
  a.movi(Reg::r2, 0x5A);
  a.sys(static_cast<std::uint16_t>(Api::EncryptFile));
  a.halt();
  Machine m(make_exe(a, ByteBuf(512, 0)));
  const RunResult r = m.run();
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.trace.size(), 2u);
  // The victim file content changed (xor 0x5A).
  const auto& files = m.files();
  const auto it = files.find("C:/Users/victim/doc_report.txt");
  ASSERT_NE(it, files.end());
  EXPECT_EQ(it->second[0], static_cast<std::uint8_t>('Q' ^ 0x5A));
}

TEST(Vm, TracesDeterministicAcrossRuns) {
  Assembler a;
  a.sys(static_cast<std::uint16_t>(Api::KeylogStart));
  a.movi(Reg::r0, 0x00402000);
  a.movi(Reg::r1, 64);
  a.sys(static_cast<std::uint16_t>(Api::KeylogDump));
  a.movi(Reg::r0, 0);
  a.sys(static_cast<std::uint16_t>(Api::ExitProcess));
  const ByteBuf exe = make_exe(a, ByteBuf(128, 0));
  const RunResult r1 = Machine(exe).run();
  const RunResult r2 = Machine(exe).run();
  EXPECT_TRUE(traces_equal(r1.trace, r2.trace));
}

TEST(TraceIo, FormatSummarizeAndDiff) {
  const Trace a = {{static_cast<std::uint16_t>(Api::Print), 1},
                   {static_cast<std::uint16_t>(Api::Connect), 2},
                   {static_cast<std::uint16_t>(Api::EncryptFile), 3}};
  const std::string text = format_trace(a);
  EXPECT_NE(text.find("Print"), std::string::npos);
  EXPECT_NE(text.find("[sensitive]"), std::string::npos);
  EXPECT_NE(text.find("[malicious]"), std::string::npos);
  EXPECT_EQ(summarize_trace(a), "3 events, 2 sensitive, 1 malicious");

  EXPECT_TRUE(diff_traces(a, a).empty());
  Trace b = a;
  b[1].digest = 99;
  const std::string d1 = diff_traces(a, b);
  EXPECT_NE(d1.find("divergence at event 1"), std::string::npos);
  Trace c = a;
  c.pop_back();
  const std::string d2 = diff_traces(a, c);
  EXPECT_NE(d2.find("length mismatch"), std::string::npos);
  EXPECT_NE(d2.find("EncryptFile"), std::string::npos);
}

TEST(Sandbox, MalwareVerdicts) {
  Assembler bad;
  bad.movi(Reg::r0, 0x00402000);
  bad.movi(Reg::r1, 16);
  bad.sys(static_cast<std::uint16_t>(Api::StealCreds));
  bad.halt();
  Assembler good;
  good.movi(Reg::r0, 1);
  good.movi(Reg::r1, 443);
  good.sys(static_cast<std::uint16_t>(Api::Connect));  // gray, not malicious
  good.halt();

  const Sandbox sandbox;
  const SandboxReport rb = sandbox.analyze(make_exe(bad, ByteBuf(64, 0)));
  EXPECT_TRUE(rb.executed_ok);
  EXPECT_TRUE(rb.malicious);
  const SandboxReport rg = sandbox.analyze(make_exe(good));
  EXPECT_TRUE(rg.executed_ok);
  EXPECT_FALSE(rg.malicious);

  // Non-PE input: parsed=false, never malicious.
  const SandboxReport rj = sandbox.analyze(ByteBuf(100, 0x41));
  EXPECT_FALSE(rj.parsed);
  EXPECT_FALSE(rj.malicious);
}

TEST(Sandbox, FunctionalityPreservedDetectsBehaviorChange) {
  Assembler a;
  a.movi(Reg::r0, 0xAA);
  a.sys(static_cast<std::uint16_t>(Api::ExitProcess));
  Assembler b;
  b.movi(Reg::r0, 0xBB);  // different exit code -> different digest
  b.sys(static_cast<std::uint16_t>(Api::ExitProcess));
  const Sandbox sandbox;
  const ByteBuf ea = make_exe(a), eb = make_exe(b);
  EXPECT_TRUE(sandbox.functionality_preserved(ea, ea));
  EXPECT_FALSE(sandbox.functionality_preserved(ea, eb));
}

}  // namespace
}  // namespace mpass::vm
