# Empty dependencies file for mpass_harness.
# This may be replaced when dependencies are built.
