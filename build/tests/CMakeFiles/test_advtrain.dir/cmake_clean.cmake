file(REMOVE_RECURSE
  "CMakeFiles/test_advtrain.dir/test_advtrain.cpp.o"
  "CMakeFiles/test_advtrain.dir/test_advtrain.cpp.o.d"
  "test_advtrain"
  "test_advtrain.pdb"
  "test_advtrain[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_advtrain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
