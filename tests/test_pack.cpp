// Tests for the LZSS codec and the packer obfuscators.
#include <gtest/gtest.h>

#include "corpus/generator.hpp"
#include "pack/packer.hpp"
#include "pe/import.hpp"
#include "pe/pe.hpp"
#include "util/compress.hpp"
#include "util/entropy.hpp"
#include "util/rng.hpp"
#include "vm/sandbox.hpp"

namespace mpass {
namespace {

using util::ByteBuf;

TEST(Lzss, RoundTripRandomAndStructured) {
  util::Rng rng(1);
  for (std::size_t n : {0ul, 1ul, 7ul, 256ul, 5000ul}) {
    const ByteBuf data = rng.bytes(n);
    EXPECT_EQ(util::lzss_decompress(util::lzss_compress(data)), data);
  }
  // Highly compressible input must actually shrink.
  const ByteBuf rep(8192, 0x41);
  const ByteBuf packed = util::lzss_compress(rep);
  EXPECT_LT(packed.size(), rep.size() / 3);
  EXPECT_EQ(util::lzss_decompress(packed), rep);
  EXPECT_TRUE(util::is_lzss(packed));
  EXPECT_FALSE(util::is_lzss(rep));
}

TEST(Lzss, DecompressRejectsGarbage) {
  util::Rng rng(2);
  EXPECT_THROW(util::lzss_decompress(rng.bytes(64)), util::ParseError);
  // Bad match offset: magic + size, then a match token pointing backwards
  // past the start.
  util::ByteWriter w;
  w.u32(0x315A4C4D);
  w.u32(10);
  w.u8(0x01);        // first item is a match
  w.u16(0xFFF0);     // offset ~4095, nothing decoded yet
  EXPECT_THROW(util::lzss_decompress(w.buffer()), util::ParseError);
}

// Property sweep: every packer preserves runtime behavior on every family.
struct PackCase {
  pack::PackerKind kind;
  std::uint64_t seed;
};

class PackerPreserves : public ::testing::TestWithParam<PackCase> {};

TEST_P(PackerPreserves, FunctionalityIntact) {
  const auto [kind, seed] = GetParam();
  const ByteBuf orig = corpus::make_malware(seed).bytes();
  const auto packed = pack::pack(kind, orig);
  ASSERT_TRUE(packed.has_value());
  const vm::Sandbox sandbox;
  EXPECT_TRUE(sandbox.functionality_preserved(orig, *packed));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PackerPreserves,
    ::testing::Values(PackCase{pack::PackerKind::UpxLike, 11},
                      PackCase{pack::PackerKind::UpxLike, 12},
                      PackCase{pack::PackerKind::UpxLike, 13},
                      PackCase{pack::PackerKind::PespinLike, 11},
                      PackCase{pack::PackerKind::PespinLike, 14},
                      PackCase{pack::PackerKind::AspackLike, 11},
                      PackCase{pack::PackerKind::AspackLike, 15}));

TEST(Packer, CarriesCharacteristicArtifacts) {
  const ByteBuf orig = corpus::make_benign(21).bytes();
  const auto packed = pack::pack(pack::PackerKind::UpxLike, orig);
  ASSERT_TRUE(packed.has_value());
  const pe::PeFile f = pe::PeFile::parse(*packed);
  EXPECT_TRUE(f.find_section("UPX0").has_value());
  EXPECT_TRUE(f.find_section("UPX1").has_value());
  // The stub+payload section carries compressed (high-ish entropy) data and
  // the packed file keeps only a minimal import table.
  const auto idx = f.find_section("UPX1");
  EXPECT_GT(util::shannon_entropy(f.sections[*idx].data), 4.0);
  EXPECT_LE(pe::read_imports(f).size(), 3u);
}

TEST(Packer, PreservesOverlay) {
  // Overlay-dependent malware must still find its payload after packing.
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    const corpus::CompiledSample s = corpus::make_malware(30000 + seed);
    if (!s.meta.overlay_dependent) continue;
    const ByteBuf orig = s.bytes();
    const auto packed = pack::pack(pack::PackerKind::AspackLike, orig);
    ASSERT_TRUE(packed.has_value());
    const pe::PeFile f = pe::PeFile::parse(*packed);
    EXPECT_EQ(f.overlay, s.pe.overlay);
    const vm::Sandbox sandbox;
    EXPECT_TRUE(sandbox.functionality_preserved(orig, *packed));
    return;
  }
  FAIL() << "no overlay-dependent sample found";
}

TEST(Packer, RejectsNonPe) {
  util::Rng rng(5);
  EXPECT_FALSE(pack::pack(pack::PackerKind::UpxLike, rng.bytes(500))
                   .has_value());
}

TEST(Packer, CompressingPackersShrinkRedundantFiles) {
  const ByteBuf orig = corpus::make_benign(33).bytes();
  const auto upx = pack::pack(pack::PackerKind::UpxLike, orig);
  ASSERT_TRUE(upx.has_value());
  EXPECT_LT(upx->size(), orig.size());
}

}  // namespace
}  // namespace mpass
