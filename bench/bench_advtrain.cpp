// Extension bench (paper §VI "Adversarial training"): measures how much the
// two standard adversarial-training flavors reduce MPass's ASR on MalConv.
//
// Paper's claims: PGD-AT-style gradient AEs do not help (wrong AE
// distribution -- not function-preserving), and even training on MPass's own
// AEs mixed 50/50 with clean malware suppresses ASR by < 10%.
#include "bench_common.hpp"
#include "detectors/advtrain.hpp"

int main() {
  using namespace mpass;
  auto cfg = harness::ExperimentConfig::from_env();
  bench::BenchReport report("advtrain");
  cfg.n_samples = std::min<std::size_t>(cfg.n_samples, 30);  // 3 full runs
  detect::ModelZoo& zoo = detect::ModelZoo::instance();

  // Baseline: MPass vs the zoo's MalConv.
  const detect::Detector& base = zoo.offline_by_name("MalConv");
  std::vector<const detect::Detector*> gate = {&base};
  const auto samples = harness::make_attack_set(gate, cfg.n_samples, cfg.seed);

  auto attack_asr = [&](const detect::Detector& target) {
    auto atk = harness::make_attack("MPass", zoo, "MalConv");
    const harness::CellStats stats =
        harness::run_cell(*atk, target, samples, samples, cfg);
    return std::pair<double, std::vector<util::ByteBuf>>(stats.asr,
                                                         stats.aes);
  };
  const auto [base_asr, base_aes] = attack_asr(base);

  // (a) PGD-AT-style retraining from scratch.
  detect::ByteConvDetector pgd("MalConv-PGDAT", detect::malconv_config(),
                               zoo.config().seed + 1);
  detect::AdvTrainConfig at;
  at.epochs = zoo.config().net_epochs;
  detect::adversarial_train_pgd(pgd, zoo.train(), at);
  detect::calibrate_threshold(pgd, zoo.train(), zoo.config().target_fpr);
  const auto [pgd_asr, pgd_aes] = attack_asr(pgd);

  // (b) Fine-tune a copy of MalConv on MPass's own AEs (50/50 mix).
  detect::ByteConvDetector mixed("MalConv-AEmix", detect::malconv_config(),
                                 zoo.config().seed + 1);
  {  // clone the zoo MalConv weights
    util::Archive ar;
    dynamic_cast<const detect::ByteConvDetector&>(base).save(ar);
    const util::ByteBuf blob = ar.take();
    util::Unarchive un(blob);
    mixed.load(un);
  }
  detect::AdvTrainConfig mix_cfg;
  mix_cfg.epochs = 1;
  detect::adversarial_train_with_aes(mixed, zoo.train(), base_aes, mix_cfg);
  detect::calibrate_threshold(mixed, zoo.train(), zoo.config().target_fpr);
  const auto [mix_asr, mix_aes] = attack_asr(mixed);

  util::Table table("Extension (paper SVI): adversarial training vs MPass");
  table.header({"Defense", "MPass ASR (%)", "delta vs undefended"});
  table.row({"none (zoo MalConv)", util::Table::num(base_asr), "-"});
  table.row({"PGD-AT (gradient AEs)", util::Table::num(pgd_asr),
             util::Table::num(pgd_asr - base_asr)});
  table.row({"AE-mix 50/50 (MPass AEs)", util::Table::num(mix_asr),
             util::Table::num(mix_asr - base_asr)});
  std::cout << table.render();
  std::printf(
      "(n=%zu) Paper SVI: PGD-AT's uniform-perturbation AEs are off the\n"
      "function-preserving AE distribution and do not transfer; AE-mixing\n"
      "suppresses MPass ASR by less than 10 points.\n",
      cfg.n_samples);
  return 0;
}
