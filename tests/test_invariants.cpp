// Cross-module invariant tests: the algebraic guarantees the attack relies
// on, checked directly (not just via end-to-end sandbox runs).
#include <gtest/gtest.h>

#include <unordered_set>

#include "core/modification.hpp"
#include "core/optimizer.hpp"
#include "corpus/generator.hpp"
#include "detectors/models.hpp"
#include "detectors/training.hpp"
#include "isa/isa.hpp"
#include "pe/pe.hpp"

namespace mpass::core {
namespace {

using util::ByteBuf;

/// Recomputes x = b - k for every coupled byte of a modified sample and
/// compares with the original file's section content.
void check_recovery_algebra(const ByteBuf& original,
                            const ModifiedSample& mod) {
  pe::PeFile orig = pe::PeFile::parse(original);
  pe::Layout orig_layout;
  orig.build_with_layout(&orig_layout);
  pe::PeFile modified = pe::PeFile::parse(mod.bytes);
  pe::Layout mod_layout;
  modified.build_with_layout(&mod_layout);

  std::size_t checked = 0;
  for (const auto& [pos, key_pos] : mod.key_of) {
    // Which original section byte does `pos` correspond to?
    const auto sec = mod_layout.section_of(pos);
    ASSERT_TRUE(sec.has_value());
    const std::uint32_t off = pos - mod_layout.sections[*sec].file_offset;
    ASSERT_LT(*sec, orig.sections.size());
    ASSERT_LT(off, orig.sections[*sec].data.size());
    const std::uint8_t x = orig.sections[*sec].data[off];
    const std::uint8_t b = mod.bytes[pos];
    const std::uint8_t k = mod.bytes[key_pos];
    EXPECT_EQ(static_cast<std::uint8_t>(b - k), x)
        << "position " << pos;
    ++checked;
  }
  EXPECT_GT(checked, 1000u);
}

TEST(Invariants, RecoveryAlgebraHoldsAfterModification) {
  const ByteBuf original = corpus::make_malware(111).bytes();
  const ByteBuf donor = corpus::make_benign(222).bytes();
  util::Rng rng(3);
  const ModifiedSample mod =
      apply_modification(original, donor, ModificationConfig{}, rng);
  check_recovery_algebra(original, mod);
}

TEST(Invariants, RecoveryAlgebraSurvivesRandomPerturbation) {
  const ByteBuf original = corpus::make_malware(112).bytes();
  const ByteBuf donor = corpus::make_benign(223).bytes();
  util::Rng rng(5);
  ModifiedSample mod =
      apply_modification(original, donor, ModificationConfig{}, rng);
  for (int i = 0; i < 2000; ++i)
    mod.set_byte(mod.perturbable[rng.below(mod.perturbable.size())],
                 rng.byte());
  check_recovery_algebra(original, mod);
}

TEST(Invariants, RecoveryAlgebraSurvivesOptimization) {
  const ByteBuf original = corpus::make_malware(113).bytes();
  const ByteBuf donor = corpus::make_benign(224).bytes();
  util::Rng rng(7);
  ModifiedSample mod =
      apply_modification(original, donor, ModificationConfig{}, rng);

  const corpus::Dataset data = corpus::generate_dataset(950, 16, 16);
  ml::ByteConvConfig cfg;
  cfg.max_len = 8192;
  cfg.embed_dim = 4;
  cfg.filters = 6;
  cfg.width = 16;
  cfg.stride = 8;
  cfg.hidden = 6;
  detect::ByteConvDetector det("t", cfg, 3);
  detect::NetTrainConfig tc;
  tc.epochs = 2;
  detect::train_net(det, data, tc);

  EnsembleOptimizer opt({&det.net()});
  for (int i = 0; i < 3; ++i) opt.step(mod);
  check_recovery_algebra(original, mod);
}

TEST(Invariants, StubKeyReferencesPointIntoKeyBlock) {
  // Decode the recovery stub and verify every movi whose immediate lands in
  // the new section points at the key block or a region VA.
  const corpus::CompiledSample s = corpus::make_malware(114);
  const ByteBuf original = s.bytes();
  const ByteBuf donor = corpus::make_benign(225).bytes();
  util::Rng rng(9);
  ModificationConfig cfg;
  cfg.stub.shuffle = false;  // contiguous stub decodes linearly
  const ModifiedSample mod =
      apply_modification(original, donor, cfg, rng);

  const pe::PeFile modified = pe::PeFile::parse(mod.bytes);
  const pe::Section& stub_sec = modified.sections.back();
  const std::uint32_t entry_off = modified.entry_point - stub_sec.vaddr;
  util::ByteReader r({stub_sec.data.data() + entry_off,
                      stub_sec.data.size() - entry_off});
  const std::uint32_t sec_lo = modified.image_base + stub_sec.vaddr;
  const std::uint32_t sec_hi =
      sec_lo + static_cast<std::uint32_t>(stub_sec.data.size());
  int key_refs = 0;
  try {
    for (int i = 0; i < 400 && !r.eof(); ++i) {
      const isa::Instr in = isa::decode(r);
      if (in.op == isa::Op::Movi && in.imm >= sec_lo && in.imm < sec_hi)
        ++key_refs;
    }
  } catch (const util::ParseError&) {
  }
  // One key-cursor movi per encoded region (code + data sections).
  EXPECT_GE(key_refs, 2);
}

TEST(Invariants, PerturbableNeverOverlapsKeysOrHeadersStructure) {
  const ByteBuf original = corpus::make_malware(115).bytes();
  const ByteBuf donor = corpus::make_benign(226).bytes();
  util::Rng rng(11);
  const ModifiedSample mod =
      apply_modification(original, donor, ModificationConfig{}, rng);
  // No perturbable position may be a key byte of another position: keys are
  // dependent variables, not free ones.
  std::unordered_set<std::uint32_t> keys;
  for (const auto& [pos, key] : mod.key_of) keys.insert(key);
  for (std::uint32_t p : mod.perturbable)
    EXPECT_FALSE(keys.contains(p)) << p;
  // The PE signature and section table structure must stay parseable after
  // arbitrary writes to perturbable positions.
  ModifiedSample hammered = mod;
  for (std::uint32_t p : hammered.perturbable) hammered.set_byte(p, 0xFF);
  EXPECT_NO_THROW(pe::PeFile::parse(hammered.bytes));
}

TEST(Invariants, AprScalesWithFillerRatio) {
  const ByteBuf original = corpus::make_malware(116).bytes();
  const ByteBuf donor = corpus::make_benign(227).bytes();
  util::Rng rng1(13), rng2(13);
  ModificationConfig small;
  small.filler_ratio = 0.1;
  small.push_keys_beyond = 0;
  ModificationConfig large;
  large.filler_ratio = 1.0;
  large.push_keys_beyond = 0;
  const ModifiedSample a = apply_modification(original, donor, small, rng1);
  const ModifiedSample b = apply_modification(original, donor, large, rng2);
  EXPECT_LT(a.apr, b.apr);
}

TEST(Invariants, PushKeysBeyondMovesKeyBlockPastWindow) {
  const ByteBuf original = corpus::make_malware(117).bytes();
  const ByteBuf donor = corpus::make_benign(228).bytes();
  util::Rng rng(17);
  ModificationConfig cfg;
  cfg.push_keys_beyond = 16384;
  const ModifiedSample mod =
      apply_modification(original, donor, cfg, rng);
  // Every key byte must sit at file offset >= 16384.
  for (const auto& [pos, key] : mod.key_of) EXPECT_GE(key, 16384u);
}

}  // namespace
}  // namespace mpass::core
