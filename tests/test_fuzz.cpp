// Correctness-tooling tests: the corpus-driven regression runner over
// tests/fuzz_corpus/ (committed minimized crashers), targeted regressions
// for each bug the structure-aware fuzzer flushed out, a bounded
// deterministic fuzz sweep through the differential round-trip oracle
// (src/fuzz/), and the legacy robustness sweeps.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>

#include "corpus/generator.hpp"
#include "detectors/features.hpp"
#include "fuzz/fuzzer.hpp"
#include "fuzz/mutator.hpp"
#include "fuzz/oracle.hpp"
#include "isa/isa.hpp"
#include "pe/import.hpp"
#include "pe/pe.hpp"
#include "util/compress.hpp"
#include "util/rng.hpp"
#include "util/serialize.hpp"
#include "vm/sandbox.hpp"

#ifndef MPASS_FUZZ_CORPUS_DIR
#define MPASS_FUZZ_CORPUS_DIR "tests/fuzz_corpus"
#endif

namespace mpass {
namespace {

using util::ByteBuf;

// ---- corpus-driven regression runner ---------------------------------------
// Every committed input in tests/fuzz_corpus/ once violated an invariant
// (see docs/FUZZING.md for the catalogue); all must now pass the full
// differential oracle. Reproduce one by hand with:
//   mpass_fuzz repro tests/fuzz_corpus/<file>

std::vector<std::filesystem::path> corpus_files(const char* extension) {
  std::vector<std::filesystem::path> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(MPASS_FUZZ_CORPUS_DIR))
    if (entry.is_regular_file() && entry.path().extension() == extension)
      files.push_back(entry.path());
  std::sort(files.begin(), files.end());
  return files;
}

TEST(FuzzCorpus, CommittedPeInputsSatisfyAllInvariants) {
  const auto files = corpus_files(".bin");
  ASSERT_FALSE(files.empty()) << "no .bin inputs in " << MPASS_FUZZ_CORPUS_DIR;
  for (const auto& path : files) {
    SCOPED_TRACE(path.string());
    const auto data = util::load_file(path);
    ASSERT_TRUE(data.has_value());
    for (const fuzz::Violation& v : fuzz::check_pe_invariants(*data))
      ADD_FAILURE() << fuzz::kind_name(v.kind) << ": " << v.message;
  }
}

TEST(FuzzCorpus, CommittedStubKnobsSatisfyTheOptionsContract) {
  const auto files = corpus_files(".knobs");
  ASSERT_FALSE(files.empty()) << "no .knobs inputs in "
                              << MPASS_FUZZ_CORPUS_DIR;
  for (const auto& path : files) {
    SCOPED_TRACE(path.string());
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good());
    const std::string text((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
    const core::StubOptions opts = fuzz::parse_stub_knobs(text);
    const auto v = fuzz::check_stub_options(opts);
    EXPECT_FALSE(v.has_value())
        << fuzz::kind_name(v->kind) << ": " << v->message;
  }
}

// ---- targeted regressions for the bugs the fuzzer flushed out --------------

TEST(FuzzRegression, LfanewPlusFourMustNotWrapUint32) {
  // fuzz_corpus/lfanew_wrap.bin: e_lfanew = 0xFFFFFFFD made lfanew + 4 wrap
  // to 1, passing the bound and reading the PE signature out of bounds.
  ByteBuf bytes(64, 0);
  util::write_le<std::uint16_t>(bytes.data(), 0x5A4D);
  for (const std::uint32_t lfanew :
       {0xFFFFFFFDu, 0xFFFFFFFCu, 0xFFFFFFFFu,
        static_cast<std::uint32_t>(bytes.size() - 3)}) {
    util::write_le<std::uint32_t>(bytes.data() + 0x3C, lfanew);
    EXPECT_FALSE(pe::PeFile::looks_like_pe(bytes)) << lfanew;
    EXPECT_THROW(pe::PeFile::parse(bytes), util::ParseError) << lfanew;
  }
}

TEST(FuzzRegression, SectionRawBoundsMustNotWrapUint32) {
  // fuzz_corpus/section_bounds_wrap.bin: raw_ptr + raw_size wrapped uint32
  // (0xFFFFFF00 + 0x200 = 0x100), passing the bound and reading 0x200 bytes
  // out of bounds.
  pe::PeFile f;
  f.add_section(".text", ByteBuf(64, 0x90),
                pe::kScnCode | pe::kScnMemRead | pe::kScnMemExecute);
  ByteBuf bytes = f.build();
  const std::uint32_t lfanew = util::read_le<std::uint32_t>(bytes.data() + 0x3C);
  const std::size_t sec = lfanew + 4 + 20 + 224;
  util::write_le<std::uint32_t>(bytes.data() + sec + 16, 0x200u);      // raw_size
  util::write_le<std::uint32_t>(bytes.data() + sec + 20, 0xFFFFFF00u); // raw_ptr
  EXPECT_THROW(pe::PeFile::parse(bytes), util::ParseError);
}

TEST(FuzzRegression, ChecksumVerifiesFromRawBytes) {
  // compute_checksum documents "checksum field treated as zero" but summed
  // it as-is, so a freshly checksummed file never verified against itself.
  util::Rng rng(11);
  pe::PeFile f;
  f.add_section(".text", rng.bytes(300),
                pe::kScnCode | pe::kScnMemRead | pe::kScnMemExecute);
  f.update_checksum();
  ASSERT_NE(f.checksum, 0u);
  const ByteBuf bytes = f.build();
  EXPECT_EQ(pe::PeFile::compute_checksum(bytes), f.checksum);
  EXPECT_EQ(pe::PeFile::parse(bytes).checksum, f.checksum);
  // Still content-sensitive after the field is folded out.
  pe::PeFile g = f;
  g.sections[0].data[0] ^= 0xFF;
  g.update_checksum();
  EXPECT_NE(g.checksum, f.checksum);
}

TEST(FuzzRegression, StubOptionsAreValidatedUpFront) {
  // fuzz_corpus/stub_gap_underflow.knobs: max_gap < min_gap underflowed the
  // gap bound to ~2^64 and emitted a multi-GB section;
  // fuzz_corpus/stub_zero_chunk.knobs: chunk_items == 0 is an invalid
  // below() bound.
  const core::RegionPlan region{0x401000, 8, 3};
  const ByteBuf key(8, 1);
  const ByteBuf filler(32, 0x90);

  core::StubOptions bad_gap;
  bad_gap.min_gap = 16;
  bad_gap.max_gap = 4;
  util::Rng rng(3);
  EXPECT_THROW(core::build_recovery_section({&region, 1}, {&key, 1}, 0x405000,
                                            0x401000, filler, bad_gap, rng),
               std::invalid_argument);

  core::StubOptions bad_chunk;
  bad_chunk.chunk_items = 0;
  EXPECT_THROW(core::build_recovery_section({&region, 1}, {&key, 1}, 0x405000,
                                            0x401000, filler, bad_chunk, rng),
               std::invalid_argument);

  core::StubOptions ok;  // defaults are valid
  EXPECT_NO_THROW(core::build_recovery_section({&region, 1}, {&key, 1},
                                               0x405000, 0x401000, filler, ok,
                                               rng));
}

TEST(FuzzRegression, OverlayDoesNotAbsorbAlignmentPaddingAfterLastSection) {
  // fuzz_corpus/overlay_unaligned.bin: with SizeOfRawData patched below the
  // alignment padding, the padding between section data and overlay leaked
  // into overlay on reparse.
  pe::PeFile f;
  f.add_section(".data", ByteBuf(100, 0xAB),
                pe::kScnInitializedData | pe::kScnMemRead);
  f.overlay = util::to_bytes("overlay-tail");
  ByteBuf bytes = f.build();
  const std::uint32_t lfanew = util::read_le<std::uint32_t>(bytes.data() + 0x3C);
  util::write_le<std::uint32_t>(bytes.data() + lfanew + 4 + 20 + 224 + 16,
                                100u);
  const pe::PeFile g = pe::PeFile::parse(bytes);
  EXPECT_EQ(g.overlay, util::to_bytes("overlay-tail"));
  ASSERT_EQ(g.sections.size(), 1u);
  EXPECT_EQ(g.sections[0].data.size(), 100u);
}

TEST(FuzzRegression, OverlayDoesNotAbsorbHeaderPadding) {
  // fuzz_corpus/overlay_hdrpad.bin: with no raw section data, raw_end used
  // to stop at the unaligned section-table end, so the builder's header
  // padding was absorbed into overlay and the file grew on every round trip.
  pe::PeFile f;
  pe::Section bss;
  bss.name = ".bss";
  bss.vaddr = f.next_free_rva();
  bss.vsize = 0x400;
  bss.characteristics =
      pe::kScnUninitializedData | pe::kScnMemRead | pe::kScnMemWrite;
  f.sections.push_back(std::move(bss));
  f.overlay = util::to_bytes("OVERLAY!");

  const ByteBuf b1 = f.build();
  const pe::PeFile g = pe::PeFile::parse(b1);
  EXPECT_EQ(g.overlay, f.overlay);
  const ByteBuf b2 = g.build();
  EXPECT_EQ(b1, b2);

  // Section-less variant.
  pe::PeFile h;
  h.overlay = util::to_bytes("tail");
  const ByteBuf c1 = h.build();
  const pe::PeFile i = pe::PeFile::parse(c1);
  EXPECT_EQ(i.overlay, h.overlay);
  EXPECT_EQ(i.build(), c1);
}

TEST(FuzzRegression, RoundTripIsAFixpointWithNonEmptyOverlays) {
  util::Rng rng(12);
  for (int n = 0; n < 4; ++n) {
    pe::PeFile f;
    for (int s = 0; s <= n; ++s)
      f.add_section("s" + std::to_string(s), rng.bytes(1 + rng.below(1500)),
                    pe::kScnInitializedData | pe::kScnMemRead);
    f.overlay = rng.bytes(1 + rng.below(2048));
    const ByteBuf b1 = f.build();
    const pe::PeFile g = pe::PeFile::parse(b1);
    EXPECT_EQ(g.overlay, f.overlay) << n;
    EXPECT_EQ(g.build(), b1) << n;
  }
}

TEST(FuzzRegression, SizeOfImageStableWhenFileAlignExceedsSectionAlign) {
  // fuzz_corpus/filealign_gt_sectalign.bin: with FileAlignment patched above
  // SectionAlignment, a reparse reads the padded raw data back into the
  // model, and SizeOfImage (sized from the unpadded bytes) grew on the second
  // round trip -- build(parse(build(parse(x)))) was not a fixpoint.
  pe::PeFile f;
  f.add_section(".data", ByteBuf(512, 0xAB),
                pe::kScnInitializedData | pe::kScnMemRead);
  ByteBuf bytes = f.build();
  const std::uint32_t lfanew = util::read_le<std::uint32_t>(bytes.data() + 0x3C);
  util::write_le<std::uint32_t>(bytes.data() + lfanew + 4 + 20 + 36,
                                0x8000u);  // FileAlignment
  const ByteBuf b1 = pe::PeFile::parse(bytes).build();
  const ByteBuf b2 = pe::PeFile::parse(b1).build();
  EXPECT_EQ(b1, b2);
}

TEST(FuzzRegression, SectionByRvaMustNotWrapUint32) {
  // fuzz_corpus/vaddr_wrap.bin: a section at vaddr = 0xFFFFFFFF made
  // vaddr + span wrap uint32 to a tiny end bound, so section_by_rva missed
  // the section's own vaddr.
  pe::PeFile f;
  f.add_section(".data", ByteBuf(512, 0xAB),
                pe::kScnInitializedData | pe::kScnMemRead);
  f.sections[0].vaddr = 0xFFFFFFFFu;
  const auto hit = f.section_by_rva(0xFFFFFFFFu);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, 0u);
  EXPECT_FALSE(f.section_by_rva(0).has_value());
}

TEST(FuzzRegression, HostileImportCountMustNotAllocate) {
  // fuzz_corpus/imports_count_overflow.bin: decode_imports reserved the
  // 32-bit entry count before reading any payload, so count = 0xFFFFFFFF
  // threw bad_alloc straight through read_imports' ParseError handler.
  util::ByteWriter w;
  w.u32(0x31504D49u);  // 'IMP1'
  w.u32(0xFFFFFFFFu);
  pe::PeFile f;
  const std::size_t idx = f.add_section(
      ".idata", w.take(), pe::kScnInitializedData | pe::kScnMemRead);
  f.dirs[pe::kDirImport].rva = f.sections[idx].vaddr;
  f.dirs[pe::kDirImport].size = 8;
  EXPECT_TRUE(pe::read_imports(f).empty());  // tolerant, not bad_alloc
  EXPECT_THROW(pe::decode_imports(f.sections[idx].data), util::ParseError);
}

// ---- the structure-aware fuzzer itself -------------------------------------

TEST(Fuzzer, BoundedSweepFindsNoViolations) {
  fuzz::FuzzConfig cfg;
  cfg.seed = 42;
  cfg.iterations = 400;
  cfg.attack_every = 100;  // a few full attack+sandbox oracle runs
  const fuzz::FuzzStats stats = fuzz::Fuzzer(cfg).run();
  EXPECT_EQ(stats.iterations, 400u);
  for (const fuzz::Finding& f : stats.findings)
    ADD_FAILURE() << "iter " << f.iteration << " "
                  << fuzz::kind_name(f.violation.kind) << ": "
                  << f.violation.message;
  // The mutators must exercise both parser outcomes.
  EXPECT_GT(stats.parse_ok, 0u);
  EXPECT_GT(stats.parse_rejected, 0u);
  EXPECT_GT(stats.stub_checks, 0u);
  EXPECT_GT(stats.attack_checks, 0u);
}

TEST(Fuzzer, IterationsAreDeterministic) {
  fuzz::FuzzConfig cfg;
  cfg.seed = 7;
  const fuzz::Fuzzer a(cfg), b(cfg);
  for (const std::size_t iter : {0u, 1u, 17u, 113u}) {
    std::vector<std::string> ma, mb;
    EXPECT_EQ(a.input_for_iteration(iter, &ma),
              b.input_for_iteration(iter, &mb));
    EXPECT_EQ(ma, mb);
  }
  // Distinct iterations produce distinct inputs (no stuck RNG stream).
  EXPECT_NE(a.input_for_iteration(0), a.input_for_iteration(1));
}

TEST(Fuzzer, AttackOracleHoldsOnCorpusSample) {
  const ByteBuf malware = corpus::make_malware(31007).bytes();
  const ByteBuf donor = corpus::make_benign(31008).bytes();
  const core::ModificationConfig cfg;
  const auto v = fuzz::check_attack_preserves(malware, donor, cfg, 5);
  EXPECT_FALSE(v.has_value())
      << fuzz::kind_name(v->kind) << ": " << v->message;
}

TEST(Fuzzer, MinimizerShrinksAViolatingInput) {
  // Build a synthetic violation: an input the oracle rejects for an
  // unexpected exception cannot be fabricated without a bug, so instead
  // check the minimizer contract on a clean input (returns it unchanged).
  const ByteBuf clean = corpus::make_benign(31009).bytes();
  EXPECT_EQ(fuzz::Fuzzer::minimize_input(clean), clean);
}

TEST(Fuzzer, StubKnobsRoundTripThroughTheTextFormat) {
  core::StubOptions opts;
  opts.shuffle = false;
  opts.chunk_items = 3;
  opts.min_gap = 7;
  opts.max_gap = 21;
  opts.lead_filler = 99;
  const core::StubOptions back =
      fuzz::parse_stub_knobs(fuzz::format_stub_knobs(opts));
  EXPECT_EQ(back.shuffle, opts.shuffle);
  EXPECT_EQ(back.chunk_items, opts.chunk_items);
  EXPECT_EQ(back.min_gap, opts.min_gap);
  EXPECT_EQ(back.max_gap, opts.max_gap);
  EXPECT_EQ(back.lead_filler, opts.lead_filler);
  EXPECT_THROW(fuzz::parse_stub_knobs("nonsense"), util::ParseError);
}

// ---- legacy robustness sweeps (blind mutation) -----------------------------

class FuzzSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSweep, PeParserNeverCrashesOnMutatedFiles) {
  util::Rng rng(GetParam());
  ByteBuf bytes = corpus::make_malware(GetParam()).bytes();
  // Flip a burst of random bytes, occasionally truncate/extend.
  for (int round = 0; round < 20; ++round) {
    ByteBuf mutated = bytes;
    const int flips = static_cast<int>(rng.range(1, 64));
    for (int i = 0; i < flips; ++i)
      mutated[rng.below(mutated.size())] = rng.byte();
    if (rng.chance(0.2)) mutated.resize(rng.below(mutated.size()) + 1);
    if (rng.chance(0.2)) {
      const ByteBuf extra = rng.bytes(rng.below(2048));
      mutated.insert(mutated.end(), extra.begin(), extra.end());
    }
    try {
      const pe::PeFile f = pe::PeFile::parse(mutated);
      (void)f.build();            // rebuild must not crash either
      (void)pe::read_imports(f);  // tolerant import reading
    } catch (const util::ParseError&) {
      // rejection is fine; crashing is not
    }
  }
}

TEST_P(FuzzSweep, EmulatorNeverCrashesOnMutatedCode) {
  util::Rng rng(GetParam() ^ 0xF22);
  const corpus::CompiledSample s = corpus::make_malware(GetParam());
  ByteBuf bytes = s.bytes();
  const vm::Sandbox sandbox(/*fuel=*/200'000);
  for (int round = 0; round < 10; ++round) {
    ByteBuf mutated = bytes;
    for (int i = 0; i < 48; ++i)
      mutated[rng.below(mutated.size())] = rng.byte();
    // Must terminate (halt, fault, or fuel) without crashing the host.
    const vm::SandboxReport r = sandbox.analyze(mutated);
    (void)r;
  }
}

TEST_P(FuzzSweep, EmulatorSurvivesPureRandomCodeSections) {
  util::Rng rng(GetParam() ^ 0xC0DE);
  pe::PeFile f;
  f.add_section(".text", rng.bytes(2048),
                pe::kScnCode | pe::kScnMemRead | pe::kScnMemExecute);
  f.add_section(".data", rng.bytes(1024),
                pe::kScnInitializedData | pe::kScnMemRead | pe::kScnMemWrite);
  f.entry_point = f.sections[0].vaddr + static_cast<std::uint32_t>(
      rng.below(2048));
  const vm::Sandbox sandbox(/*fuel=*/100'000);
  const vm::SandboxReport r = sandbox.analyze(f.build());
  EXPECT_TRUE(r.parsed);
  // Random code usually faults quickly; it must never hang past the fuel.
  EXPECT_LE(r.run.steps, 100'000u);
}

TEST_P(FuzzSweep, FeatureExtractorTotalOnMutations) {
  util::Rng rng(GetParam() ^ 0xFEA7);
  ByteBuf bytes = corpus::make_benign(GetParam()).bytes();
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 32; ++i)
      bytes[rng.below(bytes.size())] = rng.byte();
    for (float v : detect::extract_features(bytes))
      ASSERT_TRUE(std::isfinite(v));
    for (float v : detect::extract_vendor_features(bytes))
      ASSERT_TRUE(std::isfinite(v));
  }
}

TEST_P(FuzzSweep, LzssDecompressorTotalOnGarbage) {
  util::Rng rng(GetParam() ^ 0x1255);
  for (int round = 0; round < 30; ++round) {
    ByteBuf garbage = rng.bytes(rng.below(512) + 16);
    // Valid magic with garbage body must not crash or over-allocate wildly.
    util::write_le<std::uint32_t>(garbage.data(), 0x315A4C4Du);
    util::write_le<std::uint32_t>(garbage.data() + 4,
                                  static_cast<std::uint32_t>(rng.below(1 << 16)));
    try {
      (void)util::lzss_decompress(garbage);
    } catch (const util::ParseError&) {
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSweep,
                         ::testing::Range<std::uint64_t>(4200, 4212));

TEST(Fuzz, DisassemblerTotalOnRandomBytes) {
  util::Rng rng(77);
  for (int round = 0; round < 50; ++round) {
    const ByteBuf code = rng.bytes(256);
    try {
      (void)isa::disassemble(code);
    } catch (const util::ParseError&) {
    }
    (void)isa::branches_well_formed(code);
  }
}

}  // namespace
}  // namespace mpass
