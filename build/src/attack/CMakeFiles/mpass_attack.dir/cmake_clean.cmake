file(REMOVE_RECURSE
  "CMakeFiles/mpass_attack.dir/actions.cpp.o"
  "CMakeFiles/mpass_attack.dir/actions.cpp.o.d"
  "CMakeFiles/mpass_attack.dir/attack_util.cpp.o"
  "CMakeFiles/mpass_attack.dir/attack_util.cpp.o.d"
  "CMakeFiles/mpass_attack.dir/gamma.cpp.o"
  "CMakeFiles/mpass_attack.dir/gamma.cpp.o.d"
  "CMakeFiles/mpass_attack.dir/mab.cpp.o"
  "CMakeFiles/mpass_attack.dir/mab.cpp.o.d"
  "CMakeFiles/mpass_attack.dir/malrnn.cpp.o"
  "CMakeFiles/mpass_attack.dir/malrnn.cpp.o.d"
  "CMakeFiles/mpass_attack.dir/mpass_attack.cpp.o"
  "CMakeFiles/mpass_attack.dir/mpass_attack.cpp.o.d"
  "CMakeFiles/mpass_attack.dir/obfuscate.cpp.o"
  "CMakeFiles/mpass_attack.dir/obfuscate.cpp.o.d"
  "CMakeFiles/mpass_attack.dir/rla.cpp.o"
  "CMakeFiles/mpass_attack.dir/rla.cpp.o.d"
  "libmpass_attack.a"
  "libmpass_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpass_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
