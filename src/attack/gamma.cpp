#include "attack/gamma.hpp"

#include "pe/pe.hpp"

namespace mpass::attack {

using util::ByteBuf;

Gamma::Gamma(GammaConfig cfg, std::span<const ByteBuf> benign_pool)
    : cfg_(cfg) {
  // Harvest a section library from the benign donors (the fixed "benign
  // content library" GAMMA ships with).
  util::Rng rng(0x6A44A);
  for (const ByteBuf& donor : benign_pool) {
    if (library_.size() >= cfg_.library_sections) break;
    pe::PeFile pe;
    try {
      pe = pe::PeFile::parse(donor);
    } catch (const util::ParseError&) {
      continue;
    }
    for (const pe::Section& s : pe.sections) {
      if (library_.size() >= cfg_.library_sections) break;
      if (s.data.size() < 256 || s.executable()) continue;
      library_.push_back({s.name, s.data});
    }
    if (pad_source_.size() < 65536)
      pad_source_.insert(pad_source_.end(), donor.begin(), donor.end());
  }
  if (pad_source_.empty()) pad_source_.assign(4096, 0);
}

ByteBuf Gamma::express(const pe::PeFile& base, const Genome& g) const {
  pe::PeFile pe = base;  // copy: add_section/overlay mutate the layout
  for (std::size_t i = 0; i < library_.size() && i < g.use.size(); ++i) {
    if (!g.use[i] || pe.sections.size() >= 28) continue;
    pe.add_section(library_[i].name, library_[i].data,
                   pe::kScnInitializedData | pe::kScnMemRead);
  }
  for (std::uint32_t i = 0; i < g.overlay_pad; ++i)
    pe.overlay.push_back(pad_source_[i % pad_source_.size()]);
  return pe.build();
}

AttackResult Gamma::run(std::span<const std::uint8_t> malware,
                        detect::HardLabelOracle& oracle, std::uint64_t seed) {
  util::Rng rng(seed);
  AttackResult result;
  result.adversarial.assign(malware.begin(), malware.end());

  // Parse the base malware once; every genome expression copies the parsed
  // structure instead of re-parsing the same bytes per query.
  pe::PeFile base;
  try {
    base = pe::PeFile::parse(malware);
  } catch (const util::ParseError&) {
    // Unparseable input: no genome could ever be expressed, so spend no
    // queries (the old per-express parse failed identically every time).
    result.apr = apr_of(malware.size(), result.adversarial.size());
    return result;
  }

  auto random_genome = [&] {
    Genome g;
    g.use.resize(library_.size());
    for (std::size_t i = 0; i < library_.size(); ++i)
      g.use[i] = rng.chance(0.5);
    g.overlay_pad = static_cast<std::uint32_t>(rng.range(0, 16384));
    return g;
  };

  struct Scored {
    Genome g;
    bool evaded = false;
    std::size_t size = 0;
  };
  auto evaluate = [&](const Genome& g) -> Scored {
    ByteBuf sample;
    try {
      sample = express(base, g);
    } catch (const util::ParseError&) {
      return {g, false, static_cast<std::size_t>(-1)};
    }
    const bool detected = oracle.query(sample);
    if (!detected && (!result.success ||
                      sample.size() < result.adversarial.size())) {
      result.success = true;
      result.adversarial = sample;
    }
    return {g, !detected, sample.size()};
  };
  // Fitness: evasion dominates; smaller payload breaks ties.
  auto better = [](const Scored& a, const Scored& b) {
    if (a.evaded != b.evaded) return a.evaded;
    return a.size < b.size;
  };

  std::vector<Scored> population;
  for (std::size_t i = 0; i < cfg_.population && !oracle.exhausted(); ++i)
    population.push_back(evaluate(random_genome()));

  while (!oracle.exhausted() && !population.empty()) {
    if (result.success) break;  // hard-label: first evasion wins
    // Tournament parents.
    auto pick_parent = [&]() -> const Genome& {
      const Scored& a = population[rng.below(population.size())];
      const Scored& b = population[rng.below(population.size())];
      return better(a, b) ? a.g : b.g;
    };
    const Genome& pa = pick_parent();
    const Genome& pb = pick_parent();
    Genome child;
    child.use.resize(library_.size());
    for (std::size_t i = 0; i < library_.size(); ++i) {
      child.use[i] = (rng.chance(0.5) ? pa.use[i] : pb.use[i]);
      if (rng.chance(cfg_.mutation_rate)) child.use[i] = !child.use[i];
    }
    child.overlay_pad = rng.chance(0.5) ? pa.overlay_pad : pb.overlay_pad;
    if (rng.chance(cfg_.mutation_rate))
      child.overlay_pad = static_cast<std::uint32_t>(rng.range(0, 16384));

    Scored scored = evaluate(child);
    // Replace the worst individual.
    std::size_t worst = 0;
    for (std::size_t i = 1; i < population.size(); ++i)
      if (better(population[worst], population[i])) worst = i;
    if (better(scored, population[worst])) population[worst] = std::move(scored);
  }

  result.apr = apr_of(malware.size(), result.adversarial.size());
  return result;
}

}  // namespace mpass::attack
