# Empty compiler generated dependencies file for bench_table6_random_data.
# This may be replaced when dependencies are built.
