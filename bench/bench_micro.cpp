// Component micro-benchmarks (google-benchmark): PE parse/build, feature
// extraction, detector inference, emulator throughput, LZSS, Shapley.
#include <benchmark/benchmark.h>

#include "corpus/generator.hpp"
#include "detectors/features.hpp"
#include "detectors/models.hpp"
#include "explain/shapley.hpp"
#include "pack/packer.hpp"
#include "pe/pe.hpp"
#include "util/compress.hpp"
#include "vm/sandbox.hpp"

namespace {

using namespace mpass;

const util::ByteBuf& sample_malware() {
  static const util::ByteBuf bytes = corpus::make_malware(0xBE9C).bytes();
  return bytes;
}

void BM_PeParse(benchmark::State& state) {
  const auto& bytes = sample_malware();
  for (auto _ : state)
    benchmark::DoNotOptimize(pe::PeFile::parse(bytes));
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * bytes.size()));
}
BENCHMARK(BM_PeParse);

void BM_PeBuild(benchmark::State& state) {
  const pe::PeFile file = pe::PeFile::parse(sample_malware());
  for (auto _ : state) benchmark::DoNotOptimize(file.build());
}
BENCHMARK(BM_PeBuild);

void BM_FeatureExtract(benchmark::State& state) {
  const auto& bytes = sample_malware();
  for (auto _ : state)
    benchmark::DoNotOptimize(detect::extract_features(bytes));
}
BENCHMARK(BM_FeatureExtract);

void BM_MalConvForward(benchmark::State& state) {
  detect::ByteConvDetector det("bench", detect::malconv_config(), 11);
  const auto& bytes = sample_malware();
  for (auto _ : state) benchmark::DoNotOptimize(det.score(bytes));
}
BENCHMARK(BM_MalConvForward);

void BM_VmExecute(benchmark::State& state) {
  const auto& bytes = sample_malware();
  std::uint64_t steps = 0;
  for (auto _ : state) {
    vm::Machine machine(bytes);
    const vm::RunResult r = machine.run();
    steps += r.steps;
    benchmark::DoNotOptimize(r.halted);
  }
  state.counters["steps/s"] = benchmark::Counter(
      static_cast<double>(steps), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_VmExecute);

void BM_LzssRoundtrip(benchmark::State& state) {
  const auto& bytes = sample_malware();
  for (auto _ : state) {
    auto packed = util::lzss_compress(bytes);
    benchmark::DoNotOptimize(util::lzss_decompress(packed));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * bytes.size()));
}
BENCHMARK(BM_LzssRoundtrip);

void BM_PackUpx(benchmark::State& state) {
  const auto& bytes = sample_malware();
  for (auto _ : state)
    benchmark::DoNotOptimize(pack::pack(pack::PackerKind::UpxLike, bytes));
}
BENCHMARK(BM_PackUpx);

void BM_ShapleyExact(benchmark::State& state) {
  const pe::PeFile file = pe::PeFile::parse(sample_malware());
  // Cheap surrogate scorer: file-size parity of nonzero content -- isolates
  // the Shapley enumeration cost from model inference cost.
  auto scorer = [](std::span<const std::uint8_t> b) {
    std::size_t nz = 0;
    for (std::uint8_t x : b) nz += (x != 0);
    return static_cast<double>(nz % 997) / 997.0;
  };
  for (auto _ : state)
    benchmark::DoNotOptimize(explain::shapley_values(file, scorer));
}
BENCHMARK(BM_ShapleyExact);

}  // namespace

BENCHMARK_MAIN();
