#include "explain/shapley.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace mpass::explain {

using util::ByteBuf;

std::vector<std::string> section_players(const pe::PeFile& file) {
  std::vector<std::string> players;
  players.reserve(file.sections.size() + 1);
  for (const pe::Section& s : file.sections) players.push_back(s.name);
  if (!file.overlay.empty()) players.emplace_back(kOverlayPlayer);
  return players;
}

ByteBuf ablate_to_subset(const pe::PeFile& file, const std::vector<bool>& keep) {
  pe::PeFile variant = file;
  const bool has_overlay = !file.overlay.empty();
  const std::size_t n_sections = file.sections.size();
  for (std::size_t i = 0; i < n_sections; ++i) {
    if (i < keep.size() && keep[i]) continue;
    // Zero-fill the body: layout, names and sizes stay identical, so only
    // the *content* contribution of the section is removed.
    std::fill(variant.sections[i].data.begin(), variant.sections[i].data.end(),
              0);
  }
  if (has_overlay) {
    const std::size_t oi = n_sections;
    if (!(oi < keep.size() && keep[oi]))
      std::fill(variant.overlay.begin(), variant.overlay.end(), 0);
  }
  return variant.build();
}

namespace {

/// Exact Shapley by subset enumeration with cached coalition values.
std::vector<double> shapley_exact(const pe::PeFile& file, const ScoreFn& f,
                                  std::size_t n) {
  // v[mask] = f(sample with players in mask)
  const std::size_t n_masks = std::size_t{1} << n;
  std::vector<double> v(n_masks);
  std::vector<bool> keep(n);
  for (std::size_t mask = 0; mask < n_masks; ++mask) {
    for (std::size_t i = 0; i < n; ++i) keep[i] = (mask >> i) & 1;
    v[mask] = f(ablate_to_subset(file, keep));
  }

  // Precompute |S|!(n-|S|-1)!/n! by coalition size.
  std::vector<double> weight(n);
  double n_fact = 1.0;
  for (std::size_t i = 2; i <= n; ++i) n_fact *= static_cast<double>(i);
  for (std::size_t s = 0; s < n; ++s) {
    double s_fact = 1.0, r_fact = 1.0;
    for (std::size_t i = 2; i <= s; ++i) s_fact *= static_cast<double>(i);
    for (std::size_t i = 2; i <= n - s - 1; ++i)
      r_fact *= static_cast<double>(i);
    weight[s] = s_fact * r_fact / n_fact;
  }

  std::vector<double> phi(n, 0.0);
  for (std::size_t mask = 0; mask < n_masks; ++mask) {
    const std::size_t size = static_cast<std::size_t>(std::popcount(mask));
    for (std::size_t i = 0; i < n; ++i) {
      if (mask & (std::size_t{1} << i)) continue;
      phi[i] += weight[size] * (v[mask | (std::size_t{1} << i)] - v[mask]);
    }
  }
  return phi;
}

/// Monte-Carlo permutation sampling (Castro et al. estimator).
std::vector<double> shapley_sampled(const pe::PeFile& file, const ScoreFn& f,
                                    std::size_t n,
                                    const ShapleyOptions& opts) {
  util::Rng rng(opts.seed);
  std::vector<double> phi(n, 0.0);
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::vector<bool> keep(n);

  for (std::size_t p = 0; p < opts.permutations; ++p) {
    rng.shuffle(order);
    std::fill(keep.begin(), keep.end(), false);
    double prev = f(ablate_to_subset(file, keep));
    for (std::size_t i : order) {
      keep[i] = true;
      const double cur = f(ablate_to_subset(file, keep));
      phi[i] += cur - prev;
      prev = cur;
    }
  }
  const double inv = 1.0 / static_cast<double>(opts.permutations);
  for (double& x : phi) x *= inv;
  return phi;
}

}  // namespace

std::vector<double> shapley_values(const pe::PeFile& file, const ScoreFn& f,
                                   const ShapleyOptions& opts) {
  const std::size_t n = section_players(file).size();
  if (n == 0) return {};
  if (n <= opts.exact_max_players) return shapley_exact(file, f, n);
  return shapley_sampled(file, f, n, opts);
}

}  // namespace mpass::explain
