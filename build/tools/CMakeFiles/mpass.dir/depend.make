# Empty dependencies file for mpass.
# This may be replaced when dependencies are built.
