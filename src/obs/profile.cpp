#include "obs/profile.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

namespace mpass::obs {

namespace {

double num_or(const Json* j, double fallback) {
  return j && j->is_number() ? j->number() : fallback;
}

std::optional<std::vector<SpanProfileRow>> rows_from_array(const Json& arr) {
  if (!arr.is_array()) return std::nullopt;
  std::vector<SpanProfileRow> rows;
  rows.reserve(arr.items().size());
  for (const Json& item : arr.items()) {
    const Json* path = item.get("path");
    if (!path || !path->is_string()) return std::nullopt;
    SpanProfileRow r;
    r.path = path->str();
    r.count = static_cast<std::uint64_t>(num_or(item.get("count"), 0.0));
    r.total_ms = num_or(item.get("total_ms"), 0.0);
    r.self_ms = num_or(item.get("self_ms"), 0.0);
    rows.push_back(std::move(r));
  }
  return rows;
}

std::string_view basename_of(std::string_view path) {
  const std::size_t slash = path.rfind('/');
  return slash == std::string_view::npos ? path : path.substr(slash + 1);
}

std::string_view parent_of(std::string_view path) {
  const std::size_t slash = path.rfind('/');
  return slash == std::string_view::npos ? std::string_view{}
                                         : path.substr(0, slash);
}

std::size_t depth_of(std::string_view path) {
  return static_cast<std::size_t>(
             std::count(path.begin(), path.end(), '/')) +
         1;
}

// ---- compare helpers --------------------------------------------------------

// One comparable series: a bench's wall-ms or a span path's self-ms.
struct Series {
  std::string kind;
  std::string name;
  double ms = 0.0;
};

void collect_bench_series(std::string_view bench, const Json& doc,
                          std::vector<Series>& out) {
  if (const Json* wall = doc.get("wall_ms"); wall && wall->is_number())
    out.push_back({"bench-wall", std::string(bench), wall->number()});
  if (const auto rows = parse_spans(doc)) {
    for (const SpanProfileRow& r : *rows)
      out.push_back(
          {"span-self", std::string(bench) + ":" + r.path, r.self_ms});
  }
}

std::vector<Series> collect_series(const Json& doc) {
  std::vector<Series> out;
  if (const Json* benches = doc.get("benches"); benches &&
                                                benches->is_object()) {
    for (const auto& [name, bench] : benches->fields())
      collect_bench_series(name, bench, out);
    return out;
  }
  std::string bench = "profile";
  if (const Json* name = doc.get("bench"); name && name->is_string())
    bench = name->str();
  collect_bench_series(bench, doc, out);
  return out;
}

}  // namespace

std::optional<std::vector<SpanProfileRow>> parse_spans(const Json& doc) {
  if (doc.is_array()) return rows_from_array(doc);
  if (const Json* spans = doc.get("spans")) return rows_from_array(*spans);
  return std::nullopt;
}

std::string render_span_top(const std::vector<SpanProfileRow>& rows,
                            std::size_t n) {
  std::vector<SpanProfileRow> sorted = rows;
  std::sort(sorted.begin(), sorted.end(),
            [](const SpanProfileRow& a, const SpanProfileRow& b) {
              return a.self_ms > b.self_ms;
            });
  std::string out = "top spans by self time:\n";
  char buf[512];
  std::snprintf(buf, sizeof(buf), "  %12s %12s %10s  %s\n", "self-ms",
                "total-ms", "count", "path");
  out += buf;
  for (std::size_t i = 0; i < sorted.size() && i < n; ++i) {
    const SpanProfileRow& r = sorted[i];
    std::snprintf(buf, sizeof(buf), "  %12.3f %12.3f %10llu  %s\n",
                  std::max(r.self_ms, 0.0), r.total_ms,
                  static_cast<unsigned long long>(r.count), r.path.c_str());
    out += buf;
  }
  if (sorted.empty()) out += "  (no spans)\n";
  return out;
}

std::string render_span_tree(const std::vector<SpanProfileRow>& rows) {
  // DFS order: sort by path, then emit parents before children by walking
  // an explicit tree keyed on the parent path (string sorting alone would
  // interleave "a.x" between "a" and "a/b").
  std::map<std::string, std::vector<const SpanProfileRow*>> children;
  std::map<std::string, const SpanProfileRow*> by_path;
  for (const SpanProfileRow& r : rows) {
    children[std::string(parent_of(r.path))].push_back(&r);
    by_path[r.path] = &r;
  }
  for (auto& [parent, kids] : children)
    std::sort(kids.begin(), kids.end(),
              [](const SpanProfileRow* a, const SpanProfileRow* b) {
                return a->total_ms > b->total_ms;
              });

  std::string out = "call-path tree (total-ms, self-ms, % of parent):\n";
  char buf[512];
  // Iterative DFS from the roots ("" parent).
  std::vector<const SpanProfileRow*> stack;
  const auto roots = children.find("");
  if (roots != children.end())
    for (auto it = roots->second.rbegin(); it != roots->second.rend(); ++it)
      stack.push_back(*it);
  while (!stack.empty()) {
    const SpanProfileRow* r = stack.back();
    stack.pop_back();
    const std::size_t depth = depth_of(r->path);
    const auto parent_it = by_path.find(std::string(parent_of(r->path)));
    const double parent_total =
        parent_it == by_path.end() ? 0.0 : parent_it->second->total_ms;
    const double pct =
        parent_total > 0.0 ? 100.0 * r->total_ms / parent_total : 100.0;
    std::snprintf(buf, sizeof(buf), "  %*s%-*s %10.3f %10.3f %6.1f%%\n",
                  static_cast<int>(2 * (depth - 1)), "",
                  static_cast<int>(std::max<std::size_t>(
                      44 - 2 * (depth - 1), 8)),
                  std::string(basename_of(r->path)).c_str(), r->total_ms,
                  std::max(r->self_ms, 0.0), pct);
    out += buf;
    if (const auto kids = children.find(r->path); kids != children.end())
      for (auto it = kids->second.rbegin(); it != kids->second.rend(); ++it)
        stack.push_back(*it);
  }
  if (rows.empty()) out += "  (no spans)\n";
  return out;
}

std::string chrome_from_spans(const std::vector<SpanProfileRow>& rows) {
  std::map<std::string, std::vector<const SpanProfileRow*>> children;
  for (const SpanProfileRow& r : rows)
    children[std::string(parent_of(r.path))].push_back(&r);
  for (auto& [parent, kids] : children)
    std::sort(kids.begin(), kids.end(),
              [](const SpanProfileRow* a, const SpanProfileRow* b) {
                return a->total_ms > b->total_ms;
              });

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  out +=
      "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":1,\"args\":{\"name\":"
      "\"mpass aggregate profile\"}},"
      "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":1,"
      "\"args\":{\"name\":\"aggregate\"}}";

  // DFS laying children sequentially inside the parent interval.
  struct Pending {
    const SpanProfileRow* row;
    double start_us;
  };
  std::vector<Pending> stack;
  double cursor = 0.0;
  if (const auto roots = children.find(""); roots != children.end())
    for (const SpanProfileRow* r : roots->second) {
      stack.push_back({r, cursor});
      cursor += r->total_ms * 1000.0;
    }
  std::reverse(stack.begin(), stack.end());
  while (!stack.empty()) {
    const Pending p = stack.back();
    stack.pop_back();
    out += ",{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"cat\":\"span\",\"name\":\"";
    json_escape(out, basename_of(p.row->path));
    out += "\",\"ts\":";
    json_number(out, p.start_us);
    out += ",\"dur\":";
    json_number(out, p.row->total_ms * 1000.0);
    out += ",\"args\":{\"path\":\"";
    json_escape(out, p.row->path);
    out += "\",\"count\":";
    json_number(out, static_cast<double>(p.row->count));
    out += "}}";
    if (const auto kids = children.find(p.row->path);
        kids != children.end()) {
      double child_cursor = p.start_us;
      std::vector<Pending> batch;
      for (const SpanProfileRow* k : kids->second) {
        batch.push_back({k, child_cursor});
        child_cursor += k->total_ms * 1000.0;
      }
      for (auto it = batch.rbegin(); it != batch.rend(); ++it)
        stack.push_back(*it);
    }
  }
  out += "]}";
  return out;
}

// ---- baseline comparison ----------------------------------------------------

ProfCompareResult compare_profiles(const Json& base, const Json& cur,
                                   const ProfCompareOptions& opts) {
  ProfCompareResult res;
  // --only <bench> / --wall-only narrow the comparison (the CI micro gate
  // enforces bench_micro wall-ms while the full-grid benches stay warn-only).
  const auto selected = [&opts](const Series& s) {
    if (opts.wall_only && s.kind != "bench-wall") return false;
    if (opts.only_bench.empty()) return true;
    if (s.kind == "bench-wall") return s.name == opts.only_bench;
    return s.name.compare(0, opts.only_bench.size() + 1,
                          opts.only_bench + ":") == 0;
  };
  std::map<std::string, Series> base_by_name, cur_by_name;
  for (Series& s : collect_series(base))
    if (selected(s)) base_by_name.emplace(s.kind + "|" + s.name, std::move(s));
  for (Series& s : collect_series(cur))
    if (selected(s)) cur_by_name.emplace(s.kind + "|" + s.name, std::move(s));

  for (const auto& [key, b] : base_by_name) {
    const auto it = cur_by_name.find(key);
    if (it == cur_by_name.end()) {
      if (b.ms >= opts.min_ms)
        res.notes.push_back("series only in baseline: " + b.name);
      continue;
    }
    const Series& c = it->second;
    if (std::max(b.ms, c.ms) < opts.min_ms) continue;
    ++res.compared;
    const double ratio = b.ms > 0.0 ? c.ms / b.ms
                                    : (c.ms > 0.0 ? 1e9 : 1.0);
    ProfDelta d{b.kind, b.name, b.ms, c.ms, ratio};
    if (c.ms > b.ms * (1.0 + opts.threshold))
      res.regressions.push_back(std::move(d));
    else if (c.ms < b.ms * (1.0 - opts.threshold))
      res.improvements.push_back(std::move(d));
  }
  for (const auto& [key, c] : cur_by_name)
    if (!base_by_name.count(key) && c.ms >= opts.min_ms)
      res.notes.push_back("series only in current: " + c.name);

  const auto by_ratio = [](const ProfDelta& a, const ProfDelta& b) {
    return a.ratio > b.ratio;
  };
  std::sort(res.regressions.begin(), res.regressions.end(), by_ratio);
  std::sort(res.improvements.begin(), res.improvements.end(),
            [](const ProfDelta& a, const ProfDelta& b) {
              return a.ratio < b.ratio;
            });
  return res;
}

std::string render_compare(const ProfCompareResult& r,
                           const ProfCompareOptions& opts) {
  std::string out;
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "compared %zu series (threshold +%.0f%%, min %.1f ms)\n",
                r.compared, opts.threshold * 100.0, opts.min_ms);
  out += buf;
  for (const ProfDelta& d : r.regressions) {
    std::snprintf(buf, sizeof(buf),
                  "REGRESSION  %-10s %-56s %10.2f -> %10.2f ms  (x%.2f)\n",
                  d.kind.c_str(), d.name.c_str(), d.base_ms, d.cur_ms,
                  d.ratio);
    out += buf;
  }
  for (const ProfDelta& d : r.improvements) {
    std::snprintf(buf, sizeof(buf),
                  "improved    %-10s %-56s %10.2f -> %10.2f ms  (x%.2f)\n",
                  d.kind.c_str(), d.name.c_str(), d.base_ms, d.cur_ms,
                  d.ratio);
    out += buf;
  }
  for (const std::string& n : r.notes) out += "note: " + n + "\n";
  out += r.ok() ? "PASS\n" : "FAIL\n";
  return out;
}

// ---- bench-output collection ------------------------------------------------

std::optional<std::string> collect_bench_dir(
    const std::filesystem::path& dir,
    const std::vector<std::string>& expected, std::string* error) {
  const auto fail = [&](std::string msg) -> std::optional<std::string> {
    if (error) *error = std::move(msg);
    return std::nullopt;
  };
  std::error_code ec;
  if (!std::filesystem::is_directory(dir, ec))
    return fail("not a directory: " + dir.string());

  // name -> raw (validated) document text. Map gives a deterministic order.
  std::map<std::string, std::string> benches;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string fname = entry.path().filename().string();
    if (fname.rfind("BENCH_", 0) != 0 || entry.path().extension() != ".json")
      continue;
    if (fname == "BENCH_SUMMARY.json") continue;
    std::ifstream in(entry.path(), std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    const std::string text = ss.str();
    if (!in.good() && !in.eof())
      return fail("cannot read " + entry.path().string());
    const auto doc = Json::parse(text);
    if (!doc || !doc->is_object())
      return fail("unparsable bench output: " + entry.path().string());
    const Json* name = doc->get("bench");
    const Json* version = doc->get("schema_version");
    if (!name || !name->is_string() || !version || !version->is_number() ||
        !doc->get("wall_ms") || !parse_spans(*doc))
      return fail("bench output missing required fields "
                  "(schema_version/bench/wall_ms/spans): " +
                  entry.path().string());
    benches[name->str()] = text;
  }
  if (ec) return fail("cannot list " + dir.string());

  for (const std::string& name : expected)
    if (!benches.count(name))
      return fail("missing bench output: BENCH_" + name + ".json (" +
                  dir.string() + ")");
  if (benches.empty()) return fail("no BENCH_*.json in " + dir.string());

  std::string out = "{\"schema_version\":1,\"benches\":{";
  bool first = true;
  for (const auto& [name, text] : benches) {
    if (!first) out += ',';
    first = false;
    out += '"';
    json_escape(out, name);
    out += "\":";
    out += text;
  }
  out += "}}";
  return out;
}

}  // namespace mpass::obs
