// Span-profile inspector and perf-baseline gate (library: obs/profile.hpp).
//
//   mpass_prof top <file> [-n N]         self-time hotspot table
//   mpass_prof tree <file>               call-path tree with % of parent
//   mpass_prof export <file> <out.json>  synthetic aggregate flame as
//                                        Chrome trace-event JSON (Perfetto)
//   mpass_prof collect <dir> [--out F] [--expect a,b,c]
//                                        merge BENCH_*.json into a
//                                        schema-versioned BENCH_SUMMARY.json;
//                                        fails on missing or unparsable
//                                        bench output
//   mpass_prof compare <baseline> <current>
//             [--threshold 0.20] [--min-ms 10] [--warn-only]
//             [--only <bench>] [--wall-only]
//                                        compare wall-ms per bench and
//                                        self-ms per span path against a
//                                        baseline; exits nonzero when any
//                                        series regressed past the threshold.
//                                        --only restricts to one bench and
//                                        --wall-only skips the per-span
//                                        series (the enforcing CI micro gate
//                                        uses both; spans stay warn-only)
//
// <file> accepts a spans.json, a BENCH_<name>.json, or a BENCH_SUMMARY.json
// (compare only). Exit codes: 0 pass, 1 regression/collect failure, 2 usage
// or parse error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/profile.hpp"
#include "util/serialize.hpp"

namespace {

using mpass::obs::Json;

int usage() {
  std::fprintf(
      stderr,
      "usage: mpass_prof top <spans.json|BENCH_*.json> [-n N]\n"
      "       mpass_prof tree <spans.json|BENCH_*.json>\n"
      "       mpass_prof export <spans.json|BENCH_*.json> <out.json>\n"
      "       mpass_prof collect <bench-dir> [--out FILE] [--expect a,b,c]\n"
      "       mpass_prof compare <baseline> <current> [--threshold 0.20]\n"
      "                  [--min-ms 10] [--warn-only] [--only <bench>]\n"
      "                  [--wall-only]\n");
  return 2;
}

const char* opt(int argc, char** argv, const char* name,
                const char* fallback = nullptr) {
  for (int i = 2; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  return fallback;
}

bool flag(int argc, char** argv, const char* name) {
  for (int i = 2; i < argc; ++i)
    if (std::strcmp(argv[i], name) == 0) return true;
  return false;
}

std::optional<Json> load_json(const std::filesystem::path& path) {
  const auto blob = mpass::util::load_file(path);
  if (!blob) {
    std::fprintf(stderr, "mpass_prof: cannot read %s\n",
                 path.string().c_str());
    return std::nullopt;
  }
  auto doc = Json::parse(std::string_view(
      reinterpret_cast<const char*>(blob->data()), blob->size()));
  if (!doc)
    std::fprintf(stderr, "mpass_prof: %s: invalid JSON\n",
                 path.string().c_str());
  return doc;
}

std::optional<std::vector<mpass::obs::SpanProfileRow>> load_spans(
    const std::filesystem::path& path) {
  const auto doc = load_json(path);
  if (!doc) return std::nullopt;
  auto rows = mpass::obs::parse_spans(*doc);
  if (!rows)
    std::fprintf(stderr, "mpass_prof: %s: no \"spans\" array\n",
                 path.string().c_str());
  return rows;
}

int cmd_top(int argc, char** argv) {
  const auto rows = load_spans(argv[2]);
  if (!rows) return 2;
  std::size_t n = 20;
  if (const char* v = opt(argc, argv, "-n")) n = std::strtoull(v, nullptr, 10);
  std::fputs(mpass::obs::render_span_top(*rows, n).c_str(), stdout);
  return 0;
}

int cmd_tree(int, char** argv) {
  const auto rows = load_spans(argv[2]);
  if (!rows) return 2;
  std::fputs(mpass::obs::render_span_tree(*rows).c_str(), stdout);
  return 0;
}

int cmd_export(int argc, char** argv) {
  if (argc < 4) return usage();
  const auto rows = load_spans(argv[2]);
  if (!rows) return 2;
  const std::string json = mpass::obs::chrome_from_spans(*rows);
  std::ofstream out(argv[3], std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "mpass_prof: cannot write %s\n", argv[3]);
    return 2;
  }
  out.write(json.data(), static_cast<std::streamsize>(json.size()));
  std::printf("wrote %s (%zu span paths)\n", argv[3], rows->size());
  return 0;
}

int cmd_collect(int argc, char** argv) {
  const std::filesystem::path dir = argv[2];
  std::vector<std::string> expected;
  if (const char* e = opt(argc, argv, "--expect")) {
    std::string cur;
    for (const char* p = e;; ++p) {
      if (*p == ',' || *p == '\0') {
        if (!cur.empty()) expected.push_back(cur);
        cur.clear();
        if (*p == '\0') break;
      } else {
        cur += *p;
      }
    }
  }
  std::string error;
  const auto summary = mpass::obs::collect_bench_dir(dir, expected, &error);
  if (!summary) {
    std::fprintf(stderr, "mpass_prof: collect failed: %s\n", error.c_str());
    return 1;
  }
  const std::filesystem::path out_path =
      opt(argc, argv, "--out") ? std::filesystem::path(opt(argc, argv, "--out"))
                               : dir / "BENCH_SUMMARY.json";
  std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "mpass_prof: cannot write %s\n",
                 out_path.string().c_str());
    return 1;
  }
  out.write(summary->data(), static_cast<std::streamsize>(summary->size()));
  std::printf("wrote %s\n", out_path.string().c_str());
  return 0;
}

int cmd_compare(int argc, char** argv) {
  if (argc < 4) return usage();
  const auto base = load_json(argv[2]);
  const auto cur = load_json(argv[3]);
  if (!base || !cur) return 2;

  mpass::obs::ProfCompareOptions opts;
  if (const char* v = opt(argc, argv, "--threshold"))
    opts.threshold = std::strtod(v, nullptr);
  if (const char* v = opt(argc, argv, "--min-ms"))
    opts.min_ms = std::strtod(v, nullptr);
  if (const char* v = opt(argc, argv, "--only")) opts.only_bench = v;
  opts.wall_only = flag(argc, argv, "--wall-only");
  if (opts.threshold <= 0.0 || opts.min_ms < 0.0) {
    std::fprintf(stderr, "mpass_prof: bad --threshold/--min-ms\n");
    return 2;
  }

  const auto result = mpass::obs::compare_profiles(*base, *cur, opts);
  std::fputs(mpass::obs::render_compare(result, opts).c_str(), stdout);
  if (result.ok()) return 0;
  if (flag(argc, argv, "--warn-only")) {
    std::printf("(--warn-only: regressions reported, exit 0)\n");
    return 0;
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string_view cmd = argv[1];
  if (cmd == "top") return cmd_top(argc, argv);
  if (cmd == "tree") return cmd_tree(argc, argv);
  if (cmd == "export") return cmd_export(argc, argv);
  if (cmd == "collect") return cmd_collect(argc, argv);
  if (cmd == "compare") return cmd_compare(argc, argv);
  return usage();
}
