#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <mutex>
#include <stdexcept>

#include "obs/json.hpp"

namespace mpass::obs {

namespace {

// Hard cap on registered metrics. descs is reserve()d to this at startup so
// push_back never reallocates: readers holding a MetricId can index the
// vector without locking while registration appends concurrently.
constexpr std::size_t kMaxMetrics = 1024;

struct Shard {
  // Guards the slot-array pointer swap on growth; the owning thread writes
  // slots without it, snapshot/growth serialize through it.
  mutable std::mutex mu;
  std::unique_ptr<std::atomic<std::uint64_t>[]> slots;
  std::size_t capacity = 0;

  // Owner-thread only. Existing slot values survive growth.
  void ensure(std::size_t need) {
    if (need <= capacity) return;
    std::size_t cap = std::max<std::size_t>(64, capacity * 2);
    while (cap < need) cap *= 2;
    auto grown = std::make_unique<std::atomic<std::uint64_t>[]>(cap);
    for (std::size_t i = 0; i < capacity; ++i)
      grown[i].store(slots[i].load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    for (std::size_t i = capacity; i < cap; ++i)
      grown[i].store(0, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lk(mu);
    slots = std::move(grown);
    capacity = cap;
  }
};

struct MetricDesc {
  enum Kind { kCounter, kGauge, kHistogram };
  std::string name;
  Kind kind = kCounter;
  std::size_t slot = 0;     // first shard slot (counter/histogram)
  std::size_t n_slots = 0;  // counter: 1; histogram: buckets + count + sum
  std::vector<double> bounds;
  // Gauges are last-write-wins, not additive, so they live here (double
  // bits) rather than in the per-thread shards.
  std::unique_ptr<std::atomic<std::uint64_t>> gauge_bits;
};

double bits_to_double(std::uint64_t b) { return std::bit_cast<double>(b); }
std::uint64_t double_to_bits(double v) {
  return std::bit_cast<std::uint64_t>(v);
}

}  // namespace

struct Registry::Core {
  mutable std::mutex mu;  // registration, shard list, retired totals
  std::vector<MetricDesc> descs;
  std::map<std::string, MetricId, std::less<>> by_name;
  std::size_t slots_used = 0;
  std::vector<std::pair<std::string, std::function<double()>>> callbacks;
  std::vector<Shard*> shards;
  std::vector<std::uint64_t> retired;  // merged slots of exited threads

  Core() { descs.reserve(kMaxMetrics); }

  MetricId register_metric(std::string_view name, MetricDesc::Kind kind,
                           std::span<const double> bounds) {
    std::lock_guard<std::mutex> lk(mu);
    if (const auto it = by_name.find(name); it != by_name.end()) {
      const MetricDesc& d = descs[it->second];
      if (d.kind != kind ||
          (kind == MetricDesc::kHistogram &&
           !std::equal(d.bounds.begin(), d.bounds.end(), bounds.begin(),
                       bounds.end())))
        throw std::invalid_argument("obs: metric '" + std::string(name) +
                                    "' re-registered with a different type");
      return it->second;
    }
    if (descs.size() >= kMaxMetrics)
      throw std::length_error("obs: metric registry full");
    MetricDesc d;
    d.name = std::string(name);
    d.kind = kind;
    if (kind == MetricDesc::kGauge) {
      d.gauge_bits =
          std::make_unique<std::atomic<std::uint64_t>>(double_to_bits(0.0));
    } else {
      d.slot = slots_used;
      d.n_slots = kind == MetricDesc::kCounter
                      ? 1
                      : bounds.size() + 1 /*overflow bucket*/ + 2 /*count,sum*/;
      d.bounds.assign(bounds.begin(), bounds.end());
      slots_used += d.n_slots;
    }
    const auto id = static_cast<MetricId>(descs.size());
    descs.push_back(std::move(d));
    by_name.emplace(std::string(name), id);
    return id;
  }

  // Folds an exiting thread's shard into the retired totals.
  void retire(Shard* s) {
    std::lock_guard<std::mutex> lk(mu);
    const std::size_t n = std::min(s->capacity, slots_used);
    if (retired.size() < n) retired.resize(n, 0);
    // Sum slots add; histogram sum slots are double bits and need fp math.
    std::vector<bool> is_sum(n, false);
    for (const MetricDesc& d : descs)
      if (d.kind == MetricDesc::kHistogram && d.slot + d.n_slots <= n)
        is_sum[d.slot + d.n_slots - 1] = true;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t v = s->slots[i].load(std::memory_order_relaxed);
      if (is_sum[i])
        retired[i] = double_to_bits(bits_to_double(retired[i]) +
                                    bits_to_double(v));
      else
        retired[i] += v;
    }
    shards.erase(std::remove(shards.begin(), shards.end(), s), shards.end());
  }
};

namespace {

// Per-thread shard handle. Holds the core alive so threads that outlive the
// Registry singleton (static destruction order) still retire safely.
struct TlsRef {
  std::shared_ptr<Registry::Core> core;
  std::unique_ptr<Shard> shard;
  ~TlsRef() {
    if (core && shard) core->retire(shard.get());
  }
};
thread_local TlsRef tls_ref;

Shard& tls_shard(const std::shared_ptr<Registry::Core>& core) {
  TlsRef& t = tls_ref;
  if (!t.shard) {
    t.core = core;
    t.shard = std::make_unique<Shard>();
    std::lock_guard<std::mutex> lk(core->mu);
    core->shards.push_back(t.shard.get());
  }
  return *t.shard;
}

}  // namespace

Registry::Registry() : core_(std::make_shared<Core>()) {}

Registry& Registry::instance() {
  static Registry reg;
  return reg;
}

MetricId Registry::counter(std::string_view name) {
  return core_->register_metric(name, MetricDesc::kCounter, {});
}

MetricId Registry::gauge(std::string_view name) {
  return core_->register_metric(name, MetricDesc::kGauge, {});
}

MetricId Registry::histogram(std::string_view name,
                             std::span<const double> bounds) {
  return core_->register_metric(name, MetricDesc::kHistogram, bounds);
}

void Registry::gauge_callback(std::string_view name,
                              std::function<double()> fn) {
  std::lock_guard<std::mutex> lk(core_->mu);
  for (auto& [n, f] : core_->callbacks)
    if (n == name) {
      f = std::move(fn);
      return;
    }
  core_->callbacks.emplace_back(std::string(name), std::move(fn));
}

void Registry::inc(MetricId id, std::uint64_t delta) noexcept {
  const MetricDesc& d = core_->descs[id];
  Shard& s = tls_shard(core_);
  s.ensure(d.slot + 1);
  s.slots[d.slot].fetch_add(delta, std::memory_order_relaxed);
}

void Registry::set(MetricId id, double value) noexcept {
  core_->descs[id].gauge_bits->store(double_to_bits(value),
                                     std::memory_order_relaxed);
}

void Registry::observe(MetricId id, double value) noexcept {
  const MetricDesc& d = core_->descs[id];
  Shard& s = tls_shard(core_);
  s.ensure(d.slot + d.n_slots);
  // Bucket: first bound >= value; the last bucket catches everything else.
  const std::size_t n_buckets = d.bounds.size() + 1;
  std::size_t b = 0;
  while (b < d.bounds.size() && value > d.bounds[b]) ++b;
  s.slots[d.slot + b].fetch_add(1, std::memory_order_relaxed);
  s.slots[d.slot + n_buckets].fetch_add(1, std::memory_order_relaxed);
  // Sum slot: double bits, single writer (this thread), so plain RMW.
  std::atomic<std::uint64_t>& sum = s.slots[d.slot + n_buckets + 1];
  sum.store(double_to_bits(
                bits_to_double(sum.load(std::memory_order_relaxed)) + value),
            std::memory_order_relaxed);
}

Snapshot Registry::snapshot() const {
  Core& c = *core_;
  Snapshot out;
  // Holding the core mutex for the whole merge keeps the shard list stable:
  // exiting threads block in retire() rather than freeing a shard mid-read.
  std::lock_guard<std::mutex> lk(c.mu);

  std::vector<std::uint64_t> acc(c.slots_used, 0);
  std::vector<bool> is_sum(c.slots_used, false);
  for (const MetricDesc& d : c.descs)
    if (d.kind == MetricDesc::kHistogram)
      is_sum[d.slot + d.n_slots - 1] = true;
  auto fold = [&](std::size_t i, std::uint64_t v) {
    if (is_sum[i])
      acc[i] = double_to_bits(bits_to_double(acc[i]) + bits_to_double(v));
    else
      acc[i] += v;
  };
  for (std::size_t i = 0; i < std::min(c.retired.size(), c.slots_used); ++i)
    fold(i, c.retired[i]);
  for (const Shard* s : c.shards) {
    std::lock_guard<std::mutex> slk(s->mu);
    const std::size_t n = std::min(s->capacity, c.slots_used);
    for (std::size_t i = 0; i < n; ++i)
      fold(i, s->slots[i].load(std::memory_order_relaxed));
  }

  for (const MetricDesc& d : c.descs) {
    switch (d.kind) {
      case MetricDesc::kCounter:
        out.counters[d.name] = acc[d.slot];
        break;
      case MetricDesc::kGauge:
        out.gauges[d.name] =
            bits_to_double(d.gauge_bits->load(std::memory_order_relaxed));
        break;
      case MetricDesc::kHistogram: {
        Snapshot::Histogram h;
        h.bounds = d.bounds;
        const std::size_t n_buckets = d.bounds.size() + 1;
        h.buckets.assign(n_buckets, 0);
        for (std::size_t b = 0; b < n_buckets; ++b)
          h.buckets[b] = acc[d.slot + b];
        h.count = acc[d.slot + n_buckets];
        h.sum = bits_to_double(acc[d.slot + n_buckets + 1]);
        out.histograms[d.name] = std::move(h);
        break;
      }
    }
  }
  for (const auto& [name, fn] : c.callbacks) out.gauges[name] = fn();
  return out;
}

// ---- Snapshot ---------------------------------------------------------------

std::string Snapshot::to_json() const {
  std::string s = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : counters) {
    if (!first) s += ',';
    first = false;
    s += '"';
    json_escape(s, name);
    s += "\":";
    json_number(s, static_cast<double>(v));
  }
  s += "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : gauges) {
    if (!first) s += ',';
    first = false;
    s += '"';
    json_escape(s, name);
    s += "\":";
    json_number(s, v);
  }
  s += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) s += ',';
    first = false;
    s += '"';
    json_escape(s, name);
    s += "\":{\"bounds\":[";
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      if (i) s += ',';
      json_number(s, h.bounds[i]);
    }
    s += "],\"buckets\":[";
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (i) s += ',';
      json_number(s, static_cast<double>(h.buckets[i]));
    }
    s += "],\"count\":";
    json_number(s, static_cast<double>(h.count));
    s += ",\"sum\":";
    json_number(s, h.sum);
    s += '}';
  }
  s += "}}";
  return s;
}

std::vector<std::pair<std::string, double>> Snapshot::flat() const {
  std::vector<std::pair<std::string, double>> out;
  out.reserve(counters.size() + gauges.size() + 2 * histograms.size());
  for (const auto& [name, v] : counters)
    out.emplace_back(name, static_cast<double>(v));
  for (const auto& [name, v] : gauges) out.emplace_back(name, v);
  for (const auto& [name, h] : histograms) {
    out.emplace_back(name + ".count", static_cast<double>(h.count));
    out.emplace_back(name + ".sum", h.sum);
  }
  return out;
}

// ---- timers -----------------------------------------------------------------

std::span<const double> time_bounds() {
  static const double kBounds[] = {0.01, 0.03, 0.1,  0.3,   1.0,   3.0,  10.0,
                                   30.0, 100., 300., 1000., 3000., 10000.,
                                   30000.};
  return kBounds;
}

}  // namespace mpass::obs
