#include "pe/pe.hpp"

#include <algorithm>

#include "obs/span.hpp"
#include "util/bytes.hpp"

namespace mpass::pe {

using util::align_up;
using util::ByteReader;
using util::ByteWriter;
using util::ParseError;

namespace {
constexpr std::uint32_t kDosHeaderSize = 64;
constexpr std::uint32_t kCoffSize = 20;
constexpr std::uint32_t kOptSize = 224;  // PE32 with 16 data directories
constexpr std::uint32_t kSectionHeaderSize = 40;
// CheckSum field offset within the optional header (thus e_lfanew + 0x58
// from the start of the file: 4 signature + 20 COFF + 0x40).
constexpr std::uint32_t kChecksumOptOffset = 0x40;
// Hard caps rejected at parse time. The Windows loader refuses images with
// more than 96 sections; alignments must be powers of two (FileAlignment at
// most 64K per spec). Without the caps, hostile headers drive the builder
// into 32-bit align_up overflows and quadratic allocation.
constexpr std::uint16_t kMaxSections = 96;
constexpr std::uint32_t kMaxFileAlign = 0x10000;
constexpr std::uint32_t kMaxSectionAlign = 0x1000000;

constexpr std::uint64_t align_up64(std::uint64_t v, std::uint64_t align) {
  return align == 0 ? v : (v + align - 1) / align * align;
}
}  // namespace

std::optional<std::size_t> Layout::section_of(std::uint32_t off) const {
  for (std::size_t i = 0; i < sections.size(); ++i) {
    // 64-bit end: offset + size near UINT32_MAX must not wrap the bound.
    if (off >= sections[i].file_offset &&
        off < static_cast<std::uint64_t>(sections[i].file_offset) +
                  sections[i].raw_size)
      return i;
  }
  return std::nullopt;
}

bool PeFile::looks_like_pe(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kDosHeaderSize) return false;
  if (util::read_le<std::uint16_t>(bytes.data()) != kDosMagic) return false;
  const std::uint32_t lfanew = util::read_le<std::uint32_t>(bytes.data() + 0x3C);
  // 64-bit arithmetic: lfanew + 4 wraps for lfanew >= 0xFFFFFFFC and would
  // pass the bound, sending the signature read out of bounds.
  if (static_cast<std::uint64_t>(lfanew) + 4 > bytes.size()) return false;
  return util::read_le<std::uint32_t>(bytes.data() + lfanew) == kPeSignature;
}

PeFile PeFile::parse(std::span<const std::uint8_t> bytes) {
  OBS_SCOPE("pe.parse");
  ByteReader r(bytes);
  PeFile out;

  // DOS header: we honor e_magic and e_lfanew; the rest is stub payload.
  if (r.u16() != kDosMagic) throw ParseError("pe: missing MZ magic");
  r.seek(0x3C);
  const std::uint32_t lfanew = r.u32();
  if (lfanew < kDosHeaderSize || lfanew > bytes.size())
    throw ParseError("pe: bad e_lfanew");
  out.dos_stub = ByteBuf(bytes.begin() + kDosHeaderSize,
                         bytes.begin() + lfanew);

  r.seek(lfanew);
  if (r.u32() != kPeSignature) throw ParseError("pe: missing PE signature");

  // COFF header.
  out.machine = r.u16();
  const std::uint16_t nsections = r.u16();
  if (nsections > kMaxSections) throw ParseError("pe: too many sections");
  out.timestamp = r.u32();
  r.u32();  // PointerToSymbolTable
  r.u32();  // NumberOfSymbols
  const std::uint16_t opt_size = r.u16();
  out.coff_characteristics = r.u16();
  if (opt_size < kOptSize) throw ParseError("pe: optional header too small");

  // Optional header (PE32).
  const std::size_t opt_start = r.pos();
  if (r.u16() != kPe32Magic) throw ParseError("pe: not PE32");
  out.linker_major = r.u8();
  out.linker_minor = r.u8();
  r.u32();  // SizeOfCode
  r.u32();  // SizeOfInitializedData
  r.u32();  // SizeOfUninitializedData
  out.entry_point = r.u32();
  r.u32();  // BaseOfCode
  r.u32();  // BaseOfData
  out.image_base = r.u32();
  out.section_align = r.u32();
  out.file_align = r.u32();
  if (out.file_align == 0 || out.section_align == 0)
    throw ParseError("pe: zero alignment");
  if ((out.file_align & (out.file_align - 1)) != 0 ||
      (out.section_align & (out.section_align - 1)) != 0)
    throw ParseError("pe: alignment not a power of two");
  if (out.file_align > kMaxFileAlign || out.section_align > kMaxSectionAlign)
    throw ParseError("pe: alignment too large");
  r.u16(); r.u16();  // OS version
  r.u16(); r.u16();  // image version
  r.u16(); r.u16();  // subsystem version
  r.u32();  // Win32VersionValue
  r.u32();  // SizeOfImage (recomputed on build)
  r.u32();  // SizeOfHeaders (recomputed on build)
  out.checksum = r.u32();
  out.subsystem = r.u16();
  out.dll_characteristics = r.u16();
  r.u32(); r.u32();  // stack reserve/commit
  r.u32(); r.u32();  // heap reserve/commit
  r.u32();  // LoaderFlags
  const std::uint32_t ndirs = r.u32();
  if (ndirs > kNumDirs) throw ParseError("pe: too many data directories");
  for (std::size_t i = 0; i < ndirs; ++i) {
    out.dirs[i].rva = r.u32();
    out.dirs[i].size = r.u32();
  }
  r.seek(opt_start + opt_size);

  // Section table + raw data. raw_end tracks where raw content (headers,
  // section data and their file-alignment padding) stops and the overlay
  // begins. It is aligned up to file_align so the builder's padding is never
  // absorbed into the overlay on reparse (which would grow the file on every
  // round trip), and kept in 64 bits so hostile pointers cannot wrap it.
  std::uint64_t raw_end = align_up64(
      r.pos() + static_cast<std::uint64_t>(nsections) * kSectionHeaderSize,
      out.file_align);
  for (std::uint16_t i = 0; i < nsections; ++i) {
    Section s;
    s.name = r.fixed_string(8);
    s.vsize = r.u32();
    s.vaddr = r.u32();
    const std::uint32_t raw_size = r.u32();
    const std::uint32_t raw_ptr = r.u32();
    r.u32(); r.u32();  // relocations/linenumbers pointers
    r.u16(); r.u16();  // counts
    s.characteristics = r.u32();
    if (raw_size > 0) {
      // 64-bit arithmetic: raw_ptr + raw_size overflows uint32 (e.g.
      // raw_ptr=0xFFFFFF00, raw_size=0x200 wraps to 0x100) and would pass
      // the bound, turning the copy below into an out-of-bounds read.
      const std::uint64_t data_end =
          static_cast<std::uint64_t>(raw_ptr) + raw_size;
      if (data_end > bytes.size())
        throw ParseError("pe: section data out of bounds");
      s.data.assign(bytes.begin() + raw_ptr,
                    bytes.begin() + static_cast<std::ptrdiff_t>(data_end));
      raw_end = std::max(raw_end, align_up64(data_end, out.file_align));
    }
    out.sections.push_back(std::move(s));
  }

  if (raw_end < bytes.size())
    out.overlay = ByteBuf(bytes.begin() + static_cast<std::ptrdiff_t>(raw_end),
                          bytes.end());
  return out;
}

std::uint32_t PeFile::headers_size() const {
  const std::uint32_t raw =
      kDosHeaderSize + static_cast<std::uint32_t>(dos_stub.size()) + 4 +
      kCoffSize + kOptSize +
      static_cast<std::uint32_t>(sections.size()) * kSectionHeaderSize;
  return align_up(raw, file_align);
}

std::uint32_t PeFile::next_free_rva() const {
  std::uint32_t end = align_up(headers_size(), section_align);
  for (const Section& s : sections) {
    // The span uses the file-alignment-padded data size: a reparse reads the
    // padded raw data back into the model, so sizing from the unpadded bytes
    // would grow SizeOfImage across round trips whenever file_align exceeds
    // section_align.
    const std::uint32_t raw =
        align_up(static_cast<std::uint32_t>(s.data.size()), file_align);
    const std::uint32_t span = std::max(s.vsize, raw);
    end = std::max(end, align_up(s.vaddr + std::max(span, 1u), section_align));
  }
  return end;
}

std::uint32_t PeFile::size_of_image() const { return next_free_rva(); }

std::size_t PeFile::total_section_bytes() const {
  std::size_t total = 0;
  for (const Section& s : sections) total += s.data.size();
  return total;
}

std::optional<std::size_t> PeFile::find_section(std::string_view name) const {
  for (std::size_t i = 0; i < sections.size(); ++i)
    if (sections[i].name == name) return i;
  return std::nullopt;
}

std::optional<std::size_t> PeFile::section_by_rva(std::uint32_t rva) const {
  for (std::size_t i = 0; i < sections.size(); ++i) {
    const Section& s = sections[i];
    const std::uint32_t span =
        std::max(s.vsize, static_cast<std::uint32_t>(s.data.size()));
    // 64-bit end: a section at vaddr near UINT32_MAX must still contain its
    // own vaddr rather than wrapping the bound to a tiny value.
    if (rva >= s.vaddr &&
        rva < static_cast<std::uint64_t>(s.vaddr) + std::max(span, 1u))
      return i;
  }
  return std::nullopt;
}

std::size_t PeFile::add_section(std::string_view name, ByteBuf data,
                                std::uint32_t characteristics,
                                std::uint32_t extra_vsize) {
  Section s;
  s.name = std::string(name.substr(0, 8));
  s.vaddr = next_free_rva();
  s.vsize = static_cast<std::uint32_t>(data.size()) + extra_vsize;
  s.characteristics = characteristics;
  s.data = std::move(data);
  sections.push_back(std::move(s));
  return sections.size() - 1;
}

ByteBuf PeFile::build() const { return build_with_layout(nullptr); }

ByteBuf PeFile::build_with_layout(Layout* layout) const {
  OBS_SCOPE("pe.build");
  ByteWriter w;

  // ---- DOS header + stub.
  w.u16(kDosMagic);
  // e_cblp..e_ovno and reserved fields: conventional values.
  const std::uint16_t dos_tail[] = {0x90, 0x03, 0x00, 0x04, 0x00, 0xFFFF,
                                    0x00, 0xB8, 0x00, 0x00, 0x00, 0x00,
                                    0x40, 0x00};
  for (std::uint16_t v : dos_tail) w.u16(v);
  w.zeros(0x3C - w.size());
  const std::uint32_t lfanew =
      kDosHeaderSize + static_cast<std::uint32_t>(dos_stub.size());
  w.u32(lfanew);
  w.block(dos_stub);

  // ---- PE signature + COFF.
  w.u32(kPeSignature);
  w.u16(machine);
  w.u16(static_cast<std::uint16_t>(sections.size()));
  w.u32(timestamp);
  w.u32(0);  // PointerToSymbolTable
  w.u32(0);  // NumberOfSymbols
  w.u16(static_cast<std::uint16_t>(kOptSize));
  w.u16(coff_characteristics);

  // ---- Optional header.
  std::uint32_t size_of_code = 0, size_of_idata = 0, size_of_udata = 0;
  std::uint32_t base_of_code = 0, base_of_data = 0;
  for (const Section& s : sections) {
    const std::uint32_t raw =
        align_up(static_cast<std::uint32_t>(s.data.size()), file_align);
    if (s.characteristics & kScnCode) {
      size_of_code += raw;
      if (base_of_code == 0) base_of_code = s.vaddr;
    } else if (s.characteristics & kScnUninitializedData) {
      size_of_udata += raw;
    } else {
      size_of_idata += raw;
      if (base_of_data == 0) base_of_data = s.vaddr;
    }
  }

  w.u16(kPe32Magic);
  w.u8(linker_major);
  w.u8(linker_minor);
  w.u32(size_of_code);
  w.u32(size_of_idata);
  w.u32(size_of_udata);
  w.u32(entry_point);
  w.u32(base_of_code);
  w.u32(base_of_data);
  w.u32(image_base);
  w.u32(section_align);
  w.u32(file_align);
  w.u16(6); w.u16(0);   // OS version
  w.u16(1); w.u16(0);   // image version
  w.u16(6); w.u16(0);   // subsystem version
  w.u32(0);             // Win32VersionValue
  w.u32(size_of_image());
  w.u32(headers_size());
  w.u32(checksum);
  w.u16(subsystem);
  w.u16(dll_characteristics);
  w.u32(0x100000); w.u32(0x1000);  // stack
  w.u32(0x100000); w.u32(0x1000);  // heap
  w.u32(0);                        // LoaderFlags
  w.u32(kNumDirs);
  for (const DataDirectory& d : dirs) {
    w.u32(d.rva);
    w.u32(d.size);
  }

  // ---- Section table. Raw pointers laid out sequentially after headers.
  const std::uint32_t hdr_size = headers_size();
  std::uint32_t raw_cursor = hdr_size;
  std::vector<Layout::SecRange> ranges;
  for (const Section& s : sections) {
    const std::uint32_t raw_size =
        align_up(static_cast<std::uint32_t>(s.data.size()), file_align);
    w.fixed_string(s.name, 8);
    w.u32(s.vsize ? s.vsize : static_cast<std::uint32_t>(s.data.size()));
    w.u32(s.vaddr);
    w.u32(raw_size);
    w.u32(raw_size ? raw_cursor : 0);
    w.u32(0); w.u32(0);  // relocations/linenumbers
    w.u16(0); w.u16(0);
    w.u32(s.characteristics);
    ranges.push_back({raw_size ? raw_cursor : 0, raw_size});
    raw_cursor += raw_size;
  }

  // ---- Header padding + raw section data (padded to file alignment).
  w.zeros(hdr_size - w.size());
  for (const Section& s : sections) {
    w.block(s.data);
    w.align_to(file_align);
  }

  const std::uint32_t overlay_offset = static_cast<std::uint32_t>(w.size());
  w.block(overlay);

  if (layout) {
    layout->headers_size = hdr_size;
    layout->sections = std::move(ranges);
    layout->overlay_offset = overlay_offset;
    layout->file_size = static_cast<std::uint32_t>(w.size());
  }
  return w.take();
}

void PeFile::update_checksum() {
  // compute_checksum folds the stored CheckSum field as zero, so the stale
  // value embedded by build() does not perturb the result.
  checksum = compute_checksum(build());
}

std::uint32_t PeFile::compute_checksum(std::span<const std::uint8_t> bytes) {
  // Standard PE checksum: 16-bit one's-complement-style folded sum of the
  // whole file (checksum field treated as zero) plus the file length. The
  // CheckSum field lives at e_lfanew + 4 + kCoffSize + kChecksumOptOffset;
  // folding it as zero makes a built file verify against its own stored
  // checksum.
  std::size_t csum_off = bytes.size();  // no maskable field by default
  if (bytes.size() >= kDosHeaderSize &&
      util::read_le<std::uint16_t>(bytes.data()) == kDosMagic) {
    const std::uint32_t lfanew =
        util::read_le<std::uint32_t>(bytes.data() + 0x3C);
    const std::uint64_t off =
        static_cast<std::uint64_t>(lfanew) + 4 + kCoffSize + kChecksumOptOffset;
    if (off + 4 <= bytes.size()) csum_off = static_cast<std::size_t>(off);
  }
  const auto byte_at = [&](std::size_t j) -> std::uint32_t {
    return (j >= csum_off && j < csum_off + 4) ? 0 : bytes[j];
  };
  std::uint64_t sum = 0;
  std::size_t i = 0;
  while (i + 2 <= bytes.size()) {
    sum += byte_at(i) | (byte_at(i + 1) << 8);
    sum = (sum & 0xFFFF) + (sum >> 16);
    i += 2;
  }
  if (i < bytes.size()) {
    sum += byte_at(i);
    sum = (sum & 0xFFFF) + (sum >> 16);
  }
  sum = (sum & 0xFFFF) + (sum >> 16);
  return static_cast<std::uint32_t>(sum + bytes.size());
}

}  // namespace mpass::pe
