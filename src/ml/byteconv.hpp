// Gated convolutional byte classifier: the shared architecture behind the
// MalConv, NonNeg and MalGCG detectors (Raff et al. 2018; Fleshman et al.
// 2018; Raff et al. 2021 -- see DESIGN.md).
//
//   bytes -> embedding (257 x d, token 256 = padding)
//         -> two parallel 1-D convolutions A, B (F filters, width W, stride S)
//         -> gating  h = A * sigmoid(B)
//         -> [MalGCG only] global channel gating g = sigmoid(Wg * mean_t h)
//         -> global max pool over time
//         -> dense H relu -> dense 1 -> sigmoid
//
// The net exposes embedding-space input gradients, which is what the MPass
// optimization step consumes (paper §III-D: "perturbations are first lifted
// to feature vectors using the embedding layer").
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ml/param.hpp"

namespace mpass::ml {

/// Half-open range of file offsets whose bytes changed since the cached
/// forward (incremental evaluation, see ByteConvNet::forward_delta).
struct ByteRange {
  std::size_t lo = 0;
  std::size_t hi = 0;  // exclusive
};

/// One candidate variant of a base buffer: the window
/// [offset, offset + bytes.size()) is replaced by `bytes` (same length --
/// edits never grow or shrink the buffer).
struct ByteEdit {
  std::size_t offset = 0;
  std::span<const std::uint8_t> bytes;
};

struct ByteConvConfig {
  std::size_t max_len = 16384;  // input truncation length L
  int embed_dim = 8;            // d
  int filters = 16;             // F
  int width = 32;               // W
  int stride = 16;              // S
  int hidden = 16;              // H
  bool gated = true;            // A * sigmoid(B) (vs relu(A))
  bool channel_gating = false;  // MalGCG global channel gating
  bool nonneg = false;          // clamp dense weights >= 0 after updates
};

class ByteConvNet {
 public:
  ByteConvNet(const ByteConvConfig& cfg, std::uint64_t seed);

  /// Deep copy (independent parameters + caches). Concurrent attacks clone
  /// the known models so forward-pass caches never race across threads.
  ByteConvNet(const ByteConvNet& other);
  ByteConvNet& operator=(const ByteConvNet&) = delete;

  /// Probability the sample is malicious. Caches activations for backward.
  /// Always runs the full convolution (the incremental entry points below
  /// reuse this cache and are bit-for-bit equivalent to calling it).
  float forward(std::span<const std::uint8_t> bytes);

  // ---- incremental forward ------------------------------------------------
  //
  // Every optimization step and hard-label query re-scores a buffer that
  // differs from the previously scored one in a handful of byte windows.
  // The full conv forward is O(T * F * W * d); re-convolving only the
  // timesteps whose stride-S windows overlap a dirty range and repairing
  // the global max pool incrementally makes the per-query cost proportional
  // to the edit size instead. All three entry points are *exactly*
  // equivalent to forward(): same float operations in the same order on
  // every recomputed value, so scores (and the activation cache, hence
  // backward) are bit-for-bit identical -- enforced by
  // tests/test_byteconv_incremental.cpp and the fuzz oracle.
  //
  // The cache is keyed on the ParamSet version: any weight update (Adam,
  // load, clamp_nonneg) invalidates it and the next call falls back to a
  // full forward. MPASS_NO_INCREMENTAL=1 (or set_incremental(false))
  // disables the delta paths entirely; every call then runs forward().

  /// Incremental forward: `bytes` is the full new buffer and `dirty`
  /// lists every range where it differs from the last forward's input.
  /// Falls back to a full forward when the cache is missing/stale, the
  /// consumed length changed, or the dirty set covers most timesteps.
  float forward_delta(std::span<const std::uint8_t> bytes,
                      std::span<const ByteRange> dirty);

  /// Incremental forward with self-computed dirty ranges: diffs `bytes`
  /// against the cached tokens (an O(L) integer scan, ~500x cheaper than
  /// the conv) and dispatches to the delta or full path. Safe for callers
  /// that do not track their own edits (detector score paths).
  float forward_auto(std::span<const std::uint8_t> bytes);

  /// Batched candidate scoring: returns forward(base-with-edit) for each
  /// edit *independently* (edits are alternatives, not cumulative), using
  /// one cached baseline instead of K full forwards. On return the cache
  /// again corresponds to `base`, so a subsequent forward_auto(base) is
  /// free. Edits reaching past the consumed length are truncated.
  std::vector<float> score_deltas(std::span<const std::uint8_t> base,
                                  std::span<const ByteEdit> edits);

  /// Enables/disables the incremental paths for this net (default: on
  /// unless MPASS_NO_INCREMENTAL=1). Off: every entry point runs the full
  /// forward.
  void set_incremental(bool on) { incremental_ = on; }
  bool incremental() const { return incremental_; }

  /// Drops the activation cache; the next incremental call runs full.
  void invalidate_cache() { cache_valid_ = false; }

  /// Backprop of BCE(prob, target) for the last forward() input.
  /// If input_grad is non-null it receives dLoss/dEmbedding, laid out
  /// [position * embed_dim + k] over the positions actually consumed
  /// (tokens() entries). If accumulate_params is false, parameter gradients
  /// are left untouched (attack mode).
  ///
  /// soft_pool_tau > 0 replaces the max-pool gradient with a softmax-pool
  /// surrogate of that temperature: gradient flows into *every* window
  /// weighted by its activation instead of only the argmax window. The
  /// forward pass (and hence the loss) is unchanged; this is the standard
  /// trick for optimizing adversarial bytes against max-pooled conv nets,
  /// which are otherwise first-order-blind beyond the current argmax.
  /// Returns the BCE loss value.
  float backward(float target, std::vector<float>* input_grad = nullptr,
                 bool accumulate_params = true, float soft_pool_tau = 0.0f);

  /// Number of byte positions consumed by the last forward (<= max_len).
  std::size_t consumed() const { return tokens_.size(); }

  /// Embedding row of a token (0..256).
  std::span<const float> embedding_row(int token) const;

  /// Applies the non-negativity constraint (no-op unless cfg.nonneg).
  void clamp_nonneg();

  const ByteConvConfig& config() const { return cfg_; }
  ParamSet& params() { return params_; }

  void save(util::Archive& ar) const;
  void load(util::Unarchive& ar);

 private:
  std::size_t time_steps(std::size_t n_tokens) const;
  /// Conv + gating for one timestep (writes a_/b_/h_ rows). Shared by the
  /// full and delta paths so recomputed rows are bitwise identical.
  void conv_row(std::size_t p);
  /// Channel gating + global max pool + dense head, full recompute from
  /// h_ (identical code for both paths).
  void pool_and_head();
  /// Dense head only (pooled_ -> prob_).
  void dense_head();
  float full_forward(std::span<const std::uint8_t> bytes);
  /// Applies already-tokenized dirty ranges: re-embeds + re-convolves the
  /// overlapping timesteps and repairs the pool. `ranges` are *token*
  /// position ranges, clamped and coalesced, with `bytes` the new buffer.
  float apply_delta(std::span<const std::uint8_t> bytes,
                    std::span<const ByteRange> ranges);
  bool cache_usable(std::size_t n, std::size_t n_tok) const;

  ByteConvConfig cfg_;
  ParamSet params_;
  Param* emb_;   // 257 x d
  Param* wa_;    // F x (W*d)
  Param* ba_;    // F
  Param* wb_;    // F x (W*d)
  Param* bb_;    // F
  Param* wg_;    // F x F (channel gating; empty unless enabled)
  Param* bg_;    // F
  Param* w1_;    // H x F
  Param* b1_;    // H
  Param* w2_;    // 1 x H
  Param* b2_;    // 1

  // Forward caches.
  std::vector<int> tokens_;
  std::vector<float> x_;      // embedded input, T_in x d
  std::vector<float> a_, b_;  // conv pre-activations, T x F
  std::vector<float> h_;      // gated features, T x F
  std::vector<float> ctx_;    // mean-pooled context, F
  std::vector<float> gate_;   // channel gates, F
  std::vector<float> pooled_; // F
  std::vector<int> argmax_;   // F
  std::vector<float> u_;      // hidden, H
  float z_ = 0.0f;            // logit
  float prob_ = 0.5f;

  // Incremental-forward state: whether the caches above describe a real
  // forward, the consumed byte count it was computed on, and the ParamSet
  // version its activations correspond to.
  bool incremental_;
  bool cache_valid_ = false;
  std::size_t cache_n_ = 0;
  std::uint64_t cache_version_ = 0;
};

/// Numerically safe binary cross-entropy on a probability.
float bce_loss(float prob, float target);

}  // namespace mpass::ml
