// Registry of the APIs an MVM program can invoke via the SYS instruction.
//
// The split between benign and sensitive ids mirrors the Windows API surface
// static detectors key on (file/registry/network/process-manipulation
// primitives vs. ordinary runtime services). Sensitive ids start at 0x0100.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

namespace mpass::vm {

enum class Api : std::uint16_t {
  // ---- benign runtime services (not recorded in behavior traces unless
  //      they have observable output effects, like Print/WriteFile).
  Print = 0x0001,        // r0=ptr, r1=len                  [traced]
  GetTime = 0x0002,      // -> r0 (deterministic)
  OpenFile = 0x0003,     // r0=name ptr, r1=len -> handle   [traced]
  ReadFile = 0x0004,     // r0=h, r1=buf, r2=len -> nread
  WriteFile = 0x0005,    // r0=h, r1=buf, r2=len            [traced]
  CloseFile = 0x0006,    // r0=h
  Alloc = 0x0007,        // r0=size -> ptr
  GetEnv = 0x0008,       // r0=buf, r1=len -> written
  MsgBox = 0x0009,       // r0=ptr, r1=len                  [traced]
  Rand = 0x000A,         // -> r0 (deterministic stream)
  Sleep = 0x000B,        // r0=ms
  ExitProcess = 0x000C,  //                                  [traced]
  VProtect = 0x000D,     // r0=addr, r1=len, r2=prot(1=W,2=X)
  GetSelfSize = 0x000E,  // -> r0 raw file size
  ReadSelf = 0x000F,     // r0=file off, r1=buf, r2=len -> nread
  Checksum = 0x0010,     // r0=ptr, r1=len -> crc32

  // ---- sensitive / malicious APIs (all traced).
  RegSetAutorun = 0x0100,  // r0=value ptr, r1=len
  RegDeleteKey = 0x0101,   // r0=key hash
  Connect = 0x0102,        // r0=host id, r1=port -> sock
  Send = 0x0103,           // r0=sock, r1=buf, r2=len
  Recv = 0x0104,           // r0=sock, r1=buf, r2=len -> nread
  EnumFiles = 0x0105,      // r0=buf, r1=cap -> name len (0 = done)
  EncryptFile = 0x0106,    // r0=name ptr, r1=len, r2=key
  DeleteShadow = 0x0107,   //
  KeylogStart = 0x0108,    //
  KeylogDump = 0x0109,     // r0=buf, r1=cap -> len
  InjectProc = 0x010A,     // r0=pid, r1=buf, r2=len
  CreateProc = 0x010B,     // r0=name ptr, r1=len
  WriteExe = 0x010C,       // r0=name ptr, r1=nlen, r2=buf, r3=blen
  SetHidden = 0x010D,      // r0=name ptr, r1=len
  Screenshot = 0x010E,     // r0=buf, r1=cap -> len
  StealCreds = 0x010F,     // r0=buf, r1=cap -> len
};

/// True for ids in the sensitive range.
constexpr bool is_sensitive(std::uint16_t api) { return api >= 0x0100; }
constexpr bool is_sensitive(Api api) {
  return is_sensitive(static_cast<std::uint16_t>(api));
}

/// True for APIs with no legitimate use (the sandbox's malice verdict).
/// Gray-area sensitive APIs -- Connect/Send/Recv/RegSetAutorun/EnumFiles --
/// are also used by benign telemetry and auto-updaters, exactly the
/// ambiguity real static detectors must resolve from code/data bytes.
constexpr bool is_hard_malicious(std::uint16_t api) {
  switch (static_cast<Api>(api)) {
    case Api::EncryptFile:
    case Api::DeleteShadow:
    case Api::KeylogStart:
    case Api::KeylogDump:
    case Api::InjectProc:
    case Api::WriteExe:
    case Api::SetHidden:
    case Api::RegDeleteKey:
    case Api::Screenshot:
    case Api::StealCreds:
      return true;
    default:
      return false;
  }
}
constexpr bool is_hard_malicious(Api api) {
  return is_hard_malicious(static_cast<std::uint16_t>(api));
}

/// Canonical API name ("RegSetAutorun", ...); "Api_<hex>" for unknown ids.
std::string_view api_name(std::uint16_t api);

/// True if the id is a defined Api.
bool api_exists(std::uint16_t api);

/// All defined API ids (benign then sensitive).
std::span<const std::uint16_t> all_apis();

/// All sensitive API ids.
std::span<const std::uint16_t> sensitive_apis();

/// All benign API ids.
std::span<const std::uint16_t> benign_apis();

}  // namespace mpass::vm
