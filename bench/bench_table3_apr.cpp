// Reproduces Table III: APR (%) -- mean file-size increase of successful
// AEs -- for each attack against the offline detectors (cached runs).
#include "bench_common.hpp"

int main() {
  using namespace mpass;
  const auto cfg = harness::ExperimentConfig::from_env();
  bench::BenchReport report("table3_apr");
  const auto cells = harness::offline_grid(cfg);
  report.add_cells(cells);
  bench::print_grid(
      "Table III: APR (%) of attack methods on offline models", cells,
      bench::offline_targets(), bench::main_attacks(),
      [](const harness::CellStats& c) { return c.apr; });
  std::printf(
      "Paper Table III:\n"
      "  MalConv 108.6/613.5/430.3/4013.5/402.8 NonNeg 68.4/657.4/300.3/3721.4/362.4\n"
      "  LightGBM 182.5/432.8/475.0/3613.2/506.3 MalGCG 82.6/389.6/959.2/4214.3/324.5\n");
  return 0;
}
