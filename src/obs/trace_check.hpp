// Reader + schema validator for MPASS_TRACE directories, shared by the
// tools/mpass_trace CLI, the CI trace check, and the round-trip tests.
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace mpass::obs {

/// Parsed contents of one per-sample trace file.
struct SampleTraceData {
  std::string attack, target, sample;
  std::uint64_t seed = 0;
  std::uint64_t budget = 0;

  struct Query {
    std::uint64_t i = 0;
    bool malicious = false;
    double score = 0.0;
  };
  struct Opt {
    std::uint64_t iter = 0;
    double loss = 0.0;
  };
  std::vector<Query> queries;
  std::vector<Opt> opts;
  std::size_t actions = 0;

  bool has_end = false;
  bool success = false;
  bool functional = false;
  std::uint64_t end_queries = 0;
  double apr = 0.0;
  double ms = 0.0;
};

/// One "cell" line from cells.jsonl.
struct CellTraceData {
  std::string attack, target;
  std::uint64_t n = 0;
  std::uint64_t traced = 0;  // samples executed (not served from cache)
  std::uint64_t total_queries = 0;
  double wall_ms = 0.0;
};

/// Everything loaded from a trace directory.
struct TraceDirData {
  std::vector<SampleTraceData> samples;
  std::vector<CellTraceData> cells;  // in file order; later lines win
  std::size_t pem_lines = 0;
  bool has_metrics = false;
};

/// Outcome of validating a trace directory.
struct TraceCheckReport {
  std::size_t files = 0;
  std::size_t lines = 0;
  std::vector<std::string> errors;    // schema/consistency violations
  std::vector<std::string> warnings;  // e.g. cells not reconcilable (cache)
  TraceDirData data;

  bool ok() const { return errors.empty(); }
};

/// Parses one per-sample JSONL payload. Appends human-readable messages to
/// `errors` (prefixed with `where`) for every violation: malformed JSON,
/// unknown "ev", missing/ill-typed fields, missing start/end framing,
/// non-contiguous query indices, non-increasing opt iterations, or an "end"
/// whose query count disagrees with the emitted query events.
std::optional<SampleTraceData> parse_sample_trace(
    std::string_view text, std::string_view where,
    std::vector<std::string>* errors);

/// Loads and validates a whole trace directory: every *.jsonl line must
/// satisfy the schema, and for every cell whose samples were all executed
/// in this run (traced == n and all n files present), the sum of per-sample
/// query counts must equal the cell's total_queries (the CellStats
/// reconciliation of docs/OBSERVABILITY.md).
TraceCheckReport check_trace_dir(const std::filesystem::path& dir);

}  // namespace mpass::obs
