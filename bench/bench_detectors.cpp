// Detector quality report: held-out accuracy/AUC/TPR/FPR of the four
// offline models and the five AV simulators, plus the GBDT's most important
// features. Not a paper artifact per se, but the paper's experiments only
// make sense against competent detectors -- this bench documents them.
#include "bench_common.hpp"
#include "detectors/features.hpp"

int main() {
  using namespace mpass;
  bench::BenchReport report("detectors");
  detect::ModelZoo& zoo = detect::ModelZoo::instance();

  util::Table table("Detector quality on the held-out test set");
  table.header({"Detector", "accuracy", "AUC", "TPR", "FPR", "threshold"});
  for (detect::Detector* d : zoo.offline()) {
    const detect::EvalReport r = zoo.eval_offline(d->name());
    table.row({std::string(d->name()), util::Table::num(r.accuracy, 3),
               util::Table::num(r.auc, 3), util::Table::num(r.tpr, 3),
               util::Table::num(r.fpr, 3), util::Table::num(d->threshold(), 3)});
  }
  for (const auto& av : zoo.avs()) {
    const detect::EvalReport r = detect::evaluate(*av, zoo.test());
    table.row({std::string(av->name()), util::Table::num(r.accuracy, 3),
               util::Table::num(r.auc, 3), util::Table::num(r.tpr, 3),
               util::Table::num(r.fpr, 3),
               util::Table::num(av->threshold(), 3)});
  }
  std::cout << table.render();

  // Top GBDT features by split count.
  auto& gbm =
      dynamic_cast<detect::GbdtDetector&>(zoo.offline_by_name("LightGBM"));
  const auto importance =
      gbm.gbdt().feature_importance(detect::feature_dim());
  std::vector<std::pair<double, std::size_t>> ranked;
  for (std::size_t i = 0; i < importance.size(); ++i)
    if (importance[i] > 0) ranked.emplace_back(importance[i], i);
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  const auto names = detect::parsed_feature_names();
  std::printf("top LightGBM features by split share:\n");
  for (std::size_t i = 0; i < std::min<std::size_t>(ranked.size(), 10); ++i) {
    const std::size_t f = ranked[i].second;
    std::string label;
    if (f < 256)
      label = "byte_hist[" + std::to_string(f) + "]";
    else if (f < 512)
      label = "byte_entropy_hist[" + std::to_string(f - 256) + "]";
    else
      label = std::string(names[f - 512]);
    std::printf("  %5.1f%%  %s\n", 100.0 * ranked[i].first, label.c_str());
  }
  return 0;
}
