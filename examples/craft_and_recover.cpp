// Inside the runtime-recovery technique (paper §III-C): encodes a malware
// sample's code/data sections against a benign donor, dumps the shuffled
// recovery stub's disassembly, executes both versions in the emulator and
// diffs their behavior traces byte for byte.
//
// Build & run:  ./build/examples/craft_and_recover
#include <cstdio>

#include "core/modification.hpp"
#include "corpus/generator.hpp"
#include "isa/isa.hpp"
#include "pe/pe.hpp"
#include "util/entropy.hpp"
#include "vm/sandbox.hpp"
#include "vm/trace_io.hpp"

int main() {
  using namespace mpass;

  corpus::CompiledSample malware = corpus::make_malware(31337);
  const util::ByteBuf original = malware.bytes();
  const util::ByteBuf donor = corpus::make_benign(404).bytes();

  util::Rng rng(1);
  core::ModificationConfig cfg;  // code+data, shuffle on
  const core::ModifiedSample mod =
      core::apply_modification(original, donor, cfg, rng);

  std::printf("original %zu bytes -> modified %zu bytes (APR %.0f%%)\n",
              original.size(), mod.bytes.size(), 100.0 * mod.apr);
  std::printf("%zu perturbable byte positions, %zu byte->key couplings\n",
              mod.perturbable.size(), mod.key_of.size());

  // Show what happened to the sections.
  const pe::PeFile before = pe::PeFile::parse(original);
  const pe::PeFile after = pe::PeFile::parse(mod.bytes);
  std::printf("\n%-10s %-18s %-18s\n", "section", "entropy before",
              "entropy after");
  for (std::size_t i = 0; i < before.sections.size(); ++i)
    std::printf("%-10s %-18.2f %-18.2f\n", before.sections[i].name.c_str(),
                util::shannon_entropy(before.sections[i].data),
                util::shannon_entropy(after.sections[i].data));
  const pe::Section& stub = after.sections.back();
  std::printf("%-10s %-18s %-18.2f  (new: keys + shuffled stub + filler)\n",
              stub.name.c_str(), "-", util::shannon_entropy(stub.data));

  // Peek at the shuffled stub: disassemble from the new entry point.
  const std::uint32_t entry_off = after.entry_point - stub.vaddr;
  std::printf("\nrecovery stub disassembly (first 12 instructions at the "
              "shuffled entry):\n");
  util::ByteReader r({stub.data.data() + entry_off,
                      stub.data.size() - entry_off});
  for (int i = 0; i < 12 && !r.eof(); ++i) {
    try {
      const isa::Instr in = isa::decode(r);
      std::printf("  %s\n", isa::to_string(in).c_str());
      if (in.op == isa::Op::Jmp) {
        // The next chunk lives elsewhere; bytes after an unconditional jmp
        // are a never-executed perturbation gap.
        std::printf("  ... <perturbation gap, next chunk at jmp target>\n");
        break;
      }
    } catch (const util::ParseError&) {
      std::printf("  <gap bytes>\n");
      break;
    }
  }

  // Behavior equality.
  const vm::Sandbox sandbox;
  const vm::SandboxReport a = sandbox.analyze(original);
  const vm::SandboxReport b = sandbox.analyze(mod.bytes);
  std::printf("\noriginal: %llu steps, %zu events | modified: %llu steps, "
              "%zu events\n",
              static_cast<unsigned long long>(a.run.steps), a.trace().size(),
              static_cast<unsigned long long>(b.run.steps), b.trace().size());
  const bool identical = vm::traces_equal(a.trace(), b.trace());
  std::printf("traces identical: %s\n", identical ? "YES" : "NO");
  std::printf("%s", vm::format_trace(a.trace()).c_str());
  if (!identical)
    std::printf("diff:\n%s", vm::diff_traces(a.trace(), b.trace()).c_str());
  return identical ? 0 : 1;
}
