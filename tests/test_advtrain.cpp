// Tests for the adversarial-training extension (paper §VI).
#include <gtest/gtest.h>

#include "detectors/advtrain.hpp"

namespace mpass::detect {
namespace {

using util::ByteBuf;

ml::ByteConvConfig tiny() {
  ml::ByteConvConfig cfg;
  cfg.max_len = 8192;
  cfg.embed_dim = 4;
  cfg.filters = 8;
  cfg.width = 16;
  cfg.stride = 8;
  cfg.hidden = 8;
  return cfg;
}

TEST(AdvTrain, PgdTrainingTracksPlainTraining) {
  // Adversarial training must not collapse the model relative to plain
  // training on the *same* data/seed (micro-scale AUCs are seed-noisy, so
  // the assertion is relative, plus both runs must beat coin flipping on
  // the training set itself).
  const corpus::Dataset data = corpus::generate_dataset(4000, 48, 48);
  ByteConvDetector plain("plain", tiny(), 5);
  NetTrainConfig base;
  base.epochs = 8;
  base.lr = 2e-3f;
  train_net(plain, data, base);
  const double plain_auc = evaluate(plain, data).auc;  // train-set AUC
  ASSERT_GT(plain_auc, 0.8);

  ByteConvDetector det("pgdat", tiny(), 5);
  AdvTrainConfig cfg;
  cfg.epochs = 8;
  cfg.lr = 2e-3f;
  const float loss = adversarial_train_pgd(det, data, cfg);
  EXPECT_GT(loss, 0.0f);
  const double at_auc = evaluate(det, data).auc;
  EXPECT_GT(at_auc, plain_auc - 0.3);
  EXPECT_GT(at_auc, 0.6);
}

TEST(AdvTrain, AeMixingLearnsTheProvidedAes) {
  const corpus::Dataset data = corpus::generate_dataset(4100, 24, 24);
  ByteConvDetector det("aemix", tiny(), 7);
  NetTrainConfig base;
  base.epochs = 3;
  train_net(det, data, base);
  calibrate_threshold(det, data, 0.05);

  // Fabricate "AEs": benign-looking byte blobs the clean model misses.
  util::Rng rng(9);
  std::vector<ByteBuf> aes;
  for (int i = 0; i < 6; ++i) {
    ByteBuf ae = data.samples[i].bytes;
    for (auto& b : ae)
      if (rng.chance(0.3)) b = 0x20;  // benign-ish whitewash
    aes.push_back(std::move(ae));
  }
  double before = 0;
  for (const ByteBuf& ae : aes) before += det.score(ae);
  before /= static_cast<double>(aes.size());

  AdvTrainConfig cfg;
  cfg.epochs = 4;
  adversarial_train_with_aes(det, data, aes, cfg);
  // The exact AEs trained on must now score clearly higher than before.
  double after = 0;
  for (const ByteBuf& ae : aes) after += det.score(ae);
  after /= static_cast<double>(aes.size());
  EXPECT_GT(after, before + 0.05);
}

TEST(AdvTrain, AeMixingWithNoAesIsPlainTraining) {
  const corpus::Dataset data = corpus::generate_dataset(4200, 12, 12);
  ByteConvDetector det("plain", tiny(), 11);
  AdvTrainConfig cfg;
  cfg.epochs = 1;
  EXPECT_NO_THROW(adversarial_train_with_aes(det, data, {}, cfg));
}

}  // namespace
}  // namespace mpass::detect
