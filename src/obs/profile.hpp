// Perf-baseline pipeline: parsing, rendering and comparison of the span
// profiles (spans.json, obs/span.hpp) and the machine-readable per-bench
// reports (BENCH_<name>.json, bench/bench_common.hpp).
//
// This is the library behind tools/mpass_prof:
//   * parse_spans       -- spans out of a spans.json / BENCH_*.json document
//   * render_span_top   -- self-time hotspot table
//   * render_span_tree  -- call-path tree with % of parent
//   * chrome_from_spans -- synthetic aggregate flame (Chrome trace JSON)
//   * compare_profiles  -- per-span / per-bench deltas against a baseline,
//                          with a configurable regression threshold
//   * collect_bench_dir -- BENCH_*.json -> one schema-versioned
//                          BENCH_SUMMARY.json, failing on missing or
//                          unparsable bench output
//
// Kept free of harness/bench dependencies so tools and tests can link it
// through mpass_obs alone.
#pragma once

#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace mpass::obs {

/// One parsed span row (ms domain; the JSON schema carries ms).
struct SpanProfileRow {
  std::string path;
  std::uint64_t count = 0;
  double total_ms = 0.0;
  double self_ms = 0.0;
};

/// Extracts span rows from a parsed document: accepts a bare spans.json
/// ({"spans":[...]}), a BENCH_<name>.json (same key), or a raw spans array.
/// nullopt if the document has no well-formed "spans".
std::optional<std::vector<SpanProfileRow>> parse_spans(const Json& doc);

/// Self-time hotspot table, top `n` rows.
std::string render_span_top(const std::vector<SpanProfileRow>& rows,
                            std::size_t n = 20);

/// Indented call-path tree; each row shows total, self and % of parent.
std::string render_span_tree(const std::vector<SpanProfileRow>& rows);

/// Synthesizes a Chrome trace-event JSON "aggregate flame" from span rows:
/// one timeline where each call path is a complete event of its total
/// duration nested inside its parent. Not a real timeline -- a loadable
/// flame view of where aggregate time went.
std::string chrome_from_spans(const std::vector<SpanProfileRow>& rows);

// ---- baseline comparison ----------------------------------------------------

struct ProfCompareOptions {
  double threshold = 0.20;  // fail when cur > base * (1 + threshold)
  double min_ms = 10.0;     // ignore series where max(base, cur) < min_ms
  std::string only_bench;   // non-empty: compare only this bench's series
  bool wall_only = false;   // compare bench wall-ms, skip per-span self-ms
};

struct ProfDelta {
  std::string kind;  // "bench-wall" | "span-self"
  std::string name;  // "<bench>" or "<bench>:<path>"
  double base_ms = 0.0;
  double cur_ms = 0.0;
  double ratio = 0.0;  // cur / base
};

struct ProfCompareResult {
  std::vector<ProfDelta> regressions;   // above threshold -> fail
  std::vector<ProfDelta> improvements;  // informational
  std::size_t compared = 0;             // series compared
  std::vector<std::string> notes;       // e.g. series only in one side
  bool ok() const { return regressions.empty(); }
};

/// Compares two profile documents. Both sides may be a BENCH_SUMMARY.json
/// ({"benches":{name: <bench>}}), a single BENCH_<name>.json, or a bare
/// spans.json; wall-ms is compared per bench and self-ms per span path.
ProfCompareResult compare_profiles(const Json& base, const Json& cur,
                                   const ProfCompareOptions& opts);

std::string render_compare(const ProfCompareResult& r,
                           const ProfCompareOptions& opts);

// ---- bench-output collection ------------------------------------------------

/// Merges every BENCH_*.json under `dir` into one schema-versioned
/// BENCH_SUMMARY.json document. Fails (nullopt + *error) when a file is
/// unparsable, misses required fields (schema_version, bench, wall_ms,
/// spans), or an `expected` bench name has no file -- missing bench output
/// is an error, never silently skipped.
std::optional<std::string> collect_bench_dir(
    const std::filesystem::path& dir,
    const std::vector<std::string>& expected, std::string* error);

}  // namespace mpass::obs
