#include "ml/gbdt.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mpass::ml {

namespace {
inline float sigmoidf(float x) { return 1.0f / (1.0f + std::exp(-x)); }
}

void Gbdt::fit(const std::vector<std::vector<float>>& x,
               const std::vector<int>& y, std::uint64_t seed) {
  if (x.empty() || x.size() != y.size())
    throw std::invalid_argument("gbdt: bad training data");
  const std::size_t n = x.size();
  const std::size_t dim = x[0].size();
  util::Rng rng(seed);

  // ---- quantile binning ----------------------------------------------------
  // bin_edges[f] has at most bins-1 ascending thresholds; bin k holds values
  // in (edge[k-1], edge[k]].
  std::vector<std::vector<float>> edges(dim);
  {
    std::vector<float> col(n);
    for (std::size_t f = 0; f < dim; ++f) {
      for (std::size_t i = 0; i < n; ++i) col[i] = x[i][f];
      std::sort(col.begin(), col.end());
      auto& e = edges[f];
      for (int b = 1; b < cfg_.bins; ++b) {
        const std::size_t q = b * n / cfg_.bins;
        const float v = col[std::min(q, n - 1)];
        if (e.empty() || v > e.back()) e.push_back(v);
      }
    }
  }
  auto bin_of = [&](float v, const std::vector<float>& e) {
    return static_cast<int>(
        std::lower_bound(e.begin(), e.end(), v) - e.begin());
  };

  // Pre-binned matrix (row-major uint16 bins).
  std::vector<std::uint16_t> binned(n * dim);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t f = 0; f < dim; ++f)
      binned[i * dim + f] =
          static_cast<std::uint16_t>(bin_of(x[i][f], edges[f]));

  // ---- boosting ---------------------------------------------------------------
  double pos = 0;
  for (int v : y) pos += v;
  const double prior = std::clamp(pos / static_cast<double>(n), 1e-4, 1 - 1e-4);
  base_score_ = static_cast<float>(std::log(prior / (1.0 - prior)));

  std::vector<float> score(n, base_score_);
  std::vector<float> grad(n), hess(n);
  trees_.clear();

  const int max_nodes = (2 << cfg_.max_depth) + 1;
  for (int round = 0; round < cfg_.trees; ++round) {
    for (std::size_t i = 0; i < n; ++i) {
      const float p = sigmoidf(score[i]);
      grad[i] = p - static_cast<float>(y[i]);
      hess[i] = std::max(p * (1.0f - p), 1e-6f);
    }

    // Column subsample for this tree.
    std::vector<std::size_t> feats;
    for (std::size_t f = 0; f < dim; ++f)
      if (cfg_.feature_fraction >= 1.0f || rng.chance(cfg_.feature_fraction))
        feats.push_back(f);
    if (feats.empty()) feats.push_back(rng.below(dim));

    Tree tree;
    tree.reserve(static_cast<std::size_t>(max_nodes));

    struct Work {
      int node;
      int depth;
      std::vector<std::uint32_t> rows;
    };
    std::vector<Work> queue;
    {
      std::vector<std::uint32_t> all(n);
      for (std::size_t i = 0; i < n; ++i) all[i] = static_cast<std::uint32_t>(i);
      tree.push_back({});
      queue.push_back({0, 0, std::move(all)});
    }

    while (!queue.empty()) {
      Work w = std::move(queue.back());
      queue.pop_back();

      double G = 0, H = 0;
      for (std::uint32_t i : w.rows) {
        G += grad[i];
        H += hess[i];
      }
      auto make_leaf = [&] {
        tree[static_cast<std::size_t>(w.node)].value =
            static_cast<float>(-G / (H + cfg_.lambda)) * cfg_.learning_rate;
      };
      if (w.depth >= cfg_.max_depth || w.rows.size() < 2) {
        make_leaf();
        continue;
      }

      // Best split via per-feature histograms.
      const double parent_gain = G * G / (H + cfg_.lambda);
      double best_gain = 1e-6;  // require strictly positive improvement
      int best_feat = -1;
      int best_bin = -1;
      std::vector<double> hg(static_cast<std::size_t>(cfg_.bins));
      std::vector<double> hh(static_cast<std::size_t>(cfg_.bins));
      for (std::size_t f : feats) {
        if (edges[f].empty()) continue;
        std::fill(hg.begin(), hg.end(), 0.0);
        std::fill(hh.begin(), hh.end(), 0.0);
        for (std::uint32_t i : w.rows) {
          const int b = binned[static_cast<std::size_t>(i) * dim + f];
          hg[static_cast<std::size_t>(b)] += grad[i];
          hh[static_cast<std::size_t>(b)] += hess[i];
        }
        double gl = 0, hl = 0;
        const int usable = static_cast<int>(edges[f].size());
        for (int b = 0; b < usable; ++b) {
          gl += hg[static_cast<std::size_t>(b)];
          hl += hh[static_cast<std::size_t>(b)];
          const double gr = G - gl;
          const double hr = H - hl;
          if (hl < cfg_.min_child_hess || hr < cfg_.min_child_hess) continue;
          const double gain = gl * gl / (hl + cfg_.lambda) +
                              gr * gr / (hr + cfg_.lambda) - parent_gain;
          if (gain > best_gain) {
            best_gain = gain;
            best_feat = static_cast<int>(f);
            best_bin = b;
          }
        }
      }
      if (best_feat < 0) {
        make_leaf();
        continue;
      }

      // Partition rows.
      std::vector<std::uint32_t> left, right;
      for (std::uint32_t i : w.rows) {
        const int b =
            binned[static_cast<std::size_t>(i) * dim +
                   static_cast<std::size_t>(best_feat)];
        (b <= best_bin ? left : right).push_back(i);
      }
      if (left.empty() || right.empty()) {
        make_leaf();
        continue;
      }

      Node& nd = tree[static_cast<std::size_t>(w.node)];
      nd.feature = best_feat;
      nd.threshold =
          edges[static_cast<std::size_t>(best_feat)]
               [static_cast<std::size_t>(best_bin)];
      nd.left = static_cast<int>(tree.size());
      tree.push_back({});
      nd.right = static_cast<int>(tree.size());
      tree.push_back({});
      const int l = tree[static_cast<std::size_t>(w.node)].left;
      const int rgt = tree[static_cast<std::size_t>(w.node)].right;
      queue.push_back({l, w.depth + 1, std::move(left)});
      queue.push_back({rgt, w.depth + 1, std::move(right)});
    }

    for (std::size_t i = 0; i < n; ++i)
      score[i] += tree_score(tree, x[i]);
    trees_.push_back(std::move(tree));
  }
}

float Gbdt::tree_score(const Tree& t, std::span<const float> x) const {
  int node = 0;
  while (t[static_cast<std::size_t>(node)].feature >= 0) {
    const Node& nd = t[static_cast<std::size_t>(node)];
    node = x[static_cast<std::size_t>(nd.feature)] <= nd.threshold ? nd.left
                                                                   : nd.right;
  }
  return t[static_cast<std::size_t>(node)].value;
}

float Gbdt::decision(std::span<const float> x) const {
  float s = base_score_;
  for (const Tree& t : trees_) s += tree_score(t, x);
  return s;
}

float Gbdt::predict(std::span<const float> x) const {
  return sigmoidf(decision(x));
}

std::vector<double> Gbdt::feature_importance(std::size_t dim) const {
  std::vector<double> importance(dim, 0.0);
  double total = 0.0;
  for (const Tree& t : trees_)
    for (const Node& nd : t)
      if (nd.feature >= 0 && static_cast<std::size_t>(nd.feature) < dim) {
        importance[static_cast<std::size_t>(nd.feature)] += 1.0;
        total += 1.0;
      }
  if (total > 0)
    for (double& v : importance) v /= total;
  return importance;
}

void Gbdt::save(util::Archive& ar) const {
  ar.tag("gbdt");
  ar.f32(base_score_);
  ar.u32(static_cast<std::uint32_t>(trees_.size()));
  for (const Tree& t : trees_) {
    ar.u32(static_cast<std::uint32_t>(t.size()));
    for (const Node& nd : t) {
      ar.i64(nd.feature);
      ar.f32(nd.threshold);
      ar.i64(nd.left);
      ar.i64(nd.right);
      ar.f32(nd.value);
    }
  }
}

void Gbdt::load(util::Unarchive& ar) {
  ar.tag("gbdt");
  base_score_ = ar.f32();
  trees_.assign(ar.u32(), {});
  for (Tree& t : trees_) {
    t.assign(ar.u32(), {});
    for (Node& nd : t) {
      nd.feature = static_cast<int>(ar.i64());
      nd.threshold = ar.f32();
      nd.left = static_cast<int>(ar.i64());
      nd.right = static_cast<int>(ar.i64());
      nd.value = ar.f32();
    }
  }
}

}  // namespace mpass::ml
