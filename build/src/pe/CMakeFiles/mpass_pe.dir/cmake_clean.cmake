file(REMOVE_RECURSE
  "CMakeFiles/mpass_pe.dir/import.cpp.o"
  "CMakeFiles/mpass_pe.dir/import.cpp.o.d"
  "CMakeFiles/mpass_pe.dir/pe.cpp.o"
  "CMakeFiles/mpass_pe.dir/pe.cpp.o.d"
  "libmpass_pe.a"
  "libmpass_pe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpass_pe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
