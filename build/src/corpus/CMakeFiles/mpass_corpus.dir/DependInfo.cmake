
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/corpus/codegen.cpp" "src/corpus/CMakeFiles/mpass_corpus.dir/codegen.cpp.o" "gcc" "src/corpus/CMakeFiles/mpass_corpus.dir/codegen.cpp.o.d"
  "/root/repo/src/corpus/generator.cpp" "src/corpus/CMakeFiles/mpass_corpus.dir/generator.cpp.o" "gcc" "src/corpus/CMakeFiles/mpass_corpus.dir/generator.cpp.o.d"
  "/root/repo/src/corpus/spec.cpp" "src/corpus/CMakeFiles/mpass_corpus.dir/spec.cpp.o" "gcc" "src/corpus/CMakeFiles/mpass_corpus.dir/spec.cpp.o.d"
  "/root/repo/src/corpus/strings.cpp" "src/corpus/CMakeFiles/mpass_corpus.dir/strings.cpp.o" "gcc" "src/corpus/CMakeFiles/mpass_corpus.dir/strings.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mpass_util.dir/DependInfo.cmake"
  "/root/repo/build/src/pe/CMakeFiles/mpass_pe.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/mpass_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/mpass_vm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
