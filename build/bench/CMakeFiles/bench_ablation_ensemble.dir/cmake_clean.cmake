file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ensemble.dir/bench_ablation_ensemble.cpp.o"
  "CMakeFiles/bench_ablation_ensemble.dir/bench_ablation_ensemble.cpp.o.d"
  "bench_ablation_ensemble"
  "bench_ablation_ensemble.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ensemble.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
