# Empty dependencies file for attack_commercial_av.
# This may be replaced when dependencies are built.
