file(REMOVE_RECURSE
  "libmpass_vm.a"
)
