// ASCII table rendering for the benchmark harness: prints paper-style
// tables (Table I..VI) and figure series with aligned columns.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace mpass::util {

/// Column-aligned text table with a title row, header row, and data rows.
class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  Table& header(std::vector<std::string> cols);
  Table& row(std::vector<std::string> cells);

  /// Convenience: formats doubles to fixed decimals.
  static std::string num(double v, int decimals = 1);

  /// Renders with box-drawing separators.
  std::string render() const;

  /// Renders to a stream.
  void print(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mpass::util
