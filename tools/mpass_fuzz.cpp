// mpass_fuzz — structure-aware PE fuzzer + differential round-trip oracle.
//
//   mpass_fuzz run [--iters N] [--seed S] [--out DIR] [--attack-every N]
//                  [--no-minimize]        deterministic fuzz campaign
//   mpass_fuzz repro FILE...              re-run the oracle on saved inputs
//                                         (.bin = PE bytes, .knobs = stub knobs)
//   mpass_fuzz repro-iter I [--seed S]    rebuild iteration I's input and
//                                         run the oracle on it
//   mpass_fuzz make-corpus DIR            write the canonical regression
//                                         inputs (tests/fuzz_corpus/)
//
// MPASS_FUZZ_ITERS overrides the default iteration count of `run`.
// Exit code: 0 clean, 1 invariant violation(s), 2 usage error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "fuzz/fuzzer.hpp"
#include "fuzz/mutator.hpp"
#include "fuzz/oracle.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "pe/pe.hpp"
#include "util/bytes.hpp"
#include "util/serialize.hpp"

namespace {

using namespace mpass;
using util::ByteBuf;

int usage() {
  std::fprintf(stderr,
               "usage: mpass_fuzz <run|repro|repro-iter|make-corpus> [options]\n"
               "  run        [--iters N] [--seed S] [--out DIR]"
               " [--attack-every N] [--no-minimize]\n"
               "  repro      FILE...        (.bin PE input | .knobs stub knobs)\n"
               "  repro-iter I [--seed S]\n"
               "  make-corpus DIR\n");
  return 2;
}

const char* opt(int argc, char** argv, const char* name,
                const char* fallback = nullptr) {
  for (int i = 0; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  return fallback;
}

bool flag(int argc, char** argv, const char* name) {
  for (int i = 0; i < argc; ++i)
    if (std::strcmp(argv[i], name) == 0) return true;
  return false;
}

void print_violation(const fuzz::Violation& v) {
  std::fprintf(stderr, "VIOLATION [%s] %s\n",
               std::string(fuzz::kind_name(v.kind)).c_str(),
               v.message.c_str());
}

int cmd_run(int argc, char** argv) {
  fuzz::FuzzConfig cfg;
  const char* env_iters = std::getenv("MPASS_FUZZ_ITERS");
  cfg.iterations = std::strtoull(
      opt(argc, argv, "--iters", env_iters ? env_iters : "10000"), nullptr, 10);
  cfg.seed = std::strtoull(opt(argc, argv, "--seed", "1"), nullptr, 10);
  cfg.attack_every =
      std::strtoull(opt(argc, argv, "--attack-every", "64"), nullptr, 10);
  cfg.minimize = !flag(argc, argv, "--no-minimize");
  if (const char* out = opt(argc, argv, "--out")) cfg.out_dir = out;

  fuzz::Fuzzer fuzzer(cfg);
  const fuzz::FuzzStats stats = [&] {
    OBS_SCOPE("fuzz.campaign");
    return fuzzer.run();
  }();
  obs::write_metrics_snapshot();
  obs::flush_profile();
  std::printf(
      "fuzz: %zu iterations (seed %llu): parse ok %zu / rejected %zu, "
      "%zu stub checks, %zu attack checks, %zu incremental checks, "
      "%zu violation(s)\n",
      stats.iterations, static_cast<unsigned long long>(cfg.seed),
      stats.parse_ok, stats.parse_rejected, stats.stub_checks,
      stats.attack_checks, stats.incremental_checks, stats.findings.size());
  for (const fuzz::Finding& f : stats.findings) {
    std::fprintf(stderr, "iter %zu (mutators:", f.iteration);
    for (const std::string& m : f.mutators) std::fprintf(stderr, " %s", m.c_str());
    std::fprintf(stderr, ")\n  ");
    print_violation(f.violation);
    if (!f.artifact.empty())
      std::fprintf(stderr, "  minimized input (%zu -> %zu bytes): %s\n",
                   f.input.size(), f.minimized.size(),
                   f.artifact.string().c_str());
  }
  return stats.clean() ? 0 : 1;
}

int repro_one(const std::filesystem::path& path) {
  if (path.extension() == ".knobs") {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "error: cannot read %s\n", path.string().c_str());
      return 1;
    }
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    const core::StubOptions opts = fuzz::parse_stub_knobs(text);
    if (const auto v = fuzz::check_stub_options(opts)) {
      print_violation(*v);
      return 1;
    }
    std::printf("%s: clean (stub-options contract holds)\n",
                path.string().c_str());
    return 0;
  }
  const auto data = util::load_file(path);
  if (!data) {
    std::fprintf(stderr, "error: cannot read %s\n", path.string().c_str());
    return 1;
  }
  const auto violations = fuzz::check_pe_invariants(*data);
  for (const fuzz::Violation& v : violations) print_violation(v);
  if (violations.empty())
    std::printf("%s: clean (%zu bytes)\n", path.string().c_str(),
                data->size());
  return violations.empty() ? 0 : 1;
}

int cmd_repro(int argc, char** argv) {
  if (argc < 1) return usage();
  int rc = 0;
  for (int i = 0; i < argc; ++i)
    if (argv[i][0] != '-' && repro_one(argv[i]) != 0) rc = 1;
  return rc;
}

int cmd_repro_iter(int argc, char** argv) {
  if (argc < 1) return usage();
  fuzz::FuzzConfig cfg;
  cfg.seed = std::strtoull(opt(argc, argv, "--seed", "1"), nullptr, 10);
  const std::size_t iter = std::strtoull(argv[0], nullptr, 10);
  fuzz::Fuzzer fuzzer(cfg);
  std::vector<std::string> mutators;
  const ByteBuf input = fuzzer.input_for_iteration(iter, &mutators);
  std::printf("iteration %zu: %zu bytes, mutators:", iter, input.size());
  for (const std::string& m : mutators) std::printf(" %s", m.c_str());
  std::printf("\n");
  const auto violations = fuzz::check_pe_invariants(input);
  for (const fuzz::Violation& v : violations) print_violation(v);
  return violations.empty() ? 0 : 1;
}

// Writes the canonical minimized regression inputs. These are the committed
// contents of tests/fuzz_corpus/ -- regenerate with this command if the
// on-disk format of the corpus ever needs to change.
int cmd_make_corpus(int argc, char** argv) {
  if (argc < 1) return usage();
  const std::filesystem::path dir = argv[0];
  std::filesystem::create_directories(dir);

  // e_lfanew = 0xFFFFFFFD: lfanew + 4 wraps uint32 to 1 and used to pass
  // the looks_like_pe bound, reading the PE signature out of bounds.
  {
    ByteBuf bytes(64, 0);
    util::write_le<std::uint16_t>(bytes.data(), 0x5A4D);
    util::write_le<std::uint32_t>(bytes.data() + 0x3C, 0xFFFFFFFDu);
    util::save_file(dir / "lfanew_wrap.bin", bytes);
  }

  // Section with raw_ptr=0xFFFFFF00, raw_size=0x200: the sum wraps uint32
  // to 0x100 and used to pass the section bounds check, reading 0x200 bytes
  // out of bounds.
  {
    pe::PeFile f;
    f.add_section(".text", ByteBuf(64, 0x90),
                  pe::kScnCode | pe::kScnMemRead | pe::kScnMemExecute);
    ByteBuf bytes = f.build();
    const std::uint32_t lfanew =
        util::read_le<std::uint32_t>(bytes.data() + 0x3C);
    const std::size_t sec = lfanew + 4 + 20 + 224;
    util::write_le<std::uint32_t>(bytes.data() + sec + 16, 0x200u);
    util::write_le<std::uint32_t>(bytes.data() + sec + 20, 0xFFFFFF00u);
    util::save_file(dir / "section_bounds_wrap.bin", bytes);
  }

  // A checksummed file: compute_checksum used to sum the stored CheckSum
  // field as-is, so a built file never verified against itself.
  {
    pe::PeFile f;
    f.add_section(".text", ByteBuf(64, 0xCC),
                  pe::kScnCode | pe::kScnMemRead | pe::kScnMemExecute);
    f.update_checksum();
    util::save_file(dir / "checksum_verify.bin", f.build());
  }

  // bss-only section + overlay: parse used to absorb the header padding
  // into the overlay, growing the file on every round trip.
  {
    pe::PeFile f;
    pe::Section bss;
    bss.name = ".bss";
    bss.vaddr = f.next_free_rva();
    bss.vsize = 0x400;
    bss.characteristics = pe::kScnUninitializedData | pe::kScnMemRead |
                          pe::kScnMemWrite;
    f.sections.push_back(std::move(bss));
    f.overlay = util::to_bytes("OVERLAY!");
    util::save_file(dir / "overlay_hdrpad.bin", f.build());
  }

  // Unaligned SizeOfRawData in front of an overlay: the file-alignment
  // padding between section data and overlay must not leak into overlay.
  {
    pe::PeFile f;
    f.add_section(".data", ByteBuf(100, 0xAB),
                  pe::kScnInitializedData | pe::kScnMemRead);
    f.overlay = util::to_bytes("overlay-tail");
    ByteBuf bytes = f.build();
    const std::uint32_t lfanew =
        util::read_le<std::uint32_t>(bytes.data() + 0x3C);
    util::write_le<std::uint32_t>(bytes.data() + lfanew + 4 + 20 + 224 + 16,
                                  100u);
    util::save_file(dir / "overlay_unaligned.bin", bytes);
  }

  // FileAlignment > SectionAlignment: reparse reads padded raw data back, so
  // SizeOfImage (sized from unpadded bytes) grew on the second round trip.
  {
    pe::PeFile f;
    f.add_section(".data", ByteBuf(512, 0xAB),
                  pe::kScnInitializedData | pe::kScnMemRead);
    ByteBuf bytes = f.build();
    const std::uint32_t lfanew =
        util::read_le<std::uint32_t>(bytes.data() + 0x3C);
    util::write_le<std::uint32_t>(bytes.data() + lfanew + 4 + 20 + 36, 0x8000u);
    util::save_file(dir / "filealign_gt_sectalign.bin", bytes);
  }

  // Section at vaddr = 0xFFFFFFFF: vaddr + span wrapped uint32, so
  // section_by_rva missed the section's own vaddr.
  {
    pe::PeFile f;
    f.add_section(".data", ByteBuf(512, 0xAB),
                  pe::kScnInitializedData | pe::kScnMemRead);
    ByteBuf bytes = f.build();
    const std::uint32_t lfanew =
        util::read_le<std::uint32_t>(bytes.data() + 0x3C);
    const std::size_t sec = lfanew + 4 + 20 + 224;
    util::write_le<std::uint32_t>(bytes.data() + sec + 12, 0xFFFFFFFFu);
    util::save_file(dir / "vaddr_wrap.bin", bytes);
  }

  // Import directory with count = 0xFFFFFFFF: decode_imports reserved the
  // count before reading any payload, throwing bad_alloc straight through
  // read_imports' ParseError handler.
  {
    util::ByteWriter w;
    w.u32(0x31504D49u);  // 'IMP1'
    w.u32(0xFFFFFFFFu);
    pe::PeFile f;
    const std::size_t idx = f.add_section(
        ".idata", w.take(), pe::kScnInitializedData | pe::kScnMemRead);
    f.dirs[pe::kDirImport].rva = f.sections[idx].vaddr;
    f.dirs[pe::kDirImport].size = 8;
    util::save_file(dir / "imports_count_overflow.bin", f.build());
  }

  // Stub knobs: max_gap < min_gap used to underflow the gap bound into a
  // multi-GB allocation; chunk_items = 0 is an invalid below() bound.
  {
    core::StubOptions opts;
    opts.min_gap = 16;
    opts.max_gap = 4;
    std::ofstream(dir / "stub_gap_underflow.knobs", std::ios::binary)
        << fuzz::format_stub_knobs(opts);
  }
  {
    core::StubOptions opts;
    opts.chunk_items = 0;
    std::ofstream(dir / "stub_zero_chunk.knobs", std::ios::binary)
        << fuzz::format_stub_knobs(opts);
  }

  std::printf("wrote regression corpus to %s\n", dir.string().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  argc -= 2;
  argv += 2;
  if (cmd == "run") return cmd_run(argc, argv);
  if (cmd == "repro") return cmd_repro(argc, argv);
  if (cmd == "repro-iter") return cmd_repro_iter(argc, argv);
  if (cmd == "make-corpus") return cmd_make_corpus(argc, argv);
  return usage();
}
