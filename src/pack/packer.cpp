#include "pack/packer.hpp"

#include "isa/isa.hpp"
#include "pe/import.hpp"
#include "pe/pe.hpp"
#include "util/compress.hpp"
#include "util/rng.hpp"
#include "vm/api.hpp"

namespace mpass::pack {

using isa::Assembler;
using isa::Reg;
using util::ByteBuf;

namespace {

struct Style {
  std::string_view sec0;        // placeholder section name
  std::string_view sec1;        // stub+blob section name
  bool compress = true;         // LZSS vs rolling-XOR
  int lead_nops = 0;            // stub decoration (fixed per packer)
};

Style style_of(PackerKind kind) {
  switch (kind) {
    case PackerKind::UpxLike:
      return {"UPX0", "UPX1", true, 2};
    case PackerKind::PespinLike:
      return {".spin0", ".spin1", false, 5};
    case PackerKind::AspackLike:
      return {".adata", ".aspack", true, 8};
  }
  return {"PACK0", "PACK1", true, 0};
}

struct Region {
  std::uint32_t dest_rva = 0;
  std::uint32_t raw_len = 0;
  ByteBuf encoded;
};

constexpr std::uint32_t kXorKeyBase = 0x5A;
constexpr std::uint32_t kXorKeyStep = 13;

/// Emits the rolling-XOR decoder subroutine.
/// Calling convention: r4 = src VA, r5 = dst VA, r6 = dst end VA.
void emit_xor_decoder(Assembler& a) {
  a.movi(Reg::r7, kXorKeyBase);
  const auto loop = a.make_label();
  const auto body = a.make_label();
  const auto done = a.make_label();
  a.bind(loop);
  a.jlt(Reg::r5, Reg::r6, body);
  a.jmp(done);
  a.bind(body);
  a.loadb(Reg::r0, Reg::r4);
  a.xor_(Reg::r0, Reg::r7);
  a.storeb(Reg::r5, Reg::r0);
  a.movi(Reg::r1, kXorKeyStep);
  a.add(Reg::r7, Reg::r1);
  a.movi(Reg::r1, 0xFF);
  a.and_(Reg::r7, Reg::r1);
  a.movi(Reg::r1, 1);
  a.add(Reg::r4, Reg::r1);
  a.add(Reg::r5, Reg::r1);
  a.jmp(loop);
  a.bind(done);
  a.ret();
}

/// Emits the LZSS decoder subroutine (matches util::lzss_compress tokens;
/// caller must point r4 past the 8-byte MLZ1 header).
/// Calling convention: r4 = token stream VA, r5 = dst VA, r6 = dst end VA.
void emit_lzss_decoder(Assembler& a) {
  const auto loop = a.make_label();
  const auto cont = a.make_label();
  const auto have_flags = a.make_label();
  const auto match = a.make_label();
  const auto copy_loop = a.make_label();
  const auto done = a.make_label();

  a.movi(Reg::r7, 1);  // flags register: 1 == empty, reload
  a.bind(loop);
  a.jlt(Reg::r5, Reg::r6, cont);
  a.jmp(done);
  a.bind(cont);
  // Reload the flag byte when exhausted (r7 == 1 sentinel).
  a.movr(Reg::r1, Reg::r7);
  a.movi(Reg::r0, 1);
  a.sub(Reg::r1, Reg::r0);
  a.jnz(Reg::r1, have_flags);
  a.loadb(Reg::r7, Reg::r4);
  a.movi(Reg::r0, 0x100);
  a.or_(Reg::r7, Reg::r0);
  a.movi(Reg::r0, 1);
  a.add(Reg::r4, Reg::r0);
  a.bind(have_flags);
  // bit = r7 & 1; r7 >>= 1.
  a.movr(Reg::r1, Reg::r7);
  a.movi(Reg::r0, 1);
  a.and_(Reg::r1, Reg::r0);
  a.shr(Reg::r7, Reg::r0);
  a.jnz(Reg::r1, match);
  // Literal byte.
  a.loadb(Reg::r2, Reg::r4);
  a.storeb(Reg::r5, Reg::r2);
  a.movi(Reg::r0, 1);
  a.add(Reg::r4, Reg::r0);
  a.add(Reg::r5, Reg::r0);
  a.jmp(loop);
  a.bind(match);
  // token = u16 LE at [r4]; r4 += 2.
  a.loadb(Reg::r2, Reg::r4);
  a.movr(Reg::r3, Reg::r4);
  a.movi(Reg::r0, 1);
  a.add(Reg::r3, Reg::r0);
  a.loadb(Reg::r3, Reg::r3);
  a.movi(Reg::r0, 8);
  a.shl(Reg::r3, Reg::r0);
  a.or_(Reg::r2, Reg::r3);
  a.movi(Reg::r0, 2);
  a.add(Reg::r4, Reg::r0);
  // off = (token >> 4) + 1 in r3; len = (token & 0xF) + 3 in r2.
  a.movr(Reg::r3, Reg::r2);
  a.movi(Reg::r0, 4);
  a.shr(Reg::r3, Reg::r0);
  a.movi(Reg::r0, 1);
  a.add(Reg::r3, Reg::r0);
  a.movi(Reg::r0, 0xF);
  a.and_(Reg::r2, Reg::r0);
  a.movi(Reg::r0, 3);
  a.add(Reg::r2, Reg::r0);
  // copy len bytes from (r5 - off).
  a.bind(copy_loop);
  a.jz(Reg::r2, loop);
  a.movr(Reg::r1, Reg::r5);
  a.sub(Reg::r1, Reg::r3);
  a.loadb(Reg::r0, Reg::r1);
  a.storeb(Reg::r5, Reg::r0);
  a.movi(Reg::r1, 1);
  a.add(Reg::r5, Reg::r1);
  a.sub(Reg::r2, Reg::r1);
  a.jmp(copy_loop);
  a.bind(done);
  a.ret();
}

}  // namespace

std::string_view packer_name(PackerKind kind) {
  switch (kind) {
    case PackerKind::UpxLike: return "UPX";
    case PackerKind::PespinLike: return "PESpin";
    case PackerKind::AspackLike: return "ASPack";
  }
  return "packer";
}

std::optional<ByteBuf> pack(PackerKind kind,
                            std::span<const std::uint8_t> input,
                            [[maybe_unused]] const PackOptions& opts) {
  pe::PeFile orig;
  try {
    orig = pe::PeFile::parse(input);
  } catch (const util::ParseError&) {
    return std::nullopt;
  }
  if (orig.sections.empty()) return std::nullopt;

  // Note: real packers are near-deterministic -- the fixed stub and section
  // names are exactly the learnable artifact Table IV hinges on, so opts.seed
  // intentionally does not randomize the stub.
  const Style style = style_of(kind);

  // Encode each non-empty section.
  std::vector<Region> regions;
  for (const pe::Section& s : orig.sections) {
    if (s.data.empty()) continue;
    Region r;
    r.dest_rva = s.vaddr;
    r.raw_len = static_cast<std::uint32_t>(s.data.size());
    if (style.compress) {
      r.encoded = util::lzss_compress(s.data);
    } else {
      r.encoded = s.data;
      std::uint32_t key = kXorKeyBase;
      for (auto& b : r.encoded) {
        b ^= static_cast<std::uint8_t>(key);
        key = (key + kXorKeyStep) & 0xFF;
      }
    }
    regions.push_back(std::move(r));
  }
  if (regions.empty()) return std::nullopt;

  const std::uint32_t span =
      orig.size_of_image() > 0x1000 ? orig.size_of_image() - 0x1000 : 0x1000;

  pe::PeFile packed;
  packed.machine = orig.machine;
  packed.timestamp = orig.timestamp;
  packed.image_base = orig.image_base;
  packed.section_align = orig.section_align;
  packed.file_align = orig.file_align;
  packed.subsystem = orig.subsystem;
  packed.dos_stub = orig.dos_stub;

  // Placeholder the stub unpacks into (covers all original section RVAs).
  packed.sections.push_back(
      {std::string(style.sec0), 0x1000, span,
       pe::kScnUninitializedData | pe::kScnMemRead | pe::kScnMemWrite |
           pe::kScnMemExecute,
       {}});
  const std::uint32_t stub_rva = packed.next_free_rva();
  const std::uint32_t stub_va = packed.image_base + stub_rva;

  // Two-pass stub assembly: blob VAs depend on the stub code size, which is
  // itself VA-independent.
  auto emit_stub = [&](std::uint32_t blob_base_va) {
    Assembler a;
    for (int i = 0; i < style.lead_nops; ++i) a.nop();
    // Make the unpack window writable+executable.
    a.movi(Reg::r0, packed.image_base + 0x1000);
    a.movi(Reg::r1, span);
    a.movi(Reg::r2, 3);
    a.sys(static_cast<std::uint16_t>(vm::Api::VProtect));
    const auto decoder = a.make_label();
    std::uint32_t blob_off = 0;
    for (const Region& r : regions) {
      const std::uint32_t skip = style.compress ? 8u : 0u;  // MLZ1 header
      a.movi(Reg::r4, blob_base_va + blob_off + skip);
      a.movi(Reg::r5, packed.image_base + r.dest_rva);
      a.movi(Reg::r6, packed.image_base + r.dest_rva + r.raw_len);
      a.call(decoder);
      blob_off += static_cast<std::uint32_t>(r.encoded.size());
    }
    a.jmp_va(packed.image_base + orig.entry_point);
    a.bind(decoder);
    if (style.compress)
      emit_lzss_decoder(a);
    else
      emit_xor_decoder(a);
    return a;
  };

  const std::size_t code_size = emit_stub(0).finish(stub_va).size();
  const std::uint32_t blob_base_va =
      stub_va + util::align_up(static_cast<std::uint32_t>(code_size), 4);
  ByteBuf stub_bytes = emit_stub(blob_base_va).finish(stub_va);
  stub_bytes.resize(util::align_up(static_cast<std::uint32_t>(code_size), 4),
                    0);
  for (const Region& r : regions)
    stub_bytes.insert(stub_bytes.end(), r.encoded.begin(), r.encoded.end());

  packed.add_section(style.sec1, std::move(stub_bytes),
                     pe::kScnCode | pe::kScnMemRead | pe::kScnMemExecute);
  packed.entry_point = stub_rva;

  // Packers keep a minimal import table.
  const std::vector<pe::Import> imports = {
      {static_cast<std::uint16_t>(vm::Api::VProtect), "VProtect"},
      {static_cast<std::uint16_t>(vm::Api::ExitProcess), "ExitProcess"},
  };
  pe::attach_import_section(packed, imports);

  packed.overlay = orig.overlay;
  return packed.build();
}

}  // namespace mpass::pack
