// mpass — command-line front end for the library.
//
//   mpass gen   --malware|--benign --seed N --out FILE   generate a sample
//   mpass run   FILE                                     sandbox a sample
//   mpass scan  FILE                                     score with all models
//   mpass attack FILE [--target NAME] [--out FILE]       run MPass
//   mpass pack  FILE --packer upx|pespin|aspack --out F  pack a sample
//   mpass pem   [--n N]                                  PEM section ranking
//   mpass disasm FILE                                    disassemble entry code
//   mpass info  FILE                                     PE structure dump
#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "core/mpass.hpp"
#include "corpus/generator.hpp"
#include "detectors/zoo.hpp"
#include "explain/pem.hpp"
#include "isa/isa.hpp"
#include "pack/packer.hpp"
#include "pe/import.hpp"
#include "util/entropy.hpp"
#include "util/serialize.hpp"
#include "vm/sandbox.hpp"
#include "vm/trace_io.hpp"

namespace {

using namespace mpass;
using util::ByteBuf;

int usage() {
  std::fprintf(stderr,
               "usage: mpass <gen|run|scan|attack|pack|pem|disasm|info|corpus-stats> "
               "[options]\n"
               "  gen    --malware|--benign [--seed N] --out FILE\n"
               "  run    FILE\n"
               "  scan   FILE\n"
               "  attack FILE [--target MalConv|NonNeg|LightGBM|MalGCG|AV1..5]"
               " [--out FILE] [--seed N]\n"
               "  pack   FILE --packer upx|pespin|aspack --out FILE\n"
               "  pem    [--n N]\n"
               "  disasm FILE\n"
               "  info   FILE\n"
               "  corpus-stats [--n N]\n"
               "  gen-corpus --dir DIR [--malware N] [--benign N]\n");
  return 2;
}

const char* opt(int argc, char** argv, const char* name,
                const char* fallback = nullptr) {
  for (int i = 0; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  return fallback;
}

bool flag(int argc, char** argv, const char* name) {
  for (int i = 0; i < argc; ++i)
    if (std::strcmp(argv[i], name) == 0) return true;
  return false;
}

ByteBuf read_file_or_die(const char* path) {
  auto data = util::load_file(path);
  if (!data) {
    std::fprintf(stderr, "error: cannot read %s\n", path);
    std::exit(1);
  }
  return *data;
}

int cmd_gen(int argc, char** argv) {
  const char* out = opt(argc, argv, "--out");
  if (!out) return usage();
  const std::uint64_t seed =
      std::strtoull(opt(argc, argv, "--seed", "1"), nullptr, 10);
  const bool malicious = !flag(argc, argv, "--benign");
  const corpus::CompiledSample s =
      malicious ? corpus::make_malware(seed) : corpus::make_benign(seed);
  util::save_file(out, s.bytes());
  std::printf("%s sample (family %s, %zu bytes) -> %s\n",
              malicious ? "malware" : "benign",
              std::string(corpus::family_name(s.meta.family)).c_str(),
              s.bytes().size(), out);
  return 0;
}

int cmd_run(int argc, char** argv) {
  if (argc < 1) return usage();
  const ByteBuf file = read_file_or_die(argv[0]);
  const vm::Sandbox sandbox;
  const vm::SandboxReport r = sandbox.analyze(file);
  std::printf("parsed=%d ran=%d malicious=%d steps=%llu (%s)\n", r.parsed,
              r.executed_ok, r.malicious,
              static_cast<unsigned long long>(r.run.steps),
              vm::summarize_trace(r.trace()).c_str());
  if (!r.run.fault_reason.empty())
    std::printf("fault: %s\n", r.run.fault_reason.c_str());
  std::printf("%s", vm::format_trace(r.trace()).c_str());
  return r.parsed ? 0 : 1;
}

int cmd_scan(int argc, char** argv) {
  if (argc < 1) return usage();
  const ByteBuf file = read_file_or_die(argv[0]);
  detect::ModelZoo& zoo = detect::ModelZoo::instance();
  for (detect::Detector* d : zoo.offline())
    std::printf("%-10s score=%.4f threshold=%.4f -> %s\n",
                std::string(d->name()).c_str(), d->score(file), d->threshold(),
                d->is_malicious(file) ? "MALICIOUS" : "benign");
  for (const auto& av : zoo.avs())
    std::printf("%-10s score=%.4f threshold=%.4f -> %s\n",
                std::string(av->name()).c_str(), av->score(file),
                av->threshold(),
                av->is_malicious(file) ? "MALICIOUS" : "benign");
  return 0;
}

int cmd_attack(int argc, char** argv) {
  if (argc < 1) return usage();
  const ByteBuf file = read_file_or_die(argv[0]);
  const char* target_name = opt(argc, argv, "--target", "MalConv");
  const char* out = opt(argc, argv, "--out");
  const std::uint64_t seed =
      std::strtoull(opt(argc, argv, "--seed", "7"), nullptr, 10);

  detect::ModelZoo& zoo = detect::ModelZoo::instance();
  const detect::Detector* target = nullptr;
  for (detect::Detector* d : zoo.offline())
    if (d->name() == target_name) target = d;
  if (!target)
    for (const auto& av : zoo.avs())
      if (av->name() == target_name) target = av.get();
  if (!target) {
    std::fprintf(stderr, "unknown target %s\n", target_name);
    return 1;
  }
  std::printf("target %s: original score %.4f (threshold %.4f)\n", target_name,
              target->score(file), target->threshold());
  core::Mpass attack({}, zoo.benign_pool(),
                     zoo.known_nets_excluding(target_name));
  detect::HardLabelOracle oracle(*target, 100);
  const core::MpassResult r = attack.run(file, oracle, seed);
  std::printf("success=%d queries=%zu APR=%.0f%%\n", r.success, r.queries,
              100.0 * r.apr);
  if (r.success) {
    std::printf("AE score: %.4f\n", target->score(r.adversarial));
    const vm::Sandbox sandbox;
    std::printf("functionality preserved: %s\n",
                sandbox.functionality_preserved(file, r.adversarial) ? "yes"
                                                                     : "NO");
    if (out) {
      util::save_file(out, r.adversarial);
      std::printf("AE written to %s\n", out);
    }
  }
  return r.success ? 0 : 1;
}

int cmd_pack(int argc, char** argv) {
  if (argc < 1) return usage();
  const ByteBuf file = read_file_or_die(argv[0]);
  const char* kind_name = opt(argc, argv, "--packer", "upx");
  const char* out = opt(argc, argv, "--out");
  if (!out) return usage();
  pack::PackerKind kind = pack::PackerKind::UpxLike;
  if (std::strcmp(kind_name, "pespin") == 0)
    kind = pack::PackerKind::PespinLike;
  else if (std::strcmp(kind_name, "aspack") == 0)
    kind = pack::PackerKind::AspackLike;
  const auto packed = pack::pack(kind, file);
  if (!packed) {
    std::fprintf(stderr, "packing failed (not a PE?)\n");
    return 1;
  }
  util::save_file(out, *packed);
  std::printf("%zu -> %zu bytes (%s) -> %s\n", file.size(), packed->size(),
              std::string(pack::packer_name(kind)).c_str(), out);
  return 0;
}

int cmd_pem(int argc, char** argv) {
  const std::size_t n =
      std::strtoull(opt(argc, argv, "--n", "12"), nullptr, 10);
  detect::ModelZoo& zoo = detect::ModelZoo::instance();
  std::vector<ByteBuf> malware;
  for (std::size_t i = 0; i < n; ++i)
    malware.push_back(corpus::make_malware(0xC11 + i).bytes());
  std::vector<const detect::Detector*> known;
  for (detect::Detector* d : zoo.offline()) known.push_back(d);
  const explain::PemResult res = explain::run_pem(malware, known, {});
  for (std::size_t m = 0; m < res.model_names.size(); ++m) {
    std::printf("%s top-3:", res.model_names[m].c_str());
    for (const std::string& s : res.per_model_topk[m])
      std::printf(" %s", s.c_str());
    std::printf("\n");
  }
  std::printf("critical sections:");
  for (const std::string& s : res.critical) std::printf(" %s", s.c_str());
  std::printf("\n");
  return 0;
}

int cmd_disasm(int argc, char** argv) {
  if (argc < 1) return usage();
  const ByteBuf file = read_file_or_die(argv[0]);
  const pe::PeFile f = pe::PeFile::parse(file);
  const auto idx = f.section_by_rva(f.entry_point);
  if (!idx) {
    std::fprintf(stderr, "entry point outside any section\n");
    return 1;
  }
  const pe::Section& s = f.sections[*idx];
  const std::uint32_t off = f.entry_point - s.vaddr;
  std::printf("; entry at rva 0x%x (%s+0x%x)\n", f.entry_point,
              s.name.c_str(), off);
  util::ByteReader r({s.data.data() + off, s.data.size() - off});
  for (int i = 0; i < 64 && !r.eof(); ++i) {
    try {
      std::printf("%s\n", isa::to_string(isa::decode(r)).c_str());
    } catch (const util::ParseError&) {
      std::printf("; <data>\n");
      break;
    }
  }
  return 0;
}

int cmd_gen_corpus(int argc, char** argv) {
  const char* dir = opt(argc, argv, "--dir");
  if (!dir) return usage();
  const std::size_t mal =
      std::strtoull(opt(argc, argv, "--malware", "20"), nullptr, 10);
  const std::size_t ben =
      std::strtoull(opt(argc, argv, "--benign", "20"), nullptr, 10);
  const std::uint64_t seed =
      std::strtoull(opt(argc, argv, "--seed", "1"), nullptr, 10);
  const corpus::Dataset ds = corpus::generate_dataset(seed, mal, ben);
  corpus::save_dataset(ds, dir);
  std::printf("wrote %zu samples (%zu malware, %zu benign) to %s\n",
              ds.samples.size(), ds.count(1), ds.count(0), dir);
  return 0;
}

int cmd_corpus_stats(int argc, char** argv) {
  const std::size_t n =
      std::strtoull(opt(argc, argv, "--n", "50"), nullptr, 10);
  struct Acc {
    std::size_t count = 0;
    double bytes = 0, sections = 0, entropy = 0, overlay = 0;
  };
  std::map<std::string, Acc> by_family;
  for (std::size_t i = 0; i < n; ++i) {
    const corpus::CompiledSample s = (i % 2 == 0)
                                         ? corpus::make_malware(0x57A7 + i)
                                         : corpus::make_benign(0x57A7 + i);
    Acc& acc = by_family[std::string(corpus::family_name(s.meta.family))];
    const ByteBuf bytes = s.bytes();
    ++acc.count;
    acc.bytes += static_cast<double>(bytes.size());
    acc.sections += static_cast<double>(s.pe.sections.size());
    acc.entropy += util::shannon_entropy(bytes);
    acc.overlay += s.pe.overlay.empty() ? 0.0 : 1.0;
  }
  std::printf("%-16s %6s %10s %9s %8s %8s\n", "family", "count", "avg bytes",
              "sections", "entropy", "overlay");
  for (const auto& [family, acc] : by_family) {
    const double c = static_cast<double>(acc.count);
    std::printf("%-16s %6zu %10.0f %9.1f %8.2f %7.0f%%\n", family.c_str(),
                acc.count, acc.bytes / c, acc.sections / c, acc.entropy / c,
                100.0 * acc.overlay / c);
  }
  return 0;
}

int cmd_info(int argc, char** argv) {
  if (argc < 1) return usage();
  const ByteBuf file = read_file_or_die(argv[0]);
  const pe::PeFile f = pe::PeFile::parse(file);
  std::printf("machine=0x%x timestamp=0x%x entry=0x%x image_base=0x%x\n",
              f.machine, f.timestamp, f.entry_point, f.image_base);
  std::printf("%-10s %-10s %-10s %-8s %s\n", "name", "rva", "size", "flags",
              "entropy");
  for (const pe::Section& s : f.sections)
    std::printf("%-10s 0x%-8x %-10zu %c%c%c      %.2f\n", s.name.c_str(),
                s.vaddr, s.data.size(),
                (s.characteristics & pe::kScnMemRead) ? 'r' : '-',
                s.writable() ? 'w' : '-', s.executable() ? 'x' : '-',
                util::shannon_entropy(s.data));
  if (!f.overlay.empty())
    std::printf("overlay    %-10s %-10zu          %.2f\n", "-",
                f.overlay.size(), util::shannon_entropy(f.overlay));
  const auto imports = pe::read_imports(f);
  std::printf("%zu imports:", imports.size());
  for (const pe::Import& imp : imports) std::printf(" %s", imp.name.c_str());
  std::printf("\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  argc -= 2;
  argv += 2;
  try {
    if (cmd == "gen") return cmd_gen(argc, argv);
    if (cmd == "run") return cmd_run(argc, argv);
    if (cmd == "scan") return cmd_scan(argc, argv);
    if (cmd == "attack") return cmd_attack(argc, argv);
    if (cmd == "pack") return cmd_pack(argc, argv);
    if (cmd == "pem") return cmd_pem(argc, argv);
    if (cmd == "disasm") return cmd_disasm(argc, argv);
    if (cmd == "info") return cmd_info(argc, argv);
    if (cmd == "corpus-stats") return cmd_corpus_stats(argc, argv);
    if (cmd == "gen-corpus") return cmd_gen_corpus(argc, argv);
  } catch (const util::ParseError& e) {
    std::fprintf(stderr, "parse error: %s\n", e.what());
    return 1;
  }
  return usage();
}
