#include "vm/sandbox.hpp"

namespace mpass::vm {

SandboxReport Sandbox::analyze(const util::ByteBuf& file) const {
  SandboxReport report;
  try {
    Machine m(file);
    report.parsed = true;
    report.run = m.run(fuel_);
  } catch (const util::ParseError&) {
    return report;
  }
  report.executed_ok = report.run.ok();
  report.malicious =
      report.executed_ok && report.run.malicious_calls() > 0;
  return report;
}

bool Sandbox::functionality_preserved(const util::ByteBuf& original,
                                      const util::ByteBuf& modified) const {
  const SandboxReport a = analyze(original);
  const SandboxReport b = analyze(modified);
  if (!a.executed_ok || !b.executed_ok) return false;
  return traces_equal(a.trace(), b.trace());
}

}  // namespace mpass::vm
