#include "detectors/models.hpp"

namespace mpass::detect {

void ByteConvDetector::save(util::Archive& ar) const {
  ar.tag("byteconv-detector");
  ar.str(name_);
  ar.f64(threshold());
  net_.save(ar);
}

void ByteConvDetector::load(util::Unarchive& ar) {
  ar.tag("byteconv-detector");
  name_ = ar.str();
  set_threshold(ar.f64());
  net_.load(ar);
}

void GbdtDetector::save(util::Archive& ar) const {
  ar.tag("gbdt-detector");
  ar.str(name_);
  ar.f64(threshold());
  ar.u32(vendor_ ? 1 : 0);
  gbdt_.save(ar);
}

void GbdtDetector::load(util::Unarchive& ar) {
  ar.tag("gbdt-detector");
  name_ = ar.str();
  set_threshold(ar.f64());
  vendor_ = ar.u32() != 0;
  gbdt_.load(ar);
}

ml::ByteConvConfig malconv_config() {
  ml::ByteConvConfig cfg;
  cfg.max_len = 16384;
  cfg.embed_dim = 8;
  cfg.filters = 16;
  cfg.width = 32;
  cfg.stride = 16;
  cfg.hidden = 16;
  cfg.gated = true;
  return cfg;
}

ml::ByteConvConfig nonneg_config() {
  ml::ByteConvConfig cfg = malconv_config();
  cfg.nonneg = true;
  return cfg;
}

ml::ByteConvConfig malgcg_config() {
  ml::ByteConvConfig cfg = malconv_config();
  cfg.channel_gating = true;
  cfg.width = 48;
  cfg.stride = 24;
  return cfg;
}

ml::GbdtConfig lightgbm_config() {
  ml::GbdtConfig cfg;
  cfg.trees = 100;
  cfg.max_depth = 5;
  cfg.bins = 64;
  cfg.learning_rate = 0.1f;
  cfg.feature_fraction = 0.8f;
  return cfg;
}

}  // namespace mpass::detect
