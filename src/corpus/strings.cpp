#include "corpus/strings.hpp"

namespace mpass::corpus {

namespace {
using sv = std::string_view;

constexpr sv kBenign[] = {
    "Welcome to the application. Press F1 for help.",
    "Usage: tool [options] <input file>",
    "Copyright (c) 2021 Contoso Software. All rights reserved.",
    "Error: could not open the configuration file.",
    "Processing complete. 0 warnings, 0 errors.",
    "Select a file to open from the recent documents list.",
    "Auto-save is enabled. Documents are saved every 10 minutes.",
    "Checking for updates, please wait...",
    "The operation completed successfully.",
    "Invalid input: expected a number between 1 and 100.",
    "Language: English (United States)",
    "Thank you for registering your product.",
    "Print preview is not available for this document type.",
    "Rendering page %d of %d",
    "Settings saved to the local profile.",
    "Click Next to continue the installation.",
    "A newer version is available. Would you like to download it?",
    "Export finished: report.csv written to the documents folder.",
};

constexpr sv kMaliciousUrls[] = {
    "http://c2-panel.badnetwork.xyz/gate.php",
    "http://185.244.25.113:8080/beacon",
    "http://qd7pcafncosqfqu3ha6fcx4h6sovnbv.onion/upload",
    "http://update-checker.totally-legit-cdn.ru/cfg.bin",
    "http://pool.minexmr-proxy.top:3333",
    "http://files.dropzone-delivery.cc/stage2.bin",
};

constexpr sv kRunKeys[] = {
    "HKLM\\Software\\Microsoft\\Windows\\CurrentVersion\\Run\\svhost32",
    "HKCU\\Software\\Microsoft\\Windows\\CurrentVersion\\Run\\WinUpdateSvc",
    "HKLM\\Software\\Microsoft\\Windows\\CurrentVersion\\RunOnce\\ms_telemetry",
    "HKCU\\Software\\Microsoft\\Windows\\CurrentVersion\\Run\\AdobeFlashHelper",
};

constexpr sv kRansomNotes[] = {
    "YOUR FILES HAVE BEEN ENCRYPTED! Send 0.5 BTC to recover them.",
    "All your documents are locked with military grade encryption.",
    "Do not attempt to restore from backup. Pay within 72 hours.",
    "Contact decryptor@securemail.onion with your victim ID.",
};

constexpr sv kDropperNames[] = {
    "C:/Windows/Temp/svhost32.exe",
    "C:/Users/victim/AppData/winupdate.exe",
    "C:/ProgramData/ms_telemetry.exe",
    "C:/Windows/Temp/flashplayer_upd.exe",
};

constexpr sv kBenignSections[] = {
    ".text", ".data", ".rdata", ".idata", ".rsrc", ".reloc", ".bss", ".tls",
};

constexpr sv kShadySections[] = {
    ".x1", "qwrt", ".enc0", "lzdat", ".s7", "blob",
};

constexpr sv kBenignFiles[] = {
    "C:/Windows/config.ini",
    "C:/Users/victim/notes.md",
    "C:/Users/victim/output.log",
    "C:/Users/victim/doc_report.txt",
};
}  // namespace

std::span<const sv> benign_strings() { return kBenign; }
std::span<const sv> malicious_urls() { return kMaliciousUrls; }
std::span<const sv> registry_run_keys() { return kRunKeys; }
std::span<const sv> ransom_notes() { return kRansomNotes; }
std::span<const sv> dropper_names() { return kDropperNames; }
std::span<const sv> benign_section_names() { return kBenignSections; }
std::span<const sv> shady_section_names() { return kShadySections; }
std::span<const sv> benign_file_names() { return kBenignFiles; }

}  // namespace mpass::corpus
