#include "obs/trace_check.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "obs/json.hpp"

namespace mpass::obs {

namespace {

void add_error(std::vector<std::string>* errors, std::string_view where,
               std::size_t line_no, std::string_view msg) {
  if (!errors) return;
  std::string e(where);
  e += ':';
  e += std::to_string(line_no);
  e += ": ";
  e += msg;
  errors->push_back(std::move(e));
}

bool want_str(const Json& obj, std::string_view key, std::string* out) {
  const Json* v = obj.get(key);
  if (!v || !v->is_string()) return false;
  if (out) *out = v->str();
  return true;
}

bool want_num(const Json& obj, std::string_view key, double* out) {
  const Json* v = obj.get(key);
  if (!v || !v->is_number()) return false;
  if (out) *out = v->number();
  return true;
}

bool want_bool(const Json& obj, std::string_view key, bool* out) {
  const Json* v = obj.get(key);
  if (!v || !v->is_bool()) return false;
  if (out) *out = v->boolean();
  return true;
}

std::optional<std::string> read_text(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream ss;
  ss << in.rdbuf();
  return std::move(ss).str();
}

}  // namespace

std::optional<SampleTraceData> parse_sample_trace(
    std::string_view text, std::string_view where,
    std::vector<std::string>* errors) {
  SampleTraceData out;
  const std::size_t before = errors ? errors->size() : 0;
  bool has_start = false;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    const std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    ++line_no;

    const std::optional<Json> parsed = Json::parse(line);
    if (!parsed || !parsed->is_object()) {
      add_error(errors, where, line_no, "malformed JSON object");
      continue;
    }
    const Json& obj = *parsed;
    std::string ev;
    if (!want_str(obj, "ev", &ev)) {
      add_error(errors, where, line_no, "missing \"ev\"");
      continue;
    }
    if (line_no == 1 && ev != "start") {
      add_error(errors, where, line_no, "first event must be \"start\"");
    }
    if (out.has_end) {
      add_error(errors, where, line_no, "event after \"end\"");
      continue;
    }

    if (ev == "start") {
      double seed = 0, budget = 0;
      if (!want_str(obj, "attack", &out.attack) ||
          !want_str(obj, "target", &out.target) ||
          !want_str(obj, "sample", &out.sample) ||
          !want_num(obj, "seed", &seed) || !want_num(obj, "budget", &budget)) {
        add_error(errors, where, line_no, "bad \"start\" fields");
        continue;
      }
      if (out.sample.size() != 16 ||
          out.sample.find_first_not_of("0123456789abcdef") !=
              std::string::npos)
        add_error(errors, where, line_no, "\"sample\" is not a 16-hex digest");
      if (has_start)
        add_error(errors, where, line_no, "duplicate \"start\"");
      has_start = true;
      out.seed = static_cast<std::uint64_t>(seed);
      out.budget = static_cast<std::uint64_t>(budget);
    } else if (ev == "query") {
      SampleTraceData::Query q;
      double i = 0;
      if (!want_num(obj, "i", &i) ||
          !want_bool(obj, "malicious", &q.malicious) ||
          !want_num(obj, "score", &q.score)) {
        add_error(errors, where, line_no, "bad \"query\" fields");
        continue;
      }
      q.i = static_cast<std::uint64_t>(i);
      if (q.i != out.queries.size() + 1)
        add_error(errors, where, line_no,
                  "query index " + std::to_string(q.i) +
                      " not contiguous (expected " +
                      std::to_string(out.queries.size() + 1) + ")");
      if (q.score < 0.0 || q.score > 1.0)
        add_error(errors, where, line_no, "query score outside [0,1]");
      out.queries.push_back(q);
    } else if (ev == "opt") {
      SampleTraceData::Opt o;
      double iter = 0;
      if (!want_num(obj, "iter", &iter) || !want_num(obj, "loss", &o.loss)) {
        add_error(errors, where, line_no, "bad \"opt\" fields");
        continue;
      }
      o.iter = static_cast<std::uint64_t>(iter);
      if (!out.opts.empty() && o.iter <= out.opts.back().iter)
        add_error(errors, where, line_no, "opt iter not increasing");
      out.opts.push_back(o);
    } else if (ev == "action") {
      if (!want_str(obj, "kind", nullptr)) {
        add_error(errors, where, line_no, "bad \"action\" fields");
        continue;
      }
      ++out.actions;
    } else if (ev == "end") {
      double queries = 0;
      if (!want_bool(obj, "success", &out.success) ||
          !want_num(obj, "queries", &queries) ||
          !want_num(obj, "apr", &out.apr) || !want_num(obj, "ms", &out.ms) ||
          !want_bool(obj, "functional", &out.functional)) {
        add_error(errors, where, line_no, "bad \"end\" fields");
        continue;
      }
      out.end_queries = static_cast<std::uint64_t>(queries);
      out.has_end = true;
      if (out.end_queries != out.queries.size())
        add_error(errors, where, line_no,
                  "end.queries=" + std::to_string(out.end_queries) +
                      " != emitted query events (" +
                      std::to_string(out.queries.size()) + ")");
    } else {
      add_error(errors, where, line_no, "unknown event \"" + ev + "\"");
    }
  }

  if (line_no == 0) {
    add_error(errors, where, 0, "empty trace file");
    return std::nullopt;
  }
  if (!has_start) add_error(errors, where, line_no, "missing \"start\"");
  if (!out.has_end) add_error(errors, where, line_no, "missing \"end\"");
  if (errors && errors->size() != before) return std::nullopt;
  return out;
}

TraceCheckReport check_trace_dir(const std::filesystem::path& dir) {
  TraceCheckReport rep;
  if (!std::filesystem::is_directory(dir)) {
    rep.errors.push_back("not a directory: " + dir.string());
    return rep;
  }

  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir))
    if (entry.path().extension() == ".jsonl") files.push_back(entry.path());
  std::sort(files.begin(), files.end());

  auto count_lines = [&rep](std::string_view text) {
    for (char c : text)
      if (c == '\n') ++rep.lines;
  };

  for (const std::filesystem::path& path : files) {
    ++rep.files;
    const std::string name = path.filename().string();
    const std::optional<std::string> text = read_text(path);
    if (!text) {
      rep.errors.push_back(name + ": unreadable");
      continue;
    }
    count_lines(*text);

    if (name == "cells.jsonl" || name == "pem.jsonl") {
      std::size_t line_no = 0;
      std::size_t pos = 0;
      while (pos < text->size()) {
        std::size_t eol = text->find('\n', pos);
        if (eol == std::string::npos) eol = text->size();
        const std::string_view line =
            std::string_view(*text).substr(pos, eol - pos);
        pos = eol + 1;
        if (line.empty()) continue;
        ++line_no;
        const std::optional<Json> parsed = Json::parse(line);
        if (!parsed || !parsed->is_object()) {
          add_error(&rep.errors, name, line_no, "malformed JSON object");
          continue;
        }
        std::string ev;
        if (!want_str(*parsed, "ev", &ev)) {
          add_error(&rep.errors, name, line_no, "missing \"ev\"");
          continue;
        }
        if (name == "cells.jsonl") {
          CellTraceData c;
          double n = 0, traced = 0, tq = 0;
          if (ev != "cell" || !want_str(*parsed, "attack", &c.attack) ||
              !want_str(*parsed, "target", &c.target) ||
              !want_num(*parsed, "n", &n) ||
              !want_num(*parsed, "traced", &traced) ||
              !want_num(*parsed, "total_queries", &tq) ||
              !want_num(*parsed, "wall_ms", &c.wall_ms)) {
            add_error(&rep.errors, name, line_no, "bad \"cell\" line");
            continue;
          }
          c.n = static_cast<std::uint64_t>(n);
          c.traced = static_cast<std::uint64_t>(traced);
          c.total_queries = static_cast<std::uint64_t>(tq);
          rep.data.cells.push_back(std::move(c));
        } else {
          const Json* ranking = parsed->get("ranking");
          bool ranking_ok = ranking && ranking->is_array();
          if (ranking_ok)
            for (const Json& item : ranking->items())
              if (!item.is_string()) ranking_ok = false;
          if (ev != "pem" || !want_str(*parsed, "model", nullptr) ||
              !ranking_ok) {
            add_error(&rep.errors, name, line_no, "bad \"pem\" line");
            continue;
          }
          ++rep.data.pem_lines;
        }
      }
      continue;
    }

    if (auto sample = parse_sample_trace(*text, name, &rep.errors))
      rep.data.samples.push_back(std::move(*sample));
  }

  if (std::filesystem::exists(dir / "metrics.json")) {
    const std::optional<std::string> text = read_text(dir / "metrics.json");
    const std::optional<Json> parsed =
        text ? Json::parse(*text) : std::nullopt;
    if (!parsed || !parsed->is_object() || !parsed->get("counters") ||
        !parsed->get("histograms"))
      rep.errors.push_back("metrics.json: malformed snapshot");
    else
      rep.data.has_metrics = true;
  }

  // Query-budget reconciliation: per (attack, target), the *last* cell line
  // wins (re-runs append). Only fully traced cells (traced == n and all n
  // sample files present) are reconcilable -- cache hits execute nothing
  // and leave no fresh trace.
  std::map<std::pair<std::string, std::string>, const CellTraceData*> last;
  for (const CellTraceData& c : rep.data.cells)
    last[{c.attack, c.target}] = &c;
  std::map<std::pair<std::string, std::string>,
           std::pair<std::uint64_t, std::uint64_t>>
      sums;  // (files, sum of end_queries)
  for (const SampleTraceData& s : rep.data.samples) {
    auto& [n_files, q] = sums[{s.attack, s.target}];
    ++n_files;
    q += s.end_queries;
  }
  for (const auto& [key, cell] : last) {
    if (cell->traced != cell->n) {
      rep.warnings.push_back("cell " + key.first + " x " + key.second +
                             ": " + std::to_string(cell->n - cell->traced) +
                             " cache hits, not reconcilable");
      continue;
    }
    const auto it = sums.find(key);
    const std::uint64_t n_files = it == sums.end() ? 0 : it->second.first;
    const std::uint64_t q = it == sums.end() ? 0 : it->second.second;
    if (n_files != cell->n) {
      rep.errors.push_back("cell " + key.first + " x " + key.second +
                           ": traced=" + std::to_string(cell->traced) +
                           " but " + std::to_string(n_files) +
                           " sample trace files");
      continue;
    }
    if (q != cell->total_queries)
      rep.errors.push_back(
          "cell " + key.first + " x " + key.second + ": sample query sum " +
          std::to_string(q) + " != cell total_queries " +
          std::to_string(cell->total_queries));
  }

  return rep;
}

}  // namespace mpass::obs
