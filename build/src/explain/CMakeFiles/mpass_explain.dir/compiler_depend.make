# Empty compiler generated dependencies file for mpass_explain.
# This may be replaced when dependencies are built.
