file(REMOVE_RECURSE
  "CMakeFiles/mpass_ml.dir/byteconv.cpp.o"
  "CMakeFiles/mpass_ml.dir/byteconv.cpp.o.d"
  "CMakeFiles/mpass_ml.dir/gbdt.cpp.o"
  "CMakeFiles/mpass_ml.dir/gbdt.cpp.o.d"
  "CMakeFiles/mpass_ml.dir/gru.cpp.o"
  "CMakeFiles/mpass_ml.dir/gru.cpp.o.d"
  "CMakeFiles/mpass_ml.dir/param.cpp.o"
  "CMakeFiles/mpass_ml.dir/param.cpp.o.d"
  "libmpass_ml.a"
  "libmpass_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpass_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
