// Reproduces the §IV-A functionality verification: the percentage of each
// attack's successful AEs whose sandbox behavior trace matches the original
// (paper: only RLA loses functionality, on 23% of its AEs).
#include "bench_common.hpp"

int main() {
  using namespace mpass;
  const auto cfg = harness::ExperimentConfig::from_env();
  bench::BenchReport report("functionality");
  const auto cells = harness::offline_grid(cfg);
  report.add_cells(cells);
  bench::print_grid(
      "Functionality-preserving rate (%) of successful AEs (sandbox check)",
      cells, bench::offline_targets(), bench::main_attacks(),
      [](const harness::CellStats& c) { return c.functional; });
  std::printf(
      "Paper (Section IV-A): 23%% of RLA AEs lose functionality; all other\n"
      "methods preserve it (i.e. RLA ~77%%, everything else 100%%).\n");
  return 0;
}
