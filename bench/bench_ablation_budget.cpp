// Ablation bench: MPass ASR as a function of the hard-label query budget
// (the paper fixes 100 queries for all attacks; this shows where MPass's
// successes actually land -- mostly in the first few queries).
#include "bench_common.hpp"
#include "attack/mpass_attack.hpp"

int main() {
  using namespace mpass;
  auto cfg = harness::ExperimentConfig::from_env();
  bench::BenchReport report("ablation_budget");
  cfg.n_samples = std::min<std::size_t>(cfg.n_samples, 25);
  detect::ModelZoo& zoo = detect::ModelZoo::instance();
  const detect::Detector& target = zoo.offline_by_name("MalGCG");
  std::vector<const detect::Detector*> gate = {&target};
  const auto samples = harness::make_attack_set(gate, cfg.n_samples, cfg.seed);

  util::Table table("Ablation: query budget vs MPass ASR on MalGCG");
  table.header({"Budget", "ASR (%)", "AVQ"});
  for (std::size_t budget : {1ul, 5ul, 20ul, 100ul}) {
    harness::ExperimentConfig c = cfg;
    c.max_queries = budget;
    attack::MpassAttack atk("MPass", attack::MpassAttack::default_config(),
                            zoo.benign_pool(),
                            zoo.known_nets_excluding("MalGCG"));
    const harness::CellStats stats =
        harness::run_cell(atk, target, samples, samples, c);
    report.add_cells({stats});
    table.row({std::to_string(budget), util::Table::num(stats.asr),
               util::Table::num(stats.avq)});
    std::fprintf(stderr, "[budget] %zu done\n", budget);
  }
  std::cout << table.render();
  std::printf("(n=%zu malware)\n", samples.size());
  return 0;
}
