// Sandbox: the Cuckoo-sandbox substitute. Executes a PE sample in the MVM
// emulator and reports its behavior trace, whether it ran to completion, and
// whether it exhibited malicious behavior (>= 1 hard-malicious API call;
// gray-area APIs like Connect or RegSetAutorun alone do not convict -- see
// vm::is_hard_malicious).
//
// functionality_preserved() is the paper's AE-validation check: the modified
// sample must produce the *identical* effectful API-call sequence (with
// argument digests) as the original.
#pragma once

#include "util/bytes.hpp"
#include "vm/machine.hpp"

namespace mpass::vm {

struct SandboxReport {
  RunResult run;
  bool parsed = false;     // file was a loadable PE
  bool executed_ok = false;  // parsed && ran to clean halt
  bool malicious = false;  // executed_ok && sensitive APIs observed

  const Trace& trace() const { return run.trace; }
};

class Sandbox {
 public:
  explicit Sandbox(std::uint64_t fuel = Machine::kDefaultFuel) : fuel_(fuel) {}

  /// Runs one sample.
  SandboxReport analyze(const util::ByteBuf& file) const;

  /// True iff both run cleanly and produce identical behavior traces.
  bool functionality_preserved(const util::ByteBuf& original,
                               const util::ByteBuf& modified) const;

 private:
  std::uint64_t fuel_;
};

}  // namespace mpass::vm
