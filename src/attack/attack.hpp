// Common interface for all evasion attacks (MPass, RLA, MAB, GAMMA, MalRNN,
// and the packer obfuscators), so the experiment harness measures ASR / AVQ /
// APR identically across methods through the shared hard-label oracle.
#pragma once

#include <memory>
#include <string>

#include "detectors/detector.hpp"

namespace mpass::attack {

struct AttackResult {
  bool success = false;
  util::ByteBuf adversarial;  // best-effort output even on failure
  std::size_t queries = 0;
  double apr = 0.0;  // (|adv| - |orig|) / |orig|
};

class Attack {
 public:
  virtual ~Attack() = default;

  virtual std::string_view name() const = 0;

  /// Attacks one malware sample through the hard-label oracle; the oracle
  /// carries the per-sample query budget. Attacks may keep cross-sample
  /// state (RL policies, bandit posteriors) -- real attackers do.
  virtual AttackResult run(std::span<const std::uint8_t> malware,
                           detect::HardLabelOracle& oracle,
                           std::uint64_t seed) = 0;

  /// Deep copy of this attack's current state (donor pools, learned
  /// policies, owned surrogate models). The harness gives every parallel
  /// (target, attack, sample) task its own clone, so per-sample runs are
  /// independent of scheduling order. Returning nullptr marks the attack
  /// non-clonable; such attacks run their samples sequentially on the
  /// shared instance (order-dependent cross-sample state preserved).
  virtual std::unique_ptr<Attack> clone() const { return nullptr; }
};

/// Computes APR for a result.
double apr_of(std::size_t original_size, std::size_t adversarial_size);

}  // namespace mpass::attack
