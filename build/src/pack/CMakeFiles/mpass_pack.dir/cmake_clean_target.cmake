file(REMOVE_RECURSE
  "libmpass_pack.a"
)
