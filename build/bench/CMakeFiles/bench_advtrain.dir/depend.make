# Empty dependencies file for bench_advtrain.
# This may be replaced when dependencies are built.
