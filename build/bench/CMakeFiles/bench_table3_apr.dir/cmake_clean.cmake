file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_apr.dir/bench_table3_apr.cpp.o"
  "CMakeFiles/bench_table3_apr.dir/bench_table3_apr.cpp.o.d"
  "bench_table3_apr"
  "bench_table3_apr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_apr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
