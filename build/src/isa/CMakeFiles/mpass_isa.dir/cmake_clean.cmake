file(REMOVE_RECURSE
  "CMakeFiles/mpass_isa.dir/isa.cpp.o"
  "CMakeFiles/mpass_isa.dir/isa.cpp.o.d"
  "libmpass_isa.a"
  "libmpass_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpass_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
