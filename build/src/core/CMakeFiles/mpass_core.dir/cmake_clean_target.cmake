file(REMOVE_RECURSE
  "libmpass_core.a"
)
