# Empty compiler generated dependencies file for explain_sections.
# This may be replaced when dependencies are built.
