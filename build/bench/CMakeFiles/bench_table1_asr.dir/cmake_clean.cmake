file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_asr.dir/bench_table1_asr.cpp.o"
  "CMakeFiles/bench_table1_asr.dir/bench_table1_asr.cpp.o.d"
  "bench_table1_asr"
  "bench_table1_asr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_asr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
