// ModelZoo: one-stop construction of every trained artifact experiments
// need -- the labeled corpus, the four offline detectors (MalConv, NonNeg,
// LightGBM, MalGCG), the attacker-side benign program pool, the benign byte
// language model (MalRNN substrate), and the five commercial-AV simulators.
//
// Training runs once and is cached under MPASS_CACHE_DIR (default
// .mpass_cache/) keyed by the configuration digest, so the per-table bench
// binaries share models instead of retraining. Sizes are configurable via
// environment variables (MPASS_TRAIN_MAL, MPASS_TRAIN_BEN, MPASS_TEST_MAL,
// MPASS_TEST_BEN, MPASS_NET_EPOCHS, MPASS_SEED, MPASS_NO_CACHE).
#pragma once

#include <memory>

#include "corpus/generator.hpp"
#include "detectors/avsim.hpp"
#include "detectors/models.hpp"
#include "detectors/training.hpp"
#include "ml/gru.hpp"

namespace mpass::detect {

struct ZooConfig {
  std::uint64_t seed = 42;
  std::size_t train_malware = 400;
  std::size_t train_benign = 400;
  std::size_t test_malware = 120;
  std::size_t test_benign = 120;
  std::size_t packed_malware = 48;  // packed-sample training augmentation
  std::size_t packed_benign = 16;
  std::size_t benign_pool = 64;     // attacker-collected benign programs
  int net_epochs = 3;
  double target_fpr = 0.01;
  std::size_t lm_windows = 1200;    // GRU LM training windows per epoch
  int lm_epochs = 2;
  bool use_cache = true;

  static ZooConfig from_env();
  std::uint64_t digest() const;
};

class ModelZoo {
 public:
  explicit ModelZoo(const ZooConfig& cfg);

  /// Process-wide zoo built from environment configuration.
  static ModelZoo& instance();

  const ZooConfig& config() const { return cfg_; }
  const corpus::Dataset& train() const { return train_; }
  const corpus::Dataset& test() const { return test_; }

  /// The four offline detectors, in the paper's table order:
  /// MalConv, NonNeg, LightGBM, MalGCG.
  std::vector<Detector*> offline() const;
  Detector& offline_by_name(std::string_view name) const;

  /// Differentiable byte nets usable as MPass's known-model ensemble,
  /// excluding the named target (paper: "we treat the remaining models as
  /// known models"; LightGBM is never a known model -- no gradients).
  /// Includes the attacker-trained surrogates: with laptop-scale models the
  /// two remaining SOTA nets alone transfer poorly, so the attacker trains
  /// additional local models on their own corpus -- a capability the
  /// paper's threat model already grants (black-box targets, arbitrary
  /// local "known models").
  std::vector<ml::ByteConvNet*> known_nets_excluding(
      std::string_view target) const;

  /// The attacker-trained surrogate detectors (diverse architectures,
  /// trained on an attacker-generated corpus).
  std::vector<ByteConvDetector*> surrogates() const;

  /// Benign programs the attacker harvested (perturbation donors).
  const std::vector<util::ByteBuf>& benign_pool() const { return pool_; }

  /// Byte LM trained on the benign pool (MalRNN generator).
  ml::GruLm& benign_lm() { return *lm_; }

  /// The five commercial-AV simulators (lazily trained/cached).
  const std::vector<std::unique_ptr<CommercialAv>>& avs();

  /// Held-out evaluation of one offline detector.
  EvalReport eval_offline(std::string_view name) const;

 private:
  void build_or_load();
  void build_avs();
  std::filesystem::path artifact_path(std::string_view stem) const;

  ZooConfig cfg_;
  corpus::Dataset train_, test_;
  std::unique_ptr<ByteConvDetector> malconv_, nonneg_, malgcg_;
  std::vector<std::unique_ptr<ByteConvDetector>> surrogates_;
  std::unique_ptr<GbdtDetector> lightgbm_;
  std::vector<util::ByteBuf> pool_;
  std::unique_ptr<ml::GruLm> lm_;
  std::vector<std::unique_ptr<CommercialAv>> avs_;
  bool avs_built_ = false;
};

}  // namespace mpass::detect
