file(REMOVE_RECURSE
  "CMakeFiles/mpass_core.dir/modification.cpp.o"
  "CMakeFiles/mpass_core.dir/modification.cpp.o.d"
  "CMakeFiles/mpass_core.dir/mpass.cpp.o"
  "CMakeFiles/mpass_core.dir/mpass.cpp.o.d"
  "CMakeFiles/mpass_core.dir/optimizer.cpp.o"
  "CMakeFiles/mpass_core.dir/optimizer.cpp.o.d"
  "CMakeFiles/mpass_core.dir/recovery.cpp.o"
  "CMakeFiles/mpass_core.dir/recovery.cpp.o.d"
  "libmpass_core.a"
  "libmpass_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpass_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
