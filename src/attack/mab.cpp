#include "attack/mab.hpp"

#include <algorithm>
#include <cmath>

#include "obs/trace.hpp"

namespace mpass::attack {

using util::ByteBuf;

namespace {
/// Crude Beta sampler via moment-matched Gaussian (adequate for bandits).
double sample_beta(double a, double b, util::Rng& rng) {
  const double mean = a / (a + b);
  const double var = a * b / ((a + b) * (a + b) * (a + b + 1.0));
  return std::clamp(mean + std::sqrt(var) * rng.gaussian(), 0.0, 1.0);
}
}  // namespace

std::size_t Mab::sample_arm(util::Rng& rng) {
  std::size_t best = 0;
  double best_draw = -1.0;
  for (std::size_t a = 0; a < kNumActions; ++a) {
    if (is_risky(static_cast<Action>(a))) continue;  // MAB stays safe
    const double draw = sample_beta(alpha_[a], beta_[a], rng);
    if (draw > best_draw) {
      best_draw = draw;
      best = a;
    }
  }
  return best;
}

AttackResult Mab::run(std::span<const std::uint8_t> malware,
                      detect::HardLabelOracle& oracle, std::uint64_t seed) {
  util::Rng rng(seed);
  AttackResult result;
  result.adversarial.assign(malware.begin(), malware.end());

  while (!oracle.exhausted()) {
    ByteBuf current(malware.begin(), malware.end());
    std::vector<std::size_t> pulled;
    for (int pull = 0; pull < cfg_.max_pulls_per_restart && !oracle.exhausted();
         ++pull) {
      const std::size_t a = sample_arm(rng);
      auto mutated =
          apply_action(static_cast<Action>(a), current, pool_, rng);
      if (!mutated) {
        beta_[a] += 0.25;
        continue;
      }
      current = std::move(*mutated);
      pulled.push_back(a);
      if (obs::tracing())
        obs::Event("action")
            .str("kind", "mab_pull")
            .str("arm", action_name(static_cast<Action>(a)))
            .uint("pull", static_cast<std::uint64_t>(pull))
            .uint("size", current.size());
      // Each pull mutates the working copy in place (append/rename-style
      // edits), so the detector's incremental forward re-scores only the
      // touched windows of `current` against its cached previous query.
      const bool detected = oracle.query(current);
      if (detected) {
        beta_[a] += 1.0;
        continue;
      }
      alpha_[a] += 1.0;
      result.success = true;
      result.adversarial = current;

      // Minimization: replay the pulled arms from pristine, dropping one at
      // a time while the sample still evades (each trial costs a query).
      if (cfg_.minimize && pulled.size() > 1) {
        util::Rng replay_rng(seed ^ 0x33);  // deterministic action content
        for (std::size_t drop = 0;
             drop < pulled.size() && !oracle.exhausted(); ++drop) {
          ByteBuf trial(malware.begin(), malware.end());
          util::Rng trng(replay_rng());
          bool applied_all = true;
          for (std::size_t i = 0; i < pulled.size(); ++i) {
            if (i == drop) continue;
            auto step = apply_action(static_cast<Action>(pulled[i]), trial,
                                     pool_, trng);
            if (!step) {
              applied_all = false;
              break;
            }
            trial = std::move(*step);
          }
          if (!applied_all) continue;
          if (trial.size() < result.adversarial.size() &&
              !oracle.query(trial)) {
            result.adversarial = trial;
          }
        }
      }
      result.apr = apr_of(malware.size(), result.adversarial.size());
      return result;
    }
  }
  result.apr = apr_of(malware.size(), result.adversarial.size());
  return result;
}

}  // namespace mpass::attack
