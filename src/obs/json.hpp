// Minimal JSON support for the observability subsystem: an escaping line
// writer for the JSONL trace sink and a small recursive-descent parser for
// the trace inspector (tools/mpass_trace) and the trace round-trip tests.
//
// Deliberately tiny: objects, arrays, strings, numbers (parsed as double),
// booleans, null. No streaming, no comments, no surrogate-pair decoding --
// everything the trace schema emits is ASCII.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace mpass::obs {

/// Appends `s` JSON-escaped (no surrounding quotes) to `out`.
void json_escape(std::string& out, std::string_view s);

/// Formats a double the way the trace schema expects: integral values
/// without a fractional part, finite values with up to 6 significant
/// decimals, non-finite values as null.
void json_number(std::string& out, double v);

/// Parsed JSON value. Numbers are stored as double (the trace schema never
/// needs 64-bit-exact integers above 2^53).
class Json {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Json() = default;

  Kind kind() const { return kind_; }
  bool is_object() const { return kind_ == Kind::Object; }
  bool is_array() const { return kind_ == Kind::Array; }
  bool is_string() const { return kind_ == Kind::String; }
  bool is_number() const { return kind_ == Kind::Number; }
  bool is_bool() const { return kind_ == Kind::Bool; }

  double number() const { return num_; }
  bool boolean() const { return num_ != 0.0; }
  const std::string& str() const { return str_; }
  const std::vector<Json>& items() const { return items_; }
  const std::map<std::string, Json>& fields() const { return fields_; }

  /// Object member lookup; nullptr if absent or not an object.
  const Json* get(std::string_view key) const;

  /// Parses one JSON document (must consume all non-space input).
  /// Returns nullopt on any syntax error.
  static std::optional<Json> parse(std::string_view text);

 private:
  friend class JsonParser;
  Kind kind_ = Kind::Null;
  double num_ = 0.0;
  std::string str_;
  std::vector<Json> items_;
  std::map<std::string, Json> fields_;
};

/// Builder for one JSONL object line: {"k":v,...}\n-free (caller adds \n).
/// Keys are trusted (schema constants); values are escaped.
class JsonLine {
 public:
  JsonLine() { buf_.push_back('{'); }

  JsonLine& str(std::string_view key, std::string_view v);
  JsonLine& num(std::string_view key, double v);
  JsonLine& uint(std::string_view key, std::uint64_t v);
  JsonLine& boolean(std::string_view key, bool v);
  JsonLine& strs(std::string_view key, std::span<const std::string> vs);
  /// Hex-formatted u64 (digests), written as a 16-char string.
  JsonLine& hex(std::string_view key, std::uint64_t v);

  /// Closes the object and returns the line.
  std::string take() {
    buf_ += "}";
    return std::move(buf_);
  }

 private:
  void key(std::string_view k);
  std::string buf_;
  bool first_ = true;
};

}  // namespace mpass::obs
