// Byte-distribution statistics: histograms, Shannon entropy, and the
// windowed byte/entropy joint histogram used by EMBER-style features.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace mpass::util {

/// 256-bin byte histogram (raw counts).
std::array<std::uint32_t, 256> byte_histogram(std::span<const std::uint8_t> data);

/// Shannon entropy of a byte stream in bits per byte, in [0, 8].
/// Empty input has entropy 0.
double shannon_entropy(std::span<const std::uint8_t> data);

/// Entropy of each fixed-size window (last partial window included if at
/// least window/2 bytes). Used for section-level entropy profiles.
std::vector<double> windowed_entropy(std::span<const std::uint8_t> data,
                                     std::size_t window);

/// EMBER-style 2D byte-entropy histogram, flattened to 16x16 = 256 bins:
/// for each window, bin by (entropy quantized to 16, mean nibble value
/// quantized to 16), normalized to sum to 1 (all zeros on empty input).
std::vector<float> byte_entropy_histogram(std::span<const std::uint8_t> data,
                                          std::size_t window = 256);

/// Fraction of printable ASCII bytes (0x20..0x7e).
double printable_ratio(std::span<const std::uint8_t> data);

}  // namespace mpass::util
