// Malware modification engine (paper §III-C, Fig. 1/2).
//
// Applies the full MPass modification to a malware sample:
//   * encodes the critical sections (code + data by default, per PEM) with
//     per-byte keys, replacing their content with bytes from a benign donor
//     program;
//   * appends a new section holding the key blocks, the (shuffled) recovery
//     stub, and benign filler, and retargets the entry point at the stub;
//   * marks every optimizable byte position I (encoded section bytes,
//     shuffle gaps, filler tail, timestamp and section-name header fields)
//     and the byte-to-key mapping J the optimizer must maintain so that
//     x + M*delta stays function-preserving (paper Eq. 2).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/recovery.hpp"
#include "pe/pe.hpp"
#include "util/rng.hpp"

namespace mpass::core {

/// Which sections get encoded.
enum class TargetMode {
  CodeData,   // executable + data sections (PEM's critical set) -- MPass
  OtherSec,   // every *other* content section (Table V ablation)
  None,       // no encoding: new section + headers only
};

struct ModificationConfig {
  TargetMode targets = TargetMode::CodeData;
  StubOptions stub;            // shuffle on by default
  double filler_ratio = 0.25;  // tail filler as a fraction of encoded bytes
  std::size_t min_tail = 512;
  bool modify_headers = true;  // timestamp + section-name fields join I
  // Grow the benign filler so the (incompressible) key block starts past
  // this file offset. Byte-level detectors truncate their input; the
  // attacker knows the known models' windows and pushes the only
  // non-optimizable bytes -- the keys -- beyond them (the truncation
  // exploitation of Kreuk et al.). 0 disables.
  std::size_t push_keys_beyond = 16384;
};

/// A modified sample plus the optimizer's view of it.
struct ModifiedSample {
  util::ByteBuf bytes;                      // built PE (mutate in place)
  std::vector<std::uint32_t> perturbable;   // file offsets: the set I
  // J: encoded-byte file offset -> its key byte file offset.
  std::unordered_map<std::uint32_t, std::uint32_t> key_of;
  double apr = 0.0;                         // size increase ratio
  std::uint32_t recovery_section_off = 0;   // file offset of the new section
  std::uint32_t recovery_section_len = 0;

  /// Writes value v at perturbable offset p, co-updating p's key byte so the
  /// recovered original byte is unchanged (the M*delta constraint).
  void set_byte(std::uint32_t p, std::uint8_t v);
};

/// Applies the modification. Throws util::ParseError on unparsable input.
/// `donor` supplies the benign content (initial perturbation); it is used
/// cyclically and may be any benign program's bytes.
ModifiedSample apply_modification(std::span<const std::uint8_t> malware,
                                  std::span<const std::uint8_t> donor,
                                  const ModificationConfig& cfg,
                                  util::Rng& rng);

}  // namespace mpass::core
