#include "util/serialize.hpp"

#include <cstdlib>
#include <fstream>

namespace mpass::util {

void Archive::tag(std::string_view name) {
  w_.u16(static_cast<std::uint16_t>(0xA55A));
  w_.u16(static_cast<std::uint16_t>(name.size()));
  w_.block(as_bytes(name));
}

void Archive::str(std::string_view s) {
  w_.u32(static_cast<std::uint32_t>(s.size()));
  w_.block(as_bytes(s));
}

void Archive::floats(std::span<const float> xs) {
  w_.u32(static_cast<std::uint32_t>(xs.size()));
  for (float x : xs) w_.write(x);
}

void Archive::doubles(std::span<const double> xs) {
  w_.u32(static_cast<std::uint32_t>(xs.size()));
  for (double x : xs) w_.write(x);
}

void Archive::bytes(std::span<const std::uint8_t> xs) {
  w_.u32(static_cast<std::uint32_t>(xs.size()));
  w_.block(xs);
}

void Unarchive::tag(std::string_view expect) {
  if (r_.u16() != 0xA55A) throw ParseError("archive: bad tag marker");
  const std::uint16_t len = r_.u16();
  const std::string got = r_.fixed_string(len);
  if (got != expect)
    throw ParseError("archive: expected tag '" + std::string(expect) +
                     "', got '" + got + "'");
}

std::string Unarchive::str() {
  const std::uint32_t n = r_.u32();
  return r_.fixed_string(n);
}

std::vector<float> Unarchive::floats() {
  const std::uint32_t n = r_.u32();
  std::vector<float> out(n);
  for (auto& x : out) x = r_.read<float>();
  return out;
}

std::vector<double> Unarchive::doubles() {
  const std::uint32_t n = r_.u32();
  std::vector<double> out(n);
  for (auto& x : out) x = r_.read<double>();
  return out;
}

ByteBuf Unarchive::bytes() {
  const std::uint32_t n = r_.u32();
  return r_.block(n);
}

void save_file(const std::filesystem::path& path, const ByteBuf& data) {
  if (!path.parent_path().empty())
    std::filesystem::create_directories(path.parent_path());
  const auto tmp = path.string() + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    os.write(reinterpret_cast<const char*>(data.data()),
             static_cast<std::streamsize>(data.size()));
    if (!os) throw std::runtime_error("failed to write " + tmp);
  }
  std::filesystem::rename(tmp, path);
}

std::optional<ByteBuf> load_file(const std::filesystem::path& path) {
  std::ifstream is(path, std::ios::binary | std::ios::ate);
  if (!is) return std::nullopt;
  const std::streamsize n = is.tellg();
  is.seekg(0);
  ByteBuf data(static_cast<std::size_t>(n));
  is.read(reinterpret_cast<char*>(data.data()), n);
  if (!is) return std::nullopt;
  return data;
}

std::filesystem::path cache_dir() {
  if (const char* env = std::getenv("MPASS_CACHE_DIR"); env && *env)
    return std::filesystem::path(env);
  return std::filesystem::path(".mpass_cache");
}

}  // namespace mpass::util
