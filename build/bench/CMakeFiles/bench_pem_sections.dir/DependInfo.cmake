
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_pem_sections.cpp" "bench/CMakeFiles/bench_pem_sections.dir/bench_pem_sections.cpp.o" "gcc" "bench/CMakeFiles/bench_pem_sections.dir/bench_pem_sections.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/mpass_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/attack/CMakeFiles/mpass_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mpass_core.dir/DependInfo.cmake"
  "/root/repo/build/src/explain/CMakeFiles/mpass_explain.dir/DependInfo.cmake"
  "/root/repo/build/src/detectors/CMakeFiles/mpass_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/pack/CMakeFiles/mpass_pack.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/mpass_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/mpass_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/mpass_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/mpass_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/pe/CMakeFiles/mpass_pe.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mpass_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
