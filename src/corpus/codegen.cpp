#include "corpus/codegen.hpp"

#include <array>
#include <cassert>
#include <stdexcept>

#include "corpus/strings.hpp"
#include "isa/isa.hpp"
#include "pe/import.hpp"
#include "util/rng.hpp"
#include "vm/api.hpp"

namespace mpass::corpus {

using isa::Assembler;
using isa::Reg;
using util::ByteBuf;
using util::Rng;
using vm::Api;

namespace {

constexpr std::uint32_t kScratchSize = 4096;
constexpr std::uint32_t kTextRva = 0x1000;

// ---- data pools ------------------------------------------------------------

enum class Pl { Rdata, Data };

/// Reference to a byte range in one of the data pools.
struct Ref {
  Pl pool = Pl::Rdata;
  std::uint32_t off = 0;
  std::uint32_t len = 0;
};

class Pool {
 public:
  std::uint32_t add(std::span<const std::uint8_t> bytes) {
    const std::uint32_t off = static_cast<std::uint32_t>(buf_.size());
    buf_.insert(buf_.end(), bytes.begin(), bytes.end());
    return off;
  }
  std::uint32_t add_string(std::string_view s) {
    return add(util::as_bytes(s));
  }
  std::uint32_t reserve(std::uint32_t n) {
    const std::uint32_t off = static_cast<std::uint32_t>(buf_.size());
    buf_.resize(buf_.size() + n, 0);
    return off;
  }
  void align4() {
    while (buf_.size() % 4 != 0) buf_.push_back(0);
  }
  std::uint32_t size() const { return static_cast<std::uint32_t>(buf_.size()); }
  ByteBuf take() { return std::move(buf_); }

 private:
  ByteBuf buf_;
};

// ---- per-behavior plan -------------------------------------------------------

struct Plan {
  Behavior kind{};
  Ref str;    // main string / note / url / help text
  Ref name;   // file name
  Ref blob;   // encoded payload
  std::uint32_t key = 0;    // xor key for blob decode
  std::uint32_t count = 1;  // loop trip count
  std::uint32_t aux = 0;    // host id / pid / port / mode flag
  std::uint32_t aux2 = 0;
};

/// Values the emitters need that depend on the final layout.
struct EmitCtx {
  std::uint32_t image_base = 0;
  std::uint32_t rdata_va = 0;  // VA (not RVA) of .rdata start
  std::uint32_t data_va = 0;   // VA of .data start
  std::uint32_t scratch_va = 0;
  std::uint32_t overlay_len = 0;
  std::uint32_t overlay_key = 0;
  std::uint32_t overlay_mode = 0;  // 0 = exfiltrate, 1 = drop+exec
  std::uint32_t overlay_name_va = 0;
  std::uint32_t overlay_name_len = 0;

  std::uint32_t va(const Ref& r) const {
    return (r.pool == Pl::Rdata ? rdata_va : data_va) + r.off;
  }
};

Ref add_ref(Pool& rdata, Pool& data, Pl which, std::span<const std::uint8_t> b) {
  Pool& p = which == Pl::Rdata ? rdata : data;
  return {which, p.add(b), static_cast<std::uint32_t>(b.size())};
}

Ref add_str(Pool& rdata, Pool& data, Pl which, std::string_view s) {
  return add_ref(rdata, data, which, util::as_bytes(s));
}

// ---- planning ----------------------------------------------------------------

Plan plan_behavior(Behavior kind, Rng& rng, Pool& rdata, Pool& data) {
  Plan p;
  p.kind = kind;
  switch (kind) {
    case Behavior::Persistence: {
      const std::string value =
          std::string(rng.pick(registry_run_keys())) + "=" +
          std::string(rng.pick(dropper_names()));
      p.str = add_str(rdata, data, Pl::Data, value);
      break;
    }
    case Behavior::C2Beacon: {
      p.str = add_str(rdata, data, Pl::Data, rng.pick(malicious_urls()));
      p.aux = static_cast<std::uint32_t>(rng.range(1, 0xFFFF));  // host id
      p.aux2 = static_cast<std::uint32_t>(rng.pick(
          std::vector<int>{443, 8080, 4444, 6667, 1337}));
      p.count = static_cast<std::uint32_t>(rng.range(1, 3));
      break;
    }
    case Behavior::Ransomware: {
      p.name = add_str(rdata, data, Pl::Data,
                       "C:/Users/victim/README_RESTORE.txt");
      p.str = add_str(rdata, data, Pl::Data, rng.pick(ransom_notes()));
      p.key = static_cast<std::uint32_t>(rng.range(1, 255));
      break;
    }
    case Behavior::Stealer: {
      p.aux = static_cast<std::uint32_t>(rng.range(1, 0xFFFF));
      p.aux2 = 443;
      p.str = add_str(rdata, data, Pl::Data, rng.pick(malicious_urls()));
      break;
    }
    case Behavior::Keylogger: {
      p.aux = static_cast<std::uint32_t>(rng.range(1, 0xFFFF));
      p.aux2 = 8443;
      break;
    }
    case Behavior::Dropper:
    case Behavior::Injector: {
      // High-entropy encoded payload blob in .data ("encrypted payload",
      // the data-section signal the paper calls out).
      const std::size_t n = static_cast<std::size_t>(rng.range(512, 4096));
      p.key = static_cast<std::uint32_t>(rng.range(1, 255));
      ByteBuf plain = rng.bytes(n);  // stands in for a packed PE payload
      for (auto& b : plain) b ^= static_cast<std::uint8_t>(p.key);
      p.blob = add_ref(rdata, data, Pl::Data, plain);
      if (kind == Behavior::Dropper) {
        p.name = add_str(rdata, data, Pl::Data, rng.pick(dropper_names()));
      } else {
        p.aux = static_cast<std::uint32_t>(rng.range(100, 4000));  // pid
      }
      break;
    }
    case Behavior::Wiper:
      p.key = 0xFF;
      break;
    case Behavior::OverlayLoader:
      // Overlay parameters are filled in by compile_program (EmitCtx).
      p.aux = rng.chance(0.5) ? 1 : 0;  // 0 exfil, 1 drop
      if (p.aux == 1)
        p.name = add_str(rdata, data, Pl::Data, rng.pick(dropper_names()));
      break;

    case Behavior::HelloReport:
    case Behavior::UiGreeting:
      p.str = add_str(rdata, data, Pl::Rdata, rng.pick(benign_strings()));
      break;
    case Behavior::ConfigReader:
      p.name = add_str(rdata, data, Pl::Rdata, rng.pick(benign_file_names()));
      p.str = add_str(rdata, data, Pl::Rdata, rng.pick(benign_strings()));
      break;
    case Behavior::Calculator:
      p.count = static_cast<std::uint32_t>(rng.range(8, 64));
      p.str = add_str(rdata, data, Pl::Rdata, rng.pick(benign_strings()));
      break;
    case Behavior::TextProcessor:
      p.str = add_str(rdata, data, Pl::Rdata, rng.pick(benign_strings()));
      p.key = 0x20;
      break;
    case Behavior::FileWriter:
      p.name = add_str(rdata, data, Pl::Rdata, "C:/Users/victim/output.log");
      p.str = add_str(rdata, data, Pl::Rdata, rng.pick(benign_strings()));
      break;
    case Behavior::SelfCheck:
      p.str = add_str(rdata, data, Pl::Rdata, rng.pick(benign_strings()));
      break;
    case Behavior::Telemetry:
      p.aux = static_cast<std::uint32_t>(rng.range(0x10000, 0x1FFFF));
      p.aux2 = 443;
      p.str = add_str(rdata, data, Pl::Rdata,
                      "app=contoso;ver=2.1;lang=en-US;arch=x86");
      p.count = static_cast<std::uint32_t>(rng.range(1, 2));
      break;
    case Behavior::Updater:
      p.str = add_str(rdata, data, Pl::Rdata,
                      "HKCU\\Software\\Contoso\\Update=C:/Program Files/"
                      "Contoso/updater.exe");
      break;
  }
  return p;
}

// ---- emission ------------------------------------------------------------------

void sys(Assembler& a, Api api) { a.sys(static_cast<std::uint16_t>(api)); }

/// Emits: decode blob_len bytes from src_va into scratch with xor key.
/// Clobbers r0, r1, r4..r7.
void emit_xor_copy(Assembler& a, std::uint32_t src_va, std::uint32_t dst_va,
                   std::uint32_t len, std::uint32_t key) {
  a.movi(Reg::r4, src_va);
  a.movi(Reg::r5, dst_va);
  a.movi(Reg::r6, len);
  a.movi(Reg::r7, 0);
  const auto loop = a.make_label();
  const auto body = a.make_label();
  const auto done = a.make_label();
  a.bind(loop);
  a.jlt(Reg::r7, Reg::r6, body);
  a.jmp(done);
  a.bind(body);
  a.movr(Reg::r0, Reg::r4);
  a.add(Reg::r0, Reg::r7);
  a.loadb(Reg::r1, Reg::r0);
  a.movi(Reg::r0, key);
  a.xor_(Reg::r1, Reg::r0);
  a.movr(Reg::r0, Reg::r5);
  a.add(Reg::r0, Reg::r7);
  a.storeb(Reg::r0, Reg::r1);
  a.movi(Reg::r0, 1);
  a.add(Reg::r7, Reg::r0);
  a.jmp(loop);
  a.bind(done);
}

void emit_behavior(const Plan& p, Assembler& a, const EmitCtx& c) {
  switch (p.kind) {
    case Behavior::Persistence:
      a.movi(Reg::r0, c.va(p.str));
      a.movi(Reg::r1, p.str.len);
      sys(a, Api::RegSetAutorun);
      break;

    case Behavior::C2Beacon: {
      a.movi(Reg::r0, p.aux);
      a.movi(Reg::r1, p.aux2);
      sys(a, Api::Connect);
      a.movr(Reg::r4, Reg::r0);  // sock
      a.movi(Reg::r7, p.count);
      const auto loop = a.make_label();
      const auto done = a.make_label();
      a.bind(loop);
      a.jz(Reg::r7, done);
      a.movr(Reg::r0, Reg::r4);
      a.movi(Reg::r1, c.va(p.str));
      a.movi(Reg::r2, p.str.len);
      sys(a, Api::Send);
      a.movr(Reg::r0, Reg::r4);
      a.movi(Reg::r1, c.scratch_va);
      a.movi(Reg::r2, 64);
      sys(a, Api::Recv);
      a.movi(Reg::r0, 1);
      a.sub(Reg::r7, Reg::r0);
      a.jmp(loop);
      a.bind(done);
      break;
    }

    case Behavior::Ransomware: {
      // Drop the ransom note.
      a.movi(Reg::r0, c.va(p.name));
      a.movi(Reg::r1, p.name.len);
      sys(a, Api::OpenFile);
      a.movr(Reg::r4, Reg::r0);
      a.movr(Reg::r0, Reg::r4);
      a.movi(Reg::r1, c.va(p.str));
      a.movi(Reg::r2, p.str.len);
      sys(a, Api::WriteFile);
      a.movr(Reg::r0, Reg::r4);
      sys(a, Api::CloseFile);
      // Encrypt every victim file.
      const auto loop = a.make_label();
      const auto done = a.make_label();
      a.bind(loop);
      a.movi(Reg::r0, c.scratch_va);
      a.movi(Reg::r1, 256);
      sys(a, Api::EnumFiles);
      a.jz(Reg::r0, done);
      a.movr(Reg::r5, Reg::r0);  // name length
      a.movi(Reg::r0, c.scratch_va);
      a.movr(Reg::r1, Reg::r5);
      a.movi(Reg::r2, p.key);
      sys(a, Api::EncryptFile);
      a.jmp(loop);
      a.bind(done);
      sys(a, Api::DeleteShadow);
      break;
    }

    case Behavior::Stealer:
      a.movi(Reg::r0, c.scratch_va);
      a.movi(Reg::r1, 256);
      sys(a, Api::StealCreds);
      a.movr(Reg::r5, Reg::r0);
      a.movi(Reg::r0, p.aux);
      a.movi(Reg::r1, p.aux2);
      sys(a, Api::Connect);
      a.movr(Reg::r4, Reg::r0);
      a.movr(Reg::r0, Reg::r4);
      a.movi(Reg::r1, c.scratch_va);
      a.movr(Reg::r2, Reg::r5);
      sys(a, Api::Send);
      break;

    case Behavior::Keylogger:
      sys(a, Api::KeylogStart);
      a.movi(Reg::r0, 40);
      sys(a, Api::Sleep);
      a.movi(Reg::r0, c.scratch_va);
      a.movi(Reg::r1, 256);
      sys(a, Api::KeylogDump);
      a.movr(Reg::r5, Reg::r0);
      a.movi(Reg::r0, p.aux);
      a.movi(Reg::r1, p.aux2);
      sys(a, Api::Connect);
      a.movr(Reg::r4, Reg::r0);
      a.movr(Reg::r0, Reg::r4);
      a.movi(Reg::r1, c.scratch_va);
      a.movr(Reg::r2, Reg::r5);
      sys(a, Api::Send);
      break;

    case Behavior::Dropper:
      emit_xor_copy(a, c.va(p.blob), c.scratch_va, p.blob.len, p.key);
      a.movi(Reg::r0, c.va(p.name));
      a.movi(Reg::r1, p.name.len);
      a.movi(Reg::r2, c.scratch_va);
      a.movi(Reg::r3, p.blob.len);
      sys(a, Api::WriteExe);
      a.movi(Reg::r0, c.va(p.name));
      a.movi(Reg::r1, p.name.len);
      sys(a, Api::CreateProc);
      break;

    case Behavior::Injector:
      emit_xor_copy(a, c.va(p.blob), c.scratch_va, p.blob.len, p.key);
      a.movi(Reg::r0, p.aux);
      a.movi(Reg::r1, c.scratch_va);
      a.movi(Reg::r2, p.blob.len);
      sys(a, Api::InjectProc);
      break;

    case Behavior::Wiper: {
      const auto loop = a.make_label();
      const auto done = a.make_label();
      a.bind(loop);
      a.movi(Reg::r0, c.scratch_va);
      a.movi(Reg::r1, 256);
      sys(a, Api::EnumFiles);
      a.jz(Reg::r0, done);
      a.movr(Reg::r5, Reg::r0);
      a.movi(Reg::r0, c.scratch_va);
      a.movr(Reg::r1, Reg::r5);
      a.movi(Reg::r2, p.key);
      sys(a, Api::EncryptFile);
      a.jmp(loop);
      a.bind(done);
      a.movi(Reg::r0, 0xBAD);
      sys(a, Api::RegDeleteKey);
      sys(a, Api::DeleteShadow);
      break;
    }

    case Behavior::OverlayLoader: {
      // Locate our own overlay via the in-memory section table (robust to
      // added sections / tail appends, as real self-reading malware is).
      a.movi(Reg::r4, c.image_base);
      a.movr(Reg::r5, Reg::r4);
      a.addi(Reg::r5, 0x3C);
      a.loadw(Reg::r5, Reg::r5);  // e_lfanew
      a.add(Reg::r5, Reg::r4);    // VA of PE signature
      a.movr(Reg::r6, Reg::r5);
      a.addi(Reg::r6, 6);
      a.loadw(Reg::r6, Reg::r6);
      a.movi(Reg::r0, 0xFFFF);
      a.and_(Reg::r6, Reg::r0);   // r6 = number of sections
      a.movr(Reg::r7, Reg::r5);
      a.addi(Reg::r7, 20);
      a.loadw(Reg::r7, Reg::r7);
      a.and_(Reg::r7, Reg::r0);   // r7 = optional header size
      a.addi(Reg::r5, 24);
      a.add(Reg::r5, Reg::r7);    // r5 = section table VA
      a.movi(Reg::r7, 0);         // r7 = max raw end
      const auto loop = a.make_label();
      const auto skip = a.make_label();
      const auto done = a.make_label();
      a.bind(loop);
      a.jz(Reg::r6, done);
      a.movr(Reg::r1, Reg::r5);
      a.addi(Reg::r1, 16);
      a.loadw(Reg::r1, Reg::r1);  // SizeOfRawData
      a.movr(Reg::r2, Reg::r5);
      a.addi(Reg::r2, 20);
      a.loadw(Reg::r2, Reg::r2);  // PointerToRawData
      a.add(Reg::r2, Reg::r1);    // raw end
      a.jlt(Reg::r2, Reg::r7, skip);
      a.movr(Reg::r7, Reg::r2);
      a.bind(skip);
      a.addi(Reg::r5, 40);
      a.movi(Reg::r0, 1);
      a.sub(Reg::r6, Reg::r0);
      a.jmp(loop);
      a.bind(done);
      // Read the encoded payload from the overlay into scratch.
      a.movr(Reg::r0, Reg::r7);
      a.movi(Reg::r1, c.scratch_va);
      a.movi(Reg::r2, c.overlay_len);
      sys(a, Api::ReadSelf);
      // Decode in place.
      a.movi(Reg::r4, c.scratch_va);
      a.movr(Reg::r5, Reg::r4);
      a.movi(Reg::r0, c.overlay_len);
      a.add(Reg::r5, Reg::r0);  // end
      const auto dloop = a.make_label();
      const auto dbody = a.make_label();
      const auto ddone = a.make_label();
      a.bind(dloop);
      a.jlt(Reg::r4, Reg::r5, dbody);
      a.jmp(ddone);
      a.bind(dbody);
      a.loadb(Reg::r1, Reg::r4);
      a.movi(Reg::r0, c.overlay_key);
      a.xor_(Reg::r1, Reg::r0);
      a.storeb(Reg::r4, Reg::r1);
      a.movi(Reg::r0, 1);
      a.add(Reg::r4, Reg::r0);
      a.jmp(dloop);
      a.bind(ddone);
      if (c.overlay_mode == 0) {
        // Exfiltrate the decoded payload.
        a.movi(Reg::r0, 0xC2C2);
        a.movi(Reg::r1, 4444);
        sys(a, Api::Connect);
        a.movr(Reg::r4, Reg::r0);
        a.movr(Reg::r0, Reg::r4);
        a.movi(Reg::r1, c.scratch_va);
        a.movi(Reg::r2, c.overlay_len);
        sys(a, Api::Send);
      } else {
        // Drop + execute the decoded payload.
        a.movi(Reg::r0, c.overlay_name_va);
        a.movi(Reg::r1, c.overlay_name_len);
        a.movi(Reg::r2, c.scratch_va);
        a.movi(Reg::r3, c.overlay_len);
        sys(a, Api::WriteExe);
        a.movi(Reg::r0, c.overlay_name_va);
        a.movi(Reg::r1, c.overlay_name_len);
        sys(a, Api::CreateProc);
      }
      break;
    }

    // ---- benign behaviors ----
    case Behavior::HelloReport:
      a.movi(Reg::r0, c.va(p.str));
      a.movi(Reg::r1, p.str.len);
      sys(a, Api::Print);
      break;

    case Behavior::ConfigReader:
      a.movi(Reg::r0, c.va(p.name));
      a.movi(Reg::r1, p.name.len);
      sys(a, Api::OpenFile);
      a.movr(Reg::r4, Reg::r0);
      a.movr(Reg::r0, Reg::r4);
      a.movi(Reg::r1, c.scratch_va);
      a.movi(Reg::r2, 128);
      sys(a, Api::ReadFile);
      a.movr(Reg::r5, Reg::r0);
      a.movi(Reg::r0, c.scratch_va);
      a.movr(Reg::r1, Reg::r5);
      sys(a, Api::Checksum);
      a.movi(Reg::r6, c.scratch_va + 512);
      a.storew(Reg::r6, Reg::r0);
      a.movr(Reg::r0, Reg::r4);
      sys(a, Api::CloseFile);
      a.movi(Reg::r0, c.va(p.str));
      a.movi(Reg::r1, p.str.len);
      sys(a, Api::Print);
      break;

    case Behavior::Calculator: {
      a.movi(Reg::r4, 0);
      a.movi(Reg::r5, 0);
      a.movi(Reg::r6, p.count);
      const auto loop = a.make_label();
      const auto body = a.make_label();
      const auto done = a.make_label();
      a.bind(loop);
      a.jlt(Reg::r5, Reg::r6, body);
      a.jmp(done);
      a.bind(body);
      a.movr(Reg::r7, Reg::r5);
      a.mul(Reg::r7, Reg::r5);
      a.add(Reg::r4, Reg::r7);
      a.movi(Reg::r0, 1);
      a.add(Reg::r5, Reg::r0);
      a.jmp(loop);
      a.bind(done);
      a.movi(Reg::r6, c.scratch_va + 516);
      a.storew(Reg::r6, Reg::r4);
      a.movi(Reg::r0, c.va(p.str));
      a.movi(Reg::r1, p.str.len);
      sys(a, Api::Print);
      break;
    }

    case Behavior::TextProcessor:
      emit_xor_copy(a, c.va(p.str), c.scratch_va, p.str.len, p.key);
      a.movi(Reg::r0, c.scratch_va);
      a.movi(Reg::r1, p.str.len);
      sys(a, Api::Print);
      break;

    case Behavior::FileWriter:
      a.movi(Reg::r0, c.va(p.name));
      a.movi(Reg::r1, p.name.len);
      sys(a, Api::OpenFile);
      a.movr(Reg::r4, Reg::r0);
      a.movr(Reg::r0, Reg::r4);
      a.movi(Reg::r1, c.va(p.str));
      a.movi(Reg::r2, p.str.len);
      sys(a, Api::WriteFile);
      a.movr(Reg::r0, Reg::r4);
      sys(a, Api::CloseFile);
      break;

    case Behavior::UiGreeting:
      a.movi(Reg::r0, c.va(p.str));
      a.movi(Reg::r1, p.str.len);
      sys(a, Api::MsgBox);
      break;

    case Behavior::SelfCheck:
      a.movi(Reg::r0, 0);
      a.movi(Reg::r1, c.scratch_va);
      a.movi(Reg::r2, 64);
      sys(a, Api::ReadSelf);
      a.movi(Reg::r0, c.scratch_va);
      a.movi(Reg::r1, 64);
      sys(a, Api::Checksum);
      a.movi(Reg::r6, c.scratch_va + 520);
      a.storew(Reg::r6, Reg::r0);
      a.movi(Reg::r0, c.va(p.str));
      a.movi(Reg::r1, p.str.len);
      sys(a, Api::Print);
      break;

    case Behavior::Telemetry: {
      a.movi(Reg::r0, p.aux);
      a.movi(Reg::r1, p.aux2);
      sys(a, Api::Connect);
      a.movr(Reg::r4, Reg::r0);
      a.movi(Reg::r7, p.count);
      const auto loop = a.make_label();
      const auto done = a.make_label();
      a.bind(loop);
      a.jz(Reg::r7, done);
      a.movr(Reg::r0, Reg::r4);
      a.movi(Reg::r1, c.va(p.str));
      a.movi(Reg::r2, p.str.len);
      sys(a, Api::Send);
      a.movi(Reg::r0, 1);
      a.sub(Reg::r7, Reg::r0);
      a.jmp(loop);
      a.bind(done);
      break;
    }

    case Behavior::Updater:
      a.movi(Reg::r0, c.va(p.str));
      a.movi(Reg::r1, p.str.len);
      sys(a, Api::RegSetAutorun);
      a.movi(Reg::r0, c.va(p.str));
      a.movi(Reg::r1, p.str.len);
      sys(a, Api::Print);
      break;
  }
}

/// Random arithmetic padding between behaviors: varies code bytes across
/// samples without affecting observable behavior (r4..r7 are caller-saved
/// scratch between behaviors).
void emit_filler(Rng& rng, Assembler& a) {
  const int n = static_cast<int>(rng.range(0, 5));
  for (int i = 0; i < n; ++i) {
    switch (rng.range(0, 4)) {
      case 0:
        a.movi(Reg::r4, static_cast<std::uint32_t>(rng.range(0, 0xFFFF)));
        break;
      case 1:
        a.movi(Reg::r5, static_cast<std::uint32_t>(rng.range(0, 0xFFFF)));
        break;
      case 2:
        a.add(Reg::r4, Reg::r5);
        break;
      case 3:
        a.xor_(Reg::r5, Reg::r4);
        break;
      default:
        a.nop();
        break;
    }
  }
}

ByteBuf make_dos_stub(Rng& rng) {
  static constexpr std::string_view kMsg =
      "\x0e\x1f\xba\x0e\x00\xb4\x09\xcd\x21\xb8\x01\x4c\xcd\x21"
      "This program cannot be run in DOS mode.\r\r\n$";
  util::ByteWriter w;
  w.block(util::as_bytes(kMsg));
  w.zeros(8 + static_cast<std::size_t>(rng.range(0, 3)) * 8);
  w.align_to(16);
  return w.take();
}

ByteBuf make_rsrc(Rng& rng, std::size_t size) {
  // Icon-like low-entropy content: repeating gradients plus version strings.
  util::ByteWriter w;
  w.u32(0x00005652);  // 'RV\0\0' pseudo resource magic
  static constexpr std::string_view kVersion =
      "FileVersion 2.1.0.0 ProductName Contoso Suite";
  w.block(util::as_bytes(kVersion));
  std::uint8_t base = rng.byte();
  while (w.size() < size) {
    for (int i = 0; i < 16 && w.size() < size; ++i)
      w.u8(static_cast<std::uint8_t>(base + i * 3));
    base += 1;
  }
  return w.take();
}

ByteBuf make_reloc(Rng& rng) {
  // Plausible-looking relocation blocks (unused by the loader).
  util::ByteWriter w;
  const int blocks = static_cast<int>(rng.range(1, 3));
  for (int b = 0; b < blocks; ++b) {
    w.u32(0x1000 * static_cast<std::uint32_t>(b + 1));
    const int n = static_cast<int>(rng.range(4, 16));
    w.u32(8 + 2 * static_cast<std::uint32_t>(n));
    for (int i = 0; i < n; ++i)
      w.u16(static_cast<std::uint16_t>(0x3000 | rng.range(0, 0xFFF)));
  }
  return w.take();
}

}  // namespace

CompiledSample compile_program(const ProgramSpec& spec) {
  Rng rng(spec.seed);

  Pool rdata;
  Pool data;
  const std::uint32_t scratch_off = data.reserve(kScratchSize);

  // Plan all behaviors (fills the pools deterministically).
  std::vector<Plan> plans;
  plans.reserve(spec.behaviors.size());
  bool has_overlay_loader = false;
  for (Behavior b : spec.behaviors) {
    plans.push_back(plan_behavior(b, rng, rdata, data));
    if (b == Behavior::OverlayLoader) has_overlay_loader = true;
  }
  if (has_overlay_loader && spec.overlay_payload.empty())
    throw std::logic_error("OverlayLoader requires overlay_payload");

  for (const std::string& s : spec.extra_strings) rdata.add_string(s);
  rdata.align4();
  data.align4();

  const std::uint32_t overlay_key =
      has_overlay_loader ? static_cast<std::uint32_t>(rng.range(1, 255)) : 0;
  const std::uint64_t filler_seed = rng();

  // Two-pass assembly: pass 1 sizes the text section (instruction lengths
  // are VA-independent), pass 2 emits with the final layout.
  auto emit_all = [&](const EmitCtx& ctx) {
    Assembler a;
    Rng filler_rng(filler_seed);
    for (const Plan& p : plans) {
      emit_filler(filler_rng, a);
      EmitCtx c = ctx;
      if (p.kind == Behavior::OverlayLoader) {
        c.overlay_mode = p.aux;
        c.overlay_name_va = ctx.data_va + p.name.off;
        c.overlay_name_len = p.name.len;
      }
      emit_behavior(p, a, c);
    }
    emit_filler(filler_rng, a);
    a.movi(Reg::r0, 0);
    sys(a, Api::ExitProcess);
    a.halt();
    return a;
  };

  pe::PeFile file;
  file.timestamp = spec.timestamp;
  file.dos_stub = make_dos_stub(rng);

  // Section ordering varies across real toolchains; randomize the layout of
  // the three main sections so entry-point RVAs and section positions carry
  // no accidental regularity (drawn before pass 1 -- both passes share it).
  std::array<int, 3> order = {0, 1, 2};  // 0 = text, 1 = rdata, 2 = data
  rng.shuffle(order);

  EmitCtx dummy;
  dummy.image_base = file.image_base;
  dummy.rdata_va = 0x01000000;
  dummy.data_va = 0x02000000;
  dummy.scratch_va = dummy.data_va + scratch_off;
  dummy.overlay_len = static_cast<std::uint32_t>(spec.overlay_payload.size());
  dummy.overlay_key = overlay_key;
  const ByteBuf pass1 = emit_all(dummy).finish(0);

  // Assign RVAs in the chosen order (sizes are VA-independent).
  const std::uint32_t sizes[3] = {
      static_cast<std::uint32_t>(pass1.size()), rdata.size(), data.size()};
  std::uint32_t rvas[3] = {0, 0, 0};
  std::uint32_t cursor = kTextRva;
  for (int slot = 0; slot < 3; ++slot) {
    const int which = order[slot];
    rvas[which] = cursor;
    cursor = util::align_up(cursor + std::max(sizes[which], 1u),
                            file.section_align);
  }
  const std::uint32_t text_rva = rvas[0];
  file.entry_point = text_rva;

  EmitCtx ctx = dummy;
  ctx.rdata_va = file.image_base + rvas[1];
  ctx.data_va = file.image_base + rvas[2];
  ctx.scratch_va = ctx.data_va + scratch_off;
  const ByteBuf code = emit_all(ctx).finish(file.image_base + text_rva);
  assert(code.size() == pass1.size());

  // ---- sections (table order matches RVA order) -----------------------------
  ByteBuf rdata_bytes = rdata.take();
  ByteBuf data_bytes = data.take();
  for (int slot = 0; slot < 3; ++slot) {
    switch (order[slot]) {
      case 0:
        file.sections.push_back(
            {spec.text_name, text_rva, static_cast<std::uint32_t>(code.size()),
             pe::kScnCode | pe::kScnMemRead | pe::kScnMemExecute, code});
        break;
      case 1:
        file.sections.push_back(
            {spec.rdata_name, rvas[1],
             static_cast<std::uint32_t>(rdata_bytes.size()),
             pe::kScnInitializedData | pe::kScnMemRead, rdata_bytes});
        break;
      default:
        file.sections.push_back(
            {spec.data_name, rvas[2],
             static_cast<std::uint32_t>(data_bytes.size()),
             pe::kScnInitializedData | pe::kScnMemRead | pe::kScnMemWrite,
             data_bytes});
        break;
    }
  }

  // Imports: APIs actually used, minus hidden sensitive ones.
  std::vector<pe::Import> imports;
  auto add_import = [&](std::uint16_t id) {
    for (const pe::Import& imp : imports)
      if (imp.api_id == id) return;
    imports.push_back({id, std::string(vm::api_name(id))});
  };
  for (Behavior b : spec.behaviors)
    for (std::uint16_t id : behavior_apis(b)) {
      if (spec.hide_sensitive_imports && vm::is_hard_malicious(id)) continue;
      add_import(id);
    }
  add_import(static_cast<std::uint16_t>(Api::ExitProcess));
  add_import(static_cast<std::uint16_t>(Api::GetTime));
  for (std::uint16_t id : spec.extra_imports) add_import(id);
  // Import order is linker-dependent in real PEs; shuffle so entry adjacency
  // carries no behavioral fingerprint.
  rng.shuffle(imports);
  pe::attach_import_section(file, imports);

  if (spec.rsrc_size > 0)
    file.add_section(".rsrc", make_rsrc(rng, spec.rsrc_size),
                     pe::kScnInitializedData | pe::kScnMemRead);
  if (spec.has_reloc)
    file.add_section(".reloc", make_reloc(rng),
                     pe::kScnInitializedData | pe::kScnMemRead);

  // ---- overlay ---------------------------------------------------------------
  if (has_overlay_loader) {
    ByteBuf enc = spec.overlay_payload;
    for (auto& b : enc) b ^= static_cast<std::uint8_t>(overlay_key);
    file.overlay = std::move(enc);
  } else if (!spec.inert_overlay.empty()) {
    file.overlay = spec.inert_overlay;
  }

  CompiledSample out;
  out.meta.seed = spec.seed;
  out.meta.family = spec.family;
  out.meta.malicious = is_malicious_family(spec.family);
  out.meta.overlay_dependent = has_overlay_loader;
  out.meta.behaviors = spec.behaviors;
  out.pe = std::move(file);
  return out;
}

}  // namespace mpass::corpus
