#include "attack/obfuscate.hpp"

namespace mpass::attack {

AttackResult ObfuscateAttack::run(std::span<const std::uint8_t> malware,
                                  detect::HardLabelOracle& oracle,
                                  std::uint64_t seed) {
  AttackResult result;
  result.adversarial.assign(malware.begin(), malware.end());
  auto packed = pack::pack(kind_, malware, {seed});
  if (!packed) return result;
  result.adversarial = std::move(*packed);
  result.apr = apr_of(malware.size(), result.adversarial.size());
  result.success = !oracle.query(result.adversarial);
  return result;
}

}  // namespace mpass::attack
