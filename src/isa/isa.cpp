#include "isa/isa.hpp"

#include <cstdio>
#include <set>
#include <stdexcept>

namespace mpass::isa {

namespace {
constexpr std::size_t kLengths[] = {
    /*Nop*/ 1,   /*Halt*/ 1,  /*Movi*/ 6,   /*Movr*/ 3, /*Add*/ 3,
    /*Sub*/ 3,   /*Xor*/ 3,   /*And*/ 3,    /*Or*/ 3,   /*Mul*/ 3,
    /*Shl*/ 3,   /*Shr*/ 3,   /*Addi*/ 6,   /*Loadb*/ 3, /*Storeb*/ 3,
    /*Loadw*/ 3, /*Storew*/ 3, /*Jmp*/ 5,   /*Jz*/ 6,   /*Jnz*/ 6,
    /*Jlt*/ 7,   /*Call*/ 5,  /*Ret*/ 1,    /*Push*/ 2, /*Pop*/ 2,
    /*Sys*/ 3,   /*Mod*/ 3,   /*Div*/ 3,
};

Reg reg_from(std::uint8_t b) {
  if (b >= kNumRegs) throw util::ParseError("isa: bad register id");
  return static_cast<Reg>(b);
}
}  // namespace

std::size_t instr_length(Op op) {
  return kLengths[static_cast<std::uint8_t>(op)];
}

bool is_branch(Op op) {
  switch (op) {
    case Op::Jmp:
    case Op::Jz:
    case Op::Jnz:
    case Op::Jlt:
    case Op::Call:
      return true;
    default:
      return false;
  }
}

bool valid_opcode(std::uint8_t byte) { return byte <= kMaxOpcode; }

void encode(const Instr& in, util::ByteWriter& w) {
  w.u8(static_cast<std::uint8_t>(in.op));
  switch (in.op) {
    case Op::Nop:
    case Op::Halt:
    case Op::Ret:
      break;
    case Op::Movi:
    case Op::Addi:
      w.u8(static_cast<std::uint8_t>(in.a));
      w.u32(in.imm);
      break;
    case Op::Movr:
    case Op::Add:
    case Op::Sub:
    case Op::Xor:
    case Op::And:
    case Op::Or:
    case Op::Mul:
    case Op::Shl:
    case Op::Shr:
    case Op::Loadb:
    case Op::Storeb:
    case Op::Loadw:
    case Op::Storew:
    case Op::Mod:
    case Op::Div:
      w.u8(static_cast<std::uint8_t>(in.a));
      w.u8(static_cast<std::uint8_t>(in.b));
      break;
    case Op::Jmp:
    case Op::Call:
      w.i32(in.rel);
      break;
    case Op::Jz:
    case Op::Jnz:
      w.u8(static_cast<std::uint8_t>(in.a));
      w.i32(in.rel);
      break;
    case Op::Jlt:
      w.u8(static_cast<std::uint8_t>(in.a));
      w.u8(static_cast<std::uint8_t>(in.b));
      w.i32(in.rel);
      break;
    case Op::Push:
    case Op::Pop:
      w.u8(static_cast<std::uint8_t>(in.a));
      break;
    case Op::Sys:
      w.u16(static_cast<std::uint16_t>(in.imm));
      break;
  }
}

util::ByteBuf encode_all(std::span<const Instr> prog) {
  util::ByteWriter w;
  for (const Instr& in : prog) encode(in, w);
  return w.take();
}

Instr decode(util::ByteReader& r) {
  const std::uint8_t opb = r.u8();
  if (!valid_opcode(opb)) throw util::ParseError("isa: bad opcode");
  Instr in;
  in.op = static_cast<Op>(opb);
  switch (in.op) {
    case Op::Nop:
    case Op::Halt:
    case Op::Ret:
      break;
    case Op::Movi:
    case Op::Addi:
      in.a = reg_from(r.u8());
      in.imm = r.u32();
      break;
    case Op::Movr:
    case Op::Add:
    case Op::Sub:
    case Op::Xor:
    case Op::And:
    case Op::Or:
    case Op::Mul:
    case Op::Shl:
    case Op::Shr:
    case Op::Loadb:
    case Op::Storeb:
    case Op::Loadw:
    case Op::Storew:
    case Op::Mod:
    case Op::Div:
      in.a = reg_from(r.u8());
      in.b = reg_from(r.u8());
      break;
    case Op::Jmp:
    case Op::Call:
      in.rel = r.i32();
      break;
    case Op::Jz:
    case Op::Jnz:
      in.a = reg_from(r.u8());
      in.rel = r.i32();
      break;
    case Op::Jlt:
      in.a = reg_from(r.u8());
      in.b = reg_from(r.u8());
      in.rel = r.i32();
      break;
    case Op::Push:
    case Op::Pop:
      in.a = reg_from(r.u8());
      break;
    case Op::Sys:
      in.imm = r.u16();
      break;
  }
  return in;
}

std::vector<Instr> decode_all(std::span<const std::uint8_t> code,
                              std::vector<std::size_t>* offsets) {
  util::ByteReader r(code);
  std::vector<Instr> out;
  while (!r.eof()) {
    if (offsets) offsets->push_back(r.pos());
    out.push_back(decode(r));
  }
  return out;
}

std::string to_string(const Instr& in) {
  char buf[80];
  auto rs = [](Reg r) { return static_cast<int>(r); };
  switch (in.op) {
    case Op::Nop: return "nop";
    case Op::Halt: return "halt";
    case Op::Ret: return "ret";
    case Op::Movi:
      std::snprintf(buf, sizeof(buf), "movi r%d, 0x%x", rs(in.a), in.imm);
      return buf;
    case Op::Addi:
      std::snprintf(buf, sizeof(buf), "addi r%d, 0x%x", rs(in.a), in.imm);
      return buf;
    case Op::Movr:
      std::snprintf(buf, sizeof(buf), "mov r%d, r%d", rs(in.a), rs(in.b));
      return buf;
    case Op::Add:
      std::snprintf(buf, sizeof(buf), "add r%d, r%d", rs(in.a), rs(in.b));
      return buf;
    case Op::Sub:
      std::snprintf(buf, sizeof(buf), "sub r%d, r%d", rs(in.a), rs(in.b));
      return buf;
    case Op::Xor:
      std::snprintf(buf, sizeof(buf), "xor r%d, r%d", rs(in.a), rs(in.b));
      return buf;
    case Op::And:
      std::snprintf(buf, sizeof(buf), "and r%d, r%d", rs(in.a), rs(in.b));
      return buf;
    case Op::Or:
      std::snprintf(buf, sizeof(buf), "or r%d, r%d", rs(in.a), rs(in.b));
      return buf;
    case Op::Mul:
      std::snprintf(buf, sizeof(buf), "mul r%d, r%d", rs(in.a), rs(in.b));
      return buf;
    case Op::Shl:
      std::snprintf(buf, sizeof(buf), "shl r%d, r%d", rs(in.a), rs(in.b));
      return buf;
    case Op::Shr:
      std::snprintf(buf, sizeof(buf), "shr r%d, r%d", rs(in.a), rs(in.b));
      return buf;
    case Op::Mod:
      std::snprintf(buf, sizeof(buf), "mod r%d, r%d", rs(in.a), rs(in.b));
      return buf;
    case Op::Div:
      std::snprintf(buf, sizeof(buf), "div r%d, r%d", rs(in.a), rs(in.b));
      return buf;
    case Op::Loadb:
      std::snprintf(buf, sizeof(buf), "loadb r%d, [r%d]", rs(in.a), rs(in.b));
      return buf;
    case Op::Storeb:
      std::snprintf(buf, sizeof(buf), "storeb [r%d], r%d", rs(in.a), rs(in.b));
      return buf;
    case Op::Loadw:
      std::snprintf(buf, sizeof(buf), "loadw r%d, [r%d]", rs(in.a), rs(in.b));
      return buf;
    case Op::Storew:
      std::snprintf(buf, sizeof(buf), "storew [r%d], r%d", rs(in.a), rs(in.b));
      return buf;
    case Op::Jmp:
      std::snprintf(buf, sizeof(buf), "jmp %+d", in.rel);
      return buf;
    case Op::Call:
      std::snprintf(buf, sizeof(buf), "call %+d", in.rel);
      return buf;
    case Op::Jz:
      std::snprintf(buf, sizeof(buf), "jz r%d, %+d", rs(in.a), in.rel);
      return buf;
    case Op::Jnz:
      std::snprintf(buf, sizeof(buf), "jnz r%d, %+d", rs(in.a), in.rel);
      return buf;
    case Op::Jlt:
      std::snprintf(buf, sizeof(buf), "jlt r%d, r%d, %+d", rs(in.a), rs(in.b),
                    in.rel);
      return buf;
    case Op::Push:
      std::snprintf(buf, sizeof(buf), "push r%d", rs(in.a));
      return buf;
    case Op::Pop:
      std::snprintf(buf, sizeof(buf), "pop r%d", rs(in.a));
      return buf;
    case Op::Sys:
      std::snprintf(buf, sizeof(buf), "sys 0x%x", in.imm);
      return buf;
  }
  return "<?>";
}

std::string disassemble(std::span<const std::uint8_t> code) {
  std::string out;
  util::ByteReader r(code);
  char head[32];
  while (!r.eof()) {
    std::snprintf(head, sizeof(head), "%06zx: ", r.pos());
    out += head;
    out += to_string(decode(r));
    out += '\n';
  }
  return out;
}

Assembler::Label Assembler::make_label() {
  labels_.emplace_back(std::nullopt);
  return labels_.size() - 1;
}

void Assembler::bind(Label lbl) {
  if (lbl >= labels_.size()) throw std::logic_error("assembler: bad label");
  labels_[lbl] = items_.size();
}

void Assembler::jmp_va(std::uint32_t target_va) {
  items_.push_back({Instr{Op::Jmp}, std::nullopt, target_va, {}, false});
}

void Assembler::raw(util::ByteBuf bytes) {
  items_.push_back({Instr{}, std::nullopt, std::nullopt, std::move(bytes), true});
}

util::ByteBuf Assembler::finish(std::uint32_t base_va,
                                std::vector<std::size_t>* item_offsets) const {
  // Pass 1: compute byte offset of every item (fixed lengths).
  std::vector<std::size_t> offset(items_.size() + 1, 0);
  for (std::size_t i = 0; i < items_.size(); ++i)
    offset[i + 1] = offset[i] + (items_[i].is_raw
                                     ? items_[i].raw.size()
                                     : instr_length(items_[i].instr.op));
  if (item_offsets)
    item_offsets->assign(offset.begin(), offset.end() - 1);

  // Pass 2: resolve displacements and encode.
  util::ByteWriter w;
  for (std::size_t i = 0; i < items_.size(); ++i) {
    if (items_[i].is_raw) {
      w.block(items_[i].raw);
      continue;
    }
    Instr in = items_[i].instr;
    if (items_[i].target.has_value()) {
      const Label lbl = *items_[i].target;
      if (!labels_[lbl].has_value())
        throw std::logic_error("assembler: branch to unbound label");
      const std::size_t target_index = *labels_[lbl];
      const std::size_t target_off =
          target_index < offset.size() ? offset[target_index] : offset.back();
      in.rel = static_cast<std::int32_t>(static_cast<std::int64_t>(target_off) -
                                         static_cast<std::int64_t>(offset[i + 1]));
    } else if (items_[i].target_va.has_value()) {
      const std::int64_t next_va =
          static_cast<std::int64_t>(base_va) +
          static_cast<std::int64_t>(offset[i + 1]);
      in.rel = static_cast<std::int32_t>(
          static_cast<std::int64_t>(*items_[i].target_va) - next_va);
    }
    encode(in, w);
  }
  return w.take();
}

bool branches_well_formed(std::span<const std::uint8_t> code) {
  std::vector<std::size_t> offsets;
  std::vector<Instr> prog;
  try {
    prog = decode_all(code, &offsets);
  } catch (const util::ParseError&) {
    return false;
  }
  std::set<std::size_t> boundaries(offsets.begin(), offsets.end());
  boundaries.insert(code.size());
  for (std::size_t i = 0; i < prog.size(); ++i) {
    if (!is_branch(prog[i].op)) continue;
    const std::int64_t next =
        static_cast<std::int64_t>(offsets[i]) +
        static_cast<std::int64_t>(instr_length(prog[i].op));
    const std::int64_t target = next + prog[i].rel;
    if (target < 0 || target > static_cast<std::int64_t>(code.size()))
      return false;
    if (!boundaries.contains(static_cast<std::size_t>(target))) return false;
  }
  return true;
}

}  // namespace mpass::isa
