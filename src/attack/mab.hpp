// MAB: the multi-armed-bandit evasion attack (Song et al., AsiaCCS 2022 --
// reference [15] of the paper).
//
// Thompson sampling with Beta posteriors over the functionality-safe action
// arms; mutations accumulate on a working copy, one query per pull. On
// success a minimization pass re-queries trimmed variants to reduce the
// file-size overhead (MAB-malware's "minimization" stage).
#pragma once

#include <array>

#include "attack/actions.hpp"
#include "attack/attack.hpp"

namespace mpass::attack {

struct MabConfig {
  int max_pulls_per_restart = 25;  // pulls before restarting from pristine
  bool minimize = true;
};

class Mab : public Attack {
 public:
  Mab(MabConfig cfg, std::span<const util::ByteBuf> benign_pool)
      : cfg_(cfg), pool_(benign_pool.begin(), benign_pool.end()) {
    alpha_.fill(1.0);
    beta_.fill(1.0);
  }

  std::string_view name() const override { return "MAB"; }

  AttackResult run(std::span<const std::uint8_t> malware,
                   detect::HardLabelOracle& oracle,
                   std::uint64_t seed) override;

  /// Copies the Beta posteriors as-is (uniform priors before any run).
  std::unique_ptr<Attack> clone() const override {
    return std::make_unique<Mab>(*this);
  }

 private:
  std::size_t sample_arm(util::Rng& rng);

  MabConfig cfg_;
  std::vector<util::ByteBuf> pool_;
  // Beta posteriors per safe arm (risky arms are excluded from MAB).
  std::array<double, kNumActions> alpha_{}, beta_{};
};

}  // namespace mpass::attack
