// Structured leveled logger for the attack pipeline.
//
// Lines go to stderr as
//   [W 00:01:02.345 t03 MPass/AV1/0123456789abcdef] message
// where t03 is a small per-thread id and the tag is the thread's current
// sample context (set by obs::TraceScope while a sample is being attacked,
// empty otherwise).
//
// MPASS_LOG_LEVEL selects the minimum level: debug | info (default) |
// warn | error | off. The level check is a relaxed atomic load, so disabled
// levels cost one branch; format arguments are evaluated at the call site,
// so keep expensive ones out of debug logs on hot paths.
#pragma once

#include <cstdarg>
#include <string_view>

namespace mpass::obs {

enum class LogLevel : int { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Parses a level name (case-insensitive: debug | info | warn | error |
/// off); unknown names fall back to Info.
LogLevel parse_log_level(std::string_view name);

/// Current minimum level (parsed once from MPASS_LOG_LEVEL).
LogLevel log_level();

/// Overrides the level at runtime (tests, CLI flags). Thread-safe.
void set_log_level(LogLevel level);

inline bool log_enabled(LogLevel level) { return level >= log_level(); }

/// printf-style log line; a '\n' is appended. Thread-safe (one write()).
#if defined(__GNUC__)
__attribute__((format(printf, 2, 3)))
#endif
void logf(LogLevel level, const char* fmt, ...);

/// Sets/clears the calling thread's sample tag shown in the line prefix.
/// Managed by TraceScope; scopes nest (the previous tag is restored).
void set_log_tag(std::string_view tag);
std::string_view log_tag();

}  // namespace mpass::obs
