// Gated convolutional byte classifier: the shared architecture behind the
// MalConv, NonNeg and MalGCG detectors (Raff et al. 2018; Fleshman et al.
// 2018; Raff et al. 2021 -- see DESIGN.md).
//
//   bytes -> embedding (257 x d, token 256 = padding)
//         -> two parallel 1-D convolutions A, B (F filters, width W, stride S)
//         -> gating  h = A * sigmoid(B)
//         -> [MalGCG only] global channel gating g = sigmoid(Wg * mean_t h)
//         -> global max pool over time
//         -> dense H relu -> dense 1 -> sigmoid
//
// The net exposes embedding-space input gradients, which is what the MPass
// optimization step consumes (paper §III-D: "perturbations are first lifted
// to feature vectors using the embedding layer").
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ml/param.hpp"

namespace mpass::ml {

struct ByteConvConfig {
  std::size_t max_len = 16384;  // input truncation length L
  int embed_dim = 8;            // d
  int filters = 16;             // F
  int width = 32;               // W
  int stride = 16;              // S
  int hidden = 16;              // H
  bool gated = true;            // A * sigmoid(B) (vs relu(A))
  bool channel_gating = false;  // MalGCG global channel gating
  bool nonneg = false;          // clamp dense weights >= 0 after updates
};

class ByteConvNet {
 public:
  ByteConvNet(const ByteConvConfig& cfg, std::uint64_t seed);

  /// Deep copy (independent parameters + caches). Concurrent attacks clone
  /// the known models so forward-pass caches never race across threads.
  ByteConvNet(const ByteConvNet& other);
  ByteConvNet& operator=(const ByteConvNet&) = delete;

  /// Probability the sample is malicious. Caches activations for backward.
  float forward(std::span<const std::uint8_t> bytes);

  /// Backprop of BCE(prob, target) for the last forward() input.
  /// If input_grad is non-null it receives dLoss/dEmbedding, laid out
  /// [position * embed_dim + k] over the positions actually consumed
  /// (tokens() entries). If accumulate_params is false, parameter gradients
  /// are left untouched (attack mode).
  ///
  /// soft_pool_tau > 0 replaces the max-pool gradient with a softmax-pool
  /// surrogate of that temperature: gradient flows into *every* window
  /// weighted by its activation instead of only the argmax window. The
  /// forward pass (and hence the loss) is unchanged; this is the standard
  /// trick for optimizing adversarial bytes against max-pooled conv nets,
  /// which are otherwise first-order-blind beyond the current argmax.
  /// Returns the BCE loss value.
  float backward(float target, std::vector<float>* input_grad = nullptr,
                 bool accumulate_params = true, float soft_pool_tau = 0.0f);

  /// Number of byte positions consumed by the last forward (<= max_len).
  std::size_t consumed() const { return tokens_.size(); }

  /// Embedding row of a token (0..256).
  std::span<const float> embedding_row(int token) const;

  /// Applies the non-negativity constraint (no-op unless cfg.nonneg).
  void clamp_nonneg();

  const ByteConvConfig& config() const { return cfg_; }
  ParamSet& params() { return params_; }

  void save(util::Archive& ar) const;
  void load(util::Unarchive& ar);

 private:
  std::size_t time_steps(std::size_t n_tokens) const;

  ByteConvConfig cfg_;
  ParamSet params_;
  Param* emb_;   // 257 x d
  Param* wa_;    // F x (W*d)
  Param* ba_;    // F
  Param* wb_;    // F x (W*d)
  Param* bb_;    // F
  Param* wg_;    // F x F (channel gating; empty unless enabled)
  Param* bg_;    // F
  Param* w1_;    // H x F
  Param* b1_;    // H
  Param* w2_;    // 1 x H
  Param* b2_;    // 1

  // Forward caches.
  std::vector<int> tokens_;
  std::vector<float> x_;      // embedded input, T_in x d
  std::vector<float> a_, b_;  // conv pre-activations, T x F
  std::vector<float> h_;      // gated features, T x F
  std::vector<float> ctx_;    // mean-pooled context, F
  std::vector<float> gate_;   // channel gates, F
  std::vector<float> pooled_; // F
  std::vector<int> argmax_;   // F
  std::vector<float> u_;      // hidden, H
  float z_ = 0.0f;            // logit
  float prob_ = 0.5f;
};

/// Numerically safe binary cross-entropy on a probability.
float bce_loss(float prob, float target);

}  // namespace mpass::ml
