# Empty compiler generated dependencies file for mpass_attack.
# This may be replaced when dependencies are built.
