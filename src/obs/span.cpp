#include "obs/span.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "obs/json.hpp"
#include "obs/log.hpp"

namespace mpass::obs {

namespace {

// Caps chosen the way kMaxMetrics is: reserve() to them at startup so the
// vectors never reallocate and ids can be indexed without the core lock.
constexpr std::size_t kMaxSites = 512;
constexpr std::size_t kMaxPaths = 8192;
// Per-shard bound on buffered Chrome events; pops beyond it are counted
// and reported at flush instead of exhausting memory on huge runs.
constexpr std::size_t kMaxEventsPerShard = 1u << 20;

constexpr std::uint32_t kRootPath = 0;
constexpr std::size_t kSlotsPerPath = 3;  // count, total_ns, child_ns

// Whether any profile sink is active; mirrored from the core so the
// disabled-path check is one relaxed load with no TLS or lock.
std::atomic<bool> g_profiling{false};

std::uint64_t now_ns() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

struct ProfileEvent {
  enum Kind : std::uint8_t { kComplete, kFlowStart, kFlowFinish };
  Kind kind = kComplete;
  std::uint32_t tid = 0;
  std::uint32_t path = 0;     // complete events
  std::uint64_t t0_ns = 0;
  std::uint64_t dur_ns = 0;   // complete events
  std::uint64_t flow = 0;     // flow events
};

// Per-thread slot shard, same contract as the metrics Shard: the owning
// thread updates slots with relaxed atomics, growth and snapshot serialize
// through the mutex. The Chrome event buffer shares the mutex (profiling
// appends are owner-only, so the lock is uncontended except during flush).
struct SpanShard {
  mutable std::mutex mu;
  std::unique_ptr<std::atomic<std::uint64_t>[]> slots;
  std::size_t capacity = 0;
  std::vector<ProfileEvent> events;
  std::uint64_t events_dropped = 0;

  void ensure(std::size_t need) {
    if (need <= capacity) return;
    std::size_t cap = std::max<std::size_t>(64, capacity * 2);
    while (cap < need) cap *= 2;
    auto grown = std::make_unique<std::atomic<std::uint64_t>[]>(cap);
    for (std::size_t i = 0; i < capacity; ++i)
      grown[i].store(slots[i].load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    for (std::size_t i = capacity; i < cap; ++i)
      grown[i].store(0, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lk(mu);
    slots = std::move(grown);
    capacity = cap;
  }

  void record_event(const ProfileEvent& ev) {
    std::lock_guard<std::mutex> lk(mu);
    if (events.size() >= kMaxEventsPerShard) {
      ++events_dropped;
      return;
    }
    events.push_back(ev);
  }
};

struct PathNode {
  std::uint32_t parent = kRootPath;
  std::uint32_t site = 0;
};

struct SpanCore {
  mutable std::mutex mu;
  // site id -> (name, flat "time.<name>" histogram). reserve()d; elements
  // are written once before their id is published, so readers holding an
  // id index without the lock.
  std::vector<std::pair<std::string, MetricId>> sites;
  std::map<std::string, std::uint32_t, std::less<>> site_by_name;
  std::vector<PathNode> paths;  // paths[0] = root
  std::map<std::uint64_t, std::uint32_t> path_by_key;  // parent<<32|site
  bool paths_full_warned = false;

  std::vector<SpanShard*> shards;
  std::vector<std::uint64_t> retired;  // folded slots of exited threads
  std::vector<ProfileEvent> retired_events;
  std::uint64_t retired_events_dropped = 0;

  std::map<std::uint32_t, std::string> thread_names;
  std::atomic<std::uint64_t> next_flow{1};
  std::atomic<std::uint32_t> next_tid{1};
  std::filesystem::path profile_path;  // guarded by mu

  SpanCore() {
    sites.reserve(kMaxSites);
    paths.reserve(kMaxPaths);
    paths.push_back(PathNode{});  // root
    const char* v = std::getenv("MPASS_PROFILE");
    if (v && *v) {
      profile_path = v;
      g_profiling.store(true, std::memory_order_relaxed);
    }
  }

  std::uint32_t intern_site(std::string_view name) {
    std::lock_guard<std::mutex> lk(mu);
    if (const auto it = site_by_name.find(name); it != site_by_name.end())
      return it->second;
    if (sites.size() >= kMaxSites)
      throw std::length_error("obs: span site table full");
    std::string hist = "time.";
    hist += name;
    const MetricId mid = Registry::instance().histogram(hist, time_bounds());
    const auto id = static_cast<std::uint32_t>(sites.size());
    sites.emplace_back(std::string(name), mid);
    site_by_name.emplace(std::string(name), id);
    return id;
  }

  std::uint32_t intern_path(std::uint32_t parent, std::uint32_t site) {
    // Direct recursion collapses onto the parent node so recursive scopes
    // (and re-entrant pool.task chains) cannot grow the table unboundedly.
    if (parent != kRootPath && paths[parent].site == site) return parent;
    std::lock_guard<std::mutex> lk(mu);
    const std::uint64_t key =
        (static_cast<std::uint64_t>(parent) << 32) | site;
    if (const auto it = path_by_key.find(key); it != path_by_key.end())
      return it->second;
    if (paths.size() >= kMaxPaths) {
      // Degrade by mis-attributing to the parent rather than aborting a
      // long run; warn once.
      if (!paths_full_warned) {
        paths_full_warned = true;
        logf(LogLevel::Warn,
             "span: path table full (%zu); deep paths collapse onto parents",
             kMaxPaths);
      }
      return parent;
    }
    const auto id = static_cast<std::uint32_t>(paths.size());
    paths.push_back(PathNode{parent, site});
    path_by_key.emplace(key, id);
    return id;
  }

  // Folds an exiting thread's shard (slots + event buffer).
  void retire(SpanShard* s) {
    std::lock_guard<std::mutex> lk(mu);
    const std::size_t n =
        std::min(s->capacity, paths.size() * kSlotsPerPath);
    if (retired.size() < n) retired.resize(n, 0);
    for (std::size_t i = 0; i < n; ++i)
      retired[i] += s->slots[i].load(std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> slk(s->mu);
      retired_events.insert(retired_events.end(), s->events.begin(),
                            s->events.end());
      retired_events_dropped += s->events_dropped;
    }
    shards.erase(std::remove(shards.begin(), shards.end(), s), shards.end());
  }
};

std::shared_ptr<SpanCore>& core_ref() {
  static std::shared_ptr<SpanCore> core = std::make_shared<SpanCore>();
  return core;
}

struct Frame {
  std::uint32_t path = kRootPath;
  std::uint32_t parent = kRootPath;
  std::uint32_t site = 0;
  std::uint64_t t0 = 0;
};

// Per-thread state. Holds the core alive so threads that outlive the
// static core pointer (static destruction order) still retire safely.
struct SpanTls {
  std::shared_ptr<SpanCore> core;
  std::unique_ptr<SpanShard> shard;
  std::vector<Frame> stack;
  std::unordered_map<std::uint64_t, std::uint32_t> path_cache;
  std::uint32_t tid = 0;
  ~SpanTls() {
    if (core && shard) core->retire(shard.get());
  }
};
thread_local SpanTls span_tls;

SpanTls& tls() {
  SpanTls& t = span_tls;
  if (!t.shard) {
    t.core = core_ref();
    t.shard = std::make_unique<SpanShard>();
    t.tid = t.core->next_tid.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lk(t.core->mu);
    t.core->shards.push_back(t.shard.get());
  }
  return t;
}

std::uint32_t cached_path(SpanTls& t, std::uint32_t parent,
                          std::uint32_t site) {
  const std::uint64_t key = (static_cast<std::uint64_t>(parent) << 32) | site;
  if (const auto it = t.path_cache.find(key); it != t.path_cache.end())
    return it->second;
  const std::uint32_t path = t.core->intern_path(parent, site);
  t.path_cache.emplace(key, path);
  return path;
}

void pop_frame(SpanTls& t) {
  const Frame f = t.stack.back();
  t.stack.pop_back();
  const std::uint64_t dur = now_ns() - f.t0;

  SpanShard& s = *t.shard;
  const std::size_t need =
      (static_cast<std::size_t>(std::max(f.path, f.parent)) + 1) *
      kSlotsPerPath;
  s.ensure(need);
  s.slots[f.path * kSlotsPerPath + 0].fetch_add(1, std::memory_order_relaxed);
  s.slots[f.path * kSlotsPerPath + 1].fetch_add(dur,
                                                std::memory_order_relaxed);
  s.slots[f.parent * kSlotsPerPath + 2].fetch_add(dur,
                                                  std::memory_order_relaxed);
  // Flat per-site histogram, same series the old ScopedTimer fed.
  Registry::instance().observe(t.core->sites[f.site].second,
                               static_cast<double>(dur) / 1e6);
  if (g_profiling.load(std::memory_order_relaxed))
    s.record_event(
        {ProfileEvent::kComplete, t.tid, f.path, f.t0, dur, /*flow=*/0});
}

std::uint32_t pool_task_site() {
  static const std::uint32_t site = core_ref()->intern_site("pool.task");
  return site;
}

std::string json_quote(std::string_view s) {
  std::string out = "\"";
  json_escape(out, s);
  out += '"';
  return out;
}

}  // namespace

SpanSiteId span_site(std::string_view name) {
  return core_ref()->intern_site(name);
}

Span::Span(SpanSiteId site) noexcept {
  SpanTls& t = tls();
  const std::uint32_t parent =
      t.stack.empty() ? kRootPath : t.stack.back().path;
  t.stack.push_back(Frame{cached_path(t, parent, site), parent, site,
                          now_ns()});
}

Span::~Span() { pop_frame(tls()); }

// ---- cross-thread handoff ---------------------------------------------------

SpanHandoff span_handoff_capture() {
  // Fast path: outside any span with profiling off, there is nothing to
  // propagate and no TLS/shard needs to exist.
  if (span_tls.stack.empty() &&
      !g_profiling.load(std::memory_order_relaxed))
    return {};
  SpanTls& t = tls();
  SpanHandoff h;
  h.path = t.stack.empty() ? kRootPath : t.stack.back().path;
  if (g_profiling.load(std::memory_order_relaxed)) {
    h.flow = t.core->next_flow.fetch_add(1, std::memory_order_relaxed);
    t.shard->record_event({ProfileEvent::kFlowStart, t.tid, /*path=*/0,
                           now_ns(), /*dur=*/0, h.flow});
  }
  return h;
}

SpanTaskScope::SpanTaskScope(const SpanHandoff& h) noexcept {
  if (!h.engaged()) return;
  SpanTls& t = tls();
  const std::uint32_t site = pool_task_site();
  const std::uint64_t t0 = now_ns();
  if (h.flow && g_profiling.load(std::memory_order_relaxed))
    t.shard->record_event(
        {ProfileEvent::kFlowFinish, t.tid, /*path=*/0, t0, /*dur=*/0, h.flow});
  t.stack.push_back(Frame{cached_path(t, h.path, site), h.path, site, t0});
  active_ = true;
}

SpanTaskScope::~SpanTaskScope() {
  if (active_) pop_frame(tls());
}

// ---- snapshots --------------------------------------------------------------

std::vector<SpanRow> span_snapshot() {
  const std::shared_ptr<SpanCore> core = core_ref();
  SpanCore& c = *core;
  std::lock_guard<std::mutex> lk(c.mu);

  const std::size_t n_slots = c.paths.size() * kSlotsPerPath;
  std::vector<std::uint64_t> acc(n_slots, 0);
  for (std::size_t i = 0; i < std::min(c.retired.size(), n_slots); ++i)
    acc[i] += c.retired[i];
  for (const SpanShard* s : c.shards) {
    std::lock_guard<std::mutex> slk(s->mu);
    const std::size_t n = std::min(s->capacity, n_slots);
    for (std::size_t i = 0; i < n; ++i)
      acc[i] += s->slots[i].load(std::memory_order_relaxed);
  }

  // Resolve full path strings root-down (parents precede children by
  // construction, so one forward pass suffices).
  std::vector<std::string> names(c.paths.size());
  std::vector<std::uint32_t> depths(c.paths.size(), 0);
  for (std::size_t id = 1; id < c.paths.size(); ++id) {
    const PathNode& node = c.paths[id];
    const std::string& site = c.sites[node.site].first;
    if (node.parent == kRootPath) {
      names[id] = site;
      depths[id] = 1;
    } else {
      names[id] = names[node.parent] + "/" + site;
      depths[id] = depths[node.parent] + 1;
    }
  }

  std::vector<SpanRow> rows;
  for (std::size_t id = 1; id < c.paths.size(); ++id) {
    const std::uint64_t count = acc[id * kSlotsPerPath + 0];
    const std::uint64_t total = acc[id * kSlotsPerPath + 1];
    const std::uint64_t child = acc[id * kSlotsPerPath + 2];
    if (count == 0 && child == 0) continue;
    rows.push_back(SpanRow{names[id], depths[id], count, total, child});
  }
  std::sort(rows.begin(), rows.end(),
            [](const SpanRow& a, const SpanRow& b) { return a.path < b.path; });
  return rows;
}

std::string spans_to_json(const std::vector<SpanRow>& rows) {
  std::string s = "{\"schema_version\":1,\"spans\":[";
  bool first = true;
  for (const SpanRow& r : rows) {
    if (!first) s += ',';
    first = false;
    s += "{\"path\":";
    s += json_quote(r.path);
    s += ",\"count\":";
    json_number(s, static_cast<double>(r.count));
    s += ",\"total_ms\":";
    json_number(s, static_cast<double>(r.total_ns) / 1e6);
    s += ",\"self_ms\":";
    json_number(s, static_cast<double>(r.self_ns()) / 1e6);
    s += ",\"child_ms\":";
    json_number(s, static_cast<double>(r.child_ns) / 1e6);
    s += '}';
  }
  s += "]}";
  return s;
}

// ---- Chrome trace-event sink ------------------------------------------------

bool profiling() noexcept {
  return g_profiling.load(std::memory_order_relaxed);
}

void set_profile_path(std::optional<std::filesystem::path> path) {
  const std::shared_ptr<SpanCore> core = core_ref();
  std::lock_guard<std::mutex> lk(core->mu);
  if (!path) {
    core->profile_path.clear();
    g_profiling.store(false, std::memory_order_relaxed);
  } else if (path->empty()) {
    const char* v = std::getenv("MPASS_PROFILE");
    core->profile_path = std::filesystem::path(v && *v ? v : "");
    g_profiling.store(!core->profile_path.empty(),
                      std::memory_order_relaxed);
  } else {
    core->profile_path = std::move(*path);
    g_profiling.store(true, std::memory_order_relaxed);
  }
}

namespace {

// One-shot exit hook: the first flush (explicit or at exit) registers
// nothing further; atexit runs before static destructors, so the shared
// ThreadPool's workers are still alive and their shards still merged.
void ensure_exit_flush() {
  static const bool registered = [] {
    std::atexit([] { flush_profile(); });
    return true;
  }();
  (void)registered;
}

void append_chrome_event(std::string& out, bool& first,
                         const ProfileEvent& ev, const SpanCore& c,
                         const std::vector<std::string>& names) {
  if (!first) out += ',';
  first = false;
  char buf[64];
  const double ts_us = static_cast<double>(ev.t0_ns) / 1e3;
  switch (ev.kind) {
    case ProfileEvent::kComplete: {
      const PathNode& node = c.paths[ev.path];
      out += "{\"ph\":\"X\",\"name\":";
      out += json_quote(c.sites[node.site].first);
      out += ",\"cat\":\"span\",\"pid\":1,\"tid\":";
      std::snprintf(buf, sizeof(buf), "%u,\"ts\":", ev.tid);
      out += buf;
      json_number(out, ts_us);
      out += ",\"dur\":";
      json_number(out, static_cast<double>(ev.dur_ns) / 1e3);
      out += ",\"args\":{\"path\":";
      out += json_quote(names[ev.path]);
      out += "}}";
      break;
    }
    case ProfileEvent::kFlowStart:
    case ProfileEvent::kFlowFinish: {
      const bool start = ev.kind == ProfileEvent::kFlowStart;
      out += start ? "{\"ph\":\"s\"" : "{\"ph\":\"f\",\"bp\":\"e\"";
      out += ",\"name\":\"pool.submit\",\"cat\":\"flow\",\"pid\":1,\"id\":";
      json_number(out, static_cast<double>(ev.flow));
      std::snprintf(buf, sizeof(buf), ",\"tid\":%u,\"ts\":", ev.tid);
      out += buf;
      json_number(out, ts_us);
      out += '}';
      break;
    }
  }
}

}  // namespace

void flush_profile() {
  const std::shared_ptr<SpanCore> core = core_ref();
  if (!g_profiling.load(std::memory_order_relaxed)) return;
  ensure_exit_flush();

  SpanCore& c = *core;
  std::lock_guard<std::mutex> lk(c.mu);
  if (c.profile_path.empty()) return;

  std::vector<ProfileEvent> events = c.retired_events;
  std::uint64_t dropped = c.retired_events_dropped;
  for (const SpanShard* s : c.shards) {
    std::lock_guard<std::mutex> slk(s->mu);
    events.insert(events.end(), s->events.begin(), s->events.end());
    dropped += s->events_dropped;
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const ProfileEvent& a, const ProfileEvent& b) {
                     return a.t0_ns < b.t0_ns;
                   });

  std::vector<std::string> names(c.paths.size());
  for (std::size_t id = 1; id < c.paths.size(); ++id) {
    const PathNode& node = c.paths[id];
    names[id] = node.parent == kRootPath
                    ? c.sites[node.site].first
                    : names[node.parent] + "/" + c.sites[node.site].first;
  }

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  out +=
      "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":1,\"args\":{\"name\":"
      "\"mpass\"}}";
  first = false;
  // Thread-name metadata: explicit names first, then a default for every
  // tid that recorded events but never named itself.
  std::map<std::uint32_t, std::string> tid_names = c.thread_names;
  for (const ProfileEvent& ev : events)
    if (!tid_names.count(ev.tid))
      tid_names[ev.tid] = "thread-" + std::to_string(ev.tid);
  for (const auto& [tid, name] : tid_names) {
    out += ",{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":";
    json_number(out, static_cast<double>(tid));
    out += ",\"args\":{\"name\":";
    out += json_quote(name);
    out += "}}";
  }
  for (const ProfileEvent& ev : events)
    append_chrome_event(out, first, ev, c, names);
  out += "]}";

  std::error_code ec;
  if (c.profile_path.has_parent_path())
    std::filesystem::create_directories(c.profile_path.parent_path(), ec);
  std::ofstream f(c.profile_path, std::ios::binary | std::ios::trunc);
  if (f) {
    f.write(out.data(), static_cast<std::streamsize>(out.size()));
  } else {
    std::fprintf(stderr, "span: cannot write profile %s\n",
                 c.profile_path.string().c_str());
  }
  if (dropped > 0)
    std::fprintf(stderr,
                 "span: profile dropped %llu events (per-thread cap %zu)\n",
                 static_cast<unsigned long long>(dropped),
                 kMaxEventsPerShard);
}

void set_thread_name(std::string_view name) {
  SpanTls& t = tls();
  std::lock_guard<std::mutex> lk(t.core->mu);
  t.core->thread_names[t.tid] = std::string(name);
}

}  // namespace mpass::obs
