// Differential tests for ByteConvNet's incremental forward (ISSUE 5): every
// delta entry point must agree with the full forward *bitwise* (EXPECT_EQ on
// floats, no tolerance) -- window-straddling edits, truncation-boundary
// edits at max_len, empty deltas, cache invalidation on weight updates, and
// the batched score_deltas candidate path.
#include <gtest/gtest.h>

#include <vector>

#include "ml/byteconv.hpp"
#include "util/rng.hpp"

namespace mpass::ml {
namespace {

using util::ByteBuf;

ByteConvConfig small_config() {
  ByteConvConfig cfg;
  cfg.max_len = 1024;
  cfg.embed_dim = 4;
  cfg.filters = 8;
  cfg.width = 16;
  cfg.stride = 8;
  cfg.hidden = 6;
  return cfg;
}

std::vector<ByteConvConfig> all_variants() {
  std::vector<ByteConvConfig> out;
  ByteConvConfig gated = small_config();
  out.push_back(gated);
  ByteConvConfig relu = small_config();
  relu.gated = false;
  out.push_back(relu);
  ByteConvConfig gcg = small_config();
  gcg.channel_gating = true;
  out.push_back(gcg);
  ByteConvConfig nonneg = small_config();
  nonneg.nonneg = true;
  out.push_back(nonneg);
  return out;
}

/// Applies `edit` at `pos` and checks forward_delta and forward_auto both
/// match a full-forward reference net with identical parameters.
void expect_delta_matches(ByteConvNet& inc, ByteConvNet& ref, const ByteBuf& buf,
                          std::size_t lo, std::size_t hi) {
  const ByteRange dirty{lo, hi};
  const float d = inc.forward_delta(buf, {&dirty, 1});
  const float f = ref.forward(buf);
  EXPECT_EQ(d, f) << "forward_delta range [" << lo << "," << hi << ")";
  EXPECT_EQ(inc.forward_auto(buf), f);
}

TEST(ByteConvIncremental, RandomWindowEditsBitwiseEqualAllVariants) {
  for (const ByteConvConfig& cfg : all_variants()) {
    ByteConvNet inc(cfg, 11);
    ByteConvNet ref(inc);
    inc.set_incremental(true);
    ref.set_incremental(false);

    util::Rng rng(42);
    // Sizes around every boundary: empty, < width, == width, < max_len,
    // == max_len, and > max_len (truncation).
    for (const std::size_t size :
         {std::size_t{0}, std::size_t{7}, std::size_t{16}, std::size_t{300},
          cfg.max_len, cfg.max_len + 512}) {
      ByteBuf buf = rng.bytes(size);
      EXPECT_EQ(inc.forward_auto(buf), ref.forward(buf)) << "size " << size;
      if (size == 0) continue;
      for (int i = 0; i < 20; ++i) {
        const std::size_t pos = rng.below(buf.size());
        const std::size_t len =
            std::min<std::size_t>(1 + rng.below(48), buf.size() - pos);
        for (std::size_t j = 0; j < len; ++j) buf[pos + j] = rng.byte();
        expect_delta_matches(inc, ref, buf, pos, pos + len);
      }
    }
  }
}

TEST(ByteConvIncremental, WindowStraddlingAndTruncationBoundary) {
  const ByteConvConfig cfg = small_config();
  ByteConvNet inc(cfg, 3);
  ByteConvNet ref(inc);
  ref.set_incremental(false);
  util::Rng rng(9);
  ByteBuf buf = rng.bytes(cfg.max_len + 256);

  EXPECT_EQ(inc.forward_auto(buf), ref.forward(buf));
  const std::size_t W = static_cast<std::size_t>(cfg.width);
  // Edits placed to straddle conv-window and stride boundaries, plus edits
  // straddling and entirely past the max_len truncation point.
  const std::size_t spots[] = {0,
                               W - 1,
                               W,
                               W + 1,
                               5 * W - 2,
                               cfg.max_len - W / 2,   // straddles truncation
                               cfg.max_len,           // entirely truncated
                               cfg.max_len + 100};
  for (const std::size_t pos : spots) {
    const std::size_t len = std::min<std::size_t>(W, buf.size() - pos);
    for (std::size_t j = 0; j < len; ++j) buf[pos + j] = rng.byte();
    expect_delta_matches(inc, ref, buf, pos, pos + len);
  }
}

TEST(ByteConvIncremental, EmptyAndNoopDeltas) {
  const ByteConvConfig cfg = small_config();
  ByteConvNet inc(cfg, 5);
  ByteConvNet ref(inc);
  ref.set_incremental(false);
  util::Rng rng(17);
  const ByteBuf buf = rng.bytes(700);

  const float base = ref.forward(buf);
  EXPECT_EQ(inc.forward_auto(buf), base);
  // Empty dirty set.
  EXPECT_EQ(inc.forward_delta(buf, {}), base);
  // Empty range and a range declared dirty whose bytes did not change
  // (unchanged-value writes must stay bitwise stable).
  const ByteRange empty{40, 40};
  EXPECT_EQ(inc.forward_delta(buf, {&empty, 1}), base);
  const ByteRange noop{100, 180};
  EXPECT_EQ(inc.forward_delta(buf, {&noop, 1}), base);
  // Unchanged buffer through the auto path hits the cache.
  EXPECT_EQ(inc.forward_auto(buf), base);
}

TEST(ByteConvIncremental, WholeBufferDirtyFallsBackToFull) {
  const ByteConvConfig cfg = small_config();
  ByteConvNet inc(cfg, 5);
  ByteConvNet ref(inc);
  ref.set_incremental(false);
  util::Rng rng(23);
  ByteBuf buf = rng.bytes(800);
  EXPECT_EQ(inc.forward_auto(buf), ref.forward(buf));
  for (auto& x : buf) x = rng.byte();
  const ByteRange all{0, buf.size()};
  EXPECT_EQ(inc.forward_delta(buf, {&all, 1}), ref.forward(buf));
}

TEST(ByteConvIncremental, CumulativeChainedDeltas) {
  const ByteConvConfig cfg = small_config();
  ByteConvNet inc(cfg, 29);
  ByteConvNet ref(inc);
  ref.set_incremental(false);
  util::Rng rng(31);
  ByteBuf buf = rng.bytes(900);
  EXPECT_EQ(inc.forward_auto(buf), ref.forward(buf));
  // Long chains of deltas must not drift: each step reconvolves only its
  // own windows yet the state stays bitwise equal to from-scratch forwards.
  for (int i = 0; i < 200; ++i) {
    const std::size_t pos = rng.below(buf.size());
    buf[pos] = rng.byte();
    expect_delta_matches(inc, ref, buf, pos, pos + 1);
  }
}

TEST(ByteConvIncremental, ParamUpdateInvalidatesCache) {
  const ByteConvConfig cfg = small_config();
  ByteConvNet inc(cfg, 37);
  ByteConvNet ref(inc);
  ref.set_incremental(false);
  util::Rng rng(41);
  const ByteBuf buf = rng.bytes(600);
  EXPECT_EQ(inc.forward_auto(buf), ref.forward(buf));

  // An Adam step moves the weights of both nets identically; the cached
  // activations are stale and must not be served.
  auto train_step = [&](ByteConvNet& net) {
    net.params().zero_grad();
    net.forward(buf);
    net.backward(/*target=*/1.0f, nullptr, /*accumulate_params=*/true);
    Adam opt(net.params(), 1e-2f);
    opt.step();
  };
  train_step(inc);
  train_step(ref);
  EXPECT_EQ(inc.forward_auto(buf), ref.forward(buf))
      << "stale cache served after a weight update";
}

TEST(ByteConvIncremental, ScoreDeltasMatchesIndependentFullForwards) {
  for (const ByteConvConfig& cfg : all_variants()) {
    ByteConvNet inc(cfg, 43);
    ByteConvNet ref(inc);
    ref.set_incremental(false);
    util::Rng rng(47);
    const ByteBuf base = rng.bytes(cfg.max_len);
    const float base_score = ref.forward(base);

    std::vector<ByteBuf> payloads(12);
    std::vector<ByteEdit> edits;
    for (ByteBuf& p : payloads) {
      p = rng.bytes(1 + rng.below(64));
      edits.push_back({rng.below(base.size()), p});
    }
    // Out-of-range edit: clamped to a no-op tail write.
    payloads.push_back(rng.bytes(32));
    edits.push_back({base.size() - 8, payloads.back()});

    const std::vector<float> got = inc.score_deltas(base, edits);
    ASSERT_EQ(got.size(), edits.size());
    for (std::size_t i = 0; i < edits.size(); ++i) {
      ByteBuf variant = base;
      const std::size_t lo = std::min(edits[i].offset, variant.size());
      const std::size_t hi =
          std::min(edits[i].offset + edits[i].bytes.size(), variant.size());
      for (std::size_t j = lo; j < hi; ++j)
        variant[j] = edits[i].bytes[j - lo];
      EXPECT_EQ(got[i], ref.forward(variant)) << "edit " << i;
    }
    // The cache must be rolled back to the unedited base afterwards.
    EXPECT_EQ(inc.forward_auto(base), base_score);
  }
}

TEST(ByteConvIncremental, DisabledIncrementalAlwaysRunsFull) {
  const ByteConvConfig cfg = small_config();
  ByteConvNet a(cfg, 53);
  ByteConvNet b(a);
  a.set_incremental(false);
  b.set_incremental(true);
  EXPECT_FALSE(a.incremental());
  EXPECT_TRUE(b.incremental());
  util::Rng rng(59);
  ByteBuf buf = rng.bytes(512);
  for (int i = 0; i < 8; ++i) {
    buf[rng.below(buf.size())] = rng.byte();
    EXPECT_EQ(a.forward_auto(buf), b.forward_auto(buf));
    const ByteRange whole{0, buf.size()};
    EXPECT_EQ(a.forward_delta(buf, {&whole, 1}), b.forward(buf));
  }
}

}  // namespace
}  // namespace mpass::ml
