// Trace inspector for MPASS_TRACE directories and metrics snapshots.
//
//   mpass_trace check <dir>      validate every JSONL line + reconcile
//                                query budgets (exit 1 on violations)
//   mpass_trace summary <dir>    per-attack query-budget breakdown and
//                                ensemble-loss curves; --spans adds the
//                                top call-path self-times from spans.json
//   mpass_trace diff <a> <b>     compare two metrics.json snapshots
//
// `--check` is accepted as an alias of `check` (CI convenience).
#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace_check.hpp"
#include "util/serialize.hpp"

namespace {

using mpass::obs::CellTraceData;
using mpass::obs::Json;
using mpass::obs::SampleTraceData;
using mpass::obs::TraceCheckReport;

int usage() {
  std::fprintf(stderr,
               "usage: mpass_trace check <trace-dir>\n"
               "       mpass_trace summary <trace-dir> [--spans [N]]\n"
               "       mpass_trace diff <a/metrics.json> <b/metrics.json>\n");
  return 2;
}

int run_check(const std::filesystem::path& dir) {
  const TraceCheckReport rep = mpass::obs::check_trace_dir(dir);
  std::printf("%s: %zu files, %zu lines, %zu sample traces, %zu cells\n",
              dir.string().c_str(), rep.files, rep.lines,
              rep.data.samples.size(), rep.data.cells.size());
  for (const std::string& w : rep.warnings)
    std::printf("warning: %s\n", w.c_str());
  for (const std::string& e : rep.errors)
    std::printf("error: %s\n", e.c_str());
  std::printf("%s\n", rep.ok() ? "OK" : "FAILED");
  return rep.ok() ? 0 : 1;
}

/// Renders one sample's opt-loss curve as a compact sparkline-ish row of
/// bucket means (10 columns over the iteration range).
std::string loss_curve(const std::vector<SampleTraceData::Opt>& opts) {
  if (opts.empty()) return "(no opt steps)";
  constexpr std::size_t kCols = 10;
  std::string out;
  char buf[32];
  for (std::size_t c = 0; c < kCols; ++c) {
    const std::size_t lo = c * opts.size() / kCols;
    const std::size_t hi = std::max(lo + 1, (c + 1) * opts.size() / kCols);
    double sum = 0.0;
    for (std::size_t i = lo; i < hi && i < opts.size(); ++i)
      sum += opts[i].loss;
    std::snprintf(buf, sizeof(buf), "%s%.3f", c ? " " : "",
                  sum / static_cast<double>(hi - lo));
    out += buf;
  }
  return out;
}

/// `summary --spans [N]`: top-N call-path self-times from the run's
/// spans.json (written next to metrics.json by write_metrics_snapshot).
int print_spans_section(const std::filesystem::path& dir, std::size_t top_n) {
  const std::filesystem::path path = dir / "spans.json";
  const auto blob = mpass::util::load_file(path);
  if (!blob) {
    std::printf("\n== spans ==\n(no spans.json in %s)\n",
                dir.string().c_str());
    return 0;
  }
  const auto doc = Json::parse(std::string_view(
      reinterpret_cast<const char*>(blob->data()), blob->size()));
  const auto rows = doc ? mpass::obs::parse_spans(*doc) : std::nullopt;
  if (!rows) {
    std::fprintf(stderr, "error: %s: not a valid spans document\n",
                 path.string().c_str());
    return 1;
  }
  std::printf("\n== spans (top %zu by self time) ==\n", top_n);
  std::fputs(mpass::obs::render_span_top(*rows, top_n).c_str(), stdout);
  return 0;
}

int run_summary(const std::filesystem::path& dir, bool spans,
                std::size_t spans_n) {
  const TraceCheckReport rep = mpass::obs::check_trace_dir(dir);
  if (!rep.ok()) {
    for (const std::string& e : rep.errors)
      std::fprintf(stderr, "error: %s\n", e.c_str());
    return 1;
  }

  // Per-attack aggregation across all traced samples.
  struct AttackAgg {
    std::size_t samples = 0, successes = 0, functional = 0;
    std::uint64_t queries = 0, budget = 0;
    std::uint64_t opt_steps = 0;
    std::size_t actions = 0;
    double ms = 0.0;
  };
  std::map<std::string, AttackAgg> by_attack;
  for (const SampleTraceData& s : rep.data.samples) {
    AttackAgg& a = by_attack[s.attack];
    ++a.samples;
    if (s.success) ++a.successes;
    if (s.functional) ++a.functional;
    a.queries += s.end_queries;
    a.budget += s.budget;
    a.opt_steps += s.opts.size();
    a.actions += s.actions;
    a.ms += s.ms;
  }

  std::printf("== per-attack query budget (%zu sample traces) ==\n",
              rep.data.samples.size());
  std::printf("%-16s %8s %8s %8s %10s %8s %10s %9s\n", "attack", "samples",
              "success", "queries", "budget", "used%", "opt-steps", "actions");
  for (const auto& [name, a] : by_attack) {
    const double used =
        a.budget ? 100.0 * static_cast<double>(a.queries) /
                       static_cast<double>(a.budget)
                 : 0.0;
    std::printf("%-16s %8zu %8zu %8llu %10llu %7.1f%% %10llu %9zu\n",
                name.c_str(), a.samples, a.successes,
                static_cast<unsigned long long>(a.queries),
                static_cast<unsigned long long>(a.budget), used,
                static_cast<unsigned long long>(a.opt_steps), a.actions);
  }

  // Cell reconciliation table (from cells.jsonl; later lines win).
  if (!rep.data.cells.empty()) {
    std::printf("\n== cells ==\n");
    std::printf("%-16s %-12s %5s %7s %9s %10s\n", "attack", "target", "n",
                "traced", "queries", "wall-ms");
    for (const CellTraceData& c : rep.data.cells)
      std::printf("%-16s %-12s %5llu %7llu %9llu %10.0f\n", c.attack.c_str(),
                  c.target.c_str(), static_cast<unsigned long long>(c.n),
                  static_cast<unsigned long long>(c.traced),
                  static_cast<unsigned long long>(c.total_queries), c.wall_ms);
  }

  // Loss curves: one row per traced sample that ran the optimizer, capped
  // to keep the output readable.
  constexpr std::size_t kMaxCurves = 12;
  std::size_t shown = 0;
  std::printf("\n== ensemble loss curves (bucket means, %zu max) ==\n",
              kMaxCurves);
  for (const SampleTraceData& s : rep.data.samples) {
    if (s.opts.empty()) continue;
    if (++shown > kMaxCurves) break;
    std::printf("%-10s vs %-10s %s  [%zu steps, %s]\n", s.attack.c_str(),
                s.target.c_str(), s.sample.substr(0, 8).c_str(),
                s.opts.size(), loss_curve(s.opts).c_str());
  }
  if (shown == 0) std::printf("(no optimizer traces)\n");
  if (spans) return print_spans_section(dir, spans_n);
  return 0;
}

/// Loads a metrics.json snapshot into flat name -> value pairs
/// (counters as-is, gauges, histogram .count/.sum), mirroring
/// obs::Snapshot::flat().
std::optional<std::map<std::string, double>> load_metrics(
    const std::filesystem::path& path) {
  const auto blob = mpass::util::load_file(path);
  if (!blob) {
    std::fprintf(stderr, "cannot read %s\n", path.string().c_str());
    return std::nullopt;
  }
  const auto doc =
      Json::parse(std::string_view(reinterpret_cast<const char*>(blob->data()),
                                   blob->size()));
  if (!doc || !doc->is_object()) {
    std::fprintf(stderr, "%s: not a JSON object\n", path.string().c_str());
    return std::nullopt;
  }
  std::map<std::string, double> flat;
  if (const Json* counters = doc->get("counters"); counters)
    for (const auto& [name, v] : counters->fields())
      if (v.is_number()) flat[name] = v.number();
  if (const Json* gauges = doc->get("gauges"); gauges)
    for (const auto& [name, v] : gauges->fields())
      if (v.is_number()) flat[name] = v.number();
  if (const Json* hists = doc->get("histograms"); hists)
    for (const auto& [name, h] : hists->fields()) {
      if (const Json* c = h.get("count"); c && c->is_number())
        flat[name + ".count"] = c->number();
      if (const Json* s = h.get("sum"); s && s->is_number())
        flat[name + ".sum"] = s->number();
    }
  return flat;
}

int run_diff(const std::filesystem::path& a_path,
             const std::filesystem::path& b_path) {
  const auto a = load_metrics(a_path);
  const auto b = load_metrics(b_path);
  if (!a || !b) return 2;

  std::vector<std::string> names;
  for (const auto& [name, v] : *a) names.push_back(name);
  for (const auto& [name, v] : *b)
    if (!a->count(name)) names.push_back(name);
  std::sort(names.begin(), names.end());

  std::printf("%-40s %14s %14s %14s\n", "metric", "a", "b", "delta");
  std::size_t changed = 0;
  for (const std::string& name : names) {
    const auto ia = a->find(name), ib = b->find(name);
    const double va = ia == a->end() ? 0.0 : ia->second;
    const double vb = ib == b->end() ? 0.0 : ib->second;
    if (va == vb) continue;
    ++changed;
    std::printf("%-40s %14.6g %14.6g %+14.6g\n", name.c_str(), va, vb,
                vb - va);
  }
  std::printf("%zu metrics differ (of %zu)\n", changed, names.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string_view cmd = argv[1];
  if (cmd == "check" || cmd == "--check") return run_check(argv[2]);
  if (cmd == "summary") {
    bool spans = false;
    std::size_t spans_n = 20;
    for (int i = 3; i < argc; ++i) {
      if (std::strcmp(argv[i], "--spans") == 0) {
        spans = true;
        if (i + 1 < argc && std::isdigit(static_cast<unsigned char>(argv[i + 1][0])))
          spans_n = std::strtoull(argv[++i], nullptr, 10);
      }
    }
    return run_summary(argv[2], spans, spans_n);
  }
  if (cmd == "diff") {
    if (argc < 4) return usage();
    return run_diff(argv[2], argv[3]);
  }
  return usage();
}
