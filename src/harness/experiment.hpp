// Experiment harness: runs attack x detector grids under the paper's
// protocol and metrics, with on-disk caching so the per-table bench binaries
// share one set of runs (Tables I-III all come from the same grid).
//
// Protocol (paper §IV "Datasets and baselines"): attack samples must be
// (1) initially detected by the target models and (2) confirmed malicious in
// the sandbox. Metrics: ASR, AVQ (mean queries per successful AE), APR
// (mean file-size increase of successful AEs), plus the sandbox
// functionality-verification rate of §IV-A.
#pragma once

#include <functional>
#include <memory>

#include "attack/attack.hpp"
#include "detectors/zoo.hpp"
#include "util/threadpool.hpp"
#include "vm/sandbox.hpp"

namespace mpass::harness {

struct ExperimentConfig {
  std::size_t n_samples = 60;     // malware per grid cell (MPASS_N)
  std::size_t max_queries = 100;  // per-sample query budget (paper: 100)
  std::uint64_t seed = 2023;
  bool use_cache = true;

  static ExperimentConfig from_env();
  std::uint64_t digest() const;
};

/// Aggregate results of one attack against one target.
struct CellStats {
  std::string attack;
  std::string target;
  std::size_t n = 0;             // samples attacked
  std::size_t successes = 0;     // bypassing AEs
  double asr = 0.0;              // successes / n (percent)
  double avq = 0.0;              // mean queries over successful AEs
  double apr = 0.0;              // mean APR (percent) over successful AEs
  double functional = 0.0;       // % of successful AEs passing the sandbox
  std::vector<util::ByteBuf> aes;  // functional successful AEs (Fig. 4 input)
  // Throughput counters (informative only; excluded from result_digest()).
  std::size_t total_queries = 0;  // oracle queries across all samples
  // Summed per-sample attack compute time. Cells interleave on the shared
  // pool, so a cell's wall-clock span says nothing about its cost; the sum
  // of its sample-task durations does (and cache hits count as ~0).
  double wall_ms = 0.0;
  double qps = 0.0;  // total_queries / (wall_ms seconds); 0 when unmeasured
  // Flattened obs::Registry snapshot taken when the cell finished computing
  // (counters, gauges, histogram .count/.sum). Informative only: excluded
  // from result_digest(), and empty for cells loaded from the cell cache of
  // an older run. `tools/mpass_trace diff` compares two of these.
  std::vector<std::pair<std::string, double>> metrics;

  /// Digest of the deterministic result fields (everything except the
  /// timing counters). run_cell guarantees this is identical regardless of
  /// MPASS_THREADS and scheduling order.
  std::uint64_t result_digest() const;
};

/// Builds the attack sample set: validated malware detected by all `gate`
/// detectors (the paper's requirement (1)+(2)).
std::vector<util::ByteBuf> make_attack_set(
    std::span<const detect::Detector* const> gate, std::size_t n,
    std::uint64_t seed);

/// Runs one attack against one target over the sample set.
///
/// When both the attack and the target are clonable, every sample becomes
/// an independent task on the thread pool (`pool`, defaulting to
/// ThreadPool::instance() sized by MPASS_THREADS): the task owns a cloned
/// attack + cloned target and a deterministic RNG stream seeded from
/// (cfg.seed, sample digest), so the aggregated CellStats (and its
/// result_digest()) are identical for any thread count. Per-sample results
/// are cached under (config digest, attack, target, sample digest), letting
/// interrupted or partially invalidated runs resume instead of recomputing
/// whole cells. Non-clonable attacks/targets (e.g. test doubles) run their
/// samples sequentially on the shared instances, without the per-sample
/// cache (cross-sample attack state makes cached entries order-dependent).
CellStats run_cell(attack::Attack& atk, const detect::Detector& target,
                   std::span<const util::ByteBuf> samples,
                   std::span<const util::ByteBuf> originals_for_sandbox,
                   const ExperimentConfig& cfg,
                   util::ThreadPool* pool = nullptr);

/// Attack factory. Names: MPass, RLA, MAB, GAMMA, MalRNN, UPX, PESpin,
/// ASPack, Other-sec, Random-data, MPass-noshuffle.
/// `target_name` controls MPass's known-model exclusion (offline targets
/// only; commercial AVs never leak their models).
std::unique_ptr<attack::Attack> make_attack(std::string_view name,
                                            detect::ModelZoo& zoo,
                                            std::string_view target_name);

// ---- cached experiment entry points (one per paper artifact) -------------

/// Tables I-III: {MPass,RLA,MAB,GAMMA,MalRNN} x 4 offline models.
std::vector<CellStats> offline_grid(const ExperimentConfig& cfg);

/// Fig. 3: same five attacks x 5 commercial AVs (keeps AEs for Fig. 4).
std::vector<CellStats> av_grid(const ExperimentConfig& cfg);

/// Table IV: {UPX,PESpin,ASPack,MPass} x 5 AVs.
std::vector<CellStats> obfuscation_grid(const ExperimentConfig& cfg);

/// Table V: {Other-sec, MPass} x 5 AVs.
std::vector<CellStats> other_sec_grid(const ExperimentConfig& cfg);

/// Table VI: {Random-data, MPass} x 5 AVs.
std::vector<CellStats> random_data_grid(const ExperimentConfig& cfg);

/// Fig. 4: bypass-rate timeline under weekly AV signature learning.
/// Returns bypass_rate[attack][round] (round 0 = 100 by construction),
/// attacks ordered as in av_grid.
struct LearningTimeline {
  std::vector<std::string> attacks;
  std::vector<std::string> avs;
  // bypass[attack][av][round], percent.
  std::vector<std::vector<std::vector<double>>> bypass;
  std::size_t rounds = 5;
};
LearningTimeline av_learning_timeline(const ExperimentConfig& cfg);

// ---- result cache ----------------------------------------------------------

void save_cells(std::string_view key, const ExperimentConfig& cfg,
                const std::vector<CellStats>& cells);
std::optional<std::vector<CellStats>> load_cells(std::string_view key,
                                                 const ExperimentConfig& cfg);

/// Writes a grid as CSV (attack,target,n,successes,asr,avq,apr,functional)
/// for external plotting; AE payloads are not exported.
void export_csv(const std::filesystem::path& path,
                const std::vector<CellStats>& cells);

}  // namespace mpass::harness
