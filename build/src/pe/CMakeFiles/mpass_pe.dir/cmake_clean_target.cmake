file(REMOVE_RECURSE
  "libmpass_pe.a"
)
