# Empty dependencies file for bench_fig4_av_learning.
# This may be replaced when dependencies are built.
