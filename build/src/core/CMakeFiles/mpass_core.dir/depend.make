# Empty dependencies file for mpass_core.
# This may be replaced when dependencies are built.
