// Versioned binary serialization for trained models and cached experiment
// results, so benchmark binaries can share work instead of retraining.
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "util/bytes.hpp"

namespace mpass::util {

/// Appending archive writer with tagged sections for sanity checking.
class Archive {
 public:
  void tag(std::string_view name);          // writes len+bytes marker
  void f32(float v) { w_.write(v); }
  void f64(double v) { w_.write(v); }
  void u32(std::uint32_t v) { w_.u32(v); }
  void u64(std::uint64_t v) { w_.u64(v); }
  void i64(std::int64_t v) { w_.write(v); }
  void str(std::string_view s);
  void floats(std::span<const float> xs);
  void doubles(std::span<const double> xs);
  void bytes(std::span<const std::uint8_t> xs);

  ByteBuf take() { return w_.take(); }

 private:
  ByteWriter w_;
};

/// Matching reader; throws ParseError on tag mismatch or truncation.
class Unarchive {
 public:
  explicit Unarchive(std::span<const std::uint8_t> data) : r_(data) {}

  void tag(std::string_view expect);  // verifies a tag written by Archive
  float f32() { return r_.read<float>(); }
  double f64() { return r_.read<double>(); }
  std::uint32_t u32() { return r_.u32(); }
  std::uint64_t u64() { return r_.u64(); }
  std::int64_t i64() { return r_.read<std::int64_t>(); }
  std::string str();
  std::vector<float> floats();
  std::vector<double> doubles();
  ByteBuf bytes();
  bool eof() const { return r_.eof(); }

 private:
  ByteReader r_;
};

/// Writes a whole buffer to disk atomically (temp file + rename).
void save_file(const std::filesystem::path& path, const ByteBuf& data);

/// Reads a whole file; nullopt if missing/unreadable.
std::optional<ByteBuf> load_file(const std::filesystem::path& path);

/// Cache directory for trained models/experiment results.
/// Honors MPASS_CACHE_DIR; defaults to ".mpass_cache" in the CWD.
std::filesystem::path cache_dir();

}  // namespace mpass::util
