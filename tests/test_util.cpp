// Unit tests for util: RNG, byte IO, entropy, hashing, stats, tables.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/bytes.hpp"
#include "util/entropy.hpp"
#include "util/hashing.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace mpass::util {
namespace {

TEST(Rng, DeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    const auto va = a();
    EXPECT_EQ(va, b());
    // Different seeds should diverge almost surely.
  }
  bool diverged = false;
  Rng a2(42);
  for (int i = 0; i < 10; ++i)
    if (a2() != c()) diverged = true;
  EXPECT_TRUE(diverged);
}

TEST(Rng, BelowIsInRangeAndCoversValues) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = rng.below(10);
    ASSERT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all buckets hit
}

TEST(Rng, RangeInclusiveBounds) {
  Rng rng(9);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.range(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    hit_lo |= (v == -3);
    hit_hi |= (v == 3);
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, GaussianMoments) {
  Rng rng(13);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.1);
}

TEST(Rng, WeightedRespectsWeights) {
  Rng rng(17);
  const double w[] = {0.0, 1.0, 3.0};
  int counts[3] = {};
  for (int i = 0; i < 9000; ++i) ++counts[rng.weighted(w)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_GT(counts[2], counts[1] * 2);
  EXPECT_LT(counts[2], counts[1] * 4);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(19);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  auto copy = v;
  std::sort(copy.begin(), copy.end());
  EXPECT_EQ(copy, sorted);
}

TEST(Rng, ForkDecorrelates) {
  Rng a(5);
  Rng child = a.fork();
  EXPECT_NE(a(), child());
}

// ---- bytes -----------------------------------------------------------------

TEST(Bytes, ReaderScalarsLittleEndian) {
  const ByteBuf data = {0x01, 0x02, 0x03, 0x04, 0xFF};
  ByteReader r(data);
  EXPECT_EQ(r.u16(), 0x0201u);
  EXPECT_EQ(r.u16(), 0x0403u);
  EXPECT_EQ(r.u8(), 0xFFu);
  EXPECT_TRUE(r.eof());
}

TEST(Bytes, ReaderThrowsPastEnd) {
  const ByteBuf data = {0x01};
  ByteReader r(data);
  EXPECT_THROW(r.u32(), ParseError);
}

TEST(Bytes, WriterRoundTrip) {
  ByteWriter w;
  w.u32(0xDEADBEEF);
  w.fixed_string("hi", 4);
  w.align_to(8);
  const ByteBuf buf = w.take();
  EXPECT_EQ(buf.size(), 8u);
  ByteReader r(buf);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.fixed_string(4), "hi");
}

TEST(Bytes, WriterPatch) {
  ByteWriter w;
  w.u32(0);
  w.u32(7);
  w.patch<std::uint32_t>(0, 99);
  ByteReader r(w.buffer());
  EXPECT_EQ(r.u32(), 99u);
  EXPECT_EQ(r.u32(), 7u);
}

TEST(Bytes, AlignUp) {
  EXPECT_EQ(align_up(0, 512), 0u);
  EXPECT_EQ(align_up(1, 512), 512u);
  EXPECT_EQ(align_up(512, 512), 512u);
  EXPECT_EQ(align_up(513, 512), 1024u);
  EXPECT_EQ(align_up(7, 0), 7u);
}

TEST(Bytes, ToHex) {
  const ByteBuf b = {0x00, 0xAB, 0xFF};
  EXPECT_EQ(to_hex(b), "00abff");
}

// ---- entropy ----------------------------------------------------------------

TEST(Entropy, UniformBytesNearEight) {
  ByteBuf data(256 * 64);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<std::uint8_t>(i % 256);
  EXPECT_NEAR(shannon_entropy(data), 8.0, 1e-9);
}

TEST(Entropy, ConstantBytesZero) {
  const ByteBuf data(1024, 0x41);
  EXPECT_DOUBLE_EQ(shannon_entropy(data), 0.0);
  EXPECT_DOUBLE_EQ(shannon_entropy({}), 0.0);
}

TEST(Entropy, RandomBytesHigh) {
  Rng rng(3);
  EXPECT_GT(shannon_entropy(rng.bytes(8192)), 7.9);
}

TEST(Entropy, ByteEntropyHistogramNormalized) {
  Rng rng(4);
  const auto hist = byte_entropy_histogram(rng.bytes(4096), 256);
  float sum = 0;
  for (float v : hist) sum += v;
  EXPECT_NEAR(sum, 1.0f, 1e-5f);
}

TEST(Entropy, PrintableRatio) {
  EXPECT_DOUBLE_EQ(printable_ratio(as_bytes("hello")), 1.0);
  const ByteBuf data = {0x00, 'a', 0x01, 'b'};
  EXPECT_DOUBLE_EQ(printable_ratio(data), 0.5);
}

// ---- hashing ----------------------------------------------------------------

TEST(Hashing, Fnv1aKnownVector) {
  // FNV-1a 64 of empty input is the offset basis.
  EXPECT_EQ(fnv1a64(std::string_view("")), 0xcbf29ce484222325ULL);
  EXPECT_NE(fnv1a64(std::string_view("a")), fnv1a64(std::string_view("b")));
}

TEST(Hashing, Crc32KnownVector) {
  // CRC-32("123456789") = 0xCBF43926 (classic check value).
  EXPECT_EQ(crc32(as_bytes("123456789")), 0xCBF43926u);
}

TEST(Hashing, CombineOrderSensitive) {
  EXPECT_NE(hash_combine(hash_combine(1, 2), 3),
            hash_combine(hash_combine(1, 3), 2));
}

// ---- stats -------------------------------------------------------------------

TEST(Stats, MeanStd) {
  const double xs[] = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_NEAR(stddev(xs), std::sqrt(1.25), 1e-12);
}

TEST(Stats, Median) {
  EXPECT_DOUBLE_EQ(median({5, 1, 3}), 3.0);
  EXPECT_DOUBLE_EQ(median({4, 1, 3, 2}), 2.5);
  EXPECT_DOUBLE_EQ(median({}), 0.0);
}

TEST(Stats, ConfusionAndRates) {
  const double scores[] = {0.9, 0.8, 0.2, 0.1};
  const int labels[] = {1, 0, 1, 0};
  const Confusion c = confusion_at(scores, labels, 0.5);
  EXPECT_EQ(c.tp, 1u);
  EXPECT_EQ(c.fp, 1u);
  EXPECT_EQ(c.fn, 1u);
  EXPECT_EQ(c.tn, 1u);
  EXPECT_DOUBLE_EQ(c.accuracy(), 0.5);
}

TEST(Stats, ThresholdForFprRespectsBudget) {
  // 10 negatives scored 0.0..0.9, 5 positives at 0.95.
  std::vector<double> scores;
  std::vector<int> labels;
  for (int i = 0; i < 10; ++i) {
    scores.push_back(i / 10.0);
    labels.push_back(0);
  }
  for (int i = 0; i < 5; ++i) {
    scores.push_back(0.95);
    labels.push_back(1);
  }
  const double thr = threshold_for_fpr(scores, labels, 0.1);
  const Confusion c = confusion_at(scores, labels, thr);
  EXPECT_LE(c.fpr(), 0.1);
  EXPECT_DOUBLE_EQ(c.tpr(), 1.0);
}

TEST(Stats, AucPerfectAndRandom) {
  const double s1[] = {0.9, 0.8, 0.2, 0.1};
  const int l1[] = {1, 1, 0, 0};
  EXPECT_DOUBLE_EQ(auc(s1, l1), 1.0);
  const int l2[] = {0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(auc(s1, l2), 0.0);
  const double s3[] = {0.5, 0.5, 0.5, 0.5};
  EXPECT_DOUBLE_EQ(auc(s3, l1), 0.5);  // ties get half credit
}

// ---- table -------------------------------------------------------------------

TEST(Table, RendersAlignedColumns) {
  Table t("demo");
  t.header({"a", "long-column"});
  t.row({"x", "1"});
  t.row({"yy", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find("long-column"), std::string::npos);
  EXPECT_NE(out.find("| yy"), std::string::npos);
}

TEST(Table, NumFormatsDecimals) {
  EXPECT_EQ(Table::num(1.25, 1), "1.2");
  EXPECT_EQ(Table::num(98.6), "98.6");
}

}  // namespace
}  // namespace mpass::util
