// Tests for the from-scratch ML stack: numerical gradient checks on the
// byte-conv net, GBDT fitting behavior, GRU language-model learning, Adam.
#include <gtest/gtest.h>

#include <cmath>

#include "ml/byteconv.hpp"
#include "ml/gbdt.hpp"
#include "ml/gru.hpp"
#include "util/rng.hpp"

namespace mpass::ml {
namespace {

using util::ByteBuf;

ByteConvConfig tiny_config() {
  ByteConvConfig cfg;
  cfg.max_len = 256;
  cfg.embed_dim = 4;
  cfg.filters = 6;
  cfg.width = 8;
  cfg.stride = 4;
  cfg.hidden = 5;
  return cfg;
}

// Central-difference gradient check of every parameter tensor.
void gradient_check(const ByteConvConfig& cfg, float target) {
  ByteConvNet net(cfg, 7);
  util::Rng rng(3);
  const ByteBuf input = rng.bytes(200);

  net.forward(input);
  net.params().zero_grad();
  net.backward(target);

  const float eps = 1e-3f;
  int checked = 0;
  for (Param* p : net.params().all()) {
    if (p->size() == 0) continue;
    // Probe a handful of coordinates per tensor.
    for (std::size_t j = 0; j < p->size(); j += std::max<std::size_t>(1, p->size() / 5)) {
      const float orig = p->w[j];
      p->w[j] = orig + eps;
      const float up = bce_loss(net.forward(input), target);
      p->w[j] = orig - eps;
      const float down = bce_loss(net.forward(input), target);
      p->w[j] = orig;
      const float numeric = (up - down) / (2 * eps);
      const float analytic = p->g[j];
      // Max-pool argmax switches make gradients piecewise; allow tolerance.
      EXPECT_NEAR(analytic, numeric, 5e-2f + 0.05f * std::abs(numeric))
          << p->name << "[" << j << "]";
      ++checked;
    }
  }
  EXPECT_GT(checked, 20);
}

TEST(ByteConv, GradientCheckPlain) {
  ByteConvConfig cfg = tiny_config();
  cfg.gated = false;
  gradient_check(cfg, 1.0f);
}

TEST(ByteConv, GradientCheckGated) { gradient_check(tiny_config(), 0.0f); }

TEST(ByteConv, GradientCheckChannelGated) {
  ByteConvConfig cfg = tiny_config();
  cfg.channel_gating = true;
  gradient_check(cfg, 1.0f);
}

TEST(ByteConv, InputGradientMatchesNumeric) {
  const ByteConvConfig cfg = tiny_config();
  ByteConvNet net(cfg, 9);
  util::Rng rng(5);
  const ByteBuf input = rng.bytes(120);
  net.forward(input);
  std::vector<float> grad;
  net.backward(0.0f, &grad, /*accumulate_params=*/false);

  // Perturb one embedding coordinate via the embedding table of the byte at
  // position t (only occurrence matters, so pick a byte appearing once).
  const std::size_t t = 17;
  const int tok = input[t];
  // Give the position a unique token to isolate its embedding row.
  ByteBuf unique = input;
  unique[t] = 0xEE;
  bool is_unique = true;
  for (std::size_t i = 0; i < unique.size(); ++i)
    if (i != t && unique[i] == 0xEE) is_unique = false;
  if (!is_unique) GTEST_SKIP() << "collision; skip";
  (void)tok;

  net.forward(unique);
  net.backward(0.0f, &grad, false);
  Param* emb = net.params().all()[0];
  const float eps = 1e-3f;
  const std::size_t base = 0xEE * static_cast<std::size_t>(cfg.embed_dim);
  for (int k = 0; k < cfg.embed_dim; ++k) {
    const float orig = emb->w[base + k];
    emb->w[base + k] = orig + eps;
    const float up = bce_loss(net.forward(unique), 0.0f);
    emb->w[base + k] = orig - eps;
    const float down = bce_loss(net.forward(unique), 0.0f);
    emb->w[base + k] = orig;
    const float numeric = (up - down) / (2 * eps);
    EXPECT_NEAR(grad[t * cfg.embed_dim + k], numeric,
                5e-2f + 0.05f * std::abs(numeric));
  }
}

TEST(ByteConv, SoftPoolGradientIsDense) {
  const ByteConvConfig cfg = tiny_config();
  ByteConvNet net(cfg, 13);
  util::Rng rng(7);
  const ByteBuf input = rng.bytes(256);
  net.forward(input);
  std::vector<float> hard, soft;
  net.backward(0.0f, &hard, false, 0.0f);
  net.forward(input);
  net.backward(0.0f, &soft, false, 0.5f);
  auto nonzeros = [](const std::vector<float>& g) {
    std::size_t n = 0;
    for (float v : g)
      if (v != 0.0f) ++n;
    return n;
  };
  EXPECT_GT(nonzeros(soft), nonzeros(hard));
}

TEST(ByteConv, NonNegClampsDenseWeights) {
  ByteConvConfig cfg = tiny_config();
  cfg.nonneg = true;
  ByteConvNet net(cfg, 21);
  net.clamp_nonneg();
  bool has_w1 = false;
  for (Param* p : net.params().all()) {
    if (p->name == "w1" || p->name == "w2") {
      has_w1 = true;
      for (float w : p->w) EXPECT_GE(w, 0.0f);
    }
  }
  EXPECT_TRUE(has_w1);
}

TEST(ByteConv, TrainsToSeparateSimpleClasses) {
  // Class 1 = files containing many 0xCC bytes; class 0 = none.
  const ByteConvConfig cfg = tiny_config();
  ByteConvNet net(cfg, 31);
  Adam opt(net.params(), 5e-3f);
  util::Rng rng(11);
  for (int step = 0; step < 300; ++step) {
    const int label = step % 2;
    ByteBuf x = rng.bytes(128);
    for (auto& b : x)
      if (label && rng.chance(0.3)) b = 0xCC;
      else if (b == 0xCC) b = 0;
    net.forward(x);
    net.backward(static_cast<float>(label));
    opt.step();
  }
  int correct = 0;
  for (int i = 0; i < 40; ++i) {
    const int label = i % 2;
    ByteBuf x = rng.bytes(128);
    for (auto& b : x)
      if (label && rng.chance(0.3)) b = 0xCC;
      else if (b == 0xCC) b = 0;
    correct += (net.forward(x) > 0.5f) == (label == 1);
  }
  EXPECT_GE(correct, 34);
}

TEST(ByteConv, SaveLoadRoundTrip) {
  const ByteConvConfig cfg = tiny_config();
  ByteConvNet net(cfg, 41);
  util::Rng rng(13);
  const ByteBuf x = rng.bytes(100);
  const float before = net.forward(x);
  util::Archive ar;
  net.save(ar);
  const ByteBuf blob = ar.take();
  ByteConvNet other(cfg, 999);
  util::Unarchive un(blob);
  other.load(un);
  EXPECT_FLOAT_EQ(other.forward(x), before);
}

// ---- GBDT --------------------------------------------------------------------

TEST(Gbdt, FitsAxisAlignedRule) {
  // y = 1 iff x[3] > 0.5
  util::Rng rng(17);
  std::vector<std::vector<float>> xs;
  std::vector<int> ys;
  for (int i = 0; i < 400; ++i) {
    std::vector<float> x(8);
    for (auto& v : x) v = static_cast<float>(rng.uniform());
    ys.push_back(x[3] > 0.5f ? 1 : 0);
    xs.push_back(std::move(x));
  }
  GbdtConfig cfg;
  cfg.trees = 20;
  Gbdt model(cfg);
  model.fit(xs, ys, 1);
  int correct = 0;
  for (int i = 0; i < 200; ++i) {
    std::vector<float> x(8);
    for (auto& v : x) v = static_cast<float>(rng.uniform());
    const int y = x[3] > 0.5f ? 1 : 0;
    correct += (model.predict(x) > 0.5f) == (y == 1);
  }
  EXPECT_GE(correct, 190);
}

TEST(Gbdt, FitsXorInteraction) {
  // y = x0>0.5 XOR x1>0.5 -- needs depth >= 2.
  util::Rng rng(19);
  std::vector<std::vector<float>> xs;
  std::vector<int> ys;
  for (int i = 0; i < 600; ++i) {
    std::vector<float> x(4);
    for (auto& v : x) v = static_cast<float>(rng.uniform());
    ys.push_back(((x[0] > 0.5f) != (x[1] > 0.5f)) ? 1 : 0);
    xs.push_back(std::move(x));
  }
  Gbdt model{GbdtConfig{}};
  model.fit(xs, ys, 2);
  int correct = 0;
  for (int i = 0; i < 200; ++i) {
    std::vector<float> x(4);
    for (auto& v : x) v = static_cast<float>(rng.uniform());
    const int y = ((x[0] > 0.5f) != (x[1] > 0.5f)) ? 1 : 0;
    correct += (model.predict(x) > 0.5f) == (y == 1);
  }
  EXPECT_GE(correct, 180);
}

TEST(Gbdt, PredictsPriorWithNoSignal) {
  std::vector<std::vector<float>> xs(100, std::vector<float>(3, 1.0f));
  std::vector<int> ys(100);
  for (int i = 0; i < 30; ++i) ys[i] = 1;  // 30% positive
  Gbdt model{GbdtConfig{}};
  model.fit(xs, ys, 3);
  EXPECT_NEAR(model.predict(xs[0]), 0.3f, 0.05f);
}

TEST(Gbdt, SaveLoadRoundTrip) {
  util::Rng rng(23);
  std::vector<std::vector<float>> xs;
  std::vector<int> ys;
  for (int i = 0; i < 100; ++i) {
    std::vector<float> x(5);
    for (auto& v : x) v = static_cast<float>(rng.uniform());
    ys.push_back(x[0] > 0.5f);
    xs.push_back(std::move(x));
  }
  Gbdt model{GbdtConfig{}};
  model.fit(xs, ys, 4);
  util::Archive ar;
  model.save(ar);
  const ByteBuf blob = ar.take();
  Gbdt other{GbdtConfig{}};
  util::Unarchive un(blob);
  other.load(un);
  for (int i = 0; i < 10; ++i)
    EXPECT_FLOAT_EQ(other.predict(xs[i]), model.predict(xs[i]));
}

TEST(Gbdt, FeatureImportanceConcentratesOnUsedFeature) {
  util::Rng rng(29);
  std::vector<std::vector<float>> xs;
  std::vector<int> ys;
  for (int i = 0; i < 300; ++i) {
    std::vector<float> x(6);
    for (auto& v : x) v = static_cast<float>(rng.uniform());
    ys.push_back(x[2] > 0.5f ? 1 : 0);
    xs.push_back(std::move(x));
  }
  Gbdt model{GbdtConfig{}};
  model.fit(xs, ys, 7);
  const auto importance = model.feature_importance(6);
  double sum = 0;
  for (double v : importance) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-9);
  // The label-defining feature dominates the splits.
  for (std::size_t f = 0; f < 6; ++f)
    if (f != 2) EXPECT_GT(importance[2], importance[f]);
}

TEST(Gbdt, RejectsEmptyData) {
  Gbdt model{GbdtConfig{}};
  EXPECT_THROW(model.fit({}, {}, 1), std::invalid_argument);
}

// ---- GRU LM ----------------------------------------------------------------

TEST(GruLm, LearnsRepetitivePattern) {
  GruLmConfig cfg;
  cfg.hidden = 24;
  cfg.embed = 8;
  cfg.bptt = 32;
  GruLm lm(cfg, 3);
  // Corpus: strict "ABAB..." alternation -- near-zero entropy per byte.
  const ByteBuf stream = [] {
    ByteBuf s;
    for (int i = 0; i < 512; ++i) s.push_back(i % 2 ? 'A' : 'B');
    return s;
  }();
  util::Rng rng(29);
  float loss = 0;
  for (int e = 0; e < 6; ++e)
    loss = lm.train_epoch({stream}, 60, 5e-3f, rng);
  EXPECT_LT(loss, 0.3f);  // << log(256) ~ 5.5 nats

  // Generation continues the alternation most of the time.
  const ByteBuf ctx = {'A', 'B', 'A', 'B', 'A', 'B'};
  const ByteBuf gen = lm.generate(50, rng, ctx, 0.2f);
  int ok = 0;
  for (std::size_t i = 0; i < gen.size(); ++i)
    if (gen[i] == 'A' || gen[i] == 'B') ++ok;
  EXPECT_GE(ok, 45);
  // And scores the pattern as much more likely than noise.
  EXPECT_LT(lm.evaluate(stream), lm.evaluate(rng.bytes(256)));
}

TEST(GruLm, SaveLoadRoundTrip) {
  GruLmConfig cfg;
  cfg.hidden = 16;
  GruLm lm(cfg, 5);
  util::Rng rng(31);
  const ByteBuf probe = rng.bytes(64);
  const float before = lm.evaluate(probe);
  util::Archive ar;
  lm.save(ar);
  const ByteBuf blob = ar.take();
  GruLm other(cfg, 99);
  util::Unarchive un(blob);
  other.load(un);
  EXPECT_FLOAT_EQ(other.evaluate(probe), before);
}

// ---- Adam --------------------------------------------------------------------

TEST(Adam, MinimizesQuadratic) {
  ParamSet params;
  Param& p = params.create("x", 3);
  p.w = {5.0f, -3.0f, 10.0f};
  Adam opt(params, 0.1f);
  for (int i = 0; i < 500; ++i) {
    for (std::size_t j = 0; j < 3; ++j) p.g[j] = 2.0f * p.w[j];  // d(x^2)
    opt.step();
  }
  for (float w : p.w) EXPECT_NEAR(w, 0.0f, 1e-2f);
}

}  // namespace
}  // namespace mpass::ml
