// Deterministic pseudo-random number generation for reproducible experiments.
//
// All randomized components in this repository (corpus generation, model
// initialization, attack search, shuffle strategy) draw from an explicitly
// seeded Rng so that every table and figure is reproducible bit-for-bit.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace mpass::util {

/// xoshiro256** PRNG (Blackman & Vigna). Fast, high-quality, 256-bit state.
/// Satisfies std::uniform_random_bit_generator so it can drive <random>.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words from a single 64-bit seed via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  /// Next raw 64-bit output.
  result_type operator()();

  /// Uniform integer in [0, bound) using Lemire's unbiased method.
  /// bound must be > 0.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Box-Muller (cached second value).
  double gaussian();

  /// Normal with given mean/stddev.
  double gaussian(double mean, double stddev);

  /// Bernoulli draw.
  bool chance(double p);

  /// Random byte.
  std::uint8_t byte();

  /// Fills a span with random bytes.
  void fill(std::span<std::uint8_t> out);

  /// Vector of n random bytes.
  std::vector<std::uint8_t> bytes(std::size_t n);

  /// Uniformly chosen element of a non-empty container (by reference).
  template <typename Container>
  const auto& pick(const Container& c) {
    return c[below(c.size())];
  }

  /// Fisher-Yates shuffle in place.
  template <typename Container>
  void shuffle(Container& c) {
    if (c.size() < 2) return;
    for (std::size_t i = c.size() - 1; i > 0; --i) {
      std::size_t j = static_cast<std::size_t>(below(i + 1));
      using std::swap;
      swap(c[i], c[j]);
    }
  }

  /// Samples an index from unnormalized non-negative weights.
  /// Falls back to uniform if all weights are zero.
  std::size_t weighted(std::span<const double> weights);

  /// Derives an independent child generator (for parallel subsystems).
  Rng fork();

 private:
  std::uint64_t s_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

/// splitmix64 step; also useful as a cheap hash/mixer.
std::uint64_t splitmix64(std::uint64_t& state);

}  // namespace mpass::util
