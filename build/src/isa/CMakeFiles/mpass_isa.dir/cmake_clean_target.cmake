file(REMOVE_RECURSE
  "libmpass_isa.a"
)
