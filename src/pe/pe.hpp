// PE32 image model: parse / edit / rebuild Windows-executable files.
//
// This is a faithful (if compact) implementation of the PE32 on-disk format:
// DOS header + stub, PE signature, COFF header, optional header with 16 data
// directories, section table, aligned raw section data, and trailing overlay.
// Malware samples, benign programs and all adversarial modifications in this
// repository are real PE files produced and re-parsed through this module.
//
// The only deliberate simplification is the *content* of the import
// directory: see import.hpp for the compact import-table format (the
// directory entry, RVA resolution and section plumbing are standard).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/bytes.hpp"

namespace mpass::pe {

using util::ByteBuf;

// Machine id for MVM code (stands in for IMAGE_FILE_MACHINE_I386).
inline constexpr std::uint16_t kMachineMvm = 0x4D56;  // 'MV'
inline constexpr std::uint16_t kPe32Magic = 0x010B;
inline constexpr std::uint16_t kDosMagic = 0x5A4D;    // 'MZ'
inline constexpr std::uint32_t kPeSignature = 0x00004550;  // "PE\0\0"

// Section characteristics (subset of IMAGE_SCN_*).
inline constexpr std::uint32_t kScnCode = 0x00000020;
inline constexpr std::uint32_t kScnInitializedData = 0x00000040;
inline constexpr std::uint32_t kScnUninitializedData = 0x00000080;
inline constexpr std::uint32_t kScnMemExecute = 0x20000000;
inline constexpr std::uint32_t kScnMemRead = 0x40000000;
inline constexpr std::uint32_t kScnMemWrite = 0x80000000;

// Data directory indices (standard).
inline constexpr std::size_t kDirExport = 0;
inline constexpr std::size_t kDirImport = 1;
inline constexpr std::size_t kDirResource = 2;
inline constexpr std::size_t kNumDirs = 16;

/// One entry of the optional header's directory table.
struct DataDirectory {
  std::uint32_t rva = 0;
  std::uint32_t size = 0;
  bool operator==(const DataDirectory&) const = default;
};

/// A section: header fields plus its raw file bytes.
struct Section {
  std::string name;             // up to 8 bytes on disk
  std::uint32_t vaddr = 0;      // RVA
  std::uint32_t vsize = 0;      // virtual size (>= data.size() allowed: bss)
  std::uint32_t characteristics = 0;
  ByteBuf data;                 // raw bytes (unaligned; builder pads)

  bool executable() const { return characteristics & kScnMemExecute; }
  bool writable() const { return characteristics & kScnMemWrite; }
};

/// Raw-file layout of a built image; maps file offsets to regions.
/// Returned by PeFile::build_with_layout, consumed by the attack code to
/// track perturbable byte positions.
struct Layout {
  std::uint32_t headers_size = 0;  // bytes of headers incl. section table pad
  struct SecRange {
    std::uint32_t file_offset = 0;
    std::uint32_t raw_size = 0;  // aligned size on disk
  };
  std::vector<SecRange> sections;
  std::uint32_t overlay_offset = 0;  // == file size if no overlay
  std::uint32_t file_size = 0;

  /// Index of the section containing file offset off, nullopt if in
  /// headers/overlay.
  std::optional<std::size_t> section_of(std::uint32_t off) const;
};

/// Mutable in-memory model of a PE32 file.
class PeFile {
 public:
  // ---- header state -------------------------------------------------------
  std::uint16_t machine = kMachineMvm;
  std::uint32_t timestamp = 0;
  std::uint16_t coff_characteristics = 0x0102;  // EXECUTABLE_IMAGE | 32BIT
  std::uint8_t linker_major = 14, linker_minor = 0;
  std::uint32_t entry_point = 0;     // RVA
  std::uint32_t image_base = 0x00400000;
  std::uint32_t section_align = 0x1000;
  std::uint32_t file_align = 0x200;
  std::uint16_t subsystem = 3;       // console
  std::uint16_t dll_characteristics = 0;
  std::uint32_t checksum = 0;        // 0 = unset; see update_checksum()
  std::array<DataDirectory, kNumDirs> dirs{};
  ByteBuf dos_stub;                  // bytes between DOS header and "PE\0\0"

  std::vector<Section> sections;
  ByteBuf overlay;                   // bytes past the last raw section

  // ---- parse / build ------------------------------------------------------

  /// Parses a PE32 buffer. Throws util::ParseError on malformed input.
  static PeFile parse(std::span<const std::uint8_t> bytes);

  /// True if bytes looks like a PE file this module can parse.
  static bool looks_like_pe(std::span<const std::uint8_t> bytes);

  /// Serializes to a valid PE32 file (recomputes layout & derived sizes).
  ByteBuf build() const;

  /// Serializes and also reports the file layout.
  ByteBuf build_with_layout(Layout* layout) const;

  // ---- queries -------------------------------------------------------------

  /// Index of the first section with the given name.
  std::optional<std::size_t> find_section(std::string_view name) const;

  /// Index of the section whose [vaddr, vaddr+max(vsize,raw)) contains rva.
  std::optional<std::size_t> section_by_rva(std::uint32_t rva) const;

  /// First RVA beyond all current sections, aligned to section_align.
  std::uint32_t next_free_rva() const;

  /// SizeOfImage as the builder will compute it.
  std::uint32_t size_of_image() const;

  /// Sum of raw section data sizes (unaligned).
  std::size_t total_section_bytes() const;

  // ---- edits ---------------------------------------------------------------

  /// Appends a new section at the next free RVA; returns its index.
  std::size_t add_section(std::string_view name, ByteBuf data,
                          std::uint32_t characteristics,
                          std::uint32_t extra_vsize = 0);

  /// Recomputes and stores the standard PE checksum of the built image.
  void update_checksum();

  /// Standard PE checksum algorithm over a raw file image.
  static std::uint32_t compute_checksum(std::span<const std::uint8_t> bytes);

 private:
  std::uint32_t headers_size() const;
};

}  // namespace mpass::pe
