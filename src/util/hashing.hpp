// Non-cryptographic hashes: FNV-1a (feature hashing, digests) and CRC32
// (PE checksum field, integrity checks in tests).
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

namespace mpass::util {

/// 64-bit FNV-1a over a byte range.
std::uint64_t fnv1a64(std::span<const std::uint8_t> data,
                      std::uint64_t seed = 0xcbf29ce484222325ULL);

/// 64-bit FNV-1a over a string.
std::uint64_t fnv1a64(std::string_view s,
                      std::uint64_t seed = 0xcbf29ce484222325ULL);

/// Incremental FNV-1a: mix one more 64-bit value into a running hash.
std::uint64_t hash_combine(std::uint64_t h, std::uint64_t v);

/// CRC-32 (IEEE 802.3 polynomial, reflected).
std::uint32_t crc32(std::span<const std::uint8_t> data);

}  // namespace mpass::util
