file(REMOVE_RECURSE
  "libmpass_util.a"
)
