// Adversarial training for byte detectors (paper §VI, "Adversarial
// training"). The paper argues both standard flavors fail against MPass:
//
//  * PGD-AT-style gradient AEs perturb bytes without function preservation,
//    so they lie off the distribution of real function-preserving AEs and
//    barely help;
//  * mixing MPass's own AEs into training ("classic adversarial training",
//    50/50 with clean malware) suppresses MPass's ASR by less than 10%,
//    because the space of malware AEs is too large to cover by sampling.
//
// This module implements both so the claim can be measured
// (bench_advtrain).
#pragma once

#include "corpus/generator.hpp"
#include "detectors/models.hpp"
#include "detectors/training.hpp"

namespace mpass::detect {

struct AdvTrainConfig {
  int epochs = 2;
  float lr = 1e-3f;
  int batch = 4;
  std::uint64_t seed = 17;
  // PGD-AT: fraction of each malware sample's bytes perturbed, and the
  // number of gradient ascent steps used to craft the training AE.
  double perturb_fraction = 0.05;
  int pgd_steps = 2;
  // Fraction of malware samples that get an AE companion each epoch; 1.0
  // doubles the malicious side of every batch with off-distribution bytes,
  // which collapses small-capacity models.
  double adv_sample_fraction = 0.35;
};

/// PGD-AT-style training: each malware sample is accompanied by a
/// gradient-crafted byte-level AE (not function-preserving, as the paper
/// notes). Returns final-epoch mean loss.
float adversarial_train_pgd(ByteConvDetector& detector,
                            const corpus::Dataset& train,
                            const AdvTrainConfig& cfg);

/// Classic adversarial training: fine-tunes on clean data plus the provided
/// AEs labeled malicious (paper mixes AE/clean 50/50).
/// Returns final-epoch mean loss.
float adversarial_train_with_aes(ByteConvDetector& detector,
                                 const corpus::Dataset& train,
                                 std::span<const util::ByteBuf> aes,
                                 const AdvTrainConfig& cfg);

}  // namespace mpass::detect
