# Empty dependencies file for test_vm_apis.
# This may be replaced when dependencies are built.
