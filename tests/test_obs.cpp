// Tests for the observability subsystem: metrics registry (exact concurrent
// counting, histogram bucketing, deterministic snapshot merging across
// thread retirement), the JSON helpers, and the JSONL trace sink round-trip
// through the trace reader/validator that backs tools/mpass_trace.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/trace_check.hpp"

namespace mpass::obs {
namespace {

std::uint64_t counter_value(const Snapshot& s, const std::string& name) {
  const auto it = s.counters.find(name);
  return it == s.counters.end() ? 0 : it->second;
}

TEST(Metrics, ConcurrentIncrementsSumExactly) {
  Registry& reg = Registry::instance();
  const MetricId id = reg.counter("test.obs.concurrent");
  const std::uint64_t before =
      counter_value(reg.snapshot(), "test.obs.concurrent");

  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&reg, id] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) reg.inc(id);
    });
  for (std::thread& t : threads) t.join();

  const std::uint64_t after =
      counter_value(reg.snapshot(), "test.obs.concurrent");
  EXPECT_EQ(after - before, kThreads * kPerThread);
}

TEST(Metrics, HistogramBucketBoundaries) {
  Registry& reg = Registry::instance();
  const double bounds[] = {1.0, 10.0, 100.0};
  const MetricId id = reg.histogram("test.obs.hist", bounds);

  // Bucket rule: first bound >= value; above the last bound -> overflow.
  reg.observe(id, 0.5);    // bucket 0
  reg.observe(id, 1.0);    // bucket 0 (inclusive upper bound)
  reg.observe(id, 1.0001); // bucket 1
  reg.observe(id, 10.0);   // bucket 1
  reg.observe(id, 99.9);   // bucket 2
  reg.observe(id, 100.5);  // bucket 3 (overflow)

  const Snapshot s = reg.snapshot();
  const auto it = s.histograms.find("test.obs.hist");
  ASSERT_NE(it, s.histograms.end());
  const Snapshot::Histogram& h = it->second;
  ASSERT_EQ(h.buckets.size(), 4u);
  EXPECT_EQ(h.buckets[0], 2u);
  EXPECT_EQ(h.buckets[1], 2u);
  EXPECT_EQ(h.buckets[2], 1u);
  EXPECT_EQ(h.buckets[3], 1u);
  EXPECT_EQ(h.count, 6u);
  EXPECT_NEAR(h.sum, 0.5 + 1.0 + 1.0001 + 10.0 + 99.9 + 100.5, 1e-9);
}

TEST(Metrics, SnapshotMergesRetiredThreadsDeterministically) {
  Registry& reg = Registry::instance();
  const MetricId id = reg.counter("test.obs.retired");
  const std::uint64_t before =
      counter_value(reg.snapshot(), "test.obs.retired");

  // Increment from threads that exit before the snapshot: their per-thread
  // shards retire into the core and must still be counted.
  for (int round = 0; round < 4; ++round) {
    std::thread t([&reg, id] { reg.inc(id, 25); });
    t.join();
  }

  const Snapshot s1 = reg.snapshot();
  const Snapshot s2 = reg.snapshot();
  EXPECT_EQ(counter_value(s1, "test.obs.retired") - before, 100u);
  // No updates between the two snapshots: byte-identical merged views.
  EXPECT_EQ(s1.counters, s2.counters);
  EXPECT_EQ(s1.to_json(), s2.to_json());
}

TEST(Metrics, KindMismatchThrows) {
  Registry& reg = Registry::instance();
  reg.counter("test.obs.kind");
  EXPECT_THROW(reg.gauge("test.obs.kind"), std::invalid_argument);
  const double bounds[] = {1.0};
  EXPECT_THROW(reg.histogram("test.obs.kind", bounds),
               std::invalid_argument);
}

TEST(Metrics, GaugeAndCallbackGaugeAppearInSnapshot) {
  Registry& reg = Registry::instance();
  reg.set(reg.gauge("test.obs.gauge"), 2.5);
  reg.gauge_callback("test.obs.cbgauge", [] { return 7.0; });
  const Snapshot s = reg.snapshot();
  EXPECT_DOUBLE_EQ(s.gauges.at("test.obs.gauge"), 2.5);
  EXPECT_DOUBLE_EQ(s.gauges.at("test.obs.cbgauge"), 7.0);

  // flat() carries counters, gauges and histogram .count/.sum.
  bool saw_gauge = false;
  for (const auto& [name, v] : s.flat())
    if (name == "test.obs.gauge") saw_gauge = v == 2.5;
  EXPECT_TRUE(saw_gauge);
}

TEST(Json, LineBuilderOutputParsesBack) {
  JsonLine line;
  const std::vector<std::string> names = {"alpha", "be\"ta"};
  line.str("ev", "start")
      .str("esc", "a\"b\\c\nd")
      .num("pi", 3.25)
      .uint("big", 123456789ull)
      .boolean("yes", true)
      .hex("digest", 0xabcull)
      .strs("names", names);
  const auto doc = Json::parse(line.take());
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->get("ev")->str(), "start");
  EXPECT_EQ(doc->get("esc")->str(), "a\"b\\c\nd");
  EXPECT_DOUBLE_EQ(doc->get("pi")->number(), 3.25);
  EXPECT_DOUBLE_EQ(doc->get("big")->number(), 123456789.0);
  EXPECT_TRUE(doc->get("yes")->boolean());
  EXPECT_EQ(doc->get("digest")->str(), "0000000000000abc");
  ASSERT_EQ(doc->get("names")->items().size(), 2u);
  EXPECT_EQ(doc->get("names")->items()[1].str(), "be\"ta");
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_FALSE(Json::parse("{\"a\":1").has_value());
  EXPECT_FALSE(Json::parse("{\"a\":1} trailing").has_value());
  EXPECT_FALSE(Json::parse("{'a':1}").has_value());
  EXPECT_TRUE(Json::parse("{\"a\":[1,2,{\"b\":null}]}").has_value());
}

/// RAII trace-dir override pointing at a fresh temp directory.
struct TraceDirGuard {
  std::filesystem::path dir;
  explicit TraceDirGuard(const char* name) {
    dir = std::filesystem::path(testing::TempDir()) / name;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    set_trace_dir(dir);
  }
  ~TraceDirGuard() {
    set_trace_dir(std::nullopt);
    std::filesystem::remove_all(dir);
  }
};

/// Emits one complete well-formed sample trace (start..end) with `queries`
/// query events. Must mirror what the harness + oracle emit.
void emit_sample(std::string_view attack, std::string_view target,
                 std::uint64_t digest, std::uint64_t queries) {
  TraceScope scope(attack, target, digest, 7, 100);
  ASSERT_TRUE(scope.active());
  ASSERT_TRUE(tracing());
  Event("action").str("kind", "donor").uint("candidates", 4);
  for (std::uint64_t i = 1; i <= 3; ++i)
    Event("opt").uint("iter", i).num("loss", 1.0 / static_cast<double>(i));
  for (std::uint64_t i = 1; i <= queries; ++i)
    Event("query").uint("i", i).boolean("malicious", i != queries).num(
        "score", 0.5);
  Event("end")
      .boolean("success", true)
      .uint("queries", queries)
      .num("apr", 12.5)
      .num("ms", 3.0)
      .boolean("functional", true);
}

TEST(Trace, WriterReaderRoundTrip) {
  TraceDirGuard guard("mpass_trace_roundtrip");
  emit_sample("MPass", "MalConv", 0x1234, 5);
  EXPECT_FALSE(tracing());  // scope closed

  const auto path = guard.dir / "MPass-MalConv-0000000000001234.jsonl";
  ASSERT_TRUE(std::filesystem::exists(path));
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();

  std::vector<std::string> errors;
  const auto data = parse_sample_trace(ss.str(), "roundtrip", &errors);
  ASSERT_TRUE(errors.empty()) << errors.front();
  ASSERT_TRUE(data.has_value());
  EXPECT_EQ(data->attack, "MPass");
  EXPECT_EQ(data->target, "MalConv");
  EXPECT_EQ(data->sample, "0000000000001234");
  EXPECT_EQ(data->seed, 7u);
  EXPECT_EQ(data->budget, 100u);
  ASSERT_EQ(data->queries.size(), 5u);
  EXPECT_TRUE(data->queries[0].malicious);
  EXPECT_FALSE(data->queries[4].malicious);
  EXPECT_EQ(data->opts.size(), 3u);
  EXPECT_EQ(data->actions, 1u);
  EXPECT_TRUE(data->has_end);
  EXPECT_TRUE(data->success);
  EXPECT_TRUE(data->functional);
  EXPECT_EQ(data->end_queries, 5u);
  EXPECT_DOUBLE_EQ(data->apr, 12.5);
}

TEST(Trace, CheckDirReconcilesQueryBudgets) {
  TraceDirGuard guard("mpass_trace_checkdir");
  emit_sample("MPass", "MalConv", 0x1, 5);
  emit_sample("MPass", "MalConv", 0x2, 7);
  append_run_line("cells.jsonl", JsonLine()
                                     .str("ev", "cell")
                                     .str("attack", "MPass")
                                     .str("target", "MalConv")
                                     .uint("n", 2)
                                     .uint("traced", 2)
                                     .uint("total_queries", 12)
                                     .num("wall_ms", 6.0)
                                     .take());
  write_metrics_snapshot();
  ASSERT_TRUE(std::filesystem::exists(guard.dir / "metrics.json"));

  const TraceCheckReport ok = check_trace_dir(guard.dir);
  EXPECT_TRUE(ok.ok()) << ok.errors.front();
  EXPECT_EQ(ok.data.samples.size(), 2u);
  ASSERT_EQ(ok.data.cells.size(), 1u);
  EXPECT_EQ(ok.data.cells[0].total_queries, 12u);
  EXPECT_TRUE(ok.data.has_metrics);

  // A fully-traced cell whose query totals disagree must fail the check.
  append_run_line("cells.jsonl", JsonLine()
                                     .str("ev", "cell")
                                     .str("attack", "MPass")
                                     .str("target", "MalConv")
                                     .uint("n", 2)
                                     .uint("traced", 2)
                                     .uint("total_queries", 99)
                                     .num("wall_ms", 6.0)
                                     .take());
  const TraceCheckReport bad = check_trace_dir(guard.dir);
  EXPECT_FALSE(bad.ok());
}

TEST(Trace, CacheHitCellsWarnInsteadOfFailing) {
  TraceDirGuard guard("mpass_trace_cachehit");
  emit_sample("MPass", "AV1", 0x9, 4);
  // traced < n: one sample came from the result cache, totals can't be
  // reconciled against trace files -- warning, not error.
  append_run_line("cells.jsonl", JsonLine()
                                     .str("ev", "cell")
                                     .str("attack", "MPass")
                                     .str("target", "AV1")
                                     .uint("n", 2)
                                     .uint("traced", 1)
                                     .uint("total_queries", 104)
                                     .num("wall_ms", 2.0)
                                     .take());
  const TraceCheckReport rep = check_trace_dir(guard.dir);
  EXPECT_TRUE(rep.ok());
  EXPECT_FALSE(rep.warnings.empty());
}

TEST(Trace, MalformedSampleTraceIsRejected) {
  std::vector<std::string> errors;
  // Query indices must be contiguous from 1.
  const std::string text =
      "{\"ev\":\"start\",\"attack\":\"A\",\"target\":\"B\","
      "\"sample\":\"0000000000000001\",\"seed\":1,\"budget\":10}\n"
      "{\"ev\":\"query\",\"i\":2,\"malicious\":true,\"score\":0.5}\n"
      "{\"ev\":\"end\",\"success\":false,\"queries\":1,\"apr\":0,\"ms\":1,"
      "\"functional\":false}\n";
  parse_sample_trace(text, "malformed", &errors);
  EXPECT_FALSE(errors.empty());
}

TEST(Trace, EventsOutsideScopeAreFreeNoOps) {
  ASSERT_FALSE(tracing());
  Event e("query");
  EXPECT_FALSE(e.active());
  e.uint("i", 1).num("score", 0.0);  // must not crash or allocate a file
}

TEST(Log, LevelParsingAndTagging) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::Debug);
  EXPECT_EQ(parse_log_level("WARN"), LogLevel::Warn);
  EXPECT_EQ(parse_log_level("off"), LogLevel::Off);
  EXPECT_EQ(parse_log_level("bogus"), LogLevel::Info);
  set_log_tag("unit/test");
  EXPECT_EQ(log_tag(), "unit/test");
  set_log_tag("");
}

}  // namespace
}  // namespace mpass::obs
