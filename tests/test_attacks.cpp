// Tests for the attack baselines: action set semantics, RLA/MAB/GAMMA/
// MalRNN behavior against controllable detectors, obfuscator attacks.
#include <gtest/gtest.h>

#include "attack/actions.hpp"
#include "attack/gamma.hpp"
#include "attack/mab.hpp"
#include "attack/malrnn.hpp"
#include "attack/obfuscate.hpp"
#include "attack/rla.hpp"
#include "corpus/generator.hpp"
#include "pe/pe.hpp"
#include "vm/sandbox.hpp"

namespace mpass::attack {
namespace {

using util::ByteBuf;

std::vector<ByteBuf> tiny_pool() {
  std::vector<ByteBuf> pool;
  for (int i = 0; i < 4; ++i)
    pool.push_back(corpus::make_benign(600 + i).bytes());
  return pool;
}

/// Detector that flags files under a size threshold as malicious -- all
/// appending attacks can beat it, deterministically.
class SizeDetector : public detect::Detector {
 public:
  explicit SizeDetector(std::size_t threshold) : threshold_(threshold) {}
  std::string_view name() const override { return "size"; }
  double score(std::span<const std::uint8_t> bytes) const override {
    return bytes.size() < threshold_ ? 1.0 : 0.0;
  }
 private:
  std::size_t threshold_;
};

/// Detector that never lets anything through.
class AlwaysMalicious : public detect::Detector {
 public:
  std::string_view name() const override { return "always"; }
  double score(std::span<const std::uint8_t>) const override { return 1.0; }
};

// ---- actions -------------------------------------------------------------------

class ActionSafety : public ::testing::TestWithParam<Action> {};

TEST_P(ActionSafety, SafeActionsPreserveFunctionality) {
  const Action action = GetParam();
  if (is_risky(action)) GTEST_SKIP() << "risky action";
  const auto pool = tiny_pool();
  util::Rng rng(5);
  const vm::Sandbox sandbox;
  int applied = 0;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const ByteBuf orig = corpus::make_malware(1500 + seed).bytes();
    const auto mutated = apply_action(action, orig, pool, rng);
    if (!mutated) continue;
    ++applied;
    EXPECT_TRUE(sandbox.functionality_preserved(orig, *mutated))
        << action_name(action) << " seed " << seed;
  }
  EXPECT_GT(applied, 0) << action_name(action);
}

INSTANTIATE_TEST_SUITE_P(
    AllSafe, ActionSafety,
    ::testing::Values(Action::AppendOverlay, Action::AddBenignSection,
                      Action::RenameSections, Action::SetTimestamp,
                      Action::AppendImports, Action::UpxPack));

TEST(Actions, RemoveOverlayBreaksOverlayDependentMalware) {
  const auto pool = tiny_pool();
  util::Rng rng(7);
  const vm::Sandbox sandbox;
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    const corpus::CompiledSample s = corpus::make_malware(2500 + seed);
    if (!s.meta.overlay_dependent) continue;
    const ByteBuf orig = s.bytes();
    const auto mutated = apply_action(Action::RemoveOverlay, orig, pool, rng);
    ASSERT_TRUE(mutated.has_value());
    EXPECT_FALSE(sandbox.functionality_preserved(orig, *mutated));
    return;
  }
  FAIL() << "no overlay-dependent malware sampled";
}

TEST(Actions, RemoveOverlayHarmlessWithoutOverlayDependence) {
  const auto pool = tiny_pool();
  util::Rng rng(8);
  const vm::Sandbox sandbox;
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    const corpus::CompiledSample s = corpus::make_malware(2600 + seed);
    if (s.meta.overlay_dependent || s.pe.overlay.empty()) continue;
    const ByteBuf orig = s.bytes();
    const auto mutated = apply_action(Action::RemoveOverlay, orig, pool, rng);
    ASSERT_TRUE(mutated.has_value());
    // Inert overlay removal does not change behavior.
    EXPECT_TRUE(sandbox.functionality_preserved(orig, *mutated));
    return;
  }
  GTEST_SKIP() << "no inert-overlay malware sampled";
}

TEST(Actions, ApplyActionRejectsGarbage) {
  const auto pool = tiny_pool();
  util::Rng rng(9);
  EXPECT_FALSE(apply_action(Action::AppendOverlay, ByteBuf(100, 7), pool, rng)
                   .has_value());
}

TEST(Actions, StateFingerprintReactsToStructure) {
  const ByteBuf a = corpus::make_malware(3100).bytes();
  const auto pool = tiny_pool();
  util::Rng rng(10);
  const auto b = apply_action(Action::AddBenignSection, a, pool, rng);
  ASSERT_TRUE(b.has_value());
  EXPECT_NE(state_fingerprint(a), state_fingerprint(*b));
}

// ---- baseline attacks ------------------------------------------------------------

TEST(Baselines, MabBeatsSizeDetector) {
  const ByteBuf sample = corpus::make_malware(3200).bytes();
  const SizeDetector det(sample.size() + 4096);
  Mab mab({}, tiny_pool());
  ASSERT_TRUE(det.is_malicious(sample));
  detect::HardLabelOracle oracle(det, 100);
  const AttackResult r = mab.run(sample, oracle, 3);
  EXPECT_TRUE(r.success);
  EXPECT_GE(r.adversarial.size(), sample.size() + 4096);
  EXPECT_GT(r.apr, 0.0);
  EXPECT_EQ(r.queries, 0u);  // run_cell computes queries via the oracle
  EXPECT_LE(oracle.queries(), 100u);
}

TEST(Baselines, RlaBeatsSizeDetectorAndLearns) {
  Rla rla({}, tiny_pool());
  int wins = 0, attempted = 0;
  for (int i = 0; i < 5; ++i) {
    const ByteBuf sample = corpus::make_malware(3300 + i).bytes();
    const SizeDetector det(sample.size() + 2048);
    ++attempted;
    detect::HardLabelOracle oracle(det, 100);
    wins += rla.run(sample, oracle, 11 + i).success;
  }
  EXPECT_EQ(attempted, 5);
  EXPECT_GE(wins, 4);
}

TEST(Baselines, GammaInjectsBenignSections) {
  const ByteBuf sample = corpus::make_malware(3400).bytes();
  const SizeDetector det(sample.size() + 2048);
  Gamma gamma({}, tiny_pool());
  detect::HardLabelOracle oracle(det, 100);
  const AttackResult r = gamma.run(sample, oracle, 17);
  ASSERT_TRUE(r.success);
  // The AE must contain more sections than the original.
  const pe::PeFile before = pe::PeFile::parse(sample);
  const pe::PeFile after = pe::PeFile::parse(r.adversarial);
  EXPECT_GT(after.sections.size(), before.sections.size());
  const vm::Sandbox sandbox;
  EXPECT_TRUE(sandbox.functionality_preserved(sample, r.adversarial));
}

TEST(Baselines, FailAgainstAlwaysMaliciousWithinBudget) {
  const AlwaysMalicious det;
  const ByteBuf sample = corpus::make_malware(3500).bytes();
  const auto pool = tiny_pool();
  Mab mab({}, pool);
  Rla rla({}, pool);
  Gamma gamma({}, pool);
  for (Attack* atk : std::initializer_list<Attack*>{&mab, &rla, &gamma}) {
    detect::HardLabelOracle oracle(det, 25);
    const AttackResult r = atk->run(sample, oracle, 23);
    EXPECT_FALSE(r.success) << atk->name();
    EXPECT_EQ(oracle.queries(), 25u) << atk->name();
  }
}

TEST(Baselines, ObfuscateAttackIsOneShot) {
  const SizeDetector det(1);  // nothing is malicious
  ObfuscateAttack upx(pack::PackerKind::UpxLike);
  const ByteBuf sample = corpus::make_malware(3600).bytes();
  detect::HardLabelOracle oracle(det, 100);
  const AttackResult r = upx.run(sample, oracle, 29);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(oracle.queries(), 1u);
  const vm::Sandbox sandbox;
  EXPECT_TRUE(sandbox.functionality_preserved(sample, r.adversarial));
}

TEST(Baselines, MalRnnAppendsGrowingChunks) {
  ml::GruLm lm(ml::GruLmConfig{}, 3);  // untrained LM still generates bytes
  MalRnn malrnn({}, lm);
  const ByteBuf sample = corpus::make_malware(3700).bytes();
  const SizeDetector det(sample.size() + 6000);
  ASSERT_TRUE(det.is_malicious(sample));
  detect::HardLabelOracle oracle(det, 100);
  const AttackResult r = malrnn.run(sample, oracle, 31);
  EXPECT_TRUE(r.success);
  EXPECT_GE(r.adversarial.size(), sample.size() + 6000);
  // Appending to the overlay never breaks functionality.
  const vm::Sandbox sandbox;
  EXPECT_TRUE(sandbox.functionality_preserved(sample, r.adversarial));
}

TEST(Baselines, AprAccounting) {
  EXPECT_DOUBLE_EQ(apr_of(100, 150), 0.5);
  EXPECT_DOUBLE_EQ(apr_of(100, 100), 0.0);
  EXPECT_DOUBLE_EQ(apr_of(0, 50), 0.0);
}

}  // namespace
}  // namespace mpass::attack
